file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_heterogeneity.dir/bench_e6_heterogeneity.cc.o"
  "CMakeFiles/bench_e6_heterogeneity.dir/bench_e6_heterogeneity.cc.o.d"
  "bench_e6_heterogeneity"
  "bench_e6_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
