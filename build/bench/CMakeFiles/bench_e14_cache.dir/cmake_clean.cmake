file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_cache.dir/bench_e14_cache.cc.o"
  "CMakeFiles/bench_e14_cache.dir/bench_e14_cache.cc.o.d"
  "bench_e14_cache"
  "bench_e14_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
