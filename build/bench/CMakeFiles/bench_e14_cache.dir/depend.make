# Empty dependencies file for bench_e14_cache.
# This may be replaced when dependencies are built.
