file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_joins.dir/bench_e2_joins.cc.o"
  "CMakeFiles/bench_e2_joins.dir/bench_e2_joins.cc.o.d"
  "bench_e2_joins"
  "bench_e2_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
