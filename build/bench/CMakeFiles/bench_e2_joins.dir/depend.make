# Empty dependencies file for bench_e2_joins.
# This may be replaced when dependencies are built.
