file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_wire.dir/bench_e10_wire.cc.o"
  "CMakeFiles/bench_e10_wire.dir/bench_e10_wire.cc.o.d"
  "bench_e10_wire"
  "bench_e10_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
