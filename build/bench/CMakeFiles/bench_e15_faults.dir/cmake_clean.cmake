file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_faults.dir/bench_e15_faults.cc.o"
  "CMakeFiles/bench_e15_faults.dir/bench_e15_faults.cc.o.d"
  "bench_e15_faults"
  "bench_e15_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
