# Empty dependencies file for bench_e4_network.
# This may be replaced when dependencies are built.
