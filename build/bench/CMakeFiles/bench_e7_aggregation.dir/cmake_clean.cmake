file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_aggregation.dir/bench_e7_aggregation.cc.o"
  "CMakeFiles/bench_e7_aggregation.dir/bench_e7_aggregation.cc.o.d"
  "bench_e7_aggregation"
  "bench_e7_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
