# Empty dependencies file for bench_e7_aggregation.
# This may be replaced when dependencies are built.
