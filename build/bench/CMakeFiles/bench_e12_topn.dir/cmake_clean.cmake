file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_topn.dir/bench_e12_topn.cc.o"
  "CMakeFiles/bench_e12_topn.dir/bench_e12_topn.cc.o.d"
  "bench_e12_topn"
  "bench_e12_topn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_topn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
