file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_optimizer.dir/bench_e5_optimizer.cc.o"
  "CMakeFiles/bench_e5_optimizer.dir/bench_e5_optimizer.cc.o.d"
  "bench_e5_optimizer"
  "bench_e5_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
