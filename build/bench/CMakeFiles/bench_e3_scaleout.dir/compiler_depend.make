# Empty compiler generated dependencies file for bench_e3_scaleout.
# This may be replaced when dependencies are built.
