file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_scaleout.dir/bench_e3_scaleout.cc.o"
  "CMakeFiles/bench_e3_scaleout.dir/bench_e3_scaleout.cc.o.d"
  "bench_e3_scaleout"
  "bench_e3_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
