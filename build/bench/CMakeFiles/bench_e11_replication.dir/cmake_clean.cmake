file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_replication.dir/bench_e11_replication.cc.o"
  "CMakeFiles/bench_e11_replication.dir/bench_e11_replication.cc.o.d"
  "bench_e11_replication"
  "bench_e11_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
