# Empty dependencies file for bench_e11_replication.
# This may be replaced when dependencies are built.
