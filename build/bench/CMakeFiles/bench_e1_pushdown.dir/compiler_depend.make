# Empty compiler generated dependencies file for bench_e1_pushdown.
# This may be replaced when dependencies are built.
