file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_semijoin.dir/bench_e8_semijoin.cc.o"
  "CMakeFiles/bench_e8_semijoin.dir/bench_e8_semijoin.cc.o.d"
  "bench_e8_semijoin"
  "bench_e8_semijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_semijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
