# Empty dependencies file for bench_e8_semijoin.
# This may be replaced when dependencies are built.
