file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_storage.dir/bench_e9_storage.cc.o"
  "CMakeFiles/bench_e9_storage.dir/bench_e9_storage.cc.o.d"
  "bench_e9_storage"
  "bench_e9_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
