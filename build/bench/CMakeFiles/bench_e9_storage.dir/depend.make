# Empty dependencies file for bench_e9_storage.
# This may be replaced when dependencies are built.
