file(REMOVE_RECURSE
  "CMakeFiles/hospital_network.dir/hospital_network.cpp.o"
  "CMakeFiles/hospital_network.dir/hospital_network.cpp.o.d"
  "hospital_network"
  "hospital_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
