file(REMOVE_RECURSE
  "CMakeFiles/bank_import.dir/bank_import.cpp.o"
  "CMakeFiles/bank_import.dir/bank_import.cpp.o.d"
  "bank_import"
  "bank_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
