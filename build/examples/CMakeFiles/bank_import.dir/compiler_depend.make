# Empty compiler generated dependencies file for bank_import.
# This may be replaced when dependencies are built.
