file(REMOVE_RECURSE
  "CMakeFiles/retail_federation.dir/retail_federation.cpp.o"
  "CMakeFiles/retail_federation.dir/retail_federation.cpp.o.d"
  "retail_federation"
  "retail_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
