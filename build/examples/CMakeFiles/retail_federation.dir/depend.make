# Empty dependencies file for retail_federation.
# This may be replaced when dependencies are built.
