file(REMOVE_RECURSE
  "CMakeFiles/federation_shell.dir/federation_shell.cpp.o"
  "CMakeFiles/federation_shell.dir/federation_shell.cpp.o.d"
  "federation_shell"
  "federation_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
