# Empty dependencies file for federation_shell.
# This may be replaced when dependencies are built.
