# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/logging_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/source_test[1]_include.cmake")
include("/root/repo/build/tests/sql2_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/twopc_chaos_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
