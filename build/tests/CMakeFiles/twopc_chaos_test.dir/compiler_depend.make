# Empty compiler generated dependencies file for twopc_chaos_test.
# This may be replaced when dependencies are built.
