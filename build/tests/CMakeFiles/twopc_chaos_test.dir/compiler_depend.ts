# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for twopc_chaos_test.
