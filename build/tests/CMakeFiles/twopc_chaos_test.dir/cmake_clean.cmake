file(REMOVE_RECURSE
  "CMakeFiles/twopc_chaos_test.dir/twopc_chaos_test.cc.o"
  "CMakeFiles/twopc_chaos_test.dir/twopc_chaos_test.cc.o.d"
  "twopc_chaos_test"
  "twopc_chaos_test.pdb"
  "twopc_chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twopc_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
