file(REMOVE_RECURSE
  "CMakeFiles/sql2_test.dir/sql2_test.cc.o"
  "CMakeFiles/sql2_test.dir/sql2_test.cc.o.d"
  "sql2_test"
  "sql2_test.pdb"
  "sql2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
