# Empty dependencies file for sql2_test.
# This may be replaced when dependencies are built.
