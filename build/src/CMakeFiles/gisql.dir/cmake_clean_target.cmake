file(REMOVE_RECURSE
  "libgisql.a"
)
