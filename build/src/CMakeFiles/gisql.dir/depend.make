# Empty dependencies file for gisql.
# This may be replaced when dependencies are built.
