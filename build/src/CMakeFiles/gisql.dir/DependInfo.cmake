
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/gisql.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/gisql.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/gisql.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/gisql.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/gisql.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/gisql.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/gisql.dir/common/status.cc.o" "gcc" "src/CMakeFiles/gisql.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/gisql.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/gisql.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/global_system.cc" "src/CMakeFiles/gisql.dir/core/global_system.cc.o" "gcc" "src/CMakeFiles/gisql.dir/core/global_system.cc.o.d"
  "/root/repo/src/core/query_cache.cc" "src/CMakeFiles/gisql.dir/core/query_cache.cc.o" "gcc" "src/CMakeFiles/gisql.dir/core/query_cache.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/gisql.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/gisql.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/gisql.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/gisql.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/hash_aggregate.cc" "src/CMakeFiles/gisql.dir/exec/hash_aggregate.cc.o" "gcc" "src/CMakeFiles/gisql.dir/exec/hash_aggregate.cc.o.d"
  "/root/repo/src/expr/binder.cc" "src/CMakeFiles/gisql.dir/expr/binder.cc.o" "gcc" "src/CMakeFiles/gisql.dir/expr/binder.cc.o.d"
  "/root/repo/src/expr/eval.cc" "src/CMakeFiles/gisql.dir/expr/eval.cc.o" "gcc" "src/CMakeFiles/gisql.dir/expr/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/gisql.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/gisql.dir/expr/expr.cc.o.d"
  "/root/repo/src/net/fault_schedule.cc" "src/CMakeFiles/gisql.dir/net/fault_schedule.cc.o" "gcc" "src/CMakeFiles/gisql.dir/net/fault_schedule.cc.o.d"
  "/root/repo/src/net/retry.cc" "src/CMakeFiles/gisql.dir/net/retry.cc.o" "gcc" "src/CMakeFiles/gisql.dir/net/retry.cc.o.d"
  "/root/repo/src/net/sim_network.cc" "src/CMakeFiles/gisql.dir/net/sim_network.cc.o" "gcc" "src/CMakeFiles/gisql.dir/net/sim_network.cc.o.d"
  "/root/repo/src/planner/cost_model.cc" "src/CMakeFiles/gisql.dir/planner/cost_model.cc.o" "gcc" "src/CMakeFiles/gisql.dir/planner/cost_model.cc.o.d"
  "/root/repo/src/planner/decomposer.cc" "src/CMakeFiles/gisql.dir/planner/decomposer.cc.o" "gcc" "src/CMakeFiles/gisql.dir/planner/decomposer.cc.o.d"
  "/root/repo/src/planner/logical_planner.cc" "src/CMakeFiles/gisql.dir/planner/logical_planner.cc.o" "gcc" "src/CMakeFiles/gisql.dir/planner/logical_planner.cc.o.d"
  "/root/repo/src/planner/optimizer.cc" "src/CMakeFiles/gisql.dir/planner/optimizer.cc.o" "gcc" "src/CMakeFiles/gisql.dir/planner/optimizer.cc.o.d"
  "/root/repo/src/planner/plan.cc" "src/CMakeFiles/gisql.dir/planner/plan.cc.o" "gcc" "src/CMakeFiles/gisql.dir/planner/plan.cc.o.d"
  "/root/repo/src/source/capabilities.cc" "src/CMakeFiles/gisql.dir/source/capabilities.cc.o" "gcc" "src/CMakeFiles/gisql.dir/source/capabilities.cc.o.d"
  "/root/repo/src/source/component_source.cc" "src/CMakeFiles/gisql.dir/source/component_source.cc.o" "gcc" "src/CMakeFiles/gisql.dir/source/component_source.cc.o.d"
  "/root/repo/src/source/fragment.cc" "src/CMakeFiles/gisql.dir/source/fragment.cc.o" "gcc" "src/CMakeFiles/gisql.dir/source/fragment.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/gisql.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/gisql.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/gisql.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/gisql.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/gisql.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/gisql.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/gisql.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/gisql.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/statistics.cc" "src/CMakeFiles/gisql.dir/storage/statistics.cc.o" "gcc" "src/CMakeFiles/gisql.dir/storage/statistics.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/gisql.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/gisql.dir/storage/table.cc.o.d"
  "/root/repo/src/types/data_type.cc" "src/CMakeFiles/gisql.dir/types/data_type.cc.o" "gcc" "src/CMakeFiles/gisql.dir/types/data_type.cc.o.d"
  "/root/repo/src/types/datetime.cc" "src/CMakeFiles/gisql.dir/types/datetime.cc.o" "gcc" "src/CMakeFiles/gisql.dir/types/datetime.cc.o.d"
  "/root/repo/src/types/row.cc" "src/CMakeFiles/gisql.dir/types/row.cc.o" "gcc" "src/CMakeFiles/gisql.dir/types/row.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/gisql.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/gisql.dir/types/schema.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/gisql.dir/types/value.cc.o" "gcc" "src/CMakeFiles/gisql.dir/types/value.cc.o.d"
  "/root/repo/src/wire/protocol.cc" "src/CMakeFiles/gisql.dir/wire/protocol.cc.o" "gcc" "src/CMakeFiles/gisql.dir/wire/protocol.cc.o.d"
  "/root/repo/src/wire/serde.cc" "src/CMakeFiles/gisql.dir/wire/serde.cc.o" "gcc" "src/CMakeFiles/gisql.dir/wire/serde.cc.o.d"
  "/root/repo/src/workload/csv.cc" "src/CMakeFiles/gisql.dir/workload/csv.cc.o" "gcc" "src/CMakeFiles/gisql.dir/workload/csv.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/gisql.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/gisql.dir/workload/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
