/// \file bench_e18_scenarios.cc
/// \brief E18: million-user scenarios — streamed vs materialized
/// delivery under Zipf-skewed, diurnally-modulated, flash-crowd load.
///
/// A retail federation serves an open-loop tenant population (a
/// million tenants, Zipf-popular) at 0.5×–8× of its service capacity,
/// with a diurnal cycle and a 3× flash crowd mid-run. Each rung runs
/// twice: materialized (every query through Submit) and streamed
/// (streamable templates through cursors, chunk at a time). The table
/// reports tail sojourn (p99/p99.9), SLO attainment with sheds counted
/// as misses, shed decomposition, and the mediator's peak memory
/// footprint. Expected shape: attainment degrades gracefully as the
/// ladder climbs (shedding rises instead of tails exploding), and the
/// streamed column's peak footprint stays well below the materialized
/// one at every load. A same-seed rerun must replay the identical
/// per-arrival decision string.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "common/rng.h"
#include "workload/generator.h"
#include "workload/scenario.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

constexpr uint64_t kSeed = 18;

WorkloadSpec FederationSpec() {
  WorkloadSpec spec;
  spec.seed = kSeed;
  spec.num_sites = 3;
  spec.num_customers = Scaled(300, 40);
  spec.num_products = Scaled(80, 15);
  spec.orders_per_site = Scaled(1500, 150);
  spec.zipf_theta = 0.8;  // product popularity skew in the data itself
  return spec;
}

/// Mean simulated service time over a closed-loop probe of the
/// scenario's query shapes — the capacity estimate the ladder scales.
double MeanServiceMs() {
  GlobalSystem gis;
  if (!BuildRetailFederation(&gis, FederationSpec()).ok()) std::abort();
  const WorkloadSpec fed = FederationSpec();
  const std::vector<std::string> probe = {
      "SELECT sid, pid, amount FROM sales WHERE cid = 1",
      "SELECT pname, price FROM products WHERE pid = 3",
      "SELECT COUNT(*), SUM(amount) FROM sales WHERE cid = 2",
      "SELECT sid, cid, amount FROM sales WHERE amount > 500",
      "SELECT day, SUM(qty) FROM sales WHERE pid = " +
          std::to_string(fed.num_products / 2) + " GROUP BY day ORDER BY day",
  };
  double total = 0.0;
  int n = 0;
  for (int r = 0; r < 2; ++r) {
    for (const auto& q : probe) {
      total += Run(gis, q).elapsed_ms;
      ++n;
    }
  }
  return total / n;
}

ScenarioSpec MakeScenario(double multiplier, double service_ms,
                          bool streamed) {
  const WorkloadSpec fed = FederationSpec();
  ScenarioSpec spec;
  spec.seed = kSeed;
  spec.num_customers = fed.num_customers;
  spec.num_products = fed.num_products;
  spec.num_tenants = Scaled(int64_t{1000000}, int64_t{10000});
  spec.tenant_zipf_theta = 0.99;
  spec.template_zipf_theta = 0.5;

  // Offered rate: multiplier× the slot pool's service capacity; the
  // run length is chosen so every rung offers about the same number of
  // arrivals regardless of its multiplier.
  const int slots = 2;
  spec.base_qps = multiplier * slots * 1000.0 / service_ms;
  const double target_arrivals = Scaled(220.0, 28.0);
  spec.duration_ms = target_arrivals / (spec.base_qps / 1000.0);

  spec.diurnal_amplitude = 0.3;
  spec.diurnal_period_ms = spec.duration_ms / 2.0;
  FlashCrowd crowd;
  crowd.start_ms = 0.4 * spec.duration_ms;
  crowd.duration_ms = 0.2 * spec.duration_ms;
  crowd.multiplier = 3.0;
  spec.flash_crowds.push_back(crowd);

  spec.slo_ms = 4.0 * service_ms;
  spec.use_cursors = streamed;
  spec.chunk_rows = 128;
  return spec;
}

ScenarioReport RunRung(double multiplier, double service_ms, bool streamed) {
  PlannerOptions options;
  options.parallel_execution = false;
  options.max_concurrent_queries = 2;
  options.admission_queue_limit = 8;
  options.admission_max_wait_ms = 4.0 * service_ms;
  options.cursor_max_open = 8;
  GlobalSystem gis(options);
  if (!BuildRetailFederation(&gis, FederationSpec()).ok()) std::abort();
  auto report = RunScenario(&gis, MakeScenario(multiplier, service_ms,
                                               streamed));
  if (!report.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  return *report;
}

void TenantConcentration() {
  // What "a million users, Zipf 0.99" means in practice: the share of
  // traffic the hottest tenants absorb, from a direct draw.
  Rng rng(kSeed);
  const int64_t tenants = Scaled(int64_t{1000000}, int64_t{10000});
  const int draws = Scaled(20000, 2000);
  int64_t top1 = 0, top100 = 0;
  for (int i = 0; i < draws; ++i) {
    const int64_t rank = rng.Zipf(tenants, 0.99);
    if (rank == 1) ++top1;
    if (rank <= 100) ++top100;
  }
  std::printf(
      "## tenant concentration: %lld tenants, zipf 0.99 — hottest tenant "
      "%.1f%% of traffic, hottest 100 tenants %.1f%%\n\n",
      static_cast<long long>(tenants), 100.0 * top1 / draws,
      100.0 * top100 / draws);
}

void ScenarioLadder() {
  const double service_ms = MeanServiceMs();
  std::printf(
      "## scenario ladder (mean service %.2f ms, 2 slots, diurnal ±30%%, "
      "3× flash crowd mid-run, SLO %.1f ms)\n",
      service_ms, 4.0 * service_ms);
  std::printf("%-13s %-9s %8s %9s %5s %5s %5s %5s %9s %10s %9s %8s %9s\n",
              "mode", "offered×", "arrivals", "completed", "shedQ", "shedD",
              "shedM", "shedC", "p99", "p99.9", "SLO", "chunks",
              "mem peak");

  ScenarioReport mat_base, mat_peak, str_peak;
  int64_t mat_peak_mem = 0, str_peak_mem = 0;
  for (const bool streamed : {false, true}) {
    for (const double m : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const ScenarioReport r = RunRung(m, service_ms, streamed);
      std::printf(
          "%-13s %-9.1f %8lld %9lld %5lld %5lld %5lld %5lld %6.2f ms "
          "%7.2f ms %8.1f%% %8lld %7lld K\n",
          streamed ? "streamed" : "materialized", m,
          static_cast<long long>(r.offered),
          static_cast<long long>(r.completed),
          static_cast<long long>(r.shed_queue),
          static_cast<long long>(r.shed_deadline),
          static_cast<long long>(r.shed_memory),
          static_cast<long long>(r.shed_cursor), r.p99_ms, r.p999_ms,
          100.0 * r.slo_attainment, static_cast<long long>(r.total_chunks),
          static_cast<long long>(r.mem_peak_bytes / 1024));
      if (!streamed && m == 0.5) mat_base = r;
      if (!streamed && m == 8.0) {
        mat_peak = r;
        mat_peak_mem = r.mem_peak_bytes;
      }
      if (streamed && m == 8.0) {
        str_peak = r;
        str_peak_mem = r.mem_peak_bytes;
      }
    }
  }
  std::printf("\n");

  // The claims the table must support, checked rather than eyeballed.
  const int64_t base_shed = mat_base.shed_queue + mat_base.shed_deadline;
  const int64_t peak_shed = mat_peak.shed_queue + mat_peak.shed_deadline;
  if (peak_shed <= base_shed) {
    std::fprintf(stderr, "shed rate did not rise with overload\n");
    std::abort();
  }
  if (mat_base.slo_attainment <= mat_peak.slo_attainment) {
    std::fprintf(stderr, "SLO attainment did not fall under overload\n");
    std::abort();
  }
  if (str_peak.streamed_queries == 0 || str_peak.total_chunks == 0) {
    std::fprintf(stderr, "streamed rung streamed nothing\n");
    std::abort();
  }
  if (str_peak_mem > mat_peak_mem) {
    std::fprintf(stderr,
                 "streamed peak footprint (%lld) exceeded materialized "
                 "(%lld)\n",
                 static_cast<long long>(str_peak_mem),
                 static_cast<long long>(mat_peak_mem));
    std::abort();
  }

  // Same seed, same spec: the per-arrival decision string replays bit
  // for bit.
  const ScenarioReport replay = RunRung(8.0, service_ms, /*streamed=*/true);
  std::printf("## determinism: 8.0× streamed rung rerun — decisions %s\n\n",
              replay.decisions == str_peak.decisions ? "identical"
                                                     : "DIVERGED");
  if (replay.decisions != str_peak.decisions) std::abort();
}

}  // namespace

int main() {
  Logger::Instance().set_level(LogLevel::kError);
  Header("E18: million-user scenarios, streamed vs materialized",
         "a global federation absorbing planetary-scale user traffic: "
         "Zipf tenant popularity, diurnal cycles, flash crowds",
         "SLO attainment degrades gracefully as offered load climbs "
         "(shedding rises, tails stay bounded); cursor streaming holds "
         "the mediator's peak memory far below materialized delivery; "
         "same seed replays identical decisions");

  TenantConcentration();
  ScenarioLadder();
  return 0;
}
