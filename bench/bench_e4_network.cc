/// \file bench_e4_network.cc
/// \brief E4 (Figure 3): WAN sensitivity — the same query under swept
/// link latency and bandwidth.
///
/// Fixed query: 1%-selective filter + aggregation over one 100k-row
/// source. Ship-everything pays the full table transfer, so it should
/// degrade with bandwidth and be insensitive to latency beyond the
/// handful of round trips; the pushdown plan ships a few KiB and should
/// track latency only.

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/generator.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

GlobalSystem* BuildWorld() {
  auto* gis = new GlobalSystem();
  WorkloadSpec spec;
  spec.num_sites = 1;
  spec.num_customers = 100;
  spec.num_products = 100;
  spec.orders_per_site = bench::Scaled(100000, 2000);
  Status st = BuildRetailFederation(gis, spec);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::abort();
  }
  return gis;
}

}  // namespace

int main() {
  GlobalSystem* gis = BuildWorld();
  const std::string q =
      "SELECT pid, SUM(amount) FROM sales WHERE sid < 1000 GROUP BY pid";

  Header("E4: link sensitivity (fixed query: 1% filter + aggregate)",
         "operating over slow, expensive inter-organization links",
         "ship-everything degrades ~1/bandwidth; pushdown is flat in "
         "bandwidth and linear only in latency");

  std::printf("-- latency sweep @ 100 Mbps\n");
  std::printf("%12s | %12s %12s | %8s\n", "latency_ms", "push_ms",
              "ship_ms", "ratio");
  for (double lat : {1.0, 5.0, 20.0, 50.0, 100.0, 200.0}) {
    gis->network().set_default_link({lat, 100.0});
    gis->set_options(PlannerOptions::Full());
    auto push = Run(*gis, q);
    gis->set_options(PlannerOptions::ShipEverything());
    auto ship = Run(*gis, q);
    std::printf("%12.0f | %12.2f %12.2f | %7.2fx\n", lat, push.elapsed_ms,
                ship.elapsed_ms, ship.elapsed_ms / push.elapsed_ms);
  }

  std::printf("\n-- bandwidth sweep @ 20 ms\n");
  std::printf("%14s | %12s %12s | %8s\n", "bandwidth_mbps", "push_ms",
              "ship_ms", "ratio");
  for (double bw : {1.0, 10.0, 100.0, 1000.0}) {
    gis->network().set_default_link({20.0, bw});
    gis->set_options(PlannerOptions::Full());
    auto push = Run(*gis, q);
    gis->set_options(PlannerOptions::ShipEverything());
    auto ship = Run(*gis, q);
    std::printf("%14.0f | %12.2f %12.2f | %7.2fx\n", bw, push.elapsed_ms,
                ship.elapsed_ms, ship.elapsed_ms / push.elapsed_ms);
  }

  // Latency tails over a mixed workload: sweep the filter's
  // selectivity, and let every eighth query run under a ship-everything
  // plan (a client that defeats pushdown), then read p50/p95/p99 from
  // the mediator's registry. The p95/p99-vs-p50 gap is exactly the
  // cost of the occasional full-table ship.
  std::printf("\n-- latency distribution @ 20 ms / 100 Mbps "
              "(selectivity mix, 1/8 ship-everything)\n");
  gis->network().set_default_link({20.0, 100.0});
  gis->metrics().Reset();
  int i = 0;
  for (int sid = 200; sid <= 20000; sid += 200, ++i) {
    gis->set_options(i % 8 == 7 ? PlannerOptions::ShipEverything()
                                : PlannerOptions::Full());
    (void)Run(*gis, "SELECT pid, SUM(amount) FROM sales WHERE sid < " +
                        std::to_string(sid) + " GROUP BY pid");
  }
  gis->set_options(PlannerOptions::Full());
  const HistogramSnapshot lat = gis->metrics().SnapshotHistogram("query.ms");
  std::printf("%8s %10s %10s %10s %10s %10s %10s\n", "queries", "p50_ms",
              "p95_ms", "p99_ms", "p999_ms", "max_ms", "mean_ms");
  std::printf("%8lld %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
              static_cast<long long>(lat.count), lat.p50, lat.p95, lat.p99,
              lat.p999, lat.max, lat.count > 0 ? lat.sum / lat.count : 0.0);
  const HistogramSnapshot rpc = gis->metrics().SnapshotHistogram("query.bytes");
  std::printf("received/query: p50 %.1f KiB, p95 %.1f KiB, max %.1f KiB\n",
              rpc.p50 / 1024.0, rpc.p95 / 1024.0, rpc.max / 1024.0);

  // Per-operator actuals: where the simulated time and the bytes go.
  std::printf("\n-- per-operator EXPLAIN ANALYZE (pushdown plan)\n");
  auto analyzed = gis->Query("EXPLAIN ANALYZE " + q);
  if (analyzed.ok()) {
    std::printf("%s", analyzed->batch.rows()[0][0].AsString().c_str());
  }

  // What the whole sweep looked like from the mediator's own health
  // tracker — read through the gis.sources system table (zero traffic).
  std::printf("\n-- gis.sources after the sweep\n");
  auto health = gis->Query(
      "SELECT source, state, requests, errors, ewma_ms, p95_ms "
      "FROM gis.sources ORDER BY source");
  if (health.ok()) {
    std::printf("%s", health->batch.ToString().c_str());
  }
  delete gis;
  return 0;
}
