/// \file bench_e19_concurrency.cc
/// \brief E19: mixed OLTP/OLAP under snapshot isolation — a writer
/// ladder against a steady analytical reader.
///
/// Two autonomous banks hold account ledgers; 1×–8× concurrent writer
/// state machines run read-modify-write transactions (some spanning
/// both banks) over a deliberately small key space while an analytical
/// reader repeatedly aggregates the full ledger inside its own
/// snapshot. The claims, checked in-binary rather than eyeballed:
/// MVCC keeps the reader's p95 latency flat (within 10%) as writer
/// concurrency scales 1× → 8×; the abort rate rises with contention
/// while committed work still grows; and a same-seed rerun — serial or
/// on the worker pool — replays a byte-identical gis.transactions
/// ledger. All numbers come from the deterministic simulation.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "common/rng.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

constexpr uint64_t kSeed = 19;

constexpr const char* kBanks[2] = {"bank_a", "bank_b"};

int KeySpace() { return Scaled(16, 8); }

void BuildBanks(GlobalSystem* gis) {
  for (int b = 0; b < 2; ++b) {
    auto src = gis->CreateSource(kBanks[b], SourceDialect::kRelational);
    if (!src.ok() ||
        !gis->ExecuteAt(kBanks[b],
                        "CREATE TABLE accounts (id bigint, bal double)")
             .ok()) {
      std::abort();
    }
    std::string values;
    for (int k = 0; k < KeySpace(); ++k) {
      values += (k ? ", (" : "(") + std::to_string(k) + ", 100.0)";
    }
    if (!gis->ExecuteAt(kBanks[b], "INSERT INTO accounts VALUES " + values)
             .ok()) {
      std::abort();
    }
    const std::string alias = b == 0 ? "acct_a" : "acct_b";
    if (!gis->ImportTable(kBanks[b], "accounts", alias).ok()) std::abort();
  }
}

/// One writer's in-flight transaction: a seeded read-modify-write of
/// one key (every third writer transfers across both banks, which is
/// where deadlocks come from).
struct WriterTxn {
  uint64_t id = 0;
  int key = 0;
  int bank = 0;        ///< primary bank index
  bool transfer = false;
  double read_bal = 0.0;
  int step = 0;        ///< next statement to issue
  bool dead = false;
};

struct RungStats {
  int committed = 0;
  int aborted = 0;
  int deadlocks = 0;
  std::vector<double> reader_ms;
  std::string decisions;  ///< one char per txn outcome, replay log
  std::string txn_dump;   ///< gis.transactions at the end of the rung
  double sim_ms = 0.0;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<size_t>(p * (v.size() - 1))];
}

std::string DumpTransactions(GlobalSystem& gis) {
  auto r = gis.Query("SELECT * FROM gis.transactions");
  if (!r.ok()) std::abort();
  std::ostringstream oss;
  for (const auto& row : r->batch.rows()) {
    for (const auto& v : row) oss << v.ToString() << "|";
    oss << "\n";
  }
  return oss.str();
}

/// Issues writer `w`'s next statement; on any refusal the transaction
/// is aborted and the writer marked dead for this generation.
void Step(GlobalSystem& gis, WriterTxn* w, RungStats* stats) {
  if (w->dead) return;
  const char* bank = kBanks[w->bank];
  const char* other = kBanks[1 - w->bank];
  const std::string alias = w->bank == 0 ? "acct_a" : "acct_b";
  const std::string key = std::to_string(w->key);
  Status st = Status::OK();
  switch (w->step) {
    case 0: {
      auto r = gis.QueryInTxn(
          w->id, "SELECT bal FROM " + alias + " WHERE id = " + key);
      if (!r.ok() || r->batch.num_rows() != 1) {
        st = r.ok() ? Status::Internal("row missing") : r.status();
      } else {
        w->read_bal = r->batch.rows()[0][0].AsDouble();
      }
      break;
    }
    case 1:
      st = gis.TxnWrite(w->id, bank,
                        "DELETE FROM accounts WHERE id = " + key);
      break;
    case 2:
      st = gis.TxnWrite(w->id, bank,
                        "INSERT INTO accounts VALUES (" + key + ", " +
                            std::to_string(w->read_bal + 1.0) + ")");
      break;
    case 3:
      // The transfer leg touches the second bank — opposite lock
      // order across writers, so cycles occur under contention.
      if (w->transfer) {
        st = gis.TxnWrite(w->id, other,
                          "DELETE FROM accounts WHERE id = " + key);
        if (st.ok()) {
          st = gis.TxnWrite(w->id, other,
                            "INSERT INTO accounts VALUES (" + key + ", " +
                                std::to_string(w->read_bal - 1.0) + ")");
        }
      }
      break;
    default: {
      st = gis.CommitTransaction(w->id);
      if (st.ok()) {
        ++stats->committed;
        stats->decisions += 'C';
      }
      w->dead = true;  // finished either way
    }
  }
  if (!st.ok()) {
    ++stats->aborted;
    const bool deadlock =
        st.message().find("deadlock") != std::string::npos;
    if (deadlock) ++stats->deadlocks;
    stats->decisions += deadlock ? 'V' : (st.IsOverloaded() ? 'B' : 'W');
    (void)gis.AbortTransaction(w->id);
    w->dead = true;
  }
  ++w->step;
}

/// One ladder rung: `writers` interleaved OLTP state machines plus the
/// analytical reader, over a fixed number of generations.
RungStats Rung(int writers, bool pooled) {
  PlannerOptions options;
  options.parallel_execution = pooled;
  options.worker_threads = pooled ? 4 : 0;
  GlobalSystem gis(options);
  BuildBanks(&gis);

  Rng rng(kSeed);
  RungStats stats;
  const int generations = Scaled(40, 8);
  for (int gen = 0; gen < generations; ++gen) {
    // Open one transaction per writer, then interleave their
    // statements step by step so locks genuinely overlap.
    std::vector<WriterTxn> txns;
    for (int w = 0; w < writers; ++w) {
      auto id = gis.BeginTransaction();
      if (!id.ok()) std::abort();
      WriterTxn t;
      t.id = *id;
      t.key = static_cast<int>(rng.Uniform(0, KeySpace() - 1));
      t.bank = static_cast<int>(rng.Uniform(0, 1));
      t.transfer = w % 3 == 2;
      txns.push_back(t);
    }
    for (int step = 0; step < 5; ++step) {
      for (auto& t : txns) Step(gis, &t, &stats);
    }

    // The analytical reader: full-ledger aggregate inside its own
    // snapshot, latency recorded from the simulated clock.
    auto reader = gis.BeginTransaction();
    if (!reader.ok()) std::abort();
    auto agg = gis.QueryInTxn(
        *reader, "SELECT COUNT(*), SUM(bal) FROM acct_a");
    if (!agg.ok()) std::abort();
    stats.reader_ms.push_back(agg->metrics.elapsed_ms);
    if (!gis.CommitTransaction(*reader).ok()) std::abort();
  }
  stats.sim_ms = gis.governor().now_ms();
  stats.txn_dump = DumpTransactions(gis);
  return stats;
}

void Ladder() {
  std::printf(
      "## writer ladder vs analytical reader (%d keys x 2 banks)\n",
      KeySpace());
  std::printf("%-8s %10s %9s %10s %10s %12s %12s %14s\n", "writers",
              "committed", "aborted", "abort%", "deadlocks", "reader p50",
              "reader p95", "commit/sim-s");
  RungStats base, peak;
  for (const int w : {1, 2, 4, 8}) {
    const RungStats r = Rung(w, /*pooled=*/false);
    const int attempts = r.committed + r.aborted;
    const double abort_rate =
        attempts ? 100.0 * r.aborted / attempts : 0.0;
    const double throughput =
        r.sim_ms > 0.0 ? 1000.0 * r.committed / r.sim_ms : 0.0;
    std::printf("%-8d %10d %9d %9.1f%% %10d %9.3f ms %9.3f ms %14.1f\n",
                w, r.committed, r.aborted, abort_rate, r.deadlocks,
                Percentile(r.reader_ms, 0.50), Percentile(r.reader_ms, 0.95),
                throughput);
    if (w == 1) base = r;
    if (w == 8) peak = r;
  }
  std::printf("\n");

  // Claim 1: snapshot readers never wait on writers — p95 stays flat
  // (within 10%) from 1× to 8× writer concurrency.
  const double p95_base = Percentile(base.reader_ms, 0.95);
  const double p95_peak = Percentile(peak.reader_ms, 0.95);
  std::printf("reader p95: %.3f ms at 1x -> %.3f ms at 8x (%+.1f%%)\n",
              p95_base, p95_peak,
              p95_base > 0.0 ? 100.0 * (p95_peak - p95_base) / p95_base
                             : 0.0);
  if (p95_peak > p95_base * 1.10) {
    std::fprintf(stderr, "analytical reader p95 degraded past 10%%\n");
    std::abort();
  }
  // Claim 2: contention shows up as aborts, not as lost work — the 8×
  // rung aborts more than the 1× rung yet commits at least as much.
  if (peak.aborted <= base.aborted || peak.committed < base.committed) {
    std::fprintf(stderr, "abort/commit curve has the wrong shape\n");
    std::abort();
  }
}

void ReplayIdentity() {
  // Same seed, serial vs worker pool: the transaction ledger — ids,
  // states, timestamps, abort reasons — must be byte-identical, and so
  // must the per-statement outcome log.
  const RungStats serial = Rung(4, /*pooled=*/false);
  const RungStats pooled = Rung(4, /*pooled=*/true);
  const bool same = serial.txn_dump == pooled.txn_dump &&
                    serial.decisions == pooled.decisions;
  std::printf(
      "## determinism: 4x rung serial vs pooled — gis.transactions %s "
      "(%d txns logged)\n\n",
      same ? "byte-identical" : "DIVERGED",
      serial.committed + serial.aborted);
  if (!same) std::abort();
}

}  // namespace

int main() {
  Logger::Instance().set_level(LogLevel::kError);
  Header("E19: concurrent federated writes under snapshot isolation",
         "OLTP writer fleets and OLAP readers sharing one federation: "
         "MVCC snapshots, mediator deadlock detection, first-committer-"
         "wins conflicts",
         "analytical reader p95 flat within 10% from 1x to 8x writers; "
         "abort rate rises with contention while committed work grows; "
         "same seed replays a byte-identical transaction ledger serial "
         "vs pooled");

  Ladder();
  ReplayIdentity();
  return 0;
}
