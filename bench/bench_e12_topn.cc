/// \file bench_e12_topn.cc
/// \brief E12 (extension ablation): Top-N pushdown — ORDER BY + LIMIT
/// over a partitioned view, source-side top-k vs central sort, swept
/// over N and k.
///
/// With pushdown each of the N sites ships only its best k rows (N·k
/// total); the central baseline ships every row and sorts at the
/// mediator.

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/generator.h"

using namespace gisql;
using namespace gisql::bench;

int main() {
  Header("E12: Top-N pushdown over a partitioned view (extension)",
         "ORDER BY/LIMIT decomposition, standard in mature federated "
         "engines",
         "pushdown ships ~N*k rows instead of everything; advantage "
         "shrinks as k approaches rows/site");

  std::printf("%6s %8s | %12s %12s | %12s %12s | %8s\n", "sites", "k",
              "push_KiB", "cent_KiB", "push_ms", "cent_ms", "ratio");
  for (int sites : {2, 8}) {
    GlobalSystem gis;
    WorkloadSpec spec;
    spec.num_sites = sites;
    spec.num_customers = 100;
    spec.num_products = 100;
    spec.orders_per_site = Scaled(25000, 1000);
    if (Status st = BuildRetailFederation(&gis, spec); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    gis.network().set_default_link({20.0, 50.0});
    for (int k : {1, 10, 100, 1000, 10000}) {
      const std::string q = "SELECT sid, amount FROM sales ORDER BY "
                            "amount DESC LIMIT " + std::to_string(k);
      gis.set_options(PlannerOptions::Full());
      auto push = Run(gis, q);
      PlannerOptions central;
      central.enable_limit_pushdown = false;
      gis.set_options(central);
      auto cent = Run(gis, q);
      std::printf("%6d %8d | %12.1f %12.1f | %12.2f %12.2f | %8.2fx\n",
                  sites, k, push.bytes_received / 1024.0,
                  cent.bytes_received / 1024.0, push.elapsed_ms,
                  cent.elapsed_ms, cent.elapsed_ms / push.elapsed_ms);
    }
    std::printf("\n");
  }
  return 0;
}
