/// \file bench_e7_aggregation.cc
/// \brief E7 (Figure 4): aggregation pushdown — partial aggregation at
/// the sources vs central aggregation, swept over group cardinality.
///
/// Four sites hold 50k-row shards of a sales view. The query groups on
/// `sid % K`; sweeping K moves the number of groups from 1 to ~200k.
/// Partial aggregation ships one row per group per site, so its
/// advantage should shrink as K approaches the row count and invert
/// slightly past it (partials per site + merge overhead).

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/generator.h"

using namespace gisql;
using namespace gisql::bench;

int main() {
  GlobalSystem gis;
  WorkloadSpec spec;
  spec.num_sites = 4;
  spec.num_customers = 100;
  spec.num_products = 100;
  spec.orders_per_site = Scaled(50000, 1000);
  if (Status st = BuildRetailFederation(&gis, spec); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  gis.network().set_default_link({20.0, 50.0});

  Header("E7: partial vs central aggregation, group-cardinality sweep "
         "(4 sites x 50k rows)",
         "decomposed evaluation of global aggregates",
         "partial aggregation wins by ~rows/groups while groups << rows; "
         "the two converge as every row becomes its own group");

  std::printf("%10s %10s | %12s %12s | %12s %12s | %8s | %s\n", "K",
              "groups", "part_KiB", "cent_KiB", "part_ms", "cent_ms",
              "ratio", "partial wire throughput");
  const std::vector<long long> sweep =
      SmokeMode()
          ? std::vector<long long>{1, 256}
          : std::vector<long long>{1, 16, 256, 4096, 65536, 1000000};
  for (long long k : sweep) {
    const std::string q = "SELECT sid % " + std::to_string(k) +
                          " AS g, COUNT(*), SUM(amount) FROM sales GROUP "
                          "BY sid % " + std::to_string(k);

    gis.set_options(PlannerOptions::Full());
    auto [groups, partial] = RunCounted(gis, q);

    PlannerOptions central;
    central.enable_aggregate_pushdown = false;
    gis.set_options(central);
    auto cent = Run(gis, q);

    // Aggregated rows per simulated second and wire MB per simulated
    // second for the partial-aggregation plan.
    const auto tp = ThroughputOf(
        static_cast<double>(spec.num_sites) * spec.orders_per_site,
        static_cast<double>(partial.bytes_received),
        partial.elapsed_ms / 1000.0);
    std::printf(
        "%10lld %10zu | %12.1f %12.1f | %12.2f %12.2f | %8.2fx | %s\n", k,
        groups, partial.bytes_received / 1024.0,
        cent.bytes_received / 1024.0, partial.elapsed_ms, cent.elapsed_ms,
        cent.elapsed_ms / partial.elapsed_ms, FormatThroughput(tp).c_str());
  }
  return 0;
}
