/// \file bench_e10_wire.cc
/// \brief E10 (Table 5): wire protocol microbenchmarks — serialization
/// and deserialization throughput for values, batches, and expressions.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "expr/binder.h"
#include "sql/parser.h"
#include "wire/serde.h"

namespace gisql {
namespace {

RowBatch MakeBatch(int64_t rows) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"id", TypeId::kInt64},
      {"v", TypeId::kDouble},
      {"tag", TypeId::kString},
      {"flag", TypeId::kBool}});
  RowBatch batch(schema);
  Rng rng(3);
  for (int64_t i = 0; i < rows; ++i) {
    batch.Append({Value::Int(i), Value::Double(rng.NextDouble()),
                  Value::String(rng.NextString(12)),
                  Value::Bool(rng.Bernoulli(0.5))});
  }
  return batch;
}

void BM_SerializeBatch(benchmark::State& state) {
  RowBatch batch = MakeBatch(state.range(0));
  int64_t bytes = 0;
  for (auto _ : state) {
    auto buf = wire::SerializeBatch(batch);
    bytes = static_cast<int64_t>(buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DeserializeBatch(benchmark::State& state) {
  RowBatch batch = MakeBatch(state.range(0));
  auto buf = wire::SerializeBatch(batch);
  for (auto _ : state) {
    ByteReader reader(buf);
    auto back = wire::ReadBatch(&reader);
    benchmark::DoNotOptimize(back->num_rows());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeserializeBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ValueRoundTrip(benchmark::State& state) {
  const Value values[] = {Value::Int(123456789), Value::Double(3.14),
                          Value::String("hello wire"), Value::Bool(true),
                          Value::Null(TypeId::kInt64)};
  for (auto _ : state) {
    ByteWriter writer;
    for (const auto& v : values) wire::WriteValue(&writer, v);
    ByteReader reader(writer.data());
    for (size_t i = 0; i < std::size(values); ++i) {
      auto v = wire::ReadValue(&reader);
      benchmark::DoNotOptimize(v.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(std::size(values)));
}
BENCHMARK(BM_ValueRoundTrip);

void BM_ExprRoundTrip(benchmark::State& state) {
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kDouble},
                 {"c", TypeId::kString}});
  Binder binder(schema);
  auto ast = sql::ParseScalarExpr(
      "a > 5 AND b * 2.0 < 100 AND c LIKE 'x%' AND a IN (1, 2, 3, 4)");
  ExprPtr expr = *binder.BindScalar(**ast);
  for (auto _ : state) {
    ByteWriter writer;
    wire::WriteExpr(&writer, *expr);
    ByteReader reader(writer.data());
    auto back = wire::ReadExpr(&reader);
    benchmark::DoNotOptimize(back.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprRoundTrip);

void BM_VarintCodec(benchmark::State& state) {
  Rng rng(5);
  std::vector<uint64_t> values(1000);
  for (auto& v : values) v = rng.Next() >> (rng.Next() % 56);
  for (auto _ : state) {
    ByteWriter writer;
    for (uint64_t v : values) writer.PutVarint(v);
    ByteReader reader(writer.data());
    uint64_t sum = 0;
    for (size_t i = 0; i < values.size(); ++i) sum += *reader.GetVarint();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_VarintCodec);

}  // namespace
}  // namespace gisql

BENCHMARK_MAIN();
