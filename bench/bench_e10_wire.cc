/// \file bench_e10_wire.cc
/// \brief E10 (Table 5): wire protocol microbenchmarks — serialization
/// and deserialization throughput for values, batches, and expressions.
///
/// The headline comparison is the batch round trip (serialize +
/// deserialize) in the classic row encoding vs the columnar encoding on
/// a realistic mixed int/double/string/bool schema, reported in rows/s
/// and MB/s (wall clock; the wire bytes themselves are deterministic).
/// The google-benchmark micro suite below it breaks the same paths down
/// per operation.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "expr/binder.h"
#include "sql/parser.h"
#include "types/column_batch.h"
#include "wire/serde.h"

namespace gisql {
namespace {

RowBatch MakeBatch(int64_t rows) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"id", TypeId::kInt64},
      {"v", TypeId::kDouble},
      {"tag", TypeId::kString},
      {"flag", TypeId::kBool}});
  RowBatch batch(schema);
  Rng rng(3);
  for (int64_t i = 0; i < rows; ++i) {
    batch.Append({Value::Int(i), Value::Double(rng.NextDouble()),
                  Value::String(rng.NextString(12)),
                  Value::Bool(rng.Bernoulli(0.5))});
  }
  return batch;
}

/// Wall-clock seconds for `iters` runs of `fn`.
template <typename Fn>
double TimeSec(int iters, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// The headline row-vs-columnar round trip. Prints both encodings in
/// rows/s and MB/s plus the speedup, before the micro suite runs.
void RowVsColumnarRoundTrip() {
  const int64_t rows = bench::Scaled<int64_t>(16384, 512);
  const int iters = bench::Scaled(200, 2);
  RowBatch batch = MakeBatch(rows);
  ColumnBatch columns = *ColumnBatch::FromRows(batch);

  const auto row_buf = wire::SerializeBatch(batch);
  const auto col_buf = wire::SerializeColumnBatch(columns);

  const double row_sec = TimeSec(iters, [&] {
    auto buf = wire::SerializeBatch(batch);
    ByteReader reader(buf);
    auto back = wire::ReadBatch(&reader);
    benchmark::DoNotOptimize(back->num_rows());
  });
  const double col_sec = TimeSec(iters, [&] {
    auto buf = wire::SerializeColumnBatch(columns);
    ByteReader reader(buf);
    auto back = wire::ReadColumnBatch(&reader);
    benchmark::DoNotOptimize(back->num_rows());
  });

  const double n = static_cast<double>(rows) * iters;
  const auto row_tp =
      bench::ThroughputOf(n, static_cast<double>(row_buf.size()) * iters,
                          row_sec);
  const auto col_tp =
      bench::ThroughputOf(n, static_cast<double>(col_buf.size()) * iters,
                          col_sec);

  std::printf(
      "## batch round trip (serialize + deserialize), %lld rows of "
      "(int64, double, string, bool)\n",
      static_cast<long long>(rows));
  std::printf("  row      %s  (%zu wire bytes)\n",
              bench::FormatThroughput(row_tp).c_str(), row_buf.size());
  std::printf("  columnar %s  (%zu wire bytes)\n",
              bench::FormatThroughput(col_tp).c_str(), col_buf.size());
  std::printf("  speedup  %.2fx rows/s, %.2fx wire bytes\n\n",
              col_tp.rows_per_sec / row_tp.rows_per_sec,
              static_cast<double>(row_buf.size()) / col_buf.size());
}

void BM_SerializeBatch(benchmark::State& state) {
  RowBatch batch = MakeBatch(state.range(0));
  int64_t bytes = 0;
  for (auto _ : state) {
    auto buf = wire::SerializeBatch(batch);
    bytes = static_cast<int64_t>(buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DeserializeBatch(benchmark::State& state) {
  RowBatch batch = MakeBatch(state.range(0));
  auto buf = wire::SerializeBatch(batch);
  for (auto _ : state) {
    ByteReader reader(buf);
    auto back = wire::ReadBatch(&reader);
    benchmark::DoNotOptimize(back->num_rows());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeserializeBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SerializeColumnBatch(benchmark::State& state) {
  ColumnBatch columns = *ColumnBatch::FromRows(MakeBatch(state.range(0)));
  int64_t bytes = 0;
  for (auto _ : state) {
    auto buf = wire::SerializeColumnBatch(columns);
    bytes = static_cast<int64_t>(buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeColumnBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DeserializeColumnBatch(benchmark::State& state) {
  ColumnBatch columns = *ColumnBatch::FromRows(MakeBatch(state.range(0)));
  auto buf = wire::SerializeColumnBatch(columns);
  for (auto _ : state) {
    ByteReader reader(buf);
    auto back = wire::ReadColumnBatch(&reader);
    benchmark::DoNotOptimize(back->num_rows());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeserializeColumnBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ValueRoundTrip(benchmark::State& state) {
  const Value values[] = {Value::Int(123456789), Value::Double(3.14),
                          Value::String("hello wire"), Value::Bool(true),
                          Value::Null(TypeId::kInt64)};
  for (auto _ : state) {
    ByteWriter writer;
    for (const auto& v : values) wire::WriteValue(&writer, v);
    ByteReader reader(writer.data());
    for (size_t i = 0; i < std::size(values); ++i) {
      auto v = wire::ReadValue(&reader);
      benchmark::DoNotOptimize(v.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(std::size(values)));
}
BENCHMARK(BM_ValueRoundTrip);

void BM_ExprRoundTrip(benchmark::State& state) {
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kDouble},
                 {"c", TypeId::kString}});
  Binder binder(schema);
  auto ast = sql::ParseScalarExpr(
      "a > 5 AND b * 2.0 < 100 AND c LIKE 'x%' AND a IN (1, 2, 3, 4)");
  ExprPtr expr = *binder.BindScalar(**ast);
  for (auto _ : state) {
    ByteWriter writer;
    wire::WriteExpr(&writer, *expr);
    ByteReader reader(writer.data());
    auto back = wire::ReadExpr(&reader);
    benchmark::DoNotOptimize(back.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprRoundTrip);

void BM_VarintCodec(benchmark::State& state) {
  Rng rng(5);
  std::vector<uint64_t> values(1000);
  for (auto& v : values) v = rng.Next() >> (rng.Next() % 56);
  for (auto _ : state) {
    ByteWriter writer;
    for (uint64_t v : values) writer.PutVarint(v);
    ByteReader reader(writer.data());
    uint64_t sum = 0;
    for (size_t i = 0; i < values.size(); ++i) sum += *reader.GetVarint();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_VarintCodec);

}  // namespace
}  // namespace gisql

int main(int argc, char** argv) {
  gisql::RowVsColumnarRoundTrip();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
