/// \file bench_e6_heterogeneity.cc
/// \brief E6 (Table 3): heterogeneity overhead — the identical query
/// against each source dialect, measuring how much work the mediator
/// must compensate for.
///
/// The same 50k-row sales table is hosted by a RELATIONAL, DOCUMENT,
/// KEYVALUE, and LEGACY source. The query filters (~2% selective),
/// projects two of six columns, and aggregates. Dialects that cannot
/// push work ship more bytes and force mediator-side operators.

#include <cstdio>

#include "bench/bench_common.h"
#include "sql/parser.h"

using namespace gisql;
using namespace gisql::bench;

int main() {
  Header("E6: same query, four source dialects (50k rows)",
         "integrating heterogeneous component systems behind one schema",
         "bytes and latency grow as capabilities shrink: RELATIONAL <= "
         "DOCUMENT <= KEYVALUE/LEGACY; answers identical");

  const SourceDialect dialects[] = {
      SourceDialect::kRelational, SourceDialect::kDocument,
      SourceDialect::kKeyValue, SourceDialect::kLegacy};

  std::printf("%-12s | %12s %12s %6s | %7s %8s %5s | %s\n", "dialect",
              "bytes_KiB", "sim_ms", "msgs", "filters", "projects",
              "aggs", "(mediator-side compensation ops)");
  double reference = -1;
  for (SourceDialect d : dialects) {
    GlobalSystem gis;
    auto src = *gis.CreateSource("site", d);
    (void)src->ExecuteLocalSql(
        "CREATE TABLE sales (sid bigint, cid bigint, pid bigint, "
        "qty bigint, amount double, pad varchar)");
    auto t = *src->engine().GetTable("sales");
    std::vector<Row> rows;
    for (int i = 0; i < Scaled(50000, 2000); ++i) {
      rows.push_back({Value::Int(i), Value::Int(i % 500),
                      Value::Int(i % 100), Value::Int(1 + i % 9),
                      Value::Double(i * 0.37),
                      Value::String("padpadpadpadpadpad")});
    }
    t->InsertUnchecked(std::move(rows));
    (void)gis.ImportSource("site");
    gis.network().set_default_link({20.0, 50.0});

    const std::string q =
        "SELECT pid, SUM(amount) FROM sales WHERE sid < 1000 GROUP BY pid";
    auto result = gis.Query(q);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    if (reference < 0) {
      reference = 0;
      for (const auto& row : result->batch.rows()) {
        reference += row[1].AsDouble();
      }
    } else {
      double total = 0;
      for (const auto& row : result->batch.rows()) {
        total += row[1].AsDouble();
      }
      if (std::abs(total - reference) > 1e-6) {
        std::fprintf(stderr, "dialect changed the answer!\n");
        return 1;
      }
    }

    // Count mediator-side compensation operators in the plan.
    auto stmt = sql::ParseSelect(q);
    auto plan = *gis.PlanQuery(**stmt);
    int filters = 0, projects = 0, aggs = 0;
    VisitPlan(plan, [&](const PlanNodePtr& node) {
      if (node->kind == PlanKind::kFilter) ++filters;
      if (node->kind == PlanKind::kProject) ++projects;
      if (node->kind == PlanKind::kAggregate) ++aggs;
    });

    std::printf("%-12s | %12.1f %12.2f %6lld | %7d %8d %5d |\n",
                SourceDialectName(d),
                result->metrics.bytes_received / 1024.0,
                result->metrics.elapsed_ms,
                static_cast<long long>(result->metrics.messages), filters,
                projects, aggs);
  }
  return 0;
}
