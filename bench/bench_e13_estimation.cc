/// \file bench_e13_estimation.cc
/// \brief E13 (extension ablation): cardinality estimation quality —
/// equi-depth histograms vs min/max interpolation on skewed data.
///
/// One source holds 100k rows whose values are heavily skewed (90% in
/// [0,100), tail to 10k). For a sweep of range predicates we report the
/// estimated rows with histograms, the estimate after stripping the
/// histograms from the catalog (falling back to min/max interpolation),
/// the true count, and the q-error of each estimator.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "planner/cost_model.h"
#include "planner/logical_planner.h"
#include "sql/parser.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

double EstimateFilterRows(GlobalSystem& gis, const std::string& q) {
  CostParams params;
  CostModel cost(gis.catalog(), params);
  LogicalPlanner planner(gis.catalog());
  auto stmt = sql::ParseSelect(q);
  auto plan = planner.Plan(**stmt);
  if (!plan.ok()) return -1;
  cost.Annotate(*plan);
  double est = -1;
  VisitPlan(*plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kFilter) est = node->est_rows;
  });
  return est;
}

double QError(double est, double actual) {
  est = std::max(est, 1.0);
  actual = std::max(actual, 1.0);
  return std::max(est / actual, actual / est);
}

}  // namespace

int main() {
  Header("E13: cardinality estimation with/without histograms (skewed "
         "100k-row column)",
         "statistics-driven global query optimization",
         "histogram q-error stays near 1 across the sweep; min/max "
         "interpolation misestimates the skewed head by orders of "
         "magnitude");

  GlobalSystem gis;
  auto src = *gis.CreateSource("s1", SourceDialect::kRelational);
  (void)src->ExecuteLocalSql("CREATE TABLE t (v bigint)");
  Rng rng(99);
  std::vector<Row> rows;
  for (int i = 0; i < Scaled(100000, 5000); ++i) {
    rows.push_back({Value::Int(rng.Bernoulli(0.9)
                                   ? rng.Uniform(0, 99)
                                   : rng.Uniform(100, 10000))});
  }
  {
    auto table = *src->engine().GetTable("t");
    table->InsertUnchecked(std::move(rows));
  }
  (void)gis.ImportSource("s1");

  // A stats copy without histograms = the pre-histogram estimator.
  TableStats stripped = (*gis.catalog().GetTable("t"))->stats;
  TableStats with_hist = stripped;
  for (auto& c : stripped.columns) c.histogram_bounds.clear();

  std::printf("%10s | %10s | %12s %8s | %12s %8s\n", "pred v<", "actual",
              "hist_est", "q_err", "minmax_est", "q_err");
  for (int64_t b : {5, 20, 50, 100, 500, 2000, 8000}) {
    const std::string q = "SELECT v FROM t WHERE v < " + std::to_string(b);
    auto [actual, m] = RunCounted(gis, q);
    (void)m;

    const double est_hist = EstimateFilterRows(gis, q);
    (void)gis.catalog().UpdateStats("t", stripped);
    const double est_minmax = EstimateFilterRows(gis, q);
    (void)gis.catalog().UpdateStats("t", with_hist);

    std::printf("%10lld | %10zu | %12.0f %8.2f | %12.0f %8.2f\n",
                static_cast<long long>(b), actual, est_hist,
                QError(est_hist, static_cast<double>(actual)), est_minmax,
                QError(est_minmax, static_cast<double>(actual)));
  }
  return 0;
}
