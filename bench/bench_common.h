/// \file bench_common.h
/// \brief Shared helpers for the experiment harness binaries.
///
/// Each bench_eN binary regenerates one table/figure of the
/// reconstructed evaluation (see DESIGN.md). All reported numbers come
/// from the deterministic simulation (bytes on the wire, RPC counts,
/// simulated milliseconds), so every run reproduces exactly.

#pragma once

#include <cstdio>
#include <string>

#include "core/global_system.h"

namespace gisql {
namespace bench {

/// \brief Runs a query and returns its metrics; aborts on error so a
/// broken experiment fails loudly.
inline QueryMetrics Run(GlobalSystem& gis, const std::string& sql) {
  auto result = gis.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
  return result->metrics;
}

/// \brief Runs a query and returns row count + metrics.
inline std::pair<size_t, QueryMetrics> RunCounted(GlobalSystem& gis,
                                                  const std::string& sql) {
  auto result = gis.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
  return {result->batch.num_rows(), result->metrics};
}

inline void Header(const char* experiment, const char* standin,
                   const char* expectation) {
  std::printf("# %s\n#   stands in for: %s\n#   expected shape: %s\n\n",
              experiment, standin, expectation);
}

}  // namespace bench
}  // namespace gisql
