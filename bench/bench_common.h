/// \file bench_common.h
/// \brief Shared helpers for the experiment harness binaries.
///
/// Each bench_eN binary regenerates one table/figure of the
/// reconstructed evaluation (see DESIGN.md). All reported numbers come
/// from the deterministic simulation (bytes on the wire, RPC counts,
/// simulated milliseconds), so every run reproduces exactly.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/global_system.h"

namespace gisql {
namespace bench {

/// \brief True when GISQL_BENCH_SMOKE is set. Under the ctest
/// `perf-smoke` label every bench binary runs with a shrunken workload
/// so a full sweep finishes in about a second — enough to catch bench
/// code that no longer compiles against the library or crashes at
/// runtime, without turning tier-1 into a benchmark run.
inline bool SmokeMode() { return std::getenv("GISQL_BENCH_SMOKE") != nullptr; }

/// \brief `full` normally, `smoke` under GISQL_BENCH_SMOKE.
template <typename T>
inline T Scaled(T full, T smoke) {
  return SmokeMode() ? smoke : full;
}

/// \brief Throughput of a transfer/merge step, derived from the
/// deterministic simulation (rows and wire bytes over simulated time)
/// or from wall-clock microbenchmarks — the caller picks the clock.
struct Throughput {
  double rows_per_sec = 0.0;
  double mb_per_sec = 0.0;
};

inline Throughput ThroughputOf(double rows, double bytes, double seconds) {
  Throughput t;
  if (seconds > 0.0) {
    t.rows_per_sec = rows / seconds;
    t.mb_per_sec = bytes / (1024.0 * 1024.0) / seconds;
  }
  return t;
}

/// \brief "1.23M rows/s 45.6 MB/s" — the standard before/after format
/// shared by E2/E7/E10 so numbers stay comparable across reports.
inline std::string FormatThroughput(const Throughput& t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%8.2fM rows/s %8.1f MB/s",
                t.rows_per_sec / 1e6, t.mb_per_sec);
  return buf;
}

/// \brief Runs a query and returns its metrics; aborts on error so a
/// broken experiment fails loudly.
inline QueryMetrics Run(GlobalSystem& gis, const std::string& sql) {
  auto result = gis.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
  return result->metrics;
}

/// \brief Runs a query and returns row count + metrics.
inline std::pair<size_t, QueryMetrics> RunCounted(GlobalSystem& gis,
                                                  const std::string& sql) {
  auto result = gis.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n",
                 result.status().ToString().c_str(), sql.c_str());
    std::abort();
  }
  return {result->batch.num_rows(), result->metrics};
}

inline void Header(const char* experiment, const char* standin,
                   const char* expectation) {
  std::printf("# %s\n#   stands in for: %s\n#   expected shape: %s\n\n",
              experiment, standin, expectation);
}

}  // namespace bench
}  // namespace gisql
