/// \file bench_e16_health.cc
/// \brief E16: the mediator observing itself — per-source health under
/// an escalating chaos ladder, read back through the `gis.*` system
/// tables and the Prometheus exposition.
///
/// A retail federation runs the same query mix at increasing fault
/// intensities. After each rung the experiment queries `gis.sources`
/// (through the ordinary SQL pipeline, at zero network cost) and prints
/// the health rows the mediator derived purely from its own traffic:
/// requests, errors, retries, latency EWMA/p95, and the
/// healthy/degraded/suspect state. Deterministic: same seeds, same
/// table, every run.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "workload/generator.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

WorkloadSpec Spec() {
  WorkloadSpec spec;
  spec.seed = 16;
  spec.num_sites = 3;
  spec.num_customers = Scaled(300, 40);
  spec.num_products = Scaled(80, 15);
  spec.orders_per_site = Scaled(2000, 150);
  return spec;
}

const std::vector<std::string>& Mix() {
  static const std::vector<std::string> queries = {
      "SELECT COUNT(*), SUM(amount) FROM sales",
      "SELECT region, SUM(amount) FROM sales JOIN customers "
      "ON sales.cid = customers.cid GROUP BY region ORDER BY region",
      "SELECT day, COUNT(*) FROM sales WHERE qty > 2 GROUP BY day "
      "ORDER BY day",
      "SELECT cid, name FROM customers WHERE cid < 10 ORDER BY cid",
  };
  return queries;
}

/// One rung: fresh federation, seeded chaos at `intensity`, the query
/// mix, then the health table as the mediator itself reports it.
void Rung(double intensity) {
  PlannerOptions options;
  options.parallel_execution = false;  // keep fault replay order-exact
  GlobalSystem gis(options);
  if (!BuildRetailFederation(&gis, Spec()).ok()) {
    std::fprintf(stderr, "federation build failed\n");
    std::abort();
  }
  gis.set_retry_policy(RetryPolicy::Standard(5, /*seed=*/16));
  gis.network().InstallFaults(/*seed=*/16, FaultProfile::Chaos(intensity));

  int ok = 0, failed = 0;
  const int repeats = Scaled(5, 2);
  for (int r = 0; r < repeats; ++r) {
    for (const auto& q : Mix()) {
      if (gis.Query(q).ok()) {
        ++ok;
      } else {
        ++failed;
      }
    }
  }

  std::printf("## chaos intensity %.2f — %d ok, %d failed\n", intensity, ok,
              failed);
  auto health = gis.Query(
      "SELECT source, state, requests, errors, retries, ewma_ms, p95_ms "
      "FROM gis.sources ORDER BY source");
  if (!health.ok()) {
    std::fprintf(stderr, "gis.sources failed: %s\n",
                 health.status().ToString().c_str());
    std::abort();
  }
  if (health->metrics.messages != 0) {
    std::fprintf(stderr, "observing the system cost network traffic!\n");
    std::abort();
  }
  std::printf("%s\n", health->batch.ToString().c_str());
}

/// One source's state as the mediator reports it, via gis.sources.
std::string StateOf(GlobalSystem& gis, const std::string& source) {
  auto res = gis.Query(
      "SELECT state, requests, errors, retries, consecutive_failures "
      "FROM gis.sources WHERE source = '" +
      source + "'");
  if (!res.ok() || res->batch.num_rows() != 1) {
    std::fprintf(stderr, "gis.sources probe failed\n");
    std::abort();
  }
  const auto& row = res->batch.rows()[0];
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-8s (requests %s, errors %s, streak %s)",
                row[0].AsString().c_str(), row[1].ToString().c_str(),
                row[2].ToString().c_str(), row[4].ToString().c_str());
  return buf;
}

/// A hard outage on one site: the state machine walks healthy ->
/// degraded -> suspect as the error streak grows, then — because the
/// outcome window slides — recovers to healthy once the fault clears.
void OutageWalk() {
  PlannerOptions options;
  options.parallel_execution = false;
  GlobalSystem gis(options);
  if (!BuildRetailFederation(&gis, Spec()).ok()) std::abort();
  gis.set_retry_policy(RetryPolicy::Standard(2, /*seed=*/16));
  gis.network().InstallFaults(/*seed=*/16, FaultProfile{});

  const std::string probe = "SELECT COUNT(*) FROM sales_site0";
  std::printf("## hard outage on site0 (every request dropped)\n");
  std::printf("%-28s %s\n", "before:", StateOf(gis, "site0").c_str());
  gis.network().faults()->InjectOn("site0", /*opcode=*/-1, FaultKind::kDrop,
                                   /*count=*/1000);
  for (int i = 0; i < 6; ++i) (void)gis.Query(probe);
  std::printf("%-28s %s\n", "during (6 failed probes):",
              StateOf(gis, "site0").c_str());
  gis.network().ClearFaults();
  for (int i = 0; i < 40; ++i) (void)gis.Query(probe);
  std::printf("%-28s %s\n\n", "after (40 clean probes):",
              StateOf(gis, "site0").c_str());
}

}  // namespace

int main() {
  Header("E16: self-observation — source health under escalating chaos",
         "a mediator's ops view of autonomous sources it cannot "
         "introspect, derived entirely from its own RPC stream",
         "errors/retries/latency rise with intensity; states shift "
         "healthy -> degraded/suspect; reading gis.* costs zero traffic");

  for (double intensity : {0.0, 0.3, 0.8}) Rung(intensity);
  OutageWalk();

  // A Prometheus excerpt from the last-rung world shape: rebuilt clean
  // here so the sample is small and stable.
  GlobalSystem gis;
  if (!BuildRetailFederation(&gis, Spec()).ok()) return 1;
  (void)gis.Query("SELECT COUNT(*) FROM sales");
  const std::string text = gis.ExportPrometheus();
  std::printf("## prometheus exposition (first lines)\n");
  size_t pos = 0;
  for (int line = 0; line < 12 && pos != std::string::npos; ++line) {
    const size_t end = text.find('\n', pos);
    if (end == std::string::npos) break;
    std::printf("%s\n", text.substr(pos, end - pos).c_str());
    pos = end + 1;
  }
  std::printf("# ... %zu bytes total\n", text.size());
  return 0;
}
