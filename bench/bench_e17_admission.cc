/// \file bench_e17_admission.cc
/// \brief E17: admission control & adaptive load management — an
/// open-loop overload ladder against the resource governor, plus the
/// circuit-breaker failover-cost comparison.
///
/// A retail federation receives an open-loop query stream at 0.5×–8× of
/// its service capacity. With the governor on, the bounded wait queue
/// and the balk-at-admission deadline keep the p95 sojourn (queue wait
/// + execution) of *admitted* queries flat while the shed rate climbs
/// with the overload; the uncontrolled configuration (unbounded queue,
/// no deadline) admits everything and its p95 sojourn grows without
/// bound. A same-seed rerun must replay the identical admit/shed
/// decision sequence. The breaker section replays the E11/E15 failover
/// scenario: with the primary replica down, breaker-off queries burn
/// the detection timeout every time, while an open breaker skips the
/// dead replica at zero network cost — same messages, less simulated
/// time. All numbers come from the deterministic simulation.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/hash.h"
#include "common/logging.h"
#include "workload/generator.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

constexpr uint64_t kSeed = 17;

WorkloadSpec Spec() {
  WorkloadSpec spec;
  spec.seed = kSeed;
  spec.num_sites = 3;
  spec.num_customers = Scaled(300, 40);
  spec.num_products = Scaled(80, 15);
  spec.orders_per_site = Scaled(1500, 150);
  return spec;
}

const std::vector<std::string>& Mix() {
  static const std::vector<std::string> queries = {
      "SELECT COUNT(*), SUM(amount) FROM sales",
      "SELECT day, COUNT(*) FROM sales WHERE qty > 2 GROUP BY day "
      "ORDER BY day",
      "SELECT cid, name FROM customers WHERE cid < 10 ORDER BY cid",
      "SELECT region, COUNT(*) FROM customers GROUP BY region "
      "ORDER BY region",
  };
  return queries;
}

/// Mean simulated service time of the mix, measured closed-loop on a
/// throwaway system — the capacity estimate the ladder is scaled by.
double MeanServiceMs() {
  GlobalSystem gis;
  if (!BuildRetailFederation(&gis, Spec()).ok()) std::abort();
  double total = 0.0;
  int n = 0;
  for (int r = 0; r < 2; ++r) {
    for (const auto& q : Mix()) {
      total += Run(gis, q).elapsed_ms;
      ++n;
    }
  }
  return total / n;
}

struct RungResult {
  int offered = 0;
  int admitted = 0;
  int shed_queue = 0;
  int shed_deadline = 0;
  double p50_sojourn = 0.0;
  double p95_sojourn = 0.0;
  double max_wait = 0.0;
  std::string decisions;  ///< "A"/"Q"/"D" per offered query
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

/// One ladder rung: a fresh federation under an open-loop stream at
/// `multiplier`× capacity. `controlled` picks the governed limits or
/// the unbounded-queue stand-in for a mediator without a governor.
RungResult Rung(double multiplier, double service_ms, bool controlled) {
  PlannerOptions options;
  options.parallel_execution = false;
  options.max_concurrent_queries = 2;
  if (controlled) {
    options.admission_queue_limit = 8;
    options.admission_max_wait_ms = 4.0 * service_ms;
  } else {
    options.admission_queue_limit = 1 << 20;
    options.admission_max_wait_ms = 1e18;
  }
  GlobalSystem gis(options);
  if (!BuildRetailFederation(&gis, Spec()).ok()) std::abort();

  // Offered load: multiplier× the service capacity of the slot pool,
  // with a seeded ±25% spacing jitter so arrivals are not metronomic.
  const int n = Scaled(240, 32);
  const double mean_gap =
      service_ms / (options.max_concurrent_queries * multiplier);
  RungResult out;
  out.offered = n;
  std::vector<double> sojourns;
  double arrival = 0.0;
  for (int i = 0; i < n; ++i) {
    const uint64_t h = HashInt(HashCombine(kSeed, static_cast<uint64_t>(i)));
    const double jitter =
        0.75 + 0.5 * static_cast<double>(h >> 11) / 9007199254740992.0;
    arrival += mean_gap * jitter;
    GlobalSystem::SubmitOptions submit;
    submit.arrival_ms = arrival;
    auto r = gis.Submit(Mix()[i % Mix().size()], submit);
    if (r.ok()) {
      ++out.admitted;
      out.decisions += "A";
      sojourns.push_back(r->metrics.admission_wait_ms +
                         r->metrics.elapsed_ms);
      out.max_wait = std::max(out.max_wait, r->metrics.admission_wait_ms);
    } else if (r.status().message().find("deadline") != std::string::npos) {
      ++out.shed_deadline;
      out.decisions += "D";
    } else {
      ++out.shed_queue;
      out.decisions += "Q";
    }
  }
  out.p50_sojourn = Percentile(sojourns, 0.50);
  out.p95_sojourn = Percentile(sojourns, 0.95);
  return out;
}

void OverloadLadder() {
  const double service_ms = MeanServiceMs();
  std::printf("## open-loop overload ladder (mean service %.2f ms, %d slots)\n",
              service_ms, 2);
  std::printf("%-14s %-10s %9s %9s %10s %10s %12s %12s %12s\n", "config",
              "offered×", "admitted", "shed", "shed_queue", "shed_dead",
              "p50 sojourn", "p95 sojourn", "max wait");
  RungResult governed_peak, uncontrolled_peak, governed_base;
  for (const bool controlled : {true, false}) {
    for (const double m : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const RungResult r = Rung(m, service_ms, controlled);
      std::printf("%-14s %-10.1f %9d %9d %10d %10d %9.2f ms %9.2f ms %9.2f ms\n",
                  controlled ? "governed" : "uncontrolled", m, r.admitted,
                  r.shed_queue + r.shed_deadline, r.shed_queue,
                  r.shed_deadline, r.p50_sojourn, r.p95_sojourn, r.max_wait);
      if (controlled && m == 0.5) governed_base = r;
      if (controlled && m == 8.0) governed_peak = r;
      if (!controlled && m == 8.0) uncontrolled_peak = r;
    }
  }
  std::printf("\n");

  // The claims the table must support, checked rather than eyeballed.
  if (governed_peak.p95_sojourn >= uncontrolled_peak.p95_sojourn) {
    std::fprintf(stderr, "governed p95 did not stay below uncontrolled\n");
    std::abort();
  }
  if (governed_peak.shed_queue + governed_peak.shed_deadline <=
      governed_base.shed_queue + governed_base.shed_deadline) {
    std::fprintf(stderr, "shed rate did not rise with overload\n");
    std::abort();
  }

  // Same seed, same arrival schedule: the decision string replays
  // bit for bit.
  const RungResult replay = Rung(8.0, service_ms, /*controlled=*/true);
  std::printf("## determinism: 8.0× governed rung rerun — decisions %s\n\n",
              replay.decisions == governed_peak.decisions
                  ? "identical"
                  : "DIVERGED");
  if (replay.decisions != governed_peak.decisions) std::abort();
}

/// Two full replicas; the primary goes down. Breaker off: every query
/// rediscovers the outage by burning the detection timeout (the E11
/// failover / E15 chaos cost). Breaker on: after open_after failures
/// the open breaker answers instead of the wire.
void BreakerFailoverCost() {
  auto run = [](bool breaker) {
    PlannerOptions options;
    options.parallel_execution = false;
    options.health_aware_routing = false;  // isolate the breaker's effect
    options.circuit_breaker = breaker;
    options.breaker_open_failures = 3;
    options.breaker_cooldown_skips = 1 << 20;  // hold it open for the run
    GlobalSystem gis(options);
    for (int i = 0; i < 2; ++i) {
      const std::string name = "replica" + std::to_string(i);
      auto src = *gis.CreateSource(name, SourceDialect::kRelational);
      if (!src->ExecuteLocalSql("CREATE TABLE inv (id bigint, qty bigint)")
               .ok() ||
          !src->ExecuteLocalSql(
                  "INSERT INTO inv VALUES (1, 10), (2, 20), (3, 30)")
               .ok() ||
          !gis.ImportTable(name, "inv", "inv_" + name).ok()) {
        std::abort();
      }
    }
    if (!gis.CreateReplicatedView("inventory",
                                  {"inv_replica0", "inv_replica1"})
             .ok() ||
        !gis.catalog().SetLatencyHint("replica0", 1.0).ok() ||
        !gis.catalog().SetLatencyHint("replica1", 2.0).ok()) {
      std::abort();
    }
    gis.network().SetHostDown("replica0", true);

    const int queries = Scaled(40, 8);
    double total_ms = 0.0;
    int64_t total_messages = 0;
    double last_ms = 0.0;
    for (int i = 0; i < queries; ++i) {
      const QueryMetrics m = Run(gis, "SELECT SUM(qty) FROM inventory");
      total_ms += m.elapsed_ms;
      total_messages += m.messages;
      last_ms = m.elapsed_ms;
    }
    std::printf(
        "breaker %-3s %4d queries: %10.2f simulated ms total, %4lld "
        "messages, steady-state %6.2f ms/query, breaker skips %lld\n",
        breaker ? "on" : "off", queries, total_ms,
        static_cast<long long>(total_messages), last_ms,
        static_cast<long long>(gis.governor().breakers().TotalSkips()));
    return std::pair<double, double>(total_ms, last_ms);
  };

  std::printf("## failover cost with the primary replica down\n");
  const auto off = run(false);
  const auto on = run(true);
  if (on.first >= off.first || on.second >= off.second) {
    std::fprintf(stderr, "breaker did not cut the failover cost\n");
    std::abort();
  }
  std::printf(
      "steady-state saving: %.2f ms/query (%.0f%% of the detection burn); "
      "the skip itself sends zero messages\n\n",
      off.second - on.second, 100.0 * (off.second - on.second) / off.second);
}

}  // namespace

int main() {
  // The failover section deliberately queries a down host 80 times;
  // per-query WARN lines would drown the tables.
  Logger::Instance().set_level(LogLevel::kError);
  Header("E17: admission control & adaptive load management",
         "a mediator governing its own intake: slots + bounded queue + "
         "deadlines, per-query memory budgets, per-source breakers",
         "admitted p95 sojourn stays bounded while shed rate rises with "
         "overload; uncontrolled p95 grows without bound; same seed "
         "replays identical decisions; open breakers skip dead "
         "replicas at zero network cost");

  OverloadLadder();
  BreakerFailoverCost();
  return 0;
}
