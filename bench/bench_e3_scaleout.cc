/// \file bench_e3_scaleout.cc
/// \brief E3 (Figure 2): scale-out across component systems — a global
/// union view over N sources, N swept 1..16.
///
/// Each site holds a fixed 20k-row shard, so total data grows with N.
/// Fragments execute in parallel: with partial aggregation pushed down,
/// the simulated latency should stay near-flat while the baseline
/// (central aggregation over shipped shards) grows with N.

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/generator.h"

using namespace gisql;
using namespace gisql::bench;

int main() {
  Header("E3: scale-out over N component systems (20k rows/site)",
         "the 'global schema over many autonomous systems' architecture",
         "full-optimizer latency near-flat in N (parallel partial "
         "aggregation); ship-everything grows ~linearly in N");

  std::printf("%6s | %12s %12s | %12s %12s | %10s\n", "sites", "full_KiB",
              "ship_KiB", "full_ms", "ship_ms", "speedup");
  const std::vector<int> sweep =
      SmokeMode() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};
  for (int n : sweep) {
    GlobalSystem gis;
    WorkloadSpec spec;
    spec.num_sites = n;
    spec.num_customers = 500;
    spec.num_products = 100;
    spec.orders_per_site = Scaled(20000, 1000);
    if (Status st = BuildRetailFederation(&gis, spec); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    gis.network().set_default_link({20.0, 50.0});
    const std::string q =
        "SELECT pid, COUNT(*) AS n, SUM(amount) FROM sales GROUP BY pid";

    gis.set_options(PlannerOptions::Full());
    auto full = Run(gis, q);
    gis.set_options(PlannerOptions::ShipEverything());
    auto ship = Run(gis, q);

    std::printf("%6d | %12.1f %12.1f | %12.2f %12.2f | %9.2fx\n", n,
                full.bytes_received / 1024.0, ship.bytes_received / 1024.0,
                full.elapsed_ms, ship.elapsed_ms,
                ship.elapsed_ms / full.elapsed_ms);
  }
  return 0;
}
