/// \file bench_e8_semijoin.cc
/// \brief E8 (Figure 5): semijoin crossover — forced semijoin vs forced
/// ship as the build side's distinct key count sweeps past the point
/// where shipping keys costs more than it saves.
///
/// dim(k) at site A with D distinct keys, fact(k, payload) with 50k rows
/// at site B; D sweeps 10 → 100k. Unlike E2 the fact *payload is thin*,
/// making the crossover land inside the sweep. The cost model's "auto"
/// column shows which side of the crossover the optimizer picked.

#include <cstdio>

#include "bench/bench_common.h"

using namespace gisql;
using namespace gisql::bench;

int main() {
  Header("E8: semijoin crossover vs distinct build keys (fact = 50k thin "
         "rows)",
         "network-frugal join tactics under source autonomy",
         "semijoin beats ship for small key sets; the curves cross and "
         "auto switches strategy near the crossing");

  const int kFactRows = Scaled(50000, 2000);
  std::printf("%10s | %12s %12s | %12s %12s | %-9s %s\n", "dim_keys",
              "semi_KiB", "ship_KiB", "semi_ms", "ship_ms", "auto",
              "(correct pick?)");
  const std::vector<int> sweep =
      SmokeMode()
          ? std::vector<int>{10, 1000}
          : std::vector<int>{10, 100, 1000, 5000, 20000, 50000, 100000};
  for (int d : sweep) {
    GlobalSystem gis;
    auto a = *gis.CreateSource("a", SourceDialect::kRelational);
    auto b = *gis.CreateSource("b", SourceDialect::kRelational);
    (void)a->ExecuteLocalSql("CREATE TABLE dim (k bigint)");
    (void)b->ExecuteLocalSql("CREATE TABLE fact (k bigint, v bigint)");
    {
      auto t = *a->engine().GetTable("dim");
      std::vector<Row> rows;
      for (int i = 0; i < d; ++i) {
        rows.push_back({Value::Int(i % (2 * kFactRows))});
      }
      t->InsertUnchecked(std::move(rows));
    }
    {
      auto t = *b->engine().GetTable("fact");
      std::vector<Row> rows;
      for (int i = 0; i < kFactRows; ++i) {
        rows.push_back({Value::Int(i), Value::Int(i * 7)});
      }
      t->InsertUnchecked(std::move(rows));
    }
    (void)gis.ImportSource("a");
    (void)gis.ImportSource("b");
    gis.network().set_default_link({10.0, 5.0});

    const std::string q =
        "SELECT COUNT(*) FROM dim d JOIN fact f ON d.k = f.k";

    PlannerOptions semi;
    semi.force_semijoin = true;
    semi.semijoin_max_keys = 1 << 30;
    gis.set_options(semi);
    auto m_semi = Run(gis, q);

    PlannerOptions ship;
    ship.enable_semijoin = false;
    gis.set_options(ship);
    auto m_ship = Run(gis, q);

    gis.set_options(PlannerOptions::Full());
    const bool auto_semi =
        gis.Explain(q)->find("semijoin-reduced") != std::string::npos;
    const bool semi_better = m_semi.elapsed_ms < m_ship.elapsed_ms;

    std::printf("%10d | %12.1f %12.1f | %12.2f %12.2f | %-9s %s\n", d,
                m_semi.bytes_received / 1024.0,
                m_ship.bytes_received / 1024.0, m_semi.elapsed_ms,
                m_ship.elapsed_ms, auto_semi ? "semijoin" : "ship",
                auto_semi == semi_better ? "yes" : "no");
  }
  return 0;
}
