/// \file bench_e14_cache.cc
/// \brief E14 (extension ablation): the mediator result cache — hit vs
/// miss latency/traffic across a query mix, and the invalidation cost of
/// mediator-visible writes.
///
/// A dashboard-style workload repeats a small set of analytic queries
/// over a 4-site federation. We report per-round simulated latency and
/// bytes with the cache off, cold, and warm, and show a write through
/// the admin channel invalidating exactly the affected entries.

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/generator.h"

using namespace gisql;
using namespace gisql::bench;

int main() {
  Header("E14: mediator result cache (extension)",
         "materialized global extracts, an explicit 1989-era option for "
         "slow links",
         "warm hits cost ~zero traffic and latency; a mediator-visible "
         "write invalidates only entries touching that source");

  GlobalSystem gis;
  WorkloadSpec spec;
  spec.num_sites = 4;
  spec.num_customers = 1000;
  spec.num_products = 100;
  spec.orders_per_site = Scaled(25000, 1000);
  if (Status st = BuildRetailFederation(&gis, spec); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  gis.network().set_default_link({20.0, 50.0});

  const std::string queries[] = {
      "SELECT pid, SUM(amount) FROM sales GROUP BY pid",
      "SELECT c.region, COUNT(*) FROM sales s JOIN customers c "
      "ON s.cid = c.cid GROUP BY c.region",
      "SELECT COUNT(*) FROM sales WHERE amount > 500",
  };

  auto run_round = [&](const char* label) {
    double ms = 0;
    int64_t bytes = 0;
    for (const auto& q : queries) {
      auto m = Run(gis, q);
      ms += m.elapsed_ms;
      bytes += m.bytes_received;
    }
    std::printf("%-26s %10.2f ms %12.1f KiB\n", label, ms,
                bytes / 1024.0);
  };

  run_round("cache off");
  gis.EnableResultCache();
  run_round("cache cold (fills)");
  run_round("cache warm");
  // Hit/miss accounting now flows through the mediator's own metrics
  // registry, alongside the query latency histogram.
  std::printf("  (cache.hits=%lld cache.misses=%lld entries=%zu)\n",
              static_cast<long long>(gis.metrics().Get("cache.hits")),
              static_cast<long long>(gis.metrics().Get("cache.misses")),
              gis.result_cache()->size());
  const HistogramSnapshot lat = gis.metrics().SnapshotHistogram("query.ms");
  std::printf("  (query.ms over %lld queries: p50 %.2f, p95 %.2f — warm "
              "hits drag the median to ~0)\n",
              static_cast<long long>(lat.count), lat.p50, lat.p95);

  // A mediator-visible write to one site invalidates entries touching
  // it (here: all three queries read the partitioned view, so all
  // three refetch) while a write to an untouched source would not.
  (void)gis.ExecuteAt("site0",
                      "INSERT INTO sales VALUES (999999, 1, 1, 1, "
                      "10.0, 19000)");
  run_round("after write to site0");
  run_round("warm again");
  return 0;
}
