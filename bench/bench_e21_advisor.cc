/// \file bench_e21_advisor.cc
/// \brief E21: the self-driving mediator closing the observe→act loop.
///
/// A retail federation whose product catalog sits behind a slow WAN
/// link absorbs an open-loop workload that *shifts* mid-run: the
/// product-lookup template, lukewarm at first, becomes the hottest
/// query on the wire. The run compares advisor-off against advisor-on
/// over the identical seeded arrival sequence:
///
///   1. With the advisor on, the hot template is detected from query
///      fingerprints, its base table is replicated off the slow site,
///      and placement hints steer routing to the replica — the
///      converged tail p95 must come out strictly better than the
///      advisor-off run's.
///   2. The decision log is part of the experiment's output: replaying
///      the same seed (serial or pooled) must reproduce it
///      byte-for-byte, or the "self-driving" loop is not deterministic.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "workload/generator.h"
#include "workload/scenario.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

constexpr uint64_t kSeed = 21;

WorkloadSpec FederationSpec() {
  WorkloadSpec spec;
  spec.seed = kSeed;
  spec.num_sites = 2;
  spec.num_customers = Scaled(300, 60);
  spec.num_products = Scaled(80, 20);
  spec.orders_per_site = Scaled(1200, 150);
  return spec;
}

ScenarioSpec MakeScenario() {
  const WorkloadSpec fed = FederationSpec();
  ScenarioSpec spec;
  spec.seed = kSeed;
  spec.num_customers = fed.num_customers;
  spec.num_products = fed.num_products;
  spec.num_tenants = Scaled(int64_t{100000}, int64_t{2000});
  spec.tenant_zipf_theta = 0.99;
  // Steep template skew so "hottest" is unambiguous: rank 0 draws
  // roughly 46% of arrivals, rank 1 roughly 22%.
  spec.template_zipf_theta = 1.1;
  spec.base_qps = 40.0;
  spec.duration_ms = Scaled(6000.0, 3000.0);
  spec.slo_ms = 60.0;

  // Mid-run shift: product-lookup (rank 1) swaps popularity with the
  // former favorite — the advisor has to chase a moving target.
  spec.template_shift_ms = Scaled(2000.0, 800.0);
  spec.template_shift_rank = 1;
  // Converged tail: arrivals late enough that an adaptive policy had
  // time to act on the shift.
  spec.report_tail_from_ms = Scaled(3500.0, 2000.0);
  return spec;
}

PlannerOptions BaseOptions(bool advisor_on, bool pooled) {
  PlannerOptions options;
  options.parallel_execution = pooled;
  options.max_concurrent_queries = 8;
  options.admission_queue_limit = 64;
  options.admission_max_wait_ms = 500.0;
  options.advisor_enabled = advisor_on;
  options.advisor_interval_ms = 100.0;
  options.advisor_window_ms = 1000.0;
  options.advisor_hot_threshold = 14;
  options.advisor_min_gain_ms = 1.0;
  return options;
}

struct RunOutput {
  ScenarioReport report;
  std::string decision_log;
  int64_t materializations = 0;
  int64_t placements = 0;
  int64_t decisions = 0;
};

RunOutput RunOnce(bool advisor_on, bool pooled) {
  GlobalSystem gis(BaseOptions(advisor_on, pooled));
  if (!BuildRetailFederation(&gis, FederationSpec()).ok()) std::abort();
  // The catalog source is a distant, slow site: product queries cross
  // an expensive link until someone moves the data.
  LinkSpec slow;
  slow.latency_ms = 25.0;
  slow.bandwidth_mbps = 10.0;
  gis.network().SetLink(GlobalSystem::kMediatorHost, "catalog", slow);

  auto report = RunScenario(&gis, MakeScenario());
  if (!report.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  RunOutput out;
  out.report = *report;
  out.decision_log = gis.advisor().LogText();
  const AdvisorCounters c = gis.advisor().counters();
  out.materializations = c.materializations;
  out.placements = c.placements;
  out.decisions = c.decisions;
  return out;
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what);
    std::abort();
  }
}

void PrintRun(const char* label, const RunOutput& run) {
  std::printf(
      "%-12s offered=%lld completed=%lld p50=%.2f ms p95=%.2f ms | "
      "tail(n=%lld) p50=%.2f ms p95=%.2f ms | decisions=%lld "
      "(materialize=%lld placement=%lld)\n",
      label, static_cast<long long>(run.report.offered),
      static_cast<long long>(run.report.completed), run.report.p50_ms,
      run.report.p95_ms, static_cast<long long>(run.report.tail_completed),
      run.report.tail_p50_ms, run.report.tail_p95_ms,
      static_cast<long long>(run.decisions),
      static_cast<long long>(run.materializations),
      static_cast<long long>(run.placements));
}

}  // namespace

int main() {
  std::printf("# E21: self-driving mediator — hot-template shift\n\n");
  std::printf(
      "products lives on 'catalog' behind a 25 ms / 10 Mbps link; at "
      "t=%.0f ms the product-lookup template becomes the workload's "
      "hottest. Tail percentiles cover arrivals from t=%.0f ms on.\n\n",
      MakeScenario().template_shift_ms, MakeScenario().report_tail_from_ms);

  const RunOutput off = RunOnce(/*advisor_on=*/false, /*pooled=*/false);
  const RunOutput on = RunOnce(/*advisor_on=*/true, /*pooled=*/false);
  PrintRun("advisor-off", off);
  PrintRun("advisor-on", on);

  Check(off.decisions == 0, "advisor-off run makes no decisions");
  Check(on.materializations >= 1,
        "advisor materialized the shifted hot template's table");
  Check(on.decision_log.find("materialize") != std::string::npos &&
            on.decision_log.find("products") != std::string::npos,
        "decision log names the products materialization");
  Check(on.report.tail_completed > 0 && off.report.tail_completed > 0,
        "tail window saw completed queries in both runs");
  Check(on.report.tail_p95_ms < off.report.tail_p95_ms,
        "advisor-on converged tail p95 strictly beats advisor-off");

  // Determinism: the same seed replays the decision log byte-for-byte,
  // serial and pooled alike — the advisor acts on simulation-time
  // signals only.
  const RunOutput replay = RunOnce(/*advisor_on=*/true, /*pooled=*/false);
  const RunOutput pooled = RunOnce(/*advisor_on=*/true, /*pooled=*/true);
  Check(replay.decision_log == on.decision_log,
        "serial replay reproduces the decision log byte-for-byte");
  Check(pooled.decision_log == on.decision_log,
        "pooled run reproduces the decision log byte-for-byte");
  Check(replay.report.decisions == on.report.decisions,
        "serial replay reproduces the admission decision string");

  std::printf("\n## decision log (advisor-on)\n%s\n", on.decision_log.c_str());
  std::printf(
      "tail p95: %.2f ms (off) -> %.2f ms (on); decision log "
      "byte-identical across serial replay and pooled re-run\n",
      off.report.tail_p95_ms, on.report.tail_p95_ms);
  return 0;
}
