/// \file bench_e20_slo.cc
/// \brief E20: workload intelligence — per-tenant attribution, SLO
/// error-budget burn, and the incident flight recorder under a
/// Zipf-tenant flash crowd.
///
/// A federation absorbs an open-loop tenant population (Zipf-popular,
/// so a handful of tenants dominate) pushed to 8× its service
/// capacity with a 3× flash crowd mid-run. The run must demonstrate
/// the three workload-intelligence guarantees end to end:
///
///   1. Attribution closes the books: summing any column of the
///      per-tenant ledger reproduces the accountant's grand total
///      exactly, and the traffic totals equal the network registry's
///      counter deltas over the same span — no query goes
///      unattributed, none is double-charged.
///   2. SLO alerts are exact simulated instants: the same seed yields
///      the identical alert log (objective, timestamp, burn rates),
///      serial or pooled.
///   3. The flight recorder captures at least one incident, and its
///      JSON snapshot is byte-identical serial vs pooled.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "workload/generator.h"
#include "workload/scenario.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

constexpr uint64_t kSeed = 20;

WorkloadSpec FederationSpec() {
  WorkloadSpec spec;
  spec.seed = kSeed;
  spec.num_sites = 3;
  spec.num_customers = Scaled(300, 40);
  spec.num_products = Scaled(80, 15);
  spec.orders_per_site = Scaled(1200, 120);
  spec.zipf_theta = 0.8;
  return spec;
}

double MeanServiceMs() {
  GlobalSystem gis;
  if (!BuildRetailFederation(&gis, FederationSpec()).ok()) std::abort();
  const std::vector<std::string> probe = {
      "SELECT sid, pid, amount FROM sales WHERE cid = 1",
      "SELECT COUNT(*), SUM(amount) FROM sales WHERE cid = 2",
      "SELECT pname, price FROM products WHERE pid = 3",
  };
  double total = 0.0;
  int n = 0;
  for (int r = 0; r < 2; ++r) {
    for (const auto& q : probe) {
      total += Run(gis, q).elapsed_ms;
      ++n;
    }
  }
  return total / n;
}

ScenarioSpec MakeScenario(double service_ms) {
  const WorkloadSpec fed = FederationSpec();
  ScenarioSpec spec;
  spec.seed = kSeed;
  spec.num_customers = fed.num_customers;
  spec.num_products = fed.num_products;
  spec.num_tenants = Scaled(int64_t{100000}, int64_t{2000});
  spec.tenant_zipf_theta = 0.99;
  spec.template_zipf_theta = 0.5;

  // 8× the two-slot service capacity: a sustained overload, so queue
  // waits blow the interactive target and the governor sheds — the
  // regime the SLO engine and flight recorder exist to narrate.
  const int slots = 2;
  spec.base_qps = 8.0 * slots * 1000.0 / service_ms;
  const double target_arrivals = Scaled(400.0, 60.0);
  spec.duration_ms = target_arrivals / (spec.base_qps / 1000.0);

  FlashCrowd crowd;
  crowd.start_ms = 0.4 * spec.duration_ms;
  crowd.duration_ms = 0.2 * spec.duration_ms;
  crowd.multiplier = 3.0;
  spec.flash_crowds.push_back(crowd);

  spec.slo_ms = 4.0 * service_ms;
  return spec;
}

struct RunOutput {
  ScenarioReport report;
  TenantUsage totals;
  std::vector<TenantUsage> tenants;
  size_t tracked = 0;
  // Network registry deltas bracketing the scenario.
  int64_t net_messages = 0;
  int64_t net_bytes_sent = 0;
  int64_t net_bytes_received = 0;
  int64_t net_retries = 0;
  int64_t executed = 0;  // mediator query.count delta
  int64_t sheds = 0;     // admission.shed + cursor.shed delta
  std::string alert_log;
  std::string incident_json;
  int64_t incidents = 0;
};

std::string FormatAlerts(const std::vector<SloAlert>& alerts) {
  std::string out;
  char buf[160];
  for (const auto& a : alerts) {
    std::snprintf(buf, sizeof(buf), "%s @ %.17g fast=%.17g slow=%.17g\n",
                  a.objective.c_str(), a.at_ms, a.fast_burn, a.slow_burn);
    out += buf;
  }
  return out;
}

RunOutput RunOnce(double service_ms, bool pooled) {
  PlannerOptions options;
  options.parallel_execution = pooled;
  options.max_concurrent_queries = 2;
  options.admission_queue_limit = 8;
  options.admission_max_wait_ms = 4.0 * service_ms;
  GlobalSystem gis(options);
  if (!BuildRetailFederation(&gis, FederationSpec()).ok()) std::abort();

  const auto net_before = [&] {
    const MetricsRegistry& net = gis.network().metrics();
    return std::vector<int64_t>{net.Get("net.messages"),
                                net.Get("net.bytes_sent"),
                                net.Get("net.bytes_received"),
                                net.Get("net.retries")};
  }();
  const int64_t executed_before = gis.metrics().Get("query.count");
  const int64_t sheds_before =
      gis.metrics().Get("admission.shed") + gis.metrics().Get("cursor.shed");

  auto report = RunScenario(&gis, MakeScenario(service_ms));
  if (!report.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }

  RunOutput out;
  out.report = *report;
  out.totals = gis.tenants().Totals();
  out.tenants = gis.tenants().SnapshotTenants();
  out.tracked = gis.tenants().tracked_count();
  const MetricsRegistry& net = gis.network().metrics();
  out.net_messages = net.Get("net.messages") - net_before[0];
  out.net_bytes_sent = net.Get("net.bytes_sent") - net_before[1];
  out.net_bytes_received = net.Get("net.bytes_received") - net_before[2];
  out.net_retries = net.Get("net.retries") - net_before[3];
  out.executed = gis.metrics().Get("query.count") - executed_before;
  out.sheds = gis.metrics().Get("admission.shed") +
              gis.metrics().Get("cursor.shed") - sheds_before;
  out.alert_log = FormatAlerts(gis.slo().Alerts());
  out.incidents = gis.flight_recorder().incidents_captured();
  for (const auto& i : gis.flight_recorder().Incidents()) {
    out.incident_json += i.json;
    out.incident_json += "\n";
  }
  return out;
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", what);
    std::abort();
  }
}

void AttributionAudit(const RunOutput& run) {
  // Sum the ledger by hand; it must equal the grand-total row exactly.
  TenantUsage sum;
  for (const auto& t : run.tenants) {
    sum.queries += t.queries;
    sum.sheds += t.sheds;
    sum.rows += t.rows;
    sum.elapsed_ms += t.elapsed_ms;
    sum.bytes_sent += t.bytes_sent;
    sum.bytes_received += t.bytes_received;
    sum.messages += t.messages;
    sum.retries += t.retries;
  }
  Check(sum.queries == run.totals.queries, "tenant query sums == totals");
  Check(sum.sheds == run.totals.sheds, "tenant shed sums == totals");
  Check(sum.rows == run.totals.rows, "tenant row sums == totals");
  Check(sum.bytes_sent == run.totals.bytes_sent &&
            sum.bytes_received == run.totals.bytes_received,
        "tenant byte sums == totals");
  Check(sum.messages == run.totals.messages, "tenant message sums == totals");

  // The ledger closes against the global registries: every arrival is
  // attributed (executed or shed), every wire byte of the scenario is
  // charged to some tenant.
  Check(run.totals.queries + run.totals.sheds == run.report.offered,
        "queries + sheds == offered arrivals");
  Check(run.totals.queries == run.executed,
        "tenant queries == query.count delta");
  Check(run.totals.sheds == run.sheds,
        "tenant sheds == shed counter delta");
  Check(run.totals.messages == run.net_messages,
        "tenant messages == net.messages delta");
  Check(run.totals.bytes_sent == run.net_bytes_sent,
        "tenant bytes_sent == net.bytes_sent delta");
  Check(run.totals.bytes_received == run.net_bytes_received,
        "tenant bytes_received == net.bytes_received delta");
  Check(run.totals.retries == run.net_retries,
        "tenant retries == net.retries delta");

  std::printf(
      "## attribution audit: %lld arrivals = %lld executed + %lld shed; "
      "%lld msgs, %lld B sent, %lld B received — ledger == registry "
      "deltas exactly\n\n",
      static_cast<long long>(run.report.offered),
      static_cast<long long>(run.totals.queries),
      static_cast<long long>(run.totals.sheds),
      static_cast<long long>(run.totals.messages),
      static_cast<long long>(run.totals.bytes_sent),
      static_cast<long long>(run.totals.bytes_received));

  // The hottest tenants, as the ledger ranks them.
  std::vector<TenantUsage> ranked = run.tenants;
  std::sort(ranked.begin(), ranked.end(),
            [](const TenantUsage& a, const TenantUsage& b) {
              if (a.queries + a.sheds != b.queries + b.sheds) {
                return a.queries + a.sheds > b.queries + b.sheds;
              }
              return a.tenant < b.tenant;
            });
  std::printf("%-10s %8s %6s %10s %10s %12s\n", "tenant", "queries", "sheds",
              "rows", "elapsed", "bytes recv");
  const size_t top = ranked.size() < 5 ? ranked.size() : 5;
  for (size_t i = 0; i < top; ++i) {
    const auto& t = ranked[i];
    std::printf("%-10s %8lld %6lld %10lld %7.2f ms %12lld\n",
                t.tenant.c_str(), static_cast<long long>(t.queries),
                static_cast<long long>(t.sheds),
                static_cast<long long>(t.rows), t.elapsed_ms,
                static_cast<long long>(t.bytes_received));
  }
  std::printf("   (%zu tenants tracked, zipf 0.99 over %lld)\n\n",
              run.tracked,
              static_cast<long long>(Scaled(int64_t{100000}, int64_t{2000})));
}

}  // namespace

int main() {
  Logger::Instance().set_level(LogLevel::kError);
  Header("E20: workload intelligence under a Zipf-tenant flash crowd",
         "per-tenant chargeback, SLO error budgets, and incident "
         "postmortems for a planetary-scale federation",
         "the tenant ledger sums exactly to the global counters; the "
         "same seed replays the identical SLO alert log and incident "
         "JSON, serial or pooled; overload raises at least one alert "
         "and captures at least one incident");

  const double service_ms = MeanServiceMs();
  std::printf("## mean service %.2f ms, 2 slots, 8.0x offered, 3x flash "
              "crowd mid-run\n\n",
              service_ms);

  const RunOutput serial = RunOnce(service_ms, /*pooled=*/false);
  AttributionAudit(serial);

  // Overload must actually exercise the alerting and capture paths.
  Check(!serial.alert_log.empty(), "overload raised at least one SLO alert");
  Check(serial.incidents >= 1, "at least one incident captured");
  std::printf("## slo alerts (exact simulated instants)\n%s\n",
              serial.alert_log.c_str());
  std::printf("## incidents captured: %lld\n\n",
              static_cast<long long>(serial.incidents));

  // Determinism, part 1: same seed, same mode — identical everything.
  const RunOutput replay = RunOnce(service_ms, /*pooled=*/false);
  Check(replay.report.decisions == serial.report.decisions,
        "same-seed replay: identical decision string");
  Check(replay.alert_log == serial.alert_log,
        "same-seed replay: identical alert log");
  Check(replay.incident_json == serial.incident_json,
        "same-seed replay: identical incident JSON");

  // Determinism, part 2: the worker pool changes wall-clock only. The
  // alert timestamps and the incident bytes must not notice.
  const RunOutput pooled = RunOnce(service_ms, /*pooled=*/true);
  Check(pooled.report.decisions == serial.report.decisions,
        "pooled: identical decision string");
  Check(pooled.alert_log == serial.alert_log,
        "pooled: identical alert log (exact timestamps)");
  Check(pooled.incident_json == serial.incident_json,
        "pooled: byte-identical incident JSON");
  std::printf(
      "## determinism: serial, same-seed replay, and pooled runs agree — "
      "%zu alert-log bytes, %zu incident-JSON bytes, identical\n",
      serial.alert_log.size(), serial.incident_json.size());
  return 0;
}
