/// \file bench_e9_storage.cc
/// \brief E9 (Table 4): component-system storage engine microbenchmarks
/// — insert, scan, index lookup, range scan, statistics collection.
///
/// These are real wall-clock google-benchmark numbers (the only
/// experiment where wall time is the metric: it characterizes the local
/// engine substrate, not the distributed simulation).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace gisql {
namespace {

SchemaPtr BenchSchema() {
  return std::make_shared<Schema>(std::vector<Field>{
      {"id", TypeId::kInt64, false},
      {"v", TypeId::kDouble},
      {"tag", TypeId::kString}});
}

TablePtr MakeTable(int64_t rows) {
  auto table = std::make_shared<Table>("bench", BenchSchema());
  Rng rng(7);
  std::vector<Row> data;
  data.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    data.push_back({Value::Int(i), Value::Double(rng.NextDouble() * 1000),
                    Value::String("tag" + std::to_string(i % 1000))});
  }
  table->InsertUnchecked(std::move(data));
  return table;
}

void BM_Insert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto table = std::make_shared<Table>("t", BenchSchema());
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(table->Insert(
          {Value::Int(i), Value::Double(i * 0.5), Value::String("x")}));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Insert)->Arg(1000)->Arg(10000);

void BM_FullScanPredicate(benchmark::State& state) {
  auto table = MakeTable(state.range(0));
  // id % 100 == 0 computed directly over rows (the hot scan loop each
  // component source runs for non-indexable predicates).
  for (auto _ : state) {
    int64_t hits = 0;
    for (const auto& row : table->rows()) {
      if (row[0].AsInt() % 100 == 0) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullScanPredicate)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_HashIndexLookup(benchmark::State& state) {
  auto table = MakeTable(state.range(0));
  (void)table->CreateHashIndex(0);
  HashIndex* index = table->GetHashIndex(0);
  Rng rng(11);
  for (auto _ : state) {
    const auto& hits =
        index->Lookup(Value::Int(rng.Uniform(0, state.range(0) - 1)));
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexLookup)->Arg(100000)->Arg(1000000);

void BM_OrderedIndexRange(benchmark::State& state) {
  auto table = MakeTable(state.range(0));
  (void)table->CreateOrderedIndex(0);
  OrderedIndex* index = table->GetOrderedIndex(0);
  Rng rng(13);
  for (auto _ : state) {
    const int64_t lo = rng.Uniform(0, state.range(0) - 1000);
    auto rids =
        index->Range(Value::Int(lo), true, Value::Int(lo + 999), true);
    benchmark::DoNotOptimize(rids.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_OrderedIndexRange)->Arg(100000)->Arg(1000000);

void BM_IndexBuild(benchmark::State& state) {
  auto table = MakeTable(state.range(0));
  for (auto _ : state) {
    HashIndex index(0);
    index.Build(table->rows());
    benchmark::DoNotOptimize(index.built_row_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexBuild)->Arg(100000)->Arg(1000000);

void BM_CollectStats(benchmark::State& state) {
  auto table = MakeTable(state.range(0));
  for (auto _ : state) {
    TableStats stats = CollectStats(*table->schema(), table->rows());
    benchmark::DoNotOptimize(stats.row_count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CollectStats)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace gisql

BENCHMARK_MAIN();
