/// \file bench_e9_storage.cc
/// \brief E9 (Table 4): component-system storage engine microbenchmarks
/// — insert, scan, index lookup, range scan, statistics collection —
/// plus the out-of-core ladder over the paged buffer pool.
///
/// The microbenchmarks are real wall-clock google-benchmark numbers
/// (the only experiment where wall time is the metric: they
/// characterize the local engine substrate, not the distributed
/// simulation). The ladder epilogue is pure simulation: it sweeps the
/// working set from 0.1x to 10x of the buffer pool and reports
/// simulated rows/s and the hit ratio from gis.storage at each rung,
/// then checks that an index range scan beats a full scan on a
/// selective predicate and that a same-seed rerun reproduces every
/// metric byte-identically.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace gisql {
namespace {

SchemaPtr BenchSchema() {
  return std::make_shared<Schema>(std::vector<Field>{
      {"id", TypeId::kInt64, false},
      {"v", TypeId::kDouble},
      {"tag", TypeId::kString}});
}

TablePtr MakeTable(int64_t rows) {
  auto table = std::make_shared<Table>("bench", BenchSchema());
  Rng rng(7);
  std::vector<Row> data;
  data.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    data.push_back({Value::Int(i), Value::Double(rng.NextDouble() * 1000),
                    Value::String("tag" + std::to_string(i % 1000))});
  }
  if (Status st = table->InsertUnchecked(std::move(data)); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::abort();
  }
  return table;
}

void BM_Insert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto table = std::make_shared<Table>("t", BenchSchema());
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(table->Insert(
          {Value::Int(i), Value::Double(i * 0.5), Value::String("x")}));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Insert)->Arg(1000)->Arg(10000);

void BM_FullScanPredicate(benchmark::State& state) {
  auto table = MakeTable(state.range(0));
  // id % 100 == 0 computed directly over rows (the hot scan loop each
  // component source runs for non-indexable predicates).
  for (auto _ : state) {
    int64_t hits = 0;
    for (const auto& row : table->rows()) {
      if (row[0].AsInt() % 100 == 0) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullScanPredicate)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_HashIndexLookup(benchmark::State& state) {
  auto table = MakeTable(state.range(0));
  (void)table->CreateHashIndex(0);
  HashIndex* index = table->GetHashIndex(0);
  Rng rng(11);
  for (auto _ : state) {
    const auto& hits =
        index->Lookup(Value::Int(rng.Uniform(0, state.range(0) - 1)));
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexLookup)->Arg(100000)->Arg(1000000);

void BM_OrderedIndexRange(benchmark::State& state) {
  auto table = MakeTable(state.range(0));
  (void)table->CreateOrderedIndex(0);
  OrderedIndex* index = table->GetOrderedIndex(0);
  Rng rng(13);
  for (auto _ : state) {
    const int64_t lo = rng.Uniform(0, state.range(0) - 1000);
    auto rids =
        index->Range(Value::Int(lo), true, Value::Int(lo + 999), true);
    benchmark::DoNotOptimize(rids.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_OrderedIndexRange)->Arg(100000)->Arg(1000000);

void BM_IndexBuild(benchmark::State& state) {
  auto table = MakeTable(state.range(0));
  for (auto _ : state) {
    HashIndex index(0);
    index.Build(table->rows());
    benchmark::DoNotOptimize(index.built_row_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexBuild)->Arg(100000)->Arg(1000000);

void BM_CollectStats(benchmark::State& state) {
  auto table = MakeTable(state.range(0));
  for (auto _ : state) {
    TableStats stats = CollectStats(*table->schema(), table->rows());
    benchmark::DoNotOptimize(stats.row_count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CollectStats)->Arg(10000)->Arg(100000);

/// One rung of the out-of-core ladder, formatted for the report and the
/// determinism check (every field comes off the simulated clock or a
/// deterministic counter, so the line must replay byte-identically).
std::string RungLine(GlobalSystem& gis, double target_ratio, int64_t rows) {
  const std::string scan_sql = "SELECT sum(v), count(*) FROM data";
  // Two passes: the first faults the table in from a cold pool, the
  // second shows the steady-state hit ratio for this working set.
  bench::Run(gis, scan_sql);
  const QueryMetrics warm = bench::Run(gis, scan_sql);

  auto storage = gis.Query(
      "SELECT pages, pool_frames, hits, misses, evictions, disk_ms, "
      "hit_ratio FROM gis.storage WHERE source = 'store'");
  if (!storage.ok() || storage->batch.num_rows() != 1) {
    std::fprintf(stderr, "gis.storage snapshot failed\n");
    std::abort();
  }
  const Row& s = storage->batch.rows()[0];
  const double actual_ratio =
      static_cast<double>(s[0].AsInt()) / static_cast<double>(s[1].AsInt());
  const double rows_per_sec =
      warm.elapsed_ms > 0.0 ? rows / (warm.elapsed_ms / 1e3) : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%8.1fx %8.2fx %9lld %10.3f %12.0f | %8lld %8lld %8lld "
                "%10.3f %9.3f",
                target_ratio, actual_ratio,
                static_cast<long long>(rows), warm.elapsed_ms, rows_per_sec,
                static_cast<long long>(s[2].AsInt()),
                static_cast<long long>(s[3].AsInt()),
                static_cast<long long>(s[4].AsInt()), s[5].AsDouble(),
                s[6].AsDouble());
  return buf;
}

/// Builds a one-source federation with a `data` table grown batch by
/// batch until its heap spans at least `target_pages` pages under the
/// (env-configured) pool geometry. Returns the rows inserted, so each
/// rung's working-set ratio is exact by construction rather than
/// resting on a rows-per-page estimate.
int64_t BuildStore(GlobalSystem& gis, int64_t target_pages) {
  auto source_or = gis.CreateSource("store", SourceDialect::kRelational);
  if (!source_or.ok()) std::abort();
  ComponentSource* store = *source_or;
  if (!store
           ->ExecuteLocalSql(
               "CREATE TABLE data (id bigint, v double, tag varchar)")
           .ok()) {
    std::abort();
  }
  auto table_or = store->engine().GetTable("data");
  if (!table_or.ok()) std::abort();
  Rng rng(17);
  int64_t rows = 0;
  while (store->engine().pool().Snapshot().pages_live < target_pages) {
    std::vector<Row> data;
    data.reserve(256);
    for (int i = 0; i < 256; ++i, ++rows) {
      data.push_back({Value::Int(rows),
                      Value::Double(rng.NextDouble() * 1000),
                      Value::String("tag" + std::to_string(rows % 100))});
    }
    if (!(*table_or)->InsertUnchecked(std::move(data)).ok()) std::abort();
  }
  if (!gis.ImportTable("store", "data", "data").ok()) std::abort();
  return rows;
}

/// Runs the full ladder and returns every reported metric as one
/// string, so a second run can be compared byte-for-byte.
std::string RunLadder(bool print) {
  // Small fixed geometry so even the 10x rung loads fast. Each rung's
  // table is grown until it actually spans target_ratio * pool_frames
  // heap pages, so the ladder genuinely reaches 10x out-of-core.
  const int64_t pool_frames = 32;
  setenv("GISQL_PAGE_SIZE", "4096", 1);
  setenv("GISQL_BUFFER_POOL_FRAMES", "32", 1);

  if (print) {
    std::printf(
        "\n# E9 ladder: working set vs buffer pool (simulated clock)\n");
    std::printf("%8s %8s %9s %10s %12s | %8s %8s %8s %10s %9s\n", "target",
                "actual", "rows", "scan_ms", "rows/s", "hits", "misses",
                "evict", "disk_ms", "hit_ratio");
  }
  std::string report;
  const double full_ratios[] = {0.1, 0.5, 1.0, 2.0, 4.0, 10.0};
  const double smoke_ratios[] = {0.5, 2.0};
  const double* ratios = bench::SmokeMode() ? smoke_ratios : full_ratios;
  const size_t n_ratios = bench::SmokeMode() ? 2 : 6;
  for (size_t i = 0; i < n_ratios; ++i) {
    const int64_t target_pages = std::max<int64_t>(
        1, static_cast<int64_t>(ratios[i] * pool_frames));
    GlobalSystem gis;
    const int64_t rows = BuildStore(gis, target_pages);
    const std::string line = RungLine(gis, ratios[i], rows);
    if (print) std::printf("%s\n", line.c_str());
    report += line + "\n";
  }

  // Index range scan vs full scan on a selective predicate, on the
  // biggest rung's data (out of core, so the access-path choice also
  // changes which pages fault in).
  {
    const int64_t target_pages = std::max<int64_t>(
        1, static_cast<int64_t>(ratios[n_ratios - 1] * pool_frames));
    const std::string q = "SELECT id, v FROM data WHERE id >= 100 AND id < 200";

    GlobalSystem indexed;
    BuildStore(indexed, target_pages);
    const QueryMetrics with_index = bench::Run(indexed, q);

    GlobalSystem scanned;
    PlannerOptions no_index;
    no_index.enable_index_range_scan = false;
    scanned.set_options(no_index);
    BuildStore(scanned, target_pages);
    const QueryMetrics full_scan = bench::Run(scanned, q);

    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "index range scan %.3f ms vs full scan %.3f ms (%.1fx)",
                  with_index.elapsed_ms, full_scan.elapsed_ms,
                  full_scan.elapsed_ms /
                      std::max(with_index.elapsed_ms, 1e-9));
    if (print) std::printf("\n%s\n", buf);
    report += std::string(buf) + "\n";
    if (with_index.elapsed_ms >= full_scan.elapsed_ms) {
      std::fprintf(stderr,
                   "FAIL: index range scan did not beat the full scan\n");
      std::abort();
    }
  }

  unsetenv("GISQL_PAGE_SIZE");
  unsetenv("GISQL_BUFFER_POOL_FRAMES");
  return report;
}

void RunOutOfCoreLadder() {
  const std::string first = RunLadder(/*print=*/true);
  const std::string second = RunLadder(/*print=*/false);
  const bool identical = first == second;
  std::printf("same-seed rerun byte-identical: %s\n",
              identical ? "yes" : "NO");
  if (!identical) std::abort();
}

}  // namespace
}  // namespace gisql

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gisql::RunOutOfCoreLadder();
  return 0;
}
