/// \file bench_e11_replication.cc
/// \brief E11 (extension ablation): replicated views — replica choice by
/// latency hint and the cost of failover.
///
/// Three replicas of a 20k-row table sit behind links of 5 / 50 / 200 ms.
/// We measure: (a) query latency when the planner knows the hints vs
/// when it picks blind; (b) added latency when the preferred replica is
/// down and the executor fails over (one wasted round trip per dead
/// replica).

#include <cstdio>

#include "bench/bench_common.h"

using namespace gisql;
using namespace gisql::bench;

int main() {
  Header("E11: replicated views — placement and failover (extension)",
         "availability/performance via replication, a natural extension "
         "of the 1989 architecture",
         "hinted placement picks the near replica; each dead replica "
         "adds roughly one failed round trip");

  GlobalSystem gis;
  const double latencies[] = {5.0, 50.0, 200.0};
  for (int i = 0; i < 3; ++i) {
    const std::string name = "replica" + std::to_string(i);
    auto src = *gis.CreateSource(name, SourceDialect::kRelational);
    (void)src->ExecuteLocalSql(
        "CREATE TABLE catalog_t (id bigint, name varchar, price double)");
    auto t = *src->engine().GetTable("catalog_t");
    std::vector<Row> rows;
    for (int r = 0; r < Scaled(20000, 1000); ++r) {
      rows.push_back({Value::Int(r), Value::String("item"),
                      Value::Double(r * 0.01)});
    }
    t->InsertUnchecked(std::move(rows));
    (void)gis.ImportTable(name, "catalog_t", "cat_" + name);
    gis.network().SetLink(GlobalSystem::kMediatorHost, name,
                          {latencies[i], 100.0});
  }
  // Members listed far-replica first so "blind" placement (no hints,
  // equal row counts) lands on the worst link.
  (void)gis.CreateReplicatedView("items",
                                 {"cat_replica2", "cat_replica1",
                                  "cat_replica0"});

  const std::string q =
      "SELECT COUNT(*), MAX(price) FROM items WHERE id < 5000";

  // Blind placement (no hints): the planner ties on row counts and
  // takes the first member.
  auto blind = Run(gis, q);

  // Hinted placement.
  (void)gis.catalog().SetLatencyHint("replica0", 5.0);
  (void)gis.catalog().SetLatencyHint("replica1", 50.0);
  (void)gis.catalog().SetLatencyHint("replica2", 200.0);
  auto hinted = Run(gis, q);

  std::printf("%-28s %12s %8s\n", "scenario", "sim_ms", "msgs");
  std::printf("%-28s %12.2f %8lld\n", "blind placement", blind.elapsed_ms,
              static_cast<long long>(blind.messages));
  std::printf("%-28s %12.2f %8lld\n", "hinted placement",
              hinted.elapsed_ms, static_cast<long long>(hinted.messages));

  // Failover ladder: take replicas down one at a time.
  gis.network().SetHostDown("replica0", true);
  auto one_down = Run(gis, q);
  std::printf("%-28s %12.2f %8lld\n", "preferred replica down",
              one_down.elapsed_ms, static_cast<long long>(one_down.messages));
  gis.network().SetHostDown("replica2", true);
  auto two_down = Run(gis, q);
  std::printf("%-28s %12.2f %8lld\n", "two replicas down",
              two_down.elapsed_ms, static_cast<long long>(two_down.messages));
  return 0;
}
