/// \file bench_e2_joins.cc
/// \brief E2 (Table 1): distributed join strategies — ship-whole vs
/// semijoin reduction vs full pushdown, as the dimension (build) side
/// grows relative to the fact (probe) side.
///
/// Two RELATIONAL sources: `dim(k, tag)` of varying size at one site and
/// `fact(k, v, pad)` of 100k rows at another, joined on k. Each row of
/// dim matches fact rows with the same k (k ∈ [0, 100k)).

#include <cstdio>

#include "bench/bench_common.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

void BuildWorld(GlobalSystem& gis, int dim_rows, int fact_rows) {
  auto a = *gis.CreateSource("dimsite", SourceDialect::kRelational);
  auto b = *gis.CreateSource("factsite", SourceDialect::kRelational);
  (void)a->ExecuteLocalSql("CREATE TABLE dim (k bigint, tag varchar)");
  (void)b->ExecuteLocalSql(
      "CREATE TABLE fact (k bigint, v double, pad varchar)");
  {
    auto t = *a->engine().GetTable("dim");
    std::vector<Row> rows;
    // Dimension keys are spread across the fact key domain.
    for (int i = 0; i < dim_rows; ++i) {
      rows.push_back({Value::Int(static_cast<int64_t>(i) * fact_rows /
                                 dim_rows),
                      Value::String("tag" + std::to_string(i % 97))});
    }
    t->InsertUnchecked(std::move(rows));
  }
  {
    auto t = *b->engine().GetTable("fact");
    std::vector<Row> rows;
    for (int i = 0; i < fact_rows; ++i) {
      rows.push_back({Value::Int(i), Value::Double(i * 0.25),
                      Value::String("padpadpadpadpad")});
    }
    t->InsertUnchecked(std::move(rows));
  }
  (void)gis.ImportSource("dimsite");
  (void)gis.ImportSource("factsite");
  gis.network().set_default_link({20.0, 50.0});
}

}  // namespace

int main() {
  Header("E2: join strategies vs dimension size (fact = 100k rows)",
         "query decomposition for multi-system joins",
         "semijoin wins while |dim| << |fact| and loses past the "
         "crossover; the auto strategy should track the winner");

  const int kFactRows = Scaled(100000, 2000);
  std::printf("%10s | %12s %12s %12s | %12s %12s %12s | %-8s | %s\n",
              "dim_rows", "ship_KiB", "semi_KiB", "auto_KiB", "ship_ms",
              "semi_ms", "auto_ms", "auto chose", "auto wire throughput");
  const std::vector<int> dim_sweep =
      SmokeMode() ? std::vector<int>{10, 1000}
                  : std::vector<int>{10, 100, 1000, 10000, 50000, 100000};
  for (int dim_rows : dim_sweep) {
    GlobalSystem gis;
    BuildWorld(gis, dim_rows, kFactRows);
    const std::string q =
        "SELECT d.tag, SUM(f.v) FROM dim d JOIN fact f ON d.k = f.k "
        "GROUP BY d.tag";

    PlannerOptions ship;
    ship.enable_semijoin = false;
    gis.set_options(ship);
    auto m_ship = Run(gis, q);

    PlannerOptions semi;
    semi.force_semijoin = true;
    semi.semijoin_max_keys = 1 << 30;
    gis.set_options(semi);
    auto m_semi = Run(gis, q);

    gis.set_options(PlannerOptions::Full());
    auto explain = *gis.Explain(q);
    const bool chose_semi =
        explain.find("semijoin-reduced") != std::string::npos;
    auto m_auto = Run(gis, q);

    // Wire throughput of the auto plan over simulated time: fact rows
    // merged per simulated second and wire MB per simulated second.
    const auto tp = ThroughputOf(kFactRows,
                                 static_cast<double>(m_auto.bytes_received),
                                 m_auto.elapsed_ms / 1000.0);
    std::printf(
        "%10d | %12.1f %12.1f %12.1f | %12.2f %12.2f %12.2f | %-8s | %s\n",
        dim_rows, m_ship.bytes_received / 1024.0,
        m_semi.bytes_received / 1024.0, m_auto.bytes_received / 1024.0,
        m_ship.elapsed_ms, m_semi.elapsed_ms, m_auto.elapsed_ms,
        chose_semi ? "semijoin" : "ship", FormatThroughput(tp).c_str());
  }
  return 0;
}
