/// \file bench_e15_faults.cc
/// \brief E15: the price of fault tolerance — a deterministic cost
/// ladder for one query under increasingly severe, seeded WAN faults.
///
/// One replicated 20k-row table behind two replicas; the same COUNT/MAX
/// query runs (a) clean, (b) through a transient outage absorbed by
/// retry/backoff, (c) against a permanently dead preferred replica
/// (retries exhaust, then failover), and (d) with every replica dead
/// (typed error after full exhaustion). All times are simulated ms and
/// every run reproduces exactly from the seeds in this file.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "wire/protocol.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

/// Builds the two-replica world. Rebuilt per scenario so message
/// indices (the fault schedule's domain) start identically.
void Build(GlobalSystem* gis) {
  for (int i = 0; i < 2; ++i) {
    const std::string name = "replica" + std::to_string(i);
    auto src = *gis->CreateSource(name, SourceDialect::kRelational);
    (void)src->ExecuteLocalSql(
        "CREATE TABLE catalog_t (id bigint, name varchar, price double)");
    auto t = *src->engine().GetTable("catalog_t");
    std::vector<Row> rows;
    for (int r = 0; r < Scaled(20000, 1000); ++r) {
      rows.push_back({Value::Int(r), Value::String("item"),
                      Value::Double(r * 0.01)});
    }
    t->InsertUnchecked(std::move(rows));
    (void)gis->ImportTable(name, "catalog_t", "cat_" + name);
    (void)gis->catalog().SetLatencyHint(name, 5.0 + 45.0 * i);
    gis->network().SetLink(GlobalSystem::kMediatorHost, name,
                           {5.0 + 45.0 * i, 100.0});
  }
  (void)gis->CreateReplicatedView("items", {"cat_replica0", "cat_replica1"});
}

struct Outcome {
  double sim_ms = 0.0;
  long long bytes = 0;
  long long retries = 0;
  const char* result = "ok";
};

Outcome Scenario(FaultKind kind, int count, bool kill_both) {
  GlobalSystem gis;
  Build(&gis);
  gis.set_retry_policy(RetryPolicy::Standard(4, /*seed=*/15));
  gis.network().InstallFaults(/*seed=*/15, FaultProfile{});
  if (kind != FaultKind::kNone) {
    // Fragments travel under the columnar opcode by default and the row
    // opcode when A/B-ing, so the schedule covers both.
    for (auto op : {wire::Opcode::kExecuteFragment,
                    wire::Opcode::kExecuteFragmentColumnar}) {
      gis.network().faults()->InjectOn("replica0", static_cast<int>(op),
                                       kind, count);
      if (kill_both) {
        gis.network().faults()->InjectOn("replica1", static_cast<int>(op),
                                         kind, count);
      }
    }
  }

  Outcome out;
  // Snapshot the cumulative simulated-time counter so a failed query can
  // still report what it burned (QueryResult carries no metrics on error).
  const long long us0 = gis.network().metrics().Get("net.sim_us");
  const long long sent0 = gis.network().metrics().Get("net.bytes_sent");
  const long long recv0 = gis.network().metrics().Get("net.bytes_received");
  auto result =
      gis.Query("SELECT COUNT(*), MAX(price) FROM items WHERE id < 5000");
  if (result.ok()) {
    out.sim_ms = result->metrics.elapsed_ms;
    out.bytes = result->metrics.bytes_sent + result->metrics.bytes_received;
  } else {
    out.sim_ms =
        (gis.network().metrics().Get("net.sim_us") - us0) / 1000.0;
    out.bytes = gis.network().metrics().Get("net.bytes_sent") - sent0 +
                gis.network().metrics().Get("net.bytes_received") - recv0;
    out.result = result.status().IsNetworkError() ? "NetworkError"
                                                  : "error";
  }
  out.retries = gis.network().metrics().Get("net.retries");
  return out;
}

}  // namespace

int main() {
  Header("E15: fault injection — the deterministic cost ladder",
         "mediator resilience on an unreliable WAN (drops, outages, dead "
         "sources) with retry/backoff and replica failover",
         "clean < transient-with-retry < failover-to-replica < "
         "exhausted-retries; identical numbers on every run");

  constexpr int kPermanent = 1 << 30;
  const Outcome clean = Scenario(FaultKind::kNone, 0, false);
  // One dropped fragment request: absorbed by a single retry.
  const Outcome transient = Scenario(FaultKind::kDrop, 1, false);
  // replica0 permanently partitioned: retries exhaust, failover reads
  // replica1 over its slower link.
  const Outcome failover = Scenario(FaultKind::kOutage, kPermanent, false);
  // Both replicas dead: the query fails typed after full exhaustion.
  const Outcome dead = Scenario(FaultKind::kOutage, kPermanent, true);

  std::printf("%-28s %12s %10s %8s  %s\n", "scenario", "sim_ms", "bytes",
              "retries", "result");
  const struct {
    const char* name;
    const Outcome* o;
  } rows[] = {{"clean", &clean},
              {"transient drop + retry", &transient},
              {"replica0 dead + failover", &failover},
              {"all replicas dead", &dead}};
  for (const auto& row : rows) {
    std::printf("%-28s %12.2f %10lld %8lld  %s\n", row.name, row.o->sim_ms,
                row.o->bytes, row.o->retries, row.o->result);
  }

  // The ladder must be strictly ordered or the experiment is broken.
  if (!(clean.sim_ms < transient.sim_ms &&
        transient.sim_ms < failover.sim_ms &&
        failover.sim_ms < dead.sim_ms)) {
    std::fprintf(stderr, "cost ladder out of order\n");
    return 1;
  }
  return 0;
}
