/// \file bench_e1_pushdown.cc
/// \brief E1 (Figure 1): transparency cost — filter/projection pushdown
/// vs. ship-everything, swept over predicate selectivity.
///
/// One RELATIONAL source holds a 100k-row sales table behind a WAN link
/// (20 ms, 50 Mbps). The query selects rows by `sid < N`, so the
/// selectivity is exact. The mediator answers it twice: with the full
/// optimizer (filter+projection pushed into the source) and with the
/// ship-everything baseline (fetch the table, filter centrally).

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/generator.h"

using namespace gisql;
using namespace gisql::bench;

int main() {
  GlobalSystem gis;
  WorkloadSpec spec;
  spec.num_sites = 1;
  spec.num_customers = 100;
  spec.num_products = 100;
  spec.orders_per_site = Scaled(100000, 2000);
  if (Status st = BuildRetailFederation(&gis, spec); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  gis.network().set_default_link({20.0, 50.0});

  Header("E1: pushdown vs ship-everything, selectivity sweep",
         "the vision's 'transparent access need not mean shipping whole "
         "databases' claim",
         "pushdown bytes scale with selectivity; ship-everything is flat "
         "and worse everywhere except selectivity=1");

  std::printf("%12s %10s | %12s %12s | %12s %12s | %8s\n", "selectivity",
              "rows", "push_KiB", "ship_KiB", "push_ms", "ship_ms",
              "ratio");
  const double fractions[] = {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0};
  for (double f : fractions) {
    const long long n =
        static_cast<long long>(f * spec.orders_per_site);
    const std::string q =
        "SELECT sid, amount FROM sales WHERE sid < " + std::to_string(n);

    gis.set_options(PlannerOptions::Full());
    auto [rows, push] = RunCounted(gis, q);
    gis.set_options(PlannerOptions::ShipEverything());
    auto ship = Run(gis, q);

    std::printf("%12.3f %10zu | %12.1f %12.1f | %12.2f %12.2f | %8.2fx\n",
                f, rows, push.bytes_received / 1024.0,
                ship.bytes_received / 1024.0, push.elapsed_ms,
                ship.elapsed_ms,
                ship.elapsed_ms / std::max(push.elapsed_ms, 1e-9));
  }
  return 0;
}
