/// \file bench_e5_optimizer.cc
/// \brief E5 (Table 2): optimizer quality — join ordering algorithms on
/// chain and star join queries over tables of skewed sizes.
///
/// Five relational tables (10 / 100 / 1k / 5k / 20k rows) across two
/// sources. For each ordering algorithm we report the estimated C_out
/// (sum of intermediate join cardinalities), the *measured* bytes and
/// simulated latency, and the wall-clock planning time.

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "sql/parser.h"

using namespace gisql;
using namespace gisql::bench;

namespace {

void BuildWorld(GlobalSystem& gis) {
  auto a = *gis.CreateSource("a", SourceDialect::kRelational);
  auto b = *gis.CreateSource("b", SourceDialect::kRelational);
  struct Spec {
    const char* name;
    int rows;
    ComponentSource* site;
  };
  const Spec specs[] = {
      {"t1", 10, a},
      {"t2", 100, a},
      {"t3", Scaled(1000, 200), b},
      {"t4", Scaled(5000, 400), b},
      {"t5", Scaled(20000, 800), b},
  };
  for (const auto& s : specs) {
    (void)s.site->ExecuteLocalSql(
        std::string("CREATE TABLE ") + s.name +
        " (k bigint, fk bigint, pad varchar)");
    auto t = *s.site->engine().GetTable(s.name);
    std::vector<Row> rows;
    for (int i = 0; i < s.rows; ++i) {
      // fk points into the *previous* table's key domain (chain joins).
      rows.push_back({Value::Int(i), Value::Int(i % std::max(1, s.rows / 10)),
                      Value::String("xxxxxxxxxx")});
    }
    t->InsertUnchecked(std::move(rows));
  }
  (void)gis.ImportSource("a");
  (void)gis.ImportSource("b");
  gis.network().set_default_link({20.0, 50.0});
}

double EstimatedCout(GlobalSystem& gis, const std::string& q) {
  auto stmt = sql::ParseSelect(q);
  auto plan = gis.PlanQuery(**stmt);
  if (!plan.ok()) return -1;
  double total = 0;
  VisitPlan(*plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kJoin) total += node->est_rows;
  });
  return total;
}

const char* OrderingName(JoinOrdering o) {
  switch (o) {
    case JoinOrdering::kAsWritten: return "as-written";
    case JoinOrdering::kGreedy: return "greedy";
    case JoinOrdering::kDp: return "dp";
    case JoinOrdering::kWorst: return "worst";
  }
  return "?";
}

}  // namespace

int main() {
  GlobalSystem gis;
  BuildWorld(gis);

  Header("E5: join ordering quality (chain & star joins, 3-5 tables)",
         "cost-based global query optimization across systems",
         "actual cost ordering: dp <= greedy <= as-written <= worst; "
         "planning time grows with enumeration effort");

  const struct {
    const char* label;
    const char* sql;
  } queries[] = {
      {"chain-3",
       "SELECT COUNT(*) FROM t5 JOIN t3 ON t5.fk = t3.k "
       "JOIN t1 ON t3.fk = t1.k"},
      {"chain-4",
       "SELECT COUNT(*) FROM t5 JOIN t4 ON t5.fk = t4.k "
       "JOIN t2 ON t4.fk = t2.k JOIN t1 ON t2.fk = t1.k"},
      {"star-4",
       "SELECT COUNT(*) FROM t5 JOIN t1 ON t5.fk = t1.k "
       "JOIN t2 ON t5.fk = t2.k JOIN t3 ON t5.fk = t3.k"},
      {"chain-5",
       "SELECT COUNT(*) FROM t5 JOIN t4 ON t5.fk = t4.k "
       "JOIN t3 ON t4.fk = t3.k JOIN t2 ON t3.fk = t2.k "
       "JOIN t1 ON t2.fk = t1.k"},
  };

  std::printf("%-8s %-11s | %14s %12s %12s | %10s\n", "query", "ordering",
              "est_Cout", "bytes_KiB", "sim_ms", "plan_us");
  for (const auto& q : queries) {
    long long answer = -1;
    for (JoinOrdering ord : {JoinOrdering::kWorst, JoinOrdering::kAsWritten,
                             JoinOrdering::kGreedy, JoinOrdering::kDp}) {
      PlannerOptions opts;
      opts.join_ordering = ord;
      gis.set_options(opts);

      const auto t0 = std::chrono::steady_clock::now();
      const double cout = EstimatedCout(gis, q.sql);
      const auto t1 = std::chrono::steady_clock::now();

      auto result = gis.Query(q.sql);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const long long count = result->batch.rows()[0][0].AsInt();
      if (answer < 0) answer = count;
      if (count != answer) {
        std::fprintf(stderr, "ordering %s changed the answer!\n",
                     OrderingName(ord));
        return 1;
      }
      std::printf("%-8s %-11s | %14.0f %12.1f %12.2f | %10lld\n", q.label,
                  OrderingName(ord), cout,
                  result->metrics.bytes_received / 1024.0,
                  result->metrics.elapsed_ms,
                  static_cast<long long>(
                      std::chrono::duration_cast<std::chrono::microseconds>(
                          t1 - t0)
                          .count()));
    }
    std::printf("\n");
  }
  gis.set_options(PlannerOptions::Full());
  return 0;
}
