/// Unit tests for src/common: Status/Result, byte codec, RNG, strings,
/// hashing, metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace gisql {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("table '", "orders", "' missing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "table 'orders' missing");
  EXPECT_EQ(st.ToString(), "NotFound: table 'orders' missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 13; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::IOError("disk gone"); };
  auto outer = [&]() -> Status {
    GISQL_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(Result<int>(Status::NotFound("x")).ValueOr(3), 3);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("nope");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    GISQL_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 20);
  EXPECT_TRUE(outer(true).status().IsNotFound());
}

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutDouble(3.14159);
  w.PutBool(true);
  ByteReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_TRUE(*r.GetBool());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTrip) {
  ByteWriter w;
  const uint64_t cases[] = {0, 1, 127, 128, 300, 16383, 16384,
                            (1ULL << 32), ~0ULL};
  for (uint64_t v : cases) w.PutVarint(v);
  ByteReader r(w.data());
  for (uint64_t v : cases) EXPECT_EQ(*r.GetVarint(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, SignedVarintRoundTrip) {
  ByteWriter w;
  const int64_t cases[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX, -123456};
  for (int64_t v : cases) w.PutSignedVarint(v);
  ByteReader r(w.data());
  for (int64_t v : cases) EXPECT_EQ(*r.GetSignedVarint(), v);
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("");
  w.PutString("hello");
  w.PutString(std::string(1000, 'x'));
  ByteReader r(w.data());
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(r.GetString()->size(), 1000u);
}

TEST(BytesTest, TruncationDetected) {
  ByteWriter w;
  w.PutU64(42);
  ByteReader r(w.data().data(), 4);  // cut in half
  auto res = r.GetU64();
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsSerializationError());
}

TEST(BytesTest, TruncatedVarintDetected) {
  std::vector<uint8_t> bad = {0x80, 0x80};  // continuation with no end
  ByteReader r(bad);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(BytesTest, TruncatedStringBodyDetected) {
  ByteWriter w;
  w.PutVarint(100);  // claims 100 bytes follow
  w.PutRaw("abc", 3);
  ByteReader r(w.data());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(3);
  int64_t ones = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    int64_t v = rng.Zipf(100, 0.9);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
    if (v == 1) ++ones;
  }
  // Rank 1 should be far more frequent than uniform (1%).
  EXPECT_GT(ones, kTrials / 20);
}

TEST(RngTest, ZipfThetaZeroIsUniformish) {
  Rng rng(4);
  int64_t ones = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Zipf(100, 0.0) == 1) ++ones;
  }
  EXPECT_LT(ones, 20000 / 50);  // ~1% expected
}

TEST(StringUtilTest, CaseFolding) {
  EXPECT_EQ(ToLower("AbC9"), "abc9");
  EXPECT_EQ(ToUpper("aBc_"), "ABC_");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "SELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("ab", "abc"));
}

TEST(StringUtilTest, JoinSplitTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, LikeMatching) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%llo"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("hello", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("hello", "h_" ));
  EXPECT_FALSE(LikeMatch("hello", "H%"));  // case sensitive
  EXPECT_TRUE(LikeMatch("abcabc", "%abc"));
  EXPECT_TRUE(LikeMatch("a", "_"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("xyz", "x%z"));
  EXPECT_FALSE(LikeMatch("xz", "x_z"));
}

TEST(StringUtilTest, LikeEdgeCases) {
  // Consecutive wildcards collapse: "%%a" ≡ "%a".
  EXPECT_TRUE(LikeMatch("a", "%%a"));
  EXPECT_TRUE(LikeMatch("bca", "%%a"));
  EXPECT_FALSE(LikeMatch("ab", "%%a"));
  EXPECT_FALSE(LikeMatch("", "%%a"));
  // A pattern ending in '_' must consume exactly one trailing char.
  EXPECT_TRUE(LikeMatch("ab", "a_"));
  EXPECT_FALSE(LikeMatch("a", "a_"));
  EXPECT_FALSE(LikeMatch("abc", "a_"));
  EXPECT_TRUE(LikeMatch("abc", "%_"));
  EXPECT_FALSE(LikeMatch("", "%_"));
  // Empty value: matched by "%" (and only by patterns of %s).
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("", "%%"));
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_FALSE(LikeMatch("", "a"));
  // '%' then '_' still demands one character somewhere.
  EXPECT_TRUE(LikeMatch("x", "%_%"));
  EXPECT_FALSE(LikeMatch("", "%_%"));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(1536 * 1024), "1.50 MiB");
}

TEST(HashTest, Determinism) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_EQ(HashInt(42), HashInt(42));
  EXPECT_NE(HashInt(42), HashInt(43));
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(HashInt(1), HashInt(2)),
            HashCombine(HashInt(2), HashInt(1)));
}

TEST(HashTest, IntFinalizerSpreadsLowBits) {
  std::set<uint64_t> top_bytes;
  for (uint64_t i = 0; i < 256; ++i) top_bytes.insert(HashInt(i) >> 56);
  EXPECT_GT(top_bytes.size(), 100u);
}

TEST(MetricsTest, CountersAndGauges) {
  MetricsRegistry m;
  m.Add("bytes", 100);
  m.Add("bytes", 50);
  EXPECT_EQ(m.Get("bytes"), 150);
  EXPECT_EQ(m.Get("missing"), 0);
  m.Set("time_ms", 12.5);
  EXPECT_DOUBLE_EQ(m.GetGauge("time_ms"), 12.5);
  EXPECT_EQ(m.Counters().size(), 1u);
  m.Reset();
  EXPECT_EQ(m.Get("bytes"), 0);
}

TEST(HistogramTest, BucketBoundsGrowBySqrt2) {
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(0), 1e-3);
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(2), 2e-3);
  EXPECT_NEAR(Histogram::UpperBound(1) / Histogram::UpperBound(0),
              std::sqrt(2.0), 1e-12);
}

TEST(HistogramTest, IdenticalObservationsReportExactly) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Observe(7.5);
  EXPECT_EQ(h.count(), 10);
  EXPECT_DOUBLE_EQ(h.min(), 7.5);
  EXPECT_DOUBLE_EQ(h.max(), 7.5);
  // Interpolation clamps to the observed range.
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 7.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 7.5);
}

TEST(HistogramTest, PercentilesOrderedAndBracketed) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  const double p50 = h.Percentile(0.50);
  const double p95 = h.Percentile(0.95);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  // Log-scale buckets are coarse (sqrt-2 steps ≈ ±41%), so only ask
  // for bucket-level accuracy.
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.45);
  EXPECT_NEAR(p95, 950.0, 950.0 * 0.45);
}

TEST(HistogramTest, ZeroNegativeAndOverflowAreSafe) {
  Histogram h;
  h.Observe(0.0);
  h.Observe(-5.0);
  h.Observe(1e300);  // far beyond the last bound → overflow bucket
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
  const double p50 = h.Percentile(0.5);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p50, h.max());
}

TEST(MetricsTest, RegistryHistograms) {
  MetricsRegistry m;
  EXPECT_EQ(m.SnapshotHistogram("lat").count, 0);
  m.Observe("lat", 10.0);
  m.Observe("lat", 20.0);
  m.Observe("lat", 30.0);
  HistogramSnapshot snap = m.SnapshotHistogram("lat");
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 60.0);
  EXPECT_DOUBLE_EQ(snap.min, 10.0);
  EXPECT_DOUBLE_EQ(snap.max, 30.0);
  EXPECT_GE(snap.p95, snap.p50);
  m.Reset();
  EXPECT_EQ(m.SnapshotHistogram("lat").count, 0);
}

}  // namespace
}  // namespace gisql
