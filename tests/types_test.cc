/// Unit tests for src/types: DataType rules, Value semantics, Schema
/// resolution, RowBatch utilities.

#include <gtest/gtest.h>

#include "types/data_type.h"
#include "types/row.h"
#include "types/schema.h"
#include "types/value.h"

namespace gisql {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(TypeName(TypeId::kInt64), "BIGINT");
  EXPECT_STREQ(TypeName(TypeId::kString), "VARCHAR");
}

TEST(DataTypeTest, ImplicitCastRules) {
  EXPECT_TRUE(IsImplicitlyCastable(TypeId::kInt64, TypeId::kDouble));
  EXPECT_TRUE(IsImplicitlyCastable(TypeId::kNull, TypeId::kString));
  EXPECT_FALSE(IsImplicitlyCastable(TypeId::kDouble, TypeId::kInt64));
  EXPECT_FALSE(IsImplicitlyCastable(TypeId::kString, TypeId::kInt64));
  EXPECT_TRUE(IsImplicitlyCastable(TypeId::kDate, TypeId::kInt64));
}

TEST(DataTypeTest, CommonTypePromotion) {
  EXPECT_EQ(*CommonType(TypeId::kInt64, TypeId::kDouble), TypeId::kDouble);
  EXPECT_EQ(*CommonType(TypeId::kNull, TypeId::kString), TypeId::kString);
  EXPECT_EQ(*CommonType(TypeId::kBool, TypeId::kBool), TypeId::kBool);
  EXPECT_FALSE(CommonType(TypeId::kString, TypeId::kInt64).ok());
}

TEST(DataTypeTest, ParseTypeNames) {
  EXPECT_EQ(*ParseTypeName("BIGINT"), TypeId::kInt64);
  EXPECT_EQ(*ParseTypeName("int"), TypeId::kInt64);
  EXPECT_EQ(*ParseTypeName("Varchar"), TypeId::kString);
  EXPECT_EQ(*ParseTypeName("double"), TypeId::kDouble);
  EXPECT_EQ(*ParseTypeName("date"), TypeId::kDate);
  EXPECT_EQ(*ParseTypeName("boolean"), TypeId::kBool);
  EXPECT_FALSE(ParseTypeName("blob").ok());
}

TEST(ValueTest, NullBehavior) {
  Value v;
  EXPECT_TRUE(v.is_null());
  Value typed_null = Value::Null(TypeId::kInt64);
  EXPECT_TRUE(typed_null.is_null());
  EXPECT_EQ(typed_null.type(), TypeId::kInt64);
  EXPECT_EQ(typed_null.ToString(), "NULL");
}

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Date(19000).type(), TypeId::kDate);
}

TEST(ValueTest, CompareSameType) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(5).Compare(Value::Int(5)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
}

TEST(ValueTest, CompareCrossNumeric) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_EQ(Value::Date(100).Compare(Value::Int(100)), 0);
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-999)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null(TypeId::kString)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  // Cross-representation equality must hash identically.
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("k").Hash(), Value::String("k").Hash());
  EXPECT_NE(Value::Int(7).Hash(), Value::Int(8).Hash());
}

TEST(ValueTest, CastNumericConversions) {
  EXPECT_EQ(Value::Double(3.9).CastTo(TypeId::kInt64)->AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value::Int(4).CastTo(TypeId::kDouble)->AsDouble(), 4.0);
  EXPECT_EQ(Value::Int(1).CastTo(TypeId::kBool)->AsBool(), true);
  EXPECT_EQ(Value::Int(19000).CastTo(TypeId::kDate)->type(), TypeId::kDate);
}

TEST(ValueTest, CastStringConversions) {
  EXPECT_EQ(Value::String("123").CastTo(TypeId::kInt64)->AsInt(), 123);
  EXPECT_DOUBLE_EQ(Value::String("1.5").CastTo(TypeId::kDouble)->AsDouble(),
                   1.5);
  EXPECT_EQ(Value::Int(9).CastTo(TypeId::kString)->AsString(), "9");
  EXPECT_FALSE(Value::String("12x").CastTo(TypeId::kInt64).ok());
  EXPECT_FALSE(Value::String("").CastTo(TypeId::kDouble).ok());
}

TEST(ValueTest, CastNullPreservesTargetType) {
  auto v = Value::Null().CastTo(TypeId::kDouble);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  EXPECT_EQ(v->type(), TypeId::kDouble);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

TEST(ValueTest, WireSizeTracksContent) {
  EXPECT_GT(Value::String("a long string here").WireSize(),
            Value::String("a").WireSize());
  EXPECT_EQ(Value::Null().WireSize(), 2);
}

TEST(SchemaTest, ResolveUnqualified) {
  Schema s({{"id", TypeId::kInt64, false, "t"},
            {"name", TypeId::kString, true, "t"}});
  EXPECT_EQ(*s.ResolveColumn("", "name"), 1u);
  EXPECT_EQ(*s.ResolveColumn("t", "id"), 0u);
  EXPECT_TRUE(s.ResolveColumn("", "missing").status().IsBindError());
  EXPECT_TRUE(s.ResolveColumn("u", "id").status().IsBindError());
}

TEST(SchemaTest, ResolveCaseInsensitive) {
  Schema s({{"Id", TypeId::kInt64, false, "T"}});
  EXPECT_EQ(*s.ResolveColumn("t", "ID"), 0u);
}

TEST(SchemaTest, AmbiguityDetected) {
  Schema s({{"id", TypeId::kInt64, false, "a"},
            {"id", TypeId::kInt64, false, "b"}});
  EXPECT_TRUE(s.ResolveColumn("", "id").status().IsBindError());
  EXPECT_EQ(*s.ResolveColumn("b", "id"), 1u);
}

TEST(SchemaTest, ConcatAndQualify) {
  Schema a({{"x", TypeId::kInt64}});
  Schema b({{"y", TypeId::kString}});
  Schema ab = a.Concat(b);
  EXPECT_EQ(ab.num_fields(), 2u);
  Schema q = ab.WithQualifier("j");
  EXPECT_EQ(q.field(0).qualifier, "j");
  EXPECT_EQ(q.field(1).QualifiedName(), "j.y");
}

TEST(SchemaTest, SelectProjection) {
  Schema s({{"a", TypeId::kInt64}, {"b", TypeId::kString},
            {"c", TypeId::kDouble}});
  Schema p = s.Select({2, 0});
  ASSERT_EQ(p.num_fields(), 2u);
  EXPECT_EQ(p.field(0).name, "c");
  EXPECT_EQ(p.field(1).name, "a");
}

TEST(SchemaTest, UnionCompatibility) {
  Schema a({{"x", TypeId::kInt64}, {"y", TypeId::kString}});
  Schema b({{"p", TypeId::kInt64}, {"q", TypeId::kString}});
  Schema c({{"p", TypeId::kString}, {"q", TypeId::kString}});
  Schema d({{"x", TypeId::kInt64}});
  EXPECT_TRUE(a.UnionCompatible(b));
  EXPECT_FALSE(a.UnionCompatible(c));
  EXPECT_FALSE(a.UnionCompatible(d));
}

TEST(RowTest, HashAndCompareKeys) {
  Row r1 = {Value::Int(1), Value::String("a")};
  Row r2 = {Value::Int(1), Value::String("b")};
  std::vector<size_t> k0 = {0};
  std::vector<size_t> k01 = {0, 1};
  EXPECT_EQ(HashRowKeys(r1, k0), HashRowKeys(r2, k0));
  EXPECT_NE(HashRowKeys(r1, k01), HashRowKeys(r2, k01));
  EXPECT_EQ(CompareRowKeys(r1, r2, k0), 0);
  EXPECT_LT(CompareRowKeys(r1, r2, k01), 0);
}

TEST(RowBatchTest, BasicOps) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"id", TypeId::kInt64}, {"s", TypeId::kString}});
  RowBatch batch(schema);
  batch.Append({Value::Int(1), Value::String("one")});
  batch.Append({Value::Int(2), Value::String("two")});
  EXPECT_EQ(batch.num_rows(), 2u);
  EXPECT_GT(batch.WireSize(), 0);
  std::string rendered = batch.ToString();
  EXPECT_NE(rendered.find("'one'"), std::string::npos);
  EXPECT_NE(rendered.find("2 row(s)"), std::string::npos);
}

TEST(RowBatchTest, ToStringTruncates) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"id", TypeId::kInt64}});
  RowBatch batch(schema);
  for (int i = 0; i < 30; ++i) batch.Append({Value::Int(i)});
  std::string rendered = batch.ToString(5);
  EXPECT_NE(rendered.find("... 25 more rows"), std::string::npos);
}

}  // namespace
}  // namespace gisql
