/// Seeded chaos for the cursor streaming path: streamable and spooled
/// cursors drain the retail corpus under deterministic fault schedules
/// with mediator retry enabled. A drained cursor must return row-for-row
/// the fault-free oracle's answer with a gapless, duplicate-free chunk
/// sequence — the at-least-once transport plus the source's one-chunk
/// re-serve window may never skip or repeat rows. Residual transport
/// errors leave the cursor open so the client can re-fetch; anything
/// else finalizes it. After every outcome the mediator holds zero grant
/// bytes and the sources hold zero staged cursors, and the same seed
/// replays the identical gis.cursors / gis.queries picture.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/global_system.h"
#include "net/retry.h"
#include "workload/generator.h"

namespace gisql {
namespace {

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.seed = 7;
  spec.num_sites = 3;
  spec.num_customers = 60;
  spec.num_products = 25;
  spec.orders_per_site = 120;
  return spec;
}

/// Streamable shapes first (chunked straight off the source cursors),
/// then blocking shapes that drain through the mediator-side spool.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string> queries = {
      "SELECT sid, cid, amount FROM sales WHERE amount > 100",
      "SELECT cid, name FROM customers WHERE cid < 30",
      "SELECT sid, pid, qty FROM sales WHERE qty > 5 LIMIT 40",
      "SELECT region, SUM(amount) FROM sales JOIN customers "
      "ON sales.cid = customers.cid GROUP BY region ORDER BY region",
  };
  return queries;
}

/// Serial execution keeps the per-link message sequence — the fault
/// schedule's randomness domain — independent of thread scheduling.
PlannerOptions SerialOptions() {
  PlannerOptions options;
  options.parallel_execution = false;
  return options;
}

std::string Rows(const RowBatch& batch) { return batch.ToString(1 << 20); }

/// Drains cursor `id`, re-fetching through residual transport errors
/// (the cursor stays open across those, and the source re-serves the
/// same chunk). Returns true with the concatenated rows on a full
/// drain; false when retries ran dry or the cursor was finalized by a
/// non-transport error.
bool DrainWithRetry(GlobalSystem* gis, uint64_t id, RowBatch* out,
                    Status* final_error) {
  uint64_t expect_seq = 0;
  int residual_retries = 0;
  while (true) {
    auto chunk = gis->FetchChunk(id);
    if (!chunk.ok()) {
      if (IsRetryableTransport(chunk.status()) && residual_retries < 25) {
        ++residual_retries;
        continue;  // cursor is still open; re-fetch the same chunk
      }
      *final_error = chunk.status();
      return false;
    }
    // The mediator-visible chunk sequence must be gapless and
    // duplicate-free no matter what the transport did underneath.
    EXPECT_EQ(chunk->seq, expect_seq);
    ++expect_seq;
    if (expect_seq == 1) *out = RowBatch(chunk->batch.schema());
    for (const auto& row : chunk->batch.rows()) out->Append(row);
    if (chunk->done) return true;
  }
}

/// Grants and source staging must be empty once no cursor is open —
/// only the sources' resident buffer-pool frames stay charged —
/// whatever mix of drains, failures, and closes got us there.
void ExpectEverythingReleased(GlobalSystem& gis) {
  EXPECT_EQ(gis.cursors().OpenCount(), 0u);
  EXPECT_EQ(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());
  for (const std::string& name :
       {std::string("hq"), std::string("catalog"), std::string("site0"),
        std::string("site1"), std::string("site2")}) {
    auto src = gis.GetSource(name);
    ASSERT_TRUE(src.ok()) << name;
    EXPECT_EQ((*src)->open_cursors(), 0u) << name;
  }
}

class CursorChaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CursorChaos, DrainedCursorsMatchOracleOrFailTyped) {
  const uint64_t seed = GetParam();

  GlobalSystem oracle(SerialOptions());
  ASSERT_TRUE(BuildRetailFederation(&oracle, SmallSpec()).ok());

  GlobalSystem chaotic(SerialOptions());
  ASSERT_TRUE(BuildRetailFederation(&chaotic, SmallSpec()).ok());
  chaotic.set_retry_policy(RetryPolicy::Standard(6, seed));
  chaotic.network().InstallFaults(seed, FaultProfile::Chaos(0.4));

  int drained = 0;
  for (const auto& q : Corpus()) {
    auto want = oracle.Query(q);
    ASSERT_TRUE(want.ok()) << want.status().ToString() << " for: " << q;

    GlobalSystem::CursorOptions copts;
    copts.chunk_rows = 16;
    auto id = chaotic.OpenCursor(q, copts);
    if (!id.ok()) {
      // Opens that lose to the schedule must fail typed, and a failed
      // open may not leave a cursor or a grant behind.
      EXPECT_TRUE(id.status().IsNetworkError() ||
                  id.status().IsSerializationError())
          << "seed " << seed << ": " << id.status().ToString()
          << " for: " << q;
      continue;
    }

    RowBatch got;
    Status err;
    if (DrainWithRetry(&chaotic, *id, &got, &err)) {
      EXPECT_EQ(Rows(got), Rows(want->batch)) << "seed " << seed << ": " << q;
      ++drained;
    } else {
      EXPECT_TRUE(err.IsNetworkError() || err.IsSerializationError())
          << "seed " << seed << ": " << err.ToString() << " for: " << q;
      EXPECT_TRUE(chaotic.CloseCursor(*id).ok());
    }
    // Close is idempotent whether the drain finalized the cursor or not.
    EXPECT_TRUE(chaotic.CloseCursor(*id).ok());
  }
  // All-transient faults plus 6 transport retries plus client re-fetches:
  // a schedule that drains nothing would be a retry or re-serve bug.
  EXPECT_GT(drained, 0) << "seed " << seed;
  ExpectEverythingReleased(chaotic);
}

TEST_P(CursorChaos, ExpiredLeaseReleasesEverythingUnderFaults) {
  const uint64_t seed = GetParam();
  GlobalSystem gis(SerialOptions());
  ASSERT_TRUE(BuildRetailFederation(&gis, SmallSpec()).ok());
  gis.set_retry_policy(RetryPolicy::Standard(6, seed));
  gis.network().InstallFaults(seed, FaultProfile::Chaos(0.3));

  GlobalSystem::CursorOptions copts;
  copts.chunk_rows = 8;
  copts.lease_ms = 50.0;
  auto id = gis.OpenCursor("SELECT sid, cid, amount FROM sales", copts);
  if (!id.ok()) {
    // The schedule killed the open outright; nothing may be held.
    ExpectEverythingReleased(gis);
    return;
  }
  // Pull a chunk if the faults allow it — the grant is live either way.
  (void)gis.FetchChunk(*id);

  // Let the lease run out on the simulated clock; the next cursor call
  // sweeps it and the expiry must hand back grant and staging even
  // though the drain never finished.
  gis.governor().AdvanceTo(gis.governor().now_ms() + 1e6);
  auto late = gis.FetchChunk(*id);
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsNotFound()) << late.status().ToString();
  EXPECT_NE(late.status().message().find("expired"), std::string::npos)
      << late.status().ToString();
  ExpectEverythingReleased(gis);
}

TEST_P(CursorChaos, SameSeedReplaysCursorsAndQueriesIdentically) {
  const uint64_t seed = GetParam();
  std::string pictures[2];
  for (int run = 0; run < 2; ++run) {
    GlobalSystem gis(SerialOptions());
    ASSERT_TRUE(BuildRetailFederation(&gis, SmallSpec()).ok());
    gis.set_retry_policy(RetryPolicy::Standard(6, seed));
    gis.network().InstallFaults(seed, FaultProfile::Chaos(0.4));

    for (const auto& q : Corpus()) {
      GlobalSystem::CursorOptions copts;
      copts.chunk_rows = 16;
      auto id = gis.OpenCursor(q, copts);
      if (!id.ok()) continue;
      RowBatch got;
      Status err;
      (void)DrainWithRetry(&gis, *id, &got, &err);
      (void)gis.CloseCursor(*id);
    }

    // The whole observable picture — cursor lifecycle table, query log,
    // and transport accounting — must be a pure function of the seed.
    std::string picture = Rows(gis.cursors().Snapshot());
    auto log = gis.Query(
        "SELECT sql, shed_reason, rows, retries FROM gis.queries");
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    picture += "\n" + Rows(log->batch);
    picture +=
        "\nretries=" +
        std::to_string(gis.network().metrics().Get("net.retries")) +
        " drops=" +
        std::to_string(gis.network().metrics().Get("net.faults.drop")) +
        " chunks=" + std::to_string(gis.metrics().Get("cursor.chunks"));
    pictures[run] = std::move(picture);
  }
  EXPECT_EQ(pictures[0], pictures[1]) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CursorChaos,
                         ::testing::Range<uint64_t>(9100, 9112));

}  // namespace
}  // namespace gisql
