/// ColumnBatch tests: RowBatch ↔ ColumnBatch conversion round trips
/// (all TypeIds, nulls, empty batches, empty and large strings), the
/// implicit-cast-only coercion contract, the column-mask conversion
/// used by sources, and the columnar wire encoding against the row
/// encoding on identical data.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "types/column_batch.h"
#include "wire/serde.h"

namespace gisql {
namespace {

SchemaPtr AllTypesSchema() {
  return std::make_shared<Schema>(std::vector<Field>{
      {"n", TypeId::kNull},
      {"b", TypeId::kBool},
      {"i", TypeId::kInt64},
      {"d", TypeId::kDouble},
      {"s", TypeId::kString},
      {"t", TypeId::kDate}});
}

/// A random batch over every TypeId with ~20% NULLs per cell.
RowBatch RandomBatch(uint64_t seed, size_t rows) {
  RowBatch batch(AllTypesSchema());
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(Value::Null(TypeId::kNull));
    row.push_back(rng.Bernoulli(0.2) ? Value::Null(TypeId::kBool)
                                     : Value::Bool(rng.Bernoulli(0.5)));
    row.push_back(rng.Bernoulli(0.2)
                      ? Value::Null(TypeId::kInt64)
                      : Value::Int(rng.Uniform(-1000000, 1000000)));
    row.push_back(rng.Bernoulli(0.2)
                      ? Value::Null(TypeId::kDouble)
                      : Value::Double(rng.NextDouble() * 1e6 - 5e5));
    row.push_back(rng.Bernoulli(0.2)
                      ? Value::Null(TypeId::kString)
                      : Value::String(rng.NextString(rng.Uniform(0, 24))));
    row.push_back(rng.Bernoulli(0.2) ? Value::Null(TypeId::kDate)
                                     : Value::Date(rng.Uniform(0, 40000)));
    batch.Append(std::move(row));
  }
  return batch;
}

void ExpectSameRows(const RowBatch& a, const RowBatch& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.schema()->num_fields(), b.schema()->num_fields());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.schema()->num_fields(); ++c) {
      const Value& va = a.rows()[r][c];
      const Value& vb = b.rows()[r][c];
      EXPECT_EQ(va.is_null(), vb.is_null()) << "row " << r << " col " << c;
      EXPECT_TRUE(va == vb) << "row " << r << " col " << c << ": "
                            << va.ToString() << " vs " << vb.ToString();
    }
  }
}

class ColumnBatchRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnBatchRoundTrip, ConversionPreservesRows) {
  Rng rng(GetParam());
  const size_t rows = static_cast<size_t>(rng.Uniform(0, 200));
  RowBatch batch = RandomBatch(GetParam() * 7 + 1, rows);
  auto columns = ColumnBatch::FromRows(batch);
  ASSERT_TRUE(columns.ok()) << columns.status().ToString();
  EXPECT_EQ(columns->num_rows(), rows);
  ExpectSameRows(batch, columns->ToRows());
}

TEST_P(ColumnBatchRoundTrip, WirePreservesRows) {
  RowBatch batch = RandomBatch(GetParam() * 13 + 5, 97);
  ColumnBatch columns = *ColumnBatch::FromRows(batch);
  const auto buf = wire::SerializeColumnBatch(columns);
  ByteReader reader(buf);
  auto back = wire::ReadColumnBatch(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(reader.remaining(), 0u);
  ExpectSameRows(batch, back->ToRows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnBatchRoundTrip,
                         ::testing::Range<uint64_t>(40, 46));

TEST(ColumnBatchTest, EmptyBatchRoundTrips) {
  RowBatch batch(AllTypesSchema());
  ColumnBatch columns = *ColumnBatch::FromRows(batch);
  EXPECT_EQ(columns.num_rows(), 0u);
  EXPECT_EQ(columns.ToRows().num_rows(), 0u);
  const auto buf = wire::SerializeColumnBatch(columns);
  ByteReader reader(buf);
  auto back = wire::ReadColumnBatch(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 0u);
}

TEST(ColumnBatchTest, EmptyAndLargeStringsRoundTrip) {
  auto schema =
      std::make_shared<Schema>(std::vector<Field>{{"s", TypeId::kString}});
  RowBatch batch(schema);
  batch.Append({Value::String("")});
  batch.Append({Value::String(std::string(1 << 16, 'x'))});
  batch.Append({Value::Null(TypeId::kString)});
  batch.Append({Value::String("tail")});
  ColumnBatch columns = *ColumnBatch::FromRows(batch);
  EXPECT_EQ(columns.column(0).StringAt(0), "");
  EXPECT_EQ(columns.column(0).StringAt(1).size(), size_t{1 << 16});
  EXPECT_TRUE(columns.column(0).IsNull(2));
  const auto buf = wire::SerializeColumnBatch(columns);
  ByteReader reader(buf);
  auto back = wire::ReadColumnBatch(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameRows(batch, back->ToRows());
}

TEST(ColumnBatchTest, AllNullColumnRoundTrips) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"i", TypeId::kInt64}, {"n", TypeId::kNull}});
  RowBatch batch(schema);
  for (int r = 0; r < 10; ++r) {
    batch.Append({Value::Null(TypeId::kInt64), Value::Null(TypeId::kNull)});
  }
  ColumnBatch columns = *ColumnBatch::FromRows(batch);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_TRUE(columns.column(0).IsNull(r));
    EXPECT_TRUE(columns.column(1).IsNull(r));
  }
  const auto buf = wire::SerializeColumnBatch(columns);
  ByteReader reader(buf);
  auto back = wire::ReadColumnBatch(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectSameRows(batch, back->ToRows());
}

TEST(ColumnBatchTest, ImplicitCastsCoerceToColumnType) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"d", TypeId::kDouble}, {"t", TypeId::kDate}});
  RowBatch batch(schema);
  batch.Append({Value::Int(3), Value::Int(1234)});  // INT64→DOUBLE, →DATE
  ColumnBatch columns = *ColumnBatch::FromRows(batch);
  EXPECT_EQ(columns.column(0).doubles[0], 3.0);
  EXPECT_EQ(columns.column(1).ints[0], 1234);
  const RowBatch back = columns.ToRows();
  EXPECT_EQ(back.rows()[0][0].type(), TypeId::kDouble);
  EXPECT_EQ(back.rows()[0][1].type(), TypeId::kDate);
}

TEST(ColumnBatchTest, NonImplicitCastFails) {
  auto schema =
      std::make_shared<Schema>(std::vector<Field>{{"i", TypeId::kInt64}});
  RowBatch batch(schema);
  batch.Append({Value::String("not a number")});
  auto columns = ColumnBatch::FromRows(batch);
  ASSERT_FALSE(columns.ok());
  EXPECT_TRUE(columns.status().IsInvalidArgument())
      << columns.status().ToString();
}

TEST(ColumnBatchTest, ColumnMaskConvertsOnlyListedColumns) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"a", TypeId::kInt64}, {"b", TypeId::kString}, {"c", TypeId::kDouble}});
  RowBatch batch(schema);
  batch.Append({Value::Int(1), Value::String("x"), Value::Double(0.5)});
  batch.Append({Value::Int(2), Value::String("y"), Value::Double(1.5)});
  std::vector<const Row*> ptrs;
  for (const auto& row : batch.rows()) ptrs.push_back(&row);
  const std::vector<size_t> wanted = {0, 2};
  auto columns = ColumnBatch::FromRowPtrs(schema, ptrs, &wanted);
  ASSERT_TRUE(columns.ok()) << columns.status().ToString();
  EXPECT_EQ(columns->num_rows(), 2u);
  EXPECT_EQ(columns->column(0).ints[1], 2);
  EXPECT_EQ(columns->column(2).doubles[1], 1.5);
  EXPECT_TRUE(columns->column(1).arena.empty());  // masked out
}

TEST(ColumnBatchTest, TruncatedColumnarBytesAreTypedErrors) {
  RowBatch batch = RandomBatch(99, 64);
  const auto buf = wire::SerializeColumnBatch(*ColumnBatch::FromRows(batch));
  for (size_t cut = 0; cut < buf.size(); cut += 7) {
    std::vector<uint8_t> trunc(buf.begin(), buf.begin() + cut);
    ByteReader reader(trunc);
    auto back = wire::ReadColumnBatch(&reader);
    if (!back.ok()) {
      EXPECT_TRUE(back.status().IsSerializationError())
          << "cut=" << cut << ": " << back.status().ToString();
    }
  }
}

}  // namespace
}  // namespace gisql
