/// Unit tests for component sources: local DDL/DML, fragment execution,
/// capability enforcement, and the RPC surface over the simulated net.

#include <gtest/gtest.h>

#include <fstream>

#include "expr/binder.h"
#include "net/sim_network.h"
#include "source/component_source.h"
#include "sql/parser.h"
#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {
namespace {

/// Creates a populated RELATIONAL source with an `orders` table.
ComponentSourcePtr MakeOrdersSource(SourceDialect dialect,
                                    int n_rows = 100) {
  auto src = std::make_shared<ComponentSource>("s1", dialect);
  EXPECT_TRUE(src->ExecuteLocalSql("CREATE TABLE orders (id bigint, "
                                   "amount double, region varchar)")
                  .ok());
  auto table = *src->engine().GetTable("orders");
  std::vector<Row> rows;
  for (int i = 0; i < n_rows; ++i) {
    rows.push_back({Value::Int(i), Value::Double(i * 2.0),
                    Value::String(i % 2 ? "east" : "west")});
  }
  table->InsertUnchecked(std::move(rows));
  return src;
}

ExprPtr BindOnOrders(const ComponentSourcePtr& src, const std::string& text) {
  auto table = *src->engine().GetTable("orders");
  auto ast = sql::ParseScalarExpr(text);
  EXPECT_TRUE(ast.ok());
  Binder binder(*table->schema());
  auto e = binder.BindScalar(**ast);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return *e;
}

TEST(ComponentSourceTest, LocalDdlAndDml) {
  ComponentSource src("s1", SourceDialect::kRelational);
  ASSERT_TRUE(
      src.ExecuteLocalSql("CREATE TABLE t (id bigint, name varchar)").ok());
  ASSERT_TRUE(
      src.ExecuteLocalSql("INSERT INTO t VALUES (1, 'a'), (2, NULL)").ok());
  auto table = *src.engine().GetTable("t");
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_TRUE(table->rows()[1][1].is_null());
  // Key column indexed automatically.
  EXPECT_NE(table->GetHashIndex(0), nullptr);
  // SELECT locally is rejected: autonomy boundary.
  EXPECT_TRUE(src.ExecuteLocalSql("SELECT * FROM t").IsInvalidArgument());
  // Bad inserts surface storage errors.
  EXPECT_FALSE(src.ExecuteLocalSql("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(src.ExecuteLocalSql("INSERT INTO missing VALUES (1)").ok());
}

TEST(ComponentSourceTest, PlainScanFragment) {
  auto src = MakeOrdersSource(SourceDialect::kLegacy);
  FragmentPlan frag;
  frag.table = "orders";
  int64_t scanned = 0;
  auto batch = src->ExecuteFragment(frag, &scanned);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->num_rows(), 100u);
  EXPECT_EQ(scanned, 100);
  EXPECT_EQ(batch->schema()->num_fields(), 3u);
}

TEST(ComponentSourceTest, FilterFragment) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  FragmentPlan frag;
  frag.table = "orders";
  frag.filter = BindOnOrders(src, "amount > 100.0");
  auto batch = src->ExecuteFragment(frag);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 49u);  // ids 51..99
}

TEST(ComponentSourceTest, ProjectionFragment) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  FragmentPlan frag;
  frag.table = "orders";
  frag.projections = {BindOnOrders(src, "id"),
                      BindOnOrders(src, "amount * 1.1")};
  frag.projection_names = {"id", "taxed"};
  auto batch = src->ExecuteFragment(frag);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->schema()->num_fields(), 2u);
  EXPECT_EQ(batch->schema()->field(1).name, "taxed");
  EXPECT_DOUBLE_EQ(batch->rows()[10][1].AsDouble(), 22.0);
}

TEST(ComponentSourceTest, LimitFragment) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  FragmentPlan frag;
  frag.table = "orders";
  frag.limit = 7;
  auto batch = src->ExecuteFragment(frag);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 7u);
}

TEST(ComponentSourceTest, TopNFragment) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  FragmentPlan frag;
  frag.table = "orders";
  frag.order_by = {BindOnOrders(src, "amount")};
  frag.order_ascending = {false};
  frag.limit = 3;
  auto batch = src->ExecuteFragment(frag);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->num_rows(), 3u);
  EXPECT_DOUBLE_EQ(batch->rows()[0][1].AsDouble(), 99 * 2.0);
  EXPECT_DOUBLE_EQ(batch->rows()[2][1].AsDouble(), 97 * 2.0);

  // Order without limit sorts the whole fragment.
  frag.limit = -1;
  batch = src->ExecuteFragment(frag);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 100u);
  EXPECT_DOUBLE_EQ(batch->rows()[99][1].AsDouble(), 0.0);
}

TEST(ComponentSourceTest, TopNOverAggregate) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  FragmentPlan frag;
  frag.table = "orders";
  frag.has_aggregate = true;
  frag.group_by = {BindOnOrders(src, "region")};
  BoundAggregate sum;
  sum.kind = AggKind::kSum;
  sum.arg = BindOnOrders(src, "amount");
  sum.result_type = TypeId::kDouble;
  sum.display = "SUM(amount)";
  frag.aggregates = {sum};
  // Order by the aggregate output column (index 1 of the output row).
  frag.order_by = {MakeColumn(1, TypeId::kDouble, "SUM(amount)")};
  frag.order_ascending = {false};
  frag.limit = 1;
  auto batch = src->ExecuteFragment(frag);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->num_rows(), 1u);
  // Odd ids (east) sum to 2*(1+3+...+99)=9900 > west's 9800.
  EXPECT_EQ(batch->rows()[0][0].AsString(), "east");
}

TEST(CapabilityTest, KeyValueRejectsOrderBy) {
  auto src = MakeOrdersSource(SourceDialect::kKeyValue);
  FragmentPlan frag;
  frag.table = "orders";
  frag.order_by = {BindOnOrders(src, "amount")};
  frag.order_ascending = {true};
  frag.limit = 3;
  EXPECT_TRUE(src->ExecuteFragment(frag).status().IsCapabilityError());
}

TEST(ComponentSourceTest, SemijoinViaIndex) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  FragmentPlan frag;
  frag.table = "orders";
  frag.semijoin_column = 0;  // key column — index exists
  frag.semijoin_values = {Value::Int(3), Value::Int(50), Value::Int(999)};
  int64_t scanned = 0;
  auto batch = src->ExecuteFragment(frag, &scanned);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 2u);  // 999 misses
  EXPECT_EQ(scanned, 2);             // index lookups, not a full scan
}

TEST(ComponentSourceTest, SemijoinWithoutIndexScans) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  FragmentPlan frag;
  frag.table = "orders";
  frag.semijoin_column = 2;  // region — no index
  frag.semijoin_values = {Value::String("east")};
  int64_t scanned = 0;
  auto batch = src->ExecuteFragment(frag, &scanned);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 50u);
  EXPECT_EQ(scanned, 100);  // full scan
}

TEST(ComponentSourceTest, AggregateFragment) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  FragmentPlan frag;
  frag.table = "orders";
  frag.has_aggregate = true;
  frag.group_by = {BindOnOrders(src, "region")};
  BoundAggregate count;
  count.kind = AggKind::kCountStar;
  count.display = "COUNT(*)";
  BoundAggregate sum;
  sum.kind = AggKind::kSum;
  sum.arg = BindOnOrders(src, "amount");
  sum.result_type = TypeId::kDouble;
  sum.display = "SUM(amount)";
  frag.aggregates = {count, sum};

  auto batch = src->ExecuteFragment(frag);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->num_rows(), 2u);
  double total = 0;
  int64_t n = 0;
  for (const auto& row : batch->rows()) {
    n += row[1].AsInt();
    total += row[2].AsDouble();
  }
  EXPECT_EQ(n, 100);
  EXPECT_DOUBLE_EQ(total, 2.0 * (99 * 100 / 2));
}

TEST(ComponentSourceTest, GlobalAggregateOnEmptyInput) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  FragmentPlan frag;
  frag.table = "orders";
  frag.filter = BindOnOrders(src, "amount > 1e9");
  frag.has_aggregate = true;
  BoundAggregate count;
  count.kind = AggKind::kCountStar;
  count.display = "COUNT(*)";
  BoundAggregate mx;
  mx.kind = AggKind::kMax;
  mx.arg = BindOnOrders(src, "amount");
  mx.result_type = TypeId::kDouble;
  mx.display = "MAX(amount)";
  frag.aggregates = {count, mx};
  auto batch = src->ExecuteFragment(frag);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->num_rows(), 1u);
  EXPECT_EQ(batch->rows()[0][0].AsInt(), 0);
  EXPECT_TRUE(batch->rows()[0][1].is_null());
}

TEST(CapabilityTest, LegacyRejectsEverything) {
  auto src = MakeOrdersSource(SourceDialect::kLegacy);
  FragmentPlan frag;
  frag.table = "orders";
  frag.filter = BindOnOrders(src, "amount > 1.0");
  EXPECT_TRUE(src->ExecuteFragment(frag).status().IsCapabilityError());

  frag = FragmentPlan{};
  frag.table = "orders";
  frag.limit = 5;
  EXPECT_TRUE(src->ExecuteFragment(frag).status().IsCapabilityError());

  frag = FragmentPlan{};
  frag.table = "orders";
  frag.projections = {BindOnOrders(src, "id")};
  EXPECT_TRUE(src->ExecuteFragment(frag).status().IsCapabilityError());
}

TEST(CapabilityTest, DocumentAllowsFilterNotAggregate) {
  auto src = MakeOrdersSource(SourceDialect::kDocument);
  FragmentPlan frag;
  frag.table = "orders";
  frag.filter = BindOnOrders(src, "amount > 100.0");
  EXPECT_TRUE(src->ExecuteFragment(frag).ok());

  frag.has_aggregate = true;
  BoundAggregate count;
  count.kind = AggKind::kCountStar;
  frag.aggregates = {count};
  EXPECT_TRUE(src->ExecuteFragment(frag).status().IsCapabilityError());
}

TEST(CapabilityTest, KeyValueSemijoinKeyOnly) {
  auto src = MakeOrdersSource(SourceDialect::kKeyValue);
  FragmentPlan frag;
  frag.table = "orders";
  frag.semijoin_column = 0;
  frag.semijoin_values = {Value::Int(1)};
  EXPECT_TRUE(src->ExecuteFragment(frag).ok());

  frag.semijoin_column = 2;  // non-key
  frag.semijoin_values = {Value::String("east")};
  EXPECT_TRUE(src->ExecuteFragment(frag).status().IsCapabilityError());

  // No filter capability either.
  frag = FragmentPlan{};
  frag.table = "orders";
  frag.filter = BindOnOrders(src, "amount > 1.0");
  EXPECT_TRUE(src->ExecuteFragment(frag).status().IsCapabilityError());
}

TEST(CapabilityTest, DistinctAggregateNeverShips) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  FragmentPlan frag;
  frag.table = "orders";
  frag.has_aggregate = true;
  BoundAggregate agg;
  agg.kind = AggKind::kCount;
  agg.arg = BindOnOrders(src, "region");
  agg.distinct = true;
  frag.aggregates = {agg};
  EXPECT_TRUE(src->ExecuteFragment(frag).status().IsInvalidArgument());
}

TEST(SnapshotTest, SaveAndLoadRoundTrip) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  ASSERT_TRUE(src->ExecuteLocalSql(
                    "CREATE TABLE tags (id bigint, t varchar)")
                  .ok());
  ASSERT_TRUE(
      src->ExecuteLocalSql("INSERT INTO tags VALUES (1, NULL), (2, 'x')")
          .ok());
  const std::string path = ::testing::TempDir() + "/snap_test.gisql";
  ASSERT_TRUE(src->SaveSnapshot(path).ok());

  ComponentSource restored("s2", SourceDialect::kRelational);
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  auto names = restored.engine().TableNames();
  ASSERT_EQ(names.size(), 2u);
  auto orders = *restored.engine().GetTable("orders");
  EXPECT_EQ(orders->num_rows(), 100);
  EXPECT_EQ(orders->schema()->num_fields(), 3u);
  auto tags = *restored.engine().GetTable("tags");
  ASSERT_EQ(tags->num_rows(), 2);
  EXPECT_TRUE(tags->rows()[0][1].is_null());
  EXPECT_EQ(tags->rows()[1][1].AsString(), "x");
  // Key index restored for KV-style lookups.
  EXPECT_NE(orders->GetHashIndex(0), nullptr);
}

TEST(SnapshotTest, LoadRequiresEmptyEngine) {
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  const std::string path = ::testing::TempDir() + "/snap_test2.gisql";
  ASSERT_TRUE(src->SaveSnapshot(path).ok());
  EXPECT_TRUE(src->LoadSnapshot(path).IsInvalidArgument());
}

TEST(SnapshotTest, CorruptSnapshotsRejected) {
  ComponentSource src("s1", SourceDialect::kRelational);
  EXPECT_TRUE(src.LoadSnapshot("/nonexistent.gisql").IsIOError());

  const std::string bad_path = ::testing::TempDir() + "/bad.gisql";
  {
    std::ofstream out(bad_path, std::ios::binary);
    out << "definitely not a snapshot";
  }
  EXPECT_TRUE(src.LoadSnapshot(bad_path).IsSerializationError());
}

TEST(SourceRpcTest, FullProtocolOverSimNet) {
  SimNetwork net;
  auto src = MakeOrdersSource(SourceDialect::kRelational);
  ASSERT_TRUE(net.RegisterHost("s1", src.get()).ok());

  // Ping.
  auto ping = net.Call("mediator", "s1",
                       static_cast<uint8_t>(wire::Opcode::kPing), {});
  ASSERT_TRUE(ping.ok());

  // ListTables.
  auto list = net.Call("mediator", "s1",
                       static_cast<uint8_t>(wire::Opcode::kListTables), {});
  ASSERT_TRUE(list.ok());
  ByteReader lr(list->payload);
  EXPECT_EQ(*lr.GetVarint(), 1u);
  EXPECT_EQ(*lr.GetString(), "orders");

  // GetSchema.
  ByteWriter req;
  req.PutString("orders");
  auto schema_resp =
      net.Call("mediator", "s1",
               static_cast<uint8_t>(wire::Opcode::kGetSchema), req.data());
  ASSERT_TRUE(schema_resp.ok());
  ByteReader sr(schema_resp->payload);
  auto schema = wire::ReadSchema(&sr);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_fields(), 3u);

  // GetStats.
  auto stats_resp =
      net.Call("mediator", "s1",
               static_cast<uint8_t>(wire::Opcode::kGetStats), req.data());
  ASSERT_TRUE(stats_resp.ok());
  ByteReader tr(stats_resp->payload);
  auto stats = wire::ReadTableStats(&tr);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count, 100);

  // ExecuteFragment.
  FragmentPlan frag;
  frag.table = "orders";
  frag.filter = BindOnOrders(src, "id < 10");
  auto frag_resp = net.Call(
      "mediator", "s1", static_cast<uint8_t>(wire::Opcode::kExecuteFragment),
      wire::SerializeFragment(frag));
  ASSERT_TRUE(frag_resp.ok()) << frag_resp.status().ToString();
  ByteReader br(frag_resp->payload);
  auto batch = wire::ReadBatch(&br);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 10u);

  // Unknown table error propagates across the wire.
  ByteWriter bad;
  bad.PutString("ghost");
  auto err = net.Call("mediator", "s1",
                      static_cast<uint8_t>(wire::Opcode::kGetSchema),
                      bad.data());
  EXPECT_TRUE(err.status().IsNotFound());
}

TEST(SourceRpcTest, ProcessingTimeScalesWithRows) {
  SimNetwork net;
  auto small = MakeOrdersSource(SourceDialect::kRelational, 10);
  auto big_src = std::make_shared<ComponentSource>(
      "s2", SourceDialect::kRelational);
  ASSERT_TRUE(big_src
                  ->ExecuteLocalSql("CREATE TABLE orders (id bigint, "
                                    "amount double, region varchar)")
                  .ok());
  {
    auto table = *big_src->engine().GetTable("orders");
    std::vector<Row> rows;
    for (int i = 0; i < 100000; ++i) {
      rows.push_back({Value::Int(i), Value::Double(i), Value::String("x")});
    }
    table->InsertUnchecked(std::move(rows));
  }
  ASSERT_TRUE(net.RegisterHost("s1", small.get()).ok());
  ASSERT_TRUE(net.RegisterHost("s2", big_src.get()).ok());

  FragmentPlan count_frag;
  count_frag.table = "orders";
  count_frag.has_aggregate = true;
  BoundAggregate count;
  count.kind = AggKind::kCountStar;
  count.display = "COUNT(*)";
  count_frag.aggregates = {count};
  const auto payload = wire::SerializeFragment(count_frag);

  auto r_small = net.Call(
      "m", "s1", static_cast<uint8_t>(wire::Opcode::kExecuteFragment),
      payload);
  auto r_big = net.Call(
      "m", "s2", static_cast<uint8_t>(wire::Opcode::kExecuteFragment),
      payload);
  ASSERT_TRUE(r_small.ok());
  ASSERT_TRUE(r_big.ok());
  // Both responses are one aggregate row, so the elapsed difference is
  // dominated by simulated scan CPU.
  EXPECT_GT(r_big->elapsed_ms, r_small->elapsed_ms);
}

}  // namespace
}  // namespace gisql
