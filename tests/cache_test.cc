/// Tests for the mediator result cache: hits avoid network traffic,
/// plan-shaped keys, LRU eviction, and invalidation on mediator-visible
/// source changes.

#include <gtest/gtest.h>

#include "core/global_system.h"

namespace gisql {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(gis_.CreateSource("s1", SourceDialect::kRelational).ok());
    ASSERT_TRUE(
        gis_.ExecuteAt("s1", "CREATE TABLE t (id bigint, v double)").ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(gis_.ExecuteAt("s1", "INSERT INTO t VALUES (" +
                                           std::to_string(i) + ", " +
                                           std::to_string(i * 0.5) + ")")
                      .ok());
    }
    ASSERT_TRUE(gis_.ImportSource("s1").ok());
  }
  GlobalSystem gis_;
};

TEST_F(CacheTest, DisabledByDefault) {
  EXPECT_EQ(gis_.result_cache(), nullptr);
  auto r1 = gis_.Query("SELECT COUNT(*) FROM t");
  auto r2 = gis_.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->metrics.messages, 0);  // every run hits the network
}

TEST_F(CacheTest, HitServesLocallyWithSameRows) {
  gis_.EnableResultCache();
  auto miss = gis_.Query("SELECT v FROM t WHERE id < 5 ORDER BY id");
  ASSERT_TRUE(miss.ok());
  EXPECT_GT(miss->metrics.messages, 0);

  auto hit = gis_.Query("SELECT v FROM t WHERE id < 5 ORDER BY id");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->metrics.messages, 0);
  EXPECT_EQ(hit->metrics.bytes_received, 0);
  EXPECT_NE(hit->metrics.plan_text.find("cache hit"), std::string::npos);
  ASSERT_EQ(hit->batch.num_rows(), miss->batch.num_rows());
  for (size_t i = 0; i < miss->batch.num_rows(); ++i) {
    EXPECT_EQ(hit->batch.rows()[i][0].Compare(miss->batch.rows()[i][0]), 0);
  }
  EXPECT_EQ(gis_.result_cache()->hits(), 1);
  EXPECT_EQ(gis_.result_cache()->misses(), 1);
}

TEST_F(CacheTest, HitSetsExplicitZeroMetricsAndFlag) {
  gis_.EnableResultCache();
  auto miss = gis_.Query("SELECT v FROM t WHERE id < 5");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->metrics.cache_hit);
  EXPECT_GT(miss->metrics.bytes_received, 0);

  auto hit = gis_.Query("SELECT v FROM t WHERE id < 5");
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->metrics.cache_hit);
  EXPECT_DOUBLE_EQ(hit->metrics.elapsed_ms, 0.0);
  EXPECT_EQ(hit->metrics.bytes_sent, 0);
  EXPECT_EQ(hit->metrics.bytes_received, 0);
  EXPECT_EQ(hit->metrics.messages, 0);
  EXPECT_EQ(hit->metrics.retries, 0);
}

TEST_F(CacheTest, HitsAndMissesExportedToSystemMetrics) {
  gis_.EnableResultCache();
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM t").ok());    // miss
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM t").ok());    // hit
  ASSERT_TRUE(gis_.Query("SELECT SUM(v) FROM t").ok());      // miss
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM t").ok());    // hit
  EXPECT_EQ(gis_.metrics().Get("cache.hits"), 2);
  EXPECT_EQ(gis_.metrics().Get("cache.misses"), 2);
  // The registry mirrors the cache's own accounting.
  EXPECT_EQ(gis_.metrics().Get("cache.hits"), gis_.result_cache()->hits());
  EXPECT_EQ(gis_.metrics().Get("cache.misses"),
            gis_.result_cache()->misses());
  // Every query — hit or miss — lands in the latency histogram.
  EXPECT_EQ(gis_.metrics().SnapshotHistogram("query.ms").count, 4);
}

TEST_F(CacheTest, DifferentPlansDifferentEntries) {
  gis_.EnableResultCache();
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM t").ok());
  // Different predicate → different plan → miss.
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM t WHERE id < 10").ok());
  EXPECT_EQ(gis_.result_cache()->misses(), 2);
  EXPECT_EQ(gis_.result_cache()->size(), 2u);
  // Same computation under different planner options re-plans: the
  // ship-everything plan differs, so it is a distinct entry.
  gis_.set_options(PlannerOptions::ShipEverything());
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM t WHERE id < 10").ok());
  EXPECT_EQ(gis_.result_cache()->misses(), 3);
  gis_.set_options(PlannerOptions::Full());
}

TEST_F(CacheTest, SemanticallyIdenticalTextsShareAnEntry) {
  gis_.EnableResultCache();
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM t").ok());
  // Same plan from differently spelled SQL → hit.
  ASSERT_TRUE(gis_.Query("select count(*) from t").ok());
  EXPECT_EQ(gis_.result_cache()->hits(), 1);
}

TEST_F(CacheTest, AdminChannelInvalidates) {
  gis_.EnableResultCache();
  auto before = gis_.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->batch.rows()[0][0].AsInt(), 50);

  ASSERT_TRUE(gis_.ExecuteAt("s1", "INSERT INTO t VALUES (99, 9.9)").ok());
  auto after = gis_.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->batch.rows()[0][0].AsInt(), 51);  // not a stale hit
  EXPECT_GT(after->metrics.messages, 0);
}

TEST_F(CacheTest, RefreshStatsInvalidates) {
  gis_.EnableResultCache();
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM t").ok());
  EXPECT_EQ(gis_.result_cache()->size(), 1u);
  ASSERT_TRUE(gis_.RefreshStats("t").ok());
  EXPECT_EQ(gis_.result_cache()->size(), 0u);
}

TEST_F(CacheTest, StalenessUnderAutonomy) {
  // A source mutated *directly* (outside the mediator's sight) serves
  // stale cached results — the documented autonomy caveat.
  gis_.EnableResultCache();
  auto before = gis_.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(before.ok());
  auto src = *gis_.GetSource("s1");
  ASSERT_TRUE(src->ExecuteLocalSql("INSERT INTO t VALUES (777, 7.0)").ok());
  auto stale = gis_.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->batch.rows()[0][0].AsInt(), 50);  // stale!
  // Explicit invalidation recovers.
  gis_.result_cache()->Clear();
  auto fresh = gis_.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->batch.rows()[0][0].AsInt(), 51);
}

TEST(QueryCacheUnitTest, LruEviction) {
  QueryCache cache(2);
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", TypeId::kInt64}});
  auto make_batch = [&](int v) {
    RowBatch b(schema);
    b.Append({Value::Int(v)});
    return b;
  };
  cache.Insert("a", make_batch(1), 1.0, {"s1"});
  cache.Insert("b", make_batch(2), 1.0, {"s1"});
  ASSERT_TRUE(cache.Lookup("a").has_value());  // refresh a
  cache.Insert("c", make_batch(3), 1.0, {"s2"});  // evicts b (LRU)
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(QueryCacheUnitTest, SourceInvalidationIsSelective) {
  QueryCache cache(10);
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", TypeId::kInt64}});
  RowBatch b(schema);
  cache.Insert("multi", b, 1.0, {"s1", "s2"});
  cache.Insert("only2", b, 1.0, {"s2"});
  cache.Insert("only3", b, 1.0, {"s3"});
  cache.InvalidateSource("s2");
  EXPECT_FALSE(cache.Lookup("multi").has_value());
  EXPECT_FALSE(cache.Lookup("only2").has_value());
  EXPECT_TRUE(cache.Lookup("only3").has_value());
}

TEST(QueryCacheUnitTest, ReinsertReplaces) {
  QueryCache cache(4);
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", TypeId::kInt64}});
  RowBatch b1(schema);
  b1.Append({Value::Int(1)});
  RowBatch b2(schema);
  b2.Append({Value::Int(2)});
  cache.Insert("k", b1, 1.0, {"s"});
  cache.Insert("k", b2, 2.0, {"s"});
  auto got = cache.Lookup("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->batch.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace gisql
