/// Tests for CSV bulk loading into component sources.

#include <gtest/gtest.h>

#include <sstream>

#include "core/global_system.h"
#include "workload/csv.h"

namespace gisql {
namespace {

TEST(CsvSplitTest, PlainCells) {
  auto cells = *SplitCsvLine("a,b,,d", ',');
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "");
}

TEST(CsvSplitTest, QuotedCellsWithEscapes) {
  auto cells = *SplitCsvLine("\"a,b\",\"say \"\"hi\"\"\",plain", ',');
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a,b");
  EXPECT_EQ(cells[1], "say \"hi\"");
  EXPECT_EQ(cells[2], "plain");
}

TEST(CsvSplitTest, AlternateDelimiter) {
  auto cells = *SplitCsvLine("a|b|c", '|');
  EXPECT_EQ(cells.size(), 3u);
}

TEST(CsvSplitTest, MalformedQuoting) {
  EXPECT_TRUE(SplitCsvLine("\"unterminated", ',').status().IsParseError());
  EXPECT_TRUE(SplitCsvLine("ab\"cd", ',').status().IsParseError());
}

class CsvLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    src_ = *gis_.CreateSource("s1", SourceDialect::kRelational);
    ASSERT_TRUE(src_->ExecuteLocalSql(
                      "CREATE TABLE people (id bigint, name varchar, "
                      "height double, born date, active boolean)")
                    .ok());
  }
  GlobalSystem gis_;
  ComponentSource* src_ = nullptr;
};

TEST_F(CsvLoadTest, TypedLoadWithHeader) {
  std::istringstream csv(
      "id,name,height,born,active\n"
      "1,Ada,1.65,1815-12-10,true\n"
      "2,\"Hopper, Grace\",1.70,1906-12-09,false\n"
      "3,Edsger,,1930-05-11,1\n");
  auto n = LoadCsv(src_, "people", csv);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3);

  ASSERT_TRUE(gis_.ImportSource("s1").ok());
  auto r = gis_.Query(
      "SELECT name, YEAR(born) FROM people WHERE active ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->batch.num_rows(), 2u);
  EXPECT_EQ(r->batch.rows()[0][0].AsString(), "Ada");
  EXPECT_EQ(r->batch.rows()[0][1].AsInt(), 1815);
  EXPECT_EQ(r->batch.rows()[1][0].AsString(), "Edsger");

  // The empty height cell loaded as NULL.
  auto nulls = gis_.Query("SELECT COUNT(*) FROM people WHERE height IS NULL");
  ASSERT_TRUE(nulls.ok());
  EXPECT_EQ(nulls->batch.rows()[0][0].AsInt(), 1);
}

TEST_F(CsvLoadTest, ErrorsCarryLineNumbers) {
  std::istringstream bad_arity("id,name,height,born,active\n1,Ada\n");
  auto r1 = LoadCsv(src_, "people", bad_arity);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("line 2"), std::string::npos);

  std::istringstream bad_type(
      "id,name,height,born,active\nxx,Ada,1.0,1815-12-10,true\n");
  auto r2 = LoadCsv(src_, "people", bad_type);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("column 'id'"), std::string::npos);

  std::istringstream bad_date(
      "id,name,height,born,active\n1,Ada,1.0,1815-13-99,true\n");
  EXPECT_FALSE(LoadCsv(src_, "people", bad_date).ok());
}

TEST_F(CsvLoadTest, NoHeaderAndCustomNullToken) {
  CsvOptions opts;
  opts.has_header = false;
  opts.null_token = "NA";
  std::istringstream csv("7,Barbara,NA,1928-03-07,true\n");
  auto n = LoadCsv(src_, "people", csv, opts);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1);
  auto table = *src_->engine().GetTable("people");
  EXPECT_TRUE(table->rows()[0][2].is_null());
  EXPECT_EQ(table->rows()[0][1].AsString(), "Barbara");
}

TEST_F(CsvLoadTest, MissingTableAndFile) {
  std::istringstream csv("a\n1\n");
  EXPECT_TRUE(LoadCsv(src_, "ghost", csv).status().IsNotFound());
  EXPECT_TRUE(
      LoadCsvFile(src_, "people", "/nonexistent.csv").status().IsIOError());
}

}  // namespace
}  // namespace gisql
