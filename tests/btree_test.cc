/// Unit + property tests for the B+tree ordered-index substrate:
/// structure invariants, duplicates, range semantics, and randomized
/// equivalence against std::multimap.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "storage/btree.h"

namespace gisql {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.Lookup(Value::Int(1)).empty());
  EXPECT_TRUE(tree.Range(Value::Null(), true, Value::Null(), true).empty());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BPlusTreeTest, NullKeyRejected) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Insert(Value::Null(), 0).IsInvalidArgument());
}

TEST(BPlusTreeTest, SingleLeafBasics) {
  BPlusTree tree;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int(i * 10), i).ok());
  }
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.Lookup(Value::Int(10)), (std::vector<size_t>{1}));
  EXPECT_TRUE(tree.Lookup(Value::Int(11)).empty());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BPlusTreeTest, SplitsGrowHeightLogarithmically) {
  BPlusTree tree(8);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int(i), i).ok());
  }
  EXPECT_EQ(tree.size(), 10000u);
  EXPECT_GT(tree.height(), 2);
  // fanout 8 → height bounded by ~log_4(10000) + slack.
  EXPECT_LE(tree.height(), 9);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
}

TEST(BPlusTreeTest, ReverseAndAlternatingInsertions) {
  for (int pattern = 0; pattern < 2; ++pattern) {
    BPlusTree tree(6);
    for (int i = 0; i < 2000; ++i) {
      const int64_t key = pattern == 0 ? 2000 - i : (i % 2 ? i : -i);
      ASSERT_TRUE(tree.Insert(Value::Int(key), i).ok());
    }
    ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
    auto all = tree.Range(Value::Null(), true, Value::Null(), true);
    EXPECT_EQ(all.size(), 2000u);
  }
}

TEST(BPlusTreeTest, DuplicateRunsLongerThanNode) {
  BPlusTree tree(4);
  // 100 duplicates of one key must split across many leaves and still
  // be fully retrievable in insertion order.
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int(7), i).ok());
  }
  ASSERT_TRUE(tree.Insert(Value::Int(3), 500).ok());
  ASSERT_TRUE(tree.Insert(Value::Int(9), 501).ok());
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  auto hits = tree.Lookup(Value::Int(7));
  ASSERT_EQ(hits.size(), 100u);
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], i);
}

TEST(BPlusTreeTest, RangeBoundsSemantics) {
  BPlusTree tree(4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int(i), i).ok());
  }
  EXPECT_EQ(tree.Range(Value::Int(10), true, Value::Int(20), true).size(),
            11u);
  EXPECT_EQ(tree.Range(Value::Int(10), false, Value::Int(20), false).size(),
            9u);
  EXPECT_EQ(tree.Range(Value::Null(), true, Value::Int(4), true).size(),
            5u);
  EXPECT_EQ(tree.Range(Value::Int(95), true, Value::Null(), true).size(),
            5u);
  EXPECT_TRUE(
      tree.Range(Value::Int(200), true, Value::Int(300), true).empty());
  EXPECT_TRUE(
      tree.Range(Value::Int(20), true, Value::Int(10), true).empty());
  // Results come back in key order.
  auto range = tree.Range(Value::Int(30), true, Value::Int(35), true);
  ASSERT_EQ(range.size(), 6u);
  for (size_t i = 1; i < range.size(); ++i) {
    EXPECT_LT(range[i - 1], range[i]);
  }
}

TEST(BPlusTreeTest, StringAndDoubleKeys) {
  BPlusTree tree(4);
  const char* words[] = {"delta", "alpha", "echo", "bravo", "charlie"};
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(tree.Insert(Value::String(words[i]), i).ok());
  }
  auto r = tree.Range(Value::String("b"), true, Value::String("d"), false);
  EXPECT_EQ(r.size(), 2u);  // bravo, charlie
  ASSERT_TRUE(tree.Validate().ok());

  BPlusTree dtree(4);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(dtree.Insert(Value::Double(i * 0.5), i).ok());
  }
  EXPECT_EQ(
      dtree.Range(Value::Double(1.0), true, Value::Double(2.0), true).size(),
      3u);
}

TEST(BPlusTreeTest, ClearResets) {
  BPlusTree tree(4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int(i), i).ok());
  }
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.Validate().ok());
  ASSERT_TRUE(tree.Insert(Value::Int(1), 1).ok());
  EXPECT_EQ(tree.size(), 1u);
}

/// Property: tree Range/Lookup agree with std::multimap for random
/// workloads across fanouts and key distributions.
class BtreeProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(BtreeProperty, MatchesReferenceMultimap) {
  const int fanout = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));
  BPlusTree tree(fanout);
  struct Less {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };
  std::multimap<Value, size_t, Less> reference;

  const int n = 3000;
  const int64_t domain = static_cast<int64_t>(rng.Uniform(10, 500));
  for (int i = 0; i < n; ++i) {
    Value key = Value::Int(rng.Uniform(0, domain));
    ASSERT_TRUE(tree.Insert(key, i).ok());
    reference.emplace(std::move(key), i);
  }
  ASSERT_EQ(tree.size(), reference.size());
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();

  for (int trial = 0; trial < 100; ++trial) {
    int64_t a = rng.Uniform(-5, domain + 5);
    int64_t b = rng.Uniform(-5, domain + 5);
    if (a > b) std::swap(a, b);
    const bool lo_inc = rng.Bernoulli(0.5);
    const bool hi_inc = rng.Bernoulli(0.5);
    auto got = tree.Range(Value::Int(a), lo_inc, Value::Int(b), hi_inc);

    std::vector<size_t> expected;
    auto begin = lo_inc ? reference.lower_bound(Value::Int(a))
                        : reference.upper_bound(Value::Int(a));
    auto end = hi_inc ? reference.upper_bound(Value::Int(b))
                      : reference.lower_bound(Value::Int(b));
    for (auto it = begin; it != end; ++it) expected.push_back(it->second);

    // Compare as multisets per key group: both structures return groups
    // in key order; within a key the tree preserves insertion order
    // while multimap preserves insertion order too (C++11 stability).
    ASSERT_EQ(got.size(), expected.size())
        << "[" << a << (lo_inc ? "[" : "(") << ", " << b
        << (hi_inc ? "]" : ")");
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(got, expected);
  }

  // Point lookups across the whole domain.
  for (int64_t k = -2; k <= domain + 2; ++k) {
    EXPECT_EQ(tree.Lookup(Value::Int(k)).size(),
              reference.count(Value::Int(k)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    FanoutsAndSeeds, BtreeProperty,
    ::testing::Combine(::testing::Values(4, 8, 64),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace gisql
