/// Tests for the second wave of SQL features: UNION ALL between
/// SELECTs, DATE literals, civil-date arithmetic, and the date
/// extraction functions.

#include <gtest/gtest.h>

#include "core/global_system.h"
#include "sql/parser.h"
#include "types/datetime.h"

namespace gisql {
namespace {

TEST(DatetimeTest, EpochAnchors) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(1989, 2, 6), 6976);  // ICDE 1989 week
}

TEST(DatetimeTest, RoundTripSweep) {
  // Every day across several leap boundaries round-trips.
  for (int64_t d = DaysFromCivil(1896, 1, 1); d <= DaysFromCivil(2104, 12, 31);
       d += 13) {
    int y;
    unsigned m, dd;
    CivilFromDays(d, &y, &m, &dd);
    EXPECT_EQ(DaysFromCivil(y, m, dd), d);
    EXPECT_TRUE(IsValidCivilDate(y, m, dd));
  }
}

TEST(DatetimeTest, LeapYearRules) {
  EXPECT_TRUE(IsValidCivilDate(2000, 2, 29));   // div 400
  EXPECT_FALSE(IsValidCivilDate(1900, 2, 29));  // div 100, not 400
  EXPECT_TRUE(IsValidCivilDate(2024, 2, 29));
  EXPECT_FALSE(IsValidCivilDate(2023, 2, 29));
  EXPECT_FALSE(IsValidCivilDate(2023, 4, 31));
  EXPECT_FALSE(IsValidCivilDate(2023, 13, 1));
  EXPECT_FALSE(IsValidCivilDate(2023, 0, 1));
}

TEST(DatetimeTest, ParseAndFormat) {
  EXPECT_EQ(*ParseDateString("1989-02-06"), 6976);
  EXPECT_EQ(FormatDate(6976), "1989-02-06");
  EXPECT_EQ(FormatDate(0), "1970-01-01");
  EXPECT_TRUE(ParseDateString("1989-13-01").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString("not-a-date").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString("1989").status().IsInvalidArgument());
}

TEST(DatetimeTest, ParseRejectsTrailingGarbageAndShortFields) {
  // Regressions for the sscanf-era parser, which stopped at the first
  // non-matching character and silently accepted these:
  EXPECT_TRUE(ParseDateString("2020-01-1a").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString("20-1-1234").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString("2020-1-1x").status().IsInvalidArgument());
  // Full-width fields only — no single-digit months/days, no padding.
  EXPECT_TRUE(ParseDateString("2020-1-01").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString("2020-01-1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString(" 2020-01-01").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString("2020-01-01 ").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString("2020/01/01").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString("2020-01-0a").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString("-020-01-01").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDateString("").status().IsInvalidArgument());
  // The happy path is unchanged.
  EXPECT_EQ(*ParseDateString("2020-01-01"), DaysFromCivil(2020, 1, 1));
}

TEST(DatetimeTest, ParseFormatsRoundTripFuzz) {
  // Every formatted date must parse back to the same day number; a
  // deterministic pseudo-random walk covers ~4000 days across a wide
  // range of years (including leap boundaries and single-digit
  // months/days, which FormatDate zero-pads).
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const int64_t lo = DaysFromCivil(1800, 1, 1);
  const int64_t hi = DaysFromCivil(2200, 12, 31);
  for (int i = 0; i < 4000; ++i) {
    const int64_t d =
        lo + static_cast<int64_t>(next() % static_cast<uint64_t>(hi - lo));
    const std::string s = FormatDate(d);
    ASSERT_EQ(s.size(), 10u) << s;
    auto parsed = ParseDateString(s);
    ASSERT_TRUE(parsed.ok()) << s;
    EXPECT_EQ(*parsed, d) << s;
    // Mutating the string with trailing garbage must break the parse.
    EXPECT_TRUE(ParseDateString(s + "x").status().IsInvalidArgument()) << s;
  }
}

TEST(DatetimeTest, ValueIntegration) {
  Value d = Value::Date(6976);
  EXPECT_EQ(d.ToString(), "DATE '1989-02-06'");
  EXPECT_EQ(d.CastTo(TypeId::kString)->AsString(), "1989-02-06");
  EXPECT_EQ(Value::String("1989-02-06").CastTo(TypeId::kDate)->AsInt(),
            6976);
  EXPECT_TRUE(
      Value::String("junk").CastTo(TypeId::kDate).status().IsInvalidArgument());
}

class Sql2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(gis_.CreateSource("s1", SourceDialect::kRelational).ok());
    ASSERT_TRUE(gis_.ExecuteAt("s1",
                               "CREATE TABLE events (id bigint, day date, "
                               "kind varchar)")
                    .ok());
    ASSERT_TRUE(gis_.ExecuteAt(
                        "s1",
                        "INSERT INTO events VALUES "
                        "(1, DATE '1989-02-06', 'conf'), "
                        "(2, DATE '1989-07-14', 'meeting'), "
                        "(3, DATE '1990-02-06', 'conf'), "
                        "(4, DATE '1990-12-31', 'party')")
                    .ok());
    ASSERT_TRUE(gis_.CreateSource("s2", SourceDialect::kDocument).ok());
    ASSERT_TRUE(gis_.ExecuteAt("s2",
                               "CREATE TABLE archive (id bigint, day date, "
                               "kind varchar)")
                    .ok());
    ASSERT_TRUE(gis_.ExecuteAt("s2",
                               "INSERT INTO archive VALUES "
                               "(100, DATE '1985-05-05', 'conf')")
                    .ok());
    ASSERT_TRUE(gis_.ImportSource("s1").ok());
    ASSERT_TRUE(gis_.ImportSource("s2").ok());
  }
  GlobalSystem gis_;
};

TEST_F(Sql2Test, DateLiteralsInPredicates) {
  auto r = gis_.Query(
      "SELECT id FROM events WHERE day >= DATE '1989-01-01' AND "
      "day < DATE '1990-01-01' ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->batch.num_rows(), 2u);
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 1);
}

TEST_F(Sql2Test, DateExtractionFunctions) {
  auto r = gis_.Query(
      "SELECT YEAR(day), MONTH(day), DAY(day) FROM events WHERE id = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 1989);
  EXPECT_EQ(r->batch.rows()[0][1].AsInt(), 7);
  EXPECT_EQ(r->batch.rows()[0][2].AsInt(), 14);
}

TEST_F(Sql2Test, GroupByYear) {
  auto r = gis_.Query(
      "SELECT YEAR(day) AS y, COUNT(*) AS n FROM events GROUP BY YEAR(day) "
      "ORDER BY y");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->batch.num_rows(), 2u);
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 1989);
  EXPECT_EQ(r->batch.rows()[0][1].AsInt(), 2);
  EXPECT_EQ(r->batch.rows()[1][1].AsInt(), 2);
}

TEST_F(Sql2Test, DateRendersInResults) {
  auto r = gis_.Query("SELECT day FROM events WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->batch.rows()[0][0].ToString(), "DATE '1989-02-06'");
}

TEST_F(Sql2Test, UnionAllAcrossSources) {
  auto r = gis_.Query(
      "SELECT id, kind FROM events WHERE kind = 'conf' "
      "UNION ALL SELECT id, kind FROM archive ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->batch.num_rows(), 3u);
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(r->batch.rows()[2][0].AsInt(), 100);
}

TEST_F(Sql2Test, UnionAllWithAggregatedTerms) {
  auto r = gis_.Query(
      "SELECT COUNT(*) FROM events UNION ALL SELECT COUNT(*) FROM archive");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->batch.num_rows(), 2u);
  int64_t total = r->batch.rows()[0][0].AsInt() +
                  r->batch.rows()[1][0].AsInt();
  EXPECT_EQ(total, 5);
}

TEST_F(Sql2Test, UnionAllLimitAppliesToWhole) {
  auto r = gis_.Query(
      "SELECT id FROM events UNION ALL SELECT id FROM archive "
      "ORDER BY id DESC LIMIT 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->batch.num_rows(), 2u);
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 100);
  EXPECT_EQ(r->batch.rows()[1][0].AsInt(), 4);
}

TEST_F(Sql2Test, UnionAllIncompatibleRejected) {
  EXPECT_TRUE(gis_.Query("SELECT id FROM events UNION ALL "
                         "SELECT kind FROM archive")
                  .status()
                  .IsBindError());
  EXPECT_TRUE(gis_.Query("SELECT id, kind FROM events UNION ALL "
                         "SELECT id FROM archive")
                  .status()
                  .IsBindError());
}

TEST_F(Sql2Test, PlainUnionUnsupported) {
  // Only UNION ALL is implemented; bare UNION errors clearly.
  EXPECT_TRUE(gis_.Query("SELECT id FROM events UNION "
                         "SELECT id FROM archive")
                  .status()
                  .IsParseError());
}

TEST_F(Sql2Test, UnionAllInDerivedTable) {
  auto r = gis_.Query(
      "SELECT COUNT(*) FROM (SELECT id FROM events UNION ALL "
      "SELECT id FROM archive) AS u");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 5);
}

TEST_F(Sql2Test, InSubqueryAsSemijoin) {
  // Events whose kind also appears in the archive.
  auto r = gis_.Query(
      "SELECT id FROM events WHERE kind IN (SELECT kind FROM archive) "
      "ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->batch.num_rows(), 2u);  // the two 'conf' events
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(r->batch.rows()[1][0].AsInt(), 3);
}

TEST_F(Sql2Test, InSubqueryDeduplicatesMatches) {
  // Multiple matching rows in the subquery must not multiply output.
  ASSERT_TRUE(gis_.ExecuteAt("s2",
                             "INSERT INTO archive VALUES "
                             "(101, DATE '1986-06-06', 'conf')")
                  .ok());
  auto r = gis_.Query(
      "SELECT COUNT(*) FROM events WHERE kind IN "
      "(SELECT kind FROM archive)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 2);
}

TEST_F(Sql2Test, InSubqueryWithInnerPredicate) {
  auto r = gis_.Query(
      "SELECT id FROM events WHERE id IN "
      "(SELECT id FROM events WHERE kind = 'conf') AND "
      "YEAR(day) = 1989");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->batch.num_rows(), 1u);
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 1);
}

TEST_F(Sql2Test, NotInSubqueryAntiJoin) {
  auto r = gis_.Query(
      "SELECT id FROM events WHERE kind NOT IN "
      "(SELECT kind FROM archive) ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // archive holds only 'conf': the meeting and the party survive.
  ASSERT_EQ(r->batch.num_rows(), 2u);
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(r->batch.rows()[1][0].AsInt(), 4);
}

TEST_F(Sql2Test, NotInSubqueryNullAwareness) {
  // A NULL in the subquery result makes NOT IN never-true: SQL says the
  // whole result is empty.
  ASSERT_TRUE(gis_.ExecuteAt("s2",
                             "INSERT INTO archive VALUES "
                             "(999, DATE '1980-01-01', NULL)")
                  .ok());
  auto r = gis_.Query(
      "SELECT id FROM events WHERE kind NOT IN (SELECT kind FROM archive)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->batch.num_rows(), 0u);
}

TEST_F(Sql2Test, NotInSubqueryNullProbeDrops) {
  ASSERT_TRUE(gis_.ExecuteAt("s1",
                             "INSERT INTO events VALUES "
                             "(6, DATE '1992-01-01', NULL)")
                  .ok());
  auto r = gis_.Query(
      "SELECT COUNT(*) FROM events WHERE kind NOT IN "
      "(SELECT kind FROM archive)");
  ASSERT_TRUE(r.ok());
  // Row 6's NULL kind is UNKNOWN, not a survivor.
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 2);
}

TEST_F(Sql2Test, InSubqueryRestrictions) {
  // Multi-column subquery rejected.
  EXPECT_TRUE(gis_.Query("SELECT id FROM events WHERE kind IN "
                         "(SELECT kind, id FROM archive)")
                  .status()
                  .IsBindError());
  // Type-incompatible probe rejected.
  EXPECT_TRUE(gis_.Query("SELECT id FROM events WHERE id IN "
                         "(SELECT kind FROM archive)")
                  .status()
                  .IsBindError());
  // Outside a WHERE conjunct it is a clear bind error.
  EXPECT_TRUE(gis_.Query("SELECT kind IN (SELECT kind FROM archive) "
                         "FROM events")
                  .status()
                  .IsBindError());
}

TEST_F(Sql2Test, InSubqueryNullProbeDrops) {
  ASSERT_TRUE(gis_.ExecuteAt("s1",
                             "INSERT INTO events VALUES "
                             "(5, DATE '1991-01-01', NULL)")
                  .ok());
  auto r = gis_.Query(
      "SELECT COUNT(*) FROM events WHERE kind IN "
      "(SELECT kind FROM archive)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 2);  // NULL kind never matches
}

TEST(UnionAllParserTest, AstShape) {
  auto stmt = *sql::ParseSelect(
      "SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL "
      "SELECT c FROM v ORDER BY a LIMIT 3");
  EXPECT_EQ(stmt->union_all_terms.size(), 2u);
  EXPECT_EQ(stmt->order_by.size(), 1u);
  EXPECT_EQ(stmt->limit, 3);
  // Terms carry no order/limit of their own.
  EXPECT_TRUE(stmt->union_all_terms[0]->order_by.empty());
  EXPECT_EQ(stmt->union_all_terms[0]->limit, -1);
}

}  // namespace
}  // namespace gisql
