/// Tests for the logging module: level filtering, formatting, and the
/// GISQL_LOG macro's lazy evaluation.

#include <gtest/gtest.h>

#include "common/logging.h"

namespace gisql {
namespace {

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "OFF");
}

TEST(LoggingTest, ThresholdFilters) {
  Logger& logger = Logger::Instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kError);

  // Capture stderr around an emission below and above the threshold.
  testing::internal::CaptureStderr();
  GISQL_LOG(kInfo) << "should be suppressed";
  GISQL_LOG(kError) << "should appear";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("suppressed"), std::string::npos);
  EXPECT_NE(out.find("should appear"), std::string::npos);
  EXPECT_NE(out.find("ERROR"), std::string::npos);
  // The site (file:line) is part of the message.
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);

  logger.set_level(saved);
}

TEST(LoggingTest, MacroDoesNotEvaluateSuppressedArguments) {
  Logger& logger = Logger::Instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  GISQL_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  logger.set_level(saved);
}

}  // namespace
}  // namespace gisql
