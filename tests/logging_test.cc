/// Tests for the logging module: level filtering, formatting, the
/// GISQL_LOG macro's lazy evaluation, and GISQL_LOG_LEVEL env parsing.

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/logging.h"

namespace gisql {
namespace {

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "OFF");
}

TEST(LoggingTest, ThresholdFilters) {
  Logger& logger = Logger::Instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kError);

  // Capture stderr around an emission below and above the threshold.
  testing::internal::CaptureStderr();
  GISQL_LOG(kInfo) << "should be suppressed";
  GISQL_LOG(kError) << "should appear";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("suppressed"), std::string::npos);
  EXPECT_NE(out.find("should appear"), std::string::npos);
  EXPECT_NE(out.find("ERROR"), std::string::npos);
  // The site (file:line) is part of the message.
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);

  logger.set_level(saved);
}

TEST(LoggingTest, MacroDoesNotEvaluateSuppressedArguments) {
  Logger& logger = Logger::Instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "x";
  };
  GISQL_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  logger.set_level(saved);
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAnyCase) {
  EXPECT_EQ(ParseLogLevel("TRACE", LogLevel::kWarn), LogLevel::kTrace);
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("WARNING", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off", LogLevel::kWarn), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none", LogLevel::kWarn), LogLevel::kOff);
}

TEST(LoggingTest, ParseLogLevelFallsBackOnGarbage) {
  EXPECT_EQ(ParseLogLevel("verbose?", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kError), LogLevel::kError);
}

TEST(LoggingTest, LogLevelFromEnvReadsVariable) {
  ASSERT_EQ(setenv("GISQL_LOG_LEVEL", "debug", /*overwrite=*/1), 0);
  EXPECT_EQ(LogLevelFromEnv(LogLevel::kWarn), LogLevel::kDebug);
  ASSERT_EQ(setenv("GISQL_LOG_LEVEL", "junk", /*overwrite=*/1), 0);
  EXPECT_EQ(LogLevelFromEnv(LogLevel::kWarn), LogLevel::kWarn);
  ASSERT_EQ(unsetenv("GISQL_LOG_LEVEL"), 0);
  EXPECT_EQ(LogLevelFromEnv(LogLevel::kInfo), LogLevel::kInfo);
}

}  // namespace
}  // namespace gisql
