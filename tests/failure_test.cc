/// Failure-injection and resilience tests: unreachable sources,
/// replicated-view failover, Byzantine sources returning malformed
/// bytes, the admin channel, and degenerate data shapes (empty tables,
/// all-NULL columns) through every operator.

#include <gtest/gtest.h>

#include "core/global_system.h"
#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {
namespace {

/// A Byzantine host: responds to every request with garbage bytes.
class GarbageHandler : public RpcHandler {
 public:
  Result<std::vector<uint8_t>> Handle(uint8_t, const std::vector<uint8_t>&,
                                      double*) override {
    return std::vector<uint8_t>{0xde, 0xad, 0xbe, 0xef, 0xff, 0x07};
  }
};

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      const std::string name = "replica" + std::to_string(i);
      auto src = *gis_.CreateSource(name, SourceDialect::kRelational);
      ASSERT_TRUE(
          src->ExecuteLocalSql("CREATE TABLE inv (id bigint, qty bigint)")
              .ok());
      // All replicas hold identical data.
      ASSERT_TRUE(src->ExecuteLocalSql(
                        "INSERT INTO inv VALUES (1, 10), (2, 20), (3, 30)")
                      .ok());
      ASSERT_TRUE(
          gis_.ImportTable(name, "inv", "inv_" + name).ok());
    }
    ASSERT_TRUE(gis_.CreateReplicatedView(
                       "inventory",
                       {"inv_replica0", "inv_replica1", "inv_replica2"})
                    .ok());
  }

  GlobalSystem gis_;
};

TEST_F(ReplicationTest, ReadsExactlyOneReplica) {
  auto result = gis_.Query("SELECT SUM(qty) FROM inventory");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Not 3x60: the replicated view reads one copy.
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 60);
  EXPECT_EQ(result->metrics.messages, 1);
}

TEST_F(ReplicationTest, LatencyHintSteersReplicaChoice) {
  ASSERT_TRUE(gis_.catalog().SetLatencyHint("replica0", 100.0).ok());
  ASSERT_TRUE(gis_.catalog().SetLatencyHint("replica1", 1.0).ok());
  ASSERT_TRUE(gis_.catalog().SetLatencyHint("replica2", 50.0).ok());
  auto text = *gis_.Explain("SELECT * FROM inventory");
  EXPECT_NE(text.find("@replica1"), std::string::npos);
}

TEST_F(ReplicationTest, FailoverOnPrimaryDown) {
  // Find which replica the plan reads and take it down.
  auto text = *gis_.Explain("SELECT * FROM inventory WHERE id = 2");
  std::string primary;
  for (const char* r : {"replica0", "replica1", "replica2"}) {
    if (text.find(std::string("@") + r) != std::string::npos) primary = r;
  }
  ASSERT_FALSE(primary.empty());
  gis_.network().SetHostDown(primary, true);

  auto result = gis_.Query("SELECT qty FROM inventory WHERE id = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 20);
}

TEST_F(ReplicationTest, AllReplicasDownFails) {
  for (const char* r : {"replica0", "replica1", "replica2"}) {
    gis_.network().SetHostDown(r, true);
  }
  EXPECT_TRUE(
      gis_.Query("SELECT * FROM inventory").status().IsNetworkError());
}

TEST_F(ReplicationTest, PartitionedViewDoesNotFailOver) {
  // Union views read every member: one down member fails the query.
  ASSERT_TRUE(gis_.CreateUnionView(
                     "all_copies",
                     {"inv_replica0", "inv_replica1", "inv_replica2"})
                  .ok());
  gis_.network().SetHostDown("replica1", true);
  EXPECT_TRUE(
      gis_.Query("SELECT COUNT(*) FROM all_copies").status().IsNetworkError());
  gis_.network().SetHostDown("replica1", false);
  auto result = gis_.Query("SELECT COUNT(*) FROM all_copies");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 9);
}

TEST(AdminChannelTest, DdlAndDmlOverTheWire) {
  GlobalSystem gis;
  ASSERT_TRUE(gis.CreateSource("s1", SourceDialect::kRelational).ok());
  ASSERT_TRUE(
      gis.ExecuteAt("s1", "CREATE TABLE t (id bigint, v varchar)").ok());
  ASSERT_TRUE(gis.ExecuteAt("s1", "INSERT INTO t VALUES (1, 'x')").ok());
  ASSERT_TRUE(gis.ImportSource("s1").ok());
  auto result = gis.Query("SELECT v FROM t WHERE id = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "x");
  // Errors propagate across the admin channel.
  EXPECT_FALSE(gis.ExecuteAt("s1", "CREATE TABLE t (id bigint)").ok());
  EXPECT_FALSE(gis.ExecuteAt("s1", "SELECT 1").ok());
  EXPECT_TRUE(gis.ExecuteAt("ghost", "CREATE TABLE x (a bigint)")
                  .IsNetworkError());
  // The admin traffic was metered like everything else.
  EXPECT_GT(gis.network().metrics().Get("net.messages"), 2);
}

TEST(ByzantineTest, GarbageResponsesSurfaceAsSerializationErrors) {
  GlobalSystem gis;
  GarbageHandler garbage;
  ASSERT_TRUE(gis.network().RegisterHost("evil", &garbage).ok());
  SourceInfo info;
  info.name = "evil";
  info.dialect = SourceDialect::kRelational;
  info.capabilities = SourceCapabilities::For(SourceDialect::kRelational);
  ASSERT_TRUE(gis.catalog().RegisterSource(info).ok());
  TableMapping mapping;
  mapping.global_name = "lies";
  mapping.source_name = "evil";
  mapping.exported_name = "lies";
  mapping.schema = std::make_shared<Schema>(
      Schema({{"id", TypeId::kInt64}}).WithQualifier("lies"));
  mapping.stats.row_count = 100;
  ASSERT_TRUE(gis.catalog().RegisterTable(std::move(mapping)).ok());

  auto result = gis.Query("SELECT * FROM lies");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsSerializationError())
      << result.status().ToString();
  // Import against the Byzantine source also fails cleanly.
  EXPECT_FALSE(gis.ImportSource("evil").ok());
}

/// A source whose fragment results have the wrong arity.
class WrongArityHandler : public RpcHandler {
 public:
  Result<std::vector<uint8_t>> Handle(uint8_t, const std::vector<uint8_t>&,
                                      double*) override {
    auto schema = std::make_shared<Schema>(std::vector<Field>{
        {"a", TypeId::kInt64}, {"b", TypeId::kInt64}});
    RowBatch batch(schema);
    batch.Append({Value::Int(1), Value::Int(2)});
    ByteWriter w;
    w.PutU8(wire::kBatchFormatRow);
    wire::WriteBatch(&w, batch);
    return w.Release();
  }
};

TEST(ByzantineTest, ArityMismatchDetected) {
  GlobalSystem gis;
  WrongArityHandler handler;
  ASSERT_TRUE(gis.network().RegisterHost("evil", &handler).ok());
  SourceInfo info;
  info.name = "evil";
  info.capabilities = SourceCapabilities::For(SourceDialect::kRelational);
  ASSERT_TRUE(gis.catalog().RegisterSource(info).ok());
  TableMapping mapping;
  mapping.global_name = "lies";
  mapping.source_name = "evil";
  mapping.exported_name = "lies";
  mapping.schema = std::make_shared<Schema>(
      Schema({{"id", TypeId::kInt64}}).WithQualifier("lies"));
  ASSERT_TRUE(gis.catalog().RegisterTable(std::move(mapping)).ok());
  auto result = gis.Query("SELECT * FROM lies");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsExecutionError());
}

class DegenerateDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto src = *gis_.CreateSource("s1", SourceDialect::kRelational);
    ASSERT_TRUE(src->ExecuteLocalSql(
                      "CREATE TABLE empty_t (id bigint, v double)")
                    .ok());
    ASSERT_TRUE(src->ExecuteLocalSql(
                      "CREATE TABLE nullish (id bigint, v double, "
                      "s varchar)")
                    .ok());
    ASSERT_TRUE(src->ExecuteLocalSql(
                      "INSERT INTO nullish VALUES (1, NULL, NULL), "
                      "(2, NULL, NULL), (3, 1.5, NULL)")
                    .ok());
    ASSERT_TRUE(gis_.ImportSource("s1").ok());
  }
  GlobalSystem gis_;
};

TEST_F(DegenerateDataTest, EmptyTableThroughAllOperators) {
  auto r1 = gis_.Query("SELECT * FROM empty_t WHERE id > 0 ORDER BY v");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->batch.num_rows(), 0u);

  auto r2 = gis_.Query("SELECT COUNT(*), SUM(v), AVG(v) FROM empty_t");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->batch.rows()[0][0].AsInt(), 0);
  EXPECT_TRUE(r2->batch.rows()[0][1].is_null());
  EXPECT_TRUE(r2->batch.rows()[0][2].is_null());

  auto r3 = gis_.Query(
      "SELECT n.id FROM nullish n JOIN empty_t e ON n.id = e.id");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->batch.num_rows(), 0u);

  auto r4 = gis_.Query(
      "SELECT n.id, e.v FROM nullish n LEFT JOIN empty_t e "
      "ON n.id = e.id ORDER BY n.id");
  ASSERT_TRUE(r4.ok());
  ASSERT_EQ(r4->batch.num_rows(), 3u);
  EXPECT_TRUE(r4->batch.rows()[0][1].is_null());

  auto r5 = gis_.Query("SELECT DISTINCT v FROM empty_t LIMIT 5");
  ASSERT_TRUE(r5.ok());
  EXPECT_EQ(r5->batch.num_rows(), 0u);

  auto r6 = gis_.Query("SELECT id FROM empty_t GROUP BY id");
  ASSERT_TRUE(r6.ok());
  EXPECT_EQ(r6->batch.num_rows(), 0u);
}

TEST_F(DegenerateDataTest, AllNullColumnSemantics) {
  auto agg = gis_.Query(
      "SELECT COUNT(*), COUNT(s), MIN(s), SUM(v), AVG(v) FROM nullish");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  const auto& row = agg->batch.rows()[0];
  EXPECT_EQ(row[0].AsInt(), 3);        // COUNT(*) counts rows
  EXPECT_EQ(row[1].AsInt(), 0);        // COUNT(s) skips NULLs
  EXPECT_TRUE(row[2].is_null());       // MIN of all-NULL
  EXPECT_DOUBLE_EQ(row[3].AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(row[4].AsDouble(), 1.5);

  // NULL keys never join.
  auto self = gis_.Query(
      "SELECT COUNT(*) FROM nullish a JOIN nullish b ON a.v = b.v");
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->batch.rows()[0][0].AsInt(), 1);  // only the 1.5 row

  // NULL grouping: NULLs form one group.
  auto groups = gis_.Query(
      "SELECT v, COUNT(*) FROM nullish GROUP BY v ORDER BY v");
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->batch.num_rows(), 2u);
  EXPECT_TRUE(groups->batch.rows()[0][0].is_null());  // NULLs sort first
  EXPECT_EQ(groups->batch.rows()[0][1].AsInt(), 2);
}

TEST_F(DegenerateDataTest, DivisionByZeroSurfacesCleanly) {
  auto result = gis_.Query("SELECT id / (id - id) FROM nullish");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsExecutionError());
}

}  // namespace
}  // namespace gisql
