/// End-to-end tests of the GlobalSystem mediator: schema import, global
/// queries over heterogeneous autonomous sources, joins, aggregation,
/// union views, EXPLAIN, baselines, and failure behavior.

#include <gtest/gtest.h>

#include "core/global_system.h"

namespace gisql {
namespace {

/// Two-source world: an HQ relational DB and a branch document store.
class TwoSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto hq = *gis_.CreateSource("hq", SourceDialect::kRelational);
    ASSERT_TRUE(hq->ExecuteLocalSql(
                      "CREATE TABLE customers (cid bigint, name varchar, "
                      "region varchar)")
                    .ok());
    ASSERT_TRUE(hq->ExecuteLocalSql(
                      "CREATE TABLE orders (oid bigint, cid bigint, "
                      "total double)")
                    .ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(hq->ExecuteLocalSql(
                        "INSERT INTO customers VALUES (" + std::to_string(i) +
                        ", 'cust" + std::to_string(i) + "', '" +
                        (i % 2 ? "east" : "west") + "')")
                      .ok());
    }
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(hq->ExecuteLocalSql(
                        "INSERT INTO orders VALUES (" + std::to_string(i) +
                        ", " + std::to_string(i % 20) + ", " +
                        std::to_string(i * 1.5) + ")")
                      .ok());
    }
    ASSERT_TRUE(gis_.ImportSource("hq").ok());
  }

  GlobalSystem gis_;
};

TEST_F(TwoSourceTest, ImportPopulatesCatalog) {
  EXPECT_TRUE(gis_.catalog().HasTable("customers"));
  EXPECT_TRUE(gis_.catalog().HasTable("orders"));
  auto t = *gis_.catalog().GetTable("orders");
  EXPECT_EQ(t->stats.row_count, 100);
  EXPECT_EQ(t->schema->num_fields(), 3u);
}

TEST_F(TwoSourceTest, SimpleSelect) {
  auto result = gis_.Query("SELECT name FROM customers WHERE cid = 7");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "cust7");
  EXPECT_GT(result->metrics.elapsed_ms, 0.0);
  EXPECT_GT(result->metrics.messages, 0);
}

TEST_F(TwoSourceTest, SelectStar) {
  auto result = gis_.Query("SELECT * FROM customers WHERE region = 'east'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->batch.num_rows(), 10u);
  EXPECT_EQ(result->batch.schema()->num_fields(), 3u);
}

TEST_F(TwoSourceTest, ExpressionsAndAliases) {
  auto result = gis_.Query(
      "SELECT oid, total * 1.1 AS taxed FROM orders WHERE oid < 3 "
      "ORDER BY oid");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 3u);
  EXPECT_EQ(result->batch.schema()->field(1).name, "taxed");
  EXPECT_DOUBLE_EQ(result->batch.rows()[2][1].AsDouble(), 2 * 1.5 * 1.1);
}

TEST_F(TwoSourceTest, JoinAcrossTables) {
  auto result = gis_.Query(
      "SELECT c.name, o.total FROM customers c JOIN orders o "
      "ON c.cid = o.cid WHERE o.total > 140 ORDER BY o.total DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // totals: i*1.5 > 140 → i in (93..99) plus 94.. → 99,98,...,94 → 6 rows
  ASSERT_EQ(result->batch.num_rows(), 6u);
  EXPECT_DOUBLE_EQ(result->batch.rows()[0][1].AsDouble(), 99 * 1.5);
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "cust19");
}

TEST_F(TwoSourceTest, CommaJoinWithWherePredicates) {
  auto result = gis_.Query(
      "SELECT c.name FROM customers c, orders o "
      "WHERE c.cid = o.cid AND o.oid = 42");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "cust2");
}

TEST_F(TwoSourceTest, LeftJoinPreservesUnmatched) {
  auto hq = *gis_.GetSource("hq");
  ASSERT_TRUE(
      hq->ExecuteLocalSql("INSERT INTO customers VALUES (999, 'ghost', "
                          "'north')")
          .ok());
  ASSERT_TRUE(gis_.RefreshStats("customers").ok());
  auto result = gis_.Query(
      "SELECT c.name, o.oid FROM customers c LEFT JOIN orders o "
      "ON c.cid = o.cid WHERE c.cid = 999");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "ghost");
  EXPECT_TRUE(result->batch.rows()[0][1].is_null());
}

TEST_F(TwoSourceTest, GroupByWithAggregates) {
  auto result = gis_.Query(
      "SELECT c.region, COUNT(*), SUM(o.total), AVG(o.total) "
      "FROM customers c JOIN orders o ON c.cid = o.cid "
      "GROUP BY c.region ORDER BY c.region");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 2u);
  const auto& east = result->batch.rows()[0];
  EXPECT_EQ(east[0].AsString(), "east");
  EXPECT_EQ(east[1].AsInt(), 50);
  // east = odd cid → orders where (i%20) odd → i odd → sum of odd i*1.5
  double sum_east = 0;
  for (int i = 1; i < 100; i += 2) sum_east += i * 1.5;
  EXPECT_DOUBLE_EQ(east[2].AsDouble(), sum_east);
  EXPECT_DOUBLE_EQ(east[3].AsDouble(), sum_east / 50.0);
}

TEST_F(TwoSourceTest, GlobalAggregateNoGroups) {
  auto result = gis_.Query("SELECT COUNT(*), MAX(total) FROM orders");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 100);
  EXPECT_DOUBLE_EQ(result->batch.rows()[0][1].AsDouble(), 99 * 1.5);
}

TEST_F(TwoSourceTest, GlobalAggregateOnEmptyResult) {
  auto result =
      gis_.Query("SELECT COUNT(*), SUM(total) FROM orders WHERE oid > 1000");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 0);
  EXPECT_TRUE(result->batch.rows()[0][1].is_null());
}

TEST_F(TwoSourceTest, HavingFiltersGroups) {
  auto result = gis_.Query(
      "SELECT cid, COUNT(*) AS n FROM orders GROUP BY cid "
      "HAVING COUNT(*) >= 5 ORDER BY cid");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->batch.num_rows(), 20u);  // every cid has exactly 5
  auto result2 = gis_.Query(
      "SELECT cid FROM orders GROUP BY cid HAVING COUNT(*) > 5");
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->batch.num_rows(), 0u);
}

TEST_F(TwoSourceTest, CountDistinct) {
  auto result = gis_.Query("SELECT COUNT(DISTINCT region) FROM customers");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 2);
}

TEST_F(TwoSourceTest, DistinctSelect) {
  auto result =
      gis_.Query("SELECT DISTINCT region FROM customers ORDER BY region");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 2u);
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "east");
}

TEST_F(TwoSourceTest, OrderByLimitOffset) {
  auto result = gis_.Query(
      "SELECT oid FROM orders ORDER BY total DESC LIMIT 3 OFFSET 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 3u);
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 98);
  EXPECT_EQ(result->batch.rows()[2][0].AsInt(), 96);
}

TEST_F(TwoSourceTest, OrderByHiddenColumn) {
  // ORDER BY a column not in the select list.
  auto result =
      gis_.Query("SELECT name FROM customers ORDER BY cid DESC LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 2u);
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "cust19");
  EXPECT_EQ(result->batch.schema()->num_fields(), 1u);  // hidden dropped
}

TEST_F(TwoSourceTest, DerivedTable) {
  auto result = gis_.Query(
      "SELECT big.oid FROM (SELECT oid, total FROM orders "
      "WHERE total > 100) AS big WHERE big.oid % 2 = 0 ORDER BY big.oid");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // total > 100 → i >= 67; even → 68, 70, ..., 98 → 16 rows
  EXPECT_EQ(result->batch.num_rows(), 16u);
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 68);
}

TEST_F(TwoSourceTest, SelectWithoutFrom) {
  auto result = gis_.Query("SELECT 1 + 1 AS two, 'x' AS tag");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(result->batch.rows()[0][1].AsString(), "x");
  EXPECT_EQ(result->metrics.messages, 0);  // no network traffic
}

TEST_F(TwoSourceTest, CaseAndFunctions) {
  auto result = gis_.Query(
      "SELECT UPPER(name), CASE WHEN total > 100 THEN 'big' ELSE 'small' "
      "END AS size FROM customers c JOIN orders o ON c.cid = o.cid "
      "WHERE o.oid = 99");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "CUST19");
  EXPECT_EQ(result->batch.rows()[0][1].AsString(), "big");
}

TEST_F(TwoSourceTest, ExplainShowsFragments) {
  auto text = gis_.Explain(
      "SELECT name FROM customers WHERE region = 'east'");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("RemoteFragment"), std::string::npos);
  EXPECT_NE(text->find("@hq"), std::string::npos);
  // Filter was pushed into the fragment (relational source).
  EXPECT_NE(text->find("WHERE"), std::string::npos);
  EXPECT_EQ(text->find("\nFilter"), std::string::npos);
}

TEST_F(TwoSourceTest, ExplainStatement) {
  auto result = gis_.Query("EXPLAIN SELECT * FROM orders");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_NE(result->batch.rows()[0][0].AsString().find("RemoteFragment"),
            std::string::npos);
}

TEST_F(TwoSourceTest, ExplainAnalyzeReportsActuals) {
  auto result = gis_.Query(
      "EXPLAIN ANALYZE SELECT region, COUNT(*) FROM customers "
      "GROUP BY region");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = result->batch.rows()[0][0].AsString();
  EXPECT_NE(text.find("actual_rows="), std::string::npos);
  EXPECT_NE(text.find("actual_ms="), std::string::npos);
  EXPECT_NE(text.find("Total: 2 row(s)"), std::string::npos);
  EXPECT_GT(result->metrics.elapsed_ms, 0.0);
}

TEST_F(TwoSourceTest, PlainExplainHasNoActuals) {
  auto result = gis_.Query("EXPLAIN SELECT * FROM customers");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->batch.rows()[0][0].AsString().find("actual_rows"),
            std::string::npos);
}

TEST_F(TwoSourceTest, PushdownReducesBytes) {
  const std::string q = "SELECT name FROM customers WHERE cid = 3";
  auto full = gis_.Query(q);
  ASSERT_TRUE(full.ok());

  GlobalSystem::kMediatorHost;  // silence unused warning paths
  gis_.set_options(PlannerOptions::ShipEverything());
  auto ship = gis_.Query(q);
  ASSERT_TRUE(ship.ok());
  gis_.set_options(PlannerOptions::Full());

  // Same answer.
  ASSERT_EQ(full->batch.num_rows(), ship->batch.num_rows());
  EXPECT_EQ(full->batch.rows()[0][0].AsString(),
            ship->batch.rows()[0][0].AsString());
  // Far fewer bytes with pushdown.
  EXPECT_LT(full->metrics.bytes_received, ship->metrics.bytes_received / 2);
  EXPECT_LT(full->metrics.elapsed_ms, ship->metrics.elapsed_ms);
}

TEST_F(TwoSourceTest, AggregatePushdownReducesBytes) {
  const std::string q =
      "SELECT cid, SUM(total) FROM orders GROUP BY cid";
  auto full = gis_.Query(q);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  PlannerOptions no_agg;
  no_agg.enable_aggregate_pushdown = false;
  gis_.set_options(no_agg);
  auto central = gis_.Query(q);
  ASSERT_TRUE(central.ok());
  gis_.set_options(PlannerOptions::Full());

  ASSERT_EQ(full->batch.num_rows(), central->batch.num_rows());
  EXPECT_LE(full->metrics.bytes_received, central->metrics.bytes_received);
}

TEST_F(TwoSourceTest, MediatorRejectsDdl) {
  EXPECT_TRUE(gis_.Query("CREATE TABLE t (a bigint)")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      gis_.Query("INSERT INTO orders VALUES (1, 1, 1.0)")
          .status()
          .IsInvalidArgument());
}

TEST_F(TwoSourceTest, UnknownTableIsBindError) {
  EXPECT_TRUE(gis_.Query("SELECT * FROM ghosts").status().IsBindError());
  EXPECT_TRUE(gis_.Query("SELECT ghost FROM orders").status().IsBindError());
}

TEST_F(TwoSourceTest, SourceFailureSurfacesAsNetworkError) {
  gis_.network().SetHostDown("hq", true);
  EXPECT_TRUE(
      gis_.Query("SELECT * FROM orders").status().IsNetworkError());
  gis_.network().SetHostDown("hq", false);
  EXPECT_TRUE(gis_.Query("SELECT * FROM orders").ok());
}

TEST_F(TwoSourceTest, DuplicateSourceRejected) {
  EXPECT_TRUE(gis_.CreateSource("hq", SourceDialect::kLegacy)
                  .status()
                  .IsAlreadyExists());
}

/// Heterogeneous world: four dialects holding union-compatible shards.
class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const SourceDialect dialects[] = {
        SourceDialect::kRelational, SourceDialect::kDocument,
        SourceDialect::kKeyValue, SourceDialect::kLegacy};
    for (int s = 0; s < 4; ++s) {
      std::string name = "site" + std::to_string(s);
      auto src = *gis_.CreateSource(name, dialects[s]);
      ASSERT_TRUE(src->ExecuteLocalSql(
                        "CREATE TABLE sales (sid bigint, amount double, "
                        "item varchar)")
                      .ok());
      auto table = *src->engine().GetTable("sales");
      std::vector<Row> rows;
      for (int i = 0; i < 50; ++i) {
        rows.push_back({Value::Int(s * 1000 + i),
                        Value::Double((s + 1) * 10.0 + i),
                        Value::String("item" + std::to_string(i % 5))});
      }
      table->InsertUnchecked(std::move(rows));
      ASSERT_TRUE(
          gis_.ImportTable(name, "sales", "sales_" + name).ok());
    }
    ASSERT_TRUE(gis_.CreateUnionView(
                       "all_sales", {"sales_site0", "sales_site1",
                                     "sales_site2", "sales_site3"})
                    .ok());
  }

  GlobalSystem gis_;
};

TEST_F(FederationTest, UnionViewScansAllSources) {
  auto result = gis_.Query("SELECT COUNT(*) FROM all_sales");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 200);
}

TEST_F(FederationTest, FilterOverHeterogeneousView) {
  // site0 (relational) and site1 (document) evaluate the filter locally;
  // site2 (kv) and site3 (legacy) ship rows for mediator compensation.
  auto result =
      gis_.Query("SELECT sid FROM all_sales WHERE amount > 55 ORDER BY sid");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  int64_t expected = 0;
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 50; ++i) {
      if ((s + 1) * 10.0 + i > 55) ++expected;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(result->batch.num_rows()), expected);

  auto text = *gis_.Explain(
      "SELECT sid FROM all_sales WHERE amount > 55");
  // Mediator-side Filter exists for the incapable sources.
  EXPECT_NE(text.find("Filter"), std::string::npos);
  // And at least one fragment carries the pushed filter.
  EXPECT_NE(text.find("WHERE"), std::string::npos);
}

TEST_F(FederationTest, AggregateOverView) {
  auto result = gis_.Query(
      "SELECT item, COUNT(*) AS n, SUM(amount) FROM all_sales "
      "GROUP BY item ORDER BY item");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 5u);
  int64_t total = 0;
  for (const auto& row : result->batch.rows()) total += row[1].AsInt();
  EXPECT_EQ(total, 200);
}

TEST_F(FederationTest, JoinViewWithTable) {
  auto ref = *gis_.CreateSource("refdata", SourceDialect::kRelational);
  ASSERT_TRUE(ref->ExecuteLocalSql(
                    "CREATE TABLE items (item varchar, category varchar)")
                  .ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ref->ExecuteLocalSql(
                      "INSERT INTO items VALUES ('item" + std::to_string(i) +
                      "', 'cat" + std::to_string(i % 2) + "')")
                    .ok());
  }
  ASSERT_TRUE(gis_.ImportSource("refdata").ok());
  auto result = gis_.Query(
      "SELECT i.category, COUNT(*) FROM all_sales s JOIN items i "
      "ON s.item = i.item GROUP BY i.category ORDER BY i.category");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 2u);
  // cat0 ← item0, item2, item4 → 3 of 5 shards of each site's 50 rows:
  // each site: items 0..4 repeat 10 times each → cat0 30 rows/site.
  EXPECT_EQ(result->batch.rows()[0][1].AsInt(), 120);
  EXPECT_EQ(result->batch.rows()[1][1].AsInt(), 80);
}

TEST_F(FederationTest, ScaleOutParallelism) {
  // Fetching the view costs roughly the max of the member fetches, not
  // the sum: compare one-member vs four-member query latency.
  auto one = gis_.Query("SELECT COUNT(*) FROM sales_site0");
  auto all = gis_.Query("SELECT COUNT(*) FROM all_sales");
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(all.ok());
  EXPECT_LT(all->metrics.elapsed_ms, one->metrics.elapsed_ms * 3.0);
}

TEST_F(FederationTest, UnionViewRequiresCompatibleMembers) {
  auto odd = *gis_.CreateSource("odd", SourceDialect::kRelational);
  ASSERT_TRUE(odd->ExecuteLocalSql("CREATE TABLE sales (x varchar)").ok());
  ASSERT_TRUE(gis_.ImportTable("odd", "sales", "odd_sales").ok());
  EXPECT_TRUE(gis_.CreateUnionView("bad", {"sales_site0", "odd_sales"})
                  .IsInvalidArgument());
}

/// Semijoin behavior.
class SemijoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto a = *gis_.CreateSource("a", SourceDialect::kRelational);
    auto b = *gis_.CreateSource("b", SourceDialect::kRelational);
    // Small dimension at a, big fact at b.
    ASSERT_TRUE(
        a->ExecuteLocalSql("CREATE TABLE dim (k bigint, tag varchar)").ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(a->ExecuteLocalSql(
                        "INSERT INTO dim VALUES (" + std::to_string(i * 100) +
                        ", 'tag" + std::to_string(i) + "')")
                      .ok());
    }
    ASSERT_TRUE(
        b->ExecuteLocalSql("CREATE TABLE fact (k bigint, v double)").ok());
    auto fact = *b->engine().GetTable("fact");
    std::vector<Row> rows;
    for (int i = 0; i < 2000; ++i) {
      rows.push_back({Value::Int(i), Value::Double(i * 0.5)});
    }
    fact->InsertUnchecked(std::move(rows));
    ASSERT_TRUE(gis_.ImportSource("a").ok());
    ASSERT_TRUE(gis_.ImportSource("b").ok());
  }

  GlobalSystem gis_;
};

TEST_F(SemijoinTest, SemijoinReducesTraffic) {
  const std::string q =
      "SELECT d.tag, f.v FROM dim d JOIN fact f ON d.k = f.k";
  auto semi = gis_.Query(q);
  ASSERT_TRUE(semi.ok()) << semi.status().ToString();
  ASSERT_EQ(semi->batch.num_rows(), 5u);

  PlannerOptions no_semi;
  no_semi.enable_semijoin = false;
  gis_.set_options(no_semi);
  auto ship = gis_.Query(q);
  ASSERT_TRUE(ship.ok());
  gis_.set_options(PlannerOptions::Full());

  ASSERT_EQ(ship->batch.num_rows(), 5u);
  EXPECT_LT(semi->metrics.bytes_received,
            ship->metrics.bytes_received / 10);

  auto text = *gis_.Explain(q);
  EXPECT_NE(text.find("semijoin-reduced"), std::string::npos);
}

TEST_F(SemijoinTest, SemijoinSkippedWhenKeysDominate) {
  // Join where the build side has as many distinct keys as the probe:
  // the cost model should choose ship.
  auto text = *gis_.Explain(
      "SELECT * FROM fact f1 JOIN fact f2 ON f1.k = f2.k");
  EXPECT_EQ(text.find("semijoin-reduced"), std::string::npos);
}

}  // namespace
}  // namespace gisql
