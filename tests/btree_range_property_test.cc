/// Property test: BPlusTree::Range boundary semantics against a
/// sorted-vector oracle — every lo/hi inclusive×exclusive combination,
/// equal bounds, inverted bounds, and NULL (= unbounded) sides, over
/// randomized seeded key sets with duplicates.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "storage/btree.h"

namespace gisql {
namespace {

struct Entry {
  Value key;
  size_t rid;
};

/// The oracle: filter the (key, rid) set by the bounds, then order by
/// key with insertion order among duplicates — exactly the contract
/// Range documents.
std::vector<size_t> OracleRange(const std::vector<Entry>& entries,
                                const Value& lo, bool lo_inclusive,
                                const Value& hi, bool hi_inclusive) {
  std::vector<std::pair<const Entry*, size_t>> kept;
  for (size_t i = 0; i < entries.size(); ++i) {
    const Value& k = entries[i].key;
    if (!lo.is_null()) {
      const int c = k.Compare(lo);
      if (lo_inclusive ? c < 0 : c <= 0) continue;
    }
    if (!hi.is_null()) {
      const int c = k.Compare(hi);
      if (hi_inclusive ? c > 0 : c >= 0) continue;
    }
    kept.emplace_back(&entries[i], i);
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const auto& a, const auto& b) {
                     return a.first->key.Compare(b.first->key) < 0;
                   });
  std::vector<size_t> rids;
  rids.reserve(kept.size());
  for (const auto& [entry, pos] : kept) rids.push_back(entry->rid);
  return rids;
}

void CheckAllBoundCombinations(const BPlusTree& tree,
                               const std::vector<Entry>& entries,
                               const Value& lo, const Value& hi) {
  for (const bool lo_inc : {true, false}) {
    for (const bool hi_inc : {true, false}) {
      const auto got = tree.Range(lo, lo_inc, hi, hi_inc);
      const auto want = OracleRange(entries, lo, lo_inc, hi, hi_inc);
      ASSERT_EQ(got, want)
          << "lo=" << lo.ToString() << (lo_inc ? " incl" : " excl")
          << " hi=" << hi.ToString() << (hi_inc ? " incl" : " excl");
    }
  }
}

TEST(BTreeRangeProperty, RandomIntKeysAllBoundKinds) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    BPlusTree tree(8);  // small fanout: plenty of splits at this size
    std::vector<Entry> entries;
    const int n = 400;
    for (int i = 0; i < n; ++i) {
      // A narrow domain forces duplicate keys.
      const Value key = Value::Int(rng.Uniform(-40, 40));
      ASSERT_TRUE(tree.Insert(key, static_cast<size_t>(i)).ok());
      entries.push_back({key, static_cast<size_t>(i)});
    }
    ASSERT_TRUE(tree.Validate().ok()) << "seed " << seed;

    for (int probe = 0; probe < 50; ++probe) {
      const int64_t a = rng.Uniform(-45, 45);
      const int64_t b = rng.Uniform(-45, 45);
      // Both orientations: sorted bounds and inverted (empty) bounds.
      CheckAllBoundCombinations(tree, entries, Value::Int(a), Value::Int(b));
      // Equal bounds: [v, v] is the duplicates of v; half-open forms
      // of the same point are empty.
      CheckAllBoundCombinations(tree, entries, Value::Int(a), Value::Int(a));
      // NULL = unbounded on either or both sides.
      CheckAllBoundCombinations(tree, entries, Value::Null(), Value::Int(b));
      CheckAllBoundCombinations(tree, entries, Value::Int(a), Value::Null());
    }
    CheckAllBoundCombinations(tree, entries, Value::Null(), Value::Null());
  }
}

TEST(BTreeRangeProperty, RandomStringKeys) {
  Rng rng(99);
  BPlusTree tree(8);
  std::vector<Entry> entries;
  for (int i = 0; i < 300; ++i) {
    const Value key = Value::String(rng.NextString(2));  // duplicates likely
    ASSERT_TRUE(tree.Insert(key, static_cast<size_t>(i)).ok());
    entries.push_back({key, static_cast<size_t>(i)});
  }
  ASSERT_TRUE(tree.Validate().ok());
  for (int probe = 0; probe < 30; ++probe) {
    const Value a = Value::String(rng.NextString(2));
    const Value b = Value::String(rng.NextString(2));
    CheckAllBoundCombinations(tree, entries, a, b);
    CheckAllBoundCombinations(tree, entries, a, a);
    CheckAllBoundCombinations(tree, entries, Value::Null(), b);
    CheckAllBoundCombinations(tree, entries, a, Value::Null());
  }
}

TEST(BTreeRangeProperty, BoundsOutsideDomain) {
  BPlusTree tree(4);
  std::vector<Entry> entries;
  for (int i = 0; i < 20; ++i) {
    const Value key = Value::Int(i * 2);  // evens 0..38
    ASSERT_TRUE(tree.Insert(key, static_cast<size_t>(i)).ok());
    entries.push_back({key, static_cast<size_t>(i)});
  }
  // Bounds below, above, and between stored keys (never equal to one).
  for (const int64_t lo : {-5, 1, 37, 100}) {
    for (const int64_t hi : {-3, 5, 39, 200}) {
      CheckAllBoundCombinations(tree, entries, Value::Int(lo),
                                Value::Int(hi));
    }
  }
}

TEST(BTreeRangeProperty, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.Range(Value::Null(), true, Value::Null(), true).empty());
  EXPECT_TRUE(tree.Range(Value::Int(0), true, Value::Int(10), true).empty());
}

}  // namespace
}  // namespace gisql
