/// Resource-governor tests: the admission controller's slot/queue/
/// deadline/shed matrix, per-query memory budgets aborting hostile
/// queries, circuit-breaker state walks, health-aware replica routing,
/// the GISQL_* env knobs, and the schedule-independence differentials
/// over admission decisions and the gis.admission rendering.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/global_system.h"
#include "sched/admission.h"
#include "sched/circuit_breaker.h"
#include "sched/memory_budget.h"

namespace gisql {
namespace {

// ---------------------------------------------------------------------------
// AdmissionController unit matrix
// ---------------------------------------------------------------------------

TEST(AdmissionControllerTest, FreeSlotAdmitsAtArrival) {
  AdmissionController ac;
  AdmissionRequest req;
  req.arrival_ms = 5.0;
  const AdmissionDecision d = ac.Admit(req);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.reason, ShedReason::kNone);
  EXPECT_EQ(d.wait_ms, 0.0);
  EXPECT_EQ(d.start_ms, 5.0);
  EXPECT_NE(d.ticket, 0u);
  EXPECT_EQ(ac.Stats().in_flight, 1);
  ac.Release(d.ticket, 15.0);
  EXPECT_EQ(ac.Stats().in_flight, 0);
}

TEST(AdmissionControllerTest, WorkedExampleTwoSlots) {
  // Capacity 2, arrivals 0/1/2/3, every query runs 100 ms: textbook
  // starts are 0, 1, 100 (first release), 101 (second release).
  AdmissionConfig cfg;
  cfg.max_concurrent = 2;
  cfg.max_wait_ms = 1e9;
  AdmissionController ac(cfg);

  auto admit = [&](double arrival) {
    AdmissionRequest req;
    req.arrival_ms = arrival;
    return ac.Admit(req);
  };
  const AdmissionDecision a = admit(0.0);
  const AdmissionDecision b = admit(1.0);
  EXPECT_EQ(a.start_ms, 0.0);
  EXPECT_EQ(b.start_ms, 1.0);
  ac.Release(a.ticket, a.start_ms + 100.0);
  ac.Release(b.ticket, b.start_ms + 100.0);

  const AdmissionDecision c = admit(2.0);
  EXPECT_TRUE(c.admitted);
  EXPECT_EQ(c.start_ms, 100.0);  // takes a's slot the moment it frees
  EXPECT_EQ(c.wait_ms, 98.0);
  ac.Release(c.ticket, c.start_ms + 100.0);

  const AdmissionDecision d = admit(3.0);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.start_ms, 101.0);  // b's slot; c already claimed a's
  EXPECT_EQ(d.wait_ms, 98.0);

  const AdmissionStats stats = ac.Stats();
  EXPECT_EQ(stats.admitted, 4);
  EXPECT_EQ(stats.queued, 2);
  EXPECT_EQ(stats.total_wait_ms, 196.0);
}

TEST(AdmissionControllerTest, DeadlineBalksAtAdmission) {
  AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_wait_ms = 50.0;
  AdmissionController ac(cfg);

  AdmissionRequest first;
  first.arrival_ms = 0.0;
  const AdmissionDecision a = ac.Admit(first);
  ac.Release(a.ticket, 200.0);

  // Would wait 199 ms > the 50 ms default deadline: shed, zero cost.
  AdmissionRequest late;
  late.arrival_ms = 1.0;
  const AdmissionDecision b = ac.Admit(late);
  EXPECT_FALSE(b.admitted);
  EXPECT_EQ(b.reason, ShedReason::kDeadline);
  EXPECT_EQ(b.wait_ms, 199.0);

  // A per-request override can stretch the deadline past the wait.
  AdmissionRequest patient;
  patient.arrival_ms = 1.0;
  patient.max_wait_ms = 500.0;
  const AdmissionDecision c = ac.Admit(patient);
  EXPECT_TRUE(c.admitted);
  EXPECT_EQ(c.start_ms, 200.0);

  const AdmissionStats stats = ac.Stats();
  EXPECT_EQ(stats.shed_deadline, 1);
  EXPECT_EQ(stats.admitted, 2);
}

TEST(AdmissionControllerTest, UnreleasedSlotPinsWaitAtInfinity) {
  // A slot still in flight (wall-clock concurrency) has no known
  // release: the conservative wait is infinite, so any deadline sheds.
  AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  AdmissionController ac(cfg);
  AdmissionRequest req;
  req.arrival_ms = 0.0;
  const AdmissionDecision a = ac.Admit(req);
  ASSERT_TRUE(a.admitted);

  AdmissionRequest next;
  next.arrival_ms = 0.0;
  const AdmissionDecision b = ac.Admit(next);
  EXPECT_FALSE(b.admitted);
  EXPECT_EQ(b.reason, ShedReason::kDeadline);
  ac.Release(a.ticket, 1.0);
}

TEST(AdmissionControllerTest, PriorityWatermarksShareOneQueue) {
  // queue_limit 4 → class thresholds: background 2, normal 3 (floor of
  // 4·0.8), interactive 4. Stack up exactly two queued queries, then
  // probe each class at the same arrival instant.
  AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  cfg.queue_limit = 4;
  cfg.max_wait_ms = 1e9;
  AdmissionController ac(cfg);

  AdmissionRequest req;
  req.arrival_ms = 0.0;
  const AdmissionDecision running = ac.Admit(req);
  ac.Release(running.ticket, 100.0);
  for (int i = 0; i < 2; ++i) {
    AdmissionRequest waiter;
    waiter.arrival_ms = 1.0;
    const AdmissionDecision d = ac.Admit(waiter);
    ASSERT_TRUE(d.admitted);
    ASSERT_GT(d.wait_ms, 0.0);
    ac.Release(d.ticket, d.start_ms + 100.0);
  }

  AdmissionRequest background;
  background.arrival_ms = 2.0;
  background.priority = 0;
  const AdmissionDecision bg = ac.Admit(background);
  EXPECT_FALSE(bg.admitted);
  EXPECT_EQ(bg.reason, ShedReason::kQueueFull);
  EXPECT_EQ(bg.queued_ahead, 2);

  AdmissionRequest normal;
  normal.arrival_ms = 2.0;
  normal.priority = 1;
  const AdmissionDecision nm = ac.Admit(normal);
  EXPECT_TRUE(nm.admitted);
  // Release it (an unreleased slot pins later waits at infinity, which
  // would deadline-shed the interactive probe below).
  ac.Release(nm.ticket, nm.start_ms + 100.0);

  // Three queued now: normal class is at its watermark too, but
  // interactive still enters until the queue is truly full.
  AdmissionRequest normal2;
  normal2.arrival_ms = 2.0;
  const AdmissionDecision nm2 = ac.Admit(normal2);
  EXPECT_FALSE(nm2.admitted);
  EXPECT_EQ(nm2.reason, ShedReason::kQueueFull);

  AdmissionRequest interactive;
  interactive.arrival_ms = 2.0;
  interactive.priority = 2;
  const AdmissionDecision it = ac.Admit(interactive);
  EXPECT_TRUE(it.admitted);

  const AdmissionStats stats = ac.Stats();
  EXPECT_EQ(stats.shed_queue_full, 2);
  EXPECT_EQ(stats.queued, 4);
}

TEST(AdmissionControllerTest, SameScheduleReplaysIdentically) {
  auto run = [] {
    AdmissionConfig cfg;
    cfg.max_concurrent = 2;
    cfg.queue_limit = 3;
    cfg.max_wait_ms = 40.0;
    AdmissionController ac(cfg);
    std::string out;
    for (int i = 0; i < 12; ++i) {
      AdmissionRequest req;
      req.arrival_ms = i * 7.0;
      req.priority = i % 3;
      const AdmissionDecision d = ac.Admit(req);
      out += (d.admitted ? "A" : "S") + std::to_string(d.start_ms) + "/" +
             std::to_string(d.wait_ms) + ";";
      if (d.admitted) ac.Release(d.ticket, d.start_ms + 25.0);
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// MemoryBudget unit tests
// ---------------------------------------------------------------------------

TEST(MemoryBudgetTest, GrantAccumulatesAndReleasesOnDestruction) {
  MemoryBudget budget;
  budget.Configure(/*query_cap_bytes=*/1000, /*global_cap_bytes=*/10000);
  {
    MemoryGrant grant = budget.NewGrant();
    EXPECT_TRUE(grant.Charge(400, "a join hash table").ok());
    EXPECT_TRUE(grant.Charge(500, "a sort buffer").ok());
    EXPECT_EQ(grant.used(), 900);
    EXPECT_EQ(budget.in_use(), 900);
    EXPECT_EQ(budget.peak(), 900);
  }
  EXPECT_EQ(budget.in_use(), 0);
  EXPECT_EQ(budget.peak(), 900);  // the watermark survives the release
}

TEST(MemoryBudgetTest, QueryCapOverloadsWithActionableMessage) {
  MemoryBudget budget;
  budget.Configure(1000, 10000);
  MemoryGrant grant = budget.NewGrant();
  EXPECT_TRUE(grant.Charge(800, "a fragment result").ok());
  const Status st = grant.Charge(300, "a join hash table");
  EXPECT_TRUE(st.IsOverloaded()) << st.ToString();
  EXPECT_NE(st.message().find("GISQL_QUERY_MEM_BYTES"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("a join hash table"), std::string::npos);
}

TEST(MemoryBudgetTest, GlobalCapSharedAcrossGrants) {
  MemoryBudget budget;
  budget.Configure(/*query_cap_bytes=*/5000, /*global_cap_bytes=*/1200);
  MemoryGrant a = budget.NewGrant();
  MemoryGrant b = budget.NewGrant();
  EXPECT_TRUE(a.Charge(700, "a fragment result").ok());
  const Status st = b.Charge(600, "an aggregate result");
  EXPECT_TRUE(st.IsOverloaded()) << st.ToString();
  EXPECT_NE(st.message().find("GISQL_MEDIATOR_MEM_BYTES"), std::string::npos)
      << st.ToString();
}

// ---------------------------------------------------------------------------
// CircuitBreakerRegistry unit walk
// ---------------------------------------------------------------------------

BreakerConfig TightBreaker() {
  BreakerConfig cfg;
  cfg.enabled = true;
  cfg.open_after = 3;
  cfg.cooldown_skips = 2;
  cfg.probe_ratio = 1.0;  // every half-open request probes
  return cfg;
}

TEST(CircuitBreakerTest, WalksClosedOpenHalfOpenClosed) {
  CircuitBreakerRegistry reg(TightBreaker());
  EXPECT_EQ(reg.StateOf("s"), BreakerState::kClosed);
  EXPECT_FALSE(reg.ShouldSkip("s"));

  for (int i = 0; i < 3; ++i) reg.OnSourceOutcome("s", /*ok=*/false);
  EXPECT_EQ(reg.StateOf("s"), BreakerState::kOpen);

  // Two skips serve the cooldown; both answer without the wire.
  EXPECT_TRUE(reg.ShouldSkip("s"));
  EXPECT_TRUE(reg.ShouldSkip("s"));
  EXPECT_EQ(reg.StateOf("s"), BreakerState::kHalfOpen);

  // probe_ratio 1.0: the next request goes through as a probe...
  EXPECT_FALSE(reg.ShouldSkip("s"));
  // ...and its failure slams the breaker shut again.
  reg.OnSourceOutcome("s", false);
  EXPECT_EQ(reg.StateOf("s"), BreakerState::kOpen);

  EXPECT_TRUE(reg.ShouldSkip("s"));
  EXPECT_TRUE(reg.ShouldSkip("s"));
  EXPECT_FALSE(reg.ShouldSkip("s"));
  reg.OnSourceOutcome("s", true);
  EXPECT_EQ(reg.StateOf("s"), BreakerState::kClosed);

  const std::vector<std::string> expected = {
      "s: closed->open",     "s: open->half_open", "s: half_open->open",
      "s: open->half_open",  "s: half_open->closed"};
  EXPECT_EQ(reg.TransitionLog(), expected);
  const BreakerSnapshot snap = reg.SnapshotOf("s");
  EXPECT_EQ(snap.skips, 4);
  EXPECT_EQ(snap.probes, 2);
  EXPECT_EQ(snap.transitions, 5);
}

TEST(CircuitBreakerTest, DisabledRegistryNeverSkips) {
  BreakerConfig cfg = TightBreaker();
  cfg.enabled = false;
  CircuitBreakerRegistry reg(cfg);
  for (int i = 0; i < 10; ++i) reg.OnSourceOutcome("s", false);
  EXPECT_FALSE(reg.ShouldSkip("s"));
  EXPECT_EQ(reg.TotalSkips(), 0);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreakerRegistry reg(TightBreaker());
  reg.OnSourceOutcome("s", false);
  reg.OnSourceOutcome("s", false);
  reg.OnSourceOutcome("s", true);  // streak broken before open_after
  reg.OnSourceOutcome("s", false);
  reg.OnSourceOutcome("s", false);
  EXPECT_EQ(reg.StateOf("s"), BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// GlobalSystem integration
// ---------------------------------------------------------------------------

/// Two-source federation; `big_rows` sizes the hq table for the memory
/// tests.
void Build(GlobalSystem* gis, int big_rows = 40) {
  auto hq = *gis->CreateSource("hq", SourceDialect::kRelational);
  ASSERT_TRUE(hq->ExecuteLocalSql(
                    "CREATE TABLE orders (oid bigint, cid bigint, "
                    "total double)")
                  .ok());
  for (int base = 0; base < big_rows; base += 200) {
    std::string insert = "INSERT INTO orders VALUES ";
    const int hi = std::min(base + 200, big_rows);
    for (int i = base; i < hi; ++i) {
      if (i > base) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i % 8) +
                ", " + std::to_string(i * 2.5) + ")";
    }
    ASSERT_TRUE(hq->ExecuteLocalSql(insert).ok());
  }
  auto branch = *gis->CreateSource("branch", SourceDialect::kDocument);
  ASSERT_TRUE(branch->ExecuteLocalSql(
                    "CREATE TABLE clients (cid bigint, name varchar)")
                  .ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(branch->ExecuteLocalSql(
                      "INSERT INTO clients VALUES (" + std::to_string(i) +
                      ", 'c" + std::to_string(i) + "')")
                    .ok());
  }
  ASSERT_TRUE(gis->ImportSource("hq").ok());
  ASSERT_TRUE(gis->ImportSource("branch").ok());
}

TEST(AdmissionSystemTest, ClosedLoopTrafficNeverQueuesOrSheds) {
  GlobalSystem gis;  // admission_control defaults on
  Build(&gis);
  for (int i = 0; i < 5; ++i) {
    auto r = gis.Query("SELECT COUNT(*) FROM orders WHERE oid > " +
                       std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->metrics.admission_wait_ms, 0.0);
  }
  auto snap = gis.Query(
      "SELECT admitted, queued, shed_queue_full, shed_deadline, "
      "shed_memory_budget, in_flight, total_wait_ms FROM gis.admission");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const auto& row = snap->batch.rows()[0];
  EXPECT_EQ(row[0].AsInt(), 6);  // five queries + this scan
  EXPECT_EQ(row[1].AsInt(), 0);
  EXPECT_EQ(row[2].AsInt(), 0);
  EXPECT_EQ(row[3].AsInt(), 0);
  EXPECT_EQ(row[4].AsInt(), 0);
  EXPECT_EQ(row[5].AsInt(), 1);  // the scan itself holds a slot
  EXPECT_EQ(row[6].AsDouble(), 0.0);
}

TEST(AdmissionSystemTest, OpenLoopBurstQueuesThenSheds) {
  PlannerOptions options;
  options.max_concurrent_queries = 1;
  options.admission_queue_limit = 4;   // normal-class watermark: 3
  options.admission_max_wait_ms = 1e9;
  GlobalSystem gis(options);
  Build(&gis);

  // Same instant, one slot: the first runs, the next three queue, the
  // ones after that find the queue at its class watermark.
  int admitted = 0, shed = 0;
  double max_wait = 0.0;
  for (int i = 0; i < 6; ++i) {
    GlobalSystem::SubmitOptions submit;
    submit.arrival_ms = 0.0;
    auto r = gis.Submit("SELECT COUNT(*) FROM orders WHERE oid > " +
                            std::to_string(i),
                        submit);
    if (r.ok()) {
      ++admitted;
      max_wait = std::max(max_wait, r->metrics.admission_wait_ms);
    } else {
      ASSERT_TRUE(r.status().IsOverloaded()) << r.status().ToString();
      EXPECT_NE(r.status().message().find("wait queue is full"),
                std::string::npos)
          << r.status().ToString();
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(shed, 2);
  EXPECT_GT(max_wait, 0.0);

  // Shed queries appear in gis.queries with their reason and no
  // traffic; executed ones carry their queue wait.
  auto log = gis.Query(
      "SELECT shed_reason, messages, admission_wait_ms FROM gis.queries "
      "ORDER BY id");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  int shed_rows = 0;
  for (const auto& row : log->batch.rows()) {
    if (row[0].AsString() == "queue_full") {
      ++shed_rows;
      EXPECT_EQ(row[1].AsInt(), 0);
    }
  }
  EXPECT_EQ(shed_rows, 2);
}

TEST(AdmissionSystemTest, DeadlineShedsWhenWaitUnmeetable) {
  PlannerOptions options;
  options.max_concurrent_queries = 1;
  options.admission_max_wait_ms = 0.01;  // any queueing busts it
  GlobalSystem gis(options);
  Build(&gis);

  GlobalSystem::SubmitOptions at_zero;
  at_zero.arrival_ms = 0.0;
  ASSERT_TRUE(gis.Submit("SELECT COUNT(*) FROM orders", at_zero).ok());
  auto r = gis.Submit("SELECT COUNT(*) FROM clients", at_zero);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOverloaded()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("deadline"), std::string::npos)
      << r.status().ToString();

  // After the backlog drains (virtual clock), the same query runs.
  auto later = gis.Query("SELECT COUNT(*) FROM clients");
  EXPECT_TRUE(later.ok()) << later.status().ToString();
}

TEST(AdmissionSystemTest, HostileQueryFailsOnMemoryBudget) {
  PlannerOptions options;
  options.query_mem_bytes = 100 * 1000;  // ~1250 wide rows
  GlobalSystem gis(options);
  Build(&gis, /*big_rows=*/3000);

  // Materializing 3000 rows costs ~3000·(32+24·3) bytes, over budget.
  auto r = gis.Query("SELECT oid, cid, total FROM orders");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOverloaded()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("memory budget"), std::string::npos)
      << r.status().ToString();

  // The grant died with the query: nothing outstanding beyond the
  // sources' resident buffer-pool frames, and small queries still run.
  EXPECT_EQ(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());
  auto ok = gis.Query("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();

  auto snap = gis.Query(
      "SELECT shed_memory_budget, mem_peak_bytes FROM gis.admission");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->batch.rows()[0][0].AsInt(), 1);
  EXPECT_GT(snap->batch.rows()[0][1].AsInt(), 0);

  auto log = gis.Query(
      "SELECT sql FROM gis.queries WHERE shed_reason = 'memory_budget'");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->batch.num_rows(), 1u);
}

TEST(AdmissionSystemTest, GovernorOffBypassesAdmissionEntirely) {
  PlannerOptions options;
  options.admission_control = false;
  options.max_concurrent_queries = 1;
  GlobalSystem gis(options);
  Build(&gis);
  // Every burst query runs: nothing sheds without the governor.
  for (int i = 0; i < 4; ++i) {
    GlobalSystem::SubmitOptions submit;
    submit.arrival_ms = 0.0;
    EXPECT_TRUE(gis.Submit("SELECT COUNT(*) FROM orders", submit).ok());
  }
  auto snap = gis.Query("SELECT admitted FROM gis.admission");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->batch.rows()[0][0].AsInt(), 0);
}

// ---------------------------------------------------------------------------
// Health-aware replica routing (the failover-reorder satellite)
// ---------------------------------------------------------------------------

class RoutingTest : public ::testing::Test {
 protected:
  void SetUpSystem(GlobalSystem* gis) {
    for (int i = 0; i < 2; ++i) {
      const std::string name = "replica" + std::to_string(i);
      auto src = *gis->CreateSource(name, SourceDialect::kRelational);
      ASSERT_TRUE(
          src->ExecuteLocalSql("CREATE TABLE inv (id bigint, qty bigint)")
              .ok());
      ASSERT_TRUE(src->ExecuteLocalSql(
                        "INSERT INTO inv VALUES (1, 10), (2, 20), (3, 30)")
                      .ok());
      ASSERT_TRUE(gis->ImportTable(name, "inv", "inv_" + name).ok());
    }
    ASSERT_TRUE(
        gis->CreateReplicatedView("inventory", {"inv_replica0",
                                                "inv_replica1"})
            .ok());
    // Make replica0 the planned primary regardless of cost noise.
    ASSERT_TRUE(gis->catalog().SetLatencyHint("replica0", 1.0).ok());
    ASSERT_TRUE(gis->catalog().SetLatencyHint("replica1", 2.0).ok());
  }

  /// Downs the primary, burns one query to push its streak past the
  /// suspect threshold, then measures the *next* query.
  QueryMetrics MeasureAfterDetection(bool health_aware) {
    PlannerOptions options;
    options.health_aware_routing = health_aware;
    GlobalSystem gis(options);
    SetUpSystem(&gis);
    gis.set_retry_policy(RetryPolicy::Standard(6, /*seed=*/3));
    gis.network().SetHostDown("replica0", true);
    auto detect = gis.Query("SELECT SUM(qty) FROM inventory");
    EXPECT_TRUE(detect.ok()) << detect.status().ToString();
    EXPECT_EQ(gis.health().StateOf("replica0"),
              SourceHealthState::kSuspect);
    auto measured = gis.Query("SELECT qty FROM inventory WHERE id = 2");
    EXPECT_TRUE(measured.ok()) << measured.status().ToString();
    EXPECT_EQ(measured->batch.rows()[0][0].AsInt(), 20);
    return measured->metrics;
  }
};

TEST_F(RoutingTest, SuspectPrimaryIsTriedAfterHealthyReplica) {
  const QueryMetrics routed = MeasureAfterDetection(/*health_aware=*/true);
  const QueryMetrics blind = MeasureAfterDetection(/*health_aware=*/false);
  // Attempts against a down host send no messages either way; the
  // saving is the detection-timeout burn the reorder avoids.
  EXPECT_EQ(routed.messages, 1);
  EXPECT_EQ(blind.messages, 1);
  EXPECT_LT(routed.elapsed_ms, blind.elapsed_ms);
  EXPECT_EQ(routed.retries, 0);  // healthy replica answered first try
  EXPECT_GT(blind.retries, 0);   // full retry budget burned on primary
}

TEST_F(RoutingTest, HealthyCandidatesKeepPlanOrder) {
  GlobalSystem gis;
  SetUpSystem(&gis);
  // All healthy: routing must not disturb the cost-chosen primary.
  auto r = gis.Query("SELECT SUM(qty) FROM inventory");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->metrics.messages, 1);
  const auto s0 = gis.health().SnapshotOf("replica0");
  EXPECT_GT(s0.requests, 0);  // import traffic plus the fragment
  EXPECT_EQ(gis.health().SnapshotOf("replica1").errors, 0);
}

// ---------------------------------------------------------------------------
// Env knobs
// ---------------------------------------------------------------------------

TEST(PlannerOptionsEnvTest, FromEnvParsesCleanValuesAndKeepsDefaults) {
  setenv("GISQL_MAX_CONCURRENT", "3", 1);
  setenv("GISQL_ADMISSION_WAIT_MS", "250.5", 1);
  setenv("GISQL_CIRCUIT_BREAKER", "on", 1);
  setenv("GISQL_ADMISSION_CONTROL", "off", 1);
  setenv("GISQL_QUERY_MEM_BYTES", "12MB", 1);  // dirty: ignored
  setenv("GISQL_BREAKER_SEED", "99", 1);
  const PlannerOptions o = PlannerOptions::FromEnv();
  unsetenv("GISQL_MAX_CONCURRENT");
  unsetenv("GISQL_ADMISSION_WAIT_MS");
  unsetenv("GISQL_CIRCUIT_BREAKER");
  unsetenv("GISQL_ADMISSION_CONTROL");
  unsetenv("GISQL_QUERY_MEM_BYTES");
  unsetenv("GISQL_BREAKER_SEED");

  EXPECT_EQ(o.max_concurrent_queries, 3);
  EXPECT_EQ(o.admission_max_wait_ms, 250.5);
  EXPECT_TRUE(o.circuit_breaker);
  EXPECT_FALSE(o.admission_control);
  EXPECT_EQ(o.breaker_seed, 99u);
  EXPECT_EQ(o.query_mem_bytes, PlannerOptions().query_mem_bytes)
      << "a malformed value must leave the compiled-in default intact";
}

// ---------------------------------------------------------------------------
// Schedule independence
// ---------------------------------------------------------------------------

TEST(AdmissionDeterminismTest, SerialAndPooledDecisionsAreIdentical) {
  // Single-fragment queries cost the same simulated time under serial
  // and pooled execution, so the whole decision trace — including the
  // gis.admission and gis.queries renderings — must match byte for
  // byte across executor modes.
  auto run = [](bool parallel) {
    PlannerOptions options;
    options.parallel_execution = parallel;
    options.max_concurrent_queries = 1;
    options.admission_queue_limit = 4;
    options.admission_max_wait_ms = 60.0;
    auto gis = std::make_unique<GlobalSystem>(options);
    Build(gis.get());
    std::string out;
    for (int i = 0; i < 8; ++i) {
      GlobalSystem::SubmitOptions submit;
      submit.arrival_ms = i * 5.0;
      submit.priority = i % 3;
      auto r = gis->Submit("SELECT COUNT(*) FROM orders WHERE cid = " +
                               std::to_string(i % 4),
                           submit);
      out += r.ok() ? "admit wait=" + std::to_string(
                                          r->metrics.admission_wait_ms)
                    : "shed: " + r.status().ToString();
      out += "\n";
    }
    for (const char* q :
         {"SELECT * FROM gis.admission",
          "SELECT id, sql, messages, shed_reason, admission_wait_ms "
          "FROM gis.queries ORDER BY id"}) {
      auto r = gis->Query(q);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) out += r->batch.ToString(1 << 20);
    }
    return out;
  };
  const std::string serial = run(false);
  EXPECT_EQ(serial, run(true));
  EXPECT_NE(serial.find("shed"), std::string::npos)
      << "the schedule must actually exercise shedding:\n" << serial;
}

TEST(AdmissionDeterminismTest, PooledRunsReplayIdentically) {
  // Multi-fragment queries under the worker pool: thread timing varies
  // wall-clock-wise, but admission consumes only simulated quantities.
  auto run = [] {
    PlannerOptions options;
    options.parallel_execution = true;
    options.max_concurrent_queries = 2;
    options.admission_queue_limit = 3;
    options.admission_max_wait_ms = 120.0;
    auto gis = std::make_unique<GlobalSystem>(options);
    Build(gis.get());
    std::string out;
    for (int i = 0; i < 10; ++i) {
      GlobalSystem::SubmitOptions submit;
      submit.arrival_ms = i * 3.0;
      auto r = gis->Submit(
          "SELECT total FROM orders JOIN clients ON orders.cid = "
          "clients.cid WHERE oid < " + std::to_string(8 + i) +
          " ORDER BY oid",
          submit);
      out += r.ok() ? "admit wait=" +
                          std::to_string(r->metrics.admission_wait_ms)
                    : "shed: " + r.status().ToString();
      out += "\n";
    }
    auto snap = gis->Query("SELECT * FROM gis.admission");
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    if (snap.ok()) out += snap->batch.ToString(1 << 20);
    return out;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace gisql
