/// Unit tests for the component-system storage engine: tables, indexes,
/// statistics.

#include <gtest/gtest.h>

#include "expr/binder.h"
#include "sql/parser.h"
#include "storage/table.h"

namespace gisql {
namespace {

SchemaPtr ItemsSchema() {
  return std::make_shared<Schema>(
      std::vector<Field>{{"id", TypeId::kInt64, false, "items"},
                         {"price", TypeId::kDouble, true, "items"},
                         {"name", TypeId::kString, true, "items"}});
}

TablePtr MakeItems(int n) {
  auto table = std::make_shared<Table>("items", ItemsSchema());
  for (int i = 0; i < n; ++i) {
    Row row = {Value::Int(i), Value::Double(i * 1.5),
               Value::String("item" + std::to_string(i % 10))};
    EXPECT_TRUE(table->Insert(std::move(row)).ok());
  }
  return table;
}

TEST(TableTest, InsertValidatesArity) {
  auto table = std::make_shared<Table>("t", ItemsSchema());
  EXPECT_TRUE(table->Insert({Value::Int(1)}).IsInvalidArgument());
}

TEST(TableTest, InsertValidatesTypes) {
  auto table = std::make_shared<Table>("t", ItemsSchema());
  Status st = table->Insert(
      {Value::String("no"), Value::Double(1), Value::String("x")});
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(TableTest, InsertAppliesImplicitCasts) {
  auto table = std::make_shared<Table>("t", ItemsSchema());
  // price column is DOUBLE; insert an INT64.
  ASSERT_TRUE(
      table->Insert({Value::Int(1), Value::Int(3), Value::String("x")}).ok());
  EXPECT_EQ(table->rows()[0][1].type(), TypeId::kDouble);
}

TEST(TableTest, NonNullableEnforced) {
  auto table = std::make_shared<Table>("t", ItemsSchema());
  Status st =
      table->Insert({Value::Null(), Value::Double(1), Value::String("x")});
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(TableTest, NullsTakeColumnType) {
  auto table = std::make_shared<Table>("t", ItemsSchema());
  ASSERT_TRUE(table->Insert({Value::Int(1), Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(table->rows()[0][1].type(), TypeId::kDouble);
  EXPECT_TRUE(table->rows()[0][1].is_null());
}

TEST(TableTest, DeleteByPredicate) {
  auto table = MakeItems(100);
  Schema schema = *table->schema();
  Binder binder(schema);
  auto ast = sql::ParseScalarExpr("id < 40");
  ExprPtr pred = *binder.BindScalar(**ast);
  EXPECT_EQ(*table->Delete(*pred), 40);
  EXPECT_EQ(table->num_rows(), 60);
}

TEST(HashIndexTest, LookupAfterBuild) {
  auto table = MakeItems(100);
  ASSERT_TRUE(table->CreateHashIndex(2).ok());  // name column, 10 distinct
  HashIndex* idx = table->GetHashIndex(2);
  ASSERT_NE(idx, nullptr);
  const auto& hits = idx->Lookup(Value::String("item3"));
  EXPECT_EQ(hits.size(), 10u);
  for (size_t rid : hits) {
    EXPECT_EQ(table->rows()[rid][2].AsString(), "item3");
  }
  EXPECT_TRUE(idx->Lookup(Value::String("nope")).empty());
  EXPECT_TRUE(idx->Lookup(Value::Null()).empty());
}

TEST(HashIndexTest, RebuildsAfterWrite) {
  auto table = MakeItems(10);
  ASSERT_TRUE(table->CreateHashIndex(0).ok());
  EXPECT_EQ(table->GetHashIndex(0)->Lookup(Value::Int(5)).size(), 1u);
  ASSERT_TRUE(
      table->Insert({Value::Int(5), Value::Double(0), Value::String("dup")})
          .ok());
  EXPECT_EQ(table->GetHashIndex(0)->Lookup(Value::Int(5)).size(), 2u);
}

TEST(HashIndexTest, DuplicateCreationRejected) {
  auto table = MakeItems(1);
  ASSERT_TRUE(table->CreateHashIndex(0).ok());
  EXPECT_TRUE(table->CreateHashIndex(0).IsAlreadyExists());
  EXPECT_TRUE(table->CreateHashIndex(99).IsInvalidArgument());
  EXPECT_EQ(table->GetHashIndex(1), nullptr);
}

TEST(OrderedIndexTest, RangeLookups) {
  auto table = MakeItems(100);
  ASSERT_TRUE(table->CreateOrderedIndex(0).ok());
  OrderedIndex* idx = table->GetOrderedIndex(0);
  ASSERT_NE(idx, nullptr);
  // 10 <= id <= 19
  auto rids = idx->Range(Value::Int(10), true, Value::Int(19), true);
  EXPECT_EQ(rids.size(), 10u);
  // 10 < id < 19
  rids = idx->Range(Value::Int(10), false, Value::Int(19), false);
  EXPECT_EQ(rids.size(), 8u);
  // unbounded low
  rids = idx->Range(Value::Null(), true, Value::Int(4), true);
  EXPECT_EQ(rids.size(), 5u);
  // unbounded high
  rids = idx->Range(Value::Int(95), true, Value::Null(), true);
  EXPECT_EQ(rids.size(), 5u);
}

TEST(StatsTest, ExactStatistics) {
  auto table = MakeItems(100);
  const TableStats& stats = table->Stats();
  EXPECT_EQ(stats.row_count, 100);
  ASSERT_EQ(stats.columns.size(), 3u);
  EXPECT_EQ(stats.columns[0].min.AsInt(), 0);
  EXPECT_EQ(stats.columns[0].max.AsInt(), 99);
  EXPECT_EQ(stats.columns[0].distinct_count, 100);
  EXPECT_EQ(stats.columns[2].distinct_count, 10);
  EXPECT_EQ(stats.columns[0].null_count, 0);
}

TEST(StatsTest, NullCounting) {
  auto table = std::make_shared<Table>("t", ItemsSchema());
  ASSERT_TRUE(table->Insert({Value::Int(1), Value::Null(), Value::Null()}).ok());
  ASSERT_TRUE(
      table->Insert({Value::Int(2), Value::Double(5), Value::Null()}).ok());
  const TableStats& stats = table->Stats();
  EXPECT_EQ(stats.columns[1].null_count, 1);
  EXPECT_EQ(stats.columns[2].null_count, 2);
  EXPECT_TRUE(stats.columns[2].min.is_null());
}

TEST(StatsTest, CachedUntilWrite) {
  auto table = MakeItems(5);
  EXPECT_EQ(table->Stats().row_count, 5);
  ASSERT_TRUE(
      table->Insert({Value::Int(6), Value::Double(0), Value::String("x")})
          .ok());
  EXPECT_EQ(table->Stats().row_count, 6);
}

TEST(StatsTest, SelectivityEstimates) {
  auto table = MakeItems(100);
  const TableStats& stats = table->Stats();
  EXPECT_NEAR(stats.EqSelectivity(0), 0.01, 1e-9);
  EXPECT_NEAR(stats.EqSelectivity(2), 0.1, 1e-9);
  // id < 50 over [0,99] ≈ 0.505
  double sel = stats.RangeSelectivity(0, Value::Int(50), true, false);
  EXPECT_GT(sel, 0.4);
  EXPECT_LT(sel, 0.6);
  // id > 90 ≈ 0.09
  sel = stats.RangeSelectivity(0, Value::Int(90), false, false);
  EXPECT_LT(sel, 0.2);
}

TEST(StorageEngineTest, CreateGetDrop) {
  StorageEngine engine;
  ASSERT_TRUE(engine.CreateTable("orders", ItemsSchema()).ok());
  EXPECT_TRUE(engine.CreateTable("orders", ItemsSchema())
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(engine.GetTable("ORDERS").ok());  // case-insensitive
  EXPECT_TRUE(engine.GetTable("nope").status().IsNotFound());
  ASSERT_TRUE(engine.CreateTable("b", ItemsSchema()).ok());
  auto names = engine.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "b");
  EXPECT_TRUE(engine.DropTable("orders").ok());
  EXPECT_TRUE(engine.DropTable("orders").IsNotFound());
}

}  // namespace
}  // namespace gisql
