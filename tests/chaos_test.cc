/// Seeded chaos & differential testing: the retail-federation corpus
/// runs under dozens of deterministic fault schedules with mediator
/// retry enabled. Every query must either return row-for-row the
/// fault-free oracle's answer (the faults were recoverable) or fail
/// with a typed transport error — never a wrong answer, never a crash,
/// and identically on every replay of the same seed.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/global_system.h"
#include "workload/generator.h"

namespace gisql {
namespace {

/// Small federation so 50 schedules stay fast; data is identical for
/// every system built from the same spec.
WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.seed = 7;
  spec.num_sites = 3;
  spec.num_customers = 60;
  spec.num_products = 25;
  spec.orders_per_site = 120;
  return spec;
}

const std::vector<std::string>& Corpus() {
  static const std::vector<std::string> queries = {
      "SELECT COUNT(*), SUM(amount) FROM sales",
      "SELECT region, SUM(amount) FROM sales JOIN customers "
      "ON sales.cid = customers.cid GROUP BY region ORDER BY region",
      "SELECT pname, SUM(qty) FROM sales JOIN products "
      "ON sales.pid = products.pid GROUP BY pname "
      "ORDER BY SUM(qty) DESC, pname LIMIT 5",
      "SELECT cid, name FROM customers WHERE cid < 10 ORDER BY cid",
      "SELECT day, COUNT(*) FROM sales WHERE qty > 2 GROUP BY day "
      "ORDER BY day",
  };
  return queries;
}

/// Serial execution keeps the per-link message sequence — the fault
/// schedule's randomness domain — independent of thread scheduling.
PlannerOptions SerialOptions() {
  PlannerOptions options;
  options.parallel_execution = false;
  return options;
}

std::string Rows(const QueryResult& r) {
  return r.batch.ToString(1 << 20);
}

class ChaosDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosDifferential, MatchesOracleOrFailsTyped) {
  const uint64_t seed = GetParam();

  GlobalSystem oracle(SerialOptions());
  ASSERT_TRUE(BuildRetailFederation(&oracle, SmallSpec()).ok());

  GlobalSystem chaotic(SerialOptions());
  ASSERT_TRUE(BuildRetailFederation(&chaotic, SmallSpec()).ok());
  chaotic.set_retry_policy(RetryPolicy::Standard(6, seed));
  chaotic.network().InstallFaults(seed, FaultProfile::Chaos(0.5));

  int recovered = 0;
  for (const auto& q : Corpus()) {
    auto want = oracle.Query(q);
    ASSERT_TRUE(want.ok()) << want.status().ToString() << " for: " << q;

    auto got = chaotic.Query(q);
    if (got.ok()) {
      EXPECT_EQ(Rows(*got), Rows(*want)) << "seed " << seed << ": " << q;
      ++recovered;
    } else {
      // Retry exhaustion must surface as a typed transport error, never
      // a wrong answer or an untyped Internal.
      EXPECT_TRUE(got.status().IsNetworkError() ||
                  got.status().IsSerializationError())
          << "seed " << seed << ": " << got.status().ToString()
          << " for: " << q;
    }
  }
  // The profile is all-transient faults and the policy retries 6 times,
  // so a schedule that kills the whole corpus would be a retry bug.
  EXPECT_GT(recovered, 0) << "seed " << seed;
}

TEST_P(ChaosDifferential, SameSeedReplaysIdentically) {
  const uint64_t seed = GetParam();
  std::vector<std::string> transcripts[2];
  for (int run = 0; run < 2; ++run) {
    GlobalSystem gis(SerialOptions());
    ASSERT_TRUE(BuildRetailFederation(&gis, SmallSpec()).ok());
    gis.set_retry_policy(RetryPolicy::Standard(6, seed));
    gis.network().InstallFaults(seed, FaultProfile::Chaos(0.5));
    for (const auto& q : Corpus()) {
      auto r = gis.Query(q);
      if (r.ok()) {
        transcripts[run].push_back(
            "ok " + std::to_string(r->metrics.elapsed_ms) + " " +
            std::to_string(r->metrics.messages) + "\n" + Rows(*r));
      } else {
        transcripts[run].push_back("err " + r.status().ToString());
      }
    }
    // The replay must agree on accounting too, not just rows.
    transcripts[run].push_back(
        "retries=" +
        std::to_string(gis.network().metrics().Get("net.retries")) +
        " drops=" +
        std::to_string(gis.network().metrics().Get("net.faults.drop")));
  }
  EXPECT_EQ(transcripts[0], transcripts[1]) << "seed " << seed;
}

// 50 schedules: seeds 9000..9049 (both tests share the range, so the
// differential and replay properties are checked for every schedule).
INSTANTIATE_TEST_SUITE_P(ChaosSchedules, ChaosDifferential,
                         ::testing::Range<uint64_t>(9000, 9050));

/// Fault-free differential over the executor's A/B switches: serial vs
/// pool of 1 vs pool of N must agree on rows AND on the simulated-time
/// accounting (parallelism is wall-clock only), and turning the
/// columnar wire + vectorized kernels off must agree on rows (bytes on
/// the wire legitimately differ between encodings).
TEST(PoolDifferential, PoolConfigsMatchSerialExactly) {
  struct Config {
    const char* name;
    bool parallel;
    int threads;
  };
  const Config configs[] = {
      {"serial", false, 0},
      {"pool1", true, 1},
      {"pool4", true, 4},
  };
  std::vector<std::vector<std::string>> transcripts;
  for (const auto& config : configs) {
    PlannerOptions options;
    options.parallel_execution = config.parallel;
    options.worker_threads = config.threads;
    GlobalSystem gis(options);
    ASSERT_TRUE(BuildRetailFederation(&gis, SmallSpec()).ok());
    std::vector<std::string> transcript;
    for (const auto& q : Corpus()) {
      auto r = gis.Query(q);
      ASSERT_TRUE(r.ok()) << config.name << ": " << r.status().ToString();
      transcript.push_back(std::to_string(r->metrics.elapsed_ms) + " " +
                           std::to_string(r->metrics.bytes_sent) + " " +
                           std::to_string(r->metrics.bytes_received) + " " +
                           std::to_string(r->metrics.messages) + "\n" +
                           Rows(*r));
    }
    transcripts.push_back(std::move(transcript));
  }
  EXPECT_EQ(transcripts[0], transcripts[1]) << "serial vs pool1";
  EXPECT_EQ(transcripts[0], transcripts[2]) << "serial vs pool4";
}

TEST(PoolDifferential, RowWireAndScalarKernelsMatchRows) {
  GlobalSystem modern;  // defaults: columnar wire + vectorized kernels
  ASSERT_TRUE(BuildRetailFederation(&modern, SmallSpec()).ok());

  PlannerOptions classic_options;
  classic_options.columnar_wire = false;
  classic_options.vectorized_execution = false;
  GlobalSystem classic(classic_options);
  ASSERT_TRUE(BuildRetailFederation(&classic, SmallSpec()).ok());

  for (const auto& q : Corpus()) {
    auto a = modern.Query(q);
    auto b = classic.Query(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString() << " for: " << q;
    ASSERT_TRUE(b.ok()) << b.status().ToString() << " for: " << q;
    EXPECT_EQ(Rows(*a), Rows(*b)) << q;
  }
}

/// The chaos differential with the pool on: thread scheduling may
/// reorder messages between links, so replay identity is a serial-only
/// property — but no schedule may ever produce a wrong answer or an
/// untyped error, pooled or not.
class ChaosPoolDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosPoolDifferential, PooledChaosMatchesOracleOrFailsTyped) {
  const uint64_t seed = GetParam();

  GlobalSystem oracle(SerialOptions());
  ASSERT_TRUE(BuildRetailFederation(&oracle, SmallSpec()).ok());

  PlannerOptions pooled;
  pooled.worker_threads = 4;
  GlobalSystem chaotic(pooled);
  ASSERT_TRUE(BuildRetailFederation(&chaotic, SmallSpec()).ok());
  chaotic.set_retry_policy(RetryPolicy::Standard(6, seed));
  chaotic.network().InstallFaults(seed, FaultProfile::Chaos(0.5));

  for (const auto& q : Corpus()) {
    auto want = oracle.Query(q);
    ASSERT_TRUE(want.ok()) << want.status().ToString() << " for: " << q;
    auto got = chaotic.Query(q);
    if (got.ok()) {
      EXPECT_EQ(Rows(*got), Rows(*want)) << "seed " << seed << ": " << q;
    } else {
      EXPECT_TRUE(got.status().IsNetworkError() ||
                  got.status().IsSerializationError())
          << "seed " << seed << ": " << got.status().ToString()
          << " for: " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChaosSchedules, ChaosPoolDifferential,
                         ::testing::Range<uint64_t>(9100, 9110));

TEST(ChaosPermanentFailure, DeadSourceIsNamedAndTyped) {
  GlobalSystem gis(SerialOptions());
  ASSERT_TRUE(BuildRetailFederation(&gis, SmallSpec()).ok());
  gis.set_retry_policy(RetryPolicy::Standard(4, 1));
  gis.network().InstallFaults(11, FaultProfile{});  // targeted only
  // Permanently partition site1: every message to it is swallowed.
  gis.network().faults()->InjectOn("site1", /*opcode=*/-1,
                                   FaultKind::kOutage, 1 << 30);

  // The "sales" union view reads every site; site1 is unrecoverable.
  auto result = gis.Query("SELECT COUNT(*) FROM sales");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNetworkError())
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("site1"), std::string::npos)
      << result.status().ToString();

  // Queries that never touch site1 still work.
  auto ok = gis.Query("SELECT COUNT(*) FROM customers");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(ChaosPermanentFailure, TransientOutageRecoversWithRetry) {
  GlobalSystem gis(SerialOptions());
  ASSERT_TRUE(BuildRetailFederation(&gis, SmallSpec()).ok());

  GlobalSystem oracle(SerialOptions());
  ASSERT_TRUE(BuildRetailFederation(&oracle, SmallSpec()).ok());

  gis.set_retry_policy(RetryPolicy::Standard(5, 2));
  FaultProfile profile;
  profile.outage_messages = 2;
  gis.network().InstallFaults(12, profile);
  // One transient outage at hq: the first attempt and the next two
  // messages on the link die; retry #4 gets through.
  gis.network().faults()->InjectOn("hq", /*opcode=*/-1, FaultKind::kOutage,
                                   1);

  const std::string q = "SELECT COUNT(*) FROM customers";
  auto got = gis.Query(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = oracle.Query(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(Rows(*got), Rows(*want));
  // The recovery was paid for in simulated time: strictly slower than
  // the clean run.
  EXPECT_GT(got->metrics.elapsed_ms, want->metrics.elapsed_ms);
  EXPECT_GT(gis.network().metrics().Get("net.retries"), 0);
}

}  // namespace
}  // namespace gisql
