/// Health-state transitions under deterministic fault schedules: the
/// per-source tracker must walk healthy → degraded → suspect as a
/// targeted outage streak grows, recover once traffic succeeds again,
/// and render gis.sources byte-identically across replays of a seed.

#include <gtest/gtest.h>

#include <string>

#include "core/global_system.h"
#include "workload/generator.h"

namespace gisql {
namespace {

/// Serial execution keeps the per-link message sequence — the fault
/// schedule's randomness domain — independent of thread scheduling.
PlannerOptions SerialOptions() {
  PlannerOptions options;
  options.parallel_execution = false;
  return options;
}

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.seed = 11;
  spec.num_sites = 2;
  spec.num_customers = 30;
  spec.num_products = 10;
  spec.orders_per_site = 60;
  return spec;
}

class HealthChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(BuildRetailFederation(&gis_, SmallSpec()).ok());
    gis_.set_retry_policy(RetryPolicy::Standard(8, /*seed=*/3));
    // A schedule with zero probabilistic faults: only InjectOn fires.
    gis_.network().InstallFaults(/*seed=*/3, FaultProfile{});
  }

  /// One cheap remote query against site0 (a single fragment RPC).
  void Probe() { (void)gis_.Query("SELECT COUNT(*) FROM sales_site0"); }

  GlobalSystem gis_;
};

TEST_F(HealthChaosTest, OutageStreakWalksStatesAndRecovers) {
  EXPECT_EQ(gis_.health().StateOf("site0"), SourceHealthState::kHealthy);

  // Each drop consumes one RPC attempt; retries push the streak up
  // within a single query, so arm exactly kDegradedStreak drops.
  gis_.network().faults()->InjectOn(
      "site0", /*opcode=*/-1, FaultKind::kDrop,
      static_cast<int>(SourceHealthTracker::kDegradedStreak));
  Probe();
  EXPECT_EQ(gis_.health().StateOf("site0"), SourceHealthState::kHealthy)
      << "streak broken by the recovered attempt";

  // A streak long enough to outlast the retry budget: suspect.
  gis_.network().faults()->InjectOn("site0", /*opcode=*/-1, FaultKind::kDrop,
                                    1000);
  Probe();
  const auto snap = gis_.health().SnapshotOf("site0");
  EXPECT_EQ(snap.state, SourceHealthState::kSuspect);
  EXPECT_GE(snap.consecutive_failures, SourceHealthTracker::kSuspectStreak);
  EXPECT_GT(snap.errors, 0);
  EXPECT_FALSE(snap.last_error.empty());
  EXPECT_GT(snap.retries, 0);

  // Clear the injection; successful traffic resets the streak and — as
  // the sliding window fills with successes — the error-ratio rule ages
  // out, returning the source to healthy.
  gis_.network().ClearFaults();
  for (int i = 0; i < 40; ++i) Probe();
  EXPECT_EQ(gis_.health().StateOf("site0"), SourceHealthState::kHealthy);

  // The other source never saw a fault.
  EXPECT_EQ(gis_.health().SnapshotOf("site1").errors, 0);
}

TEST_F(HealthChaosTest, MidStreakIsDegraded) {
  // Arm enough drops to fail one whole query (all retry attempts), then
  // let the next query succeed: the streak at observation time sits
  // between the degraded and suspect thresholds only if the retry
  // budget lands there — instead, check via the window ratio: a fully
  // failed query leaves errors in the 32-attempt window.
  gis_.network().faults()->InjectOn("site0", /*opcode=*/-1, FaultKind::kDrop,
                                    8);
  Probe();  // fails after exhausting its 8 attempts
  const auto snap = gis_.health().SnapshotOf("site0");
  EXPECT_EQ(snap.state, SourceHealthState::kSuspect);

  // One successful query breaks the streak but the window still holds
  // eight failures out of ≤ nine recent attempts: degraded, not healthy.
  Probe();
  EXPECT_EQ(gis_.health().StateOf("site0"), SourceHealthState::kDegraded);
}

TEST(HealthChaosDeterminismTest, SameSeedRendersIdenticalSources) {
  auto run = [](uint64_t seed) {
    GlobalSystem gis(SerialOptions());
    EXPECT_TRUE(BuildRetailFederation(&gis, SmallSpec()).ok());
    gis.set_retry_policy(RetryPolicy::Standard(6, seed));
    gis.network().InstallFaults(seed, FaultProfile::Chaos(0.6));
    for (const char* q :
         {"SELECT COUNT(*) FROM sales",
          "SELECT cid, name FROM customers WHERE cid < 5 ORDER BY cid",
          "SELECT pid, SUM(qty) FROM sales GROUP BY pid ORDER BY pid"}) {
      (void)gis.Query(q);  // outcome may be ok or typed failure
    }
    auto rows = gis.Query("SELECT * FROM gis.sources ORDER BY source");
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? rows->batch.ToString(1 << 20) : std::string();
  };
  const std::string a = run(21);
  const std::string b = run(21);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace gisql
