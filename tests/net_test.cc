/// Unit tests for the simulated network: link timing model, RPC routing,
/// accounting, failure injection.

#include <gtest/gtest.h>

#include "net/sim_network.h"

namespace gisql {
namespace {

/// Echo handler that reports fixed processing time.
class EchoHandler : public RpcHandler {
 public:
  explicit EchoHandler(double processing_ms = 0.0)
      : processing_ms_(processing_ms) {}

  Result<std::vector<uint8_t>> Handle(uint8_t opcode,
                                      const std::vector<uint8_t>& request,
                                      double* processing_ms) override {
    if (processing_ms != nullptr) *processing_ms = processing_ms_;
    if (opcode == 0xff) return Status::ExecutionError("boom");
    std::vector<uint8_t> out = request;
    out.push_back(opcode);
    return out;
  }

 private:
  double processing_ms_;
};

TEST(LinkSpecTest, TransferTimeModel) {
  LinkSpec link{10.0, 100.0};  // 10ms latency, 100 Mbps
  // Zero bytes: just latency.
  EXPECT_DOUBLE_EQ(link.TransferTimeMs(0), 10.0);
  // 12.5 MB at 100 Mbps = 1 second.
  EXPECT_NEAR(link.TransferTimeMs(12'500'000), 10.0 + 1000.0, 1e-6);
  // Doubling bandwidth halves the serialization term.
  LinkSpec fast{10.0, 200.0};
  EXPECT_NEAR(fast.TransferTimeMs(12'500'000), 10.0 + 500.0, 1e-6);
}

TEST(SimNetworkTest, RegisterAndCall) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  EXPECT_TRUE(net.RegisterHost("s1", &handler).IsAlreadyExists());
  EXPECT_TRUE(net.RegisterHost("bad", nullptr).IsInvalidArgument());

  auto result = net.Call("mediator", "s1", 7, {1, 2, 3});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->payload.size(), 4u);
  EXPECT_EQ(result->payload[3], 7);
  EXPECT_GT(result->elapsed_ms, 0.0);
  EXPECT_GT(result->bytes_sent, 3);
  EXPECT_GT(result->bytes_received, 4);
}

TEST(SimNetworkTest, UnknownHostIsNetworkError) {
  SimNetwork net;
  EXPECT_TRUE(net.Call("m", "ghost", 1, {}).status().IsNetworkError());
}

TEST(SimNetworkTest, FailureInjection) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  net.SetHostDown("s1", true);
  EXPECT_TRUE(net.Call("m", "s1", 1, {}).status().IsNetworkError());
  net.SetHostDown("s1", false);
  EXPECT_TRUE(net.Call("m", "s1", 1, {}).ok());
}

TEST(SimNetworkTest, HandlerErrorsPropagate) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  auto result = net.Call("m", "s1", 0xff, {});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsExecutionError());
  // The failed call still counted as a message.
  EXPECT_EQ(net.metrics().Get("net.messages"), 1);
}

TEST(SimNetworkTest, MetricsAccumulate) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  ASSERT_TRUE(net.Call("m", "s1", 1, std::vector<uint8_t>(100)).ok());
  ASSERT_TRUE(net.Call("m", "s1", 1, std::vector<uint8_t>(200)).ok());
  EXPECT_EQ(net.metrics().Get("net.messages"), 2);
  EXPECT_EQ(net.metrics().Get("net.bytes_sent"), 100 + 16 + 200 + 16);
  EXPECT_GT(net.metrics().Get("net.bytes.s1"), 0);
}

TEST(SimNetworkTest, PerLinkConfiguration) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("near", &handler).ok());
  ASSERT_TRUE(net.RegisterHost("far", &handler).ok());
  net.set_default_link({1.0, 1000.0});
  net.SetLink("m", "far", {100.0, 10.0});

  auto near_result = net.Call("m", "near", 1, std::vector<uint8_t>(1000));
  auto far_result = net.Call("m", "far", 1, std::vector<uint8_t>(1000));
  ASSERT_TRUE(near_result.ok());
  ASSERT_TRUE(far_result.ok());
  EXPECT_GT(far_result->elapsed_ms, near_result->elapsed_ms * 10);
  // Link lookup is symmetric.
  EXPECT_DOUBLE_EQ(net.GetLink("far", "m").latency_ms, 100.0);
}

TEST(SimNetworkTest, ProcessingTimeAddsToElapsed) {
  SimNetwork net;
  EchoHandler slow(500.0);
  EchoHandler fast(0.0);
  ASSERT_TRUE(net.RegisterHost("slow", &slow).ok());
  ASSERT_TRUE(net.RegisterHost("fast", &fast).ok());
  auto s = net.Call("m", "slow", 1, {});
  auto f = net.Call("m", "fast", 1, {});
  EXPECT_NEAR(s->elapsed_ms - f->elapsed_ms, 500.0, 1e-6);
}

TEST(SimNetworkTest, DeterministicTiming) {
  auto run = [] {
    SimNetwork net;
    EchoHandler handler(1.0);
    (void)net.RegisterHost("s1", &handler);
    net.set_default_link({7.0, 50.0});
    auto r = net.Call("m", "s1", 1, std::vector<uint8_t>(4096));
    return r->elapsed_ms;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(SimNetworkTest, HostLifecycle) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("a", &handler).ok());
  ASSERT_TRUE(net.RegisterHost("b", &handler).ok());
  auto names = net.HostNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  ASSERT_TRUE(net.UnregisterHost("a").ok());
  EXPECT_TRUE(net.UnregisterHost("a").IsNotFound());
  EXPECT_TRUE(net.Call("m", "a", 1, {}).status().IsNetworkError());
}

}  // namespace
}  // namespace gisql
