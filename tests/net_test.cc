/// Unit tests for the simulated network: link timing model, RPC routing,
/// accounting, failure injection (binary and seeded), and retry/backoff.

#include <gtest/gtest.h>

#include "net/retry.h"
#include "net/sim_network.h"
#include "wire/protocol.h"

namespace gisql {
namespace {

/// Echo handler that reports fixed processing time.
class EchoHandler : public RpcHandler {
 public:
  explicit EchoHandler(double processing_ms = 0.0)
      : processing_ms_(processing_ms) {}

  Result<std::vector<uint8_t>> Handle(uint8_t opcode,
                                      const std::vector<uint8_t>& request,
                                      double* processing_ms) override {
    if (processing_ms != nullptr) *processing_ms = processing_ms_;
    if (opcode == 0xff) return Status::ExecutionError("boom");
    std::vector<uint8_t> out = request;
    out.push_back(opcode);
    return out;
  }

 private:
  double processing_ms_;
};

TEST(LinkSpecTest, TransferTimeModel) {
  LinkSpec link{10.0, 100.0};  // 10ms latency, 100 Mbps
  // Zero bytes: just latency.
  EXPECT_DOUBLE_EQ(link.TransferTimeMs(0), 10.0);
  // 12.5 MB at 100 Mbps = 1 second.
  EXPECT_NEAR(link.TransferTimeMs(12'500'000), 10.0 + 1000.0, 1e-6);
  // Doubling bandwidth halves the serialization term.
  LinkSpec fast{10.0, 200.0};
  EXPECT_NEAR(fast.TransferTimeMs(12'500'000), 10.0 + 500.0, 1e-6);
}

TEST(SimNetworkTest, RegisterAndCall) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  EXPECT_TRUE(net.RegisterHost("s1", &handler).IsAlreadyExists());
  EXPECT_TRUE(net.RegisterHost("bad", nullptr).IsInvalidArgument());

  auto result = net.Call("mediator", "s1", 7, {1, 2, 3});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->payload.size(), 4u);
  EXPECT_EQ(result->payload[3], 7);
  EXPECT_GT(result->elapsed_ms, 0.0);
  EXPECT_GT(result->bytes_sent, 3);
  EXPECT_GT(result->bytes_received, 4);
}

TEST(SimNetworkTest, UnknownHostIsNetworkError) {
  SimNetwork net;
  EXPECT_TRUE(net.Call("m", "ghost", 1, {}).status().IsNetworkError());
}

TEST(SimNetworkTest, FailureInjection) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  net.SetHostDown("s1", true);
  EXPECT_TRUE(net.Call("m", "s1", 1, {}).status().IsNetworkError());
  net.SetHostDown("s1", false);
  EXPECT_TRUE(net.Call("m", "s1", 1, {}).ok());
}

TEST(SimNetworkTest, HandlerErrorsPropagate) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  auto result = net.Call("m", "s1", 0xff, {});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsExecutionError());
  // The failed call still counted as a message.
  EXPECT_EQ(net.metrics().Get("net.messages"), 1);
}

TEST(SimNetworkTest, MetricsAccumulate) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  ASSERT_TRUE(net.Call("m", "s1", 1, std::vector<uint8_t>(100)).ok());
  ASSERT_TRUE(net.Call("m", "s1", 1, std::vector<uint8_t>(200)).ok());
  EXPECT_EQ(net.metrics().Get("net.messages"), 2);
  EXPECT_EQ(net.metrics().Get("net.bytes_sent"), 100 + 16 + 200 + 16);
  EXPECT_GT(net.metrics().Get("net.bytes.s1"), 0);
}

TEST(SimNetworkTest, PerLinkConfiguration) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("near", &handler).ok());
  ASSERT_TRUE(net.RegisterHost("far", &handler).ok());
  net.set_default_link({1.0, 1000.0});
  net.SetLink("m", "far", {100.0, 10.0});

  auto near_result = net.Call("m", "near", 1, std::vector<uint8_t>(1000));
  auto far_result = net.Call("m", "far", 1, std::vector<uint8_t>(1000));
  ASSERT_TRUE(near_result.ok());
  ASSERT_TRUE(far_result.ok());
  EXPECT_GT(far_result->elapsed_ms, near_result->elapsed_ms * 10);
  // Link lookup is symmetric.
  EXPECT_DOUBLE_EQ(net.GetLink("far", "m").latency_ms, 100.0);
}

TEST(SimNetworkTest, ProcessingTimeAddsToElapsed) {
  SimNetwork net;
  EchoHandler slow(500.0);
  EchoHandler fast(0.0);
  ASSERT_TRUE(net.RegisterHost("slow", &slow).ok());
  ASSERT_TRUE(net.RegisterHost("fast", &fast).ok());
  auto s = net.Call("m", "slow", 1, {});
  auto f = net.Call("m", "fast", 1, {});
  EXPECT_NEAR(s->elapsed_ms - f->elapsed_ms, 500.0, 1e-6);
}

TEST(SimNetworkTest, DeterministicTiming) {
  auto run = [] {
    SimNetwork net;
    EchoHandler handler(1.0);
    (void)net.RegisterHost("s1", &handler);
    net.set_default_link({7.0, 50.0});
    auto r = net.Call("m", "s1", 1, std::vector<uint8_t>(4096));
    return r->elapsed_ms;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(SimNetworkTest, HostLifecycle) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("a", &handler).ok());
  ASSERT_TRUE(net.RegisterHost("b", &handler).ok());
  auto names = net.HostNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  ASSERT_TRUE(net.UnregisterHost("a").ok());
  EXPECT_TRUE(net.UnregisterHost("a").IsNotFound());
  EXPECT_TRUE(net.Call("m", "a", 1, {}).status().IsNetworkError());
}

/// Counts handler invocations (for duplicate-delivery tests).
class CountingHandler : public RpcHandler {
 public:
  Result<std::vector<uint8_t>> Handle(uint8_t opcode,
                                      const std::vector<uint8_t>& request,
                                      double*) override {
    ++calls;
    std::vector<uint8_t> out = request;
    out.push_back(opcode);
    return out;
  }
  int calls = 0;
};

TEST(FaultScheduleTest, SameSeedReplaysSameDecisions) {
  const FaultProfile profile = FaultProfile::Chaos(1.0);
  FaultSchedule a(99, profile);
  FaultSchedule b(99, profile);
  FaultSchedule other(100, profile);
  int faults = 0, diverged = 0;
  for (uint64_t i = 0; i < 300; ++i) {
    auto da = a.Next("m", "s1", 5, i);
    auto db = b.Next("m", "s1", 5, i);
    EXPECT_EQ(da.kind, db.kind) << i;
    EXPECT_EQ(da.entropy, db.entropy) << i;
    if (da.kind != FaultKind::kNone) ++faults;
    if (da.kind != other.Next("m", "s1", 5, i).kind) ++diverged;
  }
  // Intensity 1.0 faults roughly a third of messages, and a different
  // seed produces a genuinely different schedule.
  EXPECT_GT(faults, 50);
  EXPECT_GT(diverged, 20);
}

TEST(FaultScheduleTest, TargetedOutageOpensWindow) {
  FaultSchedule sched(1, FaultProfile{});  // no probabilistic faults
  sched.InjectOn("s1", /*opcode=*/-1, FaultKind::kOutage, 1);
  EXPECT_EQ(sched.Next("m", "s1", 5, 0).kind, FaultKind::kOutage);
  // The default profile swallows the next outage_messages = 2 messages.
  EXPECT_EQ(sched.Next("m", "s1", 5, 1).kind, FaultKind::kOutage);
  EXPECT_EQ(sched.Next("m", "s1", 5, 2).kind, FaultKind::kOutage);
  EXPECT_EQ(sched.Next("m", "s1", 5, 3).kind, FaultKind::kNone);
  // Other links are unaffected.
  EXPECT_EQ(sched.Next("m", "s2", 5, 0).kind, FaultKind::kNone);
}

TEST(FaultScheduleTest, TargetedInjectionMatchesOpcode) {
  FaultSchedule sched(1, FaultProfile{});
  sched.InjectOn("s1", /*opcode=*/7, FaultKind::kDrop, 1);
  EXPECT_EQ(sched.Next("m", "s1", 5, 0).kind, FaultKind::kNone);
  EXPECT_EQ(sched.Next("m", "s1", 7, 1).kind, FaultKind::kDrop);
  EXPECT_EQ(sched.Next("m", "s1", 7, 2).kind, FaultKind::kNone);  // spent
}

TEST(SimNetworkFaultTest, DropChargesDetectionTimeout) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  net.InstallFaults(5, FaultProfile{});
  net.faults()->InjectOn("s1", -1, FaultKind::kDrop, 1);

  RpcAttempt a = net.CallAttempt("m", "s1", 1, {1, 2, 3});
  EXPECT_TRUE(a.status.IsNetworkError()) << a.status.ToString();
  EXPECT_EQ(a.fault, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(a.elapsed_ms, net.TimeoutMs("m", "s1"));
  EXPECT_EQ(net.metrics().Get("net.faults.drop"), 1);
  // The wasted request still crossed the wire.
  EXPECT_EQ(net.metrics().Get("net.bytes_sent"), 3 + 16);
  EXPECT_EQ(net.metrics().Get("net.bytes_received"), 0);
}

TEST(SimNetworkFaultTest, CorruptionCaughtByChecksum) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  net.InstallFaults(5, FaultProfile{});
  net.faults()->InjectOn("s1", -1, FaultKind::kCorrupt, 1);

  RpcAttempt a = net.CallAttempt("m", "s1", 1, {1, 2, 3});
  EXPECT_TRUE(a.status.IsSerializationError()) << a.status.ToString();
  EXPECT_EQ(net.metrics().Get("net.faults.corrupt"), 1);
  // The damaged response was fully transferred before rejection.
  EXPECT_GT(a.bytes_received, 0);
  // A clean retry succeeds and round-trips the payload.
  RpcAttempt b = net.CallAttempt("m", "s1", 1, {1, 2, 3});
  ASSERT_TRUE(b.ok()) << b.status.ToString();
  EXPECT_EQ(b.payload, (std::vector<uint8_t>{1, 2, 3, 1}));
}

TEST(SimNetworkFaultTest, CrashTruncatesAndLeavesOutageWindow) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  net.InstallFaults(5, FaultProfile{});
  net.faults()->InjectOn("s1", -1, FaultKind::kCrash, 1);

  RpcAttempt crash = net.CallAttempt("m", "s1", 1, {9});
  EXPECT_TRUE(crash.status.IsNetworkError());
  EXPECT_NE(crash.status.message().find("crashed mid-response"),
            std::string::npos)
      << crash.status.ToString();
  // The source restarts: the next outage_messages = 2 messages die too.
  EXPECT_EQ(net.CallAttempt("m", "s1", 1, {9}).fault, FaultKind::kOutage);
  EXPECT_EQ(net.CallAttempt("m", "s1", 1, {9}).fault, FaultKind::kOutage);
  EXPECT_TRUE(net.CallAttempt("m", "s1", 1, {9}).ok());
}

TEST(SimNetworkFaultTest, SpikeSlowsTheLink) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  net.set_default_link({5.0, 10.0});
  const std::vector<uint8_t> req(10000);

  RpcAttempt clean = net.CallAttempt("m", "s1", 1, req);
  ASSERT_TRUE(clean.ok());

  net.InstallFaults(5, FaultProfile{});
  net.faults()->InjectOn("s1", -1, FaultKind::kSpike, 1);
  RpcAttempt spiked = net.CallAttempt("m", "s1", 1, req);
  ASSERT_TRUE(spiked.ok());  // slow, not wrong
  EXPECT_EQ(spiked.payload, clean.payload);
  EXPECT_GT(spiked.elapsed_ms, clean.elapsed_ms * 4);
}

TEST(SimNetworkFaultTest, DuplicateDeliveryRunsHandlerTwice) {
  SimNetwork net;
  CountingHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  net.InstallFaults(5, FaultProfile{});
  net.faults()->InjectOn("s1", -1, FaultKind::kDuplicate, 1);

  RpcAttempt a = net.CallAttempt("m", "s1", 1, {1});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.payload, (std::vector<uint8_t>{1, 1}));
  EXPECT_EQ(handler.calls, 2);
  EXPECT_EQ(net.metrics().Get("net.messages"), 2);
}

TEST(SimNetworkFaultTest, AdminChannelIsExemptFromDuplication) {
  SimNetwork net;
  CountingHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  net.InstallFaults(5, FaultProfile{});
  net.faults()->InjectOn(
      "s1", static_cast<int>(wire::Opcode::kAdminSql),
      FaultKind::kDuplicate, 1);

  RpcAttempt a = net.CallAttempt(
      "m", "s1", static_cast<uint8_t>(wire::Opcode::kAdminSql), {1});
  ASSERT_TRUE(a.ok());
  // Non-idempotent DDL/DML must not be applied twice by the simulator.
  EXPECT_EQ(handler.calls, 1);
  EXPECT_EQ(a.fault, FaultKind::kNone);
}

TEST(RetryPolicyTest, BackoffIsDeterministicJitteredAndCapped) {
  RetryPolicy p = RetryPolicy::Standard(8, 77);
  for (int attempt = 1; attempt <= 7; ++attempt) {
    const double d1 = p.BackoffMs(attempt, 123);
    const double d2 = p.BackoffMs(attempt, 123);
    EXPECT_DOUBLE_EQ(d1, d2);
    double nominal = p.backoff_base_ms;
    for (int i = 1; i < attempt; ++i) nominal *= p.backoff_multiplier;
    nominal = std::min(nominal, p.backoff_max_ms);
    EXPECT_GE(d1, nominal * (1.0 - p.jitter) - 1e-9);
    EXPECT_LE(d1, nominal * (1.0 + p.jitter) + 1e-9);
    // Different streams decorrelate.
    EXPECT_NE(p.BackoffMs(attempt, 123), p.BackoffMs(attempt, 456));
  }
}

TEST(RetryTest, RecoversAfterTransientFault) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  RpcAttempt clean = net.CallAttempt("m", "s1", 1, {1});
  ASSERT_TRUE(clean.ok());

  net.InstallFaults(5, FaultProfile{});
  net.faults()->InjectOn("s1", -1, FaultKind::kDrop, 1);
  RetryResult r =
      CallWithRetry(net, RetryPolicy::Standard(3), "m", "s1", 1, {1});
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.payload, clean.payload);
  // The recovery charged timeout + backoff + the clean round trip.
  EXPECT_GT(r.elapsed_ms,
            clean.elapsed_ms + net.TimeoutMs("m", "s1"));
  EXPECT_EQ(net.metrics().Get("net.retries"), 1);
}

TEST(RetryTest, ExhaustionNamesTheDeadSource) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  net.SetHostDown("s1", true);

  RetryResult r =
      CallWithRetry(net, RetryPolicy::Standard(4), "m", "s1", 1, {1});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status.IsNetworkError());
  EXPECT_EQ(r.attempts, 4);
  EXPECT_NE(r.status.message().find("'s1'"), std::string::npos);
  EXPECT_NE(r.status.message().find("4 attempts"), std::string::npos);
  // Four detection timeouts plus three backoffs, all simulated.
  EXPECT_GT(r.elapsed_ms, 4 * net.TimeoutMs("m", "s1"));
}

TEST(RetryTest, ApplicationErrorsAreNotRetried) {
  SimNetwork net;
  EchoHandler handler;
  ASSERT_TRUE(net.RegisterHost("s1", &handler).ok());
  RetryResult r = CallWithRetry(net, RetryPolicy::Standard(5), "m", "s1",
                                0xff, {});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status.IsExecutionError());
  EXPECT_EQ(r.attempts, 1);
}

}  // namespace
}  // namespace gisql
