/// Tests for the query-lifecycle tracing subsystem: per-operator
/// EXPLAIN ANALYZE actuals that sum to the query's network totals,
/// span trees over the simulated clock (with per-fragment network
/// sub-spans), Chrome trace_event JSON validity (checked by an
/// in-test recursive-descent parser — no external tool), and
/// serial-vs-pooled trace determinism.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "core/global_system.h"

namespace gisql {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON DOM + recursive-descent parser, just enough to validate
// the Chrome trace export structurally without external dependencies.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  bool Has(const std::string& key) const { return fields.count(key) > 0; }
  const JsonValue& At(const std::string& key) const {
    return fields.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input; returns false on any syntax error or
  /// trailing garbage.
  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->b = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->b = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    return ParseNumber(out);
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out->num = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + i]))) {
                return false;
              }
            }
            pos_ += 4;  // code point validated, not decoded
            out->push_back('?');
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters are invalid JSON
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!ParseValue(&item)) return false;
      out->items.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->fields[key] = std::move(value);
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Fixture: a genuine two-source world, so joins ship fragments from two
// distinct hosts.
// ---------------------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { BuildWorld(gis_); }

  static void BuildWorld(GlobalSystem& gis) {
    auto hq = *gis.CreateSource("hq", SourceDialect::kRelational);
    ASSERT_TRUE(hq->ExecuteLocalSql(
                      "CREATE TABLE customers (cid bigint, name varchar, "
                      "region varchar)")
                    .ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(hq->ExecuteLocalSql(
                        "INSERT INTO customers VALUES (" + std::to_string(i) +
                        ", 'cust" + std::to_string(i) + "', '" +
                        (i % 2 ? "east" : "west") + "')")
                      .ok());
    }
    auto branch = *gis.CreateSource("branch", SourceDialect::kDocument);
    ASSERT_TRUE(branch
                    ->ExecuteLocalSql(
                        "CREATE TABLE orders (oid bigint, cid bigint, "
                        "total double)")
                    .ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(branch
                      ->ExecuteLocalSql(
                          "INSERT INTO orders VALUES (" + std::to_string(i) +
                          ", " + std::to_string(i % 20) + ", " +
                          std::to_string(i * 1.5) + ")")
                      .ok());
    }
    ASSERT_TRUE(gis.ImportSource("hq").ok());
    ASSERT_TRUE(gis.ImportSource("branch").ok());
  }

  static constexpr const char* kJoinSql =
      "SELECT c.name, o.total FROM customers c JOIN orders o "
      "ON c.cid = o.cid WHERE o.total > 100 ORDER BY o.total DESC";

  GlobalSystem gis_;
};

/// Pulls every "key=<int>" occurrence out of the EXPLAIN ANALYZE text
/// and sums the values (e.g. key = "sent=" sums per-node sent bytes).
int64_t SumMarked(const std::string& text, const std::string& key,
                  int* occurrences = nullptr) {
  int64_t total = 0;
  int count = 0;
  size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    total += std::stoll(text.substr(pos));
    ++count;
  }
  if (occurrences != nullptr) *occurrences = count;
  return total;
}

TEST_F(TraceTest, PerNodeActualsSumToQueryTotals) {
  auto result = gis_.Query(std::string("EXPLAIN ANALYZE ") + kJoinSql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = result->batch.rows()[0][0].AsString();

  // Per-operator actuals are present...
  EXPECT_NE(text.find("actual_rows="), std::string::npos);
  EXPECT_NE(text.find("actual_ms="), std::string::npos);
  // ...and the network actuals on the remote fragments sum to exactly
  // the query's own network accounting.
  int fragment_nodes = 0;
  const int64_t node_sent = SumMarked(text, "sent=", &fragment_nodes);
  const int64_t node_recv = SumMarked(text, "recv=");
  const int64_t node_msgs = SumMarked(text, "msgs=");
  EXPECT_GE(fragment_nodes, 2);  // a two-source join ships two fragments
  EXPECT_GT(node_sent, 0);
  EXPECT_GT(node_recv, 0);
  EXPECT_EQ(node_sent, result->metrics.bytes_sent);
  EXPECT_EQ(node_recv, result->metrics.bytes_received);
  EXPECT_EQ(node_msgs, result->metrics.messages);

  // The bugfixed ANALYZE summary reports the same totals.
  std::ostringstream expected;
  expected << "Network: " << result->metrics.bytes_sent << " bytes sent, "
           << result->metrics.bytes_received << " bytes received, "
           << result->metrics.messages << " message(s), "
           << result->metrics.retries << " retrie(s)";
  EXPECT_NE(text.find(expected.str()), std::string::npos) << text;
  EXPECT_NE(text.find("Total: "), std::string::npos);
  EXPECT_GT(result->metrics.bytes_sent, 0);
  EXPECT_GT(result->metrics.messages, 0);
}

TEST_F(TraceTest, SpanTreeCoversLifecycleAndFragments) {
  gis_.EnableTracing();
  ASSERT_NE(gis_.trace(), nullptr);
  auto result = gis_.Query(kJoinSql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::vector<TraceSpan> spans = gis_.trace()->Spans();
  ASSERT_FALSE(spans.empty());

  auto find = [&](const std::string& name) -> const TraceSpan* {
    for (const auto& s : spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  // Lifecycle phases, rooted at "query".
  const TraceSpan* root = find("query");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);
  EXPECT_DOUBLE_EQ(root->end_ms, result->metrics.elapsed_ms);
  EXPECT_EQ(root->rows, static_cast<int64_t>(result->batch.num_rows()));
  for (const char* phase :
       {"parse", "bind+plan", "optimize", "decompose", "execute"}) {
    EXPECT_NE(find(phase), nullptr) << phase;
  }

  // One operator span per shipped fragment, each with a host and a
  // nonzero simulated duration.
  int fragments = 0;
  bool saw_hq = false, saw_branch = false;
  for (const auto& s : spans) {
    if (s.category == "operator" &&
        s.name.rfind("fragment ", 0) == 0) {
      ++fragments;
      EXPECT_GT(s.duration_ms(), 0.0) << s.name;
      EXPECT_FALSE(s.host.empty()) << s.name;
      EXPECT_GT(s.bytes_sent, 0) << s.name;
      EXPECT_GE(s.rows, 0) << s.name;
      saw_hq = saw_hq || s.host == "hq";
      saw_branch = saw_branch || s.host == "branch";
    }
  }
  EXPECT_GE(fragments, 2);
  EXPECT_TRUE(saw_hq);
  EXPECT_TRUE(saw_branch);

  // Network sub-spans record the per-attempt wire activity.
  int net_spans = 0;
  for (const auto& s : spans) {
    if (s.category == "net") ++net_spans;
  }
  EXPECT_GT(net_spans, 0);

  // No span escapes the query interval, and time never runs backwards.
  for (const auto& s : spans) {
    EXPECT_GE(s.end_ms, s.start_ms) << s.name;
    EXPECT_GE(s.start_ms, 0.0) << s.name;
    EXPECT_LE(s.end_ms, root->end_ms + 1e-9) << s.name;
  }
}

TEST_F(TraceTest, ChromeJsonIsValidAndHasFragmentEvents) {
  gis_.EnableTracing();
  ASSERT_TRUE(gis_.Query(kJoinSql).ok());

  const std::string json = gis_.trace()->ToChromeJson();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).Parse(&doc)) << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(doc.Has("traceEvents"));
  const JsonValue& events = doc.At("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(events.items.empty());

  int fragment_events = 0;
  for (const JsonValue& ev : events.items) {
    ASSERT_EQ(ev.kind, JsonValue::Kind::kObject);
    // Chrome trace_event required keys for complete ("X") events.
    for (const char* key : {"ph", "name", "cat", "ts", "dur", "pid", "tid"}) {
      ASSERT_TRUE(ev.Has(key)) << key;
    }
    EXPECT_EQ(ev.At("ph").str, "X");
    EXPECT_GE(ev.At("ts").num, 0.0);
    EXPECT_GE(ev.At("dur").num, 0.0);
    if (ev.At("cat").str == "operator" &&
        ev.At("name").str.rfind("fragment ", 0) == 0) {
      ++fragment_events;
      EXPECT_GT(ev.At("dur").num, 0.0);  // nonzero simulated duration
      ASSERT_TRUE(ev.Has("args"));
      EXPECT_TRUE(ev.At("args").Has("host"));
    }
  }
  EXPECT_GE(fragment_events, 2);  // one per remote fragment
}

TEST_F(TraceTest, SerialAndPooledTracesAreIdentical) {
  PlannerOptions serial_opts;
  serial_opts.parallel_execution = false;
  GlobalSystem serial(serial_opts);
  BuildWorld(serial);
  serial.EnableTracing();

  PlannerOptions pooled_opts;
  pooled_opts.parallel_execution = true;
  pooled_opts.worker_threads = 4;
  GlobalSystem pooled(pooled_opts);
  BuildWorld(pooled);
  pooled.EnableTracing();

  for (const char* sql :
       {kJoinSql,
        "SELECT region, COUNT(*) FROM customers GROUP BY region",
        "SELECT SUM(total) FROM orders"}) {
    auto a = serial.Query(sql);
    auto b = pooled.Query(sql);
    ASSERT_TRUE(a.ok()) << sql;
    ASSERT_TRUE(b.ok()) << sql;
    EXPECT_DOUBLE_EQ(a->metrics.elapsed_ms, b->metrics.elapsed_ms) << sql;
    // Canonical exports are byte-identical: same spans, same rows, same
    // bytes, same simulated timestamps — scheduling only changed
    // wall-clock interleaving.
    EXPECT_EQ(serial.trace()->ToText(), pooled.trace()->ToText()) << sql;
    EXPECT_EQ(serial.trace()->ToChromeJson(), pooled.trace()->ToChromeJson())
        << sql;
  }
}

TEST_F(TraceTest, CacheLookupSpansRecordHitAndMiss) {
  gis_.EnableTracing();
  gis_.EnableResultCache();
  ASSERT_TRUE(gis_.Query(kJoinSql).ok());
  {
    const auto spans = gis_.trace()->Spans();
    bool saw_miss = false, saw_insert = false;
    for (const auto& s : spans) {
      if (s.name == "cache.lookup") saw_miss = s.note == "miss";
      if (s.name == "cache.insert") saw_insert = true;
    }
    EXPECT_TRUE(saw_miss);
    EXPECT_TRUE(saw_insert);
  }
  auto hit = gis_.Query(kJoinSql);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->metrics.cache_hit);
  {
    const auto spans = gis_.trace()->Spans();
    bool saw_hit = false;
    int fragments = 0;
    for (const auto& s : spans) {
      if (s.name == "cache.lookup") saw_hit = s.note == "hit";
      if (s.name.rfind("fragment ", 0) == 0) ++fragments;
    }
    EXPECT_TRUE(saw_hit);
    EXPECT_EQ(fragments, 0);  // a hit never touches the network
  }
}

TEST_F(TraceTest, TraceTextRendersTree) {
  gis_.EnableTracing();
  ASSERT_TRUE(gis_.Query(kJoinSql).ok());
  const std::string text = gis_.trace()->ToText();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("fragment"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
  // Children indent under their parents.
  EXPECT_NE(text.find("  "), std::string::npos);
  // Disabling tracing detaches the collector entirely.
  gis_.DisableTracing();
  EXPECT_EQ(gis_.trace(), nullptr);
  ASSERT_TRUE(gis_.Query(kJoinSql).ok());
}

TEST_F(TraceTest, RetriesSurfaceInSpansAndMetrics) {
  // Deterministic targeted chaos: the first fragment request to
  // "branch" is dropped; the retry gets through. The query succeeds;
  // the trace shows the extra attempt and the backoff.
  GlobalSystem gis;
  BuildWorld(gis);
  gis.set_retry_policy(RetryPolicy::Standard(4, /*seed=*/1));
  gis.network().InstallFaults(/*seed=*/7, FaultProfile{});  // targeted only
  gis.network().faults()->InjectOn("branch", /*opcode=*/-1, FaultKind::kDrop,
                                  1);
  gis.EnableTracing();

  auto result = gis.Query("SELECT SUM(total) FROM orders");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->metrics.retries, 0);

  const auto spans = gis.trace()->Spans();
  int attempt_spans = 0;
  bool saw_backoff = false;
  for (const auto& s : spans) {
    if (s.name.rfind("attempt", 0) == 0) ++attempt_spans;
    if (s.name == "backoff") saw_backoff = true;
  }
  EXPECT_GT(attempt_spans, 1);
  EXPECT_TRUE(saw_backoff);
}

}  // namespace
}  // namespace gisql
