/// Property tests for selectivity estimation (parameterized over
/// seeds): every estimate the planner composes — histogram fractions,
/// min/max interpolation, single-point columns, AND/OR/NOT chains over
/// them — must land in [0, 1], and degenerate statistics must answer
/// exactly rather than falling back to the 1/3 default. Regression
/// coverage for the RangeSelectivity operator-precedence bug (an
/// always-true comparison chain) and the FractionBelow −1 sentinel.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/global_system.h"
#include "planner/cost_model.h"
#include "planner/logical_planner.h"
#include "sql/parser.h"
#include "storage/statistics.h"

namespace gisql {
namespace {

Schema NumericSchema() {
  return Schema(std::vector<Field>{{"a", TypeId::kInt64, true, "t"},
                                   {"b", TypeId::kDouble, true, "t"}});
}

std::vector<Row> RandomRows(Rng& rng, int n) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  // Occasionally collapse a column to a single point so the hi == lo
  // branch is exercised by the property, not just the unit tests.
  const bool flat_a = rng.Bernoulli(0.2);
  const int64_t flat = rng.Uniform(-5, 5);
  for (int i = 0; i < n; ++i) {
    Row row;
    if (rng.Bernoulli(0.1)) {
      row.push_back(Value::Null(TypeId::kInt64));
    } else {
      row.push_back(Value::Int(flat_a ? flat : rng.Uniform(-1000, 1000)));
    }
    if (rng.Bernoulli(0.1)) {
      row.push_back(Value::Null(TypeId::kDouble));
    } else {
      row.push_back(Value::Double((rng.NextDouble() - 0.5) * 2000.0));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

class SelectivityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectivityProperty, RangeSelectivityStaysInUnitInterval) {
  Rng rng(GetParam());
  const Schema schema = NumericSchema();
  for (int trial = 0; trial < 30; ++trial) {
    // Row counts straddle the histogram threshold so both the
    // equi-depth and the min/max interpolation paths run.
    const int n = static_cast<int>(rng.Uniform(0, 150));
    const TableStats stats = CollectStats(schema, RandomRows(rng, n));
    for (int probe = 0; probe < 20; ++probe) {
      const size_t col = static_cast<size_t>(rng.Uniform(0, 1));
      const Value bound =
          col == 0 ? Value::Int(rng.Uniform(-1500, 1500))
                   : Value::Double((rng.NextDouble() - 0.5) * 3000.0);
      const bool less_than = rng.Bernoulli(0.5);
      const bool inclusive = rng.Bernoulli(0.5);
      const double sel =
          stats.RangeSelectivity(col, bound, less_than, inclusive);
      ASSERT_GE(sel, 0.0) << stats.ToString();
      ASSERT_LE(sel, 1.0) << stats.ToString();
      const double eq = stats.EqSelectivity(col);
      ASSERT_GE(eq, 0.0);
      ASSERT_LE(eq, 1.0);
      // FractionBelow answers in [0, 1] or the documented -1 "no
      // histogram" sentinel — never anything in between.
      const double below = stats.columns[col].FractionBelow(bound);
      ASSERT_TRUE(below == -1.0 || (below >= 0.0 && below <= 1.0))
          << below;
    }
  }
}

TEST_P(SelectivityProperty, SinglePointColumnsAnswerExactly) {
  Rng rng(GetParam());
  const Schema schema = NumericSchema();
  for (int trial = 0; trial < 20; ++trial) {
    // All rows share one value in column 0: hi == lo after collection.
    const int64_t point = rng.Uniform(-100, 100);
    std::vector<Row> rows;
    const int n = static_cast<int>(rng.Uniform(1, 40));
    for (int i = 0; i < n; ++i) {
      rows.push_back({Value::Int(point),
                      Value::Double(rng.NextDouble() * 10.0)});
    }
    const TableStats stats = CollectStats(schema, rows);
    const Value at = Value::Int(point);
    // Strict comparisons against the point are provably empty; the
    // inclusive ones are provably total. (The pre-fix precedence bug
    // answered 1.0 for every one of these.)
    EXPECT_EQ(stats.RangeSelectivity(0, at, /*less_than=*/true,
                                     /*inclusive=*/false),
              0.0);
    EXPECT_EQ(stats.RangeSelectivity(0, at, /*less_than=*/false,
                                     /*inclusive=*/false),
              0.0);
    EXPECT_EQ(stats.RangeSelectivity(0, at, /*less_than=*/true,
                                     /*inclusive=*/true),
              1.0);
    EXPECT_EQ(stats.RangeSelectivity(0, at, /*less_than=*/false,
                                     /*inclusive=*/true),
              1.0);
    // A bound strictly past the point is total/empty by direction —
    // the regression case: less_than=false with b < lo used to parse
    // as ((b >= lo) == less_than) || b == lo and return 1.0.
    const Value above = Value::Int(point + 7);
    const Value under = Value::Int(point - 7);
    EXPECT_EQ(stats.RangeSelectivity(0, above, true, false), 1.0);
    EXPECT_EQ(stats.RangeSelectivity(0, above, false, false), 0.0);
    EXPECT_EQ(stats.RangeSelectivity(0, under, true, false), 0.0);
    EXPECT_EQ(stats.RangeSelectivity(0, under, false, false), 1.0);
  }
}

/// Composed predicate estimates through the cost model: random AND /
/// OR / NOT chains over comparisons must annotate every plan node with
/// est_rows in [0, base rows] — the clamp property end to end.
class ComposedSelectivityProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ComposedSelectivityProperty, FilterEstimatesNeverEscapeBounds) {
  Rng rng(GetParam());
  GlobalSystem gis;
  auto src = *gis.CreateSource("s", SourceDialect::kRelational);
  ASSERT_TRUE(
      src->ExecuteLocalSql("CREATE TABLE t (a bigint, b double)").ok());
  auto table = *src->engine().GetTable("t");
  ASSERT_TRUE(table->InsertUnchecked(RandomRows(rng, 120)).ok());
  ASSERT_TRUE(gis.ImportSource("s").ok());

  CostParams params;
  CostModel cost(gis.catalog(), params);
  LogicalPlanner planner(gis.catalog());

  auto comparison = [&]() {
    const char* cols[] = {"a", "b"};
    const char* ops[] = {"<", "<=", ">", ">=", "=", "<>"};
    return std::string(cols[rng.Uniform(0, 1)]) +
           " " + ops[rng.Uniform(0, 5)] + " " +
           std::to_string(rng.Uniform(-1200, 1200));
  };
  for (int trial = 0; trial < 40; ++trial) {
    std::string pred = comparison();
    const int extra = static_cast<int>(rng.Uniform(0, 2));
    for (int i = 0; i < extra; ++i) {
      pred = "(" + pred + (rng.Bernoulli(0.5) ? ") AND (" : ") OR (") +
             comparison() + ")";
    }
    if (rng.Bernoulli(0.3)) pred = "NOT (" + pred + ")";
    const std::string sql = "SELECT a FROM t WHERE " + pred;
    auto stmt = sql::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    auto plan = planner.Plan(**stmt);
    ASSERT_TRUE(plan.ok()) << sql;
    cost.Annotate(*plan);
    VisitPlan(*plan, [&](const PlanNodePtr& node) {
      ASSERT_GE(node->est_rows, 0.0) << sql;
      ASSERT_LE(node->est_rows, 120.0 + 1e-9) << sql;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectivityProperty,
                         ::testing::Values(1, 7, 42, 1989, 20260809));
INSTANTIATE_TEST_SUITE_P(Seeds, ComposedSelectivityProperty,
                         ::testing::Values(3, 11, 97));

}  // namespace
}  // namespace gisql
