/// Buffer pool manager tests: hit/miss/eviction accounting, dirty-page
/// writeback, pin refusal, memory-budget growth limits, and same-seed
/// determinism of the simulated I/O counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sched/memory_budget.h"
#include "storage/buffer_pool.h"

namespace gisql {
namespace {

StorageConfig SmallConfig(size_t frames, size_t k = 2) {
  StorageConfig config;
  config.page_size = 64;
  config.pool_frames = frames;
  config.lruk_k = k;
  config.disk_read_us = 100.0;
  config.disk_write_us = 50.0;
  return config;
}

TEST(BufferPoolTest, NewFetchUnpinAccounting) {
  BufferPoolManager pool(SmallConfig(4));
  std::vector<uint8_t>* data = nullptr;
  auto page_or = pool.NewPage(&data);
  ASSERT_TRUE(page_or.ok());
  data->assign({1, 2, 3});
  pool.UnpinPage(*page_or, /*dirty=*/true);

  // Resident page: a fetch is a hit and costs no disk time.
  auto fetched = pool.FetchPage(*page_or);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((**fetched)[0], 1);
  pool.UnpinPage(*page_or, false);

  const BufferPoolStats s = pool.Snapshot();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 0);
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.frames_used, 1);
  EXPECT_EQ(s.disk_reads, 0);
  EXPECT_DOUBLE_EQ(s.disk_us, 0.0);
}

TEST(BufferPoolTest, EvictionWritesBackAndReloads) {
  // Two frames, three pages: filling the third evicts, and the dirty
  // victim's bytes must survive the round trip through the disk.
  BufferPoolManager pool(SmallConfig(2));
  std::vector<uint64_t> pages;
  for (uint8_t i = 0; i < 3; ++i) {
    std::vector<uint8_t>* data = nullptr;
    auto page_or = pool.NewPage(&data);
    ASSERT_TRUE(page_or.ok());
    data->assign(4, i + 1);
    pool.UnpinPage(*page_or, /*dirty=*/true);
    pages.push_back(*page_or);
  }
  BufferPoolStats s = pool.Snapshot();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.disk_writes, 1);  // the evicted dirty page

  // Page 0 was the eviction victim; fetching it back is a miss that
  // reads from disk with its bytes intact.
  auto fetched = pool.FetchPage(pages[0]);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((**fetched)[0], 1);
  pool.UnpinPage(pages[0], false);
  s = pool.Snapshot();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.disk_reads, 1);
  EXPECT_EQ(s.evictions, 2);
  // 2 evictions wrote dirty pages (50 us each), 1 read (100 us).
  EXPECT_DOUBLE_EQ(s.disk_us, 2 * 50.0 + 100.0);
}

TEST(BufferPoolTest, AllFramesPinnedRefusesLoudly) {
  BufferPoolManager pool(SmallConfig(2));
  ASSERT_TRUE(pool.NewPage(nullptr).ok());
  ASSERT_TRUE(pool.NewPage(nullptr).ok());
  auto third = pool.NewPage(nullptr);
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsOverloaded());
  EXPECT_NE(third.status().message().find("pinned"), std::string::npos);
}

TEST(BufferPoolTest, UnpinReleasesFrameForEviction) {
  BufferPoolManager pool(SmallConfig(2));
  auto p1 = pool.NewPage(nullptr);
  auto p2 = pool.NewPage(nullptr);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  pool.UnpinPage(*p1, true);
  // p1 is evictable, p2 still pinned: the next page lands in p1's frame.
  ASSERT_TRUE(pool.NewPage(nullptr).ok());
  const BufferPoolStats s = pool.Snapshot();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.pinned_frames, 2);
}

TEST(BufferPoolTest, GrowthChargesMemoryBudget) {
  MemoryBudget budget;
  // Global cap fits exactly two 64-byte frames.
  budget.Configure(/*query_cap_bytes=*/1 << 20, /*global_cap_bytes=*/128);
  BufferPoolManager pool(SmallConfig(8), &budget);
  ASSERT_TRUE(pool.NewPage(nullptr).ok());
  ASSERT_TRUE(pool.NewPage(nullptr).ok());
  auto third = pool.NewPage(nullptr);
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsOverloaded());
  // The error must tell the operator which knobs to turn.
  EXPECT_NE(third.status().message().find("global memory budget exhausted"),
            std::string::npos);
  EXPECT_NE(third.status().message().find("GISQL_BUFFER_POOL_FRAMES"),
            std::string::npos);
}

TEST(BufferPoolTest, DeletePageFreesFrameAndDisk) {
  BufferPoolManager pool(SmallConfig(4));
  auto p1 = pool.NewPage(nullptr);
  ASSERT_TRUE(p1.ok());
  pool.UnpinPage(*p1, true);
  pool.FlushAll();
  EXPECT_EQ(pool.Snapshot().pages_on_disk, 1);
  EXPECT_EQ(pool.Snapshot().pages_live, 1);
  pool.DeletePage(*p1);
  const BufferPoolStats s = pool.Snapshot();
  EXPECT_EQ(s.frames_used, 0);
  EXPECT_EQ(s.pages_on_disk, 0);
  EXPECT_EQ(s.pages_live, 0);
  // The freed frame is reused without growing the pool.
  ASSERT_TRUE(pool.NewPage(nullptr).ok());
  EXPECT_EQ(pool.Snapshot().frames_used, 1);
  EXPECT_EQ(pool.Snapshot().pages_live, 1);
}

TEST(BufferPoolTest, FetchOfUnknownPageFails) {
  BufferPoolManager pool(SmallConfig(2));
  EXPECT_FALSE(pool.FetchPage(12345).ok());
}

/// Runs a seeded NewPage/Fetch/Unpin workload and returns the final
/// counter snapshot rendered as a string.
std::string RunWorkload(uint64_t seed) {
  BufferPoolManager pool(SmallConfig(8, 2));
  Rng rng(seed);
  std::vector<uint64_t> pages;
  std::vector<uint64_t> pinned;
  for (int op = 0; op < 2000; ++op) {
    const int64_t dice = rng.Uniform(0, 9);
    if (dice < 2 || pages.empty()) {
      std::vector<uint8_t>* data = nullptr;
      auto page_or = pool.NewPage(&data);
      if (page_or.ok()) {
        data->assign(8, static_cast<uint8_t>(op & 0xff));
        pages.push_back(*page_or);
        pinned.push_back(*page_or);
      }
    } else if (dice < 8) {
      const uint64_t page = pages[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(pages.size()) - 1))];
      if (pool.FetchPage(page).ok()) pinned.push_back(page);
    }
    // Keep at most a few pins outstanding so eviction has victims.
    while (pinned.size() > 3) {
      pool.UnpinPage(pinned.front(), rng.Uniform(0, 1) == 1);
      pinned.erase(pinned.begin());
    }
  }
  const BufferPoolStats s = pool.Snapshot();
  return std::to_string(s.hits) + "/" + std::to_string(s.misses) + "/" +
         std::to_string(s.evictions) + "/" + std::to_string(s.disk_reads) +
         "/" + std::to_string(s.disk_writes) + "/" +
         std::to_string(s.disk_us);
}

TEST(BufferPoolTest, SameSeedWorkloadRepliesByteIdentically) {
  const std::string first = RunWorkload(7);
  const std::string second = RunWorkload(7);
  EXPECT_EQ(first, second);
  // And the workload actually exercised the out-of-core paths.
  EXPECT_NE(first, "0/0/0/0/0/0.000000");
}

}  // namespace
}  // namespace gisql
