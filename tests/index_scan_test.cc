/// Index access paths end to end: the planner picking index range scans
/// and index-nested-loop joins, the GISQL_INDEX_RANGE_SCAN /
/// GISQL_INDEX_JOIN toggles, capability gating for non-relational
/// dialects, EXPLAIN ANALYZE page actuals, correctness against the
/// non-indexed plans, and serial-vs-pooled metric identity.

#include <gtest/gtest.h>

#include <string>

#include "core/global_system.h"

namespace gisql {
namespace {

/// One relational source holding two key-joined tables, plus a document
/// source holding a copy of events (same data, weaker capabilities).
void BuildWorld(GlobalSystem* gis) {
  auto store = *gis->CreateSource("store", SourceDialect::kRelational);
  ASSERT_TRUE(
      store->ExecuteLocalSql("CREATE TABLE events (id bigint, v double)")
          .ok());
  ASSERT_TRUE(store
                  ->ExecuteLocalSql(
                      "CREATE TABLE labels (id bigint, label varchar)")
                  .ok());
  {
    auto events = *store->engine().GetTable("events");
    std::vector<Row> rows;
    for (int i = 0; i < 500; ++i) {
      rows.push_back({Value::Int(i), Value::Double(i * 0.5)});
    }
    ASSERT_TRUE(events->InsertUnchecked(std::move(rows)).ok());
    auto labels = *store->engine().GetTable("labels");
    rows.clear();
    for (int i = 0; i < 100; ++i) {
      rows.push_back(
          {Value::Int(i), Value::String("label" + std::to_string(i))});
    }
    ASSERT_TRUE(labels->InsertUnchecked(std::move(rows)).ok());
  }
  ASSERT_TRUE(gis->ImportSource("store").ok());

  auto docs = *gis->CreateSource("docs", SourceDialect::kDocument);
  ASSERT_TRUE(docs->ExecuteLocalSql(
                      "CREATE TABLE docevents (id bigint, v double)")
                  .ok());
  {
    auto t = *docs->engine().GetTable("docevents");
    std::vector<Row> rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back({Value::Int(i), Value::Double(i * 0.5)});
    }
    ASSERT_TRUE(t->InsertUnchecked(std::move(rows)).ok());
  }
  ASSERT_TRUE(gis->ImportSource("docs").ok());
}

class IndexScanTest : public ::testing::Test {
 protected:
  void SetUp() override { BuildWorld(&gis_); }

  std::string Plan(const std::string& sql) {
    auto plan = gis_.Explain(sql);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? *plan : std::string();
  }

  GlobalSystem gis_;
};

constexpr char kRangeSql[] =
    "SELECT id, v FROM events WHERE id >= 50 AND id < 60 ORDER BY id";
// Selects every column of both sides so column pruning narrows nothing
// and the join stays collapsible into an index-nested-loop fragment.
constexpr char kJoinSql[] =
    "SELECT e.id, e.v, l.id, l.label FROM events e JOIN labels l "
    "ON e.id = l.id WHERE e.v < 10 ORDER BY e.id";

TEST_F(IndexScanTest, PlannerPicksIndexRangeScan) {
  EXPECT_NE(Plan(kRangeSql).find("INDEX($0"), std::string::npos);
}

TEST_F(IndexScanTest, RangeScanToggleRestoresFullScan) {
  PlannerOptions options;
  options.enable_index_range_scan = false;
  gis_.set_options(options);
  EXPECT_EQ(Plan(kRangeSql).find("INDEX($0"), std::string::npos);
}

TEST_F(IndexScanTest, RangeScanMatchesFullScanResults) {
  auto indexed = gis_.Query(kRangeSql);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  PlannerOptions options;
  options.enable_index_range_scan = false;
  gis_.set_options(options);
  auto scanned = gis_.Query(kRangeSql);
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  ASSERT_EQ(indexed->batch.num_rows(), 10u);
  EXPECT_EQ(indexed->batch.ToString(100), scanned->batch.ToString(100));
}

TEST_F(IndexScanTest, SelectiveRangeScanIsCheaper) {
  // Warm the pool so both measured runs see the same residency; the
  // remaining difference is rows scanned (and any page faults the
  // access path avoids).
  ASSERT_TRUE(gis_.Query("SELECT count(*) FROM events").ok());
  auto indexed = gis_.Query(kRangeSql);
  ASSERT_TRUE(indexed.ok());
  PlannerOptions options;
  options.enable_index_range_scan = false;
  gis_.set_options(options);
  auto scanned = gis_.Query(kRangeSql);
  ASSERT_TRUE(scanned.ok());
  EXPECT_LT(indexed->metrics.elapsed_ms, scanned->metrics.elapsed_ms);
}

TEST_F(IndexScanTest, PlannerPicksIndexJoin) {
  EXPECT_NE(Plan(kJoinSql).find("INDEXJOIN(labels"), std::string::npos);
}

TEST_F(IndexScanTest, IndexJoinToggleRestoresShipJoin) {
  PlannerOptions options;
  options.enable_index_join = false;
  gis_.set_options(options);
  EXPECT_EQ(Plan(kJoinSql).find("INDEXJOIN"), std::string::npos);
}

TEST_F(IndexScanTest, IndexJoinMatchesShipJoinResults) {
  auto collapsed = gis_.Query(kJoinSql);
  ASSERT_TRUE(collapsed.ok()) << collapsed.status().ToString();
  PlannerOptions options;
  options.enable_index_join = false;
  options.enable_index_range_scan = false;
  gis_.set_options(options);
  auto shipped = gis_.Query(kJoinSql);
  ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();
  ASSERT_EQ(collapsed->batch.num_rows(), 20u);  // e.v < 10 → ids 0..19
  EXPECT_EQ(collapsed->batch.ToString(100), shipped->batch.ToString(100));
}

TEST_F(IndexScanTest, DocumentDialectGetsNoIndexPaths) {
  const std::string plan =
      Plan("SELECT id, v FROM docevents WHERE id >= 5 AND id < 15");
  EXPECT_EQ(plan.find("INDEX("), std::string::npos);
}

TEST_F(IndexScanTest, ShipEverythingDisablesIndexPaths) {
  gis_.set_options(PlannerOptions::ShipEverything());
  EXPECT_EQ(Plan(kRangeSql).find("INDEX($0"), std::string::npos);
  EXPECT_EQ(Plan(kJoinSql).find("INDEXJOIN"), std::string::npos);
}

TEST_F(IndexScanTest, ExplainAnalyzeReportsPageActuals) {
  auto result = gis_.Query(std::string("EXPLAIN ANALYZE ") + kRangeSql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = result->batch.rows()[0][0].AsString();
  EXPECT_NE(text.find("page_hits="), std::string::npos);
  EXPECT_NE(text.find("page_misses="), std::string::npos);
  EXPECT_NE(text.find("disk_ms="), std::string::npos);
}

TEST_F(IndexScanTest, GisStorageSeesTheTraffic) {
  ASSERT_TRUE(gis_.Query("SELECT count(*) FROM events").ok());
  auto storage = gis_.Query(
      "SELECT source, hits, misses, hit_ratio FROM gis.storage "
      "ORDER BY source");
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  ASSERT_EQ(storage->batch.num_rows(), 2u);  // docs + store
  const Row& store_row = storage->batch.rows()[1];
  EXPECT_EQ(store_row[0].AsString(), "store");
  EXPECT_GT(store_row[1].AsInt() + store_row[2].AsInt(), 0);
  EXPECT_GE(store_row[3].AsDouble(), 0.0);
  EXPECT_LE(store_row[3].AsDouble(), 1.0);
}

/// Builds an identical world under the given options, runs the same
/// query mix (including a two-fragment same-source join, the shape the
/// executor's source sequencer exists to order), and returns the
/// gis.storage snapshot rendered as text.
std::string StorageAfterWorkload(bool parallel) {
  PlannerOptions options;
  options.parallel_execution = parallel;
  GlobalSystem gis(options);
  BuildWorld(&gis);
  EXPECT_TRUE(gis.Query(kRangeSql).ok());
  EXPECT_TRUE(gis.Query(kJoinSql).ok());
  // Pruning narrows events to (id), so this join does NOT collapse:
  // both sides ship as separate fragments hitting the same pool.
  EXPECT_TRUE(gis.Query("SELECT e.id FROM events e JOIN labels l "
                        "ON e.id = l.id WHERE l.label = 'label5'")
                  .ok());
  EXPECT_TRUE(gis.Query("SELECT sum(v) FROM events WHERE v < 100").ok());
  auto storage = gis.Query(
      "SELECT source, hits, misses, evictions, disk_ms FROM gis.storage "
      "ORDER BY source");
  EXPECT_TRUE(storage.ok()) << storage.status().ToString();
  return storage.ok() ? storage->batch.ToString(100) : std::string();
}

TEST(IndexScanDeterminismTest, SerialAndPooledChargeIdenticalPageStats) {
  const std::string serial = StorageAfterWorkload(/*parallel=*/false);
  const std::string pooled = StorageAfterWorkload(/*parallel=*/true);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled);
}

}  // namespace
}  // namespace gisql
