/// Tests for global transactions (two-phase commit across autonomous
/// sources): atomic success, abort-on-prepare-failure, in-doubt commit,
/// staging isolation, and idempotent abort.

#include <gtest/gtest.h>

#include "core/global_system.h"

namespace gisql {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name : {"ledger_a", "ledger_b", "ledger_c"}) {
      ASSERT_TRUE(gis_.CreateSource(name, SourceDialect::kRelational).ok());
      ASSERT_TRUE(gis_.ExecuteAt(name,
                                 "CREATE TABLE entries (id bigint, "
                                 "amount double)")
                      .ok());
    }
    ASSERT_TRUE(gis_.ImportTable("ledger_a", "entries", "entries_a").ok());
    ASSERT_TRUE(gis_.ImportTable("ledger_b", "entries", "entries_b").ok());
    ASSERT_TRUE(gis_.ImportTable("ledger_c", "entries", "entries_c").ok());
  }

  int64_t CountAt(const std::string& table) {
    auto r = gis_.Query("SELECT COUNT(*) FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->batch.rows()[0][0].AsInt();
  }

  GlobalSystem gis_;
};

TEST_F(TxnTest, AtomicMultiSourceInsert) {
  Status st = gis_.ExecuteAtomically({
      {"ledger_a", "INSERT INTO entries VALUES (1, -100.0)"},
      {"ledger_b", "INSERT INTO entries VALUES (1, 60.0)"},
      {"ledger_c", "INSERT INTO entries VALUES (1, 40.0)"},
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(CountAt("entries_a"), 1);
  EXPECT_EQ(CountAt("entries_b"), 1);
  EXPECT_EQ(CountAt("entries_c"), 1);
  // The double-entry books balance.
  auto sum = gis_.Query(
      "SELECT SUM(amount) FROM (SELECT amount FROM entries_a UNION ALL "
      "SELECT amount FROM entries_b UNION ALL "
      "SELECT amount FROM entries_c) AS all_entries");
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->batch.rows()[0][0].AsDouble(), 0.0);
}

TEST_F(TxnTest, PrepareFailureAbortsEverything) {
  // Third statement references a missing table: nothing may commit.
  Status st = gis_.ExecuteAtomically({
      {"ledger_a", "INSERT INTO entries VALUES (2, 1.0)"},
      {"ledger_b", "INSERT INTO entries VALUES (2, 2.0)"},
      {"ledger_c", "INSERT INTO ghost VALUES (2, 3.0)"},
  });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("prepare failed at 'ledger_c'"),
            std::string::npos);
  EXPECT_EQ(CountAt("entries_a"), 0);
  EXPECT_EQ(CountAt("entries_b"), 0);
  // No staged residue anywhere.
  for (const char* name : {"ledger_a", "ledger_b", "ledger_c"}) {
    EXPECT_EQ((*gis_.GetSource(name))->pending_txns(), 0u) << name;
  }
}

TEST_F(TxnTest, ValidationFailuresCaughtAtPrepare) {
  // Type error (string into bigint) and arity error both abort cleanly.
  EXPECT_FALSE(gis_.ExecuteAtomically({
                       {"ledger_a", "INSERT INTO entries VALUES (1, 1.0)"},
                       {"ledger_b",
                        "INSERT INTO entries VALUES ('oops', 1.0)"},
                   })
                   .ok());
  EXPECT_FALSE(gis_.ExecuteAtomically({
                       {"ledger_a", "INSERT INTO entries VALUES (1)"},
                   })
                   .ok());
  // Non-INSERT statements are rejected.
  EXPECT_FALSE(gis_.ExecuteAtomically({
                       {"ledger_a", "CREATE TABLE t2 (x bigint)"},
                   })
                   .ok());
  EXPECT_EQ(CountAt("entries_a"), 0);
  EXPECT_EQ(CountAt("entries_b"), 0);
}

TEST_F(TxnTest, UnreachableParticipantAbortsAtPrepare) {
  gis_.network().SetHostDown("ledger_b", true);
  Status st = gis_.ExecuteAtomically({
      {"ledger_a", "INSERT INTO entries VALUES (3, 1.0)"},
      {"ledger_b", "INSERT INTO entries VALUES (3, 2.0)"},
  });
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNetworkError()) << st.ToString();
  gis_.network().SetHostDown("ledger_b", false);
  EXPECT_EQ(CountAt("entries_a"), 0);
  EXPECT_EQ(CountAt("entries_b"), 0);
  EXPECT_EQ((*gis_.GetSource("ledger_a"))->pending_txns(), 0u);
}

TEST_F(TxnTest, InDoubtStateReportedAndResolvable) {
  // Participant role, driven directly to simulate the window between
  // the phases: prepare at both, then lose one before its commit.
  auto a = *gis_.GetSource("ledger_a");
  auto b = *gis_.GetSource("ledger_b");
  ASSERT_TRUE(a->PrepareTxn("t9", "INSERT INTO entries VALUES (9, 1.0)").ok());
  ASSERT_TRUE(b->PrepareTxn("t9", "INSERT INTO entries VALUES (9, 2.0)").ok());
  ASSERT_TRUE(a->CommitTxn("t9").ok());
  // b crashes before its commit arrives: staged rows survive at b.
  EXPECT_EQ(b->pending_txns(), 1u);
  EXPECT_EQ(CountAt("entries_a"), 1);
  EXPECT_EQ(CountAt("entries_b"), 0);
  // The operator resolves by re-sending the commit.
  ASSERT_TRUE(b->CommitTxn("t9").ok());
  EXPECT_EQ(CountAt("entries_b"), 1);

  // The coordinator reports in-doubt when commit delivery fails.
  ASSERT_TRUE(a->PrepareTxn("warm", "INSERT INTO entries VALUES (8, 0.0)")
                  .ok());
  ASSERT_TRUE(a->AbortTxn("warm").ok());
  gis_.network().SetHostDown("ledger_b", false);
}

TEST_F(TxnTest, CommitPhaseFailureIsInDoubt) {
  // Take ledger_b down after prepare by using a one-participant prepare
  // window: prepare succeeds for both (hosts up), then we cut b before
  // the coordinator's commit round. We emulate this by preparing via
  // the coordinator against a wrapped scenario: simply run the 2PC with
  // b taken down between phases is not observable from outside, so this
  // test drives the participant API (above) and verifies the
  // coordinator's error text shape here with a pre-staged conflict.
  auto b = *gis_.GetSource("ledger_b");
  ASSERT_TRUE(
      b->PrepareTxn("blocker", "INSERT INTO entries VALUES (7, 7.0)").ok());
  // Commit of an unknown txn at a source is NotFound (delivered by the
  // coordinator as part of the in-doubt report in real scenarios).
  EXPECT_TRUE(b->CommitTxn("nope").IsNotFound());
  EXPECT_TRUE(b->AbortTxn("nope").ok());  // abort is idempotent
  ASSERT_TRUE(b->AbortTxn("blocker").ok());
  EXPECT_EQ(b->pending_txns(), 0u);
}

TEST_F(TxnTest, ConcurrentTransactionsAreIsolated) {
  auto a = *gis_.GetSource("ledger_a");
  ASSERT_TRUE(a->PrepareTxn("t1", "INSERT INTO entries VALUES (1, 1.0)").ok());
  ASSERT_TRUE(a->PrepareTxn("t2", "INSERT INTO entries VALUES (2, 2.0)").ok());
  EXPECT_EQ(a->pending_txns(), 2u);
  ASSERT_TRUE(a->AbortTxn("t1").ok());
  ASSERT_TRUE(a->CommitTxn("t2").ok());
  EXPECT_EQ(CountAt("entries_a"), 1);
  auto r = gis_.Query("SELECT id FROM entries_a");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 2);
}

TEST_F(TxnTest, MultipleStatementsPerSourceInOneTxn) {
  Status st = gis_.ExecuteAtomically({
      {"ledger_a", "INSERT INTO entries VALUES (1, 1.0)"},
      {"ledger_a", "INSERT INTO entries VALUES (2, 2.0), (3, 3.0)"},
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(CountAt("entries_a"), 3);
}

}  // namespace
}  // namespace gisql
