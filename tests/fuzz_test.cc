/// Robustness fuzzing (seeded, deterministic): random byte strings and
/// mutated-valid SQL through the parser, random token recombination
/// through the full mediator, and bit-flipped/truncated transport
/// frames through the checksum layer — nothing may crash; errors must
/// be typed.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/global_system.h"
#include "sql/parser.h"
#include "types/column_batch.h"
#include "wire/cursor.h"
#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {
namespace {

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  const char charset[] =
      " \t\nabcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789.,*()'\"<>=!+-/%;_";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.Uniform(0, 120));
    for (int i = 0; i < len; ++i) {
      input += charset[rng.Uniform(0, sizeof(charset) - 2)];
    }
    auto result = sql::ParseStatement(input);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError() ||
                  result.status().IsInvalidArgument())
          << result.status().ToString() << " for: " << input;
    }
  }
}

TEST_P(ParserFuzz, MutatedValidSqlNeverCrashes) {
  Rng rng(GetParam() + 1000);
  const std::string base =
      "SELECT a, SUM(b) FROM t JOIN u ON t.k = u.k WHERE c > 5 AND "
      "d LIKE 'x%' GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC "
      "LIMIT 10 OFFSET 2";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    const int edits = static_cast<int>(rng.Uniform(1, 6));
    for (int e = 0; e < edits; ++e) {
      const size_t pos =
          static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.Uniform(0, 2)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, static_cast<char>(rng.Uniform(32, 126)));
          break;
        default:
          mutated[pos] = static_cast<char>(rng.Uniform(32, 126));
          break;
      }
      if (mutated.empty()) mutated = "S";
    }
    (void)sql::ParseStatement(mutated);  // must not crash
  }
}

class MediatorFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MediatorFuzz, RandomTokenQueriesFailCleanly) {
  GlobalSystem gis;
  auto src = *gis.CreateSource("s1", SourceDialect::kRelational);
  ASSERT_TRUE(src->ExecuteLocalSql(
                    "CREATE TABLE t (a bigint, b double, c varchar)")
                  .ok());
  ASSERT_TRUE(
      src->ExecuteLocalSql("INSERT INTO t VALUES (1, 2.0, 'x')").ok());
  ASSERT_TRUE(gis.ImportSource("s1").ok());

  Rng rng(GetParam());
  const char* tokens[] = {
      "SELECT", "FROM",  "WHERE", "GROUP",  "BY",    "ORDER", "LIMIT",
      "t",      "a",     "b",     "c",      "nope",  "*",     ",",
      "(",      ")",     "=",     ">",      "AND",   "OR",    "NOT",
      "COUNT",  "SUM",   "1",     "2.5",    "'s'",   "NULL",  "JOIN",
      "ON",     "AS",    "IN",    "LIKE",   "UNION", "ALL",   "DISTINCT",
      "HAVING", "CASE",  "WHEN",  "THEN",   "END",   "CAST",  "DATE",
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string q = "SELECT";
    const int len = static_cast<int>(rng.Uniform(1, 18));
    for (int i = 0; i < len; ++i) {
      q += " ";
      q += tokens[rng.Uniform(0, std::size(tokens) - 1)];
    }
    auto result = gis.Query(q);
    if (!result.ok()) {
      // Whatever happened, it must be a typed front-end/planner error,
      // never Internal (and never a crash).
      EXPECT_FALSE(result.status().IsInternal())
          << result.status().ToString() << " for: " << q;
    }
  }
}

class FrameFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FrameFuzz, CorruptedFramesAreRejectedTyped) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> payload(
        static_cast<size_t>(rng.Uniform(0, 2048)));
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.Uniform(0, 255));
    }
    const std::vector<uint8_t> frame = wire::SealFrame(payload);

    // Clean round trip.
    auto clean = wire::OpenFrame(frame);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    ASSERT_EQ(*clean, payload);

    std::vector<uint8_t> mutated = frame;
    const int mode = static_cast<int>(rng.Uniform(0, 2));
    bool must_fail = false;
    if (mode == 0) {
      // 1–3 bit flips: below CRC-32's Hamming-distance-4 length bound
      // (~11 KB), these are *guaranteed* detectable, so the checksum
      // must reject — silently consuming a flipped frame is a bug.
      const int flips = static_cast<int>(rng.Uniform(1, 3));
      for (int f = 0; f < flips; ++f) {
        const size_t bit = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(mutated.size() * 8) - 1));
        mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
      must_fail = mutated != frame;
    } else if (mode == 1) {
      // Truncation anywhere, including inside the 8-byte header.
      mutated.resize(static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(frame.size()) - 1)));
      must_fail = true;
    } else {
      // Trailing garbage (length mismatch).
      const int extra = static_cast<int>(rng.Uniform(1, 16));
      for (int e = 0; e < extra; ++e) {
        mutated.push_back(static_cast<uint8_t>(rng.Uniform(0, 255)));
      }
      must_fail = true;
    }

    auto opened = wire::OpenFrame(mutated);
    if (must_fail) {
      ASSERT_FALSE(opened.ok()) << "undetected corruption, trial " << trial;
    }
    if (!opened.ok()) {
      EXPECT_TRUE(opened.status().IsSerializationError())
          << opened.status().ToString();
    }
  }
}

class ColumnarFuzz : public ::testing::TestWithParam<uint64_t> {};

/// Mutated and random byte strings through the columnar batch decoder:
/// same contract as the row serde — bounds-checked, malformed input is
/// a typed SerializationError, never UB. (Runs under the sanitize
/// preset via the chaos label, which is where the "never UB" half is
/// actually enforced.)
TEST_P(ColumnarFuzz, MutatedColumnarBytesNeverCrash) {
  Rng rng(GetParam());

  // A valid columnar message over every column shape as the seed.
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"b", TypeId::kBool},
      {"i", TypeId::kInt64},
      {"d", TypeId::kDouble},
      {"s", TypeId::kString},
      {"t", TypeId::kDate},
      {"n", TypeId::kNull}});
  RowBatch batch(schema);
  for (int r = 0; r < 50; ++r) {
    batch.Append({rng.Bernoulli(0.2) ? Value::Null(TypeId::kBool)
                                     : Value::Bool(rng.Bernoulli(0.5)),
                  Value::Int(rng.Uniform(-5000, 5000)),
                  Value::Double(rng.NextDouble()),
                  Value::String(rng.NextString(rng.Uniform(0, 16))),
                  Value::Date(rng.Uniform(0, 30000)),
                  Value::Null(TypeId::kNull)});
  }
  const auto valid =
      wire::SerializeColumnBatch(*ColumnBatch::FromRows(batch));

  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> bytes;
    const int mode = static_cast<int>(rng.Uniform(0, 2));
    if (mode == 0) {
      // Byte-level mutations of the valid message.
      bytes = valid;
      const int edits = static_cast<int>(rng.Uniform(1, 8));
      for (int e = 0; e < edits; ++e) {
        const size_t pos = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(bytes.size()) - 1));
        bytes[pos] = static_cast<uint8_t>(rng.Uniform(0, 255));
      }
    } else if (mode == 1) {
      // Truncation.
      bytes.assign(valid.begin(),
                   valid.begin() + rng.Uniform(
                       0, static_cast<int64_t>(valid.size()) - 1));
    } else {
      // Pure noise.
      bytes.resize(static_cast<size_t>(rng.Uniform(0, 512)));
      for (auto& b : bytes) b = static_cast<uint8_t>(rng.Uniform(0, 255));
    }

    ByteReader reader(bytes);
    auto decoded = wire::ReadColumnBatch(&reader);
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsSerializationError())
          << decoded.status().ToString() << " trial " << trial;
    } else {
      // Whatever decoded must also materialize without faulting.
      (void)decoded->ToRows();
    }
  }
}

class CursorFuzz : public ::testing::TestWithParam<uint64_t> {};

/// Mutated, truncated, and random byte strings through every cursor
/// payload decoder (open / fetch / close requests and chunk frames):
/// same contract as the rest of the wire layer — bounds-checked, typed
/// SerializationError on malformed input, never UB, and whatever does
/// decode must materialize without faulting.
TEST_P(CursorFuzz, MutatedCursorFramesNeverCrash) {
  Rng rng(GetParam());

  // Valid seeds for the mutators: one of each payload kind.
  std::vector<std::vector<uint8_t>> valid;
  {
    wire::OpenCursorRequest open;
    open.token = 0x9e3779b97f4a7c15ull;
    open.chunk_rows = 512;
    open.fragment.table = "orders";
    open.fragment.limit = 99;
    ByteWriter w;
    wire::WriteOpenCursorRequest(&w, open);
    valid.push_back(w.data());
  }
  {
    wire::FetchChunkRequest fetch;
    fetch.cursor_id = 7;
    fetch.seq = 12345;
    ByteWriter w;
    wire::WriteFetchChunkRequest(&w, fetch);
    valid.push_back(w.data());
  }
  {
    auto schema = std::make_shared<Schema>(std::vector<Field>{
        {"k", TypeId::kInt64}, {"s", TypeId::kString}});
    RowBatch rows(schema);
    for (int r = 0; r < 30; ++r) {
      rows.Append({Value::Int(rng.Uniform(-100, 100)),
                   Value::String(rng.NextString(rng.Uniform(0, 12)))});
    }
    ByteWriter w;
    wire::WriteCursorChunk(&w, /*cursor_id=*/3, /*seq=*/2, /*done=*/false,
                           rows);
    valid.push_back(w.data());
  }

  for (int trial = 0; trial < 400; ++trial) {
    const auto& base = valid[trial % valid.size()];
    std::vector<uint8_t> bytes;
    const int mode = static_cast<int>(rng.Uniform(0, 2));
    if (mode == 0) {
      bytes = base;
      const int edits = static_cast<int>(rng.Uniform(1, 8));
      for (int e = 0; e < edits; ++e) {
        const size_t pos = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(bytes.size()) - 1));
        bytes[pos] = static_cast<uint8_t>(rng.Uniform(0, 255));
      }
    } else if (mode == 1) {
      bytes.assign(base.begin(),
                   base.begin() + rng.Uniform(
                       0, static_cast<int64_t>(base.size()) - 1));
    } else {
      bytes.resize(static_cast<size_t>(rng.Uniform(0, 256)));
      for (auto& b : bytes) b = static_cast<uint8_t>(rng.Uniform(0, 255));
    }

    // Every decoder sees every mutation; each must fail typed or
    // produce a value that is safe to use.
    {
      ByteReader r(bytes);
      auto open = wire::ReadOpenCursorRequest(&r);
      if (!open.ok()) {
        EXPECT_TRUE(open.status().IsSerializationError())
            << open.status().ToString() << " trial " << trial;
      } else {
        // The decoder enforces the chunk-row bounds, not just syntax.
        EXPECT_GE(open->chunk_rows, 1);
        EXPECT_LE(open->chunk_rows, wire::kMaxCursorChunkRows);
      }
    }
    {
      ByteReader r(bytes);
      auto fetch = wire::ReadFetchChunkRequest(&r);
      if (!fetch.ok()) {
        EXPECT_TRUE(fetch.status().IsSerializationError())
            << fetch.status().ToString() << " trial " << trial;
      }
    }
    {
      ByteReader r(bytes);
      auto close = wire::ReadCloseCursorRequest(&r);
      if (!close.ok()) {
        EXPECT_TRUE(close.status().IsSerializationError())
            << close.status().ToString() << " trial " << trial;
      }
    }
    {
      ByteReader r(bytes);
      auto chunk = wire::ReadCursorChunk(&r);
      if (!chunk.ok()) {
        EXPECT_TRUE(chunk.status().IsSerializationError())
            << chunk.status().ToString() << " trial " << trial;
      } else {
        (void)chunk->rows.ToString(1 << 20);
        if (chunk->columnar) (void)chunk->columnar->ToRows();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<uint64_t>(500, 505));
INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarFuzz,
                         ::testing::Range<uint64_t>(800, 804));
INSTANTIATE_TEST_SUITE_P(Seeds, CursorFuzz,
                         ::testing::Range<uint64_t>(900, 906));
INSTANTIATE_TEST_SUITE_P(Seeds, MediatorFuzz,
                         ::testing::Range<uint64_t>(600, 604));
INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzz,
                         ::testing::Range<uint64_t>(700, 706));

}  // namespace
}  // namespace gisql
