/// Tests for equi-depth histograms: collection, wire transport, and the
/// cost-model accuracy win on skewed data that min/max interpolation
/// cannot capture.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/global_system.h"
#include "planner/cost_model.h"
#include "planner/logical_planner.h"
#include "sql/parser.h"
#include "storage/statistics.h"
#include "wire/protocol.h"

namespace gisql {
namespace {

std::vector<Row> SkewedRows(int n) {
  // Exponential-ish skew: 90% of values in [0, 100), tail out to 10000.
  Rng rng(17);
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    int64_t v;
    if (rng.Bernoulli(0.9)) {
      v = rng.Uniform(0, 99);
    } else {
      v = rng.Uniform(100, 10000);
    }
    rows.push_back({Value::Int(v)});
  }
  return rows;
}

TEST(HistogramTest, CollectedForLargeColumns) {
  Schema schema({{"v", TypeId::kInt64}});
  auto stats = CollectStats(schema, SkewedRows(5000));
  ASSERT_EQ(stats.columns[0].histogram_bounds.size(),
            static_cast<size_t>(kHistogramBuckets + 1));
  // Edges are sorted and span [min, max].
  const auto& bounds = stats.columns[0].histogram_bounds;
  EXPECT_EQ(bounds.front().Compare(stats.columns[0].min), 0);
  EXPECT_EQ(bounds.back().Compare(stats.columns[0].max), 0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LE(bounds[i - 1].Compare(bounds[i]), 0);
  }
}

TEST(HistogramTest, SkippedForSmallOrBoolColumns) {
  Schema schema({{"v", TypeId::kInt64}, {"b", TypeId::kBool}});
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Value::Int(i), Value::Bool(i % 2 == 0)});
  }
  auto stats = CollectStats(schema, rows);
  EXPECT_TRUE(stats.columns[0].histogram_bounds.empty());
  EXPECT_TRUE(stats.columns[1].histogram_bounds.empty());
}

TEST(HistogramTest, FractionBelowTracksSkew) {
  Schema schema({{"v", TypeId::kInt64}});
  auto rows = SkewedRows(20000);
  auto stats = CollectStats(schema, rows);

  auto actual_below = [&](int64_t b) {
    int64_t n = 0;
    for (const auto& row : rows) {
      if (row[0].AsInt() < b) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(rows.size());
  };
  for (int64_t b : {10, 50, 100, 500, 5000}) {
    const double est = stats.columns[0].FractionBelow(Value::Int(b));
    ASSERT_GE(est, 0.0);
    EXPECT_NEAR(est, actual_below(b), 0.05) << "bound " << b;
  }
  // Min/max interpolation would claim ~1% below 100; the truth is ~90%.
  EXPECT_GT(stats.columns[0].FractionBelow(Value::Int(100)), 0.8);
}

TEST(HistogramTest, FractionBelowEdgeCases) {
  ColumnStats cs;
  EXPECT_LT(cs.FractionBelow(Value::Int(5)), 0.0);  // no histogram
  Schema schema({{"v", TypeId::kInt64}});
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back({Value::Int(i)});
  auto stats = CollectStats(schema, rows);
  const auto& c = stats.columns[0];
  EXPECT_DOUBLE_EQ(c.FractionBelow(Value::Int(-5)), 0.0);
  EXPECT_DOUBLE_EQ(c.FractionBelow(Value::Int(99999)), 1.0);
  EXPECT_NEAR(c.FractionBelow(Value::Int(500)), 0.5, 0.05);
  EXPECT_LT(c.FractionBelow(Value::Null()), 0.0);
}

TEST(HistogramTest, SurvivesWireRoundTrip) {
  Schema schema({{"v", TypeId::kInt64}});
  auto stats = CollectStats(schema, SkewedRows(5000));
  ByteWriter w;
  wire::WriteTableStats(&w, stats);
  ByteReader r(w.data());
  auto back = wire::ReadTableStats(&r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->columns[0].histogram_bounds.size(),
            stats.columns[0].histogram_bounds.size());
  for (size_t i = 0; i < stats.columns[0].histogram_bounds.size(); ++i) {
    EXPECT_EQ(back->columns[0].histogram_bounds[i].Compare(
                  stats.columns[0].histogram_bounds[i]),
              0);
  }
}

TEST(HistogramTest, PlannerEstimatesImproveOnSkewedData) {
  GlobalSystem gis;
  auto src = *gis.CreateSource("s1", SourceDialect::kRelational);
  ASSERT_TRUE(src->ExecuteLocalSql("CREATE TABLE t (v bigint)").ok());
  {
    auto table = *src->engine().GetTable("t");
    table->InsertUnchecked(SkewedRows(20000));
  }
  ASSERT_TRUE(gis.ImportSource("s1").ok());

  // ~90% of rows have v < 100; min/max interpolation would estimate ~1%.
  CostParams params;
  CostModel cost(gis.catalog(), params);
  LogicalPlanner planner(gis.catalog());
  auto stmt = sql::ParseSelect("SELECT v FROM t WHERE v < 100");
  auto plan = planner.Plan(**stmt);
  ASSERT_TRUE(plan.ok());
  cost.Annotate(*plan);
  double est = -1;
  VisitPlan(*plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kFilter) est = node->est_rows;
  });
  ASSERT_GT(est, 0);
  EXPECT_GT(est, 20000 * 0.7);  // histogram sees the skew
  EXPECT_LT(est, 20000 * 0.99);
}

TEST(HistogramTest, StringHistograms) {
  Schema schema({{"s", TypeId::kString}});
  std::vector<Row> rows;
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    // Heavy skew toward strings starting with 'a'.
    std::string v = rng.Bernoulli(0.8) ? "a" + rng.NextString(4)
                                       : rng.NextString(5);
    rows.push_back({Value::String(std::move(v))});
  }
  auto stats = CollectStats(schema, rows);
  ASSERT_FALSE(stats.columns[0].histogram_bounds.empty());
  // ~80%+ of values sort below "b"; bucket counting sees that even
  // without numeric interpolation.
  const double below_b = stats.columns[0].FractionBelow(Value::String("b"));
  EXPECT_GT(below_b, 0.6);
}

}  // namespace
}  // namespace gisql
