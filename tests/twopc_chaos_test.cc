/// 2PC fault matrix (chaos): crash/drop each participant at every
/// protocol step — prepare and commit, transiently and permanently —
/// and verify the invariants: transient faults are absorbed by retry
/// with rows applied exactly once; a permanently dead participant at
/// prepare aborts everything (abort stays idempotent); a permanently
/// dead participant at commit surfaces the in-doubt state by name with
/// no partial commit hidden. Every scenario is a seeded, targeted
/// injection, so the matrix replays identically.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/global_system.h"
#include "wire/protocol.h"

namespace gisql {
namespace {

/// Which protocol step the fault hits and whether retry can outlast it.
struct FaultCase {
  const char* name;
  wire::Opcode step;
  FaultKind kind;
  int count;        ///< injection count; large = permanent
  int participant;  ///< index into the ledgers
};

constexpr int kPermanent = 1 << 30;

std::vector<FaultCase> Matrix() {
  std::vector<FaultCase> cases;
  for (int p = 0; p < 3; ++p) {
    cases.push_back({"prepare_drop", wire::Opcode::kTxnPrepare,
                     FaultKind::kDrop, 1, p});
    cases.push_back({"prepare_crash", wire::Opcode::kTxnPrepare,
                     FaultKind::kCrash, 1, p});
    cases.push_back({"prepare_dup", wire::Opcode::kTxnPrepare,
                     FaultKind::kDuplicate, 1, p});
    cases.push_back({"prepare_dead", wire::Opcode::kTxnPrepare,
                     FaultKind::kOutage, kPermanent, p});
    cases.push_back({"commit_drop", wire::Opcode::kTxnCommit,
                     FaultKind::kDrop, 1, p});
    cases.push_back({"commit_crash", wire::Opcode::kTxnCommit,
                     FaultKind::kCrash, 1, p});
    cases.push_back({"commit_dup", wire::Opcode::kTxnCommit,
                     FaultKind::kDuplicate, 1, p});
    cases.push_back({"commit_dead", wire::Opcode::kTxnCommit,
                     FaultKind::kOutage, kPermanent, p});
  }
  return cases;
}

class TwoPcFaultMatrix : public ::testing::TestWithParam<FaultCase> {
 protected:
  void SetUp() override {
    for (const char* name : kLedgers) {
      ASSERT_TRUE(gis_.CreateSource(name, SourceDialect::kRelational).ok());
      ASSERT_TRUE(gis_.ExecuteAt(name,
                                 "CREATE TABLE entries (id bigint, "
                                 "amount double)")
                      .ok());
    }
    ASSERT_TRUE(gis_.ImportTable("ledger_a", "entries", "entries_a").ok());
    ASSERT_TRUE(gis_.ImportTable("ledger_b", "entries", "entries_b").ok());
    ASSERT_TRUE(gis_.ImportTable("ledger_c", "entries", "entries_c").ok());
    // Retry deep enough to outlast a crash's restart window (the crash
    // plus outage_messages follow-on losses) but finite, so permanent
    // injections exhaust deterministically.
    gis_.set_retry_policy(RetryPolicy::Standard(6, 3));
    gis_.network().InstallFaults(3, FaultProfile{});  // targeted only
  }

  static constexpr const char* kLedgers[3] = {"ledger_a", "ledger_b",
                                              "ledger_c"};
  GlobalSystem gis_;
};

TEST_P(TwoPcFaultMatrix, InvariantsHold) {
  const FaultCase& fc = GetParam();
  const std::string victim = kLedgers[fc.participant];
  gis_.network().faults()->InjectOn(victim,
                                    static_cast<int>(fc.step), fc.kind,
                                    fc.count);

  Status st = gis_.ExecuteAtomically({
      {"ledger_a", "INSERT INTO entries VALUES (1, -100.0)"},
      {"ledger_b", "INSERT INTO entries VALUES (1, 60.0)"},
      {"ledger_c", "INSERT INTO entries VALUES (1, 40.0)"},
  });

  const bool permanent = fc.count == kPermanent;
  if (!permanent) {
    // Transient faults are the retry policy's job: the transaction
    // commits, and idempotent participants applied each row once.
    ASSERT_TRUE(st.ok()) << fc.name << " at " << victim << ": "
                         << st.ToString();
    for (const char* l : kLedgers) {
      // Count directly at the source: CountAt would route through the
      // (possibly still fault-windowed) network.
      auto table = *(*gis_.GetSource(l))->engine().GetTable("entries");
      EXPECT_EQ(table->num_rows(), 1u) << fc.name << " at " << victim;
      EXPECT_EQ((*gis_.GetSource(l))->pending_txns(), 0u) << l;
    }
    return;
  }

  ASSERT_FALSE(st.ok()) << fc.name << " at " << victim;
  EXPECT_NE(st.message().find(victim), std::string::npos)
      << fc.name << ": " << st.ToString();

  if (fc.step == wire::Opcode::kTxnPrepare) {
    // Atomic abort: no participant applied anything; abort of the dead
    // participant could not be delivered, but it had staged nothing.
    EXPECT_TRUE(st.IsNetworkError()) << st.ToString();
    for (const char* l : kLedgers) {
      auto table = *(*gis_.GetSource(l))->engine().GetTable("entries");
      EXPECT_EQ(table->num_rows(), 0u) << fc.name << " at " << victim;
      EXPECT_EQ((*gis_.GetSource(l))->pending_txns(), 0u) << l;
    }
  } else {
    // Classic in-doubt: reached participants committed, the dead one
    // still holds its staged rows, and the error says so.
    EXPECT_TRUE(st.IsInternal()) << st.ToString();
    EXPECT_NE(st.message().find("in doubt"), std::string::npos)
        << st.ToString();
    for (const char* l : kLedgers) {
      auto table = *(*gis_.GetSource(l))->engine().GetTable("entries");
      if (l == victim) {
        EXPECT_EQ(table->num_rows(), 0u) << l;
        EXPECT_EQ((*gis_.GetSource(l))->pending_txns(), 1u) << l;
      } else {
        EXPECT_EQ(table->num_rows(), 1u) << l;
        EXPECT_EQ((*gis_.GetSource(l))->pending_txns(), 0u) << l;
      }
    }
    // Resolution: once the partition heals, re-driving the commit at
    // the participant applies the staged rows exactly once.
    auto src = *gis_.GetSource(victim);
    const auto staged = src->staged_txn_ids();
    ASSERT_EQ(staged.size(), 1u);
    EXPECT_TRUE(src->CommitTxn(staged[0]).ok());
    EXPECT_TRUE(src->CommitTxn(staged[0]).ok());  // idempotent redelivery
    auto table = *src->engine().GetTable("entries");
    EXPECT_EQ(table->num_rows(), 1u) << victim;
    EXPECT_EQ(src->pending_txns(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TwoPcFaultMatrix, ::testing::ValuesIn(Matrix()),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return std::string(info.param.name).append("_at_") +
             std::to_string(info.param.participant);
    });

// ---------------------------------------------------------------------------
// Seeded concurrent-writer chaos over the interactive transaction API:
// lost-update prevention under write-write conflict, deterministic
// deadlock victims, and same-seed replay identity of gis.transactions.
// ---------------------------------------------------------------------------

void BuildBanks(GlobalSystem* gis) {
  for (const char* name : {"bank_a", "bank_b"}) {
    ASSERT_TRUE(gis->CreateSource(name, SourceDialect::kRelational).ok());
    ASSERT_TRUE(gis->ExecuteAt(name,
                               "CREATE TABLE entries (id bigint, "
                               "amount double)")
                    .ok());
    ASSERT_TRUE(
        gis->ExecuteAt(name, "INSERT INTO entries VALUES (1, 0.0)").ok());
  }
  ASSERT_TRUE(gis->ImportTable("bank_a", "entries", "entries_a").ok());
  ASSERT_TRUE(gis->ImportTable("bank_b", "entries", "entries_b").ok());
}

/// Serializes the full gis.transactions table (every column, every
/// row) for byte-identity comparisons across replays.
std::string DumpTransactions(GlobalSystem& gis) {
  auto r = gis.Query("SELECT * FROM gis.transactions");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return "<error>";
  std::ostringstream oss;
  for (const auto& row : r->batch.rows()) {
    for (const auto& v : row) oss << v.ToString() << "|";
    oss << "\n";
  }
  return oss.str();
}

/// One seeded round of two transactions racing a read-modify-write
/// increment of the same logical row. Returns 1 when a transaction
/// committed an increment (the loser must have been refused or
/// aborted — never silently overwritten).
int RaceIncrementRound(GlobalSystem& gis, Rng& rng) {
  auto t1 = gis.BeginTransaction();
  auto t2 = gis.BeginTransaction();
  EXPECT_TRUE(t1.ok() && t2.ok());
  // Both read the balance at their (identical) snapshot.
  double bal = 0.0;
  {
    auto r = gis.QueryInTxn(*t1, "SELECT amount FROM entries_a "
                                 "WHERE id = 1");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    bal = r->batch.rows()[0][0].AsDouble();
    auto r2 = gis.QueryInTxn(*t2, "SELECT amount FROM entries_a "
                                  "WHERE id = 1");
    EXPECT_TRUE(r2.ok());
    EXPECT_EQ(r2->batch.rows()[0][0].AsDouble(), bal);
  }
  const std::string rewrite =
      "INSERT INTO entries VALUES (1, " + std::to_string(bal + 1.0) + ")";
  // Seeded interleaving: which transaction reaches the row first.
  const uint64_t first = rng.Bernoulli(0.5) ? *t1 : *t2;
  const uint64_t second = first == *t1 ? *t2 : *t1;
  int committed = 0;
  auto attempt = [&](uint64_t txn) {
    Status st = gis.TxnWrite(txn, "bank_a",
                             "DELETE FROM entries WHERE id = 1");
    if (st.ok()) st = gis.TxnWrite(txn, "bank_a", rewrite);
    if (st.ok()) st = gis.CommitTransaction(txn);
    if (st.ok()) {
      ++committed;
      return;
    }
    // The loser lost loudly: lock conflict (still active — abort it)
    // or first-committer-wins (already aborted). Never a quiet commit
    // of a stale write.
    EXPECT_TRUE(st.IsOverloaded() || st.IsExecutionError())
        << st.ToString();
    (void)gis.AbortTransaction(txn);
  };
  attempt(first);
  attempt(second);
  return committed;
}

class TxnRaceSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TxnRaceSeeds, LostUpdatesArePrevented) {
  GlobalSystem gis;
  BuildBanks(&gis);
  Rng rng(GetParam());
  int committed = 0;
  for (int round = 0; round < 8; ++round) {
    committed += RaceIncrementRound(gis, rng);
  }
  // Every committed increment is in the balance. A lost update would
  // leave the balance short of the commit count; a dirty write would
  // push it past.
  auto r = gis.Query("SELECT amount FROM entries_a WHERE id = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->batch.rows()[0][0].AsDouble(),
                   static_cast<double>(committed));
  EXPECT_GE(committed, 1);
  // No transaction leaked staging or locks past its round.
  for (const char* b : {"bank_a", "bank_b"}) {
    EXPECT_EQ((*gis.GetSource(b))->pending_txns(), 0u) << b;
    EXPECT_EQ((*gis.GetSource(b))->locks().LockedResources(), 0u) << b;
  }
}

/// One seeded deadlock round: t1 and t2 lock one row each on opposite
/// banks, then cross. Whichever side reports the closing conflict, the
/// victim must be the younger transaction (t2). Appends a replay log
/// line describing the outcome.
void DeadlockRound(GlobalSystem& gis, Rng& rng, int round,
                   std::ostringstream* log) {
  auto t1 = gis.BeginTransaction();
  auto t2 = gis.BeginTransaction();
  ASSERT_TRUE(t1.ok() && t2.ok());
  const std::string key_a =
      "INSERT INTO entries VALUES (" + std::to_string(1000 + round) + ", 1.0)";
  const std::string key_b =
      "INSERT INTO entries VALUES (" + std::to_string(2000 + round) + ", 1.0)";
  ASSERT_TRUE(gis.TxnWrite(*t1, "bank_a", key_a).ok());
  ASSERT_TRUE(gis.TxnWrite(*t2, "bank_b", key_b).ok());
  // Seeded crossing order; the second crossing closes the cycle.
  const bool t1_crosses_first = rng.Bernoulli(0.5);
  Status first = t1_crosses_first ? gis.TxnWrite(*t1, "bank_b", key_b)
                                  : gis.TxnWrite(*t2, "bank_a", key_a);
  EXPECT_TRUE(first.IsOverloaded()) << first.ToString();
  Status second = t1_crosses_first ? gis.TxnWrite(*t2, "bank_a", key_a)
                                   : gis.TxnWrite(*t1, "bank_b", key_b);
  // The victim is always the youngest on the cycle — t2 — regardless
  // of which side's request detected it. When t1 detected, t2 was
  // aborted for it and t1's retry went through.
  if (t1_crosses_first) {
    EXPECT_TRUE(second.IsExecutionError()) << second.ToString();
    EXPECT_NE(second.message().find("deadlock"), std::string::npos);
  } else {
    EXPECT_TRUE(second.ok()) << second.ToString();
  }
  EXPECT_FALSE(gis.QueryInTxn(*t2, "SELECT id FROM entries_a").ok());
  EXPECT_TRUE(gis.CommitTransaction(*t1).ok());
  *log << "round " << round << ": cross=" << (t1_crosses_first ? 1 : 2)
       << " first=" << first.ToString() << " second=" << second.ToString()
       << " victim=" << *t2 << "\n";
}

TEST_P(TxnRaceSeeds, DeadlockVictimsAreDeterministicAcrossReplays) {
  std::string logs[2];
  for (int replay = 0; replay < 2; ++replay) {
    GlobalSystem gis;
    BuildBanks(&gis);
    Rng rng(GetParam());
    std::ostringstream log;
    for (int round = 0; round < 6; ++round) {
      DeadlockRound(gis, rng, round, &log);
    }
    EXPECT_EQ(gis.transactions().counters().deadlocks, 6);
    logs[replay] = log.str();
  }
  // Same seed → byte-identical victim/outcome log.
  EXPECT_EQ(logs[0], logs[1]);
}

TEST_P(TxnRaceSeeds, TransactionsSnapshotIdenticalSerialVsPooled) {
  // The worker pool changes wall-clock scheduling only; simulated
  // time, transaction ids, and every gis.transactions column must be
  // byte-identical between a serial and a pooled run of the same
  // seeded workload.
  std::string dumps[2];
  for (int mode = 0; mode < 2; ++mode) {
    PlannerOptions options;
    options.parallel_execution = mode == 1;
    options.worker_threads = mode == 1 ? 4 : 0;
    GlobalSystem gis(options);
    BuildBanks(&gis);
    Rng rng(GetParam());
    std::ostringstream log;
    for (int round = 0; round < 4; ++round) {
      RaceIncrementRound(gis, rng);
      DeadlockRound(gis, rng, round, &log);
    }
    dumps[mode] = DumpTransactions(gis);
  }
  EXPECT_FALSE(dumps[0].empty());
  EXPECT_EQ(dumps[0], dumps[1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnRaceSeeds,
                         ::testing::Values(1, 17, 1989, 424242));

}  // namespace
}  // namespace gisql
