/// 2PC fault matrix (chaos): crash/drop each participant at every
/// protocol step — prepare and commit, transiently and permanently —
/// and verify the invariants: transient faults are absorbed by retry
/// with rows applied exactly once; a permanently dead participant at
/// prepare aborts everything (abort stays idempotent); a permanently
/// dead participant at commit surfaces the in-doubt state by name with
/// no partial commit hidden. Every scenario is a seeded, targeted
/// injection, so the matrix replays identically.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/global_system.h"
#include "wire/protocol.h"

namespace gisql {
namespace {

/// Which protocol step the fault hits and whether retry can outlast it.
struct FaultCase {
  const char* name;
  wire::Opcode step;
  FaultKind kind;
  int count;        ///< injection count; large = permanent
  int participant;  ///< index into the ledgers
};

constexpr int kPermanent = 1 << 30;

std::vector<FaultCase> Matrix() {
  std::vector<FaultCase> cases;
  for (int p = 0; p < 3; ++p) {
    cases.push_back({"prepare_drop", wire::Opcode::kTxnPrepare,
                     FaultKind::kDrop, 1, p});
    cases.push_back({"prepare_crash", wire::Opcode::kTxnPrepare,
                     FaultKind::kCrash, 1, p});
    cases.push_back({"prepare_dup", wire::Opcode::kTxnPrepare,
                     FaultKind::kDuplicate, 1, p});
    cases.push_back({"prepare_dead", wire::Opcode::kTxnPrepare,
                     FaultKind::kOutage, kPermanent, p});
    cases.push_back({"commit_drop", wire::Opcode::kTxnCommit,
                     FaultKind::kDrop, 1, p});
    cases.push_back({"commit_crash", wire::Opcode::kTxnCommit,
                     FaultKind::kCrash, 1, p});
    cases.push_back({"commit_dup", wire::Opcode::kTxnCommit,
                     FaultKind::kDuplicate, 1, p});
    cases.push_back({"commit_dead", wire::Opcode::kTxnCommit,
                     FaultKind::kOutage, kPermanent, p});
  }
  return cases;
}

class TwoPcFaultMatrix : public ::testing::TestWithParam<FaultCase> {
 protected:
  void SetUp() override {
    for (const char* name : kLedgers) {
      ASSERT_TRUE(gis_.CreateSource(name, SourceDialect::kRelational).ok());
      ASSERT_TRUE(gis_.ExecuteAt(name,
                                 "CREATE TABLE entries (id bigint, "
                                 "amount double)")
                      .ok());
    }
    ASSERT_TRUE(gis_.ImportTable("ledger_a", "entries", "entries_a").ok());
    ASSERT_TRUE(gis_.ImportTable("ledger_b", "entries", "entries_b").ok());
    ASSERT_TRUE(gis_.ImportTable("ledger_c", "entries", "entries_c").ok());
    // Retry deep enough to outlast a crash's restart window (the crash
    // plus outage_messages follow-on losses) but finite, so permanent
    // injections exhaust deterministically.
    gis_.set_retry_policy(RetryPolicy::Standard(6, 3));
    gis_.network().InstallFaults(3, FaultProfile{});  // targeted only
  }

  static constexpr const char* kLedgers[3] = {"ledger_a", "ledger_b",
                                              "ledger_c"};
  GlobalSystem gis_;
};

TEST_P(TwoPcFaultMatrix, InvariantsHold) {
  const FaultCase& fc = GetParam();
  const std::string victim = kLedgers[fc.participant];
  gis_.network().faults()->InjectOn(victim,
                                    static_cast<int>(fc.step), fc.kind,
                                    fc.count);

  Status st = gis_.ExecuteAtomically({
      {"ledger_a", "INSERT INTO entries VALUES (1, -100.0)"},
      {"ledger_b", "INSERT INTO entries VALUES (1, 60.0)"},
      {"ledger_c", "INSERT INTO entries VALUES (1, 40.0)"},
  });

  const bool permanent = fc.count == kPermanent;
  if (!permanent) {
    // Transient faults are the retry policy's job: the transaction
    // commits, and idempotent participants applied each row once.
    ASSERT_TRUE(st.ok()) << fc.name << " at " << victim << ": "
                         << st.ToString();
    for (const char* l : kLedgers) {
      // Count directly at the source: CountAt would route through the
      // (possibly still fault-windowed) network.
      auto table = *(*gis_.GetSource(l))->engine().GetTable("entries");
      EXPECT_EQ(table->num_rows(), 1u) << fc.name << " at " << victim;
      EXPECT_EQ((*gis_.GetSource(l))->pending_txns(), 0u) << l;
    }
    return;
  }

  ASSERT_FALSE(st.ok()) << fc.name << " at " << victim;
  EXPECT_NE(st.message().find(victim), std::string::npos)
      << fc.name << ": " << st.ToString();

  if (fc.step == wire::Opcode::kTxnPrepare) {
    // Atomic abort: no participant applied anything; abort of the dead
    // participant could not be delivered, but it had staged nothing.
    EXPECT_TRUE(st.IsNetworkError()) << st.ToString();
    for (const char* l : kLedgers) {
      auto table = *(*gis_.GetSource(l))->engine().GetTable("entries");
      EXPECT_EQ(table->num_rows(), 0u) << fc.name << " at " << victim;
      EXPECT_EQ((*gis_.GetSource(l))->pending_txns(), 0u) << l;
    }
  } else {
    // Classic in-doubt: reached participants committed, the dead one
    // still holds its staged rows, and the error says so.
    EXPECT_TRUE(st.IsInternal()) << st.ToString();
    EXPECT_NE(st.message().find("in doubt"), std::string::npos)
        << st.ToString();
    for (const char* l : kLedgers) {
      auto table = *(*gis_.GetSource(l))->engine().GetTable("entries");
      if (l == victim) {
        EXPECT_EQ(table->num_rows(), 0u) << l;
        EXPECT_EQ((*gis_.GetSource(l))->pending_txns(), 1u) << l;
      } else {
        EXPECT_EQ(table->num_rows(), 1u) << l;
        EXPECT_EQ((*gis_.GetSource(l))->pending_txns(), 0u) << l;
      }
    }
    // Resolution: once the partition heals, re-driving the commit at
    // the participant applies the staged rows exactly once.
    auto src = *gis_.GetSource(victim);
    const auto staged = src->staged_txn_ids();
    ASSERT_EQ(staged.size(), 1u);
    EXPECT_TRUE(src->CommitTxn(staged[0]).ok());
    EXPECT_TRUE(src->CommitTxn(staged[0]).ok());  // idempotent redelivery
    auto table = *src->engine().GetTable("entries");
    EXPECT_EQ(table->num_rows(), 1u) << victim;
    EXPECT_EQ(src->pending_txns(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TwoPcFaultMatrix, ::testing::ValuesIn(Matrix()),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return std::string(info.param.name).append("_at_") +
             std::to_string(info.param.participant);
    });

}  // namespace
}  // namespace gisql
