/// Tests of the workload-intelligence layer: per-tenant attribution
/// (the sum-equals-totals invariant, the bounded tenant map), the
/// multi-window SLO burn-rate engine, the incident flight recorder,
/// and their gis.* / Prometheus surfaces on a live GlobalSystem.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/global_system.h"
#include "core/query_log.h"
#include "obs/flight_recorder.h"
#include "obs/query_context.h"
#include "obs/slo.h"
#include "obs/tenant_accountant.h"

namespace gisql {
namespace {

// ---------------------------------------------------------------------------
// Tenant accountant
// ---------------------------------------------------------------------------

TenantCharge MakeCharge(int64_t rows, double elapsed_ms, int64_t bytes) {
  TenantCharge c;
  c.rows = rows;
  c.elapsed_ms = elapsed_ms;
  c.bytes_sent = bytes;
  c.bytes_received = 2 * bytes;
  c.messages = 2;
  c.mem_bytes = 1000 + rows;
  c.page_hits = rows;
  c.page_misses = rows / 2;
  c.disk_ms = elapsed_ms / 4;
  return c;
}

/// The invariant the accountant exists to make checkable: summing any
/// column over SnapshotTenants() reproduces Totals() exactly.
void ExpectSumsEqualTotals(const TenantAccountant& acct) {
  TenantUsage sum;
  for (const auto& t : acct.SnapshotTenants()) {
    sum.queries += t.queries;
    sum.sheds += t.sheds;
    sum.cache_hits += t.cache_hits;
    sum.rows += t.rows;
    sum.elapsed_ms += t.elapsed_ms;
    sum.admission_wait_ms += t.admission_wait_ms;
    sum.bytes_sent += t.bytes_sent;
    sum.bytes_received += t.bytes_received;
    sum.messages += t.messages;
    sum.retries += t.retries;
    sum.page_hits += t.page_hits;
    sum.page_misses += t.page_misses;
    sum.disk_ms += t.disk_ms;
  }
  const TenantUsage totals = acct.Totals();
  EXPECT_EQ(sum.queries, totals.queries);
  EXPECT_EQ(sum.sheds, totals.sheds);
  EXPECT_EQ(sum.cache_hits, totals.cache_hits);
  EXPECT_EQ(sum.rows, totals.rows);
  EXPECT_DOUBLE_EQ(sum.elapsed_ms, totals.elapsed_ms);
  EXPECT_DOUBLE_EQ(sum.admission_wait_ms, totals.admission_wait_ms);
  EXPECT_EQ(sum.bytes_sent, totals.bytes_sent);
  EXPECT_EQ(sum.bytes_received, totals.bytes_received);
  EXPECT_EQ(sum.messages, totals.messages);
  EXPECT_EQ(sum.retries, totals.retries);
  EXPECT_EQ(sum.page_hits, totals.page_hits);
  EXPECT_EQ(sum.page_misses, totals.page_misses);
  EXPECT_DOUBLE_EQ(sum.disk_ms, totals.disk_ms);
}

TEST(TenantAccountantTest, SumOfTenantsEqualsTotals) {
  TenantAccountant acct;
  acct.Record("alpha", MakeCharge(10, 5.0, 100));
  acct.Record("beta", MakeCharge(20, 2.5, 50));
  acct.Record("alpha", MakeCharge(1, 0.5, 10));
  TenantCharge shed;
  shed.shed = true;
  acct.Record("gamma", shed);
  TenantCharge hit;
  hit.cache_hit = true;
  hit.rows = 3;
  acct.Record("beta", hit);

  EXPECT_EQ(acct.tracked_count(), 3u);
  const auto rows = acct.SnapshotTenants();
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by name, each row carrying its own charges only.
  EXPECT_EQ(rows[0].tenant, "alpha");
  EXPECT_EQ(rows[0].queries, 2);
  EXPECT_EQ(rows[0].rows, 11);
  EXPECT_EQ(rows[1].tenant, "beta");
  EXPECT_EQ(rows[1].queries, 2);
  EXPECT_EQ(rows[1].cache_hits, 1);
  EXPECT_EQ(rows[2].tenant, "gamma");
  EXPECT_EQ(rows[2].sheds, 1);
  EXPECT_EQ(rows[2].queries, 0);
  ExpectSumsEqualTotals(acct);
}

TEST(TenantAccountantTest, MemPeakIsMaxNotSum) {
  TenantAccountant acct;
  TenantCharge big;
  big.mem_bytes = 5000;
  TenantCharge small;
  small.mem_bytes = 100;
  acct.Record("a", big);
  acct.Record("a", small);
  EXPECT_EQ(acct.SnapshotTenants()[0].mem_peak_bytes, 5000);
  EXPECT_EQ(acct.Totals().mem_peak_bytes, 5000);
}

TEST(TenantAccountantTest, OverflowFoldsIntoBucketAndInvariantHolds) {
  TenantAccountant acct(/*max_tracked=*/2);
  acct.Record("a", MakeCharge(1, 1.0, 10));
  acct.Record("b", MakeCharge(2, 1.0, 10));
  // Map is full: c and d land in the overflow bucket; a and b keep
  // accumulating under their own names (first-seen-wins).
  acct.Record("c", MakeCharge(4, 1.0, 10));
  acct.Record("d", MakeCharge(8, 1.0, 10));
  acct.Record("a", MakeCharge(16, 1.0, 10));

  EXPECT_EQ(acct.tracked_count(), 2u);
  const auto rows = acct.SnapshotTenants();
  ASSERT_EQ(rows.size(), 3u);  // a, b, and the overflow bucket
  std::map<std::string, int64_t> by_name;
  for (const auto& r : rows) by_name[r.tenant] = r.rows;
  EXPECT_EQ(by_name["a"], 17);
  EXPECT_EQ(by_name["b"], 2);
  EXPECT_EQ(by_name[kOverflowTenant], 12);
  ExpectSumsEqualTotals(acct);
}

TEST(TenantAccountantTest, EmptyTenantNormalizesToDefault) {
  TenantAccountant acct;
  acct.Record("", MakeCharge(1, 1.0, 1));
  const auto rows = acct.SnapshotTenants();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tenant, kDefaultTenant);
  EXPECT_EQ(QueryContext::NormalizeTenant(""), kDefaultTenant);
  EXPECT_EQ(QueryContext::NormalizeTenant("t9"), "t9");
}

// ---------------------------------------------------------------------------
// SLO engine
// ---------------------------------------------------------------------------

TEST(SloEngineTest, EmptyWindowsReportFullAttainmentAndZeroBurn) {
  SloEngine slo;
  const auto snap = slo.Snapshot();
  ASSERT_EQ(snap.size(), 3u);  // the stock ladder
  for (const auto& s : snap) {
    EXPECT_EQ(s.slow_total, 0);
    EXPECT_DOUBLE_EQ(s.fast_attainment, 1.0);
    EXPECT_DOUBLE_EQ(s.slow_attainment, 1.0);
    EXPECT_DOUBLE_EQ(s.fast_burn, 0.0);
    EXPECT_FALSE(s.alerting);
  }
}

TEST(SloEngineTest, GoodEventsNeverAlert) {
  SloEngine slo;
  for (int i = 0; i < 100; ++i) {
    // Interactive events well under the 50 ms target.
    EXPECT_TRUE(slo.Record(2, 100.0 * i, 10.0, false).empty());
  }
  const auto snap = slo.Snapshot();
  // Declaration order: interactive, normal, background.
  EXPECT_EQ(snap[0].name, "interactive");
  EXPECT_DOUBLE_EQ(snap[0].slow_attainment, 1.0);
  EXPECT_DOUBLE_EQ(snap[0].slow_burn, 0.0);
  EXPECT_EQ(slo.Alerts().size(), 0u);
}

TEST(SloEngineTest, BreachRaisesOneRisingEdgeAtExactInstant) {
  SloEngine slo;
  // First bad interactive event: both windows hold only bad events, so
  // burn = 1/0.01 = 100 >= 2 in both — the rising edge fires at
  // exactly this event's finish instant.
  auto raised = slo.Record(2, 123.5, 400.0, false);
  ASSERT_EQ(raised.size(), 1u);
  EXPECT_EQ(raised[0].objective, "interactive");
  EXPECT_DOUBLE_EQ(raised[0].at_ms, 123.5);
  // Still in breach: no second rising edge.
  EXPECT_TRUE(slo.Record(2, 200.0, 400.0, false).empty());
  const auto snap = slo.Snapshot();
  EXPECT_TRUE(snap[0].alerting);
  EXPECT_EQ(snap[0].alerts, 1);
  EXPECT_DOUBLE_EQ(snap[0].last_alert_ms, 123.5);
}

TEST(SloEngineTest, ShedsAreNeverGood) {
  SloEngine slo;
  // A shed with zero sojourn still burns budget.
  auto raised = slo.Record(2, 50.0, 0.0, true);
  ASSERT_EQ(raised.size(), 1u);
  EXPECT_EQ(slo.Snapshot()[0].slow_good, 0);
}

TEST(SloEngineTest, RecoveryClearsAlertAndNewBreachRaisesAgain) {
  SloEngine slo;
  slo.Configure(/*fast=*/100.0, /*slow=*/1000.0, /*burn=*/2.0);
  ASSERT_EQ(slo.Record(2, 10.0, 400.0, false).size(), 1u);
  // Flood both windows with good events until attainment recovers past
  // the alert threshold (bad event ages out of the slow window too).
  for (int i = 0; i < 200; ++i) {
    slo.Record(2, 20.0 + i * 10.0, 1.0, false);
  }
  EXPECT_FALSE(slo.Snapshot()[0].alerting);
  // A fresh breach is a new rising edge.
  auto raised = slo.Record(2, 2100.0, 400.0, false);
  // One bad event among many good in the fast window may not re-breach
  // immediately; keep pushing bad events until it does.
  double t = 2110.0;
  while (raised.empty() && t < 5000.0) {
    raised = slo.Record(2, t, 400.0, false);
    t += 10.0;
  }
  ASSERT_EQ(raised.size(), 1u);
  EXPECT_EQ(slo.Snapshot()[0].alerts, 2);
}

TEST(SloEngineTest, PrioritiesMapToDistinctObjectives) {
  SloEngine slo;
  // Background target is 1000 ms: a 400 ms sojourn is good there but
  // bad for interactive.
  EXPECT_TRUE(slo.Record(0, 10.0, 400.0, false).empty());
  auto raised = slo.Record(2, 20.0, 400.0, false);
  ASSERT_EQ(raised.size(), 1u);
  const auto snap = slo.Snapshot();
  EXPECT_EQ(snap[2].name, "background");
  EXPECT_DOUBLE_EQ(snap[2].slow_attainment, 1.0);
  EXPECT_TRUE(snap[0].alerting);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

QueryFrame MakeFrame(double finish_ms, const std::string& shed = "") {
  QueryFrame f;
  f.query_id = static_cast<int64_t>(finish_ms);
  f.tenant = "t1";
  f.finish_ms = finish_ms;
  f.sojourn_ms = 5.0;
  f.shed_reason = shed;
  f.sql = "SELECT 1";
  return f;
}

TEST(FlightRecorderTest, RingKeepsMostRecentFrames) {
  FlightRecorder rec;
  rec.Configure(/*ring=*/4, /*max_incidents=*/4, /*cooldown_ms=*/1000.0,
                /*shed_spike=*/100, /*shed_window_ms=*/1000.0);
  for (int i = 1; i <= 6; ++i) rec.RecordFrame(MakeFrame(i));
  const auto frames = rec.Frames();
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_DOUBLE_EQ(frames.front().finish_ms, 3.0);
  EXPECT_DOUBLE_EQ(frames.back().finish_ms, 6.0);
}

TEST(FlightRecorderTest, LongSqlIsTruncatedInFrames) {
  FlightRecorder rec;
  QueryFrame f = MakeFrame(1.0);
  f.sql = std::string(500, 'x');
  rec.RecordFrame(f);
  const auto frames = rec.Frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].sql.size(), FlightRecorder::kMaxFrameSql + 3);
  EXPECT_EQ(frames[0].sql.substr(FlightRecorder::kMaxFrameSql), "...");
}

TEST(FlightRecorderTest, ShedSpikeTriggersOnceUnderCooldown) {
  FlightRecorder rec;
  rec.Configure(/*ring=*/16, /*max_incidents=*/8, /*cooldown_ms=*/10000.0,
                /*shed_spike=*/3, /*shed_window_ms=*/100.0);
  rec.SetSystemSnapshotFn([](double) { return std::string("{\"probe\":1}"); });
  rec.RecordFrame(MakeFrame(10.0, "queue_full"));
  rec.RecordFrame(MakeFrame(20.0, "queue_full"));
  EXPECT_EQ(rec.incidents_captured(), 0);
  rec.RecordFrame(MakeFrame(30.0, "queue_full"));  // third within 100 ms
  EXPECT_EQ(rec.incidents_captured(), 1);
  // More sheds inside the cooldown add no incidents...
  rec.RecordFrame(MakeFrame(40.0, "queue_full"));
  rec.RecordFrame(MakeFrame(50.0, "queue_full"));
  EXPECT_EQ(rec.incidents_captured(), 1);
  const auto incidents = rec.Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].trigger, "shed_spike");
  EXPECT_DOUBLE_EQ(incidents[0].at_ms, 30.0);
  // ...and the snapshot embeds the frames and the system callback.
  EXPECT_NE(incidents[0].json.find("\"frames\""), std::string::npos);
  EXPECT_NE(incidents[0].json.find("{\"probe\":1}"), std::string::npos);
}

TEST(FlightRecorderTest, SloAndBreakerTriggersHaveIndependentCooldowns) {
  FlightRecorder rec;
  rec.Configure(16, 8, /*cooldown_ms=*/1000.0, 100, 100.0);
  rec.OnSloAlert("interactive", 10.0, 5.0, 3.0);
  rec.OnBreakerOpen("hq", 10.0);  // different trigger kind: not blocked
  EXPECT_EQ(rec.incidents_captured(), 2);
  rec.OnSloAlert("interactive", 500.0, 5.0, 3.0);  // cooling down
  EXPECT_EQ(rec.incidents_captured(), 2);
  rec.OnSloAlert("interactive", 1500.0, 5.0, 3.0);  // cooldown passed
  EXPECT_EQ(rec.incidents_captured(), 3);
  const auto incidents = rec.Incidents();
  EXPECT_EQ(incidents[0].trigger, "slo_burn");
  // The detail names the objective and both burn rates.
  EXPECT_EQ(incidents[0].detail.rfind("interactive fast_burn=", 0), 0u);
  EXPECT_EQ(incidents[1].trigger, "breaker_open");
  EXPECT_EQ(incidents[1].detail, "hq");
}

TEST(FlightRecorderTest, DisabledRecorderCapturesNothing) {
  FlightRecorder rec;
  rec.Configure(16, 8, 0.0, 1, 1000.0);
  rec.set_enabled(false);
  rec.RecordFrame(MakeFrame(1.0, "queue_full"));
  rec.OnSloAlert("interactive", 2.0, 5.0, 3.0);
  rec.OnBreakerOpen("hq", 3.0);
  EXPECT_EQ(rec.incidents_captured(), 0);
  EXPECT_EQ(rec.Incidents().size(), 0u);
}

TEST(FlightRecorderTest, IncidentListIsBoundedButCounterIsNot) {
  FlightRecorder rec;
  rec.Configure(4, /*max_incidents=*/2, /*cooldown_ms=*/0.0, 100, 100.0);
  for (int i = 0; i < 5; ++i) {
    rec.OnBreakerOpen("s" + std::to_string(i), i * 10.0);
  }
  EXPECT_EQ(rec.incidents_captured(), 5);
  const auto incidents = rec.Incidents();
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].detail, "s3");  // oldest dropped
  EXPECT_EQ(incidents[1].detail, "s4");
  EXPECT_EQ(incidents[1].id, 5);  // ids keep counting past eviction
}

// ---------------------------------------------------------------------------
// Query log capacity from the environment
// ---------------------------------------------------------------------------

TEST(QueryLogCapacityTest, EnvParsesClampsAndFallsBack) {
  unsetenv("GISQL_QUERY_LOG_CAPACITY");
  EXPECT_EQ(QueryLog::CapacityFromEnv(), QueryLog::kDefaultCapacity);
  setenv("GISQL_QUERY_LOG_CAPACITY", "1000", 1);
  EXPECT_EQ(QueryLog::CapacityFromEnv(), 1000u);
  setenv("GISQL_QUERY_LOG_CAPACITY", "not-a-number", 1);
  EXPECT_EQ(QueryLog::CapacityFromEnv(), QueryLog::kDefaultCapacity);
  setenv("GISQL_QUERY_LOG_CAPACITY", "0", 1);
  EXPECT_EQ(QueryLog::CapacityFromEnv(), QueryLog::kDefaultCapacity);
  setenv("GISQL_QUERY_LOG_CAPACITY", "99999999", 1);
  EXPECT_EQ(QueryLog::CapacityFromEnv(), QueryLog::kMaxCapacity);
  unsetenv("GISQL_QUERY_LOG_CAPACITY");
}

// ---------------------------------------------------------------------------
// p99.9 digests
// ---------------------------------------------------------------------------

TEST(HistogramP999Test, TailQuantileOrderingHolds) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  const HistogramSnapshot d = DigestHistogram(h);
  EXPECT_EQ(d.count, 1000);
  EXPECT_GE(d.p999, d.p99);
  EXPECT_GE(d.p99, d.p95);
  EXPECT_LE(d.p999, d.max);
  // An outlier pair only the p99.9 should resolve (2/1000 puts the
  // 0.999 rank past the low bucket while 0.99 stays inside it).
  Histogram spike;
  for (int i = 0; i < 998; ++i) spike.Observe(1.0);
  spike.Observe(10000.0);
  spike.Observe(10000.0);
  const HistogramSnapshot s = DigestHistogram(spike);
  EXPECT_LT(s.p99, 100.0);
  EXPECT_GT(s.p999, 100.0);
}

// ---------------------------------------------------------------------------
// End-to-end: attribution, gis.* surfaces, Prometheus, determinism
// ---------------------------------------------------------------------------

void Build(GlobalSystem* gis) {
  auto hq = *gis->CreateSource("hq", SourceDialect::kRelational);
  ASSERT_TRUE(hq->ExecuteLocalSql(
                    "CREATE TABLE orders (oid bigint, cid bigint, "
                    "total double)")
                  .ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(hq->ExecuteLocalSql(
                      "INSERT INTO orders VALUES (" + std::to_string(i) +
                      ", " + std::to_string(i % 5) + ", " +
                      std::to_string(i * 1.5) + ")")
                    .ok());
  }
  ASSERT_TRUE(gis->ImportSource("hq").ok());
}

TEST(WorkloadIntelligenceTest, SubmitAttributesToNamedTenant) {
  GlobalSystem gis;
  Build(&gis);
  GlobalSystem::SubmitOptions submit;
  submit.tenant = "acme";
  ASSERT_TRUE(gis.Submit("SELECT COUNT(*) FROM orders", submit).ok());
  ASSERT_TRUE(gis.Query("SELECT MAX(oid) FROM orders").ok());

  const auto rows = gis.tenants().SnapshotTenants();
  std::map<std::string, TenantUsage> by_name;
  for (const auto& r : rows) by_name[r.tenant] = r;
  ASSERT_TRUE(by_name.count("acme"));
  ASSERT_TRUE(by_name.count("default"));  // the plain Query() above
  EXPECT_EQ(by_name["acme"].queries, 1);
  EXPECT_GT(by_name["acme"].bytes_received, 0);
  EXPECT_GT(by_name["acme"].messages, 0);
  EXPECT_EQ(by_name["default"].queries, 1);

  // The per-tenant ledger and the query log tell the same story.
  int64_t log_bytes = 0;
  for (const auto& e : gis.query_log().Snapshot()) {
    log_bytes += e.bytes_received;
  }
  EXPECT_EQ(gis.tenants().Totals().bytes_received, log_bytes);
}

TEST(WorkloadIntelligenceTest, QueryLogCarriesTenantAndFinish) {
  GlobalSystem gis;
  Build(&gis);
  GlobalSystem::SubmitOptions submit;
  submit.tenant = "acme";
  submit.priority = 2;
  ASSERT_TRUE(gis.Submit("SELECT COUNT(*) FROM orders", submit).ok());
  const auto entries = gis.query_log().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].tenant, "acme");
  EXPECT_EQ(entries[0].priority, 2);
  EXPECT_GT(entries[0].finish_ms, 0.0);
  EXPECT_DOUBLE_EQ(entries[0].finish_ms,
                   entries[0].admission_wait_ms + entries[0].elapsed_ms);
}

TEST(WorkloadIntelligenceTest, GisTenantsTableSumsMatchTotals) {
  GlobalSystem gis;
  Build(&gis);
  for (int i = 0; i < 3; ++i) {
    GlobalSystem::SubmitOptions submit;
    submit.tenant = "t" + std::to_string(i % 2);
    ASSERT_TRUE(gis.Submit("SELECT COUNT(*) FROM orders WHERE oid > " +
                               std::to_string(i),
                           submit)
                    .ok());
  }
  auto result = gis.Query(
      "SELECT tenant, queries, bytes_received FROM gis.tenants "
      "ORDER BY tenant");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 2u);
  int64_t queries = 0;
  int64_t bytes = 0;
  for (const auto& row : result->batch.rows()) {
    queries += row[1].AsInt();
    bytes += row[2].AsInt();
  }
  const TenantUsage totals = gis.tenants().Totals();
  EXPECT_EQ(queries + 1, totals.queries);  // +1: the gis.tenants scan ran
                                           // after its own snapshot
  EXPECT_EQ(bytes, totals.bytes_received);  // the scan itself moved none
}

TEST(WorkloadIntelligenceTest, GisSloTableReflectsDefaultLadder) {
  GlobalSystem gis;
  Build(&gis);
  ASSERT_TRUE(gis.Query("SELECT COUNT(*) FROM orders").ok());
  auto result = gis.Query(
      "SELECT objective, priority, target_ms, goal, slow_total "
      "FROM gis.slo ORDER BY priority");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 3u);
  const auto& rows = result->batch.rows();
  EXPECT_EQ(rows[0][0].AsString(), "background");
  EXPECT_EQ(rows[1][0].AsString(), "normal");
  EXPECT_EQ(rows[2][0].AsString(), "interactive");
  EXPECT_DOUBLE_EQ(rows[2][2].AsDouble(), 50.0);
  // The priming query ran at normal priority.
  EXPECT_GE(rows[1][4].AsInt(), 1);
}

TEST(WorkloadIntelligenceTest, ShedSpikeShowsUpInGisIncidents) {
  PlannerOptions options;
  options.admission_control = true;
  options.max_concurrent_queries = 1;
  options.admission_queue_limit = 0;  // any overlap sheds immediately
  options.flight_shed_spike = 3;
  options.flight_shed_window_ms = 10'000.0;
  GlobalSystem gis(options);
  Build(&gis);

  GlobalSystem::SubmitOptions submit;
  submit.tenant = "flood";
  submit.arrival_ms = 0.0;
  // The first query occupies the only slot for its full duration; the
  // rest arrive at t=0 behind a zero-length queue and shed.
  int sheds = 0;
  for (int i = 0; i < 6; ++i) {
    auto r = gis.Submit("SELECT COUNT(*) FROM orders WHERE oid >= " +
                            std::to_string(i),
                        submit);
    if (!r.ok()) ++sheds;
  }
  ASSERT_GE(sheds, 3);
  EXPECT_GE(gis.flight_recorder().incidents_captured(), 1);

  // The shed storm can also breach the SLO ladder, so a slo_burn
  // incident may land first — filter for the spike capture.
  auto result = gis.Query(
      "SELECT id, trigger, detail, snapshot FROM gis.incidents "
      "WHERE trigger = 'shed_spike'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->batch.num_rows(), 1u);
  const auto& row = result->batch.rows()[0];
  EXPECT_EQ(row[1].AsString(), "shed_spike");
  const std::string json = row[3].AsString();
  EXPECT_NE(json.find("\"frames\""), std::string::npos);
  EXPECT_NE(json.find("\"system\""), std::string::npos);
  EXPECT_NE(json.find("\"admission\""), std::string::npos);
  // Shed frames carry the tenant that was refused.
  EXPECT_NE(json.find("flood"), std::string::npos);
  // The sheds are charged to the tenant ledger too.
  const auto rows = gis.tenants().SnapshotTenants();
  bool found = false;
  for (const auto& t : rows) {
    if (t.tenant == "flood") {
      found = true;
      EXPECT_EQ(t.sheds, sheds);
    }
  }
  EXPECT_TRUE(found);
}

TEST(WorkloadIntelligenceTest, PrometheusCarriesTenantAndSloSeries) {
  GlobalSystem gis;
  Build(&gis);
  GlobalSystem::SubmitOptions submit;
  submit.tenant = "acme";
  ASSERT_TRUE(gis.Submit("SELECT COUNT(*) FROM orders", submit).ok());
  const std::string text = gis.ExportPrometheus();
  EXPECT_NE(text.find("gisql_tenant_queries_total{tenant=\"acme\"} 1"),
            std::string::npos)
      << text.substr(0, 400);
  EXPECT_NE(text.find("gisql_slo_slow_burn{objective=\"interactive\"}"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gisql_incidents_total counter"),
            std::string::npos);
}

TEST(EscapeLabelValueTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(WorkloadIntelligenceTest, HostileTenantNameIsEscapedInExport) {
  GlobalSystem gis;
  Build(&gis);
  GlobalSystem::SubmitOptions submit;
  submit.tenant = "evil\"tenant\\x";
  ASSERT_TRUE(gis.Submit("SELECT COUNT(*) FROM orders", submit).ok());
  const std::string text = gis.ExportPrometheus();
  EXPECT_NE(
      text.find("gisql_tenant_queries_total{tenant=\"evil\\\"tenant\\\\x\"}"),
      std::string::npos);
}

/// The tentpole determinism property: the whole workload-intelligence
/// surface — tenant ledger, SLO evaluation, incident JSON — must render
/// byte-identically serial vs pooled under the same seeded traffic.
TEST(WorkloadIntelligenceDeterminismTest, SerialAndPooledAreIdentical) {
  auto run = [](bool parallel) {
    PlannerOptions options;
    options.parallel_execution = parallel;
    options.admission_control = true;
    options.max_concurrent_queries = 1;
    options.admission_queue_limit = 0;
    options.flight_shed_spike = 2;
    auto gis = std::make_unique<GlobalSystem>(options);
    Build(gis.get());
    for (int i = 0; i < 8; ++i) {
      GlobalSystem::SubmitOptions submit;
      submit.tenant = "t" + std::to_string(i % 3);
      submit.priority = i % 3;
      submit.arrival_ms = 0.0;  // flash crowd: everyone at t=0
      (void)gis->Submit("SELECT COUNT(*) FROM orders WHERE cid = " +
                            std::to_string(i % 5),
                        submit);
    }
    std::string out;
    for (const char* q :
         {"SELECT * FROM gis.tenants ORDER BY tenant",
          "SELECT * FROM gis.slo ORDER BY objective",
          "SELECT * FROM gis.incidents ORDER BY id",
          "SELECT id, sql, tenant, priority, finish_ms, shed_reason "
          "FROM gis.queries ORDER BY id"}) {
      auto r = gis->Query(q);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) out += r->batch.ToString(1 << 20);
    }
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace gisql
