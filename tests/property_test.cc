/// Property-based test suites (parameterized over seeds): serde
/// round-trips on randomized data, LIKE matching vs a reference
/// implementation, constant-folding equivalence on random rows, and the
/// central optimizer soundness property — every planner configuration
/// returns the same answer as the unoptimized baseline on randomized
/// worlds and queries.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/global_system.h"
#include "expr/binder.h"
#include "expr/eval.h"
#include "sql/parser.h"
#include "wire/serde.h"

namespace gisql {
namespace {

// ---------------------------------------------------------------------------
// Random data helpers
// ---------------------------------------------------------------------------

Value RandomValue(Rng& rng, TypeId type, double null_prob = 0.15) {
  if (rng.Bernoulli(null_prob)) return Value::Null(type);
  switch (type) {
    case TypeId::kBool: return Value::Bool(rng.Bernoulli(0.5));
    case TypeId::kInt64: return Value::Int(rng.Uniform(-1000, 1000));
    case TypeId::kDouble:
      return Value::Double((rng.NextDouble() - 0.5) * 2000.0);
    case TypeId::kString: return Value::String(rng.NextString(rng.Uniform(0, 12)));
    case TypeId::kDate: return Value::Date(rng.Uniform(0, 30000));
    case TypeId::kNull: return Value::Null();
  }
  return Value::Null();
}

RowBatch RandomBatch(Rng& rng) {
  const TypeId pool[] = {TypeId::kBool, TypeId::kInt64, TypeId::kDouble,
                         TypeId::kString, TypeId::kDate};
  const int ncols = static_cast<int>(rng.Uniform(1, 6));
  std::vector<Field> fields;
  for (int c = 0; c < ncols; ++c) {
    fields.emplace_back("c" + std::to_string(c),
                        pool[rng.Uniform(0, 4)], rng.Bernoulli(0.7));
  }
  auto schema = std::make_shared<Schema>(std::move(fields));
  RowBatch batch(schema);
  const int nrows = static_cast<int>(rng.Uniform(0, 50));
  for (int r = 0; r < nrows; ++r) {
    Row row;
    for (int c = 0; c < ncols; ++c) {
      row.push_back(RandomValue(rng, schema->field(c).type));
    }
    batch.Append(std::move(row));
  }
  return batch;
}

// ---------------------------------------------------------------------------
// Batch serde round-trip property
// ---------------------------------------------------------------------------

class BatchSerdeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchSerdeProperty, RoundTripPreservesEverything) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    RowBatch batch = RandomBatch(rng);
    auto bytes = wire::SerializeBatch(batch);
    ByteReader reader(bytes);
    auto back = wire::ReadBatch(&reader);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_TRUE(reader.AtEnd());
    ASSERT_EQ(back->num_rows(), batch.num_rows());
    ASSERT_TRUE(back->schema()->Equals(*batch.schema()));
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      for (size_t c = 0; c < batch.schema()->num_fields(); ++c) {
        const Value& a = batch.rows()[r][c];
        const Value& b = back->rows()[r][c];
        ASSERT_EQ(a.is_null(), b.is_null());
        if (!a.is_null()) ASSERT_EQ(a.Compare(b), 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchSerdeProperty,
                         ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Serde never crashes on corrupted bytes (bounds-checking property)
// ---------------------------------------------------------------------------

class CorruptionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionProperty, TruncationAndBitFlipsNeverCrash) {
  Rng rng(GetParam());
  RowBatch batch = RandomBatch(rng);
  auto bytes = wire::SerializeBatch(batch);
  if (bytes.empty()) return;
  // Truncations at every eighth offset.
  for (size_t cut = 0; cut < bytes.size(); cut += 8) {
    ByteReader reader(bytes.data(), cut);
    auto result = wire::ReadBatch(&reader);
    (void)result.ok();  // must not crash; error or success both fine
  }
  // Random bit flips.
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupted = bytes;
    const size_t pos =
        static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(bytes.size()) - 1));
    corrupted[pos] ^= static_cast<uint8_t>(1u << rng.Uniform(0, 7));
    ByteReader reader(corrupted);
    auto result = wire::ReadBatch(&reader);
    (void)result.ok();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionProperty,
                         ::testing::Range<uint64_t>(100, 108));

// ---------------------------------------------------------------------------
// LIKE matcher vs reference implementation
// ---------------------------------------------------------------------------

bool ReferenceLike(const std::string& v, const std::string& p, size_t vi = 0,
                   size_t pi = 0) {
  if (pi == p.size()) return vi == v.size();
  if (p[pi] == '%') {
    for (size_t skip = vi; skip <= v.size(); ++skip) {
      if (ReferenceLike(v, p, skip, pi + 1)) return true;
    }
    return false;
  }
  if (vi == v.size()) return false;
  if (p[pi] == '_' || p[pi] == v[vi]) {
    return ReferenceLike(v, p, vi + 1, pi + 1);
  }
  return false;
}

class LikeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LikeProperty, MatchesReferenceSemantics) {
  Rng rng(GetParam());
  const char alphabet[] = {'a', 'b', '%', '_'};
  for (int trial = 0; trial < 500; ++trial) {
    std::string value(rng.Uniform(0, 8), 'a');
    for (auto& c : value) c = static_cast<char>('a' + rng.Uniform(0, 1));
    std::string pattern(rng.Uniform(0, 6), 'a');
    for (auto& c : pattern) c = alphabet[rng.Uniform(0, 3)];
    EXPECT_EQ(LikeMatch(value, pattern), ReferenceLike(value, pattern))
        << "value='" << value << "' pattern='" << pattern << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikeProperty,
                         ::testing::Range<uint64_t>(200, 206));

// ---------------------------------------------------------------------------
// Constant folding preserves semantics on random rows
// ---------------------------------------------------------------------------

class FoldProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FoldProperty, FoldedTreeEvaluatesIdentically) {
  Rng rng(GetParam());
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kDouble},
                 {"s", TypeId::kString}});
  Binder binder(schema);
  const char* templates[] = {
      "a + 2 * 3 - 1",
      "(a > 2 + 2) AND (b < 10.0 * 10.0)",
      "CASE WHEN 1 = 1 THEN a ELSE a * 100 END",
      "COALESCE(NULL, a + 0)",
      "a IN (1 + 1, 4 / 2, 9)",
      "s LIKE 'a%' OR 2 > 3",
      "ABS(0 - 3) + a",
      "CAST(2.9 AS bigint) + a",
  };
  for (const char* text : templates) {
    auto ast = sql::ParseScalarExpr(text);
    ASSERT_TRUE(ast.ok());
    auto bound = binder.BindScalar(**ast);
    ASSERT_TRUE(bound.ok()) << text;
    ExprPtr folded = FoldConstants(*bound);
    for (int trial = 0; trial < 50; ++trial) {
      Row row = {RandomValue(rng, TypeId::kInt64),
                 RandomValue(rng, TypeId::kDouble),
                 RandomValue(rng, TypeId::kString)};
      auto v1 = EvalExpr(**bound, row);
      auto v2 = EvalExpr(*folded, row);
      ASSERT_EQ(v1.ok(), v2.ok()) << text;
      if (!v1.ok()) continue;
      ASSERT_EQ(v1->is_null(), v2->is_null()) << text;
      if (!v1->is_null()) {
        ASSERT_EQ(v1->Compare(*v2), 0) << text;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldProperty,
                         ::testing::Range<uint64_t>(300, 305));

// ---------------------------------------------------------------------------
// Optimizer soundness: every configuration gives the baseline's answer
// ---------------------------------------------------------------------------

struct OptimizerCase {
  uint64_t seed;
};

class OptimizerSoundness : public ::testing::TestWithParam<uint64_t> {
 protected:
  /// Builds a small random two-source world with a union view.
  void BuildWorld(GlobalSystem& gis, Rng& rng) {
    const SourceDialect dialects[] = {
        SourceDialect::kRelational, SourceDialect::kDocument,
        SourceDialect::kKeyValue, SourceDialect::kLegacy};
    auto dim_src = *gis.CreateSource("dimsrc", dialects[rng.Uniform(0, 3)]);
    ASSERT_TRUE(dim_src
                    ->ExecuteLocalSql(
                        "CREATE TABLE dim (k bigint, tag varchar, "
                        "w double)")
                    .ok());
    auto dim = *dim_src->engine().GetTable("dim");
    const int dim_rows = static_cast<int>(rng.Uniform(5, 60));
    std::vector<Row> rows;
    for (int i = 0; i < dim_rows; ++i) {
      rows.push_back({Value::Int(i),
                      Value::String("t" + std::to_string(rng.Uniform(0, 6))),
                      RandomValue(rng, TypeId::kDouble, 0.2)});
    }
    dim->InsertUnchecked(std::move(rows));
    ASSERT_TRUE(gis.ImportSource("dimsrc").ok());

    std::vector<std::string> members;
    for (int s = 0; s < 2; ++s) {
      const std::string name = "shard" + std::to_string(s);
      auto src = *gis.CreateSource(name, dialects[rng.Uniform(0, 3)]);
      ASSERT_TRUE(src->ExecuteLocalSql(
                        "CREATE TABLE facts (id bigint, k bigint, "
                        "v double, note varchar)")
                      .ok());
      auto t = *src->engine().GetTable("facts");
      std::vector<Row> frows;
      const int n = static_cast<int>(rng.Uniform(20, 200));
      for (int i = 0; i < n; ++i) {
        frows.push_back({Value::Int(s * 10000 + i),
                         Value::Int(rng.Uniform(0, 80)),
                         RandomValue(rng, TypeId::kDouble, 0.1),
                         Value::String(rng.NextString(5))});
      }
      t->InsertUnchecked(std::move(frows));
      ASSERT_TRUE(gis.ImportTable(name, "facts", "facts_" + name).ok());
      members.push_back("facts_" + name);
    }
    ASSERT_TRUE(gis.CreateUnionView("facts", members).ok());
  }
};

TEST_P(OptimizerSoundness, AllConfigurationsAgree) {
  Rng rng(GetParam());
  GlobalSystem gis;
  BuildWorld(gis, rng);

  const std::string queries[] = {
      "SELECT COUNT(*), SUM(v), MIN(k), MAX(k) FROM facts WHERE k < 40",
      "SELECT k, COUNT(*) AS n FROM facts GROUP BY k HAVING COUNT(*) > 1 "
      "ORDER BY n DESC, k LIMIT 10",
      "SELECT d.tag, COUNT(*), AVG(f.v) FROM facts f JOIN dim d "
      "ON f.k = d.k GROUP BY d.tag ORDER BY d.tag",
      "SELECT f.id FROM facts f JOIN dim d ON f.k = d.k "
      "WHERE d.tag = 't1' AND f.v IS NOT NULL ORDER BY f.id LIMIT 20",
      "SELECT DISTINCT tag FROM dim ORDER BY tag",
      // Top-N pushdown path.
      "SELECT id, v FROM facts ORDER BY v DESC, id LIMIT 7",
      // UNION ALL across a table and the partitioned view.
      "SELECT k FROM dim UNION ALL SELECT k FROM facts ORDER BY k "
      "LIMIT 25",
      // IN-subquery semijoin.
      "SELECT COUNT(*) FROM facts WHERE k IN "
      "(SELECT k FROM dim WHERE tag = 't2')",
  };

  std::vector<PlannerOptions> configs;
  configs.push_back(PlannerOptions::ShipEverything());
  configs.push_back(PlannerOptions::FilterPushdownOnly());
  configs.push_back(PlannerOptions::Full());
  {
    PlannerOptions force_semi;
    force_semi.force_semijoin = true;
    configs.push_back(force_semi);
  }
  {
    PlannerOptions worst;
    worst.join_ordering = JoinOrdering::kWorst;
    configs.push_back(worst);
  }
  {
    PlannerOptions no_agg;
    no_agg.enable_aggregate_pushdown = false;
    no_agg.join_ordering = JoinOrdering::kGreedy;
    configs.push_back(no_agg);
  }

  for (const auto& q : queries) {
    gis.set_options(PlannerOptions::ShipEverything());
    auto baseline = gis.Query(q);
    ASSERT_TRUE(baseline.ok()) << q << ": " << baseline.status().ToString();
    for (size_t ci = 1; ci < configs.size(); ++ci) {
      gis.set_options(configs[ci]);
      auto result = gis.Query(q);
      ASSERT_TRUE(result.ok())
          << "config " << ci << " on " << q << ": "
          << result.status().ToString();
      ASSERT_EQ(result->batch.num_rows(), baseline->batch.num_rows())
          << "config " << ci << " on " << q;
      // Row-set equality. Ordered queries compare positionally; the
      // unordered aggregate in queries[0] has a single row anyway.
      for (size_t r = 0; r < baseline->batch.num_rows(); ++r) {
        for (size_t c = 0; c < baseline->batch.schema()->num_fields();
             ++c) {
          const Value& a = baseline->batch.rows()[r][c];
          const Value& b = result->batch.rows()[r][c];
          ASSERT_EQ(a.is_null(), b.is_null())
              << "config " << ci << " on " << q << " row " << r;
          if (a.is_null()) continue;
          if (a.type() == TypeId::kDouble || b.type() == TypeId::kDouble) {
            ASSERT_NEAR(a.NumericValue(), b.NumericValue(),
                        1e-6 * (1.0 + std::abs(a.NumericValue())))
                << "config " << ci << " on " << q << " row " << r;
          } else {
            ASSERT_EQ(a.Compare(b), 0)
                << "config " << ci << " on " << q << " row " << r;
          }
        }
      }
    }
  }
  gis.set_options(PlannerOptions::Full());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerSoundness,
                         ::testing::Range<uint64_t>(400, 412));

}  // namespace
}  // namespace gisql
