/// Unit tests for the global catalog: source/table registration, name
/// conflicts, statistics refresh, union views, rendering.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace gisql {
namespace {

SourceInfo Src(const std::string& name,
               SourceDialect d = SourceDialect::kRelational) {
  SourceInfo info;
  info.name = name;
  info.dialect = d;
  info.capabilities = SourceCapabilities::For(d);
  return info;
}

TableMapping Map(const std::string& global, const std::string& source,
                 const std::string& exported,
                 std::vector<Field> fields = {{"id", TypeId::kInt64},
                                              {"v", TypeId::kString}}) {
  TableMapping m;
  m.global_name = global;
  m.source_name = source;
  m.exported_name = exported;
  m.schema = std::make_shared<Schema>(
      Schema(std::move(fields)).WithQualifier(global));
  m.stats.row_count = 10;
  return m;
}

TEST(CatalogTest, SourceRegistration) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(Src("s1")).ok());
  EXPECT_TRUE(catalog.RegisterSource(Src("s1")).IsAlreadyExists());
  EXPECT_TRUE(catalog.RegisterSource(Src("S1")).IsAlreadyExists());
  ASSERT_TRUE(catalog.RegisterSource(Src("s2", SourceDialect::kLegacy)).ok());
  auto info = catalog.GetSource("S2");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->dialect, SourceDialect::kLegacy);
  EXPECT_FALSE((*info)->capabilities.filter_pushdown);
  EXPECT_TRUE(catalog.GetSource("nope").status().IsNotFound());
  EXPECT_EQ(catalog.SourceNames().size(), 2u);
}

TEST(CatalogTest, TableRegistration) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(Src("s1")).ok());
  ASSERT_TRUE(catalog.RegisterTable(Map("orders", "s1", "orders")).ok());
  EXPECT_TRUE(
      catalog.RegisterTable(Map("orders", "s1", "other")).IsAlreadyExists());
  // Unknown owning source rejected.
  EXPECT_TRUE(
      catalog.RegisterTable(Map("t2", "ghost", "t2")).IsNotFound());
  // Missing schema rejected.
  TableMapping no_schema;
  no_schema.global_name = "t3";
  no_schema.source_name = "s1";
  EXPECT_TRUE(catalog.RegisterTable(no_schema).IsInvalidArgument());

  EXPECT_TRUE(catalog.HasTable("ORDERS"));
  auto t = catalog.GetTable("orders");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->exported_name, "orders");
  EXPECT_EQ((*t)->stats.row_count, 10);
}

TEST(CatalogTest, StatsUpdate) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(Src("s1")).ok());
  ASSERT_TRUE(catalog.RegisterTable(Map("t", "s1", "t")).ok());
  TableStats fresh;
  fresh.row_count = 777;
  ASSERT_TRUE(catalog.UpdateStats("t", fresh).ok());
  EXPECT_EQ((*catalog.GetTable("t"))->stats.row_count, 777);
  EXPECT_TRUE(catalog.UpdateStats("ghost", fresh).IsNotFound());
}

TEST(CatalogTest, UnionViews) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(Src("s1")).ok());
  ASSERT_TRUE(catalog.RegisterTable(Map("shard0", "s1", "t0")).ok());
  ASSERT_TRUE(catalog.RegisterTable(Map("shard1", "s1", "t1")).ok());
  ASSERT_TRUE(catalog.CreateUnionView("all", {"shard0", "shard1"}).ok());
  EXPECT_TRUE(catalog.HasView("ALL"));
  auto view = catalog.GetView("all");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->members.size(), 2u);
  EXPECT_EQ((*view)->schema->field(0).qualifier, "all");

  // Name conflicts with tables and views.
  EXPECT_TRUE(
      catalog.CreateUnionView("shard0", {"shard1"}).IsAlreadyExists());
  EXPECT_TRUE(catalog.CreateUnionView("all", {"shard0"}).IsAlreadyExists());
  EXPECT_TRUE(
      catalog.RegisterTable(Map("all", "s1", "x")).IsAlreadyExists());
  // Empty and missing members.
  EXPECT_TRUE(catalog.CreateUnionView("e", {}).IsInvalidArgument());
  EXPECT_TRUE(catalog.CreateUnionView("m", {"ghost"}).IsNotFound());
}

TEST(CatalogTest, UnionViewCompatibilityChecked) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(Src("s1")).ok());
  ASSERT_TRUE(catalog.RegisterTable(Map("a", "s1", "a")).ok());
  ASSERT_TRUE(catalog
                  .RegisterTable(Map("b", "s1", "b",
                                     {{"x", TypeId::kString},
                                      {"y", TypeId::kString}}))
                  .ok());
  EXPECT_TRUE(catalog.CreateUnionView("bad", {"a", "b"}).IsInvalidArgument());
  // Implicitly castable member types are accepted (int64 → double).
  ASSERT_TRUE(catalog
                  .RegisterTable(Map("c", "s1", "c",
                                     {{"id", TypeId::kDouble},
                                      {"v", TypeId::kString}}))
                  .ok());
  EXPECT_TRUE(catalog.CreateUnionView("ok", {"a", "c"}).ok());
}

TEST(CatalogTest, RenderingListsEverything) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(Src("s1")).ok());
  ASSERT_TRUE(catalog.RegisterTable(Map("orders", "s1", "orders")).ok());
  ASSERT_TRUE(catalog.CreateUnionView("v", {"orders"}).ok());
  const std::string text = catalog.ToString();
  EXPECT_NE(text.find("source s1"), std::string::npos);
  EXPECT_NE(text.find("table orders"), std::string::npos);
  EXPECT_NE(text.find("view v"), std::string::npos);
  EXPECT_EQ(catalog.TableNames().size(), 1u);
  EXPECT_EQ(catalog.ViewNames().size(), 1u);
}

}  // namespace
}  // namespace gisql
