/// Cursor streaming tests: wire-frame round-trips over random chunk
/// shapes, decoder guards, the end-to-end cursor lifecycle against
/// GlobalSystem (streamed chunks concatenate to the materialized
/// result), the over-budget-result acceptance case (materialized
/// fails, streamed completes with peak <= budget), the shed-opens-
/// allocate-nothing regression, lease expiry, the open-cursor cap,
/// gis.cursors observability, and the GISQL_CURSOR_* env knobs.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/global_system.h"
#include "wire/cursor.h"

namespace gisql {
namespace {

// ---------------------------------------------------------------------------
// Wire frames: property round-trips and decoder guards
// ---------------------------------------------------------------------------

/// Random batch over a random schema; `type_clean` keeps every value on
/// its declared column type so the frame takes the columnar encoding,
/// otherwise one value violates it and forces the row fallback.
RowBatch RandomBatch(std::mt19937_64& rng, bool type_clean) {
  const TypeId kTypes[] = {TypeId::kInt64, TypeId::kDouble, TypeId::kString,
                           TypeId::kBool};
  const size_t width = 1 + rng() % 5;
  std::vector<Field> fields;
  for (size_t c = 0; c < width; ++c) {
    fields.push_back(
        {"c" + std::to_string(c), kTypes[rng() % 4], /*nullable=*/true});
  }
  auto schema = std::make_shared<Schema>(fields);
  RowBatch batch(schema);
  const size_t rows = rng() % 40;
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    for (size_t c = 0; c < width; ++c) {
      if (rng() % 8 == 0) {
        row.push_back(Value::Null(fields[c].type));
        continue;
      }
      switch (fields[c].type) {
        case TypeId::kInt64:
          row.push_back(Value::Int(static_cast<int64_t>(rng() % 100000)));
          break;
        case TypeId::kDouble:
          row.push_back(Value::Double((rng() % 1000) * 0.25));
          break;
        case TypeId::kString:
          row.push_back(Value::String("s" + std::to_string(rng() % 500)));
          break;
        default:
          row.push_back(Value::Bool(rng() % 2 == 0));
          break;
      }
    }
    batch.Append(std::move(row));
  }
  if (!type_clean && batch.num_rows() > 0) {
    // One off-type value defeats ColumnBatch::FromRows, exactly the
    // shape the row fallback exists for.
    auto rows_copy = batch.rows();
    rows_copy[rng() % rows_copy.size()][rng() % width] =
        Value::String("off-type");
    batch = RowBatch(schema, std::move(rows_copy));
  }
  return batch;
}

TEST(CursorWireTest, ChunkRoundTripsOverRandomShapes) {
  std::mt19937_64 rng(20260809);
  int columnar_frames = 0, row_frames = 0;
  for (int iter = 0; iter < 80; ++iter) {
    const bool type_clean = iter % 2 == 0;
    const RowBatch batch = RandomBatch(rng, type_clean);
    const uint64_t cursor_id = rng();
    const uint64_t seq = rng() % 1000;
    const bool done = rng() % 2 == 0;

    ByteWriter w;
    wire::WriteCursorChunk(&w, cursor_id, seq, done, batch);
    ByteReader r(w.data());
    auto chunk = wire::ReadCursorChunk(&r);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(chunk->cursor_id, cursor_id);
    EXPECT_EQ(chunk->seq, seq);
    EXPECT_EQ(chunk->done, done);
    ASSERT_EQ(chunk->rows.num_rows(), batch.num_rows());
    EXPECT_EQ(chunk->rows.ToString(1 << 20), batch.ToString(1 << 20));
    if (chunk->columnar != nullptr) {
      ++columnar_frames;
    } else {
      ++row_frames;
      EXPECT_FALSE(type_clean && batch.num_rows() > 0)
          << "type-clean rows must take the columnar encoding";
    }
  }
  EXPECT_GT(columnar_frames, 0);
  EXPECT_GT(row_frames, 0);
}

TEST(CursorWireTest, RequestsRoundTrip) {
  wire::OpenCursorRequest open;
  open.token = 0xfeedbeef;
  open.chunk_rows = 512;
  open.fragment.table = "orders";
  open.fragment.limit = 99;
  ByteWriter w1;
  wire::WriteOpenCursorRequest(&w1, open);
  ByteReader r1(w1.data());
  auto open2 = wire::ReadOpenCursorRequest(&r1);
  ASSERT_TRUE(open2.ok()) << open2.status().ToString();
  EXPECT_EQ(open2->token, open.token);
  EXPECT_EQ(open2->chunk_rows, open.chunk_rows);
  EXPECT_EQ(open2->fragment.table, "orders");
  EXPECT_EQ(open2->fragment.limit, 99);

  wire::FetchChunkRequest fetch{/*cursor_id=*/7, /*seq=*/3};
  ByteWriter w2;
  wire::WriteFetchChunkRequest(&w2, fetch);
  ByteReader r2(w2.data());
  auto fetch2 = wire::ReadFetchChunkRequest(&r2);
  ASSERT_TRUE(fetch2.ok());
  EXPECT_EQ(fetch2->cursor_id, 7u);
  EXPECT_EQ(fetch2->seq, 3u);

  wire::CloseCursorRequest close{/*cursor_id=*/7};
  ByteWriter w3;
  wire::WriteCloseCursorRequest(&w3, close);
  ByteReader r3(w3.data());
  auto close2 = wire::ReadCloseCursorRequest(&r3);
  ASSERT_TRUE(close2.ok());
  EXPECT_EQ(close2->cursor_id, 7u);

  wire::OpenCursorResponse resp{/*cursor_id=*/42};
  ByteWriter w4;
  wire::WriteOpenCursorResponse(&w4, resp);
  ByteReader r4(w4.data());
  auto resp2 = wire::ReadOpenCursorResponse(&r4);
  ASSERT_TRUE(resp2.ok());
  EXPECT_EQ(resp2->cursor_id, 42u);
}

TEST(CursorWireTest, OpenRequestRejectsHostileChunkRows) {
  for (const int64_t bad : {int64_t{0}, wire::kMaxCursorChunkRows + 1}) {
    wire::OpenCursorRequest open;
    open.chunk_rows = bad;
    open.fragment.table = "t";
    ByteWriter w;
    wire::WriteOpenCursorRequest(&w, open);
    ByteReader r(w.data());
    auto decoded = wire::ReadOpenCursorRequest(&r);
    ASSERT_FALSE(decoded.ok()) << "chunk_rows=" << bad;
    EXPECT_TRUE(decoded.status().IsSerializationError())
        << decoded.status().ToString();
  }
}

TEST(CursorWireTest, ChunkRejectsUnknownFormatByte) {
  // Documented layout: varint cursor_id, varint seq, bool done, then
  // the format byte — which only admits the two batch encodings.
  ByteWriter w;
  w.PutVarint(1);
  w.PutVarint(0);
  w.PutBool(false);
  w.PutU8(7);
  ByteReader r(w.data());
  auto chunk = wire::ReadCursorChunk(&r);
  ASSERT_FALSE(chunk.ok());
  EXPECT_TRUE(chunk.status().IsSerializationError())
      << chunk.status().ToString();
}

// ---------------------------------------------------------------------------
// GlobalSystem lifecycle
// ---------------------------------------------------------------------------

/// Two-source federation; `big_rows` sizes the hq table.
void Build(GlobalSystem* gis, int big_rows = 40) {
  auto hq = *gis->CreateSource("hq", SourceDialect::kRelational);
  ASSERT_TRUE(hq->ExecuteLocalSql(
                    "CREATE TABLE orders (oid bigint, cid bigint, "
                    "total double)")
                  .ok());
  for (int base = 0; base < big_rows; base += 200) {
    std::string insert = "INSERT INTO orders VALUES ";
    const int hi = std::min(base + 200, big_rows);
    for (int i = base; i < hi; ++i) {
      if (i > base) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i % 8) +
                ", " + std::to_string(i * 2.5) + ")";
    }
    ASSERT_TRUE(hq->ExecuteLocalSql(insert).ok());
  }
  auto branch = *gis->CreateSource("branch", SourceDialect::kDocument);
  ASSERT_TRUE(branch->ExecuteLocalSql(
                    "CREATE TABLE clients (cid bigint, name varchar)")
                  .ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(branch->ExecuteLocalSql(
                      "INSERT INTO clients VALUES (" + std::to_string(i) +
                      ", 'c" + std::to_string(i) + "')")
                    .ok());
  }
  ASSERT_TRUE(gis->ImportSource("hq").ok());
  ASSERT_TRUE(gis->ImportSource("branch").ok());
}

/// Drains a cursor, asserting the chunk-size bound and returning the
/// concatenated rows (schema taken from the first chunk).
RowBatch Drain(GlobalSystem* gis, uint64_t id, int64_t chunk_rows,
               int* chunks_out = nullptr) {
  RowBatch acc;
  bool first = true;
  const auto* entry = gis->cursors().Find(id);
  int chunks = entry != nullptr ? static_cast<int>(entry->chunks) : 0;
  while (true) {
    auto chunk = gis->FetchChunk(id);
    EXPECT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (!chunk.ok()) break;
    EXPECT_LE(chunk->batch.num_rows(), static_cast<size_t>(chunk_rows));
    EXPECT_EQ(chunk->seq, static_cast<uint64_t>(chunks));
    ++chunks;
    if (first) {
      acc = RowBatch(chunk->batch.schema());
      first = false;
    }
    for (const auto& row : chunk->batch.rows()) acc.Append(row);
    if (chunk->done) break;
  }
  if (chunks_out != nullptr) *chunks_out = chunks;
  return acc;
}

TEST(CursorSystemTest, StreamedChunksConcatenateToQueryResult) {
  GlobalSystem gis;
  Build(&gis, /*big_rows=*/300);
  const std::string sql =
      "SELECT oid, total FROM orders WHERE cid = 3 AND oid < 250";

  auto full = gis.Query(sql);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_GT(full->batch.num_rows(), 0u);

  GlobalSystem::CursorOptions copts;
  copts.chunk_rows = 7;
  auto id = gis.OpenCursor(sql, copts);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_NE(gis.cursors().Find(*id), nullptr);
  EXPECT_TRUE(gis.cursors().Find(*id)->streaming);

  int chunks = 0;
  const RowBatch acc = Drain(&gis, *id, copts.chunk_rows, &chunks);
  EXPECT_GT(chunks, 1) << "chunk_rows=7 over a multi-row result must "
                          "take several fetches";
  EXPECT_EQ(acc.ToString(1 << 20), full->batch.ToString(1 << 20));

  // Drained: further fetches fail by name, close stays idempotent.
  const auto* entry = gis.cursors().Find(*id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, CursorManager::State::kDrained);
  auto again = gis.FetchChunk(*id);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsNotFound()) << again.status().ToString();
  EXPECT_NE(again.status().message().find("drained"), std::string::npos);
  EXPECT_TRUE(gis.CloseCursor(*id).ok());
  EXPECT_TRUE(gis.CloseCursor(999999).ok());

  // The drained cursor released everything: nothing outstanding
  // beyond the sources' resident buffer-pool frames, no staging.
  EXPECT_EQ(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());
  EXPECT_EQ((*gis.GetSource("hq"))->open_cursors(), 0u);
}

TEST(CursorSystemTest, BlockingPlanSpoolsAndChunksIdentically) {
  GlobalSystem gis;
  Build(&gis, /*big_rows=*/300);
  const std::string sql =
      "SELECT cid, SUM(total) AS t FROM orders GROUP BY cid ORDER BY cid";

  auto full = gis.Query(sql);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->batch.num_rows(), 8u);

  GlobalSystem::CursorOptions copts;
  copts.chunk_rows = 3;
  auto id = gis.OpenCursor(sql, copts);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_NE(gis.cursors().Find(*id), nullptr);
  EXPECT_FALSE(gis.cursors().Find(*id)->streaming);
  // The spool is resident, so its grant holds the full charge while
  // the cursor is open (over and above the pool-frame residency).
  EXPECT_GT(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());

  int chunks = 0;
  const RowBatch acc = Drain(&gis, *id, copts.chunk_rows, &chunks);
  EXPECT_EQ(chunks, 3);  // ceil(8 / 3)
  EXPECT_EQ(acc.ToString(1 << 20), full->batch.ToString(1 << 20));
  EXPECT_EQ(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());
}

TEST(CursorSystemTest, OpenCursorRejectsNonSelect) {
  GlobalSystem gis;
  Build(&gis);
  auto r = gis.OpenCursor("EXPLAIN SELECT COUNT(*) FROM orders");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  EXPECT_EQ(gis.cursors().OpenCount(), 0u);
}

// ---------------------------------------------------------------------------
// The acceptance case: a result the per-query budget cannot hold
// ---------------------------------------------------------------------------

TEST(CursorSystemTest, OverBudgetResultStreamsWithPeakUnderBudget) {
  PlannerOptions options;
  options.query_mem_bytes = 100 * 1000;
  const std::string sql = "SELECT oid, cid, total FROM orders";

  // Materialized: 3000 rows cost ~3000·(32+24·3) bytes — over budget.
  {
    GlobalSystem gis(options);
    Build(&gis, /*big_rows=*/3000);
    auto r = gis.Query(sql);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsOverloaded()) << r.status().ToString();
  }

  // Streamed on a fresh system (so peak() reflects only this path):
  // the same query completes, never holding more than one chunk.
  GlobalSystem gis(options);
  Build(&gis, /*big_rows=*/3000);
  GlobalSystem::CursorOptions copts;
  copts.chunk_rows = 128;
  auto id = gis.OpenCursor(sql, copts);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const RowBatch acc = Drain(&gis, *id, copts.chunk_rows);
  EXPECT_EQ(acc.num_rows(), 3000u);
  EXPECT_GT(gis.governor().memory().peak(), 0);
  // Pools only grow, so end-of-run residency bounds the pool's share
  // of the high-water mark: the streaming path itself stayed under the
  // per-query budget.
  EXPECT_LE(gis.governor().memory().peak(),
            options.query_mem_bytes + gis.BufferPoolResidentBytes());
  EXPECT_EQ(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());
}

TEST(CursorSystemTest, ChunkOverBudgetFinalizesCursorAndReleases) {
  // A budget smaller than one chunk's estimate: the first fetch's
  // charge is denied, the cursor dies cleanly, nothing leaks.
  PlannerOptions options;
  options.query_mem_bytes = 1000;  // < 128·(32+24·3)
  GlobalSystem gis(options);
  Build(&gis, /*big_rows=*/3000);
  GlobalSystem::CursorOptions copts;
  copts.chunk_rows = 128;
  auto id = gis.OpenCursor("SELECT oid, cid, total FROM orders", copts);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto chunk = gis.FetchChunk(*id);
  ASSERT_FALSE(chunk.ok());
  EXPECT_TRUE(chunk.status().IsOverloaded()) << chunk.status().ToString();
  const auto* entry = gis.cursors().Find(*id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, CursorManager::State::kClosed);
  EXPECT_EQ(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());
  EXPECT_EQ((*gis.GetSource("hq"))->open_cursors(), 0u);
  auto log = gis.Query(
      "SELECT sql FROM gis.queries WHERE shed_reason = 'memory_budget'");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->batch.num_rows(), 1u);
}

// ---------------------------------------------------------------------------
// Shed opens allocate nothing
// ---------------------------------------------------------------------------

TEST(CursorSystemTest, ShedOpensAllocateNoCursorAndNoGrant) {
  PlannerOptions options;
  options.max_concurrent_queries = 1;
  options.admission_queue_limit = 4;  // normal-class watermark: 3
  options.admission_max_wait_ms = 1e9;
  GlobalSystem gis(options);
  Build(&gis, /*big_rows=*/300);

  // 8× burst of spool opens (the aggregate holds its admission slot
  // for the whole open): 1 runs + 3 queue, the rest shed at the queue.
  int admitted = 0, shed = 0;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    GlobalSystem::CursorOptions copts;
    copts.submit.arrival_ms = 0.0;
    auto id = gis.OpenCursor(
        "SELECT cid, SUM(total) AS t FROM orders GROUP BY cid "
        "ORDER BY cid LIMIT " + std::to_string(8 - i),
        copts);
    if (id.ok()) {
      ++admitted;
      ids.push_back(*id);
    } else {
      ASSERT_TRUE(id.status().IsOverloaded()) << id.status().ToString();
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(shed, 4);

  // Exactly the admitted opens exist — a shed open allocated neither a
  // cursor entry nor a byte of budget.
  EXPECT_EQ(gis.cursors().OpenCount(), 4u);
  const int64_t held = gis.governor().memory().in_use();
  EXPECT_GT(held, gis.BufferPoolResidentBytes());  // four live spools
  for (const uint64_t id : ids) EXPECT_TRUE(gis.CloseCursor(id).ok());
  EXPECT_EQ(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());
  EXPECT_EQ(gis.cursors().OpenCount(), 0u);

  // The refusals are visible: gis.queries carries one shed row each.
  auto log = gis.Query(
      "SELECT messages FROM gis.queries WHERE shed_reason = 'queue_full'");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->batch.num_rows(), 4u);
  for (const auto& row : log->batch.rows()) EXPECT_EQ(row[0].AsInt(), 0);
}

// ---------------------------------------------------------------------------
// Leases and the open-cursor cap
// ---------------------------------------------------------------------------

TEST(CursorSystemTest, ExpiredLeaseReleasesGrantAndSourceStaging) {
  GlobalSystem gis;
  Build(&gis, /*big_rows=*/300);
  GlobalSystem::CursorOptions copts;
  copts.chunk_rows = 16;
  copts.lease_ms = 10.0;
  auto id = gis.OpenCursor("SELECT oid FROM orders", copts);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto first = gis.FetchChunk(*id);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ((*gis.GetSource("hq"))->open_cursors(), 1u);
  EXPECT_GT(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());

  // Park the client far past the lease on the simulated clock.
  GlobalSystem::SubmitOptions late;
  late.arrival_ms = 100000.0;
  ASSERT_TRUE(gis.Submit("SELECT COUNT(*) FROM clients", late).ok());

  // The next cursor call sweeps: the fetch finds the cursor expired,
  // its grant released, its source staging closed.
  auto r = gis.FetchChunk(*id);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("expired"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());
  EXPECT_EQ((*gis.GetSource("hq"))->open_cursors(), 0u);
  EXPECT_EQ(gis.metrics().Get("cursor.expired"), 1);

  auto snap = gis.Query("SELECT state FROM gis.cursors");
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ASSERT_EQ(snap->batch.num_rows(), 1u);
  EXPECT_EQ(snap->batch.rows()[0][0].AsString(), "expired");
}

TEST(CursorSystemTest, ExpiredLeaseReleasesSnapshotPinWithGrant) {
  // Regression: lazy lease expiry must be transactional. An open
  // cursor pins its MVCC snapshot (holding the GC watermark back) in
  // addition to its memory grant and source staging; the sweep used to
  // be specified only over the latter two. Expiring a cursor must
  // release the spool grant and the version-chain pin *together* —
  // otherwise the watermark never advances and dead versions
  // accumulate for the lifetime of the process.
  GlobalSystem gis;
  Build(&gis, /*big_rows=*/300);
  GlobalSystem::CursorOptions copts;
  copts.chunk_rows = 16;
  copts.lease_ms = 10.0;
  ASSERT_EQ(gis.transactions().pinned_snapshots(), 0u);
  auto id = gis.OpenCursor("SELECT oid FROM orders", copts);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(gis.transactions().pinned_snapshots(), 1u);
  const uint64_t pinned = gis.transactions().Watermark();

  // Advance the timestamp domain: the pin holds the watermark still.
  gis.transactions().AllocateCommitTs();
  gis.transactions().AllocateCommitTs();
  EXPECT_EQ(gis.transactions().Watermark(), pinned);

  // Park the client far past the lease, then trip the lazy sweep.
  GlobalSystem::SubmitOptions late;
  late.arrival_ms = 100000.0;
  ASSERT_TRUE(gis.Submit("SELECT COUNT(*) FROM clients", late).ok());
  auto r = gis.FetchChunk(*id);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expired"), std::string::npos)
      << r.status().ToString();

  // Pin and grant went together: watermark freed, memory back to the
  // resident floor.
  EXPECT_EQ(gis.transactions().pinned_snapshots(), 0u);
  EXPECT_GT(gis.transactions().Watermark(), pinned);
  EXPECT_EQ(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());

  // The explicit-close path unpins identically.
  auto id2 = gis.OpenCursor("SELECT oid FROM orders", copts);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(gis.transactions().pinned_snapshots(), 1u);
  ASSERT_TRUE(gis.CloseCursor(*id2).ok());
  EXPECT_EQ(gis.transactions().pinned_snapshots(), 0u);
}

TEST(CursorSystemTest, OpenCursorCapShedsBeforeAdmission) {
  PlannerOptions options;
  options.cursor_max_open = 2;
  GlobalSystem gis(options);
  Build(&gis, /*big_rows=*/300);
  auto a = gis.OpenCursor("SELECT oid FROM orders");
  auto b = gis.OpenCursor("SELECT cid FROM orders");
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = gis.OpenCursor("SELECT total FROM orders");
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsOverloaded()) << c.status().ToString();
  EXPECT_NE(c.status().message().find("cursor"), std::string::npos);
  EXPECT_EQ(gis.metrics().Get("cursor.shed"), 1);

  // Closing one frees a slot.
  ASSERT_TRUE(gis.CloseCursor(*a).ok());
  EXPECT_TRUE(gis.OpenCursor("SELECT total FROM orders").ok());
}

// ---------------------------------------------------------------------------
// gis.cursors observability
// ---------------------------------------------------------------------------

TEST(CursorSystemTest, CursorsTableTracksLifecycle) {
  GlobalSystem gis;
  Build(&gis, /*big_rows=*/300);
  GlobalSystem::CursorOptions copts;
  copts.chunk_rows = 100;
  auto id = gis.OpenCursor("SELECT oid FROM orders", copts);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(gis.FetchChunk(*id).ok());

  auto open_snap = gis.Query(
      "SELECT id, state, streaming, chunk_rows, chunks, rows "
      "FROM gis.cursors");
  ASSERT_TRUE(open_snap.ok()) << open_snap.status().ToString();
  ASSERT_EQ(open_snap->batch.num_rows(), 1u);
  const auto& row = open_snap->batch.rows()[0];
  EXPECT_EQ(row[0].AsInt(), static_cast<int64_t>(*id));
  EXPECT_EQ(row[1].AsString(), "open");
  EXPECT_TRUE(row[2].AsBool());
  EXPECT_EQ(row[3].AsInt(), 100);
  EXPECT_EQ(row[4].AsInt(), 1);
  EXPECT_EQ(row[5].AsInt(), 100);

  Drain(&gis, *id, copts.chunk_rows);
  auto done_snap = gis.Query("SELECT state, rows FROM gis.cursors");
  ASSERT_TRUE(done_snap.ok()) << done_snap.status().ToString();
  EXPECT_EQ(done_snap->batch.rows()[0][0].AsString(), "drained");
  EXPECT_EQ(done_snap->batch.rows()[0][1].AsInt(), 300);
  EXPECT_EQ(gis.metrics().Get("cursor.opened"), 1);
  EXPECT_EQ(gis.metrics().Get("cursor.drained"), 1);
}

// ---------------------------------------------------------------------------
// Env knobs
// ---------------------------------------------------------------------------

TEST(CursorEnvTest, CursorKnobsParseFromEnv) {
  setenv("GISQL_CURSOR_CHUNK_ROWS", "2048", 1);
  setenv("GISQL_CURSOR_LEASE_MS", "1500.5", 1);
  setenv("GISQL_CURSOR_MAX_OPEN", "7", 1);
  const PlannerOptions o = PlannerOptions::FromEnv();
  unsetenv("GISQL_CURSOR_CHUNK_ROWS");
  unsetenv("GISQL_CURSOR_LEASE_MS");
  unsetenv("GISQL_CURSOR_MAX_OPEN");
  EXPECT_EQ(o.cursor_chunk_rows, 2048);
  EXPECT_EQ(o.cursor_lease_ms, 1500.5);
  EXPECT_EQ(o.cursor_max_open, 7);
}

}  // namespace
}  // namespace gisql
