/// Tests for MVCC snapshot isolation and the deadlock-detecting lock
/// manager: row-version visibility and watermark GC at the storage
/// layer, the lock compatibility matrix, the mediator's transaction
/// manager (timestamps, waits-for graph, deterministic victims), and
/// the end-to-end GlobalSystem transaction API (snapshot reads,
/// read-your-writes, transactional DELETE, write-write conflicts,
/// deadlock resolution, gis.transactions / Prometheus observability).

#include <gtest/gtest.h>

#include "core/global_system.h"
#include "storage/table.h"
#include "txn/lock_manager.h"
#include "txn/transaction_manager.h"

namespace gisql {
namespace {

SchemaPtr AccountsSchema() {
  return std::make_shared<Schema>(
      std::vector<Field>{{"id", TypeId::kInt64, false, "accounts"},
                         {"bal", TypeId::kDouble, true, "accounts"}});
}

// ---------------------------------------------------------------------------
// Storage layer: row versions.

TEST(RowVersionTest, LegacyInsertsVisibleToEverySnapshot) {
  auto table = std::make_shared<Table>("accounts", AccountsSchema());
  ASSERT_TRUE(table->Insert({Value::Int(1), Value::Double(10)}).ok());
  // Bootstrap rows are born at timestamp 0: visible at "latest" (0) and
  // at any transactional snapshot.
  EXPECT_TRUE(table->VisibleAt(0, 0));
  EXPECT_TRUE(table->VisibleAt(0, 1));
  EXPECT_TRUE(table->VisibleAt(0, 1000));
  const RowVersion v = table->VersionOf(0);
  EXPECT_EQ(v.begin_ts, 0u);
  EXPECT_EQ(v.end_ts, kMaxTimestamp);
}

TEST(RowVersionTest, VersionedInsertInvisibleToOlderSnapshots) {
  auto table = std::make_shared<Table>("accounts", AccountsSchema());
  ASSERT_TRUE(
      table->InsertVersioned({{Value::Int(1), Value::Double(10)}}, 5).ok());
  EXPECT_FALSE(table->VisibleAt(0, 4));  // began before the row existed
  EXPECT_TRUE(table->VisibleAt(0, 5));
  EXPECT_TRUE(table->VisibleAt(0, 6));
  EXPECT_TRUE(table->VisibleAt(0, 0));  // latest-committed read
}

TEST(RowVersionTest, DeleteEndsVisibilityAtCommitTimestamp) {
  auto table = std::make_shared<Table>("accounts", AccountsSchema());
  ASSERT_TRUE(table->Insert({Value::Int(1), Value::Double(10)}).ok());
  table->MarkDeleted(0, 7);
  EXPECT_TRUE(table->VisibleAt(0, 6));   // snapshot before the delete
  EXPECT_FALSE(table->VisibleAt(0, 7));  // end_ts is exclusive
  EXPECT_FALSE(table->VisibleAt(0, 0));  // gone at latest
}

TEST(RowVersionTest, MarkDeletedIsFirstCommitterWins) {
  auto table = std::make_shared<Table>("accounts", AccountsSchema());
  ASSERT_TRUE(table->Insert({Value::Int(1), Value::Double(10)}).ok());
  table->MarkDeleted(0, 5);
  table->MarkDeleted(0, 9);  // second committer must not overwrite
  EXPECT_EQ(table->VersionOf(0).end_ts, 5u);
}

TEST(RowVersionTest, GcReclaimsVersionsBelowWatermark) {
  auto table = std::make_shared<Table>("accounts", AccountsSchema());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        table->Insert({Value::Int(i), Value::Double(i)}).ok());
  }
  table->MarkDeleted(0, 3);
  table->MarkDeleted(1, 8);
  // Watermark 5: the version dead at 3 is unreachable, the one dead at
  // 8 could still be seen by a snapshot in (5, 8).
  auto removed = table->GcToWatermark(5);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1);
  EXPECT_EQ(table->num_rows(), 3);
  // Rows compacted in order; versions move in lockstep with the heap.
  EXPECT_EQ(table->VersionOf(0).end_ts, 8u);
  EXPECT_FALSE(table->VisibleAt(0, 9));
  EXPECT_TRUE(table->VisibleAt(1, 0));
  // Nothing left to collect at the same watermark.
  auto again = table->GcToWatermark(5);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0);
}

// ---------------------------------------------------------------------------
// Lock manager.

TEST(LockManagerTest, CompatibilityMatrix) {
  using M = LockMode;
  // X conflicts with everything; IS coexists with everything but X;
  // S/S and IX/IX coexist; S/IX conflict.
  EXPECT_FALSE(LockModesCompatible(M::kExclusive, M::kExclusive));
  EXPECT_FALSE(LockModesCompatible(M::kExclusive, M::kShared));
  EXPECT_FALSE(LockModesCompatible(M::kShared, M::kExclusive));
  EXPECT_FALSE(LockModesCompatible(M::kIntentShared, M::kExclusive));
  EXPECT_TRUE(LockModesCompatible(M::kIntentShared, M::kIntentShared));
  EXPECT_TRUE(LockModesCompatible(M::kIntentShared, M::kIntentExclusive));
  EXPECT_TRUE(LockModesCompatible(M::kIntentShared, M::kShared));
  EXPECT_TRUE(LockModesCompatible(M::kShared, M::kShared));
  EXPECT_TRUE(
      LockModesCompatible(M::kIntentExclusive, M::kIntentExclusive));
  EXPECT_FALSE(LockModesCompatible(M::kShared, M::kIntentExclusive));
  EXPECT_FALSE(LockModesCompatible(M::kIntentExclusive, M::kShared));
}

TEST(LockManagerTest, ConflictReportsHolders) {
  LockManager locks;
  EXPECT_TRUE(locks.LockRow(1, "t", 42, LockMode::kExclusive).granted);
  EXPECT_TRUE(locks.LockRow(2, "t", 42, LockMode::kExclusive).granted ==
              false);
  LockAcquisition a = locks.LockRow(2, "t", 42, LockMode::kExclusive);
  ASSERT_EQ(a.holders.size(), 1u);
  EXPECT_EQ(a.holders[0], 1u);
  // Different key, same table: no conflict.
  EXPECT_TRUE(locks.LockRow(2, "t", 43, LockMode::kExclusive).granted);
}

TEST(LockManagerTest, ReacquireAndUpgrade) {
  LockManager locks;
  EXPECT_TRUE(locks.LockTable(1, "t", LockMode::kIntentExclusive).granted);
  // Idempotent re-acquire and in-place upgrade by the same holder.
  EXPECT_TRUE(locks.LockTable(1, "t", LockMode::kIntentExclusive).granted);
  EXPECT_TRUE(locks.LockTable(1, "t", LockMode::kExclusive).granted);
  // The upgrade to X now blocks an IX from another transaction.
  EXPECT_FALSE(locks.LockTable(2, "t", LockMode::kIntentExclusive).granted);
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager locks;
  EXPECT_TRUE(locks.LockTable(1, "t", LockMode::kIntentExclusive).granted);
  EXPECT_TRUE(locks.LockRow(1, "t", 7, LockMode::kExclusive).granted);
  EXPECT_EQ(locks.HeldBy(1), 2u);
  locks.ReleaseAll(1);
  EXPECT_EQ(locks.HeldBy(1), 0u);
  EXPECT_EQ(locks.LockedResources(), 0u);
  EXPECT_TRUE(locks.LockRow(2, "t", 7, LockMode::kExclusive).granted);
}

// ---------------------------------------------------------------------------
// Transaction manager.

TEST(TransactionManagerTest, MonotonicIdsAndSnapshots) {
  TransactionManager txns;
  TxnInfo& t1 = txns.Begin(0.0);
  TxnInfo& t2 = txns.Begin(1.0);
  EXPECT_EQ(t1.id, 1u);
  EXPECT_EQ(t2.id, 2u);
  EXPECT_GE(t1.snapshot_ts, 1u);  // the domain starts at 1, never 0
  EXPECT_EQ(t1.snapshot_ts, t2.snapshot_ts);  // no commit in between
  const uint64_t commit = txns.AllocateCommitTs();
  txns.MarkCommitted(t1.id, commit, 2.0);
  EXPECT_GT(txns.Begin(3.0).snapshot_ts, t2.snapshot_ts);
}

TEST(TransactionManagerTest, GetActiveNamesTerminalStates) {
  TransactionManager txns;
  TxnInfo& t = txns.Begin(0.0);
  const uint64_t id = t.id;
  ASSERT_TRUE(txns.GetActive(id).ok());
  txns.MarkAborted(id, "deadlock victim", 1.0);
  auto gone = txns.GetActive(id);
  ASSERT_FALSE(gone.ok());
  EXPECT_NE(gone.status().message().find("deadlock victim"),
            std::string::npos);
  EXPECT_FALSE(txns.GetActive(999).ok());
}

TEST(TransactionManagerTest, WatermarkHeldByOldestReader) {
  TransactionManager txns;
  const uint64_t idle = txns.Watermark();  // nothing live: current ts
  TxnInfo& t1 = txns.Begin(0.0);
  const uint64_t s1 = t1.snapshot_ts;
  const uint64_t id1 = t1.id;
  // Commits advance the domain, but the active reader pins the floor.
  TxnInfo& t2 = txns.Begin(0.0);
  txns.MarkCommitted(t2.id, txns.AllocateCommitTs(), 1.0);
  EXPECT_EQ(txns.Watermark(), s1);
  txns.MarkCommitted(id1, txns.AllocateCommitTs(), 2.0);
  EXPECT_GT(txns.Watermark(), s1);
  EXPECT_GE(txns.Watermark(), idle);
  // Pinned cursor snapshots hold it back the same way.
  const uint64_t pin = txns.PinSnapshot();
  txns.AllocateCommitTs();
  EXPECT_EQ(txns.Watermark(), pin);
  txns.UnpinSnapshot(pin);
  EXPECT_GT(txns.Watermark(), pin);
}

TEST(TransactionManagerTest, CycleVictimIsYoungest) {
  TransactionManager txns;
  TxnInfo& t1 = txns.Begin(0.0);
  TxnInfo& t2 = txns.Begin(0.0);
  txns.OnConflict(t1.id, {t2.id});
  EXPECT_EQ(txns.DetectCycleVictim(t1.id), 0u);  // no cycle yet
  txns.OnConflict(t2.id, {t1.id});
  // Both directions recorded: the youngest (highest id) on the cycle
  // loses, from either starting point.
  EXPECT_EQ(txns.DetectCycleVictim(t2.id), t2.id);
  EXPECT_EQ(txns.DetectCycleVictim(t1.id), t2.id);
  EXPECT_EQ(txns.counters().deadlocks, 2);
  // Finishing the victim dissolves the cycle.
  txns.MarkAborted(t2.id, "victim", 1.0);
  EXPECT_EQ(txns.DetectCycleVictim(t1.id), 0u);
}

TEST(TransactionManagerTest, ThreeWayCycle) {
  TransactionManager txns;
  TxnInfo& t1 = txns.Begin(0.0);
  TxnInfo& t2 = txns.Begin(0.0);
  TxnInfo& t3 = txns.Begin(0.0);
  txns.OnConflict(t1.id, {t2.id});
  txns.OnConflict(t2.id, {t3.id});
  EXPECT_EQ(txns.DetectCycleVictim(t3.id), 0u);
  txns.OnConflict(t3.id, {t1.id});
  EXPECT_EQ(txns.DetectCycleVictim(t3.id), t3.id);
}

// ---------------------------------------------------------------------------
// End to end: GlobalSystem transactions.

class MvccSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name : {"bank_a", "bank_b"}) {
      ASSERT_TRUE(gis_.CreateSource(name, SourceDialect::kRelational).ok());
      ASSERT_TRUE(gis_.ExecuteAt(name,
                                 "CREATE TABLE accounts (id bigint, "
                                 "bal double)")
                      .ok());
      ASSERT_TRUE(
          gis_.ExecuteAt(name,
                         "INSERT INTO accounts VALUES (1, 100.0), "
                         "(2, 200.0)")
              .ok());
    }
    ASSERT_TRUE(gis_.ImportTable("bank_a", "accounts", "acct_a").ok());
    ASSERT_TRUE(gis_.ImportTable("bank_b", "accounts", "acct_b").ok());
  }

  int64_t Count(const std::string& table) {
    auto r = gis_.Query("SELECT COUNT(*) FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->batch.rows()[0][0].AsInt();
  }

  int64_t CountInTxn(uint64_t txn, const std::string& table) {
    auto r = gis_.QueryInTxn(txn, "SELECT COUNT(*) FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->batch.rows()[0][0].AsInt();
  }

  GlobalSystem gis_;
};

TEST_F(MvccSystemTest, SnapshotReadsAreRepeatable) {
  auto reader = gis_.BeginTransaction();
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(CountInTxn(*reader, "acct_a"), 2);

  // A concurrent transaction inserts and commits.
  auto writer = gis_.BeginTransaction();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(gis_.TxnWrite(*writer, "bank_a",
                            "INSERT INTO accounts VALUES (3, 50.0)")
                  .ok());
  ASSERT_TRUE(gis_.CommitTransaction(*writer).ok());

  // The reader's snapshot predates the commit: its count is stable.
  EXPECT_EQ(CountInTxn(*reader, "acct_a"), 2);
  // Latest-committed reads and a fresh snapshot both see the new row.
  EXPECT_EQ(Count("acct_a"), 3);
  auto fresh = gis_.BeginTransaction();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(CountInTxn(*fresh, "acct_a"), 3);
  ASSERT_TRUE(gis_.CommitTransaction(*reader).ok());
  ASSERT_TRUE(gis_.CommitTransaction(*fresh).ok());
}

TEST_F(MvccSystemTest, ReadYourOwnStagedWrites) {
  auto txn = gis_.BeginTransaction();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(gis_.TxnWrite(*txn, "bank_a",
                            "INSERT INTO accounts VALUES (3, 50.0)")
                  .ok());
  // Uncommitted: invisible outside, visible inside the transaction.
  EXPECT_EQ(Count("acct_a"), 2);
  EXPECT_EQ(CountInTxn(*txn, "acct_a"), 3);
  // The overlay respects predicates too.
  auto r = gis_.QueryInTxn(
      *txn, "SELECT COUNT(*) FROM acct_a WHERE bal < 60.0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 1);
  ASSERT_TRUE(gis_.CommitTransaction(*txn).ok());
  EXPECT_EQ(Count("acct_a"), 3);
}

TEST_F(MvccSystemTest, TransactionalDeleteWithSnapshotPredicate) {
  auto txn = gis_.BeginTransaction();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(
      gis_.TxnWrite(*txn, "bank_a", "DELETE FROM accounts WHERE id = 1")
          .ok());
  // Staged delete: hidden inside the transaction, intact outside.
  EXPECT_EQ(CountInTxn(*txn, "acct_a"), 1);
  EXPECT_EQ(Count("acct_a"), 2);
  ASSERT_TRUE(gis_.CommitTransaction(*txn).ok());
  EXPECT_EQ(Count("acct_a"), 1);
}

TEST_F(MvccSystemTest, CommittedDeleteStaysVisibleToOlderSnapshot) {
  auto reader = gis_.BeginTransaction();
  ASSERT_TRUE(reader.ok());
  auto deleter = gis_.BeginTransaction();
  ASSERT_TRUE(deleter.ok());
  ASSERT_TRUE(
      gis_.TxnWrite(*deleter, "bank_a", "DELETE FROM accounts WHERE id = 1")
          .ok());
  ASSERT_TRUE(gis_.CommitTransaction(*deleter).ok());
  EXPECT_EQ(Count("acct_a"), 1);
  // The older snapshot still sees the deleted row's version.
  EXPECT_EQ(CountInTxn(*reader, "acct_a"), 2);
  ASSERT_TRUE(gis_.CommitTransaction(*reader).ok());
}

TEST_F(MvccSystemTest, WriteWriteConflictAbortsSecondDeleter) {
  auto t1 = gis_.BeginTransaction();
  auto t2 = gis_.BeginTransaction();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(
      gis_.TxnWrite(*t1, "bank_a", "DELETE FROM accounts WHERE id = 1")
          .ok());
  ASSERT_TRUE(gis_.CommitTransaction(*t1).ok());
  // t2's snapshot still sees the row, but it is already dead at
  // latest: first committer wins, the loser aborts.
  Status st =
      gis_.TxnWrite(*t2, "bank_a", "DELETE FROM accounts WHERE id = 1");
  EXPECT_TRUE(st.IsExecutionError()) << st.ToString();
  EXPECT_NE(st.message().find("write-write conflict"), std::string::npos);
  // The transaction was auto-aborted; further use reports that.
  EXPECT_FALSE(gis_.QueryInTxn(*t2, "SELECT id FROM acct_a").ok());
}

TEST_F(MvccSystemTest, LockConflictWouldBlockWithoutDeadlock) {
  auto t1 = gis_.BeginTransaction();
  auto t2 = gis_.BeginTransaction();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(gis_.TxnWrite(*t1, "bank_a",
                            "INSERT INTO accounts VALUES (3, 1.0)")
                  .ok());
  // Same first-column key hash → same row lock: t2 would block.
  Status st = gis_.TxnWrite(*t2, "bank_a",
                            "INSERT INTO accounts VALUES (3, 2.0)");
  EXPECT_TRUE(st.IsOverloaded()) << st.ToString();
  // t2 stays alive; after t1 commits, the retry succeeds.
  ASSERT_TRUE(gis_.CommitTransaction(*t1).ok());
  EXPECT_TRUE(gis_.TxnWrite(*t2, "bank_a",
                            "INSERT INTO accounts VALUES (3, 2.0)")
                  .ok());
  ASSERT_TRUE(gis_.CommitTransaction(*t2).ok());
  EXPECT_EQ(Count("acct_a"), 4);
}

TEST_F(MvccSystemTest, DeadlockAbortsYoungestDeterministically) {
  auto t1 = gis_.BeginTransaction();
  auto t2 = gis_.BeginTransaction();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  // t1 locks key 1 at bank_a, t2 locks key 2 at bank_b.
  ASSERT_TRUE(gis_.TxnWrite(*t1, "bank_a",
                            "INSERT INTO accounts VALUES (1, 1.0)")
                  .ok());
  ASSERT_TRUE(gis_.TxnWrite(*t2, "bank_b",
                            "INSERT INTO accounts VALUES (2, 2.0)")
                  .ok());
  // t1 now wants t2's lock: records the edge, no cycle yet.
  Status st = gis_.TxnWrite(*t1, "bank_b",
                            "INSERT INTO accounts VALUES (2, 1.0)");
  EXPECT_TRUE(st.IsOverloaded()) << st.ToString();
  // t2 wants t1's lock: closes the cycle. t2 is the youngest → victim.
  st = gis_.TxnWrite(*t2, "bank_a", "INSERT INTO accounts VALUES (1, 2.0)");
  EXPECT_TRUE(st.IsExecutionError()) << st.ToString();
  EXPECT_NE(st.message().find("deadlock"), std::string::npos);
  EXPECT_FALSE(gis_.QueryInTxn(*t2, "SELECT id FROM acct_a").ok());
  // The survivor's retry now succeeds and it commits both writes.
  EXPECT_TRUE(gis_.TxnWrite(*t1, "bank_b",
                            "INSERT INTO accounts VALUES (2, 1.0)")
                  .ok());
  ASSERT_TRUE(gis_.CommitTransaction(*t1).ok());
  EXPECT_EQ(gis_.transactions().counters().deadlocks, 1);
}

TEST_F(MvccSystemTest, BeginShedsPastMaxActive) {
  PlannerOptions opts = gis_.options();
  opts.txn_max_active = 2;
  gis_.set_options(opts);
  auto t1 = gis_.BeginTransaction();
  auto t2 = gis_.BeginTransaction();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto t3 = gis_.BeginTransaction();
  ASSERT_FALSE(t3.ok());
  EXPECT_TRUE(t3.status().IsOverloaded());
  ASSERT_TRUE(gis_.AbortTransaction(*t1).ok());
  EXPECT_TRUE(gis_.BeginTransaction().ok());
}

TEST_F(MvccSystemTest, WatermarkGcReclaimsDeletedVersions) {
  ComponentSource* src = *gis_.GetSource("bank_a");
  auto t1 = gis_.BeginTransaction();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(
      gis_.TxnWrite(*t1, "bank_a", "DELETE FROM accounts WHERE id = 1")
          .ok());
  ASSERT_TRUE(gis_.CommitTransaction(*t1).ok());
  // No readers are left behind: the commit's piggybacked watermark
  // already collected the dead version at the source.
  auto table = src->engine().GetTable("accounts");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 1);
  EXPECT_EQ(Count("acct_a"), 1);
}

TEST_F(MvccSystemTest, TransactionsVirtualTable) {
  auto t1 = gis_.BeginTransaction();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(gis_.TxnWrite(*t1, "bank_a",
                            "INSERT INTO accounts VALUES (3, 5.0)")
                  .ok());
  ASSERT_TRUE(gis_.CommitTransaction(*t1).ok());
  auto r = gis_.Query(
      "SELECT id, state, participants FROM gis.transactions");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GE(r->batch.num_rows(), 1u);
  bool found = false;
  for (const auto& row : r->batch.rows()) {
    if (row[0].AsInt() == static_cast<int64_t>(*t1)) {
      EXPECT_EQ(row[1].AsString(), "committed");
      EXPECT_EQ(row[2].AsString(), "bank_a");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MvccSystemTest, PrometheusExportsTxnSeries) {
  auto t1 = gis_.BeginTransaction();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(gis_.TxnWrite(*t1, "bank_a",
                            "INSERT INTO accounts VALUES (3, 5.0)")
                  .ok());
  ASSERT_TRUE(gis_.CommitTransaction(*t1).ok());
  const std::string out = gis_.ExportPrometheus();
  EXPECT_NE(out.find("gisql_txn_started_total"), std::string::npos);
  EXPECT_NE(out.find("gisql_txn_committed_total"), std::string::npos);
  EXPECT_NE(out.find("gisql_txn_aborted_total"), std::string::npos);
  EXPECT_NE(out.find("gisql_txn_deadlocks_total"), std::string::npos);
  EXPECT_NE(out.find("gisql_txn_lock_waits_total"), std::string::npos);
  EXPECT_NE(out.find("gisql_txn_watermark"), std::string::npos);
  EXPECT_NE(out.find("gisql_txn_active"), std::string::npos);
}

TEST_F(MvccSystemTest, AbortDropsStagedWritesAndLocks) {
  ComponentSource* src = *gis_.GetSource("bank_a");
  auto t1 = gis_.BeginTransaction();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(gis_.TxnWrite(*t1, "bank_a",
                            "INSERT INTO accounts VALUES (3, 5.0)")
                  .ok());
  EXPECT_EQ(src->pending_txns(), 1u);
  EXPECT_GT(src->locks().LockedResources(), 0u);
  ASSERT_TRUE(gis_.AbortTransaction(*t1).ok());
  EXPECT_EQ(src->pending_txns(), 0u);
  EXPECT_EQ(src->locks().LockedResources(), 0u);
  EXPECT_EQ(Count("acct_a"), 2);
  // A fresh transaction is free to take the same locks.
  auto t2 = gis_.BeginTransaction();
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(gis_.TxnWrite(*t2, "bank_a",
                            "INSERT INTO accounts VALUES (3, 5.0)")
                  .ok());
  ASSERT_TRUE(gis_.CommitTransaction(*t2).ok());
}

}  // namespace
}  // namespace gisql
