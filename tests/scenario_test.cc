/// Million-user scenario regressions (ctest -L scenario): the seeded
/// open-loop traffic engine must replay identically, its shed rate must
/// rise monotonically in offered load, its report must reconcile with
/// the mediator's own gis.admission accounting, and streamed delivery
/// must hold the mediator's peak footprint at or below materialized
/// delivery for the same traffic.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/global_system.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace gisql {
namespace {

WorkloadSpec SmallFederation() {
  WorkloadSpec spec;
  spec.seed = 21;
  spec.num_sites = 2;
  spec.num_customers = 50;
  spec.num_products = 20;
  spec.orders_per_site = 200;
  return spec;
}

/// A tight governor so a small scenario actually sheds: two slots, a
/// short queue, and a deadline a few service times out.
PlannerOptions TightOptions() {
  PlannerOptions options;
  options.parallel_execution = false;
  options.max_concurrent_queries = 2;
  options.admission_queue_limit = 6;
  options.admission_max_wait_ms = 40.0;
  options.cursor_max_open = 8;
  return options;
}

ScenarioSpec SmallScenario(double qps, bool streamed) {
  const WorkloadSpec fed = SmallFederation();
  ScenarioSpec spec;
  spec.seed = 2121;
  spec.base_qps = qps;
  spec.duration_ms = 2000.0;
  spec.num_tenants = 100000;
  spec.num_customers = fed.num_customers;
  spec.num_products = fed.num_products;
  spec.diurnal_amplitude = 0.3;
  spec.diurnal_period_ms = 1000.0;
  FlashCrowd crowd;
  crowd.start_ms = 800.0;
  crowd.duration_ms = 400.0;
  crowd.multiplier = 3.0;
  spec.flash_crowds.push_back(crowd);
  spec.slo_ms = 40.0;
  spec.use_cursors = streamed;
  spec.chunk_rows = 64;
  return spec;
}

ScenarioReport RunSmall(GlobalSystem* gis, double qps, bool streamed) {
  EXPECT_TRUE(BuildRetailFederation(gis, SmallFederation()).ok());
  auto report = RunScenario(gis, SmallScenario(qps, streamed));
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? *report : ScenarioReport{};
}

ScenarioReport RunSmall(double qps, bool streamed) {
  GlobalSystem gis(TightOptions());
  return RunSmall(&gis, qps, streamed);
}

TEST(ScenarioRate, ComposesDiurnalAndFlashModulation) {
  ScenarioSpec spec = SmallScenario(100.0, false);
  const double base = spec.base_qps / 1000.0;

  // t=0: sin(0) = 0 → exactly the base rate, no crowd active.
  EXPECT_NEAR(ScenarioOfferedRate(spec, 0.0), base, 1e-12);
  // Diurnal crest at a quarter period.
  EXPECT_NEAR(ScenarioOfferedRate(spec, 250.0), base * 1.3, 1e-9);
  // Diurnal trough at three quarters.
  EXPECT_NEAR(ScenarioOfferedRate(spec, 750.0), base * 0.7, 1e-9);
  // Inside the flash crowd the step multiplier compounds the sinusoid.
  const double t = 900.0;
  const double diurnal =
      1.0 + 0.3 * std::sin(2.0 * M_PI * t / spec.diurnal_period_ms);
  EXPECT_NEAR(ScenarioOfferedRate(spec, t), base * diurnal * 3.0, 1e-9);
  // The crowd's half-open window, compared at matched diurnal phase
  // (the period divides 1000 ms): active at the start instant, gone at
  // the end instant.
  EXPECT_NEAR(ScenarioOfferedRate(spec, 800.0),
              3.0 * ScenarioOfferedRate(spec, 1800.0), 1e-9);
  EXPECT_NEAR(ScenarioOfferedRate(spec, 1200.0),
              ScenarioOfferedRate(spec, 200.0), 1e-9);

  EXPECT_EQ(ScenarioTemplateCount(), 5);
}

TEST(ScenarioEngine, SameSeedReplaysIdentically) {
  const ScenarioReport a = RunSmall(60.0, /*streamed=*/true);
  const ScenarioReport b = RunSmall(60.0, /*streamed=*/true);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.total_chunks, b.total_chunks);
  EXPECT_EQ(a.total_rows, b.total_rows);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
  EXPECT_DOUBLE_EQ(a.slo_attainment, b.slo_attainment);
}

TEST(ScenarioEngine, ShedRateRisesWithOfferedLoad) {
  const ScenarioReport light = RunSmall(20.0, /*streamed=*/false);
  const ScenarioReport heavy = RunSmall(160.0, /*streamed=*/false);

  ASSERT_GT(light.offered, 0);
  ASSERT_GT(heavy.offered, light.offered);
  EXPECT_EQ(light.failed, 0);
  EXPECT_EQ(heavy.failed, 0);

  const double light_shed =
      static_cast<double>(light.shed_queue + light.shed_deadline +
                          light.shed_memory) /
      light.offered;
  const double heavy_shed =
      static_cast<double>(heavy.shed_queue + heavy.shed_deadline +
                          heavy.shed_memory) /
      heavy.offered;
  EXPECT_GT(heavy_shed, light_shed);
  EXPECT_GT(light.slo_attainment, heavy.slo_attainment);
}

TEST(ScenarioEngine, ReportReconcilesWithAdmissionAccounting) {
  GlobalSystem gis(TightOptions());
  // 70 qps keeps the arrival count under the query log's ring capacity
  // (256) so the gis.queries cross-check below sees every entry, while
  // the 3× flash crowd still pushes the governor into shedding.
  const ScenarioReport r = RunSmall(&gis, 70.0, /*streamed=*/false);
  ASSERT_GT(r.offered, 0);
  ASSERT_GT(r.shed_queue + r.shed_deadline, 0);
  ASSERT_LT(r.offered, static_cast<int64_t>(QueryLog::kDefaultCapacity));
  EXPECT_EQ(static_cast<int64_t>(r.decisions.size()), r.offered);
  EXPECT_EQ(r.offered, r.completed + r.shed_queue + r.shed_deadline +
                           r.shed_memory + r.shed_cursor + r.failed);
  // No per-query memory cap is set, so nothing sheds on memory here and
  // the governor's counters reconcile exactly with the report.
  EXPECT_EQ(r.shed_memory, 0);
  EXPECT_EQ(gis.metrics().Get("admission.shed"),
            r.shed_queue + r.shed_deadline);
  EXPECT_EQ(gis.metrics().Get("admission.admitted"), r.completed);

  // The shed decomposition is also queryable through the system tables.
  auto shed = gis.Query(
      "SELECT COUNT(*) FROM gis.queries WHERE shed_reason <> ''");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->batch.rows()[0][0].AsInt(),
            r.shed_queue + r.shed_deadline);
}

TEST(ScenarioEngine, StreamedPeakFootprintStaysAtOrBelowMaterialized) {
  const ScenarioReport materialized = RunSmall(60.0, /*streamed=*/false);
  const ScenarioReport streamed = RunSmall(60.0, /*streamed=*/true);

  ASSERT_GT(streamed.streamed_queries, 0);
  ASSERT_GT(streamed.total_chunks, 0);
  EXPECT_EQ(streamed.failed, 0);
  EXPECT_LE(streamed.mem_peak_bytes, materialized.mem_peak_bytes);
  // Same traffic, same completions-or-sheds universe: both modes must
  // account for every arrival.
  EXPECT_EQ(streamed.offered, materialized.offered);
}

}  // namespace
}  // namespace gisql
