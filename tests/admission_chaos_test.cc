/// Circuit breakers under deterministic fault schedules: the per-source
/// machine must walk closed → open → half-open and back as a targeted
/// outage comes and goes, skips must cost zero network, and a seed must
/// replay the identical transition log and gis.sources rendering.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/global_system.h"
#include "sched/circuit_breaker.h"

namespace gisql {
namespace {

/// Serial execution keeps the per-link message sequence — the fault
/// schedule's randomness domain — independent of thread scheduling.
PlannerOptions BreakerOptions() {
  PlannerOptions options;
  options.parallel_execution = false;
  options.circuit_breaker = true;
  options.breaker_open_failures = 3;
  options.breaker_cooldown_skips = 2;
  options.breaker_probe_ratio = 1.0;  // every half-open request probes
  return options;
}

/// Two full replicas behind one replicated view, replica0 planned first.
void BuildReplicated(GlobalSystem* gis) {
  for (int i = 0; i < 2; ++i) {
    const std::string name = "replica" + std::to_string(i);
    auto src = *gis->CreateSource(name, SourceDialect::kRelational);
    ASSERT_TRUE(
        src->ExecuteLocalSql("CREATE TABLE inv (id bigint, qty bigint)")
            .ok());
    ASSERT_TRUE(src->ExecuteLocalSql(
                      "INSERT INTO inv VALUES (1, 10), (2, 20), (3, 30)")
                    .ok());
    ASSERT_TRUE(gis->ImportTable(name, "inv", "inv_" + name).ok());
  }
  ASSERT_TRUE(gis->CreateReplicatedView(
                     "inventory", {"inv_replica0", "inv_replica1"})
                  .ok());
  ASSERT_TRUE(gis->catalog().SetLatencyHint("replica0", 1.0).ok());
  ASSERT_TRUE(gis->catalog().SetLatencyHint("replica1", 2.0).ok());
}

class BreakerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Health-aware reordering would hide the breaker behind the suspect
    // demotion; pin plan order so the breaker alone decides.
    options_ = BreakerOptions();
    options_.health_aware_routing = false;
    gis_ = std::make_unique<GlobalSystem>(options_);
    BuildReplicated(gis_.get());
  }

  QueryMetrics Probe() {
    auto r = gis_->Query("SELECT SUM(qty) FROM inventory");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) {
      EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 60);
    }
    return r.ok() ? r->metrics : QueryMetrics{};
  }

  BreakerState StateOfPrimary() const {
    return gis_->governor().breakers().StateOf("replica0");
  }

  PlannerOptions options_;
  std::unique_ptr<GlobalSystem> gis_;
};

TEST_F(BreakerChaosTest, OutageWalksTheMachineAndSkipsAreFree) {
  gis_->network().SetHostDown("replica0", true);

  // Single-attempt policy: each query fails replica0 once, then serves
  // from replica1 — three failures open the breaker.
  QueryMetrics during{};
  for (int i = 0; i < 3; ++i) during = Probe();
  EXPECT_EQ(StateOfPrimary(), BreakerState::kOpen);
  // The failed attempt burned the detection timeout but sent nothing.
  EXPECT_EQ(during.messages, 1);

  // While open, the skip answers before the wire: same single message,
  // and strictly less simulated time than the detecting queries.
  const QueryMetrics skip1 = Probe();
  EXPECT_EQ(skip1.messages, 1);
  EXPECT_LT(skip1.elapsed_ms, during.elapsed_ms);
  const QueryMetrics skip2 = Probe();
  EXPECT_EQ(skip2.elapsed_ms, skip1.elapsed_ms);
  // Two skips served the cooldown: probing may resume.
  EXPECT_EQ(StateOfPrimary(), BreakerState::kHalfOpen);

  // The probe goes through, finds the host still down, and re-opens.
  const QueryMetrics probe = Probe();
  EXPECT_GT(probe.elapsed_ms, skip1.elapsed_ms);
  EXPECT_EQ(StateOfPrimary(), BreakerState::kOpen);

  // Host recovers; after the cooldown the next probe closes the
  // breaker and the primary serves again.
  gis_->network().SetHostDown("replica0", false);
  Probe();
  Probe();
  EXPECT_EQ(StateOfPrimary(), BreakerState::kHalfOpen);
  Probe();
  EXPECT_EQ(StateOfPrimary(), BreakerState::kClosed);

  const std::vector<std::string> expected = {
      "replica0: closed->open",     "replica0: open->half_open",
      "replica0: half_open->open",  "replica0: open->half_open",
      "replica0: half_open->closed"};
  EXPECT_EQ(gis_->governor().breakers().TransitionLog(), expected);

  // The walk is queryable: gis.sources carries the breaker columns.
  auto rows = gis_->Query(
      "SELECT source, breaker, breaker_skips, breaker_probes, "
      "breaker_transitions FROM gis.sources ORDER BY source");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->batch.num_rows(), 2u);
  EXPECT_EQ(rows->batch.rows()[0][0].AsString(), "replica0");
  EXPECT_EQ(rows->batch.rows()[0][1].AsString(), "closed");
  EXPECT_EQ(rows->batch.rows()[0][2].AsInt(), 4);
  EXPECT_EQ(rows->batch.rows()[0][4].AsInt(), 5);
  EXPECT_EQ(rows->batch.rows()[1][1].AsString(), "closed");
  EXPECT_EQ(rows->batch.rows()[1][3].AsInt(), 0);
}

TEST_F(BreakerChaosTest, InjectedDropStreakOpensViaHealthPipeline) {
  // The breaker consumes the health tracker's attempt stream, so a
  // FaultSchedule drop streak (not just a down host) must open it too.
  gis_->set_retry_policy(RetryPolicy::Standard(4, /*seed=*/3));
  gis_->network().InstallFaults(/*seed=*/3, FaultProfile{});
  gis_->network().faults()->InjectOn("replica0", /*opcode=*/-1,
                                     FaultKind::kDrop, 4);
  Probe();  // four dropped attempts: streak past open_after
  EXPECT_EQ(StateOfPrimary(), BreakerState::kOpen);
  EXPECT_GT(gis_->governor().breakers().TotalTransitions(), 0);
}

TEST(BreakerDeterminismTest, SameSeedReplaysTransitionsAndRendering) {
  auto run = [](uint64_t seed) {
    PlannerOptions options = BreakerOptions();
    options.breaker_seed = seed;
    GlobalSystem gis(options);
    BuildReplicated(&gis);
    gis.set_retry_policy(RetryPolicy::Standard(3, seed));
    gis.network().InstallFaults(seed, FaultProfile::Chaos(0.6));
    for (int i = 0; i < 12; ++i) {
      (void)gis.Query("SELECT SUM(qty) FROM inventory");
      (void)gis.Query("SELECT qty FROM inventory WHERE id = 2");
    }
    std::string out;
    for (const auto& line : gis.governor().breakers().TransitionLog()) {
      out += line + "\n";
    }
    auto rows = gis.Query("SELECT * FROM gis.sources ORDER BY source");
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    if (rows.ok()) out += rows->batch.ToString(1 << 20);
    auto admission = gis.Query("SELECT * FROM gis.admission");
    EXPECT_TRUE(admission.ok()) << admission.status().ToString();
    if (admission.ok()) out += admission->batch.ToString(1 << 20);
    return out;
  };
  const std::string a = run(21);
  EXPECT_EQ(a, run(21));
  EXPECT_FALSE(a.empty());
  // A different seed is allowed to (and here does) tell another story;
  // the point is that each seed tells exactly one.
  EXPECT_NE(run(22), a);
}

}  // namespace
}  // namespace gisql
