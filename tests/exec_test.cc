/// Unit tests for execution components: aggregate accumulators, hash
/// aggregation, and executor edge behavior (semijoin fallback, union
/// coercion, sort stability, distinct, workload generator determinism).

#include <gtest/gtest.h>

#include "core/global_system.h"
#include "exec/aggregate.h"
#include "exec/hash_aggregate.h"
#include "workload/generator.h"

namespace gisql {
namespace {

BoundAggregate Spec(AggKind kind, TypeId arg_type = TypeId::kInt64,
                    bool distinct = false) {
  BoundAggregate spec;
  spec.kind = kind;
  spec.distinct = distinct;
  if (kind != AggKind::kCountStar) {
    spec.arg = MakeColumn(0, arg_type, "x");
  }
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      spec.result_type = TypeId::kInt64;
      break;
    case AggKind::kAvg:
      spec.result_type = TypeId::kDouble;
      break;
    default:
      spec.result_type = arg_type;
  }
  return spec;
}

TEST(AccumulatorTest, CountStarCountsEverything) {
  AggregateAccumulator acc(Spec(AggKind::kCountStar));
  acc.Update(Value::Int(1));
  acc.Update(Value::Null());
  acc.Update(Value::Int(3));
  EXPECT_EQ(acc.Finalize().AsInt(), 3);
}

TEST(AccumulatorTest, CountSkipsNulls) {
  AggregateAccumulator acc(Spec(AggKind::kCount));
  acc.Update(Value::Int(1));
  acc.Update(Value::Null(TypeId::kInt64));
  acc.Update(Value::Int(3));
  EXPECT_EQ(acc.Finalize().AsInt(), 2);
}

TEST(AccumulatorTest, SumIntAndDouble) {
  AggregateAccumulator int_acc(Spec(AggKind::kSum));
  int_acc.Update(Value::Int(2));
  int_acc.Update(Value::Int(40));
  EXPECT_EQ(int_acc.Finalize().AsInt(), 42);

  AggregateAccumulator dbl_acc(Spec(AggKind::kSum, TypeId::kDouble));
  dbl_acc.Update(Value::Double(0.5));
  dbl_acc.Update(Value::Double(1.25));
  EXPECT_DOUBLE_EQ(dbl_acc.Finalize().AsDouble(), 1.75);
}

TEST(AccumulatorTest, EmptyInputSemantics) {
  EXPECT_EQ(AggregateAccumulator(Spec(AggKind::kCount)).Finalize().AsInt(),
            0);
  EXPECT_TRUE(AggregateAccumulator(Spec(AggKind::kSum)).Finalize().is_null());
  EXPECT_TRUE(AggregateAccumulator(Spec(AggKind::kAvg)).Finalize().is_null());
  EXPECT_TRUE(AggregateAccumulator(Spec(AggKind::kMin)).Finalize().is_null());
}

TEST(AccumulatorTest, AvgMinMax) {
  AggregateAccumulator avg(Spec(AggKind::kAvg));
  AggregateAccumulator mn(Spec(AggKind::kMin));
  AggregateAccumulator mx(Spec(AggKind::kMax));
  for (int v : {4, 8, 6}) {
    avg.Update(Value::Int(v));
    mn.Update(Value::Int(v));
    mx.Update(Value::Int(v));
  }
  EXPECT_DOUBLE_EQ(avg.Finalize().AsDouble(), 6.0);
  EXPECT_EQ(mn.Finalize().AsInt(), 4);
  EXPECT_EQ(mx.Finalize().AsInt(), 8);
}

TEST(AccumulatorTest, DistinctDeduplicates) {
  AggregateAccumulator acc(Spec(AggKind::kCount, TypeId::kInt64, true));
  for (int v : {1, 2, 2, 3, 1}) acc.Update(Value::Int(v));
  EXPECT_EQ(acc.Finalize().AsInt(), 3);

  AggregateAccumulator sum(Spec(AggKind::kSum, TypeId::kInt64, true));
  for (int v : {5, 5, 7}) sum.Update(Value::Int(v));
  EXPECT_EQ(sum.Finalize().AsInt(), 12);
}

TEST(AccumulatorTest, MinMaxStrings) {
  AggregateAccumulator mn(Spec(AggKind::kMin, TypeId::kString));
  mn.Update(Value::String("pear"));
  mn.Update(Value::String("apple"));
  EXPECT_EQ(mn.Finalize().AsString(), "apple");
}

TEST(HashAggregateTest, GroupsAndGlobal) {
  std::vector<Row> storage;
  for (int i = 0; i < 10; ++i) {
    storage.push_back({Value::Int(i % 3), Value::Int(i)});
  }
  std::vector<const Row*> rows;
  for (const auto& r : storage) rows.push_back(&r);

  std::vector<ExprPtr> groups = {MakeColumn(0, TypeId::kInt64, "g")};
  BoundAggregate sum;
  sum.kind = AggKind::kSum;
  sum.arg = MakeColumn(1, TypeId::kInt64, "v");
  sum.result_type = TypeId::kInt64;
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"g", TypeId::kInt64}, {"s", TypeId::kInt64}});
  auto out = HashAggregate(rows, groups, {sum}, schema);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 3u);
  int64_t total = 0;
  for (const auto& row : out->rows()) total += row[1].AsInt();
  EXPECT_EQ(total, 45);

  // Global aggregation over empty input → one row.
  auto empty = HashAggregate({}, {}, {sum},
                             std::make_shared<Schema>(std::vector<Field>{
                                 {"s", TypeId::kInt64}}));
  ASSERT_TRUE(empty.ok());
  ASSERT_EQ(empty->num_rows(), 1u);
  EXPECT_TRUE(empty->rows()[0][0].is_null());
}

TEST(HashAggregateTest, NullGroupKeyIsItsOwnGroup) {
  std::vector<Row> storage = {
      {Value::Null(TypeId::kInt64), Value::Int(1)},
      {Value::Int(5), Value::Int(2)},
      {Value::Null(TypeId::kInt64), Value::Int(3)},
  };
  std::vector<const Row*> rows;
  for (const auto& r : storage) rows.push_back(&r);
  std::vector<ExprPtr> groups = {MakeColumn(0, TypeId::kInt64, "g")};
  BoundAggregate count;
  count.kind = AggKind::kCountStar;
  count.result_type = TypeId::kInt64;
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"g", TypeId::kInt64}, {"n", TypeId::kInt64}});
  auto out = HashAggregate(rows, groups, {count}, schema);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);  // NULL group + {5}
}

TEST(HashAggregateTest, LimitCapsGroups) {
  std::vector<Row> storage;
  for (int i = 0; i < 100; ++i) storage.push_back({Value::Int(i)});
  std::vector<const Row*> rows;
  for (const auto& r : storage) rows.push_back(&r);
  std::vector<ExprPtr> groups = {MakeColumn(0, TypeId::kInt64, "g")};
  BoundAggregate count;
  count.kind = AggKind::kCountStar;
  count.result_type = TypeId::kInt64;
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"g", TypeId::kInt64}, {"n", TypeId::kInt64}});
  auto out = HashAggregate(rows, groups, {count}, schema, 7);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 7u);
}

class ExecBehaviorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadSpec spec;
    spec.num_sites = 2;
    spec.num_customers = 100;
    spec.num_products = 20;
    spec.orders_per_site = 500;
    ASSERT_TRUE(BuildRetailFederation(&gis_, spec).ok());
  }
  GlobalSystem gis_;
};

TEST_F(ExecBehaviorTest, WorkloadIsDeterministic) {
  GlobalSystem other;
  WorkloadSpec spec;
  spec.num_sites = 2;
  spec.num_customers = 100;
  spec.num_products = 20;
  spec.orders_per_site = 500;
  ASSERT_TRUE(BuildRetailFederation(&other, spec).ok());
  auto a = gis_.Query("SELECT SUM(amount) FROM sales");
  auto b = other.Query("SELECT SUM(amount) FROM sales");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->batch.rows()[0][0].AsDouble(),
                   b->batch.rows()[0][0].AsDouble());
  EXPECT_DOUBLE_EQ(a->metrics.elapsed_ms, b->metrics.elapsed_ms);
  EXPECT_EQ(a->metrics.bytes_received, b->metrics.bytes_received);
}

TEST_F(ExecBehaviorTest, SemijoinFallbackWhenKeysExceedCap) {
  PlannerOptions opts;
  opts.semijoin_max_keys = 3;  // force the runtime fallback path
  gis_.set_options(opts);
  auto result = gis_.Query(
      "SELECT COUNT(*) FROM customers c JOIN sales_site0 s "
      "ON c.cid = s.cid");
  gis_.set_options(PlannerOptions::Full());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->batch.rows()[0][0].AsInt(), 500);
}

TEST_F(ExecBehaviorTest, SemijoinAndShipAgree) {
  const std::string q =
      "SELECT c.region, SUM(s.amount) FROM customers c JOIN sales s "
      "ON c.cid = s.cid WHERE c.segment = 'seg1' "
      "GROUP BY c.region ORDER BY c.region";
  auto semi = gis_.Query(q);
  ASSERT_TRUE(semi.ok()) << semi.status().ToString();
  PlannerOptions no_semi;
  no_semi.enable_semijoin = false;
  gis_.set_options(no_semi);
  auto ship = gis_.Query(q);
  gis_.set_options(PlannerOptions::Full());
  ASSERT_TRUE(ship.ok());
  ASSERT_EQ(semi->batch.num_rows(), ship->batch.num_rows());
  for (size_t i = 0; i < semi->batch.num_rows(); ++i) {
    EXPECT_EQ(semi->batch.rows()[i][0].AsString(),
              ship->batch.rows()[i][0].AsString());
    EXPECT_NEAR(semi->batch.rows()[i][1].AsDouble(),
                ship->batch.rows()[i][1].AsDouble(), 1e-6);
  }
}

TEST_F(ExecBehaviorTest, AllBaselinesAgreeOnAnswers) {
  const std::string queries[] = {
      "SELECT COUNT(*) FROM sales WHERE amount > 50",
      "SELECT pid, SUM(qty) FROM sales GROUP BY pid ORDER BY pid LIMIT 5",
      "SELECT c.segment, COUNT(*) FROM customers c JOIN sales s ON "
      "c.cid = s.cid GROUP BY c.segment ORDER BY c.segment",
  };
  for (const auto& q : queries) {
    gis_.set_options(PlannerOptions::Full());
    auto full = gis_.Query(q);
    ASSERT_TRUE(full.ok()) << q << ": " << full.status().ToString();
    gis_.set_options(PlannerOptions::ShipEverything());
    auto ship = gis_.Query(q);
    ASSERT_TRUE(ship.ok()) << q << ": " << ship.status().ToString();
    gis_.set_options(PlannerOptions::FilterPushdownOnly());
    auto filt = gis_.Query(q);
    ASSERT_TRUE(filt.ok()) << q << ": " << filt.status().ToString();
    gis_.set_options(PlannerOptions::Full());

    ASSERT_EQ(full->batch.num_rows(), ship->batch.num_rows()) << q;
    ASSERT_EQ(full->batch.num_rows(), filt->batch.num_rows()) << q;
    for (size_t i = 0; i < full->batch.num_rows(); ++i) {
      for (size_t c = 0; c < full->batch.schema()->num_fields(); ++c) {
        EXPECT_EQ(full->batch.rows()[i][c].Compare(ship->batch.rows()[i][c]),
                  0)
            << q << " row " << i << " col " << c;
        EXPECT_EQ(full->batch.rows()[i][c].Compare(filt->batch.rows()[i][c]),
                  0)
            << q << " row " << i << " col " << c;
      }
    }
  }
}

TEST_F(ExecBehaviorTest, SortIsStableAndNullsFirst) {
  auto hq = *gis_.GetSource("hq");
  ASSERT_TRUE(hq->ExecuteLocalSql(
                    "CREATE TABLE t (id bigint, v bigint)")
                  .ok());
  ASSERT_TRUE(hq->ExecuteLocalSql(
                    "INSERT INTO t VALUES (1, 5), (2, NULL), (3, 5), "
                    "(4, 1)")
                  .ok());
  ASSERT_TRUE(gis_.ImportTable("hq", "t", "t").ok());
  auto result = gis_.Query("SELECT id, v FROM t ORDER BY v");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 4u);
  EXPECT_TRUE(result->batch.rows()[0][1].is_null());  // NULL first
  EXPECT_EQ(result->batch.rows()[1][1].AsInt(), 1);
  // Stability: id 1 before id 3 among equal v=5.
  EXPECT_EQ(result->batch.rows()[2][0].AsInt(), 1);
  EXPECT_EQ(result->batch.rows()[3][0].AsInt(), 3);
}

TEST_F(ExecBehaviorTest, ZipfSkewConcentratesSales) {
  GlobalSystem skewed;
  WorkloadSpec spec;
  spec.num_sites = 1;
  spec.num_customers = 100;
  spec.num_products = 100;
  spec.orders_per_site = 5000;
  spec.zipf_theta = 0.9;
  ASSERT_TRUE(BuildRetailFederation(&skewed, spec).ok());
  auto top = skewed.Query(
      "SELECT pid, COUNT(*) AS n FROM sales GROUP BY pid "
      "ORDER BY n DESC LIMIT 1");
  ASSERT_TRUE(top.ok());
  // With theta=0.9 the top product takes far more than uniform 1%.
  EXPECT_GT(top->batch.rows()[0][1].AsInt(), 5000 / 100 * 4);
}

}  // namespace
}  // namespace gisql

namespace gisql {
namespace {

TEST_F(ExecBehaviorTest, ParallelAndSerialExecutionAgreeExactly) {
  const std::string queries[] = {
      "SELECT pid, SUM(amount) FROM sales GROUP BY pid ORDER BY pid",
      "SELECT c.region, COUNT(*) FROM sales s JOIN customers c "
      "ON s.cid = c.cid GROUP BY c.region ORDER BY c.region",
  };
  for (const auto& q : queries) {
    PlannerOptions parallel;
    parallel.parallel_execution = true;
    gis_.set_options(parallel);
    auto p = gis_.Query(q);
    ASSERT_TRUE(p.ok()) << p.status().ToString();

    PlannerOptions serial;
    serial.parallel_execution = false;
    gis_.set_options(serial);
    auto s = gis_.Query(q);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    gis_.set_options(PlannerOptions::Full());

    // Identical rows, identical simulated accounting: threads are a
    // wall-clock-only concern.
    ASSERT_EQ(p->batch.num_rows(), s->batch.num_rows()) << q;
    for (size_t i = 0; i < p->batch.num_rows(); ++i) {
      for (size_t c = 0; c < p->batch.schema()->num_fields(); ++c) {
        EXPECT_EQ(
            p->batch.rows()[i][c].Compare(s->batch.rows()[i][c]), 0)
            << q;
      }
    }
    EXPECT_DOUBLE_EQ(p->metrics.elapsed_ms, s->metrics.elapsed_ms) << q;
    EXPECT_EQ(p->metrics.bytes_received, s->metrics.bytes_received) << q;
    EXPECT_EQ(p->metrics.messages, s->metrics.messages) << q;
  }
}

}  // namespace
}  // namespace gisql
