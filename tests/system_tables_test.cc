/// Tests of the mediator's self-observation surface: the gis.* virtual
/// system tables (through the ordinary SQL pipeline, at zero network
/// cost), the bounded query log, and the Prometheus text exposition.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/system_tables.h"
#include "core/global_system.h"
#include "core/query_log.h"

namespace gisql {
namespace {

/// Two-source federation with enough data for multi-fragment queries.
void Build(GlobalSystem* gis) {
  auto hq = *gis->CreateSource("hq", SourceDialect::kRelational);
  ASSERT_TRUE(hq->ExecuteLocalSql(
                    "CREATE TABLE orders (oid bigint, cid bigint, "
                    "total double)")
                  .ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(hq->ExecuteLocalSql(
                      "INSERT INTO orders VALUES (" + std::to_string(i) +
                      ", " + std::to_string(i % 8) + ", " +
                      std::to_string(i * 2.5) + ")")
                    .ok());
  }
  auto branch = *gis->CreateSource("branch", SourceDialect::kDocument);
  ASSERT_TRUE(branch->ExecuteLocalSql(
                    "CREATE TABLE clients (cid bigint, name varchar)")
                  .ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(branch->ExecuteLocalSql(
                      "INSERT INTO clients VALUES (" + std::to_string(i) +
                      ", 'c" + std::to_string(i) + "')")
                    .ok());
  }
  ASSERT_TRUE(gis->ImportSource("hq").ok());
  ASSERT_TRUE(gis->ImportSource("branch").ok());
}

TEST(SystemTableNamesTest, PrefixDetection) {
  EXPECT_TRUE(IsSystemTableName("gis.sources"));
  EXPECT_TRUE(IsSystemTableName("GIS.Sources"));
  EXPECT_FALSE(IsSystemTableName("gis."));   // prefix alone names nothing
  EXPECT_FALSE(IsSystemTableName("gis"));
  EXPECT_FALSE(IsSystemTableName("orders"));
  EXPECT_FALSE(IsSystemTableName("register"));
}

class SystemTablesTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(&gis_); }
  GlobalSystem gis_;
};

TEST_F(SystemTablesTest, AcceptanceQueryRunsWithZeroTraffic) {
  // Prime some traffic so health rows are non-trivial.
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM orders").ok());

  auto result = gis_.Query(
      "SELECT source, state, requests, errors, p95_ms "
      "FROM gis.sources WHERE state <> 'healthy'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Fault-free world: every source is healthy, so the filter removes
  // all rows — and the scan itself moved zero bytes over the network.
  EXPECT_EQ(result->batch.num_rows(), 0u);
  EXPECT_EQ(result->metrics.messages, 0);
  EXPECT_EQ(result->metrics.bytes_sent, 0);
  EXPECT_EQ(result->metrics.bytes_received, 0);
}

TEST_F(SystemTablesTest, SourcesReflectImportTraffic) {
  auto result = gis_.Query(
      "SELECT source, state, requests, errors FROM gis.sources "
      "ORDER BY source");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 2u);
  const auto& rows = result->batch.rows();
  EXPECT_EQ(rows[0][0].AsString(), "branch");
  EXPECT_EQ(rows[1][0].AsString(), "hq");
  for (const auto& row : rows) {
    EXPECT_EQ(row[1].AsString(), "healthy");
    EXPECT_GT(row[2].AsInt(), 0);  // schema/stats import already called it
    EXPECT_EQ(row[3].AsInt(), 0);
  }
}

TEST_F(SystemTablesTest, ExplainShowsVirtualScan) {
  auto text = gis_.Explain("SELECT source FROM gis.sources");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("VirtualTableScan"), std::string::npos) << *text;
  EXPECT_NE(text->find("gis.sources"), std::string::npos) << *text;
  EXPECT_EQ(text->find("RemoteFragment"), std::string::npos) << *text;
}

TEST_F(SystemTablesTest, AliasesAndQualifiedColumns) {
  auto result = gis_.Query(
      "SELECT s.source FROM gis.sources AS s WHERE s.requests > 0 "
      "ORDER BY s.source");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 2u);
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "branch");
}

TEST_F(SystemTablesTest, AggregatesOverMetrics) {
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM orders").ok());
  auto result = gis_.Query(
      "SELECT registry, COUNT(*) FROM gis.metrics "
      "GROUP BY registry ORDER BY registry");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 2u);
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "mediator");
  EXPECT_EQ(result->batch.rows()[1][0].AsString(), "network");
  EXPECT_GT(result->batch.rows()[1][1].AsInt(), 0);
}

TEST_F(SystemTablesTest, GaugesAreQuarantinedOutOfMetrics) {
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM orders").ok());
  // The last-value gauge renders via gis.gauges...
  auto gauges = gis_.Query(
      "SELECT registry, name, value FROM gis.gauges "
      "WHERE name = 'net.last_elapsed_ms'");
  ASSERT_TRUE(gauges.ok()) << gauges.status().ToString();
  EXPECT_EQ(gauges->batch.num_rows(), 1u);
  // ...and never via gis.metrics, whose counters are monotone and
  // schedule-independent by construction.
  auto metrics = gis_.Query(
      "SELECT name FROM gis.metrics WHERE kind <> 'counter'");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->batch.num_rows(), 0u);
}

TEST_F(SystemTablesTest, HistogramsDigestNetworkLatency) {
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM orders").ok());
  auto result = gis_.Query(
      "SELECT name, count, p95 FROM gis.histograms "
      "WHERE registry = 'network' AND name = 'net.rpc_ms'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_GT(result->batch.rows()[0][1].AsInt(), 0);
  EXPECT_GT(result->batch.rows()[0][2].AsDouble(), 0.0);
}

TEST_F(SystemTablesTest, QueriesTableRecordsHistory) {
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM orders").ok());
  ASSERT_TRUE(gis_.Query("SELECT cid FROM clients ORDER BY cid").ok());
  auto result = gis_.Query(
      "SELECT id, sql, messages, cache_hit, rows FROM gis.queries "
      "ORDER BY id");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The running query is appended only after it finishes, so exactly
  // the two prior statements are visible.
  ASSERT_EQ(result->batch.num_rows(), 2u);
  const auto& rows = result->batch.rows();
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[0][1].AsString(), "SELECT COUNT(*) FROM orders");
  EXPECT_GT(rows[0][2].AsInt(), 0);
  EXPECT_FALSE(rows[0][3].AsBool());
  EXPECT_EQ(rows[1][4].AsInt(), 8);
}

TEST_F(SystemTablesTest, UnknownSystemTableIsBindError) {
  auto result = gis_.Query("SELECT * FROM gis.nonsense");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("gis.sources"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(SystemTablesTest, JoinSystemTableWithRemoteTable) {
  // Mixed plans work: the virtual side snapshots locally while the
  // remote side ships a fragment.
  auto result = gis_.Query(
      "SELECT s.state, COUNT(*) FROM gis.sources s JOIN clients "
      "ON s.requests > 0 AND clients.cid >= 0 GROUP BY s.state");
  if (!result.ok()) {
    // Non-equi joins may be unsupported; the essential property is that
    // it fails cleanly rather than crashing or shipping gis.* remotely.
    SUCCEED() << result.status().ToString();
    return;
  }
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_EQ(result->batch.rows()[0][0].AsString(), "healthy");
}

TEST_F(SystemTablesTest, VirtualScansBypassResultCache) {
  gis_.EnableResultCache();
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM orders").ok());

  auto first = gis_.Query("SELECT MAX(id) FROM gis.queries");
  ASSERT_TRUE(first.ok());
  auto second = gis_.Query("SELECT MAX(id) FROM gis.queries");
  ASSERT_TRUE(second.ok());
  // Never served from cache — each scan sees a fresh snapshot, so the
  // second run observes the first one's log entry.
  EXPECT_FALSE(first->metrics.cache_hit);
  EXPECT_FALSE(second->metrics.cache_hit);
  EXPECT_EQ(second->batch.rows()[0][0].AsInt(),
            first->batch.rows()[0][0].AsInt() + 1);

  // Ordinary queries still cache.
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM orders").ok());
  auto cached = gis_.Query("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->metrics.cache_hit);
}

TEST(SystemTablesDeterminismTest, SerialAndPooledResultsAreIdentical) {
  auto run = [](bool parallel) {
    PlannerOptions options;
    options.parallel_execution = parallel;
    auto gis = std::make_unique<GlobalSystem>(options);
    Build(gis.get());
    // Same workload either way; gis.* must render byte-identically.
    EXPECT_TRUE(gis->Query("SELECT COUNT(*) FROM orders").ok());
    EXPECT_TRUE(
        gis->Query("SELECT name FROM clients WHERE cid < 4 ORDER BY cid")
            .ok());
    EXPECT_TRUE(gis->Query("SELECT total FROM orders JOIN clients "
                           "ON orders.cid = clients.cid WHERE oid < 5 "
                           "ORDER BY oid")
                    .ok());
    std::string out;
    for (const char* q :
         {"SELECT * FROM gis.sources ORDER BY source",
          "SELECT id, sql, bytes_sent, bytes_received, messages, retries, "
          "cache_hit, rows FROM gis.queries ORDER BY id",
          // gis.metrics carries counters only (the point-in-time
          // gauges are quarantined in gis.gauges), so the whole
          // snapshot must match byte for byte — no exclusions.
          "SELECT registry, name, kind, value FROM gis.metrics "
          "ORDER BY registry, name",
          "SELECT * FROM gis.admission"}) {
      auto r = gis->Query(q);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) out += r->batch.ToString(1 << 20);
    }
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

/// Validates one `{name="value",...}` label block: names are bare
/// identifiers, values are double-quoted with backslash, quote, and
/// newline escaped (the EscapeLabelValue contract).
void ValidateLabelBlock(const std::string& labels, const std::string& line) {
  ASSERT_GE(labels.size(), 2u) << line;
  ASSERT_EQ(labels.front(), '{') << line;
  ASSERT_EQ(labels.back(), '}') << line;
  size_t i = 1;
  while (i < labels.size() - 1) {
    // Label name up to '='.
    const size_t eq = labels.find('=', i);
    ASSERT_NE(eq, std::string::npos) << line;
    for (size_t j = i; j < eq; ++j) {
      const char c = labels[j];
      ASSERT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_')
          << "bad label name char in: " << line;
    }
    ASSERT_EQ(labels[eq + 1], '"') << line;
    // Quoted value: scan to the closing unescaped quote; raw newlines
    // and raw inner quotes are format violations.
    size_t j = eq + 2;
    bool closed = false;
    while (j < labels.size() - 1) {
      if (labels[j] == '\\') {
        ASSERT_LT(j + 1, labels.size() - 1) << line;
        const char next = labels[j + 1];
        ASSERT_TRUE(next == '\\' || next == '"' || next == 'n') << line;
        j += 2;
        continue;
      }
      ASSERT_NE(labels[j], '\n') << "raw newline in label value: " << line;
      if (labels[j] == '"') {
        closed = true;
        break;
      }
      ++j;
    }
    ASSERT_TRUE(closed) << "unterminated label value: " << line;
    i = j + 1;
    if (i < labels.size() - 1) {
      ASSERT_EQ(labels[i], ',') << line;
      ++i;
    }
  }
}

/// Minimal line-by-line validator of the Prometheus text format: every
/// sample's base name must be declared by a preceding # TYPE line,
/// label blocks must be well-formed (escaped values), histogram bucket
/// counts must be cumulative (nondecreasing), and the +Inf bucket must
/// equal _count.
void ValidatePrometheus(const std::string& text) {
  std::map<std::string, std::string> declared;  // base name -> type
  std::map<std::string, int64_t> last_bucket;
  std::map<std::string, int64_t> inf_bucket;
  std::map<std::string, int64_t> hist_count;
  std::istringstream in(text);
  std::string line;
  int samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream hdr(line.substr(7));
      std::string name, type;
      hdr >> name >> type;
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      ASSERT_EQ(declared.count(name), 0u) << "re-declared: " << name;
      declared[name] = type;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unexpected comment: " << line;
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string key = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    ASSERT_FALSE(value.empty()) << line;
    // Strip any {label="..."} suffix down to the sample name, but
    // validate the block itself first.
    const size_t brace = key.find('{');
    if (brace != std::string::npos) {
      ValidateLabelBlock(key.substr(brace), line);
    }
    std::string sample = key.substr(0, brace);
    for (char c : sample) {
      ASSERT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_')
          << "bad metric name char in: " << line;
    }
    // Histogram series attach to their base name.
    std::string base = sample;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (base.size() > s.size() &&
          base.compare(base.size() - s.size(), s.size(), s) == 0 &&
          declared.count(base.substr(0, base.size() - s.size()))) {
        base = base.substr(0, base.size() - s.size());
        break;
      }
    }
    ASSERT_TRUE(declared.count(base)) << "undeclared sample: " << line;
    ++samples;
    if (declared[base] == "histogram" && sample == base + "_bucket") {
      const int64_t v = std::stoll(value);
      auto it = last_bucket.find(base);
      if (it != last_bucket.end()) {
        ASSERT_GE(v, it->second) << "non-cumulative buckets: " << line;
      }
      last_bucket[base] = v;
      if (key.find("le=\"+Inf\"") != std::string::npos) {
        inf_bucket[base] = v;
      }
    }
    if (declared[base] == "histogram" && sample == base + "_count") {
      hist_count[base] = std::stoll(value);
    }
  }
  EXPECT_GT(samples, 0);
  for (const auto& [base, count] : hist_count) {
    ASSERT_TRUE(inf_bucket.count(base)) << base << " missing +Inf bucket";
    EXPECT_EQ(inf_bucket[base], count) << base;
  }
}

TEST_F(SystemTablesTest, PrometheusExportValidatesAndCoversRegistries) {
  ASSERT_TRUE(gis_.Query("SELECT COUNT(*) FROM orders").ok());
  const std::string text = gis_.ExportPrometheus();
  ValidatePrometheus(text);
  EXPECT_NE(text.find("# TYPE gisql_query_count counter"),
            std::string::npos)
      << text.substr(0, 500);
  EXPECT_NE(text.find("# TYPE gisql_net_net_rpc_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("gisql_source_state{source=\"hq\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("gisql_source_requests_total{source=\"branch\"}"),
            std::string::npos);
}

TEST(PrometheusRegistryTest, EmptyRegistryExportsNothing) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.ExportPrometheus(), "");
}

TEST(PrometheusRegistryTest, SanitizesNamesAndEmitsAllKinds) {
  MetricsRegistry reg;
  reg.Add("net.bytes_sent", 10);
  reg.Set("pool.size", 4.0);
  reg.Observe("rpc.ms", 1.5);
  reg.Observe("rpc.ms", 3.0);
  const std::string text = reg.ExportPrometheus("t");
  EXPECT_NE(text.find("# TYPE t_net_bytes_sent counter"),
            std::string::npos);
  EXPECT_NE(text.find("t_net_bytes_sent 10"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_pool_size gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_rpc_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("t_rpc_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_rpc_ms_count 2"), std::string::npos);
  ValidatePrometheus(text);
}

// ---------------------------------------------------------------------------
// Query log ring
// ---------------------------------------------------------------------------

TEST(QueryLogTest, RingEvictsOldestAndKeepsMonotonicIds) {
  QueryLog log(3);
  for (int i = 1; i <= 5; ++i) {
    QueryLogEntry e;
    e.sql = "q" + std::to_string(i);
    log.Append(std::move(e));
  }
  EXPECT_EQ(log.total_appended(), 5);
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].id, 3);
  EXPECT_EQ(entries[0].sql, "q3");
  EXPECT_EQ(entries[2].id, 5);
  EXPECT_EQ(entries[2].sql, "q5");
}

TEST(QueryLogTest, SystemKeepsMostRecentEntries) {
  GlobalSystem gis;
  Build(&gis);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        gis.Query("SELECT COUNT(*) FROM orders WHERE oid > " +
                  std::to_string(i))
            .ok());
  }
  EXPECT_EQ(gis.query_log().total_appended(), 4);
  EXPECT_EQ(gis.query_log().Snapshot().size(), 4u);
}

}  // namespace
}  // namespace gisql
