/// Self-driving advisor regressions (ctest -L advisor): query
/// fingerprints, the gis.queries fingerprint column, hot-template
/// auto-materialization with cold-view eviction, byte-identical
/// decision logs across serial/pooled/replayed runs, breaker-aware
/// target selection, result-cache coherence across the view lifecycle,
/// and the governor's tuning guard rails.

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/global_system.h"
#include "sql/fingerprint.h"

namespace gisql {
namespace {

/// A two-tier federation: `products` lives on "far" behind a slow WAN
/// link; "near1"/"near2" are cheap empty sites the advisor can
/// replicate onto; "home" holds a small table for background traffic.
void BuildSplitFederation(GlobalSystem* gis) {
  for (const char* name : {"far", "near1", "near2", "home"}) {
    ASSERT_TRUE(gis->CreateSource(name, SourceDialect::kRelational).ok());
  }
  LinkSpec slow;
  slow.latency_ms = 25.0;
  slow.bandwidth_mbps = 10.0;
  gis->network().SetLink(GlobalSystem::kMediatorHost, "far", slow);

  ASSERT_TRUE(
      gis->ExecuteAt("far",
                     "CREATE TABLE products (pid bigint, pname string, "
                     "price double)")
          .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(gis->ExecuteAt("far", "INSERT INTO products VALUES (" +
                                          std::to_string(i) + ", 'p" +
                                          std::to_string(i) + "', " +
                                          std::to_string(i * 2.5) + ")")
                    .ok());
  }
  ASSERT_TRUE(
      gis->ExecuteAt("home", "CREATE TABLE local_t (id bigint, v double)")
          .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(gis->ExecuteAt("home", "INSERT INTO local_t VALUES (" +
                                           std::to_string(i) + ", " +
                                           std::to_string(i * 0.5) + ")")
                    .ok());
  }
  ASSERT_TRUE(gis->ImportSource("far").ok());
  ASSERT_TRUE(gis->ImportSource("home").ok());
}

PlannerOptions AdvisorOptions() {
  PlannerOptions options;
  options.parallel_execution = false;
  options.advisor_enabled = true;
  options.advisor_interval_ms = 1.0;  // tick after every statement
  options.advisor_window_ms = 100000.0;
  options.advisor_hot_threshold = 3;
  options.advisor_min_gain_ms = 1.0;
  options.advisor_max_views = 1;
  options.advisor_cold_ticks = 3;
  return options;
}

std::string ProductQuery(int pid) {
  return "SELECT pname, price FROM products WHERE pid = " +
         std::to_string(pid);
}

TEST(Fingerprint, CollapsesLiteralsOnly) {
  EXPECT_EQ(sql::NormalizeStatement("SELECT x FROM t WHERE id = 7"),
            sql::NormalizeStatement("select x from t  where id=42"));
  EXPECT_EQ(sql::FingerprintHex("SELECT x FROM t WHERE id = 7"),
            sql::FingerprintHex("SELECT x FROM t WHERE id = 42"));
  EXPECT_NE(sql::FingerprintHex("SELECT x FROM t WHERE id = 7"),
            sql::FingerprintHex("SELECT x FROM u WHERE id = 7"));
  EXPECT_NE(sql::FingerprintHex("SELECT x FROM t WHERE id = 'a'"),
            sql::FingerprintHex("SELECT y FROM t WHERE id = 'a'"));
  EXPECT_EQ(sql::FingerprintHex("SELECT 1").size(), 16u);
}

TEST(Fingerprint, StampedIntoQueryLog) {
  GlobalSystem gis;
  BuildSplitFederation(&gis);
  ASSERT_TRUE(gis.Query(ProductQuery(1)).ok());
  ASSERT_TRUE(gis.Query(ProductQuery(17)).ok());

  auto r = gis.Query("SELECT sql, fingerprint FROM gis.queries");
  ASSERT_TRUE(r.ok());
  const std::string expected = sql::FingerprintHex(ProductQuery(1));
  int matches = 0;
  for (const auto& row : r->batch.rows()) {
    if (row[0].AsString().find("FROM products") == std::string::npos) continue;
    EXPECT_EQ(row[1].AsString(), expected);
    ++matches;
  }
  EXPECT_EQ(matches, 2);  // both literals collapse to one template
}

TEST(Advisor, MaterializesHotTemplateAndServesSameRows) {
  GlobalSystem gis(AdvisorOptions());
  BuildSplitFederation(&gis);

  auto before = gis.Query(ProductQuery(3));
  ASSERT_TRUE(before.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(gis.Query(ProductQuery(i)).ok());
  }

  // The hot template's base table was promoted to a replicated view
  // over the aliased base and a fresh replica on the cheapest site
  // (near1: ties in observed cost break by sorted source name).
  EXPECT_TRUE(gis.catalog().HasView("products"));
  EXPECT_TRUE(gis.catalog().HasTable("products__base"));
  EXPECT_TRUE(gis.catalog().HasTable("products__near1"));
  EXPECT_GE(gis.advisor().counters().materializations, 1);

  // Promotion is invisible to results.
  auto after = gis.Query(ProductQuery(3));
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->batch.num_rows(), before->batch.num_rows());
  for (size_t i = 0; i < before->batch.num_rows(); ++i) {
    for (size_t c = 0; c < before->batch.rows()[i].size(); ++c) {
      EXPECT_EQ(
          after->batch.rows()[i][c].Compare(before->batch.rows()[i][c]), 0);
    }
  }

  // The decision is queryable through the gis.advisor virtual table.
  auto log = gis.Query(
      "SELECT kind, target, outcome FROM gis.advisor WHERE kind = "
      "'materialize'");
  ASSERT_TRUE(log.ok());
  ASSERT_GE(log->batch.num_rows(), 1u);
  EXPECT_EQ(log->batch.rows()[0][1].AsString(), "products");
  EXPECT_EQ(log->batch.rows()[0][2].AsString(), "ok");
}

TEST(Advisor, EvictsColdViewAndRestoresBaseTable) {
  PlannerOptions options = AdvisorOptions();
  // Finite observation window so the hot template can age out of it.
  options.advisor_window_ms = 400.0;
  GlobalSystem gis(options);
  BuildSplitFederation(&gis);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(gis.Query(ProductQuery(i)).ok());
  }
  ASSERT_TRUE(gis.catalog().HasView("products"));

  // Background traffic on another table keeps the clock ticking while
  // the products view ages out of the window and goes cold.
  for (int i = 0; i < 120 && gis.catalog().HasView("products"); ++i) {
    ASSERT_TRUE(
        gis.Query("SELECT v FROM local_t WHERE id = " + std::to_string(i % 10))
            .ok());
  }

  EXPECT_FALSE(gis.catalog().HasView("products"));
  EXPECT_TRUE(gis.catalog().HasTable("products"));
  EXPECT_FALSE(gis.catalog().HasTable("products__base"));
  EXPECT_GE(gis.advisor().counters().evictions, 1);

  auto r = gis.Query(ProductQuery(3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->batch.num_rows(), 1u);
}

/// One deterministic mixed workload; returns the advisor's canonical
/// decision log.
std::string RunAdvisorWorkload(PlannerOptions options) {
  GlobalSystem gis(options);
  BuildSplitFederation(&gis);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(gis.Query(ProductQuery((round * 3 + i) % 20)).ok());
    }
    EXPECT_TRUE(
        gis.Query("SELECT v FROM local_t WHERE id = " + std::to_string(round))
            .ok());
  }
  return gis.advisor().LogText();
}

TEST(Advisor, DecisionLogBytesIdenticalSerialPooledReplayed) {
  PlannerOptions serial = AdvisorOptions();
  PlannerOptions pooled = AdvisorOptions();
  pooled.parallel_execution = true;
  pooled.worker_threads = 4;

  const std::string serial_log = RunAdvisorWorkload(serial);
  const std::string pooled_log = RunAdvisorWorkload(pooled);
  const std::string replay_log = RunAdvisorWorkload(serial);

  EXPECT_FALSE(serial_log.empty());
  EXPECT_EQ(serial_log, pooled_log);
  EXPECT_EQ(serial_log, replay_log);
}

TEST(Advisor, NeverTargetsABreakerOpenSource) {
  PlannerOptions options = AdvisorOptions();
  options.circuit_breaker = true;
  GlobalSystem gis(options);
  BuildSplitFederation(&gis);

  // Open near1's breaker (the tie-break favorite) before the template
  // gets hot: the advisor must place the replica elsewhere.
  for (int i = 0; i < options.breaker_open_failures; ++i) {
    gis.governor().breakers().OnSourceOutcome("near1", false);
  }
  ASSERT_EQ(gis.governor().breakers().StateOf("near1"), BreakerState::kOpen);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(gis.Query(ProductQuery(i)).ok());
  }

  EXPECT_TRUE(gis.catalog().HasView("products"));
  EXPECT_FALSE(gis.catalog().HasTable("products__near1"));
  EXPECT_TRUE(gis.catalog().HasTable("products__near2"));
  for (const auto& d : gis.advisor().Decisions()) {
    if (d.kind == "materialize") {
      EXPECT_EQ(d.action.find("-> near1"), std::string::npos) << d.action;
    }
  }
}

TEST(Advisor, CacheStaysCoherentAcrossViewLifecycle) {
  GlobalSystem gis;  // advisor off: drive the lifecycle directly
  BuildSplitFederation(&gis);
  gis.EnableResultCache();

  const std::string q = ProductQuery(1);
  ASSERT_TRUE(gis.Query(q).ok());
  auto hit = gis.Query(q);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->metrics.cache_hit);

  // Promote then demote: the plan shape ends up identical to the
  // cached entry's, so without table-level invalidation the stale
  // pre-promotion entry would be served.
  auto replica = gis.MaterializeReplica("products", "near1");
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  EXPECT_EQ(*replica, "products__near1");
  ASSERT_TRUE(gis.DemoteReplicatedView("products").ok());

  auto fresh = gis.Query(q);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->metrics.cache_hit);
  ASSERT_EQ(fresh->batch.num_rows(), 1u);
  EXPECT_EQ(fresh->batch.rows()[0][0].AsString(), "p1");

  // And the cache works again after the lifecycle completes.
  auto rehit = gis.Query(q);
  ASSERT_TRUE(rehit.ok());
  EXPECT_TRUE(rehit->metrics.cache_hit);
}

TEST(Advisor, GovernorClampsTuningToGuardRails) {
  GlobalSystem gis;
  ResourceGovernor& governor = gis.governor();

  // Watermarks stay within [0.1, defaults]; background never exceeds
  // normal.
  const auto [bg_low, norm_low] = governor.SetAdmissionWatermarks(0.0, 0.0);
  EXPECT_DOUBLE_EQ(bg_low, 0.1);
  EXPECT_DOUBLE_EQ(norm_low, 0.1);
  const auto [bg_high, norm_high] =
      governor.SetAdmissionWatermarks(5.0, 5.0);
  EXPECT_DOUBLE_EQ(bg_high, 0.5);
  EXPECT_DOUBLE_EQ(norm_high, 0.8);

  // The per-query cap stays within [base/2, min(4*base, global)].
  const int64_t base = gis.options().query_mem_bytes;
  EXPECT_EQ(governor.SetQueryMemCap(1), base / 2);
  const int64_t ceiling =
      std::min(4 * base, governor.memory().global_cap());
  EXPECT_EQ(governor.SetQueryMemCap(INT64_MAX), ceiling);
}

TEST(Advisor, KillSwitchAndDefaultOff) {
  {
    GlobalSystem gis;  // default options: advisor present but disabled
    EXPECT_FALSE(gis.advisor().enabled());
  }
  setenv("GISQL_ADVISOR_KILL", "1", 1);
  {
    GlobalSystem gis(AdvisorOptions());
    EXPECT_FALSE(gis.advisor().enabled());
  }
  unsetenv("GISQL_ADVISOR_KILL");
  {
    GlobalSystem gis(AdvisorOptions());
    EXPECT_TRUE(gis.advisor().enabled());
  }
}

}  // namespace
}  // namespace gisql
