/// Unit tests for the SQL lexer and parser.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace gisql {
namespace sql {
namespace {

TEST(LexerTest, KeywordsAndIdentifiers) {
  Lexer lexer("SELECT foo FROM Bar");
  auto tokens = *lexer.Tokenize();
  ASSERT_EQ(tokens.size(), 5u);  // incl. kEnd
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_EQ(tokens[3].text, "Bar");  // identifier case preserved
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = *Lexer("select Where aNd").Tokenize();
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("WHERE"));
  EXPECT_TRUE(tokens[2].IsKeyword("AND"));
}

TEST(LexerTest, NumericLiterals) {
  auto tokens = *Lexer("42 3.14 1e3 7").Tokenize();
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.14);
  EXPECT_EQ(tokens[2].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_EQ(tokens[3].int_value, 7);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = *Lexer("'abc' 'it''s'").Tokenize();
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_TRUE(Lexer("'oops").Tokenize().status().IsParseError());
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  auto tokens = *Lexer("< <= <> >= > != =").Tokenize();
  EXPECT_EQ(tokens[0].type, TokenType::kLt);
  EXPECT_EQ(tokens[1].type, TokenType::kLe);
  EXPECT_EQ(tokens[2].type, TokenType::kNe);
  EXPECT_EQ(tokens[3].type, TokenType::kGe);
  EXPECT_EQ(tokens[4].type, TokenType::kGt);
  EXPECT_EQ(tokens[5].type, TokenType::kNe);
  EXPECT_EQ(tokens[6].type, TokenType::kEq);
}

TEST(LexerTest, LineCommentsSkipped) {
  auto tokens = *Lexer("SELECT -- hidden\n1").Tokenize();
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].type, TokenType::kIntLiteral);
}

TEST(LexerTest, QuotedIdentifier) {
  auto tokens = *Lexer("\"Weird Name\"").Tokenize();
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Weird Name");
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  EXPECT_TRUE(Lexer("SELECT @").Tokenize().status().IsParseError());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = *ParseSelect("SELECT a, b FROM t WHERE a > 5");
  EXPECT_EQ(stmt->items.size(), 2u);
  ASSERT_TRUE(stmt->from != nullptr);
  EXPECT_EQ(stmt->from->table_name, "t");
  ASSERT_TRUE(stmt->where != nullptr);
  EXPECT_EQ(stmt->where->ToString(), "(a > 5)");
}

TEST(ParserTest, SelectStarAndAliases) {
  auto stmt = *ParseSelect("SELECT *, a AS x, b y FROM t");
  EXPECT_EQ(stmt->items[0].expr->kind, ParseExprKind::kStar);
  EXPECT_EQ(stmt->items[1].alias, "x");
  EXPECT_EQ(stmt->items[2].alias, "y");
}

TEST(ParserTest, QualifiedColumnsAndQualifiedStar) {
  auto stmt = *ParseSelect("SELECT t.a, t.* FROM t");
  EXPECT_EQ(stmt->items[0].expr->qualifier, "t");
  EXPECT_EQ(stmt->items[0].expr->name, "a");
  EXPECT_EQ(stmt->items[1].expr->kind, ParseExprKind::kStar);
  EXPECT_EQ(stmt->items[1].expr->qualifier, "t");
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = *ParseScalarExpr("1 + 2 * 3");
  EXPECT_EQ(e->ToString(), "(1 + (2 * 3))");
  e = *ParseScalarExpr("(1 + 2) * 3");
  EXPECT_EQ(e->ToString(), "((1 + 2) * 3)");
  e = *ParseScalarExpr("a = 1 OR b = 2 AND c = 3");
  EXPECT_EQ(e->ToString(), "((a = 1) OR ((b = 2) AND (c = 3)))");
  e = *ParseScalarExpr("NOT a = 1");
  EXPECT_EQ(e->ToString(), "(NOT (a = 1))");
}

TEST(ParserTest, UnaryMinusAndModulo) {
  auto e = *ParseScalarExpr("-a % 3");
  EXPECT_EQ(e->ToString(), "((-a) % 3)");
}

TEST(ParserTest, BetweenInLikeIsNull) {
  EXPECT_EQ((*ParseScalarExpr("x BETWEEN 1 AND 10"))->ToString(),
            "(x BETWEEN 1 AND 10)");
  EXPECT_EQ((*ParseScalarExpr("x NOT IN (1, 2)"))->ToString(),
            "(x NOT IN (1, 2))");
  EXPECT_EQ((*ParseScalarExpr("name LIKE 'a%'"))->ToString(),
            "(name LIKE 'a%')");
  EXPECT_EQ((*ParseScalarExpr("x IS NOT NULL"))->ToString(),
            "(x IS NOT NULL)");
}

TEST(ParserTest, CaseExpression) {
  auto e = *ParseScalarExpr(
      "CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END");
  EXPECT_EQ(e->kind, ParseExprKind::kCase);
  EXPECT_TRUE(e->has_else);
  EXPECT_EQ(e->children.size(), 5u);
}

TEST(ParserTest, CastExpression) {
  auto e = *ParseScalarExpr("CAST(a AS double)");
  EXPECT_EQ(e->kind, ParseExprKind::kCast);
  EXPECT_EQ(e->name, "double");
}

TEST(ParserTest, AggregatesAndDistinct) {
  auto stmt = *ParseSelect(
      "SELECT COUNT(*), SUM(x), COUNT(DISTINCT y) FROM t GROUP BY z "
      "HAVING COUNT(*) > 1");
  EXPECT_EQ(stmt->items[0].expr->name, "COUNT");
  EXPECT_EQ(stmt->items[0].expr->children[0]->kind, ParseExprKind::kStar);
  EXPECT_TRUE(stmt->items[2].expr->distinct);
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_TRUE(stmt->having != nullptr);
}

TEST(ParserTest, Joins) {
  auto stmt = *ParseSelect(
      "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id");
  ASSERT_EQ(stmt->from->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(stmt->from->join_type, TableRef::JoinType::kLeft);
  ASSERT_EQ(stmt->from->left->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(stmt->from->left->join_type, TableRef::JoinType::kInner);
}

TEST(ParserTest, CommaJoinIsCross) {
  auto stmt = *ParseSelect("SELECT * FROM a, b WHERE a.id = b.id");
  ASSERT_EQ(stmt->from->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(stmt->from->join_type, TableRef::JoinType::kCross);
}

TEST(ParserTest, DerivedTable) {
  auto stmt = *ParseSelect(
      "SELECT x FROM (SELECT a AS x FROM t WHERE a > 1) AS sub");
  ASSERT_EQ(stmt->from->kind, TableRef::Kind::kDerived);
  EXPECT_EQ(stmt->from->alias, "sub");
  EXPECT_EQ(stmt->from->derived->items.size(), 1u);
}

TEST(ParserTest, OrderLimitOffset) {
  auto stmt = *ParseSelect(
      "SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5");
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_EQ(stmt->limit, 10);
  EXPECT_EQ(stmt->offset, 5);
}

TEST(ParserTest, DistinctSelect) {
  EXPECT_TRUE((*ParseSelect("SELECT DISTINCT a FROM t"))->distinct);
}

TEST(ParserTest, CreateTable) {
  auto stmt = *ParseStatement("CREATE TABLE t (id bigint, name varchar)");
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateTable);
  ASSERT_EQ(stmt.create_table->columns.size(), 2u);
  EXPECT_EQ(stmt.create_table->columns[0].first, "id");
  EXPECT_EQ(stmt.create_table->columns[1].second, "varchar");
}

TEST(ParserTest, InsertValues) {
  auto stmt = *ParseStatement(
      "INSERT INTO t VALUES (1, 'a'), (2, NULL)");
  ASSERT_EQ(stmt.kind, Statement::Kind::kInsert);
  ASSERT_EQ(stmt.insert->rows.size(), 2u);
  EXPECT_EQ(stmt.insert->rows[0].size(), 2u);
}

TEST(ParserTest, Explain) {
  auto stmt = *ParseStatement("EXPLAIN SELECT a FROM t");
  EXPECT_EQ(stmt.kind, Statement::Kind::kExplain);
  ASSERT_TRUE(stmt.select != nullptr);
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseStatement("SELECT 1;").ok());
}

TEST(ParserTest, ErrorsAreParseErrors) {
  EXPECT_TRUE(ParseStatement("SELEC 1").status().IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT FROM t").status().IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT a FROM").status().IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT a FROM t WHERE").status().IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT a FROM t GROUP a").status().IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT a b c FROM t").status().IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT (1 FROM t").status().IsParseError());
}

TEST(ParserTest, JoinRequiresOn) {
  EXPECT_TRUE(
      ParseStatement("SELECT * FROM a JOIN b").status().IsParseError());
}

TEST(ParserTest, SelectWithoutFrom) {
  auto stmt = *ParseSelect("SELECT 1 + 1 AS two");
  EXPECT_TRUE(stmt->from == nullptr);
  EXPECT_EQ(stmt->items[0].alias, "two");
}

TEST(ParserTest, RoundTripToString) {
  const char* queries[] = {
      "SELECT a FROM t WHERE (a > 5)",
      "SELECT COUNT(*) FROM t GROUP BY region",
  };
  for (const char* q : queries) {
    auto stmt = *ParseSelect(q);
    // Re-parse the rendering; must succeed and render identically.
    auto stmt2 = *ParseSelect(stmt->ToString());
    EXPECT_EQ(stmt->ToString(), stmt2->ToString());
  }
}

}  // namespace
}  // namespace sql
}  // namespace gisql
