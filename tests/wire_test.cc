/// Unit tests for the wire protocol: value/schema/batch/expr/fragment
/// serde round-trips and malformed-input rejection.

#include <gtest/gtest.h>

#include "expr/binder.h"
#include "sql/parser.h"
#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {
namespace {

TEST(ValueSerdeTest, RoundTripAllTypes) {
  const Value cases[] = {
      Value::Null(),
      Value::Null(TypeId::kInt64),
      Value::Bool(true),
      Value::Bool(false),
      Value::Int(0),
      Value::Int(-123456789),
      Value::Int(INT64_MAX),
      Value::Double(3.14159),
      Value::Double(-0.0),
      Value::String(""),
      Value::String("hello world"),
      Value::Date(19500),
  };
  for (const Value& v : cases) {
    ByteWriter w;
    wire::WriteValue(&w, v);
    ByteReader r(w.data());
    auto back = wire::ReadValue(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->type(), v.type());
    EXPECT_EQ(back->is_null(), v.is_null());
    if (!v.is_null()) EXPECT_EQ(back->Compare(v), 0);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(ValueSerdeTest, BadTagRejected) {
  std::vector<uint8_t> bad = {0x07};  // type 7 does not exist
  ByteReader r(bad);
  EXPECT_TRUE(wire::ReadValue(&r).status().IsSerializationError());
}

TEST(SchemaSerdeTest, RoundTrip) {
  Schema schema({{"id", TypeId::kInt64, false, "orders"},
                 {"total", TypeId::kDouble, true, "orders"},
                 {"note", TypeId::kString, true, ""}});
  ByteWriter w;
  wire::WriteSchema(&w, schema);
  ByteReader r(w.data());
  auto back = wire::ReadSchema(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Equals(schema));
  EXPECT_EQ(back->field(0).qualifier, "orders");
  EXPECT_FALSE(back->field(0).nullable);
}

TEST(BatchSerdeTest, RoundTripWithNulls) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"a", TypeId::kInt64}, {"b", TypeId::kString}});
  RowBatch batch(schema);
  batch.Append({Value::Int(1), Value::String("x")});
  batch.Append({Value::Null(TypeId::kInt64), Value::Null(TypeId::kString)});
  batch.Append({Value::Int(3), Value::String("")});

  auto bytes = wire::SerializeBatch(batch);
  ByteReader r(bytes);
  auto back = wire::ReadBatch(&r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->rows()[0][0].AsInt(), 1);
  EXPECT_TRUE(back->rows()[1][0].is_null());
  EXPECT_EQ(back->rows()[1][0].type(), TypeId::kInt64);
  EXPECT_EQ(back->rows()[2][1].AsString(), "");
}

TEST(BatchSerdeTest, EmptyBatch) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"a", TypeId::kInt64}});
  RowBatch batch(schema);
  auto bytes = wire::SerializeBatch(batch);
  ByteReader r(bytes);
  auto back = wire::ReadBatch(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_EQ(back->schema()->num_fields(), 1u);
}

ExprPtr BindOverTestSchema(const std::string& text) {
  static Schema schema({{"id", TypeId::kInt64, false, "t"},
                        {"price", TypeId::kDouble, true, "t"},
                        {"name", TypeId::kString, true, "t"}});
  auto ast = sql::ParseScalarExpr(text);
  EXPECT_TRUE(ast.ok());
  Binder binder(schema);
  auto e = binder.BindScalar(**ast);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return *e;
}

TEST(ExprSerdeTest, RoundTripVariety) {
  const char* exprs[] = {
      "id",
      "id + 1",
      "price * 2.5 - id",
      "id > 5 AND name LIKE 'a%'",
      "id IN (1, 2, 3)",
      "id IS NOT NULL",
      "NOT (id = 3)",
      "CASE WHEN id > 0 THEN 'p' ELSE 'n' END",
      "CAST(price AS bigint)",
      "UPPER(name)",
      "COALESCE(name, 'none')",
      "id BETWEEN 1 AND 9",
  };
  for (const char* text : exprs) {
    ExprPtr e = BindOverTestSchema(text);
    ByteWriter w;
    wire::WriteExpr(&w, *e);
    ByteReader r(w.data());
    auto back = wire::ReadExpr(&r);
    ASSERT_TRUE(back.ok()) << text << ": " << back.status().ToString();
    EXPECT_TRUE((*back)->Equals(*e)) << text;
    EXPECT_EQ((*back)->ToString(), e->ToString());
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(ExprSerdeTest, TruncationRejected) {
  ExprPtr e = BindOverTestSchema("id > 5 AND name LIKE 'a%'");
  ByteWriter w;
  wire::WriteExpr(&w, *e);
  for (size_t cut : {1ul, 3ul, w.size() / 2, w.size() - 1}) {
    ByteReader r(w.data().data(), cut);
    EXPECT_FALSE(wire::ReadExpr(&r).ok()) << "cut at " << cut;
  }
}

TEST(AggregateSerdeTest, RoundTrip) {
  BoundAggregate agg;
  agg.kind = AggKind::kSum;
  agg.arg = BindOverTestSchema("price * 2.0");
  agg.distinct = false;
  agg.result_type = TypeId::kDouble;
  agg.display = "SUM(price*2)";
  ByteWriter w;
  wire::WriteAggregate(&w, agg);
  ByteReader r(w.data());
  auto back = wire::ReadAggregate(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Equals(agg));
  EXPECT_EQ(back->display, agg.display);
  EXPECT_EQ(back->result_type, TypeId::kDouble);
}

TEST(AggregateSerdeTest, CountStarHasNoArg) {
  BoundAggregate agg;
  agg.kind = AggKind::kCountStar;
  agg.display = "COUNT(*)";
  ByteWriter w;
  wire::WriteAggregate(&w, agg);
  ByteReader r(w.data());
  auto back = wire::ReadAggregate(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->arg, nullptr);
}

TEST(FragmentSerdeTest, FullRoundTrip) {
  FragmentPlan frag;
  frag.table = "orders";
  frag.filter = BindOverTestSchema("price > 10.0");
  frag.projections = {BindOverTestSchema("id"),
                      BindOverTestSchema("price * 1.1")};
  frag.projection_names = {"id", "taxed"};
  frag.semijoin_column = 0;
  frag.semijoin_values = {Value::Int(1), Value::Int(5), Value::Int(9)};
  frag.limit = 100;

  auto bytes = wire::SerializeFragment(frag);
  ByteReader r(bytes);
  auto back = wire::ReadFragment(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->table, "orders");
  ASSERT_TRUE(back->filter != nullptr);
  EXPECT_TRUE(back->filter->Equals(*frag.filter));
  ASSERT_EQ(back->projections.size(), 2u);
  EXPECT_EQ(back->projection_names[1], "taxed");
  EXPECT_EQ(back->semijoin_column, 0);
  ASSERT_EQ(back->semijoin_values.size(), 3u);
  EXPECT_EQ(back->semijoin_values[2].AsInt(), 9);
  EXPECT_EQ(back->limit, 100);
  EXPECT_FALSE(back->has_aggregate);
}

TEST(FragmentSerdeTest, AggregateFragment) {
  FragmentPlan frag;
  frag.table = "orders";
  frag.has_aggregate = true;
  frag.group_by = {BindOverTestSchema("name")};
  BoundAggregate agg;
  agg.kind = AggKind::kCountStar;
  agg.display = "COUNT(*)";
  frag.aggregates = {agg};

  auto bytes = wire::SerializeFragment(frag);
  ByteReader r(bytes);
  auto back = wire::ReadFragment(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->has_aggregate);
  ASSERT_EQ(back->group_by.size(), 1u);
  ASSERT_EQ(back->aggregates.size(), 1u);
  EXPECT_EQ(back->aggregates[0].kind, AggKind::kCountStar);
  EXPECT_EQ(back->limit, -1);
}

TEST(FragmentSerdeTest, TopNFragment) {
  FragmentPlan frag;
  frag.table = "orders";
  frag.order_by = {BindOverTestSchema("price"), BindOverTestSchema("id")};
  frag.order_ascending = {false, true};
  frag.limit = 10;
  auto bytes = wire::SerializeFragment(frag);
  ByteReader r(bytes);
  auto back = wire::ReadFragment(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->order_by.size(), 2u);
  EXPECT_TRUE(back->order_by[0]->Equals(*frag.order_by[0]));
  EXPECT_FALSE(back->order_ascending[0]);
  EXPECT_TRUE(back->order_ascending[1]);
  EXPECT_EQ(back->limit, 10);
}

TEST(FragmentSerdeTest, MinimalFragment) {
  FragmentPlan frag;
  frag.table = "t";
  auto bytes = wire::SerializeFragment(frag);
  ByteReader r(bytes);
  auto back = wire::ReadFragment(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->table, "t");
  EXPECT_EQ(back->filter, nullptr);
  EXPECT_TRUE(back->projections.empty());
  EXPECT_EQ(back->semijoin_column, -1);
}

TEST(ProtocolTest, ResponseFramingOk) {
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  auto frame = wire::EncodeResponse(Status::OK(), payload);
  auto back = wire::DecodeResponse(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

TEST(ProtocolTest, ResponseFramingError) {
  auto frame =
      wire::EncodeResponse(Status::CapabilityError("no filters"), {});
  auto back = wire::DecodeResponse(frame);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCapabilityError());
  EXPECT_EQ(back.status().message(), "no filters");
}

TEST(ProtocolTest, LengthMismatchRejected) {
  ByteWriter w;
  w.PutBool(true);
  w.PutVarint(10);  // claims 10 bytes
  w.PutRaw("abc", 3);
  EXPECT_FALSE(wire::DecodeResponse(w.data()).ok());
}

TEST(ProtocolTest, StatsRoundTrip) {
  TableStats stats;
  stats.row_count = 1000;
  ColumnStats c;
  c.min = Value::Int(1);
  c.max = Value::Int(99);
  c.null_count = 5;
  c.distinct_count = 42;
  c.avg_width = 6.5;
  stats.columns = {c};

  ByteWriter w;
  wire::WriteTableStats(&w, stats);
  ByteReader r(w.data());
  auto back = wire::ReadTableStats(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->row_count, 1000);
  ASSERT_EQ(back->columns.size(), 1u);
  EXPECT_EQ(back->columns[0].distinct_count, 42);
  EXPECT_DOUBLE_EQ(back->columns[0].avg_width, 6.5);
  EXPECT_EQ(back->columns[0].max.AsInt(), 99);
}

}  // namespace
}  // namespace gisql
