/// LRU-K replacer unit tests: eviction order against a reference model
/// under randomized seeded traces, pinned (non-evictable) frames never
/// chosen, and same-seed determinism.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/rng.h"
#include "storage/lru_k_replacer.h"

namespace gisql {
namespace {

/// Straight-line transcription of the LRU-K eviction rule: the victim
/// is the evictable frame with the largest backward k-distance — frames
/// with < k recorded accesses (infinite distance) first, oldest
/// recorded access breaking ties; among fully-historied frames, the
/// smallest k-th-most-recent tick. Kept deliberately independent of the
/// production code's single-pass formulation.
class ReferenceLruK {
 public:
  explicit ReferenceLruK(size_t k) : k_(k) {}

  void RecordAccess(size_t frame_id) {
    auto& h = frames_[frame_id].history;
    h.push_back(++tick_);
    if (h.size() > k_) h.pop_front();
  }

  void SetEvictable(size_t frame_id, bool evictable) {
    auto it = frames_.find(frame_id);
    if (it != frames_.end()) it->second.evictable = evictable;
  }

  bool Evict(size_t* frame_id) {
    bool found = false;
    bool best_inf = false;
    uint64_t best_tick = 0;
    size_t victim = 0;
    for (const auto& [id, info] : frames_) {
      if (!info.evictable || info.history.empty()) continue;
      const bool inf = info.history.size() < k_;
      // history.front() is the oldest retained tick: the first access
      // for +inf frames, the k-th most recent for full ones.
      const uint64_t tick = info.history.front();
      const bool better = !found || (inf && !best_inf) ||
                          (inf == best_inf && tick < best_tick);
      if (better) {
        found = true;
        victim = id;
        best_inf = inf;
        best_tick = tick;
      }
    }
    if (!found) return false;
    frames_.erase(victim);
    *frame_id = victim;
    return true;
  }

  void Remove(size_t frame_id) { frames_.erase(frame_id); }

  size_t Size() const {
    size_t n = 0;
    for (const auto& [id, info] : frames_) {
      if (info.evictable) ++n;
    }
    return n;
  }

 private:
  struct FrameInfo {
    std::deque<uint64_t> history;
    bool evictable = false;
  };
  size_t k_;
  uint64_t tick_ = 0;
  std::map<size_t, FrameInfo> frames_;
};

TEST(LruKReplacerTest, DegeneratesToLruWithK1) {
  LruKReplacer replacer(4, 1);
  for (size_t f : {0u, 1u, 2u}) {
    replacer.RecordAccess(f);
    replacer.SetEvictable(f, true);
  }
  replacer.RecordAccess(0);  // 0 becomes most recent: order is 1, 2, 0
  size_t victim = 99;
  ASSERT_TRUE(replacer.Evict(&victim));
  EXPECT_EQ(victim, 1u);
  ASSERT_TRUE(replacer.Evict(&victim));
  EXPECT_EQ(victim, 2u);
  ASSERT_TRUE(replacer.Evict(&victim));
  EXPECT_EQ(victim, 0u);
  EXPECT_FALSE(replacer.Evict(&victim));
}

TEST(LruKReplacerTest, InfiniteDistanceClassEvictsFirst) {
  // With k=2: frame 0 gets two accesses (finite distance), frame 1 one
  // access after it (+inf). Despite 1 being more recent, +inf loses
  // first.
  LruKReplacer replacer(4, 2);
  replacer.RecordAccess(0);
  replacer.RecordAccess(0);
  replacer.RecordAccess(1);
  replacer.SetEvictable(0, true);
  replacer.SetEvictable(1, true);
  size_t victim = 99;
  ASSERT_TRUE(replacer.Evict(&victim));
  EXPECT_EQ(victim, 1u);
  ASSERT_TRUE(replacer.Evict(&victim));
  EXPECT_EQ(victim, 0u);
}

TEST(LruKReplacerTest, ScanResistance) {
  // The classic LRU-K win: a hot page accessed twice survives a stream
  // of once-touched scan pages.
  LruKReplacer replacer(8, 2);
  replacer.RecordAccess(0);
  replacer.RecordAccess(0);
  replacer.SetEvictable(0, true);
  for (size_t f = 1; f <= 5; ++f) {
    replacer.RecordAccess(f);
    replacer.SetEvictable(f, true);
  }
  for (size_t i = 1; i <= 5; ++i) {
    size_t victim = 99;
    ASSERT_TRUE(replacer.Evict(&victim));
    EXPECT_EQ(victim, i) << "scan pages evict in scan order";
  }
  size_t victim = 99;
  ASSERT_TRUE(replacer.Evict(&victim));
  EXPECT_EQ(victim, 0u) << "the hot page goes last";
}

TEST(LruKReplacerTest, PinnedFramesNeverEvicted) {
  LruKReplacer replacer(8, 2);
  for (size_t f = 0; f < 8; ++f) {
    replacer.RecordAccess(f);
    replacer.SetEvictable(f, f % 2 == 0);  // odd frames stay pinned
  }
  size_t victim = 99;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(replacer.Evict(&victim));
    EXPECT_EQ(victim % 2, 0u) << "evicted a pinned frame";
  }
  EXPECT_FALSE(replacer.Evict(&victim))
      << "only pinned frames remain; nothing is evictable";
  EXPECT_EQ(replacer.Size(), 0u);
}

TEST(LruKReplacerTest, RemoveForgetsHistory) {
  LruKReplacer replacer(4, 2);
  replacer.RecordAccess(0);
  replacer.RecordAccess(1);
  replacer.SetEvictable(0, true);
  replacer.SetEvictable(1, true);
  replacer.Remove(0);
  EXPECT_EQ(replacer.Size(), 1u);
  size_t victim = 99;
  ASSERT_TRUE(replacer.Evict(&victim));
  EXPECT_EQ(victim, 1u);
  EXPECT_FALSE(replacer.Evict(&victim));
}

/// Drives the production replacer and the reference model through the
/// same randomized trace, comparing every eviction and size query.
void RunRandomTrace(uint64_t seed, size_t num_frames, size_t k,
                    int num_ops, std::vector<size_t>* evictions) {
  Rng rng(seed);
  LruKReplacer replacer(num_frames, k);
  ReferenceLruK model(k);
  for (int op = 0; op < num_ops; ++op) {
    const int64_t dice = rng.Uniform(0, 99);
    const size_t frame = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(num_frames) - 1));
    if (dice < 45) {
      replacer.RecordAccess(frame);
      model.RecordAccess(frame);
    } else if (dice < 70) {
      const bool evictable = rng.Uniform(0, 1) == 1;
      replacer.SetEvictable(frame, evictable);
      model.SetEvictable(frame, evictable);
    } else if (dice < 90) {
      size_t got = 0, want = 0;
      const bool got_ok = replacer.Evict(&got);
      const bool want_ok = model.Evict(&want);
      ASSERT_EQ(got_ok, want_ok) << "op " << op << " seed " << seed;
      if (got_ok) {
        ASSERT_EQ(got, want) << "op " << op << " seed " << seed;
        if (evictions != nullptr) evictions->push_back(got);
      }
    } else if (dice < 95) {
      replacer.Remove(frame);
      model.Remove(frame);
    } else {
      ASSERT_EQ(replacer.Size(), model.Size())
          << "op " << op << " seed " << seed;
    }
  }
}

TEST(LruKReplacerTest, MatchesReferenceModelUnderRandomTraces) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RunRandomTrace(seed, /*num_frames=*/8, /*k=*/2, /*num_ops=*/2000,
                   nullptr);
    RunRandomTrace(seed + 100, /*num_frames=*/16, /*k=*/3,
                   /*num_ops=*/2000, nullptr);
    RunRandomTrace(seed + 200, /*num_frames=*/4, /*k=*/1, /*num_ops=*/1000,
                   nullptr);
  }
}

TEST(LruKReplacerTest, SameSeedSameEvictionSequence) {
  std::vector<size_t> first, second;
  RunRandomTrace(42, 16, 2, 5000, &first);
  RunRandomTrace(42, 16, 2, 5000, &second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace gisql
