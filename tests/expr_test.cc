/// Unit tests for the typed expression engine: binding, evaluation with
/// SQL three-valued logic, constant folding, rewriting utilities.

#include <gtest/gtest.h>

#include "expr/binder.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "sql/parser.h"

namespace gisql {
namespace {

Schema TestSchema() {
  return Schema({{"id", TypeId::kInt64, false, "t"},
                 {"price", TypeId::kDouble, true, "t"},
                 {"name", TypeId::kString, true, "t"},
                 {"active", TypeId::kBool, true, "t"},
                 {"day", TypeId::kDate, true, "t"}});
}

Row TestRow() {
  return {Value::Int(7), Value::Double(2.5), Value::String("widget"),
          Value::Bool(true), Value::Date(19000)};
}

/// Binds a SQL expression string against the test schema.
ExprPtr Bind(const std::string& sql_text) {
  auto ast = sql::ParseScalarExpr(sql_text);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  Schema schema = TestSchema();
  Binder binder(schema);
  auto bound = binder.BindScalar(**ast);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return *bound;
}

Value Eval(const std::string& sql_text) {
  ExprPtr e = Bind(sql_text);
  auto v = EvalExpr(*e, TestRow());
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return *v;
}

TEST(BinderTest, ColumnResolutionAndTyping) {
  ExprPtr e = Bind("id");
  EXPECT_EQ(e->kind, ExprKind::kColumn);
  EXPECT_EQ(e->column_index, 0u);
  EXPECT_EQ(e->type, TypeId::kInt64);
  e = Bind("t.price");
  EXPECT_EQ(e->column_index, 1u);
  EXPECT_EQ(e->type, TypeId::kDouble);
}

TEST(BinderTest, UnknownColumnIsBindError) {
  auto ast = sql::ParseScalarExpr("nosuch");
  Schema schema = TestSchema();
  Binder binder(schema);
  EXPECT_TRUE(binder.BindScalar(**ast).status().IsBindError());
}

TEST(BinderTest, ComparisonInsertsCasts) {
  // id (int) compared to price (double): int side gets a cast.
  ExprPtr e = Bind("id > price");
  EXPECT_EQ(e->kind, ExprKind::kCompare);
  EXPECT_EQ(e->children[0]->kind, ExprKind::kCast);
  EXPECT_EQ(e->children[0]->type, TypeId::kDouble);
}

TEST(BinderTest, TypeErrorsRejected) {
  Schema schema = TestSchema();
  Binder binder(schema);
  auto bad = [&](const char* text) {
    auto ast = sql::ParseScalarExpr(text);
    return binder.BindScalar(**ast).status();
  };
  EXPECT_TRUE(bad("name > id").IsInvalidArgument() ||
              bad("name > id").IsBindError());
  EXPECT_TRUE(bad("name + id").IsBindError());
  EXPECT_TRUE(bad("NOT id").IsBindError());
  EXPECT_TRUE(bad("id AND active").IsBindError());
  EXPECT_TRUE(bad("id LIKE 'x'").IsBindError());
  EXPECT_TRUE(bad("nosuchfunc(id)").IsBindError());
}

TEST(BinderTest, AggregateRejectedInScalarContext) {
  Schema schema = TestSchema();
  Binder binder(schema);
  auto ast = sql::ParseScalarExpr("SUM(id)");
  EXPECT_TRUE(binder.BindScalar(**ast).status().IsBindError());
}

TEST(BinderTest, StringConcatViaPlus) {
  ExprPtr e = Bind("name + '!'");
  EXPECT_EQ(e->kind, ExprKind::kFunc);
  EXPECT_EQ(e->func_name, "CONCAT");
}

TEST(EvalTest, ArithmeticBasics) {
  EXPECT_EQ(Eval("1 + 2 * 3").AsInt(), 7);
  EXPECT_DOUBLE_EQ(Eval("price * 2").AsDouble(), 5.0);
  EXPECT_EQ(Eval("id % 4").AsInt(), 3);
  EXPECT_EQ(Eval("7 / 2").AsInt(), 3);           // integer division
  EXPECT_DOUBLE_EQ(Eval("7 / 2.0").AsDouble(), 3.5);
  EXPECT_EQ(Eval("-id").AsInt(), -7);
}

TEST(EvalTest, DivisionByZeroIsExecutionError) {
  ExprPtr e = Bind("id / 0");
  EXPECT_TRUE(EvalExpr(*e, TestRow()).status().IsExecutionError());
  e = Bind("id % 0");
  EXPECT_TRUE(EvalExpr(*e, TestRow()).status().IsExecutionError());
}

TEST(EvalTest, Comparisons) {
  EXPECT_TRUE(Eval("id = 7").AsBool());
  EXPECT_TRUE(Eval("id <> 8").AsBool());
  EXPECT_TRUE(Eval("price <= 2.5").AsBool());
  EXPECT_TRUE(Eval("name = 'widget'").AsBool());
  EXPECT_FALSE(Eval("name < 'abc'").AsBool());
  EXPECT_TRUE(Eval("id > price").AsBool());  // cross-type numeric
}

TEST(EvalTest, NullPropagationInScalarOps) {
  EXPECT_TRUE(Eval("NULL + 1").is_null());
  EXPECT_TRUE(Eval("id = NULL").is_null());
  EXPECT_TRUE(Eval("NOT (id = NULL)").is_null());
}

TEST(EvalTest, KleeneLogic) {
  // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
  EXPECT_TRUE(Eval("id = 7 OR id = NULL").AsBool());
  EXPECT_TRUE(Eval("id = 8 OR id = NULL").is_null());
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  EXPECT_FALSE(Eval("id = 8 AND id = NULL").AsBool());
  EXPECT_TRUE(Eval("id = 7 AND id = NULL").is_null());
}

TEST(EvalTest, IsNullIsTotal) {
  EXPECT_FALSE(Eval("id IS NULL").AsBool());
  EXPECT_TRUE(Eval("id IS NOT NULL").AsBool());
  EXPECT_TRUE(Eval("NULL IS NULL").AsBool());
}

TEST(EvalTest, LikeSemantics) {
  EXPECT_TRUE(Eval("name LIKE 'wid%'").AsBool());
  EXPECT_TRUE(Eval("name LIKE '%get'").AsBool());
  EXPECT_TRUE(Eval("name NOT LIKE 'x%'").AsBool());
  EXPECT_TRUE(Eval("name LIKE NULL").is_null());
}

TEST(EvalTest, InSemantics) {
  EXPECT_TRUE(Eval("id IN (1, 7, 9)").AsBool());
  EXPECT_FALSE(Eval("id IN (1, 2)").AsBool());
  EXPECT_TRUE(Eval("id NOT IN (1, 2)").AsBool());
  // Value absent but NULL present → NULL (SQL semantics).
  EXPECT_TRUE(Eval("id IN (1, NULL)").is_null());
  // Value present: TRUE regardless of NULLs.
  EXPECT_TRUE(Eval("id IN (7, NULL)").AsBool());
}

TEST(EvalTest, BetweenDesugar) {
  EXPECT_TRUE(Eval("id BETWEEN 5 AND 10").AsBool());
  EXPECT_FALSE(Eval("id BETWEEN 8 AND 10").AsBool());
  EXPECT_TRUE(Eval("id NOT BETWEEN 8 AND 10").AsBool());
}

TEST(EvalTest, CaseExpression) {
  EXPECT_EQ(Eval("CASE WHEN id > 5 THEN 'big' ELSE 'small' END").AsString(),
            "big");
  EXPECT_EQ(Eval("CASE WHEN id > 50 THEN 'big' ELSE 'small' END").AsString(),
            "small");
  EXPECT_TRUE(Eval("CASE WHEN id > 50 THEN 'big' END").is_null());
}

TEST(EvalTest, ScalarFunctions) {
  EXPECT_EQ(Eval("UPPER(name)").AsString(), "WIDGET");
  EXPECT_EQ(Eval("LOWER('ABC')").AsString(), "abc");
  EXPECT_EQ(Eval("LENGTH(name)").AsInt(), 6);
  EXPECT_EQ(Eval("SUBSTR(name, 1, 3)").AsString(), "wid");
  EXPECT_EQ(Eval("SUBSTR(name, 4)").AsString(), "get");
  EXPECT_EQ(Eval("ABS(0 - 4)").AsInt(), 4);
  EXPECT_DOUBLE_EQ(Eval("ROUND(2.567, 1)").AsDouble(), 2.6);
  EXPECT_EQ(Eval("COALESCE(NULL, 5)").AsInt(), 5);
  EXPECT_EQ(Eval("CONCAT(name, '-x')").AsString(), "widget-x");
}

TEST(EvalTest, CastExpression) {
  EXPECT_EQ(Eval("CAST(price AS bigint)").AsInt(), 2);
  EXPECT_EQ(Eval("CAST(id AS varchar)").AsString(), "7");
  EXPECT_DOUBLE_EQ(Eval("CAST('3.5' AS double)").AsDouble(), 3.5);
}

TEST(EvalTest, PredicateTreatsNullAsFalse) {
  ExprPtr e = Bind("id = NULL");
  EXPECT_FALSE(*EvalPredicate(*e, TestRow()));
  e = Bind("id = 7");
  EXPECT_TRUE(*EvalPredicate(*e, TestRow()));
}

TEST(FoldTest, ConstantsFold) {
  ExprPtr e = Bind("1 + 2 * 3");
  ExprPtr folded = FoldConstants(e);
  ASSERT_EQ(folded->kind, ExprKind::kLiteral);
  EXPECT_EQ(folded->literal.AsInt(), 7);
}

TEST(FoldTest, MixedTreesFoldPartially) {
  ExprPtr e = Bind("id + (2 + 3)");
  ExprPtr folded = FoldConstants(e);
  ASSERT_EQ(folded->kind, ExprKind::kArith);
  EXPECT_EQ(folded->children[1]->kind, ExprKind::kLiteral);
  EXPECT_EQ(folded->children[1]->literal.AsInt(), 5);
  EXPECT_EQ(folded->children[0]->kind, ExprKind::kColumn);
}

TEST(FoldTest, ErroringConstantsLeftForRuntime) {
  ExprPtr e = Bind("1 / 0");
  ExprPtr folded = FoldConstants(e);
  EXPECT_EQ(folded->kind, ExprKind::kArith);  // unfolded
}

TEST(ExprUtilTest, SplitAndConjoin) {
  ExprPtr e = Bind("id > 1 AND price < 5 AND active");
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(e, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 3u);
  ExprPtr back = ConjoinAll(conjuncts);
  EXPECT_TRUE(back->Equals(*e));
  EXPECT_EQ(ConjoinAll({})->literal.AsBool(), true);
}

TEST(ExprUtilTest, CollectColumns) {
  ExprPtr e = Bind("id > 1 AND price < 5 AND id < 10");
  std::vector<size_t> cols;
  e->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 2u);  // deduplicated
}

TEST(ExprUtilTest, ColumnsWithin) {
  ExprPtr e = Bind("id > 1 AND price < 5");
  EXPECT_TRUE(e->ColumnsWithin(0, 2));
  EXPECT_FALSE(e->ColumnsWithin(1, 2));
}

TEST(ExprUtilTest, RemapAndShift) {
  ExprPtr e = Bind("id + CAST(price AS bigint)");
  std::vector<size_t> mapping = {3, 5, static_cast<size_t>(-1),
                                 static_cast<size_t>(-1),
                                 static_cast<size_t>(-1)};
  ExprPtr remapped = *RemapColumns(*e, mapping);
  std::vector<size_t> cols;
  remapped->CollectColumns(&cols);
  EXPECT_EQ(cols[0], 3u);
  EXPECT_EQ(cols[1], 5u);

  ExprPtr shifted = ShiftColumns(*e, 10);
  cols.clear();
  shifted->CollectColumns(&cols);
  EXPECT_EQ(cols[0], 10u);
  EXPECT_EQ(cols[1], 11u);

  // Remap with a missing mapping is an Internal error.
  std::vector<size_t> bad = {static_cast<size_t>(-1)};
  EXPECT_FALSE(RemapColumns(*Bind("id"), bad).ok());
}

TEST(ExprUtilTest, CloneAndEquals) {
  ExprPtr e = Bind("id > 1 AND name LIKE 'w%'");
  ExprPtr c = e->Clone();
  EXPECT_TRUE(e->Equals(*c));
  c->children[0]->compare_op = CompareOp::kLt;
  EXPECT_FALSE(e->Equals(*c));
}

TEST(BinderProjectionTest, GroupExprSubstitution) {
  Schema schema = TestSchema();
  Binder binder(schema);
  // GROUP BY name; SELECT name, COUNT(*), SUM(price)
  auto g_ast = sql::ParseScalarExpr("name");
  ExprPtr g = *binder.BindScalar(**g_ast);
  std::vector<ExprPtr> groups = {g};
  std::vector<BoundAggregate> aggs;

  auto item1 = sql::ParseScalarExpr("name");
  ExprPtr b1 = *binder.BindProjection(**item1, groups, &aggs);
  EXPECT_EQ(b1->kind, ExprKind::kColumn);
  EXPECT_EQ(b1->column_index, 0u);  // group slot 0

  auto item2 = sql::ParseScalarExpr("COUNT(*)");
  ExprPtr b2 = *binder.BindProjection(**item2, groups, &aggs);
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].kind, AggKind::kCountStar);
  EXPECT_EQ(b2->column_index, 1u);  // groups(1) + agg#0

  auto item3 = sql::ParseScalarExpr("SUM(price) / COUNT(*)");
  ExprPtr b3 = *binder.BindProjection(**item3, groups, &aggs);
  ASSERT_EQ(aggs.size(), 2u);  // COUNT(*) deduplicated
  EXPECT_EQ(aggs[1].kind, AggKind::kSum);
  EXPECT_EQ(b3->kind, ExprKind::kArith);

  // Column not in GROUP BY and not aggregated → BindError.
  auto bad = sql::ParseScalarExpr("price");
  EXPECT_TRUE(
      binder.BindProjection(**bad, groups, &aggs).status().IsBindError());
}

TEST(BinderProjectionTest, AggregateTyping) {
  Schema schema = TestSchema();
  Binder binder(schema);
  std::vector<ExprPtr> groups;
  std::vector<BoundAggregate> aggs;
  auto bindAgg = [&](const char* text) {
    auto ast = sql::ParseScalarExpr(text);
    auto r = binder.BindProjection(**ast, groups, &aggs);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return aggs.back();
  };
  EXPECT_EQ(bindAgg("SUM(id)").result_type, TypeId::kInt64);
  EXPECT_EQ(bindAgg("SUM(price)").result_type, TypeId::kDouble);
  EXPECT_EQ(bindAgg("AVG(id)").result_type, TypeId::kDouble);
  EXPECT_EQ(bindAgg("MIN(name)").result_type, TypeId::kString);
  EXPECT_EQ(bindAgg("COUNT(name)").result_type, TypeId::kInt64);

  auto bad = sql::ParseScalarExpr("SUM(name)");
  EXPECT_TRUE(
      binder.BindProjection(**bad, groups, &aggs).status().IsBindError());
}

}  // namespace
}  // namespace gisql
