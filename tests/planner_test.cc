/// Unit tests for the planning stack: logical planning shapes, optimizer
/// passes (pushdown, pruning, join ordering), cost model estimates, and
/// decomposition rules.

#include <gtest/gtest.h>

#include "core/global_system.h"
#include "planner/cost_model.h"
#include "planner/decomposer.h"
#include "planner/logical_planner.h"
#include "planner/optimizer.h"
#include "sql/parser.h"

namespace gisql {
namespace {

/// World with three relational tables of controlled sizes plus one
/// legacy source, for planner-shape assertions.
class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s1 = *gis_.CreateSource("s1", SourceDialect::kRelational);
    auto s2 = *gis_.CreateSource("s2", SourceDialect::kRelational);
    auto s3 = *gis_.CreateSource("legacy", SourceDialect::kLegacy);

    ASSERT_TRUE(s1->ExecuteLocalSql(
                      "CREATE TABLE small (k bigint, a varchar)")
                    .ok());
    ASSERT_TRUE(s1->ExecuteLocalSql(
                      "CREATE TABLE medium (k bigint, m bigint, b varchar)")
                    .ok());
    ASSERT_TRUE(s2->ExecuteLocalSql(
                      "CREATE TABLE large (m bigint, c double, d varchar)")
                    .ok());
    ASSERT_TRUE(s3->ExecuteLocalSql(
                      "CREATE TABLE oldsys (k bigint, x double)")
                    .ok());

    Fill("s1", "small", 10);
    Fill("s1", "medium", 200);
    Fill("s2", "large", 5000);
    Fill("legacy", "oldsys", 100);
    ASSERT_TRUE(gis_.ImportSource("s1").ok());
    ASSERT_TRUE(gis_.ImportSource("s2").ok());
    ASSERT_TRUE(gis_.ImportSource("legacy").ok());
  }

  void Fill(const std::string& source, const std::string& table, int n) {
    auto src = *gis_.GetSource(source);
    auto t = *src->engine().GetTable(table);
    const size_t ncols = t->schema()->num_fields();
    std::vector<Row> rows;
    for (int i = 0; i < n; ++i) {
      Row row;
      for (size_t c = 0; c < ncols; ++c) {
        switch (t->schema()->field(c).type) {
          case TypeId::kInt64:
            row.push_back(Value::Int(c == 0 ? i : i % 50));
            break;
          case TypeId::kDouble:
            row.push_back(Value::Double(i * 0.5));
            break;
          default:
            row.push_back(Value::String("v" + std::to_string(i % 7)));
            break;
        }
      }
      rows.push_back(std::move(row));
    }
    t->InsertUnchecked(std::move(rows));
  }

  PlanNodePtr PlanOf(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto plan = gis_.PlanQuery(**stmt);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return *plan;
  }

  /// Counts nodes of a kind in the plan.
  static int Count(const PlanNodePtr& plan, PlanKind kind) {
    int n = 0;
    VisitPlan(plan, [&](const PlanNodePtr& node) {
      if (node->kind == kind) ++n;
    });
    return n;
  }

  GlobalSystem gis_;
};

TEST_F(PlannerTest, FilterAbsorbedIntoRelationalFragment) {
  auto plan = PlanOf("SELECT a FROM small WHERE k > 5");
  EXPECT_EQ(Count(plan, PlanKind::kFilter), 0);
  EXPECT_EQ(Count(plan, PlanKind::kRemoteFragment), 1);
  // Find the fragment; it must carry the filter and the projection.
  bool found = false;
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      found = true;
      EXPECT_TRUE(node->fragment.filter != nullptr);
      EXPECT_FALSE(node->fragment.projections.empty());
    }
  });
  EXPECT_TRUE(found);
}

TEST_F(PlannerTest, FilterCompensatedForLegacySource) {
  auto plan = PlanOf("SELECT x FROM oldsys WHERE k > 5");
  // Legacy cannot filter or project: mediator keeps both.
  EXPECT_GE(Count(plan, PlanKind::kFilter), 1);
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      EXPECT_TRUE(node->fragment.filter == nullptr);
      EXPECT_TRUE(node->fragment.projections.empty());
    }
  });
}

TEST_F(PlannerTest, ShipEverythingKeepsWorkAtMediator) {
  gis_.set_options(PlannerOptions::ShipEverything());
  auto plan = PlanOf("SELECT a FROM small WHERE k > 5");
  gis_.set_options(PlannerOptions::Full());
  EXPECT_GE(Count(plan, PlanKind::kFilter), 1);
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      EXPECT_TRUE(node->fragment.filter == nullptr);
      EXPECT_TRUE(node->fragment.projections.empty());
    }
  });
}

TEST_F(PlannerTest, WherePredicateBecomesJoinKey) {
  // Comma join: the equi conjunct must be promoted to a hash-join key.
  auto plan = PlanOf(
      "SELECT small.a FROM small, medium WHERE small.k = medium.k");
  bool join_found = false;
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kJoin) {
      join_found = true;
      EXPECT_EQ(node->left_keys.size(), 1u);
    }
  });
  EXPECT_TRUE(join_found);
}

TEST_F(PlannerTest, SingleSidePredicatesPushToTheirSide) {
  auto plan = PlanOf(
      "SELECT small.a FROM small JOIN medium ON small.k = medium.k "
      "WHERE small.k > 3 AND medium.b = 'v1'");
  // Both predicates pushed into their respective fragments.
  int fragments_with_filters = 0;
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment &&
        node->fragment.filter != nullptr) {
      ++fragments_with_filters;
    }
  });
  EXPECT_EQ(fragments_with_filters, 2);
  EXPECT_EQ(Count(plan, PlanKind::kFilter), 0);
}

TEST_F(PlannerTest, LeftJoinRightFilterStaysAbove) {
  auto plan = PlanOf(
      "SELECT small.a FROM small LEFT JOIN medium ON small.k = medium.k "
      "WHERE medium.b = 'v1'");
  // The right-side predicate must not be pushed below the LEFT join.
  EXPECT_GE(Count(plan, PlanKind::kFilter), 1);
}

TEST_F(PlannerTest, ProjectionPruningNarrowsFragments) {
  auto plan = PlanOf("SELECT c FROM large");
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      ASSERT_EQ(node->fragment.projections.size(), 1u);
    }
  });
}

TEST_F(PlannerTest, JoinOrderingPutsSmallTablesFirst) {
  // small(10) ⋈ medium(200) ⋈ large(5000): DP should start the chain
  // from the small end regardless of the written order.
  auto plan = PlanOf(
      "SELECT small.a FROM large "
      "JOIN medium ON large.m = medium.m "
      "JOIN small ON medium.k = small.k");
  // Walk to the deepest join and check its inputs are the small tables.
  const PlanNode* deepest = nullptr;
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kJoin) deepest = node.get();
  });
  ASSERT_NE(deepest, nullptr);
  double deepest_rows = 1e18;
  for (const auto& c : deepest->children) {
    deepest_rows = std::min(deepest_rows, c->est_rows);
  }
  EXPECT_LE(deepest_rows, 10.0);

  // All three orderings give identical results.
  const std::string q =
      "SELECT COUNT(*) FROM large JOIN medium ON large.m = medium.m "
      "JOIN small ON medium.k = small.k";
  auto full = gis_.Query(q);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  for (JoinOrdering ord : {JoinOrdering::kAsWritten, JoinOrdering::kGreedy,
                           JoinOrdering::kWorst}) {
    PlannerOptions o;
    o.join_ordering = ord;
    gis_.set_options(o);
    auto r = gis_.Query(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->batch.rows()[0][0].AsInt(),
              full->batch.rows()[0][0].AsInt());
  }
  gis_.set_options(PlannerOptions::Full());
}

TEST_F(PlannerTest, DpNoWorseThanGreedyAndWorst) {
  const std::string q =
      "SELECT small.a FROM large JOIN medium ON large.m = medium.m "
      "JOIN small ON medium.k = small.k WHERE large.c < 100";
  auto cost_of = [&](JoinOrdering ord) {
    PlannerOptions o;
    o.join_ordering = ord;
    gis_.set_options(o);
    auto plan = PlanOf(q);
    double total = 0;
    VisitPlan(plan, [&](const PlanNodePtr& node) {
      if (node->kind == PlanKind::kJoin) total += node->est_rows;
    });
    return total;
  };
  const double dp = cost_of(JoinOrdering::kDp);
  const double greedy = cost_of(JoinOrdering::kGreedy);
  const double worst = cost_of(JoinOrdering::kWorst);
  gis_.set_options(PlannerOptions::Full());
  // DP enumerates every connected left-deep order, so it is optimal
  // under the estimates; the heuristics may tie it (on a 3-relation
  // chain "worst" has little room to be bad) but never beat it.
  EXPECT_LE(dp, greedy + 1e-9);
  EXPECT_LE(dp, worst + 1e-9);
}

TEST_F(PlannerTest, AggregatePushdownProducesPartials) {
  auto plan = PlanOf("SELECT b, COUNT(*), AVG(m) FROM medium GROUP BY b");
  // Fragment carries a partial aggregation with AVG decomposed.
  bool frag_found = false;
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      frag_found = true;
      EXPECT_TRUE(node->fragment.has_aggregate);
      // COUNT(*) + SUM(m) + COUNT(m) partials.
      EXPECT_EQ(node->fragment.aggregates.size(), 3u);
    }
  });
  EXPECT_TRUE(frag_found);
  // Mediator merges and projects AVG = SUM/COUNT.
  EXPECT_EQ(Count(plan, PlanKind::kAggregate), 1);
  EXPECT_GE(Count(plan, PlanKind::kProject), 1);

  // Verify execution correctness of the decomposed AVG.
  auto r = gis_.Query(
      "SELECT b, AVG(m) AS avg_m FROM medium GROUP BY b ORDER BY b");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  PlannerOptions no_push;
  no_push.enable_aggregate_pushdown = false;
  gis_.set_options(no_push);
  auto central = gis_.Query(
      "SELECT b, AVG(m) AS avg_m FROM medium GROUP BY b ORDER BY b");
  gis_.set_options(PlannerOptions::Full());
  ASSERT_TRUE(central.ok());
  ASSERT_EQ(r->batch.num_rows(), central->batch.num_rows());
  for (size_t i = 0; i < r->batch.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(r->batch.rows()[i][1].AsDouble(),
                     central->batch.rows()[i][1].AsDouble());
  }
}

TEST_F(PlannerTest, MixedDialectViewGetsPerMemberPartials) {
  // A union view over a capable and an incapable source: the capable
  // member's fragment carries the partial aggregation, the incapable
  // member gets a mediator-side partial, and the merge sees uniform
  // partial rows.
  ASSERT_TRUE(gis_.ImportTable("s1", "small", "small_copy").ok());
  auto legacy = *gis_.GetSource("legacy");
  ASSERT_TRUE(
      legacy->ExecuteLocalSql("CREATE TABLE small (k bigint, a varchar)")
          .ok());
  Fill("legacy", "small", 10);
  ASSERT_TRUE(gis_.ImportTable("legacy", "small", "small_legacy").ok());
  ASSERT_TRUE(
      gis_.CreateUnionView("small_all", {"small_copy", "small_legacy"}).ok());

  auto plan = PlanOf("SELECT a, COUNT(*) FROM small_all GROUP BY a");
  int source_partials = 0;
  int mediator_aggs = 0;
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment &&
        node->fragment.has_aggregate) {
      ++source_partials;
    }
    if (node->kind == PlanKind::kAggregate) ++mediator_aggs;
  });
  EXPECT_EQ(source_partials, 1);  // the relational member
  EXPECT_EQ(mediator_aggs, 2);    // legacy partial + final merge

  auto r = gis_.Query(
      "SELECT a, COUNT(*) AS n FROM small_all GROUP BY a ORDER BY a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int64_t total = 0;
  for (const auto& row : r->batch.rows()) total += row[1].AsInt();
  EXPECT_EQ(total, 20);  // 10 rows per member
}

TEST_F(PlannerTest, DistinctAggregateNotPushed) {
  auto plan = PlanOf("SELECT COUNT(DISTINCT b) FROM medium");
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      EXPECT_FALSE(node->fragment.has_aggregate);
    }
  });
  auto r = gis_.Query("SELECT COUNT(DISTINCT b) FROM medium");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 7);
}

TEST_F(PlannerTest, AggregateNotPushedToLegacy) {
  auto plan = PlanOf("SELECT COUNT(*) FROM oldsys");
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      EXPECT_FALSE(node->fragment.has_aggregate);
    }
  });
  auto r = gis_.Query("SELECT COUNT(*) FROM oldsys");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 100);
}

TEST_F(PlannerTest, LimitPushedIntoFragment) {
  auto plan = PlanOf("SELECT a FROM small LIMIT 3");
  bool limited = false;
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment &&
        node->fragment.limit == 3) {
      limited = true;
    }
  });
  EXPECT_TRUE(limited);
  // Mediator keeps a Limit node for exactness.
  EXPECT_EQ(Count(plan, PlanKind::kLimit), 1);
}

TEST_F(PlannerTest, LimitWithOffsetShipsLimitPlusOffset) {
  auto plan = PlanOf("SELECT a FROM small LIMIT 3 OFFSET 2");
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      EXPECT_EQ(node->fragment.limit, 5);
    }
  });
  auto r = gis_.Query("SELECT k FROM small ORDER BY k LIMIT 3 OFFSET 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->batch.num_rows(), 3u);
  EXPECT_EQ(r->batch.rows()[0][0].AsInt(), 2);
}

TEST_F(PlannerTest, TopNPushedToCapableSource) {
  auto plan = PlanOf("SELECT c FROM large ORDER BY c DESC LIMIT 5");
  bool topn = false;
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment &&
        !node->fragment.order_by.empty()) {
      topn = true;
      EXPECT_EQ(node->fragment.limit, 5);
      EXPECT_FALSE(node->fragment.order_ascending[0]);
    }
  });
  EXPECT_TRUE(topn);
  // The mediator retains Sort + Limit for the exact merge.
  EXPECT_EQ(Count(plan, PlanKind::kSort), 1);
  EXPECT_EQ(Count(plan, PlanKind::kLimit), 1);

  auto r = gis_.Query("SELECT c FROM large ORDER BY c DESC LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->batch.num_rows(), 5u);
  EXPECT_DOUBLE_EQ(r->batch.rows()[0][0].AsDouble(), 4999 * 0.5);
  EXPECT_DOUBLE_EQ(r->batch.rows()[4][0].AsDouble(), 4995 * 0.5);
}

TEST_F(PlannerTest, TopNNotPushedToLegacy) {
  auto plan = PlanOf("SELECT x FROM oldsys ORDER BY x LIMIT 3");
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      EXPECT_TRUE(node->fragment.order_by.empty());
      EXPECT_EQ(node->fragment.limit, -1);
    }
  });
  auto r = gis_.Query("SELECT x FROM oldsys ORDER BY x LIMIT 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->batch.num_rows(), 3u);
}

TEST_F(PlannerTest, TopNWithOffsetShipsLimitPlusOffset) {
  auto plan = PlanOf("SELECT c FROM large ORDER BY c LIMIT 5 OFFSET 7");
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      EXPECT_EQ(node->fragment.limit, 12);
    }
  });
  auto r = gis_.Query("SELECT c FROM large ORDER BY c LIMIT 5 OFFSET 7");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->batch.num_rows(), 5u);
  EXPECT_DOUBLE_EQ(r->batch.rows()[0][0].AsDouble(), 7 * 0.5);
}

TEST_F(PlannerTest, ConstantFoldingSimplifiesFilters) {
  auto plan = PlanOf("SELECT a FROM small WHERE k > 2 + 3");
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment && node->fragment.filter) {
      // The folded literal 5 appears; no arithmetic nodes remain.
      EXPECT_NE(node->fragment.filter->ToString().find("5"),
                std::string::npos);
      EXPECT_EQ(node->fragment.filter->ToString().find("+"),
                std::string::npos);
    }
  });
}

TEST_F(PlannerTest, AdjacentProjectsFuse) {
  // Join reordering + pruning used to leave Project(Project(x)) chains;
  // the fusion pass must collapse them (answer unchanged).
  const std::string q =
      "SELECT small.a FROM large JOIN medium ON large.m = medium.m "
      "JOIN small ON medium.k = small.k";
  auto plan = PlanOf(q);
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kProject) {
      EXPECT_NE(node->children[0]->kind, PlanKind::kProject);
    }
  });
  EXPECT_TRUE(gis_.Query(q).ok());
}

TEST_F(PlannerTest, CostEstimatesTrackSelectivity) {
  CostParams params;
  CostModel cost(gis_.catalog(), params);
  LogicalPlanner planner(gis_.catalog());
  auto stmt = sql::ParseSelect("SELECT c FROM large WHERE d = 'v1'");
  auto plan = planner.Plan(**stmt);
  ASSERT_TRUE(plan.ok());
  cost.Annotate(*plan);
  // d has 7 distinct values over 5000 rows → ~714 rows estimated.
  double filtered = -1;
  VisitPlan(*plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kFilter) filtered = node->est_rows;
  });
  ASSERT_GT(filtered, 0);
  EXPECT_NEAR(filtered, 714.0, 50.0);
}

TEST_F(PlannerTest, RangeSelectivityInterpolates) {
  CostParams params;
  CostModel cost(gis_.catalog(), params);
  LogicalPlanner planner(gis_.catalog());
  // c ranges over [0, 2499.5]; c < 250 ≈ 10%.
  auto stmt = sql::ParseSelect("SELECT c FROM large WHERE c < 250.0");
  auto plan = planner.Plan(**stmt);
  ASSERT_TRUE(plan.ok());
  cost.Annotate(*plan);
  double filtered = -1;
  VisitPlan(*plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kFilter) filtered = node->est_rows;
  });
  EXPECT_NEAR(filtered, 500.0, 100.0);
}

TEST_F(PlannerTest, EmptyRangeOnSinglePointColumnEstimatesZero) {
  // Regression: a column whose statistics collapse to a single point
  // (min == max) used to be treated like corrupt bounds and fall back
  // to the default 1/3 range selectivity — even when the bounds
  // resolved exactly and the range is provably empty. 40 rows keeps
  // the column below the histogram threshold so the min/max
  // interpolation path (where the bug lived) is the one exercised.
  auto s4 = *gis_.CreateSource("s4", SourceDialect::kRelational);
  ASSERT_TRUE(
      s4->ExecuteLocalSql("CREATE TABLE flat (k bigint, v double)").ok());
  auto t = *s4->engine().GetTable("flat");
  std::vector<Row> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({Value::Int(i), Value::Double(5.0)});
  }
  ASSERT_TRUE(t->InsertUnchecked(std::move(rows)).ok());
  ASSERT_TRUE(gis_.ImportSource("s4").ok());

  CostParams params;
  CostModel cost(gis_.catalog(), params);
  LogicalPlanner planner(gis_.catalog());
  auto estimate = [&](const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto plan = planner.Plan(**stmt);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    cost.Annotate(*plan);
    double filtered = -1;
    VisitPlan(*plan, [&](const PlanNodePtr& node) {
      if (node->kind == PlanKind::kFilter) filtered = node->est_rows;
    });
    return filtered;
  };
  // Every row holds v = 5.0: strict comparisons against 5.0 are
  // provably empty (~0 rows, not 40/3), the inclusive ones are total.
  EXPECT_NEAR(estimate("SELECT k FROM flat WHERE v < 5.0"), 0.0, 1.0);
  EXPECT_NEAR(estimate("SELECT k FROM flat WHERE v > 5.0"), 0.0, 1.0);
  EXPECT_NEAR(estimate("SELECT k FROM flat WHERE v <= 5.0"), 40.0, 1.0);
  EXPECT_NEAR(estimate("SELECT k FROM flat WHERE v >= 5.0"), 40.0, 1.0);
  // Off-point bounds stay exact as well.
  EXPECT_NEAR(estimate("SELECT k FROM flat WHERE v < 9.0"), 40.0, 1.0);
  EXPECT_NEAR(estimate("SELECT k FROM flat WHERE v > 9.0"), 0.0, 1.0);
}

TEST_F(PlannerTest, EstimatesSurviveDecomposition) {
  auto plan = PlanOf("SELECT c FROM large WHERE m = 7");
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kRemoteFragment) {
      EXPECT_GT(node->est_rows, 0);
      EXPECT_LT(node->est_rows, 500);  // far below the 5000 base rows
      EXPECT_GT(node->est_cost_ms, 0);
    }
  });
}

}  // namespace
}  // namespace gisql
