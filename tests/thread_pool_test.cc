/// ThreadPool / TaskGroup tests: the worker-concurrency bound, help-
/// while-wait freedom from deadlock under nested parallelism on tiny
/// pools, inline degeneration with a null pool, and the executor-level
/// bound — a GlobalSystem with a 2-thread pool never runs more than two
/// tasks on workers no matter how wide the plan fans out.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/thread_pool.h"
#include "core/global_system.h"

namespace gisql {
namespace {

TEST(ThreadPoolTest, RunsEverythingExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> runs{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 100; ++i) {
      group.Spawn([&runs] { runs.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(runs.load(), 100);
    group.Wait();  // idempotent
  }
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPoolTest, WorkerConcurrencyNeverExceedsPoolSize) {
  ThreadPool pool(3);
  // Tasks that linger long enough for all workers to pick one up.
  for (int round = 0; round < 4; ++round) {
    TaskGroup group(&pool);
    for (int i = 0; i < 32; ++i) {
      group.Spawn([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      });
    }
    group.Wait();
  }
  EXPECT_LE(pool.peak_worker_tasks(), 3);
  EXPECT_GE(pool.peak_worker_tasks(), 1);
}

TEST(ThreadPoolTest, NestedGroupsDrainOnASingleWorker) {
  // One worker + nested groups: the classic bounded-pool deadlock
  // shape. Help-while-wait must drain it.
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.Spawn([&pool, &leaves] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 4; ++j) {
        inner.Spawn([&leaves] { leaves.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaves.load(), 32);
  EXPECT_LE(pool.peak_worker_tasks(), 1);
}

TEST(ThreadPoolTest, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  std::thread::id spawner = std::this_thread::get_id();
  bool ran = false;
  group.Spawn([&] {
    ran = true;
    EXPECT_EQ(std::this_thread::get_id(), spawner);
  });
  EXPECT_TRUE(ran);  // already done — Spawn executed it inline
  group.Wait();
}

TEST(ThreadPoolTest, ExecutorRespectsConfiguredBound) {
  PlannerOptions options;
  options.worker_threads = 2;
  GlobalSystem gis(options);
  // A wide union fan-out: 6 sources behind one view, so the executor
  // has 6 independent remote fetches to scatter at once.
  std::vector<std::string> members;
  for (int i = 0; i < 6; ++i) {
    const std::string name = "site" + std::to_string(i);
    auto src = *gis.CreateSource(name, SourceDialect::kRelational);
    ASSERT_TRUE(
        src->ExecuteLocalSql("CREATE TABLE part (id bigint, v double)")
            .ok());
    for (int r = 0; r < 20; ++r) {
      ASSERT_TRUE(src->ExecuteLocalSql(
                        "INSERT INTO part VALUES (" +
                        std::to_string(i * 100 + r) + ", 1.5)")
                      .ok());
    }
    ASSERT_TRUE(gis.ImportTable(name, "part", "part_" + name).ok());
    members.push_back("part_" + name);
  }
  ASSERT_TRUE(gis.CreateUnionView("parts", members).ok());

  for (int i = 0; i < 3; ++i) {
    auto result = gis.Query("SELECT COUNT(*), SUM(v) FROM parts");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->batch.rows()[0][0], Value::Int(120));
  }
  ASSERT_NE(gis.worker_pool(), nullptr);
  EXPECT_EQ(gis.worker_pool()->num_threads(), 2u);
  EXPECT_LE(gis.worker_pool()->peak_worker_tasks(), 2);
}

}  // namespace
}  // namespace gisql
