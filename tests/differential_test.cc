/// Differential testing: randomized predicates run through the full
/// mediator pipeline (bind → optimize → decompose → ship → execute) must
/// return exactly the rows that direct per-row evaluation over the
/// source's storage selects.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/global_system.h"
#include "expr/binder.h"
#include "expr/eval.h"
#include "sql/parser.h"

namespace gisql {
namespace {

/// Generates a random predicate over (k bigint, v double, s varchar,
/// d date) as SQL text.
std::string RandomPredicate(Rng& rng, int depth = 0) {
  const int pick = static_cast<int>(rng.Uniform(0, depth >= 2 ? 6 : 9));
  switch (pick) {
    case 0:
      return "k " + std::string(rng.Bernoulli(0.5) ? "<" : ">=") + " " +
             std::to_string(rng.Uniform(-10, 110));
    case 1:
      return "v " + std::string(rng.Bernoulli(0.5) ? "<=" : ">") + " " +
             std::to_string(rng.Uniform(0, 50)) + ".5";
    case 2:
      return "s LIKE '" + std::string(1, 'a' + char(rng.Uniform(0, 3))) +
             "%'";
    case 3:
      return "k IN (" + std::to_string(rng.Uniform(0, 99)) + ", " +
             std::to_string(rng.Uniform(0, 99)) + ")";
    case 4:
      return std::string("v IS ") + (rng.Bernoulli(0.5) ? "" : "NOT ") +
             "NULL";
    case 5:
      return "k BETWEEN " + std::to_string(rng.Uniform(0, 50)) + " AND " +
             std::to_string(rng.Uniform(50, 100));
    case 6:
      return "(" + RandomPredicate(rng, depth + 1) + " AND " +
             RandomPredicate(rng, depth + 1) + ")";
    case 7:
      return "(" + RandomPredicate(rng, depth + 1) + " OR " +
             RandomPredicate(rng, depth + 1) + ")";
    default:
      return "NOT (" + RandomPredicate(rng, depth + 1) + ")";
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, MediatorMatchesDirectEvaluation) {
  Rng rng(GetParam());
  GlobalSystem gis;
  // Alternate dialects so compensation paths get differential coverage.
  const SourceDialect dialect =
      GetParam() % 2 ? SourceDialect::kRelational : SourceDialect::kLegacy;
  auto src = *gis.CreateSource("s1", dialect);
  ASSERT_TRUE(src->ExecuteLocalSql(
                    "CREATE TABLE t (k bigint, v double, s varchar, "
                    "d date)")
                  .ok());
  auto table = *src->engine().GetTable("t");
  {
    std::vector<Row> rows;
    const int n = static_cast<int>(rng.Uniform(50, 400));
    for (int i = 0; i < n; ++i) {
      rows.push_back(
          {Value::Int(i),
           rng.Bernoulli(0.15) ? Value::Null(TypeId::kDouble)
                               : Value::Double(rng.Uniform(0, 50) + 0.25),
           Value::String(std::string(1, 'a' + char(rng.Uniform(0, 5))) +
                         rng.NextString(3)),
           Value::Date(rng.Uniform(6000, 8000))});
    }
    table->InsertUnchecked(std::move(rows));
  }
  ASSERT_TRUE(gis.ImportSource("s1").ok());

  Binder binder(*table->schema());
  for (int trial = 0; trial < 25; ++trial) {
    const std::string pred = RandomPredicate(rng);

    // Reference: direct evaluation over the source's storage.
    auto ast = sql::ParseScalarExpr(pred);
    ASSERT_TRUE(ast.ok()) << pred;
    auto bound = binder.BindScalar(**ast);
    ASSERT_TRUE(bound.ok()) << pred << ": " << bound.status().ToString();
    std::vector<int64_t> expected;
    for (const auto& row : table->rows()) {
      auto keep = EvalPredicate(**bound, row);
      ASSERT_TRUE(keep.ok()) << pred;
      if (*keep) expected.push_back(row[0].AsInt());
    }

    // System under test: the whole federated pipeline.
    auto result =
        gis.Query("SELECT k FROM t WHERE " + pred + " ORDER BY k");
    ASSERT_TRUE(result.ok()) << pred << ": "
                             << result.status().ToString();
    ASSERT_EQ(result->batch.num_rows(), expected.size()) << pred;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(result->batch.rows()[i][0].AsInt(), expected[i])
          << pred << " row " << i;
    }
  }
}

TEST_P(DifferentialTest, AggregatesMatchDirectEvaluation) {
  Rng rng(GetParam() + 5000);
  GlobalSystem gis;
  auto src = *gis.CreateSource("s1", SourceDialect::kRelational);
  ASSERT_TRUE(
      src->ExecuteLocalSql("CREATE TABLE t (k bigint, v double, g bigint)")
          .ok());
  auto table = *src->engine().GetTable("t");
  {
    std::vector<Row> rows;
    const int n = static_cast<int>(rng.Uniform(50, 500));
    for (int i = 0; i < n; ++i) {
      rows.push_back({Value::Int(i),
                      rng.Bernoulli(0.1)
                          ? Value::Null(TypeId::kDouble)
                          : Value::Double(rng.Uniform(0, 1000) * 0.125),
                      Value::Int(rng.Uniform(0, 7))});
    }
    table->InsertUnchecked(std::move(rows));
  }
  ASSERT_TRUE(gis.ImportSource("s1").ok());

  auto result = gis.Query(
      "SELECT g, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v), AVG(v) "
      "FROM t GROUP BY g ORDER BY g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Reference aggregation straight off the storage.
  std::map<int64_t, std::vector<double>> groups;
  std::map<int64_t, int64_t> totals;
  for (const auto& row : table->rows()) {
    const int64_t g = row[2].AsInt();
    ++totals[g];
    if (!row[1].is_null()) groups[g].push_back(row[1].AsDouble());
  }
  ASSERT_EQ(result->batch.num_rows(), totals.size());
  size_t r = 0;
  for (const auto& [g, count_star] : totals) {
    const auto& row = result->batch.rows()[r++];
    ASSERT_EQ(row[0].AsInt(), g);
    EXPECT_EQ(row[1].AsInt(), count_star);
    const auto& vals = groups[g];
    EXPECT_EQ(row[2].AsInt(), static_cast<int64_t>(vals.size()));
    if (vals.empty()) {
      EXPECT_TRUE(row[3].is_null());
      EXPECT_TRUE(row[4].is_null());
      EXPECT_TRUE(row[5].is_null());
      EXPECT_TRUE(row[6].is_null());
      continue;
    }
    double sum = 0, mn = vals[0], mx = vals[0];
    for (double v : vals) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_NEAR(row[3].AsDouble(), sum, 1e-6);
    EXPECT_DOUBLE_EQ(row[4].AsDouble(), mn);
    EXPECT_DOUBLE_EQ(row[5].AsDouble(), mx);
    EXPECT_NEAR(row[6].AsDouble(), sum / vals.size(), 1e-9);
  }
}

/// Streamed delivery is a transport, not a semantics change: for every
/// random predicate, the concatenation of a cursor's chunks must equal
/// the materialized result byte-for-byte (ToString over all rows), in
/// every execution configuration — serial and pooled execution, with
/// the columnar wire encoding on and off.
TEST_P(DifferentialTest, StreamedChunksConcatenateToMaterializedResult) {
  struct Config {
    bool parallel;
    bool columnar;
  };
  const Config configs[] = {
      {false, true}, {false, false}, {true, true}, {true, false}};

  for (const Config& config : configs) {
    Rng rng(GetParam() + 9000);  // same data in every configuration
    PlannerOptions options;
    options.parallel_execution = config.parallel;
    options.columnar_wire = config.columnar;
    GlobalSystem gis(options);
    auto src = *gis.CreateSource("s1", SourceDialect::kRelational);
    ASSERT_TRUE(src->ExecuteLocalSql(
                      "CREATE TABLE t (k bigint, v double, s varchar, "
                      "d date)")
                    .ok());
    auto table = *src->engine().GetTable("t");
    {
      std::vector<Row> rows;
      const int n = static_cast<int>(rng.Uniform(80, 300));
      for (int i = 0; i < n; ++i) {
        rows.push_back(
            {Value::Int(i),
             rng.Bernoulli(0.15)
                 ? Value::Null(TypeId::kDouble)
                 : Value::Double(rng.Uniform(0, 50) + 0.25),
             Value::String(std::string(1, 'a' + char(rng.Uniform(0, 5))) +
                           rng.NextString(3)),
             Value::Date(rng.Uniform(6000, 8000))});
      }
      table->InsertUnchecked(std::move(rows));
    }
    ASSERT_TRUE(gis.ImportSource("s1").ok());

    for (int trial = 0; trial < 8; ++trial) {
      // Alternate sorted (blocking → spooled cursor) and unsorted
      // (streamable pipeline; single-fragment order is deterministic)
      // shapes so both delivery paths get differential coverage.
      std::string sql =
          "SELECT k, v, s FROM t WHERE " + RandomPredicate(rng);
      if (trial % 2 == 0) sql += " ORDER BY k";
      auto want = gis.Query(sql);
      ASSERT_TRUE(want.ok()) << sql << ": " << want.status().ToString();

      GlobalSystem::CursorOptions copts;
      copts.chunk_rows = 1 + static_cast<int64_t>(rng.Uniform(0, 30));
      auto id = gis.OpenCursor(sql, copts);
      ASSERT_TRUE(id.ok()) << sql << ": " << id.status().ToString();
      RowBatch got;
      bool first = true;
      while (true) {
        auto chunk = gis.FetchChunk(*id);
        ASSERT_TRUE(chunk.ok()) << sql << ": "
                                << chunk.status().ToString();
        ASSERT_LE(chunk->batch.num_rows(),
                  static_cast<size_t>(copts.chunk_rows));
        if (first) {
          got = RowBatch(chunk->batch.schema());
          first = false;
        }
        for (const auto& row : chunk->batch.rows()) got.Append(row);
        if (chunk->done) break;
      }
      EXPECT_EQ(got.ToString(1 << 20), want->batch.ToString(1 << 20))
          << sql << " (parallel=" << config.parallel
          << " columnar=" << config.columnar
          << " chunk_rows=" << copts.chunk_rows << ")";
    }
    EXPECT_EQ(gis.cursors().OpenCount(), 0u);
    EXPECT_EQ(gis.governor().memory().in_use(), gis.BufferPoolResidentBytes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(700, 712));

}  // namespace
}  // namespace gisql
