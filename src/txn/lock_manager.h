/// \file lock_manager.h
/// \brief Source-local lock table: row/table intent locks for global
/// transactions.
///
/// Each autonomous ComponentSource owns one LockManager. Global
/// transactions take IX on the table plus X on each written row key at
/// PREPARE time; both are held until the mediator delivers COMMIT or
/// ABORT (strict two-phase locking at statement granularity). The
/// manager never blocks: a conflicting request returns `granted =
/// false` plus the holders, and the *mediator* decides — record a
/// waits-for edge, detect deadlocks on its global graph, retry or
/// abort. Keeping all waiting policy at the mediator preserves source
/// autonomy (a wrapper never parks a thread on another system's
/// transaction) and keeps the simulation single-threaded and
/// deterministic.
///
/// Modeled on the classic IS/IX/S/X compatibility matrix; row locks
/// key on the hash of the row's first (key) column, so INSERT and
/// DELETE of the same logical key conflict even before the row exists.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gisql {

/// \brief Lock strengths, weakest to strongest.
enum class LockMode : uint8_t {
  kIntentShared = 0,     ///< IS — intends S on contained rows
  kIntentExclusive = 1,  ///< IX — intends X on contained rows
  kShared = 2,           ///< S — whole-resource read
  kExclusive = 3,        ///< X — whole-resource write
};

const char* LockModeName(LockMode m);

/// \brief True when two modes held by *different* transactions may
/// coexist on the same resource.
bool LockModesCompatible(LockMode held, LockMode requested);

/// \brief Outcome of a lock request. When not granted, `holders` lists
/// the conflicting transaction ids (sorted, deduplicated) so the
/// mediator can build waits-for edges.
struct LockAcquisition {
  bool granted = false;
  std::vector<uint64_t> holders;
};

/// \brief Non-blocking lock table for one component source.
class LockManager {
 public:
  /// \brief Table-level lock (IS/IX for row work, S/X for whole-table).
  LockAcquisition LockTable(uint64_t txn_id, const std::string& table,
                            LockMode mode);

  /// \brief Row-level lock keyed by the hash of the row's key column.
  LockAcquisition LockRow(uint64_t txn_id, const std::string& table,
                          uint64_t key_hash, LockMode mode);

  /// \brief Drops every lock `txn_id` holds (commit or abort).
  void ReleaseAll(uint64_t txn_id);

  /// \brief Locks currently held by `txn_id` (tests/monitoring).
  size_t HeldBy(uint64_t txn_id) const;

  /// \brief Distinct locked resources (tests/monitoring).
  size_t LockedResources() const { return locks_.size(); }

 private:
  LockAcquisition Acquire(uint64_t txn_id, const std::string& resource,
                          LockMode mode);

  /// resource name → holder txn id → strongest mode held.
  std::map<std::string, std::map<uint64_t, LockMode>> locks_;
  /// txn id → resources it holds (for O(held) release).
  std::map<uint64_t, std::vector<std::string>> held_;
};

}  // namespace gisql
