/// \file transaction_manager.h
/// \brief Mediator-side coordinator for distributed snapshot isolation.
///
/// The mediator owns the global timestamp domain: Begin hands out a
/// snapshot timestamp (the newest committed timestamp), Commit
/// allocates the next one. Component sources stamp committed row
/// versions with [begin_ts, end_ts) from these timestamps, so a
/// transaction reading at snapshot S sees exactly the rows with
/// begin_ts <= S < end_ts — repeatable reads across autonomous
/// sources without blocking writers (DESIGN.md "Concurrency control").
///
/// The manager also keeps the *global* waits-for graph. Sources never
/// wait (their LockManager answers conflict-or-grant immediately); the
/// mediator records waiter → holder edges from conflict reports,
/// detects cycles by DFS, and deterministically picks the youngest
/// participant (highest txn id) as the victim — ids come from a
/// monotonic per-system counter, so same-seed replays abort the same
/// transactions.
///
/// The watermark is the oldest timestamp any live reader (active
/// transaction or pinned cursor snapshot) could still observe;
/// versions that died at or before it are unreachable and safe to
/// garbage-collect at the sources.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace gisql {

enum class TxnState : uint8_t { kActive = 0, kCommitted = 1, kAborted = 2 };

const char* TxnStateName(TxnState s);

/// \brief Coordinator bookkeeping for one global transaction.
struct TxnInfo {
  uint64_t id = 0;
  TxnState state = TxnState::kActive;
  uint64_t snapshot_ts = 0;  ///< reads observe commits <= this
  uint64_t commit_ts = 0;    ///< 0 until committed
  int64_t statements = 0;    ///< writes prepared + snapshot reads run
  std::set<std::string> participants;  ///< sources holding staged writes
  int64_t lock_waits = 0;    ///< conflict reports received
  std::string abort_reason;  ///< empty unless aborted
  double begin_ms = 0.0;     ///< simulated clock at Begin
  double end_ms = 0.0;       ///< simulated clock at Commit/Abort
};

/// \brief Monotonic cumulative counters (exported as gisql_txn_*).
struct TxnCounters {
  int64_t started = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t deadlocks = 0;   ///< cycles resolved by aborting a victim
  int64_t lock_waits = 0;  ///< conflict reports across all txns
};

class TransactionManager {
 public:
  /// \brief Opens a transaction reading at the newest committed
  /// timestamp. Ids are monotonic from 1; the returned reference stays
  /// valid until the transaction leaves the active set.
  TxnInfo& Begin(double now_ms);

  /// \brief The active transaction `id`, or InvalidArgument naming its
  /// terminal state (with the abort reason) when it already finished.
  Result<TxnInfo*> GetActive(uint64_t id);

  /// \brief Allocates the commit timestamp (advances the domain).
  uint64_t AllocateCommitTs() { return ++ts_counter_; }

  /// \brief Moves an active transaction to the finished ring as
  /// committed and clears its waits-for edges.
  void MarkCommitted(uint64_t id, uint64_t commit_ts, double now_ms);

  /// \brief Same, as aborted with a reason.
  void MarkAborted(uint64_t id, const std::string& reason, double now_ms);

  /// \name Snapshot watermark
  /// @{

  /// \brief Oldest snapshot any live reader could still observe: the
  /// minimum over active transactions and pinned cursor snapshots, or
  /// the current timestamp when nothing is live. Versions with
  /// end_ts <= watermark are invisible to every present and future
  /// snapshot (new snapshots only move forward) and may be collected.
  uint64_t Watermark() const;

  /// \brief Pins the current timestamp on behalf of a long-lived
  /// reader (an open cursor); returns the pinned value. The watermark
  /// cannot pass a pin until UnpinSnapshot releases it.
  uint64_t PinSnapshot();
  void UnpinSnapshot(uint64_t ts);
  size_t pinned_snapshots() const { return pins_.size(); }
  /// @}

  /// \name Waits-for graph (deadlock detection)
  /// @{

  /// \brief Records waiter → holder edges from one conflict report.
  void OnConflict(uint64_t waiter, const std::vector<uint64_t>& holders);

  /// \brief Drops the waiter's outgoing edges (it was granted, gave
  /// up, or ended).
  void ClearWaits(uint64_t waiter);

  /// \brief DFS from `from`; when a cycle through `from` exists,
  /// returns the deterministic victim — the highest (youngest) txn id
  /// on the cycle — and counts a deadlock. Returns 0 when acyclic.
  uint64_t DetectCycleVictim(uint64_t from);
  /// @}

  /// \brief All transactions — active plus the bounded finished ring —
  /// sorted by id (the gis.transactions order).
  std::vector<TxnInfo> Snapshot() const;

  uint64_t current_ts() const { return ts_counter_; }
  size_t active_count() const { return active_.size(); }
  const TxnCounters& counters() const { return counters_; }
  void CountLockWait() { ++counters_.lock_waits; }

  /// \brief Finished transactions retained for gis.transactions.
  static constexpr size_t kMaxFinishedRetained = 256;

 private:
  void Finish(uint64_t id, TxnState state, uint64_t commit_ts,
              const std::string& reason, double now_ms);

  uint64_t next_id_ = 0;
  /// Timestamp domain; starts at 1 so a transactional snapshot is
  /// never 0 (0 on the wire means "read latest committed").
  uint64_t ts_counter_ = 1;
  std::map<uint64_t, TxnInfo> active_;
  std::deque<TxnInfo> finished_;
  std::multiset<uint64_t> pins_;
  std::map<uint64_t, std::set<uint64_t>> waits_for_;
  TxnCounters counters_;
};

}  // namespace gisql
