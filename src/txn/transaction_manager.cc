#include "txn/transaction_manager.h"

#include <algorithm>

namespace gisql {

const char* TxnStateName(TxnState s) {
  switch (s) {
    case TxnState::kActive:
      return "active";
    case TxnState::kCommitted:
      return "committed";
    case TxnState::kAborted:
      return "aborted";
  }
  return "?";
}

TxnInfo& TransactionManager::Begin(double now_ms) {
  TxnInfo t;
  t.id = ++next_id_;
  t.snapshot_ts = ts_counter_;
  t.begin_ms = now_ms;
  ++counters_.started;
  auto [it, inserted] = active_.emplace(t.id, std::move(t));
  (void)inserted;
  return it->second;
}

Result<TxnInfo*> TransactionManager::GetActive(uint64_t id) {
  auto it = active_.find(id);
  if (it != active_.end()) return &it->second;
  // Finished? Name the terminal state so callers learn they were e.g.
  // chosen as a deadlock victim by someone else's write.
  for (auto rit = finished_.rbegin(); rit != finished_.rend(); ++rit) {
    if (rit->id != id) continue;
    if (rit->state == TxnState::kAborted) {
      return Status::InvalidArgument("transaction ", id,
                                     " was aborted: ", rit->abort_reason);
    }
    return Status::InvalidArgument("transaction ", id, " already committed");
  }
  return Status::InvalidArgument("transaction ", id,
                                 " is not an active transaction");
}

void TransactionManager::Finish(uint64_t id, TxnState state,
                                uint64_t commit_ts, const std::string& reason,
                                double now_ms) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  TxnInfo t = std::move(it->second);
  active_.erase(it);
  t.state = state;
  t.commit_ts = commit_ts;
  t.abort_reason = reason;
  t.end_ms = now_ms;
  finished_.push_back(std::move(t));
  if (finished_.size() > kMaxFinishedRetained) finished_.pop_front();
  // The transaction can no longer wait on anyone, and nobody gains by
  // keeping stale edges toward it (waiters re-report on retry).
  waits_for_.erase(id);
  for (auto& [waiter, holders] : waits_for_) holders.erase(id);
}

void TransactionManager::MarkCommitted(uint64_t id, uint64_t commit_ts,
                                       double now_ms) {
  ++counters_.committed;
  Finish(id, TxnState::kCommitted, commit_ts, "", now_ms);
}

void TransactionManager::MarkAborted(uint64_t id, const std::string& reason,
                                     double now_ms) {
  ++counters_.aborted;
  Finish(id, TxnState::kAborted, 0, reason, now_ms);
}

uint64_t TransactionManager::Watermark() const {
  uint64_t w = ts_counter_;
  for (const auto& [id, t] : active_) w = std::min(w, t.snapshot_ts);
  if (!pins_.empty()) w = std::min(w, *pins_.begin());
  return w;
}

uint64_t TransactionManager::PinSnapshot() {
  pins_.insert(ts_counter_);
  return ts_counter_;
}

void TransactionManager::UnpinSnapshot(uint64_t ts) {
  auto it = pins_.find(ts);
  if (it != pins_.end()) pins_.erase(it);
}

void TransactionManager::OnConflict(uint64_t waiter,
                                    const std::vector<uint64_t>& holders) {
  auto& edges = waits_for_[waiter];
  for (uint64_t h : holders) {
    if (h != waiter) edges.insert(h);
  }
}

void TransactionManager::ClearWaits(uint64_t waiter) {
  waits_for_.erase(waiter);
}

uint64_t TransactionManager::DetectCycleVictim(uint64_t from) {
  // Iterative DFS over the (small) waits-for graph looking for a path
  // from `from` back to itself. std::set edges make visit order — and
  // therefore the discovered cycle — deterministic.
  std::vector<uint64_t> path{from};
  std::set<uint64_t> on_path{from};
  std::set<uint64_t> done;
  // frame: (node, iterator position into its edge set by index)
  struct Frame {
    uint64_t node;
    std::set<uint64_t>::const_iterator next;
    std::set<uint64_t>::const_iterator end;
  };
  std::vector<Frame> stack;
  auto push = [&](uint64_t node) {
    auto it = waits_for_.find(node);
    if (it == waits_for_.end()) {
      stack.push_back({node, {}, {}});
      stack.back().next = stack.back().end;
    } else {
      stack.push_back({node, it->second.begin(), it->second.end()});
    }
  };
  push(from);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next == f.end) {
      done.insert(f.node);
      on_path.erase(f.node);
      if (!path.empty() && path.back() == f.node) path.pop_back();
      stack.pop_back();
      continue;
    }
    const uint64_t nxt = *f.next;
    ++f.next;
    if (nxt == from) {
      // Cycle: every node currently on the DFS path participates.
      uint64_t victim = from;
      for (uint64_t n : path) victim = std::max(victim, n);
      ++counters_.deadlocks;
      return victim;
    }
    if (on_path.count(nxt) || done.count(nxt)) continue;
    on_path.insert(nxt);
    path.push_back(nxt);
    push(nxt);
  }
  return 0;
}

std::vector<TxnInfo> TransactionManager::Snapshot() const {
  std::vector<TxnInfo> out;
  out.reserve(active_.size() + finished_.size());
  for (const auto& [id, t] : active_) out.push_back(t);
  for (const auto& t : finished_) out.push_back(t);
  std::sort(out.begin(), out.end(),
            [](const TxnInfo& a, const TxnInfo& b) { return a.id < b.id; });
  return out;
}

}  // namespace gisql
