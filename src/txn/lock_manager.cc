#include "txn/lock_manager.h"

#include <algorithm>

namespace gisql {

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kIntentShared:
      return "IS";
    case LockMode::kIntentExclusive:
      return "IX";
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

bool LockModesCompatible(LockMode held, LockMode requested) {
  // Classic matrix:          IS    IX    S     X
  //                    IS    yes   yes   yes   no
  //                    IX    yes   yes   no    no
  //                    S     yes   no    yes   no
  //                    X     no    no    no    no
  if (held == LockMode::kExclusive || requested == LockMode::kExclusive) {
    return false;
  }
  if (held == LockMode::kIntentShared || requested == LockMode::kIntentShared) {
    return true;
  }
  // Remaining pairs are over {IX, S}: IX/IX and S/S coexist, IX/S not.
  return held == requested;
}

LockAcquisition LockManager::LockTable(uint64_t txn_id,
                                       const std::string& table,
                                       LockMode mode) {
  return Acquire(txn_id, "t:" + table, mode);
}

LockAcquisition LockManager::LockRow(uint64_t txn_id, const std::string& table,
                                     uint64_t key_hash, LockMode mode) {
  return Acquire(txn_id, "r:" + table + "#" + std::to_string(key_hash), mode);
}

LockAcquisition LockManager::Acquire(uint64_t txn_id,
                                     const std::string& resource,
                                     LockMode mode) {
  auto& holders = locks_[resource];
  LockAcquisition out;
  for (const auto& [holder, held_mode] : holders) {
    if (holder == txn_id) continue;  // own lock never conflicts
    if (!LockModesCompatible(held_mode, mode)) out.holders.push_back(holder);
  }
  if (!out.holders.empty()) {
    // Not granted; leave the table untouched (the entry may have been
    // created empty above — harmless, and erased on next ReleaseAll
    // sweep of the resource).
    if (holders.empty()) locks_.erase(resource);
    std::sort(out.holders.begin(), out.holders.end());
    out.holders.erase(std::unique(out.holders.begin(), out.holders.end()),
                      out.holders.end());
    return out;
  }
  auto it = holders.find(txn_id);
  if (it == holders.end()) {
    holders.emplace(txn_id, mode);
    held_[txn_id].push_back(resource);
  } else if (static_cast<int>(mode) > static_cast<int>(it->second)) {
    it->second = mode;  // in-place upgrade (re-acquire is idempotent)
  }
  out.granted = true;
  return out;
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  auto it = held_.find(txn_id);
  if (it == held_.end()) return;
  for (const std::string& resource : it->second) {
    auto lock_it = locks_.find(resource);
    if (lock_it == locks_.end()) continue;
    lock_it->second.erase(txn_id);
    if (lock_it->second.empty()) locks_.erase(lock_it);
  }
  held_.erase(it);
}

size_t LockManager::HeldBy(uint64_t txn_id) const {
  auto it = held_.find(txn_id);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace gisql
