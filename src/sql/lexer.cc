#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/string_util.h"

namespace gisql {
namespace sql {

namespace {
const std::unordered_set<std::string>& KeywordSet() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
      "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "IN", "BETWEEN",
      "LIKE", "IS", "NULL", "TRUE", "FALSE", "JOIN", "INNER", "LEFT",
      "RIGHT", "OUTER", "CROSS", "ON", "ASC", "DESC", "DISTINCT",
      "COUNT", "SUM", "AVG", "MIN", "MAX", "CASE", "WHEN", "THEN",
      "ELSE", "END", "CREATE", "TABLE", "INSERT", "INTO", "VALUES",
      "EXPLAIN", "ANALYZE", "UNION", "ALL", "CAST", "DATE", "DELETE",
      "DROP",
  };
  return kKeywords;
}
}  // namespace

bool IsSqlKeyword(const std::string& upper_word) {
  return KeywordSet().count(upper_word) > 0;
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kEnd: return "end of input";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kKeyword: return "keyword";
    case TokenType::kIntLiteral: return "integer literal";
    case TokenType::kDoubleLiteral: return "double literal";
    case TokenType::kStringLiteral: return "string literal";
    case TokenType::kComma: return "','";
    case TokenType::kDot: return "'.'";
    case TokenType::kStar: return "'*'";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kPercent: return "'%'";
    case TokenType::kEq: return "'='";
    case TokenType::kNe: return "'<>'";
    case TokenType::kLt: return "'<'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGe: return "'>='";
    case TokenType::kSemicolon: return "';'";
  }
  return "?";
}

void Lexer::SkipWhitespaceAndComments() {
  while (pos_ < input_.size()) {
    const char c = input_[pos_];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '-' && Peek(1) == '-') {
      while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
    } else {
      break;
    }
  }
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  Token tok;
  tok.offset = pos_;
  if (pos_ >= input_.size()) {
    tok.type = TokenType::kEnd;
    return tok;
  }
  const char c = input_[pos_];

  // Identifiers / keywords.
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    std::string word = input_.substr(start, pos_ - start);
    const std::string upper = ToUpper(word);
    if (IsSqlKeyword(upper)) {
      tok.type = TokenType::kKeyword;
      tok.text = upper;
    } else {
      tok.type = TokenType::kIdentifier;
      tok.text = std::move(word);
    }
    return tok;
  }

  // Quoted identifier.
  if (c == '"') {
    ++pos_;
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != '"') ++pos_;
    if (pos_ >= input_.size()) {
      return Status::ParseError("unterminated quoted identifier at offset ",
                                tok.offset);
    }
    tok.type = TokenType::kIdentifier;
    tok.text = input_.substr(start, pos_ - start);
    ++pos_;
    return tok;
  }

  // Numeric literals.
  if (std::isdigit(static_cast<unsigned char>(c))) {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      ++pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = pos_;
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_double = true;
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
      } else {
        pos_ = save;
      }
    }
    const std::string text = input_.substr(start, pos_ - start);
    if (is_double) {
      tok.type = TokenType::kDoubleLiteral;
      tok.double_value = std::strtod(text.c_str(), nullptr);
    } else {
      tok.type = TokenType::kIntLiteral;
      errno = 0;
      tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        return Status::ParseError("integer literal out of range: ", text);
      }
    }
    tok.text = text;
    return tok;
  }

  // String literals with '' escaping.
  if (c == '\'') {
    ++pos_;
    std::string out;
    while (pos_ < input_.size()) {
      if (input_[pos_] == '\'') {
        if (Peek(1) == '\'') {
          out += '\'';
          pos_ += 2;
          continue;
        }
        ++pos_;
        tok.type = TokenType::kStringLiteral;
        tok.text = std::move(out);
        return tok;
      }
      out += input_[pos_++];
    }
    return Status::ParseError("unterminated string literal at offset ",
                              tok.offset);
  }

  // Operators and punctuation.
  auto single = [&](TokenType t) {
    tok.type = t;
    ++pos_;
    return tok;
  };
  switch (c) {
    case ',': return single(TokenType::kComma);
    case '.': return single(TokenType::kDot);
    case '*': return single(TokenType::kStar);
    case '(': return single(TokenType::kLParen);
    case ')': return single(TokenType::kRParen);
    case '+': return single(TokenType::kPlus);
    case '-': return single(TokenType::kMinus);
    case '/': return single(TokenType::kSlash);
    case '%': return single(TokenType::kPercent);
    case ';': return single(TokenType::kSemicolon);
    case '=': return single(TokenType::kEq);
    case '<':
      ++pos_;
      if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kLe;
      } else if (Peek() == '>') {
        ++pos_;
        tok.type = TokenType::kNe;
      } else {
        tok.type = TokenType::kLt;
      }
      return tok;
    case '>':
      ++pos_;
      if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kGe;
      } else {
        tok.type = TokenType::kGt;
      }
      return tok;
    case '!':
      if (Peek(1) == '=') {
        pos_ += 2;
        tok.type = TokenType::kNe;
        return tok;
      }
      break;
    default: break;
  }
  return Status::ParseError("unexpected character '", std::string(1, c),
                            "' at offset ", pos_);
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  while (true) {
    GISQL_ASSIGN_OR_RETURN(Token tok, Next());
    const bool end = tok.type == TokenType::kEnd;
    out.push_back(std::move(tok));
    if (end) break;
  }
  return out;
}

}  // namespace sql
}  // namespace gisql
