/// \file parser.h
/// \brief Recursive-descent parser for the gisql SQL subset.
///
/// Supported grammar (keywords case-insensitive):
///
///   statement   := EXPLAIN? select | create_table | insert
///   select      := select_core (UNION ALL select_core)*
///                  [ORDER BY order_list] [LIMIT int [OFFSET int]]
///   select_core := SELECT [DISTINCT] select_list
///                  [FROM table_ref (join_clause)*]
///                  [WHERE expr] [GROUP BY expr_list] [HAVING expr]
///   table_ref   := ident [AS? ident] | '(' select ')' AS? ident
///   join_clause := [INNER|LEFT [OUTER]|CROSS] JOIN table_ref [ON expr]
///                | ',' table_ref                       (cross product)
///   expr        := OR-precedence expression with AND, NOT, comparisons,
///                  LIKE / IN / BETWEEN / IS NULL, + - * / %, unary -,
///                  CASE WHEN, CAST(e AS type), function calls,
///                  aggregates COUNT/SUM/AVG/MIN/MAX (with DISTINCT).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace gisql {
namespace sql {

/// \brief Parses one SQL statement.
Result<Statement> ParseStatement(const std::string& input);

/// \brief Convenience: parses a statement that must be a SELECT.
Result<SelectStmtPtr> ParseSelect(const std::string& input);

/// \brief Parses a standalone scalar expression (used in tests and by
/// source-side filter specifications).
Result<ParseExprPtr> ParseScalarExpr(const std::string& input);

namespace internal {

/// \brief Token-stream parser; exposed for white-box tests.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();
  Result<SelectStmtPtr> ParseSelectStmt();
  /// One UNION ALL term: SELECT core without ORDER BY/LIMIT/UNION.
  Result<SelectStmtPtr> ParseSelectCore();
  Result<ParseExprPtr> ParseExpr();

  /// \brief Fails unless all input was consumed.
  Status ExpectEnd();

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenType t);
  bool MatchKeyword(const char* kw);
  Status Expect(TokenType t, const char* context);
  Status ExpectKeyword(const char* kw, const char* context);
  Status ErrorHere(const std::string& msg) const;

  Result<TableRefPtr> ParseFromClause();
  Result<TableRefPtr> ParseTableRef();
  Result<ParseExprPtr> ParseOr();
  Result<ParseExprPtr> ParseAnd();
  Result<ParseExprPtr> ParseNot();
  Result<ParseExprPtr> ParseComparison();
  Result<ParseExprPtr> ParseAdditive();
  Result<ParseExprPtr> ParseMultiplicative();
  Result<ParseExprPtr> ParseUnary();
  Result<ParseExprPtr> ParsePrimary();
  Result<ParseExprPtr> ParseFuncCallOrColumn();
  Result<Statement> ParseCreateTable();
  Result<Statement> ParseInsert();
  Result<Statement> ParseDelete();
  Result<Statement> ParseDropTable();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace internal
}  // namespace sql
}  // namespace gisql
