/// \file token.h
/// \brief Token model for the SQL lexer.

#pragma once

#include <cstdint>
#include <string>

namespace gisql {
namespace sql {

enum class TokenType : uint8_t {
  kEnd,
  kIdentifier,   ///< bare or "quoted" identifier
  kKeyword,      ///< recognized SQL keyword (text kept upper-cased)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  // operators / punctuation
  kComma, kDot, kStar, kLParen, kRParen,
  kPlus, kMinus, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kSemicolon,
};

/// \brief One lexed token with its source offset (for diagnostics).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       ///< identifier/keyword/literal text
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;

  bool IsKeyword(const char* kw) const;
};

const char* TokenTypeName(TokenType t);

}  // namespace sql
}  // namespace gisql
