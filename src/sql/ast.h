/// \file ast.h
/// \brief Untyped parse tree produced by the SQL parser; the binder
/// (expr/binder.h, core/mediator) turns it into typed expressions and
/// logical plans.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace gisql {
namespace sql {

struct ParseExpr;
using ParseExprPtr = std::unique_ptr<ParseExpr>;

enum class ParseExprKind : uint8_t {
  kLiteral,     ///< value
  kColumnRef,   ///< qualifier.name (qualifier may be empty)
  kStar,        ///< '*' or 'alias.*' — only in select list / COUNT(*)
  kUnaryMinus,  ///< -child
  kNot,         ///< NOT child
  kBinary,      ///< op, children[0..1]
  kIsNull,      ///< child IS [NOT] NULL (negated flag)
  kLike,        ///< children[0] [NOT] LIKE children[1]
  kIn,          ///< children[0] [NOT] IN (children[1..])
  kBetween,     ///< children[0] BETWEEN children[1] AND children[2]
  kFuncCall,    ///< name(args...), incl. aggregates; distinct flag
  kCase,        ///< WHEN/THEN pairs then optional ELSE, flattened
  kCast,        ///< CAST(children[0] AS target_type_name)
  kInSubquery,  ///< children[0] IN (SELECT ...), see `subquery`
};

/// \brief Parser-level binary operators (typed ops live in expr/expr.h).
enum class ParseBinaryOp : uint8_t {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
};

const char* ParseBinaryOpName(ParseBinaryOp op);

/// \brief One node of the untyped expression tree.
struct SelectStmt;

struct ParseExpr {
  ParseExprKind kind;

  Value literal;                     ///< kLiteral
  std::string qualifier;             ///< kColumnRef / kStar
  std::string name;                  ///< kColumnRef / kFuncCall / kCast type
  ParseBinaryOp op = ParseBinaryOp::kEq;  ///< kBinary
  bool negated = false;              ///< kIsNull / kLike / kIn
  bool distinct = false;             ///< kFuncCall (aggregate DISTINCT)
  bool has_else = false;             ///< kCase
  std::vector<ParseExprPtr> children;
  /// kInSubquery: the inner SELECT. Shared because parse trees are
  /// immutable after parsing, so clones may alias it.
  std::shared_ptr<SelectStmt> subquery;

  explicit ParseExpr(ParseExprKind k) : kind(k) {}

  /// \brief Deep copy.
  ParseExprPtr Clone() const;

  /// \brief Round-trippable SQL-ish rendering (for diagnostics).
  std::string ToString() const;
};

struct SelectStmt;
using SelectStmtPtr = std::unique_ptr<SelectStmt>;

/// \brief FROM-clause item: named table, derived table, or join.
struct TableRef {
  enum class Kind : uint8_t { kNamed, kDerived, kJoin } kind = Kind::kNamed;

  // kNamed
  std::string table_name;
  std::string alias;  // also used by kDerived

  // kDerived
  SelectStmtPtr derived;

  // kJoin
  enum class JoinType : uint8_t { kInner, kLeft, kCross } join_type =
      JoinType::kInner;
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  ParseExprPtr on_condition;  // null for CROSS

  std::string ToString() const;
};
using TableRefPtr = std::unique_ptr<TableRef>;

struct SelectItem {
  ParseExprPtr expr;
  std::string alias;
};

struct OrderByItem {
  ParseExprPtr expr;
  bool ascending = true;
};

/// \brief A (possibly nested) SELECT statement.
///
/// `union_all_terms` holds further SELECT cores chained with UNION ALL;
/// when present, this statement's ORDER BY / LIMIT / OFFSET apply to the
/// whole union (standard SQL), while each term keeps its own WHERE /
/// GROUP BY / DISTINCT.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRefPtr from;  ///< null => SELECT of constants
  ParseExprPtr where;
  std::vector<ParseExprPtr> group_by;
  ParseExprPtr having;
  std::vector<SelectStmtPtr> union_all_terms;
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;   ///< -1 = none
  int64_t offset = 0;

  std::string ToString() const;
};

/// \brief CREATE TABLE name (col type, ...) — used by source-local DDL.
struct CreateTableStmt {
  std::string table_name;
  std::vector<std::pair<std::string, std::string>> columns;  // name, type
};

/// \brief INSERT INTO name VALUES (...), (...) — source-local DML.
struct InsertStmt {
  std::string table_name;
  std::vector<std::vector<ParseExprPtr>> rows;
};

/// \brief DELETE FROM name [WHERE expr] — source-local DML.
struct DeleteStmt {
  std::string table_name;
  ParseExprPtr where;  ///< null = delete every row
};

/// \brief DROP TABLE name — source-local DDL (used by the advisor when
/// it evicts a materialized replica from a source).
struct DropTableStmt {
  std::string table_name;
};

/// \brief Top-level statement.
struct Statement {
  enum class Kind : uint8_t {
    kSelect,
    kCreateTable,
    kInsert,
    kExplain,
    kExplainAnalyze,  ///< EXPLAIN ANALYZE: execute and report actuals
    kDelete,
    kDropTable,
  };
  Kind kind = Kind::kSelect;
  SelectStmtPtr select;              ///< kSelect / kExplain
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<DeleteStmt> del;   ///< kDelete
  std::unique_ptr<DropTableStmt> drop_table;
};

}  // namespace sql
}  // namespace gisql
