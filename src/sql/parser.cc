#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"
#include "types/datetime.h"

namespace gisql {
namespace sql {
namespace internal {

bool Parser::Match(TokenType t) {
  if (Peek().type == t) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType t, const char* context) {
  if (Peek().type != t) {
    return ErrorHere(std::string("expected ") + TokenTypeName(t) + " " +
                     context);
  }
  Advance();
  return Status::OK();
}

Status Parser::ExpectKeyword(const char* kw, const char* context) {
  if (!Peek().IsKeyword(kw)) {
    return ErrorHere(std::string("expected ") + kw + " " + context);
  }
  Advance();
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& msg) const {
  const Token& t = Peek();
  std::string got = t.type == TokenType::kEnd
                        ? "end of input"
                        : (t.text.empty() ? TokenTypeName(t.type) : t.text);
  return Status::ParseError(msg, ", got '", got, "' at offset ", t.offset);
}

Status Parser::ExpectEnd() {
  Match(TokenType::kSemicolon);
  if (Peek().type != TokenType::kEnd) {
    return ErrorHere("expected end of statement");
  }
  return Status::OK();
}

Result<Statement> Parser::ParseStatement() {
  if (Peek().IsKeyword("EXPLAIN")) {
    Advance();
    Statement stmt;
    stmt.kind = MatchKeyword("ANALYZE") ? Statement::Kind::kExplainAnalyze
                                        : Statement::Kind::kExplain;
    GISQL_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
    GISQL_RETURN_NOT_OK(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("SELECT")) {
    Statement stmt;
    stmt.kind = Statement::Kind::kSelect;
    GISQL_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
    GISQL_RETURN_NOT_OK(ExpectEnd());
    return stmt;
  }
  if (Peek().IsKeyword("CREATE")) return ParseCreateTable();
  if (Peek().IsKeyword("INSERT")) return ParseInsert();
  if (Peek().IsKeyword("DELETE")) return ParseDelete();
  if (Peek().IsKeyword("DROP")) return ParseDropTable();
  return ErrorHere(
      "expected SELECT, EXPLAIN, CREATE TABLE, INSERT, DELETE or DROP TABLE");
}

Result<Statement> Parser::ParseCreateTable() {
  GISQL_RETURN_NOT_OK(ExpectKeyword("CREATE", "at statement start"));
  GISQL_RETURN_NOT_OK(ExpectKeyword("TABLE", "after CREATE"));
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  auto create = std::make_unique<CreateTableStmt>();
  create->table_name = Advance().text;
  GISQL_RETURN_NOT_OK(Expect(TokenType::kLParen, "after table name"));
  while (true) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column name");
    }
    std::string col = Advance().text;
    // Type names may lex as identifiers or (for e.g. none currently)
    // keywords; accept both.
    if (Peek().type != TokenType::kIdentifier &&
        Peek().type != TokenType::kKeyword) {
      return ErrorHere("expected column type");
    }
    std::string type = Advance().text;
    create->columns.emplace_back(std::move(col), std::move(type));
    if (Match(TokenType::kComma)) continue;
    break;
  }
  GISQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "after column list"));
  GISQL_RETURN_NOT_OK(ExpectEnd());
  Statement stmt;
  stmt.kind = Statement::Kind::kCreateTable;
  stmt.create_table = std::move(create);
  return stmt;
}

Result<Statement> Parser::ParseInsert() {
  GISQL_RETURN_NOT_OK(ExpectKeyword("INSERT", "at statement start"));
  GISQL_RETURN_NOT_OK(ExpectKeyword("INTO", "after INSERT"));
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  auto insert = std::make_unique<InsertStmt>();
  insert->table_name = Advance().text;
  GISQL_RETURN_NOT_OK(ExpectKeyword("VALUES", "after table name"));
  while (true) {
    GISQL_RETURN_NOT_OK(Expect(TokenType::kLParen, "before row values"));
    std::vector<ParseExprPtr> row;
    while (true) {
      GISQL_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpr());
      row.push_back(std::move(e));
      if (Match(TokenType::kComma)) continue;
      break;
    }
    GISQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "after row values"));
    insert->rows.push_back(std::move(row));
    if (Match(TokenType::kComma)) continue;
    break;
  }
  GISQL_RETURN_NOT_OK(ExpectEnd());
  Statement stmt;
  stmt.kind = Statement::Kind::kInsert;
  stmt.insert = std::move(insert);
  return stmt;
}

Result<Statement> Parser::ParseDelete() {
  GISQL_RETURN_NOT_OK(ExpectKeyword("DELETE", "at statement start"));
  GISQL_RETURN_NOT_OK(ExpectKeyword("FROM", "after DELETE"));
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  auto del = std::make_unique<DeleteStmt>();
  del->table_name = Advance().text;
  if (MatchKeyword("WHERE")) {
    GISQL_ASSIGN_OR_RETURN(del->where, ParseExpr());
  }
  GISQL_RETURN_NOT_OK(ExpectEnd());
  Statement stmt;
  stmt.kind = Statement::Kind::kDelete;
  stmt.del = std::move(del);
  return stmt;
}

Result<Statement> Parser::ParseDropTable() {
  GISQL_RETURN_NOT_OK(ExpectKeyword("DROP", "at statement start"));
  GISQL_RETURN_NOT_OK(ExpectKeyword("TABLE", "after DROP"));
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  auto drop = std::make_unique<DropTableStmt>();
  drop->table_name = Advance().text;
  GISQL_RETURN_NOT_OK(ExpectEnd());
  Statement stmt;
  stmt.kind = Statement::Kind::kDropTable;
  stmt.drop_table = std::move(drop);
  return stmt;
}

Result<SelectStmtPtr> Parser::ParseSelectStmt() {
  GISQL_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelectCore());
  while (Peek().IsKeyword("UNION")) {
    Advance();
    GISQL_RETURN_NOT_OK(ExpectKeyword("ALL", "after UNION (only UNION ALL "
                                             "is supported)"));
    GISQL_ASSIGN_OR_RETURN(SelectStmtPtr term, ParseSelectCore());
    stmt->union_all_terms.push_back(std::move(term));
  }
  if (Peek().IsKeyword("ORDER")) {
    Advance();
    GISQL_RETURN_NOT_OK(ExpectKeyword("BY", "after ORDER"));
    while (true) {
      OrderByItem item;
      GISQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
      if (Match(TokenType::kComma)) continue;
      break;
    }
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return ErrorHere("expected integer after LIMIT");
    }
    stmt->limit = Advance().int_value;
    if (MatchKeyword("OFFSET")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return ErrorHere("expected integer after OFFSET");
      }
      stmt->offset = Advance().int_value;
    }
  }
  return stmt;
}

Result<SelectStmtPtr> Parser::ParseSelectCore() {
  GISQL_RETURN_NOT_OK(ExpectKeyword("SELECT", "at query start"));
  auto stmt = std::make_unique<SelectStmt>();
  stmt->distinct = MatchKeyword("DISTINCT");

  // Select list.
  while (true) {
    SelectItem item;
    GISQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (MatchKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected alias after AS");
      }
      item.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      item.alias = Advance().text;
    }
    stmt->items.push_back(std::move(item));
    if (Match(TokenType::kComma)) continue;
    break;
  }

  if (MatchKeyword("FROM")) {
    GISQL_ASSIGN_OR_RETURN(stmt->from, ParseFromClause());
  }
  if (MatchKeyword("WHERE")) {
    GISQL_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (Peek().IsKeyword("GROUP")) {
    Advance();
    GISQL_RETURN_NOT_OK(ExpectKeyword("BY", "after GROUP"));
    while (true) {
      GISQL_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
      if (Match(TokenType::kComma)) continue;
      break;
    }
  }
  if (MatchKeyword("HAVING")) {
    GISQL_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  return stmt;
}

Result<TableRefPtr> Parser::ParseFromClause() {
  GISQL_ASSIGN_OR_RETURN(TableRefPtr left, ParseTableRef());
  while (true) {
    TableRef::JoinType jt = TableRef::JoinType::kInner;
    bool is_join = false;
    bool needs_on = true;
    if (Match(TokenType::kComma)) {
      jt = TableRef::JoinType::kCross;
      is_join = true;
      needs_on = false;
    } else if (Peek().IsKeyword("JOIN")) {
      Advance();
      is_join = true;
    } else if (Peek().IsKeyword("INNER")) {
      Advance();
      GISQL_RETURN_NOT_OK(ExpectKeyword("JOIN", "after INNER"));
      is_join = true;
    } else if (Peek().IsKeyword("LEFT")) {
      Advance();
      MatchKeyword("OUTER");
      GISQL_RETURN_NOT_OK(ExpectKeyword("JOIN", "after LEFT"));
      jt = TableRef::JoinType::kLeft;
      is_join = true;
    } else if (Peek().IsKeyword("CROSS")) {
      Advance();
      GISQL_RETURN_NOT_OK(ExpectKeyword("JOIN", "after CROSS"));
      jt = TableRef::JoinType::kCross;
      is_join = true;
      needs_on = false;
    }
    if (!is_join) break;
    GISQL_ASSIGN_OR_RETURN(TableRefPtr right, ParseTableRef());
    auto join = std::make_unique<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_type = jt;
    join->left = std::move(left);
    join->right = std::move(right);
    if (needs_on && MatchKeyword("ON")) {
      GISQL_ASSIGN_OR_RETURN(join->on_condition, ParseExpr());
    } else if (needs_on) {
      return ErrorHere("expected ON after JOIN");
    }
    left = std::move(join);
  }
  return left;
}

Result<TableRefPtr> Parser::ParseTableRef() {
  auto ref = std::make_unique<TableRef>();
  if (Match(TokenType::kLParen)) {
    ref->kind = TableRef::Kind::kDerived;
    GISQL_ASSIGN_OR_RETURN(ref->derived, ParseSelectStmt());
    GISQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "after derived table"));
    MatchKeyword("AS");
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("derived table requires an alias");
    }
    ref->alias = Advance().text;
    return ref;
  }
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  ref->kind = TableRef::Kind::kNamed;
  ref->table_name = Advance().text;
  // Dotted names ("gis.sources", "src1.orders") are one table name in
  // the global schema; the catalog key carries the dot.
  while (Match(TokenType::kDot)) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected identifier after '.' in table name");
    }
    ref->table_name += "." + Advance().text;
  }
  if (MatchKeyword("AS")) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected alias after AS");
    }
    ref->alias = Advance().text;
  } else if (Peek().type == TokenType::kIdentifier) {
    ref->alias = Advance().text;
  }
  return ref;
}

Result<ParseExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ParseExprPtr> Parser::ParseOr() {
  GISQL_ASSIGN_OR_RETURN(ParseExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    GISQL_ASSIGN_OR_RETURN(ParseExprPtr right, ParseAnd());
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kBinary);
    e->op = ParseBinaryOp::kOr;
    e->children.push_back(std::move(left));
    e->children.push_back(std::move(right));
    left = std::move(e);
  }
  return left;
}

Result<ParseExprPtr> Parser::ParseAnd() {
  GISQL_ASSIGN_OR_RETURN(ParseExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    GISQL_ASSIGN_OR_RETURN(ParseExprPtr right, ParseNot());
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kBinary);
    e->op = ParseBinaryOp::kAnd;
    e->children.push_back(std::move(left));
    e->children.push_back(std::move(right));
    left = std::move(e);
  }
  return left;
}

Result<ParseExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    GISQL_ASSIGN_OR_RETURN(ParseExprPtr child, ParseNot());
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kNot);
    e->children.push_back(std::move(child));
    return e;
  }
  return ParseComparison();
}

Result<ParseExprPtr> Parser::ParseComparison() {
  GISQL_ASSIGN_OR_RETURN(ParseExprPtr left, ParseAdditive());

  // IS [NOT] NULL
  if (Peek().IsKeyword("IS")) {
    Advance();
    const bool negated = MatchKeyword("NOT");
    GISQL_RETURN_NOT_OK(ExpectKeyword("NULL", "after IS [NOT]"));
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kIsNull);
    e->negated = negated;
    e->children.push_back(std::move(left));
    return e;
  }

  bool negated = false;
  if (Peek().IsKeyword("NOT") &&
      (Peek(1).IsKeyword("LIKE") || Peek(1).IsKeyword("IN") ||
       Peek(1).IsKeyword("BETWEEN"))) {
    Advance();
    negated = true;
  }

  if (MatchKeyword("LIKE")) {
    GISQL_ASSIGN_OR_RETURN(ParseExprPtr pattern, ParseAdditive());
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kLike);
    e->negated = negated;
    e->children.push_back(std::move(left));
    e->children.push_back(std::move(pattern));
    return e;
  }
  if (MatchKeyword("IN")) {
    GISQL_RETURN_NOT_OK(Expect(TokenType::kLParen, "after IN"));
    if (Peek().IsKeyword("SELECT")) {
      auto e = std::make_unique<gisql::sql::ParseExpr>(
          ParseExprKind::kInSubquery);
      e->negated = negated;
      e->children.push_back(std::move(left));
      GISQL_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelectStmt());
      e->subquery = std::shared_ptr<SelectStmt>(std::move(sub));
      GISQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "after subquery"));
      return e;
    }
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kIn);
    e->negated = negated;
    e->children.push_back(std::move(left));
    while (true) {
      GISQL_ASSIGN_OR_RETURN(ParseExprPtr item, ParseExpr());
      e->children.push_back(std::move(item));
      if (Match(TokenType::kComma)) continue;
      break;
    }
    GISQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "after IN list"));
    return e;
  }
  if (MatchKeyword("BETWEEN")) {
    GISQL_ASSIGN_OR_RETURN(ParseExprPtr lo, ParseAdditive());
    GISQL_RETURN_NOT_OK(ExpectKeyword("AND", "in BETWEEN"));
    GISQL_ASSIGN_OR_RETURN(ParseExprPtr hi, ParseAdditive());
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kBetween);
    e->negated = negated;
    e->children.push_back(std::move(left));
    e->children.push_back(std::move(lo));
    e->children.push_back(std::move(hi));
    return e;
  }
  if (negated) return ErrorHere("expected LIKE, IN or BETWEEN after NOT");

  auto binop = [&](ParseBinaryOp op) -> Result<ParseExprPtr> {
    Advance();
    GISQL_ASSIGN_OR_RETURN(ParseExprPtr right, ParseAdditive());
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kBinary);
    e->op = op;
    e->children.push_back(std::move(left));
    e->children.push_back(std::move(right));
    return e;
  };
  switch (Peek().type) {
    case TokenType::kEq: return binop(ParseBinaryOp::kEq);
    case TokenType::kNe: return binop(ParseBinaryOp::kNe);
    case TokenType::kLt: return binop(ParseBinaryOp::kLt);
    case TokenType::kLe: return binop(ParseBinaryOp::kLe);
    case TokenType::kGt: return binop(ParseBinaryOp::kGt);
    case TokenType::kGe: return binop(ParseBinaryOp::kGe);
    default: break;
  }
  return left;
}

Result<ParseExprPtr> Parser::ParseAdditive() {
  GISQL_ASSIGN_OR_RETURN(ParseExprPtr left, ParseMultiplicative());
  while (true) {
    ParseBinaryOp op;
    if (Peek().type == TokenType::kPlus) {
      op = ParseBinaryOp::kAdd;
    } else if (Peek().type == TokenType::kMinus) {
      op = ParseBinaryOp::kSub;
    } else {
      break;
    }
    Advance();
    GISQL_ASSIGN_OR_RETURN(ParseExprPtr right, ParseMultiplicative());
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kBinary);
    e->op = op;
    e->children.push_back(std::move(left));
    e->children.push_back(std::move(right));
    left = std::move(e);
  }
  return left;
}

Result<ParseExprPtr> Parser::ParseMultiplicative() {
  GISQL_ASSIGN_OR_RETURN(ParseExprPtr left, ParseUnary());
  while (true) {
    ParseBinaryOp op;
    if (Peek().type == TokenType::kStar) {
      op = ParseBinaryOp::kMul;
    } else if (Peek().type == TokenType::kSlash) {
      op = ParseBinaryOp::kDiv;
    } else if (Peek().type == TokenType::kPercent) {
      op = ParseBinaryOp::kMod;
    } else {
      break;
    }
    Advance();
    GISQL_ASSIGN_OR_RETURN(ParseExprPtr right, ParseUnary());
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kBinary);
    e->op = op;
    e->children.push_back(std::move(left));
    e->children.push_back(std::move(right));
    left = std::move(e);
  }
  return left;
}

Result<ParseExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    GISQL_ASSIGN_OR_RETURN(ParseExprPtr child, ParseUnary());
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kUnaryMinus);
    e->children.push_back(std::move(child));
    return e;
  }
  Match(TokenType::kPlus);  // unary plus is a no-op
  return ParsePrimary();
}

Result<ParseExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kIntLiteral: {
      auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kLiteral);
      e->literal = Value::Int(tok.int_value);
      Advance();
      return e;
    }
    case TokenType::kDoubleLiteral: {
      auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kLiteral);
      e->literal = Value::Double(tok.double_value);
      Advance();
      return e;
    }
    case TokenType::kStringLiteral: {
      auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kLiteral);
      e->literal = Value::String(tok.text);
      Advance();
      return e;
    }
    case TokenType::kLParen: {
      Advance();
      GISQL_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpr());
      GISQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "after expression"));
      return e;
    }
    case TokenType::kStar: {
      Advance();
      return std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kStar);
    }
    case TokenType::kKeyword: {
      if (tok.IsKeyword("NULL")) {
        Advance();
        auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kLiteral);
        e->literal = Value::Null();
        return e;
      }
      if (tok.IsKeyword("TRUE") || tok.IsKeyword("FALSE")) {
        auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kLiteral);
        e->literal = Value::Bool(tok.IsKeyword("TRUE"));
        Advance();
        return e;
      }
      if (tok.IsKeyword("DATE")) {
        // DATE 'YYYY-MM-DD' literal.
        Advance();
        if (Peek().type != TokenType::kStringLiteral) {
          return ErrorHere("expected string literal after DATE");
        }
        GISQL_ASSIGN_OR_RETURN(int64_t days,
                               ParseDateString(Advance().text));
        auto e = std::make_unique<gisql::sql::ParseExpr>(
            ParseExprKind::kLiteral);
        e->literal = Value::Date(days);
        return e;
      }
      if (tok.IsKeyword("CAST")) {
        Advance();
        GISQL_RETURN_NOT_OK(Expect(TokenType::kLParen, "after CAST"));
        auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kCast);
        GISQL_ASSIGN_OR_RETURN(ParseExprPtr child, ParseExpr());
        e->children.push_back(std::move(child));
        GISQL_RETURN_NOT_OK(ExpectKeyword("AS", "in CAST"));
        if (Peek().type != TokenType::kIdentifier &&
            Peek().type != TokenType::kKeyword) {
          return ErrorHere("expected type name in CAST");
        }
        e->name = Advance().text;
        GISQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "after CAST type"));
        return e;
      }
      if (tok.IsKeyword("CASE")) {
        Advance();
        auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kCase);
        bool any = false;
        while (MatchKeyword("WHEN")) {
          any = true;
          GISQL_ASSIGN_OR_RETURN(ParseExprPtr cond, ParseExpr());
          GISQL_RETURN_NOT_OK(ExpectKeyword("THEN", "in CASE"));
          GISQL_ASSIGN_OR_RETURN(ParseExprPtr then, ParseExpr());
          e->children.push_back(std::move(cond));
          e->children.push_back(std::move(then));
        }
        if (!any) return ErrorHere("CASE requires at least one WHEN");
        if (MatchKeyword("ELSE")) {
          e->has_else = true;
          GISQL_ASSIGN_OR_RETURN(ParseExprPtr els, ParseExpr());
          e->children.push_back(std::move(els));
        }
        GISQL_RETURN_NOT_OK(ExpectKeyword("END", "closing CASE"));
        return e;
      }
      // Aggregate keywords parse as function calls.
      if (tok.IsKeyword("COUNT") || tok.IsKeyword("SUM") ||
          tok.IsKeyword("AVG") || tok.IsKeyword("MIN") ||
          tok.IsKeyword("MAX")) {
        return ParseFuncCallOrColumn();
      }
      return ErrorHere("unexpected keyword in expression");
    }
    case TokenType::kIdentifier:
      return ParseFuncCallOrColumn();
    default:
      return ErrorHere("expected expression");
  }
}

Result<ParseExprPtr> Parser::ParseFuncCallOrColumn() {
  std::string first = Advance().text;
  // Function call?
  if (Peek().type == TokenType::kLParen) {
    Advance();
    auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kFuncCall);
    e->name = ToUpper(first);
    e->distinct = MatchKeyword("DISTINCT");
    if (Peek().type == TokenType::kStar) {
      // COUNT(*)
      Advance();
      e->children.push_back(
          std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kStar));
    } else if (Peek().type != TokenType::kRParen) {
      while (true) {
        GISQL_ASSIGN_OR_RETURN(ParseExprPtr arg, ParseExpr());
        e->children.push_back(std::move(arg));
        if (Match(TokenType::kComma)) continue;
        break;
      }
    }
    GISQL_RETURN_NOT_OK(Expect(TokenType::kRParen, "after function args"));
    return e;
  }
  // Column reference, possibly qualified; `alias.*` also lands here.
  auto e = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kColumnRef);
  if (Match(TokenType::kDot)) {
    if (Peek().type == TokenType::kStar) {
      Advance();
      auto star = std::make_unique<gisql::sql::ParseExpr>(ParseExprKind::kStar);
      star->qualifier = std::move(first);
      return star;
    }
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column name after '.'");
    }
    e->qualifier = std::move(first);
    e->name = Advance().text;
  } else {
    e->name = std::move(first);
  }
  return e;
}

}  // namespace internal

Result<Statement> ParseStatement(const std::string& input) {
  Lexer lexer(input);
  GISQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  internal::Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<SelectStmtPtr> ParseSelect(const std::string& input) {
  GISQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(input));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::ParseError("expected a SELECT statement");
  }
  return std::move(stmt.select);
}

Result<ParseExprPtr> ParseScalarExpr(const std::string& input) {
  Lexer lexer(input);
  GISQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  internal::Parser parser(std::move(tokens));
  GISQL_ASSIGN_OR_RETURN(ParseExprPtr e, parser.ParseExpr());
  GISQL_RETURN_NOT_OK(parser.ExpectEnd());
  return e;
}

}  // namespace sql
}  // namespace gisql
