/// \file fingerprint.h
/// \brief Query fingerprints: literal-stripped statement templates.
///
/// Two statements share a fingerprint when they are the same *template*
/// — identical token stream after every literal (integer, double,
/// string) is replaced by `?`. "SELECT x FROM t WHERE id = 7" and
/// "SELECT x FROM t WHERE id = 42" collapse to one fingerprint;
/// changing a column, table, or operator produces a different one.
/// The advisor's hot-template detection and the `fingerprint` column
/// of gis.queries are both built on this normalization.

#pragma once

#include <cstdint>
#include <string>

namespace gisql {
namespace sql {

/// \brief The literal-stripped template of `statement`: tokens joined
/// by single spaces, keywords upper-cased (lexer convention), literals
/// replaced by `?`. A statement that does not lex returns the raw
/// input unchanged — a malformed query is its own template.
std::string NormalizeStatement(const std::string& statement);

/// \brief FNV-1a 64-bit hash of NormalizeStatement(statement).
uint64_t FingerprintHash(const std::string& statement);

/// \brief FingerprintHash rendered as 16 lower-case hex digits — the
/// value stored in QueryLogEntry::fingerprint / gis.queries.
std::string FingerprintHex(const std::string& statement);

}  // namespace sql
}  // namespace gisql
