/// \file lexer.h
/// \brief Hand-written SQL lexer.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace gisql {
namespace sql {

/// \brief Tokenizes a SQL string. Keywords are case-insensitive and
/// normalized to upper case; identifiers preserve case. `--` line
/// comments are skipped.
class Lexer {
 public:
  explicit Lexer(std::string input) : input_(std::move(input)) {}

  /// \brief Lexes the whole input; the final token is kEnd.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> Next();
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  void SkipWhitespaceAndComments();

  std::string input_;
  size_t pos_ = 0;
};

/// \brief True if `word` (any case) is a reserved SQL keyword.
bool IsSqlKeyword(const std::string& upper_word);

}  // namespace sql
}  // namespace gisql
