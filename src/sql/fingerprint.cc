#include "sql/fingerprint.h"

#include <vector>

#include "sql/lexer.h"
#include "sql/token.h"

namespace gisql {
namespace sql {

namespace {

/// Token rendering for the normalized template. Literals all become
/// `?` so parameter values never split a template; everything else
/// renders as its lexed text (keywords already upper-cased, operators
/// via their punctuation).
std::string TokenText(const Token& t) {
  switch (t.type) {
    case TokenType::kIntLiteral:
    case TokenType::kDoubleLiteral:
    case TokenType::kStringLiteral:
      return "?";
    case TokenType::kComma: return ",";
    case TokenType::kDot: return ".";
    case TokenType::kStar: return "*";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kSlash: return "/";
    case TokenType::kPercent: return "%";
    case TokenType::kEq: return "=";
    case TokenType::kNe: return "<>";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kSemicolon: return ";";
    default:
      return t.text;
  }
}

}  // namespace

std::string NormalizeStatement(const std::string& statement) {
  Lexer lexer(statement);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return statement;
  std::string out;
  out.reserve(statement.size());
  for (const Token& t : *tokens) {
    if (t.type == TokenType::kEnd) break;
    if (!out.empty()) out += ' ';
    out += TokenText(t);
  }
  return out;
}

uint64_t FingerprintHash(const std::string& statement) {
  const std::string normalized = NormalizeStatement(statement);
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char c : normalized) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;  // FNV-1a prime
  }
  return h;
}

std::string FingerprintHex(const std::string& statement) {
  uint64_t h = FingerprintHash(statement);
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace sql
}  // namespace gisql
