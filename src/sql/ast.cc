#include "sql/ast.h"

#include <sstream>

namespace gisql {
namespace sql {

const char* ParseBinaryOpName(ParseBinaryOp op) {
  switch (op) {
    case ParseBinaryOp::kEq: return "=";
    case ParseBinaryOp::kNe: return "<>";
    case ParseBinaryOp::kLt: return "<";
    case ParseBinaryOp::kLe: return "<=";
    case ParseBinaryOp::kGt: return ">";
    case ParseBinaryOp::kGe: return ">=";
    case ParseBinaryOp::kAdd: return "+";
    case ParseBinaryOp::kSub: return "-";
    case ParseBinaryOp::kMul: return "*";
    case ParseBinaryOp::kDiv: return "/";
    case ParseBinaryOp::kMod: return "%";
    case ParseBinaryOp::kAnd: return "AND";
    case ParseBinaryOp::kOr: return "OR";
  }
  return "?";
}

ParseExprPtr ParseExpr::Clone() const {
  auto out = std::make_unique<ParseExpr>(kind);
  out->literal = literal;
  out->qualifier = qualifier;
  out->name = name;
  out->op = op;
  out->negated = negated;
  out->distinct = distinct;
  out->has_else = has_else;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  out->subquery = subquery;  // immutable after parse; aliasing is safe
  return out;
}

std::string ParseExpr::ToString() const {
  std::ostringstream oss;
  switch (kind) {
    case ParseExprKind::kLiteral:
      oss << literal.ToString();
      break;
    case ParseExprKind::kColumnRef:
      if (!qualifier.empty()) oss << qualifier << ".";
      oss << name;
      break;
    case ParseExprKind::kStar:
      if (!qualifier.empty()) oss << qualifier << ".";
      oss << "*";
      break;
    case ParseExprKind::kUnaryMinus:
      oss << "(-" << children[0]->ToString() << ")";
      break;
    case ParseExprKind::kNot:
      oss << "(NOT " << children[0]->ToString() << ")";
      break;
    case ParseExprKind::kBinary:
      oss << "(" << children[0]->ToString() << " " << ParseBinaryOpName(op)
          << " " << children[1]->ToString() << ")";
      break;
    case ParseExprKind::kIsNull:
      oss << "(" << children[0]->ToString() << " IS"
          << (negated ? " NOT" : "") << " NULL)";
      break;
    case ParseExprKind::kLike:
      oss << "(" << children[0]->ToString() << (negated ? " NOT" : "")
          << " LIKE " << children[1]->ToString() << ")";
      break;
    case ParseExprKind::kIn: {
      oss << "(" << children[0]->ToString() << (negated ? " NOT" : "")
          << " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) oss << ", ";
        oss << children[i]->ToString();
      }
      oss << "))";
      break;
    }
    case ParseExprKind::kBetween:
      oss << "(" << children[0]->ToString() << " BETWEEN "
          << children[1]->ToString() << " AND " << children[2]->ToString()
          << ")";
      break;
    case ParseExprKind::kFuncCall: {
      oss << name << "(";
      if (distinct) oss << "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) oss << ", ";
        oss << children[i]->ToString();
      }
      oss << ")";
      break;
    }
    case ParseExprKind::kCase: {
      oss << "CASE";
      const size_t pairs = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        oss << " WHEN " << children[2 * i]->ToString() << " THEN "
            << children[2 * i + 1]->ToString();
      }
      if (has_else) oss << " ELSE " << children.back()->ToString();
      oss << " END";
      break;
    }
    case ParseExprKind::kCast:
      oss << "CAST(" << children[0]->ToString() << " AS " << name << ")";
      break;
    case ParseExprKind::kInSubquery:
      oss << "(" << children[0]->ToString() << (negated ? " NOT" : "")
          << " IN (" << subquery->ToString() << "))";
      break;
  }
  return oss.str();
}

std::string TableRef::ToString() const {
  switch (kind) {
    case Kind::kNamed:
      return alias.empty() ? table_name : table_name + " AS " + alias;
    case Kind::kDerived:
      return "(" + derived->ToString() + ") AS " + alias;
    case Kind::kJoin: {
      std::string jt = join_type == JoinType::kLeft
                           ? " LEFT JOIN "
                           : (join_type == JoinType::kCross ? " CROSS JOIN "
                                                            : " JOIN ");
      std::string out = left->ToString() + jt + right->ToString();
      if (on_condition) out += " ON " + on_condition->ToString();
      return out;
    }
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::ostringstream oss;
  oss << "SELECT ";
  if (distinct) oss << "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) oss << ", ";
    oss << items[i].expr->ToString();
    if (!items[i].alias.empty()) oss << " AS " << items[i].alias;
  }
  if (from) oss << " FROM " << from->ToString();
  if (where) oss << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    oss << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) oss << ", ";
      oss << group_by[i]->ToString();
    }
  }
  if (having) oss << " HAVING " << having->ToString();
  for (const auto& term : union_all_terms) {
    oss << " UNION ALL " << term->ToString();
  }
  if (!order_by.empty()) {
    oss << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) oss << ", ";
      oss << order_by[i].expr->ToString() << (order_by[i].ascending ? "" : " DESC");
    }
  }
  if (limit >= 0) oss << " LIMIT " << limit;
  if (offset > 0) oss << " OFFSET " << offset;
  return oss.str();
}

}  // namespace sql
}  // namespace gisql
