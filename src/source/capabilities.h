/// \file capabilities.h
/// \brief Heterogeneity model: what each component-source dialect can
/// execute locally.
///
/// The 1989 vision integrates *autonomous, heterogeneous* systems: a
/// full relational DBMS, a key-value store, a document/file system, a
/// legacy application with a thin extract interface. What differs across
/// them — for the mediator's planner — is which parts of a sub-query
/// they can evaluate themselves. The mediator pushes down exactly what a
/// source advertises and compensates for the rest.

#pragma once

#include <cstdint>
#include <string>

namespace gisql {

/// \brief The four heterogeneous source dialects gisql models.
enum class SourceDialect : uint8_t {
  kRelational = 0,  ///< full DBMS: filter/project/aggregate/limit/semijoin
  kDocument = 1,    ///< document store: filter + projection + limit
  kKeyValue = 2,    ///< KV store: key-column semijoin lookup + limit
  kLegacy = 3,      ///< legacy extract interface: full scans only
};

const char* SourceDialectName(SourceDialect d);

/// \brief Pushdown capabilities a source advertises to the catalog.
struct SourceCapabilities {
  bool filter_pushdown = false;
  bool projection_pushdown = false;
  bool aggregate_pushdown = false;
  bool limit_pushdown = false;
  bool sort_pushdown = false;  ///< ORDER BY (and thus top-k) at the source
  bool semijoin_pushdown = false;
  /// When true, semijoin reduction may target only column 0 (the key).
  bool semijoin_key_only = false;
  /// Range-predicate pushdown onto an ordered (B+tree) index.
  bool index_range_scan = false;
  /// Index-nested-loop join with a co-located table at the source.
  bool index_join = false;

  /// \brief Capability preset for a dialect.
  static SourceCapabilities For(SourceDialect dialect);

  std::string ToString() const;
};

}  // namespace gisql
