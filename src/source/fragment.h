/// \file fragment.h
/// \brief The sub-query language of the mediator↔wrapper protocol.
///
/// A FragmentPlan is the unit of work the mediator ships to a component
/// information system: scan one exported table, then (capability
/// permitting) apply a filter, a semijoin reduction, projections, a
/// partial aggregation, and a limit — all local to the source. The
/// source executes whatever prefix of that pipeline its dialect
/// supports and the mediator compensates for the rest.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/binder.h"
#include "expr/expr.h"
#include "types/value.h"

namespace gisql {

/// \brief One shippable sub-query against a single exported table.
struct FragmentPlan {
  /// Exported table name at the source (source-local name).
  std::string table;

  /// Optional filter over the table's full schema (null = none).
  ExprPtr filter;

  /// Optional projection list over the table's full schema; empty means
  /// "all columns as-is". Output column `i` is `projections[i]` named
  /// `projection_names[i]`.
  std::vector<ExprPtr> projections;
  std::vector<std::string> projection_names;

  /// Optional semijoin reduction: keep only rows whose `semijoin_column`
  /// (index into the table schema) value appears in `semijoin_values`.
  /// Applied before projection/aggregation. -1 = none.
  int64_t semijoin_column = -1;
  std::vector<Value> semijoin_values;

  /// Optional index range scan: read only rows whose `index_column`
  /// (index into the table schema) lies in [range_lo, range_hi] via the
  /// source's ordered index, instead of scanning every page. A NULL
  /// bound is unbounded on that side; the full `filter` still applies
  /// to the narrowed rows (residual predicates ride along unchanged).
  /// -1 = full scan.
  int64_t index_column = -1;
  Value range_lo;
  Value range_hi;
  bool range_lo_inclusive = true;
  bool range_hi_inclusive = true;

  /// Optional index-nested-loop join with a co-located table at the
  /// same source: for each (filtered) outer row, probe `join_table`'s
  /// index on `join_inner_column` with the outer row's
  /// `join_outer_column` value and emit outer ++ inner rows.
  /// `join_inner_filter` (over the inner table's schema) prunes probes.
  /// Projections/aggregation then apply over the concatenated row.
  /// Empty `join_table` = none.
  std::string join_table;
  int64_t join_outer_column = -1;
  int64_t join_inner_column = -1;
  ExprPtr join_inner_filter;

  /// Optional partial aggregation, applied after filter/projection:
  /// group by `group_by` (over the projected row if projections present,
  /// else the table row) computing `aggregates`.
  bool has_aggregate = false;
  std::vector<ExprPtr> group_by;
  std::vector<BoundAggregate> aggregates;

  /// Optional source-side ordering over the fragment's *output* rows
  /// (post projection/aggregation), enabling top-k shipping together
  /// with `limit`. Parallel arrays: expression + ascending flag.
  std::vector<ExprPtr> order_by;
  std::vector<bool> order_ascending;

  /// Optional row limit (applied last, after ordering). -1 = none.
  int64_t limit = -1;

  /// MVCC read context. snapshot_ts 0 = "latest committed" (the
  /// classic non-transactional read); > 0 = the global snapshot the
  /// row-version visibility check [begin_ts, end_ts) runs against.
  /// txn_id identifies the reading global transaction so the source
  /// can overlay its own staged writes (read-your-writes); 0 = none.
  uint64_t snapshot_ts = 0;
  uint64_t txn_id = 0;

  /// \brief Human-readable one-line description (EXPLAIN output).
  std::string ToString() const;
};

}  // namespace gisql
