/// \file component_source.h
/// \brief An autonomous component information system (wrapper + engine).
///
/// Each ComponentSource owns a private StorageEngine, advertises a
/// dialect-derived capability set, and serves the mediator↔wrapper
/// protocol over the simulated network: schema/statistics export and
/// fragment execution. It is deliberately *autonomous*: the mediator
/// never touches its storage directly, only the protocol.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "net/sim_network.h"
#include "source/capabilities.h"
#include "source/fragment.h"
#include "storage/table.h"
#include "txn/lock_manager.h"
#include "types/row.h"

namespace gisql {

class ByteWriter;

/// \brief A component information system participating in the GIS.
class ComponentSource : public RpcHandler {
 public:
  /// \param name network host name (unique within a SimNetwork)
  /// \param dialect heterogeneity class; fixes the capability set
  /// \param cpu_us_per_row simulated per-row processing cost reported as
  ///        server time on fragment execution
  /// \param storage_config page/pool/disk geometry of this source's
  ///        storage engine
  /// \param memory_budget global budget buffer-pool frames are charged
  ///        against (nullptr = uncharged)
  ComponentSource(std::string name, SourceDialect dialect,
                  double cpu_us_per_row = 0.05,
                  StorageConfig storage_config = StorageConfig::FromEnv(),
                  MemoryBudget* memory_budget = nullptr);

  const std::string& name() const { return name_; }
  SourceDialect dialect() const { return dialect_; }
  const SourceCapabilities& capabilities() const { return caps_; }
  StorageEngine& engine() { return engine_; }

  /// \brief Executes source-local DDL/DML SQL (CREATE TABLE / INSERT /
  /// DELETE). This is how an administrator populates an autonomous
  /// source; SELECT goes through the mediator.
  Status ExecuteLocalSql(const std::string& sql);

  /// \brief Executes a fragment locally, enforcing capabilities.
  ///
  /// Anything the fragment requests beyond this source's capability set
  /// is a CapabilityError — the planner must not have shipped it.
  /// `rows_scanned` (optional out) reports base rows touched, used for
  /// the simulated processing-time model.
  Result<RowBatch> ExecuteFragment(const FragmentPlan& frag,
                                   int64_t* rows_scanned = nullptr);

  /// \brief RpcHandler entry point: decodes protocol requests, executes,
  /// and encodes responses. `processing_ms` reflects rows touched.
  Result<std::vector<uint8_t>> Handle(uint8_t opcode,
                                      const std::vector<uint8_t>& request,
                                      double* processing_ms) override;

  /// \name Global-transaction participant (2PC + snapshot isolation)
  ///
  /// The mediator coordinates atomic multi-source updates: PREPARE
  /// parses and fully validates an INSERT or DELETE, staging its
  /// effects in memory; COMMIT applies every staged write of the
  /// transaction (stamping row versions with the mediator's commit
  /// timestamp); ABORT drops them. Transactions carrying a numeric id
  /// additionally take IX table + X row-key locks at prepare, held
  /// until commit/abort — conflicts are *reported*, never waited on
  /// (the mediator owns the waits-for graph; see
  /// txn/transaction_manager.h). Legacy numeric id 0 preserves the
  /// PR 1 semantics exactly: INSERT only, no locks, rows born at
  /// timestamp 0.
  ///
  /// The faulty WAN delivers at-least-once, so the participant side is
  /// idempotent: PREPARE dedups statements by `stmt_seq` within a
  /// transaction (a redelivered statement is a no-op; the same seq with
  /// different SQL is rejected), and COMMIT of an already-committed
  /// transaction returns OK instead of NotFound so a retried commit
  /// whose first ack was lost converges. ABORT was always idempotent.
  /// @{

  /// \brief Outcome of a prepare: granted, or the lock conflict's
  /// holder transaction ids for the mediator's waits-for graph.
  struct TxnPrepareResult {
    bool granted = true;
    std::vector<uint64_t> holders;
  };

  Status PrepareTxn(const std::string& txn_id, const std::string& sql,
                    uint64_t stmt_seq = 0);

  /// \brief Prepare with the MVCC read/lock context: `numeric_txn_id`
  /// keys the lock table (0 = legacy, lockless), `snapshot_ts` is the
  /// snapshot DELETE predicates evaluate against.
  Result<TxnPrepareResult> PrepareTxnAt(const std::string& txn_id,
                                        const std::string& sql,
                                        uint64_t stmt_seq,
                                        uint64_t numeric_txn_id,
                                        uint64_t snapshot_ts);

  /// \brief Applies staged writes: inserts born at `commit_ts`,
  /// deletes ending their rows at `commit_ts` (0 = legacy bootstrap
  /// stamp). A positive `watermark` then garbage-collects versions no
  /// snapshot can reach.
  Status CommitTxn(const std::string& txn_id, uint64_t commit_ts = 0,
                   uint64_t watermark = 0);
  Status AbortTxn(const std::string& txn_id);

  /// \brief Physically reclaims versions dead at or before `watermark`
  /// across every table; returns rows removed.
  int64_t GcToWatermark(uint64_t watermark);

  /// \brief This source's lock table (tests/monitoring).
  const LockManager& locks() const { return locks_; }
  /// \brief Number of transactions currently staged (tests/monitoring).
  size_t pending_txns() const { return staged_.size(); }
  /// \brief Ids of staged transactions (sorted) — what an operator
  /// resolving an in-doubt global transaction would inspect.
  std::vector<std::string> staged_txn_ids() const {
    std::vector<std::string> ids;
    ids.reserve(staged_.size());
    for (const auto& [id, txn] : staged_) ids.push_back(id);
    return ids;
  }
  /// @}

  /// \name Snapshot persistence
  ///
  /// A component system's tables serialize to a single file in the wire
  /// format (schemas + batches). Load requires an empty engine so a
  /// snapshot never silently merges into existing state.
  /// @{
  Status SaveSnapshot(const std::string& path) const;
  Status LoadSnapshot(const std::string& path);
  /// @}

  /// \brief A/B toggle for the vectorized partial-aggregation path
  /// (on by default; results are identical either way).
  void set_vectorized_execution(bool on) { vectorized_execution_ = on; }
  bool vectorized_execution() const { return vectorized_execution_; }

  /// \brief Cursors currently staged at this source (tests/monitoring).
  ///
  /// A cursor holds a fragment's materialized result while the mediator
  /// pulls it chunk by chunk (kOpenCursor/kFetchChunk/kCloseCursor); the
  /// count drops back to zero when the mediator closes or abandons them
  /// (the mediator's lease sweep sends the close).
  size_t open_cursors() const { return cursors_.size(); }

 private:
  Status CheckCapabilities(const FragmentPlan& frag) const;

  std::string name_;
  SourceDialect dialect_;
  SourceCapabilities caps_;
  double cpu_us_per_row_;
  bool vectorized_execution_ = true;
  StorageEngine engine_;

  /// \brief Per-fragment buffer-pool deltas (shipped to the mediator as
  /// the response stats trailer on fragment execution).
  struct FragmentPageStats {
    int64_t page_hits = 0;
    int64_t page_misses = 0;
    int64_t evictions = 0;
    double disk_us = 0.0;
  };

  /// \brief Buffer-pool counter deltas since `before` was snapshot.
  FragmentPageStats PageStatsSince(const BufferPoolStats& before) const;

  /// \brief Appends the page-stats trailer to a fragment response.
  static void WritePageStatsTrailer(ByteWriter* writer,
                                    const FragmentPageStats& pages);

  struct StagedWrite {
    TablePtr table;
    std::vector<Row> rows;          ///< staged inserts
    std::vector<size_t> delete_rids;  ///< staged deletes (heap row ids)
  };
  struct StagedTxn {
    std::vector<StagedWrite> writes;
    /// stmt_seq -> SQL text, for at-least-once prepare deduplication.
    std::map<uint64_t, std::string> seen;
    uint64_t numeric_id = 0;   ///< lock-table key; 0 = legacy, lockless
    uint64_t snapshot_ts = 0;  ///< snapshot DELETEs evaluated against
  };
  std::map<std::string, StagedTxn> staged_;

  /// \brief The staged transaction carrying `numeric_id`, for
  /// read-your-writes overlays; nullptr when none.
  const StagedTxn* FindStagedByNumericId(uint64_t numeric_id) const;
  /// Ids of transactions this participant has applied (presumed-commit
  /// memory): a redelivered COMMIT answers OK instead of NotFound.
  std::set<std::string> committed_;

  /// Row/table lock table for numeric-id global transactions.
  LockManager locks_;

  /// \brief One staged streaming result (kOpenCursor..kCloseCursor).
  ///
  /// The at-least-once WAN shapes this state: `token` makes open
  /// idempotent (a redelivered open finds its cursor instead of staging
  /// a second copy), and `last_chunk` keeps the previously served
  /// chunk's encoded payload so a retried fetch of `next_seq - 1`
  /// re-serves it verbatim — the one-chunk idempotency window.
  struct SourceCursor {
    uint64_t token = 0;
    RowBatch result;
    int64_t next_row = 0;
    uint64_t next_seq = 0;
    int64_t chunk_rows = 1024;
    std::vector<uint8_t> last_chunk;
  };
  std::map<uint64_t, SourceCursor> cursors_;
  /// Open-idempotency map: token -> cursor id.
  std::map<uint64_t, uint64_t> cursor_tokens_;
  uint64_t next_cursor_id_ = 1;

  /// One request at a time per source: the mediator may dispatch
  /// fragments to different sources from worker threads, and a source's
  /// engine (lazy index builds, stats caches) is single-threaded state.
  std::mutex request_mu_;
};

using ComponentSourcePtr = std::shared_ptr<ComponentSource>;

}  // namespace gisql
