#include "source/component_source.h"

#include <algorithm>
#include <fstream>
#include <unordered_set>

#include "common/hash.h"
#include "exec/hash_aggregate.h"
#include "exec/vectorized.h"
#include "expr/binder.h"
#include "expr/eval.h"
#include "sql/parser.h"
#include "wire/cursor.h"
#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {

namespace {
/// A source stages at most this many concurrent cursors; past it, opens
/// answer Overloaded — backpressure instead of unbounded staging memory.
constexpr size_t kMaxOpenCursorsPerSource = 256;
}  // namespace

ComponentSource::ComponentSource(std::string name, SourceDialect dialect,
                                 double cpu_us_per_row)
    : name_(std::move(name)),
      dialect_(dialect),
      caps_(SourceCapabilities::For(dialect)),
      cpu_us_per_row_(cpu_us_per_row) {}

Status ComponentSource::ExecuteLocalSql(const std::string& sql) {
  GISQL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateTable: {
      std::vector<Field> fields;
      for (const auto& [col, type_name] : stmt.create_table->columns) {
        GISQL_ASSIGN_OR_RETURN(TypeId type, ParseTypeName(type_name));
        fields.emplace_back(col, type, /*nullable=*/true,
                            stmt.create_table->table_name);
      }
      // First column is conventionally the key: non-nullable.
      if (!fields.empty()) fields[0].nullable = false;
      GISQL_ASSIGN_OR_RETURN(
          TablePtr table,
          engine_.CreateTable(stmt.create_table->table_name,
                              std::make_shared<Schema>(std::move(fields))));
      // Key column gets a hash index so KV-style lookups are realistic.
      GISQL_RETURN_NOT_OK(table->CreateHashIndex(0));
      return Status::OK();
    }
    case sql::Statement::Kind::kInsert: {
      GISQL_ASSIGN_OR_RETURN(TablePtr table,
                             engine_.GetTable(stmt.insert->table_name));
      static const Schema kEmptySchema;
      Binder binder(kEmptySchema);
      static const Row kEmptyRow;
      for (const auto& ast_row : stmt.insert->rows) {
        Row row;
        row.reserve(ast_row.size());
        for (const auto& ast_val : ast_row) {
          GISQL_ASSIGN_OR_RETURN(ExprPtr e, binder.BindScalar(*ast_val));
          GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, kEmptyRow));
          row.push_back(std::move(v));
        }
        GISQL_RETURN_NOT_OK(table->Insert(std::move(row)));
      }
      return Status::OK();
    }
    default:
      return Status::InvalidArgument(
          "component sources accept only CREATE TABLE / INSERT locally; "
          "route queries through the mediator");
  }
}

Status ComponentSource::CheckCapabilities(const FragmentPlan& frag) const {
  if (frag.filter && !caps_.filter_pushdown) {
    return Status::CapabilityError(SourceDialectName(dialect_), " source '",
                                   name_, "' cannot evaluate filters");
  }
  if (!frag.projections.empty() && !caps_.projection_pushdown) {
    return Status::CapabilityError(SourceDialectName(dialect_), " source '",
                                   name_, "' cannot project");
  }
  if (frag.has_aggregate && !caps_.aggregate_pushdown) {
    return Status::CapabilityError(SourceDialectName(dialect_), " source '",
                                   name_, "' cannot aggregate");
  }
  if (frag.limit >= 0 && !caps_.limit_pushdown) {
    return Status::CapabilityError(SourceDialectName(dialect_), " source '",
                                   name_, "' cannot apply LIMIT");
  }
  if (!frag.order_by.empty() && !caps_.sort_pushdown) {
    return Status::CapabilityError(SourceDialectName(dialect_), " source '",
                                   name_, "' cannot apply ORDER BY");
  }
  if (frag.semijoin_column >= 0) {
    if (!caps_.semijoin_pushdown) {
      return Status::CapabilityError(SourceDialectName(dialect_),
                                     " source '", name_,
                                     "' cannot apply semijoin reduction");
    }
    if (caps_.semijoin_key_only && frag.semijoin_column != 0) {
      return Status::CapabilityError(
          SourceDialectName(dialect_), " source '", name_,
          "' supports semijoin lookup only on the key column");
    }
  }
  if (frag.has_aggregate && !frag.projections.empty()) {
    return Status::InvalidArgument(
        "fragment cannot carry both projections and aggregation");
  }
  for (const auto& agg : frag.aggregates) {
    if (agg.distinct && agg.kind != AggKind::kMin &&
        agg.kind != AggKind::kMax) {
      return Status::InvalidArgument(
          "DISTINCT aggregates are not decomposable; the mediator must "
          "evaluate them centrally");
    }
  }
  return Status::OK();
}

namespace {

/// Sorts a batch by the fragment's order-by expressions (evaluated over
/// the batch's own rows) and applies `limit`.
Status SortAndLimit(RowBatch* batch, const std::vector<ExprPtr>& order_by,
                    const std::vector<bool>& ascending, int64_t limit) {
  if (!order_by.empty()) {
    // Precompute sort keys so evaluation errors surface before sorting.
    std::vector<std::pair<Row, size_t>> keyed;
    keyed.reserve(batch->num_rows());
    for (size_t i = 0; i < batch->num_rows(); ++i) {
      Row keys;
      keys.reserve(order_by.size());
      for (const auto& e : order_by) {
        GISQL_ASSIGN_OR_RETURN(Value k, EvalExpr(*e, batch->rows()[i]));
        keys.push_back(std::move(k));
      }
      keyed.emplace_back(std::move(keys), i);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       for (size_t k = 0; k < order_by.size(); ++k) {
                         const int c = a.first[k].Compare(b.first[k]);
                         if (c != 0) {
                           const bool asc =
                               k < ascending.size() ? ascending[k] : true;
                           return asc ? c < 0 : c > 0;
                         }
                       }
                       return a.second < b.second;
                     });
    std::vector<Row> sorted;
    sorted.reserve(keyed.size());
    for (const auto& [keys, idx] : keyed) {
      sorted.push_back(std::move(batch->rows()[idx]));
    }
    *batch = RowBatch(batch->schema(), std::move(sorted));
  }
  if (limit >= 0 && static_cast<int64_t>(batch->num_rows()) > limit) {
    batch->rows().resize(static_cast<size_t>(limit));
  }
  return Status::OK();
}

}  // namespace

Result<RowBatch> ComponentSource::ExecuteFragment(const FragmentPlan& frag,
                                                  int64_t* rows_scanned) {
  GISQL_RETURN_NOT_OK(CheckCapabilities(frag));
  GISQL_ASSIGN_OR_RETURN(TablePtr table, engine_.GetTable(frag.table));
  const std::vector<Row>& rows = table->rows();

  int64_t scanned = 0;
  std::vector<const Row*> candidates;

  if (frag.semijoin_column >= 0) {
    const size_t col = static_cast<size_t>(frag.semijoin_column);
    if (col >= table->schema()->num_fields()) {
      return Status::InvalidArgument("semijoin column ", col,
                                     " out of range for table '",
                                     frag.table, "'");
    }
    HashIndex* index = table->GetHashIndex(col);
    if (index != nullptr) {
      // Index lookups: touch only matching rows.
      for (const auto& key : frag.semijoin_values) {
        for (size_t rid : index->Lookup(key)) {
          candidates.push_back(&rows[rid]);
          ++scanned;
        }
      }
    } else {
      std::unordered_set<uint64_t> keys;
      keys.reserve(frag.semijoin_values.size());
      for (const auto& v : frag.semijoin_values) keys.insert(v.Hash());
      for (const auto& row : rows) {
        ++scanned;
        const Value& v = row[col];
        if (v.is_null() || !keys.count(v.Hash())) continue;
        // Hash hit: confirm by value to rule out collisions.
        bool match = false;
        for (const auto& key : frag.semijoin_values) {
          if (v.Compare(key) == 0) {
            match = true;
            break;
          }
        }
        if (match) candidates.push_back(&row);
      }
    }
  } else {
    candidates.reserve(rows.size());
    for (const auto& row : rows) {
      ++scanned;
      candidates.push_back(&row);
    }
  }
  if (rows_scanned != nullptr) *rows_scanned = scanned;

  // Filter.
  std::vector<const Row*> filtered;
  if (frag.filter) {
    filtered.reserve(candidates.size());
    for (const Row* row : candidates) {
      GISQL_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*frag.filter, *row));
      if (keep) filtered.push_back(row);
    }
  } else {
    filtered = std::move(candidates);
  }

  // Aggregation path.
  if (frag.has_aggregate) {
    std::vector<Field> out_fields;
    for (const auto& g : frag.group_by) {
      out_fields.emplace_back(g->ToString(), g->type);
    }
    for (const auto& a : frag.aggregates) {
      out_fields.emplace_back(a.display, a.result_type);
    }
    auto out_schema = std::make_shared<Schema>(std::move(out_fields));
    const int64_t agg_limit = frag.order_by.empty() ? frag.limit : -1;
    // Vectorized partial aggregation: pivot only the referenced
    // columns and run the columnar kernel. A zero-row probe batch
    // carries the column types for the cheap eligibility check; a
    // value that does not fit its declared column type fails the
    // conversion and drops to the row path.
    if (vectorized_execution_) {
      const ColumnBatch probe(table->schema());
      std::vector<size_t> needed;
      for (const auto& g : frag.group_by) g->CollectColumns(&needed);
      for (const auto& a : frag.aggregates) {
        if (a.arg) a.arg->CollectColumns(&needed);
      }
      if (CanVectorizeAggregate(frag.group_by, frag.aggregates, probe)) {
        Result<ColumnBatch> cols =
            ColumnBatch::FromRowPtrs(table->schema(), filtered, &needed);
        if (cols.ok()) {
          GISQL_ASSIGN_OR_RETURN(
              RowBatch out,
              HashAggregateColumnar(*cols, frag.group_by, frag.aggregates,
                                    std::move(out_schema), agg_limit));
          GISQL_RETURN_NOT_OK(SortAndLimit(&out, frag.order_by,
                                           frag.order_ascending,
                                           frag.limit));
          return out;
        }
      }
    }
    GISQL_ASSIGN_OR_RETURN(
        RowBatch out,
        HashAggregate(filtered, frag.group_by, frag.aggregates,
                      std::move(out_schema), agg_limit));
    GISQL_RETURN_NOT_OK(SortAndLimit(&out, frag.order_by,
                                     frag.order_ascending, frag.limit));
    return out;
  }

  // Projection / pass-through path.
  SchemaPtr out_schema;
  if (!frag.projections.empty()) {
    std::vector<Field> out_fields;
    for (size_t i = 0; i < frag.projections.size(); ++i) {
      const std::string name = i < frag.projection_names.size() &&
                                       !frag.projection_names[i].empty()
                                   ? frag.projection_names[i]
                                   : frag.projections[i]->ToString();
      out_fields.emplace_back(name, frag.projections[i]->type);
    }
    out_schema = std::make_shared<Schema>(std::move(out_fields));
  } else {
    out_schema = table->schema();
  }

  RowBatch out(out_schema);
  for (const Row* row : filtered) {
    if (frag.order_by.empty() && frag.limit >= 0 &&
        static_cast<int64_t>(out.num_rows()) >= frag.limit) {
      break;
    }
    if (frag.projections.empty()) {
      out.Append(*row);
    } else {
      Row projected;
      projected.reserve(frag.projections.size());
      for (const auto& p : frag.projections) {
        GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, *row));
        projected.push_back(std::move(v));
      }
      out.Append(std::move(projected));
    }
  }
  GISQL_RETURN_NOT_OK(SortAndLimit(&out, frag.order_by,
                                   frag.order_ascending, frag.limit));
  return out;
}

Status ComponentSource::PrepareTxn(const std::string& txn_id,
                                   const std::string& sql,
                                   uint64_t stmt_seq) {
  auto txn_it = staged_.find(txn_id);
  if (txn_it != staged_.end()) {
    auto seen = txn_it->second.seen.find(stmt_seq);
    if (seen != txn_it->second.seen.end()) {
      if (seen->second == sql) return Status::OK();  // redelivery
      return Status::InvalidArgument(
          "transaction '", txn_id, "' statement ", stmt_seq,
          " redelivered with different SQL");
    }
  }
  GISQL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (stmt.kind != sql::Statement::Kind::kInsert) {
    return Status::InvalidArgument(
        "global transactions support INSERT statements only");
  }
  GISQL_ASSIGN_OR_RETURN(TablePtr table,
                         engine_.GetTable(stmt.insert->table_name));
  static const Schema kEmptySchema;
  Binder binder(kEmptySchema);
  static const Row kEmptyRow;
  StagedWrite staged;
  staged.table = table;
  for (const auto& ast_row : stmt.insert->rows) {
    Row row;
    row.reserve(ast_row.size());
    for (const auto& ast_val : ast_row) {
      GISQL_ASSIGN_OR_RETURN(ExprPtr e, binder.BindScalar(*ast_val));
      GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, kEmptyRow));
      row.push_back(std::move(v));
    }
    // Full validation now so COMMIT cannot fail on data errors.
    GISQL_ASSIGN_OR_RETURN(Row validated,
                           table->ValidateRow(std::move(row)));
    staged.rows.push_back(std::move(validated));
  }
  auto& txn = staged_[txn_id];
  txn.seen.emplace(stmt_seq, sql);
  txn.writes.push_back(std::move(staged));
  return Status::OK();
}

Status ComponentSource::CommitTxn(const std::string& txn_id) {
  auto it = staged_.find(txn_id);
  if (it == staged_.end()) {
    // A commit whose ack was lost gets retried: converge instead of
    // reporting the (already satisfied) request as an error.
    if (committed_.count(txn_id) > 0) return Status::OK();
    return Status::NotFound("transaction '", txn_id, "' is not prepared at '",
                            name_, "'");
  }
  for (auto& write : it->second.writes) {
    write.table->InsertUnchecked(std::move(write.rows));
  }
  staged_.erase(it);
  committed_.insert(txn_id);
  return Status::OK();
}

Status ComponentSource::AbortTxn(const std::string& txn_id) {
  // Aborting an unknown transaction is a no-op (idempotent rollback).
  staged_.erase(txn_id);
  return Status::OK();
}

namespace {
constexpr uint32_t kSnapshotMagic = 0x47495351;  // "GISQ"
constexpr uint8_t kSnapshotVersion = 1;
}  // namespace

Status ComponentSource::SaveSnapshot(const std::string& path) const {
  ByteWriter writer;
  writer.PutU32(kSnapshotMagic);
  writer.PutU8(kSnapshotVersion);
  // Engine access is const-friendly here: TableNames/GetTable only read.
  auto& engine = const_cast<ComponentSource*>(this)->engine_;
  const auto names = engine.TableNames();
  writer.PutVarint(names.size());
  for (const auto& name : names) {
    GISQL_ASSIGN_OR_RETURN(TablePtr table, engine.GetTable(name));
    writer.PutString(table->name());
    RowBatch batch(table->schema(), table->rows());
    wire::WriteBatch(&writer, batch);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '", path, "' for writing");
  }
  out.write(reinterpret_cast<const char*>(writer.data().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) {
    return Status::IOError("short write to '", path, "'");
  }
  return Status::OK();
}

Status ComponentSource::LoadSnapshot(const std::string& path) {
  if (!engine_.TableNames().empty()) {
    return Status::InvalidArgument(
        "LoadSnapshot requires an empty source; '", name_,
        "' already has tables");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open snapshot '", path, "'");
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  ByteReader reader(bytes);
  GISQL_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kSnapshotMagic) {
    return Status::SerializationError("'", path,
                                      "' is not a gisql snapshot");
  }
  GISQL_ASSIGN_OR_RETURN(uint8_t version, reader.GetU8());
  if (version != kSnapshotVersion) {
    return Status::SerializationError("unsupported snapshot version ",
                                      int(version));
  }
  GISQL_ASSIGN_OR_RETURN(uint64_t ntables, reader.GetVarint());
  for (uint64_t i = 0; i < ntables; ++i) {
    GISQL_ASSIGN_OR_RETURN(std::string table_name, reader.GetString());
    GISQL_ASSIGN_OR_RETURN(RowBatch batch, wire::ReadBatch(&reader));
    GISQL_ASSIGN_OR_RETURN(
        TablePtr table, engine_.CreateTable(table_name, batch.schema()));
    GISQL_RETURN_NOT_OK(table->CreateHashIndex(0));
    table->InsertUnchecked(std::move(batch.rows()));
  }
  if (!reader.AtEnd()) {
    return Status::SerializationError("trailing bytes in snapshot '", path,
                                      "'");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ComponentSource::Handle(
    uint8_t opcode, const std::vector<uint8_t>& request,
    double* processing_ms) {
  std::lock_guard<std::mutex> lock(request_mu_);
  if (processing_ms != nullptr) *processing_ms = 0.0;
  ByteReader reader(request);
  ByteWriter writer;
  switch (static_cast<wire::Opcode>(opcode)) {
    case wire::Opcode::kPing:
      writer.PutString(name_);
      return writer.Release();

    case wire::Opcode::kListTables: {
      auto names = engine_.TableNames();
      writer.PutVarint(names.size());
      for (const auto& n : names) writer.PutString(n);
      return writer.Release();
    }

    case wire::Opcode::kGetSchema: {
      GISQL_ASSIGN_OR_RETURN(std::string table_name, reader.GetString());
      GISQL_ASSIGN_OR_RETURN(TablePtr table, engine_.GetTable(table_name));
      wire::WriteSchema(&writer, *table->schema());
      return writer.Release();
    }

    case wire::Opcode::kGetStats: {
      GISQL_ASSIGN_OR_RETURN(std::string table_name, reader.GetString());
      GISQL_ASSIGN_OR_RETURN(TablePtr table, engine_.GetTable(table_name));
      wire::WriteTableStats(&writer, table->Stats());
      if (processing_ms != nullptr) {
        *processing_ms =
            static_cast<double>(table->num_rows()) * cpu_us_per_row_ / 1e3;
      }
      return writer.Release();
    }

    case wire::Opcode::kAdminSql: {
      GISQL_ASSIGN_OR_RETURN(std::string sql, reader.GetString());
      GISQL_RETURN_NOT_OK(ExecuteLocalSql(sql));
      return writer.Release();
    }

    case wire::Opcode::kTxnPrepare: {
      GISQL_ASSIGN_OR_RETURN(std::string txn_id, reader.GetString());
      GISQL_ASSIGN_OR_RETURN(uint64_t stmt_seq, reader.GetVarint());
      GISQL_ASSIGN_OR_RETURN(std::string sql, reader.GetString());
      GISQL_RETURN_NOT_OK(PrepareTxn(txn_id, sql, stmt_seq));
      return writer.Release();
    }

    case wire::Opcode::kTxnCommit: {
      GISQL_ASSIGN_OR_RETURN(std::string txn_id, reader.GetString());
      GISQL_RETURN_NOT_OK(CommitTxn(txn_id));
      return writer.Release();
    }

    case wire::Opcode::kTxnAbort: {
      GISQL_ASSIGN_OR_RETURN(std::string txn_id, reader.GetString());
      GISQL_RETURN_NOT_OK(AbortTxn(txn_id));
      return writer.Release();
    }

    case wire::Opcode::kExecuteFragment: {
      GISQL_ASSIGN_OR_RETURN(FragmentPlan frag, wire::ReadFragment(&reader));
      int64_t rows_scanned = 0;
      GISQL_ASSIGN_OR_RETURN(RowBatch batch,
                             ExecuteFragment(frag, &rows_scanned));
      if (processing_ms != nullptr) {
        *processing_ms =
            static_cast<double>(rows_scanned) * cpu_us_per_row_ / 1e3;
      }
      wire::WriteBatch(&writer, batch);
      return writer.Release();
    }

    case wire::Opcode::kExecuteFragmentColumnar: {
      GISQL_ASSIGN_OR_RETURN(FragmentPlan frag, wire::ReadFragment(&reader));
      int64_t rows_scanned = 0;
      GISQL_ASSIGN_OR_RETURN(RowBatch batch,
                             ExecuteFragment(frag, &rows_scanned));
      if (processing_ms != nullptr) {
        *processing_ms =
            static_cast<double>(rows_scanned) * cpu_us_per_row_ / 1e3;
      }
      // Columnar when every row fits its declared column type; row
      // encoding otherwise (e.g. an expression whose value type differs
      // from the projected column's declared type).
      Result<ColumnBatch> columnar = ColumnBatch::FromRows(batch);
      if (columnar.ok()) {
        writer.PutU8(wire::kBatchFormatColumnar);
        wire::WriteColumnBatch(&writer, *columnar);
      } else {
        writer.PutU8(wire::kBatchFormatRow);
        wire::WriteBatch(&writer, batch);
      }
      return writer.Release();
    }

    case wire::Opcode::kOpenCursor: {
      GISQL_ASSIGN_OR_RETURN(wire::OpenCursorRequest req,
                             wire::ReadOpenCursorRequest(&reader));
      // Idempotent by token: a retried (or duplicate-delivered) open
      // finds the cursor its first delivery staged.
      if (auto it = cursor_tokens_.find(req.token);
          it != cursor_tokens_.end()) {
        wire::WriteOpenCursorResponse(&writer, {it->second});
        return writer.Release();
      }
      if (cursors_.size() >= kMaxOpenCursorsPerSource) {
        return Status::Overloaded("source '", name_, "' has ",
                                  cursors_.size(),
                                  " open cursors (limit ",
                                  kMaxOpenCursorsPerSource, ")");
      }
      int64_t rows_scanned = 0;
      GISQL_ASSIGN_OR_RETURN(RowBatch batch,
                             ExecuteFragment(req.fragment, &rows_scanned));
      // The scan is paid here, at open; fetches only slice and ship.
      if (processing_ms != nullptr) {
        *processing_ms =
            static_cast<double>(rows_scanned) * cpu_us_per_row_ / 1e3;
      }
      const uint64_t id = next_cursor_id_++;
      SourceCursor& cur = cursors_[id];
      cur.token = req.token;
      cur.result = std::move(batch);
      cur.chunk_rows = req.chunk_rows;
      cursor_tokens_[req.token] = id;
      wire::WriteOpenCursorResponse(&writer, {id});
      return writer.Release();
    }

    case wire::Opcode::kFetchChunk: {
      GISQL_ASSIGN_OR_RETURN(wire::FetchChunkRequest req,
                             wire::ReadFetchChunkRequest(&reader));
      auto it = cursors_.find(req.cursor_id);
      if (it == cursors_.end()) {
        return Status::NotFound("cursor ", req.cursor_id,
                                " is not open at source '", name_, "'");
      }
      SourceCursor& cur = it->second;
      if (req.seq + 1 == cur.next_seq) {
        // One-chunk idempotency window: a retried fetch whose first
        // response was lost gets the identical payload again.
        return cur.last_chunk;
      }
      if (req.seq != cur.next_seq) {
        return Status::InvalidArgument(
            "cursor ", req.cursor_id, " fetch seq ", req.seq,
            " outside window (next ", cur.next_seq, ")");
      }
      const int64_t total = cur.result.num_rows();
      const int64_t take =
          std::min(cur.chunk_rows, total - cur.next_row);
      std::vector<Row> rows(
          cur.result.rows().begin() + cur.next_row,
          cur.result.rows().begin() + cur.next_row + take);
      RowBatch chunk(cur.result.schema(), std::move(rows));
      const bool done = cur.next_row + take >= total;
      wire::WriteCursorChunk(&writer, req.cursor_id, req.seq, done, chunk);
      cur.next_row += take;
      cur.next_seq = req.seq + 1;
      cur.last_chunk = writer.Release();
      return cur.last_chunk;
    }

    case wire::Opcode::kCloseCursor: {
      GISQL_ASSIGN_OR_RETURN(wire::CloseCursorRequest req,
                             wire::ReadCloseCursorRequest(&reader));
      // Idempotent: closing an unknown (already-closed) cursor is OK.
      if (auto it = cursors_.find(req.cursor_id); it != cursors_.end()) {
        cursor_tokens_.erase(it->second.token);
        cursors_.erase(it);
      }
      return writer.Release();
    }
  }
  return Status::InvalidArgument("unknown opcode ", int(opcode),
                                 " at source '", name_, "'");
}

}  // namespace gisql
