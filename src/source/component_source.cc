#include "source/component_source.h"

#include <algorithm>
#include <fstream>
#include <unordered_set>

#include "common/hash.h"
#include "exec/hash_aggregate.h"
#include "exec/vectorized.h"
#include "expr/binder.h"
#include "expr/eval.h"
#include "sql/parser.h"
#include "wire/cursor.h"
#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {

namespace {
/// A source stages at most this many concurrent cursors; past it, opens
/// answer Overloaded — backpressure instead of unbounded staging memory.
constexpr size_t kMaxOpenCursorsPerSource = 256;
}  // namespace

ComponentSource::ComponentSource(std::string name, SourceDialect dialect,
                                 double cpu_us_per_row,
                                 StorageConfig storage_config,
                                 MemoryBudget* memory_budget)
    : name_(std::move(name)),
      dialect_(dialect),
      caps_(SourceCapabilities::For(dialect)),
      cpu_us_per_row_(cpu_us_per_row),
      engine_(storage_config, memory_budget) {}

Status ComponentSource::ExecuteLocalSql(const std::string& sql) {
  GISQL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateTable: {
      std::vector<Field> fields;
      for (const auto& [col, type_name] : stmt.create_table->columns) {
        GISQL_ASSIGN_OR_RETURN(TypeId type, ParseTypeName(type_name));
        fields.emplace_back(col, type, /*nullable=*/true,
                            stmt.create_table->table_name);
      }
      // First column is conventionally the key: non-nullable.
      if (!fields.empty()) fields[0].nullable = false;
      GISQL_ASSIGN_OR_RETURN(
          TablePtr table,
          engine_.CreateTable(stmt.create_table->table_name,
                              std::make_shared<Schema>(std::move(fields))));
      // Key column gets a hash index so KV-style lookups are realistic;
      // relational sources also get an ordered index there, the access
      // path behind index range scans and index-nested-loop joins.
      GISQL_RETURN_NOT_OK(table->CreateHashIndex(0));
      if (dialect_ == SourceDialect::kRelational) {
        GISQL_RETURN_NOT_OK(table->CreateOrderedIndex(0));
      }
      return Status::OK();
    }
    case sql::Statement::Kind::kInsert: {
      GISQL_ASSIGN_OR_RETURN(TablePtr table,
                             engine_.GetTable(stmt.insert->table_name));
      static const Schema kEmptySchema;
      Binder binder(kEmptySchema);
      static const Row kEmptyRow;
      for (const auto& ast_row : stmt.insert->rows) {
        Row row;
        row.reserve(ast_row.size());
        for (const auto& ast_val : ast_row) {
          GISQL_ASSIGN_OR_RETURN(ExprPtr e, binder.BindScalar(*ast_val));
          GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, kEmptyRow));
          row.push_back(std::move(v));
        }
        GISQL_RETURN_NOT_OK(table->Insert(std::move(row)));
      }
      return Status::OK();
    }
    case sql::Statement::Kind::kDelete: {
      GISQL_ASSIGN_OR_RETURN(TablePtr table,
                             engine_.GetTable(stmt.del->table_name));
      // Administrative (non-transactional) delete: physically removes
      // the rows, like the other local DML runs outside MVCC.
      if (stmt.del->where == nullptr) {
        static const ExprPtr kTrue = MakeLiteral(Value::Bool(true));
        return table->Delete(*kTrue).status();
      }
      Binder binder(*table->schema());
      GISQL_ASSIGN_OR_RETURN(ExprPtr pred, binder.BindScalar(*stmt.del->where));
      return table->Delete(*pred).status();
    }
    case sql::Statement::Kind::kDropTable:
      return engine_.DropTable(stmt.drop_table->table_name);
    default:
      return Status::InvalidArgument(
          "component sources accept only CREATE TABLE / INSERT / DELETE / "
          "DROP TABLE locally; route queries through the mediator");
  }
}

Status ComponentSource::CheckCapabilities(const FragmentPlan& frag) const {
  if (frag.filter && !caps_.filter_pushdown) {
    return Status::CapabilityError(SourceDialectName(dialect_), " source '",
                                   name_, "' cannot evaluate filters");
  }
  if (!frag.projections.empty() && !caps_.projection_pushdown) {
    return Status::CapabilityError(SourceDialectName(dialect_), " source '",
                                   name_, "' cannot project");
  }
  if (frag.has_aggregate && !caps_.aggregate_pushdown) {
    return Status::CapabilityError(SourceDialectName(dialect_), " source '",
                                   name_, "' cannot aggregate");
  }
  if (frag.limit >= 0 && !caps_.limit_pushdown) {
    return Status::CapabilityError(SourceDialectName(dialect_), " source '",
                                   name_, "' cannot apply LIMIT");
  }
  if (!frag.order_by.empty() && !caps_.sort_pushdown) {
    return Status::CapabilityError(SourceDialectName(dialect_), " source '",
                                   name_, "' cannot apply ORDER BY");
  }
  if (frag.semijoin_column >= 0) {
    if (!caps_.semijoin_pushdown) {
      return Status::CapabilityError(SourceDialectName(dialect_),
                                     " source '", name_,
                                     "' cannot apply semijoin reduction");
    }
    if (caps_.semijoin_key_only && frag.semijoin_column != 0) {
      return Status::CapabilityError(
          SourceDialectName(dialect_), " source '", name_,
          "' supports semijoin lookup only on the key column");
    }
  }
  if (frag.index_column >= 0) {
    if (!caps_.index_range_scan) {
      return Status::CapabilityError(SourceDialectName(dialect_),
                                     " source '", name_,
                                     "' cannot execute index range scans");
    }
    if (frag.semijoin_column >= 0) {
      return Status::InvalidArgument(
          "fragment cannot combine semijoin reduction with an index range "
          "scan: they are alternative access paths");
    }
  }
  if (!frag.join_table.empty() && !caps_.index_join) {
    return Status::CapabilityError(
        SourceDialectName(dialect_), " source '", name_,
        "' cannot execute index-nested-loop joins");
  }
  if (frag.has_aggregate && !frag.projections.empty()) {
    return Status::InvalidArgument(
        "fragment cannot carry both projections and aggregation");
  }
  for (const auto& agg : frag.aggregates) {
    if (agg.distinct && agg.kind != AggKind::kMin &&
        agg.kind != AggKind::kMax) {
      return Status::InvalidArgument(
          "DISTINCT aggregates are not decomposable; the mediator must "
          "evaluate them centrally");
    }
  }
  return Status::OK();
}

namespace {

/// Sorts a batch by the fragment's order-by expressions (evaluated over
/// the batch's own rows) and applies `limit`.
Status SortAndLimit(RowBatch* batch, const std::vector<ExprPtr>& order_by,
                    const std::vector<bool>& ascending, int64_t limit) {
  if (!order_by.empty()) {
    // Precompute sort keys so evaluation errors surface before sorting.
    std::vector<std::pair<Row, size_t>> keyed;
    keyed.reserve(batch->num_rows());
    for (size_t i = 0; i < batch->num_rows(); ++i) {
      Row keys;
      keys.reserve(order_by.size());
      for (const auto& e : order_by) {
        GISQL_ASSIGN_OR_RETURN(Value k, EvalExpr(*e, batch->rows()[i]));
        keys.push_back(std::move(k));
      }
      keyed.emplace_back(std::move(keys), i);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       for (size_t k = 0; k < order_by.size(); ++k) {
                         const int c = a.first[k].Compare(b.first[k]);
                         if (c != 0) {
                           const bool asc =
                               k < ascending.size() ? ascending[k] : true;
                           return asc ? c < 0 : c > 0;
                         }
                       }
                       return a.second < b.second;
                     });
    std::vector<Row> sorted;
    sorted.reserve(keyed.size());
    for (const auto& [keys, idx] : keyed) {
      sorted.push_back(std::move(batch->rows()[idx]));
    }
    *batch = RowBatch(batch->schema(), std::move(sorted));
  }
  if (limit >= 0 && static_cast<int64_t>(batch->num_rows()) > limit) {
    batch->rows().resize(static_cast<size_t>(limit));
  }
  return Status::OK();
}

}  // namespace

namespace {

/// True when `row` would have been produced by the fragment's access
/// path — membership test for read-your-writes overlays (a staged row
/// has no heap rid, so it cannot come from an index).
bool RowInAccessPath(const FragmentPlan& frag, const Row& row) {
  if (frag.semijoin_column >= 0) {
    const size_t col = static_cast<size_t>(frag.semijoin_column);
    if (col >= row.size() || row[col].is_null()) return false;
    for (const auto& key : frag.semijoin_values) {
      if (row[col].Compare(key) == 0) return true;
    }
    return false;
  }
  if (frag.index_column >= 0) {
    const size_t col = static_cast<size_t>(frag.index_column);
    if (col >= row.size() || row[col].is_null()) return false;
    if (!frag.range_lo.is_null()) {
      const int c = row[col].Compare(frag.range_lo);
      if (frag.range_lo_inclusive ? c < 0 : c <= 0) return false;
    }
    if (!frag.range_hi.is_null()) {
      const int c = row[col].Compare(frag.range_hi);
      if (frag.range_hi_inclusive ? c > 0 : c >= 0) return false;
    }
    return true;
  }
  return true;  // full scan sees everything
}

}  // namespace

const ComponentSource::StagedTxn* ComponentSource::FindStagedByNumericId(
    uint64_t numeric_id) const {
  if (numeric_id == 0) return nullptr;
  for (const auto& [id, txn] : staged_) {
    if (txn.numeric_id == numeric_id) return &txn;
  }
  return nullptr;
}

Result<RowBatch> ComponentSource::ExecuteFragment(const FragmentPlan& frag,
                                                  int64_t* rows_scanned) {
  GISQL_RETURN_NOT_OK(CheckCapabilities(frag));
  GISQL_ASSIGN_OR_RETURN(TablePtr table, engine_.GetTable(frag.table));

  // MVCC read context: every gathered heap row passes the version
  // visibility check for the fragment's snapshot, and the reading
  // transaction's own staged writes overlay the result
  // (read-your-writes): staged deletes hide rows, staged inserts
  // append below.
  const StagedTxn* self = FindStagedByNumericId(frag.txn_id);
  auto own_deleted = [&](const Table* t, size_t rid) {
    if (self == nullptr) return false;
    for (const auto& w : self->writes) {
      if (w.table.get() != t) continue;
      for (size_t d : w.delete_rids) {
        if (d == rid) return true;
      }
    }
    return false;
  };
  auto visible = [&](size_t rid) {
    return table->VisibleAt(rid, frag.snapshot_ts) &&
           !own_deleted(table.get(), rid);
  };

  int64_t scanned = 0;
  // Candidate rows are owned copies: heap rows live in buffer-pool
  // pages, so every fetch below pins a page and charges hits/misses.
  std::vector<Row> owned;

  if (frag.semijoin_column >= 0) {
    const size_t col = static_cast<size_t>(frag.semijoin_column);
    if (col >= table->schema()->num_fields()) {
      return Status::InvalidArgument("semijoin column ", col,
                                     " out of range for table '",
                                     frag.table, "'");
    }
    HashIndex* index = table->GetHashIndex(col);
    if (index != nullptr) {
      // Index lookups: touch only matching rows.
      for (const auto& key : frag.semijoin_values) {
        for (size_t rid : index->Lookup(key)) {
          if (!visible(rid)) continue;
          GISQL_ASSIGN_OR_RETURN(Row row, table->GetRow(rid));
          owned.push_back(std::move(row));
          ++scanned;
        }
      }
    } else {
      std::unordered_set<uint64_t> keys;
      keys.reserve(frag.semijoin_values.size());
      for (const auto& v : frag.semijoin_values) keys.insert(v.Hash());
      GISQL_RETURN_NOT_OK(table->Scan([&](size_t rid, const Row& row) {
        ++scanned;
        if (!visible(rid)) return Status::OK();
        const Value& v = row[col];
        if (v.is_null() || !keys.count(v.Hash())) return Status::OK();
        // Hash hit: confirm by value to rule out collisions.
        for (const auto& key : frag.semijoin_values) {
          if (v.Compare(key) == 0) {
            owned.push_back(row);
            break;
          }
        }
        return Status::OK();
      }));
    }
  } else if (frag.index_column >= 0) {
    // Index range scan: walk the B+tree for the qualifying row ids and
    // fetch just those rows' pages.
    const size_t col = static_cast<size_t>(frag.index_column);
    if (col >= table->schema()->num_fields()) {
      return Status::InvalidArgument("index column ", col,
                                     " out of range for table '",
                                     frag.table, "'");
    }
    OrderedIndex* index = table->GetOrderedIndex(col);
    if (index == nullptr) {
      return Status::InvalidArgument(
          "fragment requests an index range scan on column ", col,
          " of table '", frag.table, "', which has no ordered index");
    }
    const std::vector<size_t> rids =
        index->Range(frag.range_lo, frag.range_lo_inclusive, frag.range_hi,
                     frag.range_hi_inclusive);
    owned.reserve(rids.size());
    for (size_t rid : rids) {
      if (!visible(rid)) continue;
      GISQL_ASSIGN_OR_RETURN(Row row, table->GetRow(rid));
      owned.push_back(std::move(row));
      ++scanned;
    }
  } else {
    owned.reserve(static_cast<size_t>(table->num_rows()));
    GISQL_RETURN_NOT_OK(table->Scan([&](size_t rid, const Row& row) {
      ++scanned;
      if (!visible(rid)) return Status::OK();
      owned.push_back(row);
      return Status::OK();
    }));
  }

  // Read-your-writes: append this transaction's staged inserts for the
  // scanned table, filtered through the same access-path membership the
  // heap rows went through.
  if (self != nullptr) {
    for (const auto& w : self->writes) {
      if (w.table.get() != table.get()) continue;
      for (const Row& staged_row : w.rows) {
        if (!RowInAccessPath(frag, staged_row)) continue;
        owned.push_back(staged_row);
        ++scanned;
      }
    }
  }

  // The row space downstream operators see: the outer table's schema,
  // extended by the inner table's under an index-nested-loop join.
  SchemaPtr scan_schema = table->schema();

  // With a join, only a filter confined to outer columns may run before
  // probing (it prunes probes); anything wider waits for the
  // concatenated row.
  ExprPtr pre_filter = frag.filter;
  ExprPtr post_filter;
  if (!frag.join_table.empty() && frag.filter) {
    std::vector<size_t> cols;
    frag.filter->CollectColumns(&cols);
    for (size_t c : cols) {
      if (c >= table->schema()->num_fields()) {
        pre_filter = nullptr;
        post_filter = frag.filter;
        break;
      }
    }
  }

  std::vector<Row> filtered_rows;
  if (pre_filter) {
    filtered_rows.reserve(owned.size());
    for (Row& row : owned) {
      GISQL_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*pre_filter, row));
      if (keep) filtered_rows.push_back(std::move(row));
    }
  } else {
    filtered_rows = std::move(owned);
  }

  // Index-nested-loop join: probe the co-located inner table's index
  // with each outer row's key and concatenate matches.
  if (!frag.join_table.empty()) {
    GISQL_ASSIGN_OR_RETURN(TablePtr inner,
                           engine_.GetTable(frag.join_table));
    const size_t outer_width = table->schema()->num_fields();
    const size_t inner_width = inner->schema()->num_fields();
    if (frag.join_outer_column < 0 ||
        static_cast<size_t>(frag.join_outer_column) >= outer_width) {
      return Status::InvalidArgument(
          "join outer column ", frag.join_outer_column,
          " out of range for table '", frag.table, "'");
    }
    if (frag.join_inner_column < 0 ||
        static_cast<size_t>(frag.join_inner_column) >= inner_width) {
      return Status::InvalidArgument(
          "join inner column ", frag.join_inner_column,
          " out of range for table '", frag.join_table, "'");
    }
    const size_t inner_col = static_cast<size_t>(frag.join_inner_column);
    HashIndex* hash_index = inner->GetHashIndex(inner_col);
    OrderedIndex* ordered_index =
        hash_index == nullptr ? inner->GetOrderedIndex(inner_col) : nullptr;
    if (hash_index == nullptr && ordered_index == nullptr) {
      return Status::InvalidArgument(
          "fragment requests an index-nested-loop join probing column ",
          frag.join_inner_column, " of table '", frag.join_table,
          "', which has no index");
    }
    std::vector<Field> fields;
    fields.reserve(outer_width + inner_width);
    for (size_t i = 0; i < outer_width; ++i) {
      fields.push_back(table->schema()->field(i));
    }
    for (size_t i = 0; i < inner_width; ++i) {
      fields.push_back(inner->schema()->field(i));
    }
    scan_schema = std::make_shared<Schema>(std::move(fields));
    std::vector<Row> joined;
    for (const Row& outer_row : filtered_rows) {
      const Value& key = outer_row[static_cast<size_t>(
          frag.join_outer_column)];
      if (key.is_null()) continue;
      const std::vector<size_t> rids =
          hash_index != nullptr ? hash_index->Lookup(key)
                                : ordered_index->tree().Lookup(key);
      for (size_t rid : rids) {
        if (!inner->VisibleAt(rid, frag.snapshot_ts) ||
            own_deleted(inner.get(), rid)) {
          continue;
        }
        GISQL_ASSIGN_OR_RETURN(Row inner_row, inner->GetRow(rid));
        ++scanned;
        if (frag.join_inner_filter) {
          GISQL_ASSIGN_OR_RETURN(
              bool keep, EvalPredicate(*frag.join_inner_filter, inner_row));
          if (!keep) continue;
        }
        Row combined;
        combined.reserve(outer_width + inner_width);
        for (const Value& v : outer_row) combined.push_back(v);
        for (Value& v : inner_row) combined.push_back(std::move(v));
        joined.push_back(std::move(combined));
      }
    }
    filtered_rows = std::move(joined);
    if (post_filter) {
      std::vector<Row> kept;
      kept.reserve(filtered_rows.size());
      for (Row& row : filtered_rows) {
        GISQL_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*post_filter, row));
        if (keep) kept.push_back(std::move(row));
      }
      filtered_rows = std::move(kept);
    }
  }
  if (rows_scanned != nullptr) *rows_scanned = scanned;

  // Pointer view for the downstream aggregation/projection kernels.
  std::vector<const Row*> filtered;
  filtered.reserve(filtered_rows.size());
  for (const Row& row : filtered_rows) filtered.push_back(&row);

  // Aggregation path.
  if (frag.has_aggregate) {
    std::vector<Field> out_fields;
    for (const auto& g : frag.group_by) {
      out_fields.emplace_back(g->ToString(), g->type);
    }
    for (const auto& a : frag.aggregates) {
      out_fields.emplace_back(a.display, a.result_type);
    }
    auto out_schema = std::make_shared<Schema>(std::move(out_fields));
    const int64_t agg_limit = frag.order_by.empty() ? frag.limit : -1;
    // Vectorized partial aggregation: pivot only the referenced
    // columns and run the columnar kernel. A zero-row probe batch
    // carries the column types for the cheap eligibility check; a
    // value that does not fit its declared column type fails the
    // conversion and drops to the row path.
    if (vectorized_execution_) {
      const ColumnBatch probe(scan_schema);
      std::vector<size_t> needed;
      for (const auto& g : frag.group_by) g->CollectColumns(&needed);
      for (const auto& a : frag.aggregates) {
        if (a.arg) a.arg->CollectColumns(&needed);
      }
      if (CanVectorizeAggregate(frag.group_by, frag.aggregates, probe)) {
        Result<ColumnBatch> cols =
            ColumnBatch::FromRowPtrs(scan_schema, filtered, &needed);
        if (cols.ok()) {
          GISQL_ASSIGN_OR_RETURN(
              RowBatch out,
              HashAggregateColumnar(*cols, frag.group_by, frag.aggregates,
                                    std::move(out_schema), agg_limit));
          GISQL_RETURN_NOT_OK(SortAndLimit(&out, frag.order_by,
                                           frag.order_ascending,
                                           frag.limit));
          return out;
        }
      }
    }
    GISQL_ASSIGN_OR_RETURN(
        RowBatch out,
        HashAggregate(filtered, frag.group_by, frag.aggregates,
                      std::move(out_schema), agg_limit));
    GISQL_RETURN_NOT_OK(SortAndLimit(&out, frag.order_by,
                                     frag.order_ascending, frag.limit));
    return out;
  }

  // Projection / pass-through path.
  SchemaPtr out_schema;
  if (!frag.projections.empty()) {
    std::vector<Field> out_fields;
    for (size_t i = 0; i < frag.projections.size(); ++i) {
      const std::string name = i < frag.projection_names.size() &&
                                       !frag.projection_names[i].empty()
                                   ? frag.projection_names[i]
                                   : frag.projections[i]->ToString();
      out_fields.emplace_back(name, frag.projections[i]->type);
    }
    out_schema = std::make_shared<Schema>(std::move(out_fields));
  } else {
    out_schema = scan_schema;
  }

  RowBatch out(out_schema);
  for (const Row* row : filtered) {
    if (frag.order_by.empty() && frag.limit >= 0 &&
        static_cast<int64_t>(out.num_rows()) >= frag.limit) {
      break;
    }
    if (frag.projections.empty()) {
      out.Append(*row);
    } else {
      Row projected;
      projected.reserve(frag.projections.size());
      for (const auto& p : frag.projections) {
        GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, *row));
        projected.push_back(std::move(v));
      }
      out.Append(std::move(projected));
    }
  }
  GISQL_RETURN_NOT_OK(SortAndLimit(&out, frag.order_by,
                                   frag.order_ascending, frag.limit));
  return out;
}

Status ComponentSource::PrepareTxn(const std::string& txn_id,
                                   const std::string& sql,
                                   uint64_t stmt_seq) {
  // Legacy entry point: numeric id 0 takes no locks, so the result is
  // always granted and only the status matters.
  return PrepareTxnAt(txn_id, sql, stmt_seq, 0, 0).status();
}

Result<ComponentSource::TxnPrepareResult> ComponentSource::PrepareTxnAt(
    const std::string& txn_id, const std::string& sql, uint64_t stmt_seq,
    uint64_t numeric_txn_id, uint64_t snapshot_ts) {
  TxnPrepareResult granted;
  auto txn_it = staged_.find(txn_id);
  if (txn_it != staged_.end()) {
    auto seen = txn_it->second.seen.find(stmt_seq);
    if (seen != txn_it->second.seen.end()) {
      if (seen->second == sql) return granted;  // redelivery
      return Status::InvalidArgument(
          "transaction '", txn_id, "' statement ", stmt_seq,
          " redelivered with different SQL");
    }
  }
  GISQL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (numeric_txn_id == 0 && stmt.kind != sql::Statement::Kind::kInsert) {
    return Status::InvalidArgument(
        "global transactions support INSERT statements only");
  }
  if (stmt.kind != sql::Statement::Kind::kInsert &&
      stmt.kind != sql::Statement::Kind::kDelete) {
    return Status::InvalidArgument(
        "global transactions support INSERT and DELETE statements only");
  }

  // A rejected prepare at a source holding none of this transaction's
  // staged writes must not retain the partial locks it just took: the
  // source never becomes a participant, so no later COMMIT/ABORT would
  // release them. With prior staged writes the partial locks stay held
  // (strict 2PL) — the eventual commit/abort reaches this source.
  auto reject = [&](LockAcquisition a) {
    if (staged_.find(txn_id) == staged_.end()) {
      locks_.ReleaseAll(numeric_txn_id);
    }
    TxnPrepareResult r;
    r.granted = false;
    r.holders = std::move(a.holders);
    return r;
  };

  StagedWrite staged;
  if (stmt.kind == sql::Statement::Kind::kInsert) {
    GISQL_ASSIGN_OR_RETURN(TablePtr table,
                           engine_.GetTable(stmt.insert->table_name));
    static const Schema kEmptySchema;
    Binder binder(kEmptySchema);
    static const Row kEmptyRow;
    staged.table = table;
    for (const auto& ast_row : stmt.insert->rows) {
      Row row;
      row.reserve(ast_row.size());
      for (const auto& ast_val : ast_row) {
        GISQL_ASSIGN_OR_RETURN(ExprPtr e, binder.BindScalar(*ast_val));
        GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, kEmptyRow));
        row.push_back(std::move(v));
      }
      // Full validation now so COMMIT cannot fail on data errors.
      GISQL_ASSIGN_OR_RETURN(Row validated,
                             table->ValidateRow(std::move(row)));
      staged.rows.push_back(std::move(validated));
    }
    if (numeric_txn_id != 0) {
      LockAcquisition t = locks_.LockTable(numeric_txn_id, table->name(),
                                           LockMode::kIntentExclusive);
      if (!t.granted) return reject(std::move(t));
      for (const Row& row : staged.rows) {
        const uint64_t key_hash = row.empty() ? 0 : row[0].Hash();
        LockAcquisition a = locks_.LockRow(numeric_txn_id, table->name(),
                                           key_hash, LockMode::kExclusive);
        // Locks granted so far stay held when this source is already a
        // participant: the transaction either retries this statement
        // (re-acquire is idempotent) or ends, and ReleaseAll reclaims
        // everything.
        if (!a.granted) return reject(std::move(a));
      }
    }
  } else {
    // Transactional DELETE (numeric-id path only, checked above): the
    // predicate evaluates against rows visible at the transaction's
    // snapshot; matched rows are X-locked by key and their heap rids
    // staged. Commit ends their versions at the commit timestamp.
    GISQL_ASSIGN_OR_RETURN(TablePtr table,
                           engine_.GetTable(stmt.del->table_name));
    ExprPtr pred;
    if (stmt.del->where != nullptr) {
      Binder binder(*table->schema());
      GISQL_ASSIGN_OR_RETURN(pred, binder.BindScalar(*stmt.del->where));
    }
    staged.table = table;
    std::vector<Value> keys;
    GISQL_RETURN_NOT_OK(table->Scan([&](size_t rid, const Row& row) {
      if (!table->VisibleAt(rid, snapshot_ts)) return Status::OK();
      bool match = true;
      if (pred != nullptr) {
        GISQL_ASSIGN_OR_RETURN(match, EvalPredicate(*pred, row));
      }
      if (match) {
        staged.delete_rids.push_back(rid);
        keys.push_back(row.empty() ? Value::Int(0) : row[0]);
      }
      return Status::OK();
    }));
    // First committer wins: a row visible in our snapshot but already
    // ended at latest was deleted by a transaction that committed after
    // we began — retrying cannot help, the transaction must abort.
    for (size_t rid : staged.delete_rids) {
      if (!table->VisibleAt(rid, 0)) {
        return Status::ExecutionError(
            "write-write conflict: a row matched by DELETE in transaction '",
            txn_id, "' was already deleted by a newer committed transaction");
      }
    }
    LockAcquisition t = locks_.LockTable(numeric_txn_id, table->name(),
                                         LockMode::kIntentExclusive);
    if (!t.granted) return reject(std::move(t));
    for (const Value& key : keys) {
      LockAcquisition a = locks_.LockRow(numeric_txn_id, table->name(),
                                         key.Hash(), LockMode::kExclusive);
      if (!a.granted) return reject(std::move(a));
    }
  }

  auto& txn = staged_[txn_id];
  txn.numeric_id = numeric_txn_id;
  txn.snapshot_ts = snapshot_ts;
  txn.seen.emplace(stmt_seq, sql);
  txn.writes.push_back(std::move(staged));
  return granted;
}

Status ComponentSource::CommitTxn(const std::string& txn_id,
                                  uint64_t commit_ts, uint64_t watermark) {
  auto it = staged_.find(txn_id);
  if (it == staged_.end()) {
    // A commit whose ack was lost gets retried: converge instead of
    // reporting the (already satisfied) request as an error.
    if (committed_.count(txn_id) > 0) return Status::OK();
    return Status::NotFound("transaction '", txn_id, "' is not prepared at '",
                            name_, "'");
  }
  for (auto& write : it->second.writes) {
    for (size_t rid : write.delete_rids) {
      write.table->MarkDeleted(rid, commit_ts);
    }
    if (!write.rows.empty()) {
      GISQL_RETURN_NOT_OK(
          write.table->InsertVersioned(std::move(write.rows), commit_ts));
    }
  }
  const uint64_t numeric_id = it->second.numeric_id;
  staged_.erase(it);
  committed_.insert(txn_id);
  if (numeric_id != 0) locks_.ReleaseAll(numeric_id);
  if (watermark > 0) GcToWatermark(watermark);
  return Status::OK();
}

Status ComponentSource::AbortTxn(const std::string& txn_id) {
  // Aborting an unknown transaction is a no-op (idempotent rollback).
  auto it = staged_.find(txn_id);
  if (it == staged_.end()) return Status::OK();
  const uint64_t numeric_id = it->second.numeric_id;
  staged_.erase(it);
  if (numeric_id != 0) locks_.ReleaseAll(numeric_id);
  return Status::OK();
}

int64_t ComponentSource::GcToWatermark(uint64_t watermark) {
  // A staged DELETE holds heap rids; compacting its table would shift
  // them under the staged transaction. Such tables wait for the next
  // watermark after that transaction resolves.
  std::set<const Table*> pinned;
  for (const auto& [id, txn] : staged_) {
    for (const auto& w : txn.writes) {
      if (!w.delete_rids.empty()) pinned.insert(w.table.get());
    }
  }
  int64_t total = 0;
  for (const auto& table_name : engine_.TableNames()) {
    Result<TablePtr> table = engine_.GetTable(table_name);
    if (!table.ok()) continue;
    if (pinned.count(table->get())) continue;
    Result<int64_t> removed = (*table)->GcToWatermark(watermark);
    if (removed.ok()) total += *removed;
  }
  return total;
}

namespace {
constexpr uint32_t kSnapshotMagic = 0x47495351;  // "GISQ"
constexpr uint8_t kSnapshotVersion = 1;
}  // namespace

Status ComponentSource::SaveSnapshot(const std::string& path) const {
  ByteWriter writer;
  writer.PutU32(kSnapshotMagic);
  writer.PutU8(kSnapshotVersion);
  // Engine access is const-friendly here: TableNames/GetTable only read.
  auto& engine = const_cast<ComponentSource*>(this)->engine_;
  const auto names = engine.TableNames();
  writer.PutVarint(names.size());
  for (const auto& name : names) {
    GISQL_ASSIGN_OR_RETURN(TablePtr table, engine.GetTable(name));
    writer.PutString(table->name());
    RowBatch batch(table->schema(), table->rows());
    wire::WriteBatch(&writer, batch);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '", path, "' for writing");
  }
  out.write(reinterpret_cast<const char*>(writer.data().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) {
    return Status::IOError("short write to '", path, "'");
  }
  return Status::OK();
}

Status ComponentSource::LoadSnapshot(const std::string& path) {
  if (!engine_.TableNames().empty()) {
    return Status::InvalidArgument(
        "LoadSnapshot requires an empty source; '", name_,
        "' already has tables");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open snapshot '", path, "'");
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  ByteReader reader(bytes);
  GISQL_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kSnapshotMagic) {
    return Status::SerializationError("'", path,
                                      "' is not a gisql snapshot");
  }
  GISQL_ASSIGN_OR_RETURN(uint8_t version, reader.GetU8());
  if (version != kSnapshotVersion) {
    return Status::SerializationError("unsupported snapshot version ",
                                      int(version));
  }
  GISQL_ASSIGN_OR_RETURN(uint64_t ntables, reader.GetVarint());
  for (uint64_t i = 0; i < ntables; ++i) {
    GISQL_ASSIGN_OR_RETURN(std::string table_name, reader.GetString());
    GISQL_ASSIGN_OR_RETURN(RowBatch batch, wire::ReadBatch(&reader));
    GISQL_ASSIGN_OR_RETURN(
        TablePtr table, engine_.CreateTable(table_name, batch.schema()));
    GISQL_RETURN_NOT_OK(table->CreateHashIndex(0));
    if (dialect_ == SourceDialect::kRelational) {
      GISQL_RETURN_NOT_OK(table->CreateOrderedIndex(0));
    }
    GISQL_RETURN_NOT_OK(table->InsertUnchecked(std::move(batch.rows())));
  }
  if (!reader.AtEnd()) {
    return Status::SerializationError("trailing bytes in snapshot '", path,
                                      "'");
  }
  return Status::OK();
}

ComponentSource::FragmentPageStats ComponentSource::PageStatsSince(
    const BufferPoolStats& before) const {
  const BufferPoolStats after = engine_.pool().Snapshot();
  FragmentPageStats pages;
  pages.page_hits = after.hits - before.hits;
  pages.page_misses = after.misses - before.misses;
  pages.evictions = after.evictions - before.evictions;
  pages.disk_us = after.disk_us - before.disk_us;
  return pages;
}

void ComponentSource::WritePageStatsTrailer(ByteWriter* writer,
                                            const FragmentPageStats& pages) {
  // Appended after the batch payload; old decoders that stop at the
  // batch simply never look at it, new ones read it when bytes remain.
  writer->PutVarint(static_cast<uint64_t>(pages.page_hits));
  writer->PutVarint(static_cast<uint64_t>(pages.page_misses));
  writer->PutVarint(static_cast<uint64_t>(pages.evictions));
  writer->PutDouble(pages.disk_us);
}

Result<std::vector<uint8_t>> ComponentSource::Handle(
    uint8_t opcode, const std::vector<uint8_t>& request,
    double* processing_ms) {
  std::lock_guard<std::mutex> lock(request_mu_);
  if (processing_ms != nullptr) *processing_ms = 0.0;
  ByteReader reader(request);
  ByteWriter writer;
  switch (static_cast<wire::Opcode>(opcode)) {
    case wire::Opcode::kPing:
      writer.PutString(name_);
      return writer.Release();

    case wire::Opcode::kListTables: {
      auto names = engine_.TableNames();
      writer.PutVarint(names.size());
      for (const auto& n : names) writer.PutString(n);
      return writer.Release();
    }

    case wire::Opcode::kGetSchema: {
      GISQL_ASSIGN_OR_RETURN(std::string table_name, reader.GetString());
      GISQL_ASSIGN_OR_RETURN(TablePtr table, engine_.GetTable(table_name));
      wire::WriteSchema(&writer, *table->schema());
      return writer.Release();
    }

    case wire::Opcode::kGetStats: {
      GISQL_ASSIGN_OR_RETURN(std::string table_name, reader.GetString());
      GISQL_ASSIGN_OR_RETURN(TablePtr table, engine_.GetTable(table_name));
      const double disk_us_before = engine_.pool().Snapshot().disk_us;
      wire::WriteTableStats(&writer, table->Stats());
      if (processing_ms != nullptr) {
        *processing_ms =
            static_cast<double>(table->num_rows()) * cpu_us_per_row_ / 1e3 +
            (engine_.pool().Snapshot().disk_us - disk_us_before) / 1e3;
      }
      return writer.Release();
    }

    case wire::Opcode::kAdminSql: {
      GISQL_ASSIGN_OR_RETURN(std::string sql, reader.GetString());
      GISQL_RETURN_NOT_OK(ExecuteLocalSql(sql));
      return writer.Release();
    }

    case wire::Opcode::kBulkLoad: {
      // Replica seeding: one RPC carries the table name plus every row,
      // so the simulated WAN prices the copy as a single bulk transfer.
      // The schema is re-qualified under the new table name and follows
      // the CREATE TABLE conventions (key column non-nullable + indexed).
      GISQL_ASSIGN_OR_RETURN(std::string table_name, reader.GetString());
      GISQL_ASSIGN_OR_RETURN(RowBatch batch, wire::ReadBatch(&reader));
      std::vector<Field> fields;
      fields.reserve(batch.schema()->num_fields());
      for (const auto& f : batch.schema()->fields()) {
        fields.emplace_back(f.name, f.type, f.nullable, table_name);
      }
      if (!fields.empty()) fields[0].nullable = false;
      GISQL_ASSIGN_OR_RETURN(
          TablePtr table,
          engine_.CreateTable(table_name,
                              std::make_shared<Schema>(std::move(fields))));
      GISQL_RETURN_NOT_OK(table->CreateHashIndex(0));
      if (dialect_ == SourceDialect::kRelational) {
        GISQL_RETURN_NOT_OK(table->CreateOrderedIndex(0));
      }
      const size_t loaded_rows = batch.num_rows();
      GISQL_RETURN_NOT_OK(table->InsertUnchecked(std::move(batch.rows())));
      if (processing_ms != nullptr) {
        *processing_ms =
            static_cast<double>(loaded_rows) * cpu_us_per_row_ / 1e3;
      }
      return writer.Release();
    }

    case wire::Opcode::kTxnPrepare: {
      GISQL_ASSIGN_OR_RETURN(std::string txn_id, reader.GetString());
      GISQL_ASSIGN_OR_RETURN(uint64_t stmt_seq, reader.GetVarint());
      GISQL_ASSIGN_OR_RETURN(std::string sql, reader.GetString());
      // Trailing MVCC context, absent on legacy (PR 1) requests.
      uint64_t numeric_txn_id = 0;
      uint64_t snapshot_ts = 0;
      if (!reader.AtEnd()) {
        GISQL_ASSIGN_OR_RETURN(numeric_txn_id, reader.GetVarint());
        GISQL_ASSIGN_OR_RETURN(snapshot_ts, reader.GetVarint());
      }
      GISQL_ASSIGN_OR_RETURN(
          TxnPrepareResult result,
          PrepareTxnAt(txn_id, sql, stmt_seq, numeric_txn_id, snapshot_ts));
      // Response payload: grant/conflict byte + conflicting holders.
      // Legacy callers never read the payload, so this is additive.
      writer.PutU8(result.granted ? 0 : 1);
      writer.PutVarint(result.holders.size());
      for (uint64_t h : result.holders) writer.PutVarint(h);
      return writer.Release();
    }

    case wire::Opcode::kTxnCommit: {
      GISQL_ASSIGN_OR_RETURN(std::string txn_id, reader.GetString());
      // Trailing commit timestamp + GC watermark, absent on legacy
      // requests (both default to 0: bootstrap stamp, no GC).
      uint64_t commit_ts = 0;
      uint64_t watermark = 0;
      if (!reader.AtEnd()) {
        GISQL_ASSIGN_OR_RETURN(commit_ts, reader.GetVarint());
        GISQL_ASSIGN_OR_RETURN(watermark, reader.GetVarint());
      }
      GISQL_RETURN_NOT_OK(CommitTxn(txn_id, commit_ts, watermark));
      return writer.Release();
    }

    case wire::Opcode::kTxnAbort: {
      GISQL_ASSIGN_OR_RETURN(std::string txn_id, reader.GetString());
      GISQL_RETURN_NOT_OK(AbortTxn(txn_id));
      return writer.Release();
    }

    case wire::Opcode::kExecuteFragment: {
      GISQL_ASSIGN_OR_RETURN(FragmentPlan frag, wire::ReadFragment(&reader));
      const BufferPoolStats pool_before = engine_.pool().Snapshot();
      int64_t rows_scanned = 0;
      GISQL_ASSIGN_OR_RETURN(RowBatch batch,
                             ExecuteFragment(frag, &rows_scanned));
      const FragmentPageStats pages = PageStatsSince(pool_before);
      if (processing_ms != nullptr) {
        *processing_ms =
            static_cast<double>(rows_scanned) * cpu_us_per_row_ / 1e3 +
            pages.disk_us / 1e3;
      }
      wire::WriteBatch(&writer, batch);
      WritePageStatsTrailer(&writer, pages);
      return writer.Release();
    }

    case wire::Opcode::kExecuteFragmentColumnar: {
      GISQL_ASSIGN_OR_RETURN(FragmentPlan frag, wire::ReadFragment(&reader));
      const BufferPoolStats pool_before = engine_.pool().Snapshot();
      int64_t rows_scanned = 0;
      GISQL_ASSIGN_OR_RETURN(RowBatch batch,
                             ExecuteFragment(frag, &rows_scanned));
      const FragmentPageStats pages = PageStatsSince(pool_before);
      if (processing_ms != nullptr) {
        *processing_ms =
            static_cast<double>(rows_scanned) * cpu_us_per_row_ / 1e3 +
            pages.disk_us / 1e3;
      }
      // Columnar when every row fits its declared column type; row
      // encoding otherwise (e.g. an expression whose value type differs
      // from the projected column's declared type).
      Result<ColumnBatch> columnar = ColumnBatch::FromRows(batch);
      if (columnar.ok()) {
        writer.PutU8(wire::kBatchFormatColumnar);
        wire::WriteColumnBatch(&writer, *columnar);
      } else {
        writer.PutU8(wire::kBatchFormatRow);
        wire::WriteBatch(&writer, batch);
      }
      WritePageStatsTrailer(&writer, pages);
      return writer.Release();
    }

    case wire::Opcode::kOpenCursor: {
      GISQL_ASSIGN_OR_RETURN(wire::OpenCursorRequest req,
                             wire::ReadOpenCursorRequest(&reader));
      // Idempotent by token: a retried (or duplicate-delivered) open
      // finds the cursor its first delivery staged.
      if (auto it = cursor_tokens_.find(req.token);
          it != cursor_tokens_.end()) {
        wire::WriteOpenCursorResponse(&writer, {it->second});
        return writer.Release();
      }
      if (cursors_.size() >= kMaxOpenCursorsPerSource) {
        return Status::Overloaded("source '", name_, "' has ",
                                  cursors_.size(),
                                  " open cursors (limit ",
                                  kMaxOpenCursorsPerSource, ")");
      }
      const BufferPoolStats pool_before = engine_.pool().Snapshot();
      int64_t rows_scanned = 0;
      GISQL_ASSIGN_OR_RETURN(RowBatch batch,
                             ExecuteFragment(req.fragment, &rows_scanned));
      // The scan (CPU and disk) is paid here, at open; fetches only
      // slice and ship.
      if (processing_ms != nullptr) {
        *processing_ms =
            static_cast<double>(rows_scanned) * cpu_us_per_row_ / 1e3 +
            PageStatsSince(pool_before).disk_us / 1e3;
      }
      const uint64_t id = next_cursor_id_++;
      SourceCursor& cur = cursors_[id];
      cur.token = req.token;
      cur.result = std::move(batch);
      cur.chunk_rows = req.chunk_rows;
      cursor_tokens_[req.token] = id;
      wire::WriteOpenCursorResponse(&writer, {id});
      return writer.Release();
    }

    case wire::Opcode::kFetchChunk: {
      GISQL_ASSIGN_OR_RETURN(wire::FetchChunkRequest req,
                             wire::ReadFetchChunkRequest(&reader));
      auto it = cursors_.find(req.cursor_id);
      if (it == cursors_.end()) {
        return Status::NotFound("cursor ", req.cursor_id,
                                " is not open at source '", name_, "'");
      }
      SourceCursor& cur = it->second;
      if (req.seq + 1 == cur.next_seq) {
        // One-chunk idempotency window: a retried fetch whose first
        // response was lost gets the identical payload again.
        return cur.last_chunk;
      }
      if (req.seq != cur.next_seq) {
        return Status::InvalidArgument(
            "cursor ", req.cursor_id, " fetch seq ", req.seq,
            " outside window (next ", cur.next_seq, ")");
      }
      const int64_t total = cur.result.num_rows();
      const int64_t take =
          std::min(cur.chunk_rows, total - cur.next_row);
      std::vector<Row> rows(
          cur.result.rows().begin() + cur.next_row,
          cur.result.rows().begin() + cur.next_row + take);
      RowBatch chunk(cur.result.schema(), std::move(rows));
      const bool done = cur.next_row + take >= total;
      wire::WriteCursorChunk(&writer, req.cursor_id, req.seq, done, chunk);
      cur.next_row += take;
      cur.next_seq = req.seq + 1;
      cur.last_chunk = writer.Release();
      return cur.last_chunk;
    }

    case wire::Opcode::kCloseCursor: {
      GISQL_ASSIGN_OR_RETURN(wire::CloseCursorRequest req,
                             wire::ReadCloseCursorRequest(&reader));
      // Idempotent: closing an unknown (already-closed) cursor is OK.
      if (auto it = cursors_.find(req.cursor_id); it != cursors_.end()) {
        cursor_tokens_.erase(it->second.token);
        cursors_.erase(it);
      }
      return writer.Release();
    }
  }
  return Status::InvalidArgument("unknown opcode ", int(opcode),
                                 " at source '", name_, "'");
}

}  // namespace gisql
