#include "source/fragment.h"

#include <sstream>

namespace gisql {

std::string FragmentPlan::ToString() const {
  std::ostringstream oss;
  oss << "Fragment[" << table;
  if (semijoin_column >= 0) {
    oss << " SEMIJOIN($" << semijoin_column << " IN "
        << semijoin_values.size() << " keys)";
  }
  if (index_column >= 0) {
    oss << " INDEX($" << index_column << " ";
    oss << (range_lo.is_null() ? "(-inf"
                               : (range_lo_inclusive ? "[" : "(") +
                                     range_lo.ToString());
    oss << " .. ";
    oss << (range_hi.is_null() ? "+inf)"
                               : range_hi.ToString() +
                                     (range_hi_inclusive ? "]" : ")"));
    oss << ")";
  }
  if (!join_table.empty()) {
    oss << " INDEXJOIN(" << join_table << " ON $" << join_outer_column
        << "=$" << join_inner_column << "R";
    if (join_inner_filter) {
      oss << " WHERE " << join_inner_filter->ToString();
    }
    oss << ")";
  }
  if (filter) oss << " WHERE " << filter->ToString();
  if (!projections.empty()) {
    oss << " PROJECT(";
    for (size_t i = 0; i < projections.size(); ++i) {
      if (i) oss << ", ";
      oss << projections[i]->ToString();
    }
    oss << ")";
  }
  if (has_aggregate) {
    oss << " AGG(";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) oss << ", ";
      oss << group_by[i]->ToString();
    }
    if (!group_by.empty() && !aggregates.empty()) oss << "; ";
    for (size_t i = 0; i < aggregates.size(); ++i) {
      if (i) oss << ", ";
      oss << aggregates[i].display;
    }
    oss << ")";
  }
  if (!order_by.empty()) {
    oss << " ORDER(";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) oss << ", ";
      oss << order_by[i]->ToString();
      if (i < order_ascending.size() && !order_ascending[i]) oss << " DESC";
    }
    oss << ")";
  }
  if (limit >= 0) oss << " LIMIT " << limit;
  oss << "]";
  return oss.str();
}

}  // namespace gisql
