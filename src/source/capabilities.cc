#include "source/capabilities.h"

namespace gisql {

const char* SourceDialectName(SourceDialect d) {
  switch (d) {
    case SourceDialect::kRelational: return "RELATIONAL";
    case SourceDialect::kDocument: return "DOCUMENT";
    case SourceDialect::kKeyValue: return "KEYVALUE";
    case SourceDialect::kLegacy: return "LEGACY";
  }
  return "?";
}

SourceCapabilities SourceCapabilities::For(SourceDialect dialect) {
  SourceCapabilities caps;
  switch (dialect) {
    case SourceDialect::kRelational:
      caps.filter_pushdown = true;
      caps.projection_pushdown = true;
      caps.aggregate_pushdown = true;
      caps.limit_pushdown = true;
      caps.sort_pushdown = true;
      caps.semijoin_pushdown = true;
      caps.index_range_scan = true;
      caps.index_join = true;
      break;
    case SourceDialect::kDocument:
      caps.filter_pushdown = true;
      caps.projection_pushdown = true;
      caps.limit_pushdown = true;
      caps.sort_pushdown = true;
      break;
    case SourceDialect::kKeyValue:
      caps.semijoin_pushdown = true;
      caps.semijoin_key_only = true;
      caps.limit_pushdown = true;
      break;
    case SourceDialect::kLegacy:
      break;
  }
  return caps;
}

std::string SourceCapabilities::ToString() const {
  std::string out = "{";
  auto add = [&](const char* name, bool on) {
    if (on) {
      if (out.size() > 1) out += ",";
      out += name;
    }
  };
  add("filter", filter_pushdown);
  add("project", projection_pushdown);
  add("aggregate", aggregate_pushdown);
  add("limit", limit_pushdown);
  add("sort", sort_pushdown);
  add(semijoin_key_only ? "semijoin(key)" : "semijoin", semijoin_pushdown);
  add("index-range", index_range_scan);
  add("index-join", index_join);
  out += "}";
  return out.empty() ? "{}" : out;
}

}  // namespace gisql
