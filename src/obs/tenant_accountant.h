/// \file tenant_accountant.h
/// \brief Per-tenant resource attribution for the mediator.
///
/// Every executed or shed statement is charged to exactly one tenant
/// (QueryContext::tenant), and the accountant maintains — in the same
/// mutex hold — a grand-total row aggregating every charge it ever
/// accepted. This makes the central attribution invariant *checkable*
/// rather than aspirational:
///
///     sum over SnapshotTenants() of any column == Totals() column
///
/// holds exactly (no sampling, no rounding: the totals are built from
/// the identical deltas). Because all charges come from per-query
/// counter deltas on the simulated clock, the totals also equal the
/// global registry deltas over the same traffic, which is what
/// bench_e20_slo asserts end to end.
///
/// The tenant map is bounded: once `max_tracked` distinct tenants have
/// been seen, later tenants fold into the kOverflowTenant bucket, so a
/// planetary-scale tenant population cannot grow mediator memory
/// without bound — and the sum invariant still holds, because overflow
/// charges land in a row like any other. Tracking is first-seen-wins,
/// a pure function of the workload order, so replays agree.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/query_context.h"

namespace gisql {

/// \brief Bucket absorbing tenants past the tracking bound.
inline constexpr const char* kOverflowTenant = "~other";

/// \brief One tenant's cumulative consumption (a gis.tenants row).
/// All values are simulation-derived and deterministic.
struct TenantUsage {
  std::string tenant;
  int64_t queries = 0;      ///< executed statements (incl. cache hits)
  int64_t sheds = 0;        ///< refused by the governor (zero traffic)
  int64_t cache_hits = 0;
  int64_t rows = 0;         ///< result rows returned
  double elapsed_ms = 0.0;  ///< simulated execution time
  double admission_wait_ms = 0.0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t messages = 0;
  int64_t retries = 0;
  /// Largest single-query booked memory footprint (grant total).
  int64_t mem_peak_bytes = 0;
  /// Buffer-pool activity at the sources on this tenant's behalf.
  int64_t page_hits = 0;
  int64_t page_misses = 0;
  double disk_ms = 0.0;
};

/// \brief One statement's attribution delta (the per-query counter
/// deltas RunStatement/FinalizeCursor already compute).
struct TenantCharge {
  bool shed = false;  ///< refused: zero traffic, counted as a shed
  bool cache_hit = false;
  int64_t rows = 0;
  double elapsed_ms = 0.0;
  double admission_wait_ms = 0.0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t messages = 0;
  int64_t retries = 0;
  int64_t mem_bytes = 0;  ///< the query grant's booked total
  int64_t page_hits = 0;
  int64_t page_misses = 0;
  double disk_ms = 0.0;
};

/// \brief Thread-safe per-tenant aggregation with a checkable total.
class TenantAccountant {
 public:
  static constexpr int kDefaultMaxTracked = 4096;

  explicit TenantAccountant(int max_tracked = kDefaultMaxTracked)
      : max_tracked_(max_tracked < 1 ? 1 : max_tracked) {}

  /// \brief Re-bounds the tenant map (existing rows are kept even when
  /// the bound shrinks; the bound gates *new* tenants only).
  void set_max_tracked(int max_tracked) {
    std::lock_guard<std::mutex> lock(mu_);
    max_tracked_ = max_tracked < 1 ? 1 : max_tracked;
  }

  /// \brief Charges one statement to `tenant` and to the grand total
  /// under a single lock hold, so the two can never diverge.
  void Record(const std::string& tenant, const TenantCharge& charge);

  /// \brief All tracked tenants, sorted by name (deterministic).
  std::vector<TenantUsage> SnapshotTenants() const;

  /// \brief The grand-total row (tenant name "*").
  TenantUsage Totals() const;

  /// \brief Distinct tenants tracked (excluding the overflow bucket).
  size_t tracked_count() const;

  void Reset();

 private:
  void Apply(TenantUsage* usage, const TenantCharge& charge) const;

  mutable std::mutex mu_;
  int max_tracked_;
  std::map<std::string, TenantUsage> tenants_;
  TenantUsage totals_;
};

}  // namespace gisql
