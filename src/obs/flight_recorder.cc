#include "obs/flight_recorder.h"

#include <utility>

#include "obs/json.h"

namespace gisql {

void FlightRecorder::Configure(size_t ring, size_t max_incidents,
                               double cooldown_ms, int shed_spike,
                               double shed_window_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring > 0) ring_ = ring;
  if (max_incidents > 0) max_incidents_ = max_incidents;
  if (cooldown_ms >= 0) cooldown_ms_ = cooldown_ms;
  if (shed_spike > 0) shed_spike_ = shed_spike;
  if (shed_window_ms > 0) shed_window_ms_ = shed_window_ms;
  while (frames_.size() > ring_) frames_.pop_front();
}

void FlightRecorder::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool FlightRecorder::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void FlightRecorder::SetSystemSnapshotFn(SystemSnapshotFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  system_fn_ = std::move(fn);
}

void FlightRecorder::RecordFrame(const QueryFrame& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  QueryFrame bounded = frame;
  if (bounded.sql.size() > kMaxFrameSql) {
    bounded.sql.resize(kMaxFrameSql);
    bounded.sql += "...";
  }
  frames_.push_back(std::move(bounded));
  while (frames_.size() > ring_) frames_.pop_front();

  if (!frame.shed_reason.empty()) {
    double now = frame.finish_ms;
    shed_times_.push_back(now);
    while (!shed_times_.empty() &&
           shed_times_.front() < now - shed_window_ms_) {
      shed_times_.pop_front();
    }
    if (static_cast<int>(shed_times_.size()) >= shed_spike_ &&
        now - last_shed_ms_ >= cooldown_ms_) {
      last_shed_ms_ = now;
      MaybeCapture("shed_spike",
                   std::to_string(shed_times_.size()) + " sheds in " +
                       JsonNum(shed_window_ms_) + "ms",
                   now);
    }
  }
}

void FlightRecorder::OnSloAlert(const std::string& objective, double now_ms,
                                double fast_burn, double slow_burn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  if (now_ms - last_slo_ms_ < cooldown_ms_) return;
  last_slo_ms_ = now_ms;
  MaybeCapture("slo_burn",
               objective + " fast_burn=" + JsonNum(fast_burn) +
                   " slow_burn=" + JsonNum(slow_burn),
               now_ms);
}

void FlightRecorder::OnBreakerOpen(const std::string& source, double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  if (now_ms - last_breaker_ms_ < cooldown_ms_) return;
  last_breaker_ms_ = now_ms;
  MaybeCapture("breaker_open", source, now_ms);
}

void FlightRecorder::MaybeCapture(const std::string& trigger,
                                  const std::string& detail, double now_ms) {
  IncidentRecord incident;
  incident.id = next_incident_id_++;
  incident.at_ms = now_ms;
  incident.trigger = trigger;
  incident.detail = detail;
  incident.json = BuildJson(trigger, detail, now_ms, incident.id);
  incidents_.push_back(std::move(incident));
  while (incidents_.size() > max_incidents_) {
    incidents_.erase(incidents_.begin());
  }
}

std::string FlightRecorder::BuildJson(const std::string& trigger,
                                      const std::string& detail,
                                      double now_ms, int64_t id) const {
  std::string out;
  out.reserve(4096);
  out += "{\"incident\":" + JsonNum(id);
  out += ",\"at_ms\":" + JsonNum(now_ms);
  out += ",\"trigger\":" + JsonStr(trigger);
  out += ",\"detail\":" + JsonStr(detail);
  out += ",\"frames\":[";
  bool first = true;
  for (const auto& frame : frames_) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + JsonNum(frame.query_id);
    out += ",\"tenant\":" + JsonStr(frame.tenant);
    out += ",\"priority\":" + std::to_string(frame.priority);
    out += ",\"finish_ms\":" + JsonNum(frame.finish_ms);
    out += ",\"sojourn_ms\":" + JsonNum(frame.sojourn_ms);
    out += ",\"rows\":" + JsonNum(frame.rows);
    out += ",\"bytes\":" + JsonNum(frame.bytes);
    out += ",\"cache_hit\":";
    out += frame.cache_hit ? "true" : "false";
    out += ",\"shed\":" + JsonStr(frame.shed_reason);
    out += ",\"sql\":" + JsonStr(frame.sql);
    out += "}";
  }
  out += "]";
  if (system_fn_) {
    out += ",\"system\":" + system_fn_(now_ms);
  }
  out += "}";
  return out;
}

std::vector<QueryFrame> FlightRecorder::Frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {frames_.begin(), frames_.end()};
}

std::vector<IncidentRecord> FlightRecorder::Incidents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incidents_;
}

int64_t FlightRecorder::incidents_captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_incident_id_ - 1;
}

void FlightRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  frames_.clear();
  shed_times_.clear();
  incidents_.clear();
  next_incident_id_ = 1;
  last_slo_ms_ = last_breaker_ms_ = last_shed_ms_ = -1.0e18;
}

}  // namespace gisql
