/// \file flight_recorder.h
/// \brief Always-on incident capture: a bounded ring of recent query
/// frames plus a snapshotter that, on deterministic triggers, freezes
/// "what the world looked like" into one JSON incident.
///
/// Postmortems of a federation failure usually start after the
/// evidence is gone — the queue has drained, the breaker has closed,
/// the interesting queries have aged out of dashboards. The flight
/// recorder keeps a small ring of per-query frames at all times and,
/// when a trigger fires, serializes the ring together with a
/// system-state snapshot (sources, admission, buffer pools, active
/// transactions, SLO state — supplied by a callback so this layer
/// stays free of core dependencies) into an IncidentRecord served by
/// the `gis.incidents` virtual table.
///
/// Triggers are pure functions of simulated time and deterministic
/// counters, so the same seed produces the same incidents with the
/// same JSON bytes, serial or pooled:
///   - `slo_burn`     — rising edge of a multi-window burn-rate alert
///   - `breaker_open` — a source circuit breaker tripping open
///   - `shed_spike`   — >= `shed_spike` sheds within `shed_window_ms`
/// A per-trigger-kind cooldown keeps a sustained breach from flooding
/// the incident list; the list itself is bounded (oldest dropped).

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace gisql {

/// \brief Compact per-query frame retained in the recorder ring.
struct QueryFrame {
  int64_t query_id = 0;
  std::string tenant;
  int priority = 1;
  double finish_ms = 0.0;
  double sojourn_ms = 0.0;  ///< admission wait + execution
  int64_t rows = 0;
  int64_t bytes = 0;        ///< bytes_sent + bytes_received
  bool cache_hit = false;
  std::string shed_reason;  ///< "" when the query ran
  std::string sql;          ///< truncated to kMaxFrameSql
};

/// \brief One captured incident (a gis.incidents row).
struct IncidentRecord {
  int64_t id = 0;
  double at_ms = 0.0;
  std::string trigger;  ///< slo_burn | breaker_open | shed_spike
  std::string detail;   ///< objective / source / shed count
  std::string json;     ///< full serialized snapshot
};

/// \brief Deterministic incident snapshotter.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultRing = 64;
  static constexpr size_t kDefaultMaxIncidents = 16;
  static constexpr double kDefaultCooldownMs = 10'000.0;
  static constexpr int kDefaultShedSpike = 10;
  static constexpr double kDefaultShedWindowMs = 1'000.0;
  static constexpr size_t kMaxFrameSql = 80;

  /// Produces the `"system"` JSON object for an incident at `now_ms`.
  /// Invoked with the recorder lock held: it must not call back into
  /// this recorder (everything else — catalog, governor, SLO engine —
  /// is fair game, they carry their own locks).
  using SystemSnapshotFn = std::function<std::string(double now_ms)>;

  void Configure(size_t ring, size_t max_incidents, double cooldown_ms,
                 int shed_spike, double shed_window_ms);
  void set_enabled(bool enabled);
  bool enabled() const;
  void SetSystemSnapshotFn(SystemSnapshotFn fn);

  /// \brief Appends one finished/shed query to the frame ring and
  /// runs the shed-spike trigger when the frame is a shed.
  void RecordFrame(const QueryFrame& frame);

  /// \brief Trigger hooks (no-ops while disabled or cooling down).
  void OnSloAlert(const std::string& objective, double now_ms,
                  double fast_burn, double slow_burn);
  void OnBreakerOpen(const std::string& source, double now_ms);

  std::vector<QueryFrame> Frames() const;
  std::vector<IncidentRecord> Incidents() const;
  int64_t incidents_captured() const;  ///< including any that aged out

  void Reset();

 private:
  void MaybeCapture(const std::string& trigger, const std::string& detail,
                    double now_ms);  // caller holds mu_
  std::string BuildJson(const std::string& trigger, const std::string& detail,
                        double now_ms, int64_t id) const;  // caller holds mu_

  mutable std::mutex mu_;
  bool enabled_ = true;
  size_t ring_ = kDefaultRing;
  size_t max_incidents_ = kDefaultMaxIncidents;
  double cooldown_ms_ = kDefaultCooldownMs;
  int shed_spike_ = kDefaultShedSpike;
  double shed_window_ms_ = kDefaultShedWindowMs;
  SystemSnapshotFn system_fn_;
  std::deque<QueryFrame> frames_;
  std::deque<double> shed_times_;
  std::vector<IncidentRecord> incidents_;
  int64_t next_incident_id_ = 1;
  // Last capture time per trigger kind, for the cooldown.
  double last_slo_ms_ = -1.0e18;
  double last_breaker_ms_ = -1.0e18;
  double last_shed_ms_ = -1.0e18;
};

}  // namespace gisql
