#include "obs/tenant_accountant.h"

#include <algorithm>

namespace gisql {

void TenantAccountant::Record(const std::string& tenant,
                              const TenantCharge& charge) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name = QueryContext::NormalizeTenant(tenant);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    // Past the bound, new tenants fold into the overflow bucket (which
    // may itself need creating — one slot beyond the bound, at most).
    if (static_cast<int>(tenants_.size()) >= max_tracked_) {
      name = kOverflowTenant;
      it = tenants_.find(name);
    }
    if (it == tenants_.end()) {
      it = tenants_.emplace(name, TenantUsage{}).first;
      it->second.tenant = name;
    }
  }
  Apply(&it->second, charge);
  Apply(&totals_, charge);
}

void TenantAccountant::Apply(TenantUsage* usage,
                             const TenantCharge& charge) const {
  if (charge.shed) {
    usage->sheds += 1;
  } else {
    usage->queries += 1;
    if (charge.cache_hit) usage->cache_hits += 1;
  }
  usage->rows += charge.rows;
  usage->elapsed_ms += charge.elapsed_ms;
  usage->admission_wait_ms += charge.admission_wait_ms;
  usage->bytes_sent += charge.bytes_sent;
  usage->bytes_received += charge.bytes_received;
  usage->messages += charge.messages;
  usage->retries += charge.retries;
  usage->mem_peak_bytes = std::max(usage->mem_peak_bytes, charge.mem_bytes);
  usage->page_hits += charge.page_hits;
  usage->page_misses += charge.page_misses;
  usage->disk_ms += charge.disk_ms;
}

std::vector<TenantUsage> TenantAccountant::SnapshotTenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantUsage> rows;
  rows.reserve(tenants_.size());
  for (const auto& [name, usage] : tenants_) rows.push_back(usage);
  return rows;  // std::map iteration order: already sorted by tenant.
}

TenantUsage TenantAccountant::Totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  TenantUsage totals = totals_;
  totals.tenant = "*";
  return totals;
}

size_t TenantAccountant::tracked_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size() - tenants_.count(kOverflowTenant);
}

void TenantAccountant::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_.clear();
  totals_ = TenantUsage{};
}

}  // namespace gisql
