/// \file json.h
/// \brief Minimal deterministic JSON emission helpers for incident
/// snapshots. Doubles print with %.17g (round-trippable and
/// platform-stable for IEEE754), so the same simulated state always
/// serializes to the same bytes — the property the serial-vs-pooled
/// incident identity test depends on.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace gisql {

/// \brief Escapes a string for inclusion inside JSON double quotes.
inline std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// \brief Deterministic numeric formatting (shared with Prometheus
/// export, which uses the same %.17g contract).
inline std::string JsonNum(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

inline std::string JsonNum(int64_t value) {
  return std::to_string(value);
}

/// \brief Quoted, escaped JSON string literal.
inline std::string JsonStr(const std::string& raw) {
  return "\"" + JsonEscape(raw) + "\"";
}

}  // namespace gisql
