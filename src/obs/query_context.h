/// \file query_context.h
/// \brief Workload attribution context: who submitted a query, at what
/// priority, and when — threaded from Query()/Submit()/OpenCursor()
/// through admission and execution into the query log and the
/// per-tenant accountant.
///
/// The mediator serves a federation it does not own, and must stay
/// answerable for *who* is consuming it. Every statement therefore
/// carries a QueryContext; callers that do not name a tenant are
/// attributed to kDefaultTenant so per-tenant sums always cover the
/// whole workload (sum over gis.tenants == the global counters, with
/// no unattributed remainder).

#pragma once

#include <string>

namespace gisql {

/// \brief Tenant charged when the caller names none.
inline constexpr const char* kDefaultTenant = "default";

/// \brief Attribution context of one statement on the simulated clock.
struct QueryContext {
  /// Accountable principal ("" is normalized to kDefaultTenant).
  std::string tenant = kDefaultTenant;
  /// Admission priority class: 0 background, 1 normal, 2 interactive.
  int priority = 1;
  /// Simulated arrival time (the admission request's arrival).
  double arrival_ms = 0.0;
  /// Simulated time the query actually started executing (arrival +
  /// queue wait); completion is start_ms + elapsed.
  double start_ms = 0.0;

  /// \brief Normalizes an externally supplied tenant name.
  static std::string NormalizeTenant(const std::string& tenant) {
    return tenant.empty() ? kDefaultTenant : tenant;
  }
};

}  // namespace gisql
