/// \file slo.h
/// \brief Declarative service-level objectives with multi-window
/// error-budget burn rates, evaluated on the simulated clock.
///
/// An objective names a priority class and promises that a fraction
/// `goal` of its events be *good* — not shed, and with a sojourn time
/// (queue wait + execution) at or below `target_ms` — measured over a
/// rolling window. The engine keeps two windows per objective, a fast
/// one (default 5 s) and a slow one (default 60 s), and converts each
/// window's attainment into a burn rate:
///
///     burn = (1 - attainment) / (1 - goal)
///
/// burn == 1 means the error budget is being consumed exactly at the
/// sustainable rate; burn == 10 means the whole budget would be gone
/// in a tenth of the period. An alert fires on the rising edge of
/// (fast_burn >= threshold AND slow_burn >= threshold): the slow
/// window keeps one queueing blip from paging, the fast window ends
/// the alert promptly once the breach clears. Because every event is
/// timestamped by the deterministic simulation, alert times are exact
/// simulated instants — the same seed yields the same alert log,
/// serial or pooled, which bench_e20_slo asserts byte-for-byte.

#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace gisql {

/// \brief One declarative objective over a priority class.
struct SloObjective {
  std::string name;       ///< e.g. "interactive"
  int priority = 1;       ///< priority class the objective governs
  double target_ms = 200.0;  ///< good events finish within this sojourn
  double goal = 0.95;     ///< required fraction of good events
};

/// \brief Point-in-time evaluation of one objective (a gis.slo row).
struct SloStatus {
  std::string name;
  int priority = 1;
  double target_ms = 0.0;
  double goal = 0.0;
  int64_t fast_total = 0;
  int64_t fast_good = 0;
  int64_t slow_total = 0;
  int64_t slow_good = 0;
  double fast_attainment = 1.0;  ///< 1.0 when the window is empty
  double slow_attainment = 1.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool alerting = false;   ///< currently in breach
  int64_t alerts = 0;      ///< rising edges seen so far
  double last_alert_ms = -1.0;  ///< simulated time of latest rising edge
};

/// \brief A rising-edge alert event at an exact simulated instant.
struct SloAlert {
  std::string objective;
  double at_ms = 0.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
};

/// \brief Rolling-window SLO evaluator; thread-safe, deterministic.
class SloEngine {
 public:
  static constexpr double kDefaultFastWindowMs = 5'000.0;
  static constexpr double kDefaultSlowWindowMs = 60'000.0;
  static constexpr double kDefaultBurnAlert = 2.0;

  SloEngine() { UseDefaultObjectives(); }

  /// \brief Replaces the objective set (drops accumulated events).
  void SetObjectives(std::vector<SloObjective> objectives);

  /// \brief Installs the stock per-priority-class ladder: interactive
  /// (2) p<=50ms @ 99%, normal (1) p<=200ms @ 95%, background (0)
  /// p<=1000ms @ 90%.
  void UseDefaultObjectives();

  void Configure(double fast_window_ms, double slow_window_ms,
                 double burn_alert_threshold);

  /// \brief Feeds one completed-or-shed statement. `finish_ms` is the
  /// simulated completion instant; `sojourn_ms` is wait + execution;
  /// shed events are never good. Re-evaluates burn rates and latches
  /// rising-edge alerts at exactly `finish_ms`; the alerts this event
  /// raised are returned so the caller can trigger incident capture.
  std::vector<SloAlert> Record(int priority, double finish_ms,
                               double sojourn_ms, bool shed);

  /// \brief Current evaluation of every objective, in declaration
  /// order (deterministic).
  std::vector<SloStatus> Snapshot() const;

  /// \brief Every rising-edge alert so far, in simulated-time order.
  std::vector<SloAlert> Alerts() const;

  double fast_window_ms() const { return fast_window_ms_; }
  double slow_window_ms() const { return slow_window_ms_; }
  double burn_alert_threshold() const { return burn_alert_; }

 private:
  struct Event {
    double at_ms;
    bool good;
  };
  struct Tracked {
    SloObjective objective;
    std::deque<Event> events;  ///< within the slow window
    bool alerting = false;
    int64_t alerts = 0;
    double last_alert_ms = -1.0;
  };

  static void CountWindow(const std::deque<Event>& events, double now_ms,
                          double window_ms, int64_t* total, int64_t* good);
  SloStatus Evaluate(const Tracked& tracked, double now_ms) const;

  mutable std::mutex mu_;
  double fast_window_ms_ = kDefaultFastWindowMs;
  double slow_window_ms_ = kDefaultSlowWindowMs;
  double burn_alert_ = kDefaultBurnAlert;
  std::vector<Tracked> tracked_;
  std::vector<SloAlert> alert_log_;
  double last_event_ms_ = 0.0;
};

}  // namespace gisql
