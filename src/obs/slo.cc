#include "obs/slo.h"

#include <algorithm>

namespace gisql {

void SloEngine::SetObjectives(std::vector<SloObjective> objectives) {
  std::lock_guard<std::mutex> lock(mu_);
  tracked_.clear();
  tracked_.reserve(objectives.size());
  for (auto& objective : objectives) {
    Tracked tracked;
    tracked.objective = std::move(objective);
    tracked_.push_back(std::move(tracked));
  }
  alert_log_.clear();
  last_event_ms_ = 0.0;
}

void SloEngine::UseDefaultObjectives() {
  SetObjectives({
      {"interactive", /*priority=*/2, /*target_ms=*/50.0, /*goal=*/0.99},
      {"normal", /*priority=*/1, /*target_ms=*/200.0, /*goal=*/0.95},
      {"background", /*priority=*/0, /*target_ms=*/1000.0, /*goal=*/0.90},
  });
}

void SloEngine::Configure(double fast_window_ms, double slow_window_ms,
                          double burn_alert_threshold) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fast_window_ms > 0) fast_window_ms_ = fast_window_ms;
  if (slow_window_ms > 0) slow_window_ms_ = slow_window_ms;
  if (slow_window_ms_ < fast_window_ms_) slow_window_ms_ = fast_window_ms_;
  if (burn_alert_threshold > 0) burn_alert_ = burn_alert_threshold;
}

std::vector<SloAlert> SloEngine::Record(int priority, double finish_ms,
                                        double sojourn_ms, bool shed) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloAlert> raised;
  // The mediator's simulated clock is monotone per statement stream,
  // but pooled cursor interleavings can finalize slightly out of
  // order; clamping keeps window eviction monotone and deterministic.
  double now = std::max(finish_ms, last_event_ms_);
  last_event_ms_ = now;
  for (auto& tracked : tracked_) {
    if (tracked.objective.priority != priority) continue;
    bool good = !shed && sojourn_ms <= tracked.objective.target_ms;
    tracked.events.push_back({now, good});
    while (!tracked.events.empty() &&
           tracked.events.front().at_ms < now - slow_window_ms_) {
      tracked.events.pop_front();
    }
    SloStatus status = Evaluate(tracked, now);
    bool breach = status.fast_burn >= burn_alert_ &&
                  status.slow_burn >= burn_alert_;
    if (breach && !tracked.alerting) {
      tracked.alerts += 1;
      tracked.last_alert_ms = now;
      SloAlert alert{tracked.objective.name, now, status.fast_burn,
                     status.slow_burn};
      alert_log_.push_back(alert);
      raised.push_back(alert);
    }
    tracked.alerting = breach;
  }
  return raised;
}

void SloEngine::CountWindow(const std::deque<Event>& events, double now_ms,
                            double window_ms, int64_t* total, int64_t* good) {
  *total = 0;
  *good = 0;
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->at_ms < now_ms - window_ms) break;
    *total += 1;
    if (it->good) *good += 1;
  }
}

SloStatus SloEngine::Evaluate(const Tracked& tracked, double now_ms) const {
  SloStatus status;
  status.name = tracked.objective.name;
  status.priority = tracked.objective.priority;
  status.target_ms = tracked.objective.target_ms;
  status.goal = tracked.objective.goal;
  CountWindow(tracked.events, now_ms, fast_window_ms_, &status.fast_total,
              &status.fast_good);
  CountWindow(tracked.events, now_ms, slow_window_ms_, &status.slow_total,
              &status.slow_good);
  status.fast_attainment =
      status.fast_total == 0
          ? 1.0
          : static_cast<double>(status.fast_good) / status.fast_total;
  status.slow_attainment =
      status.slow_total == 0
          ? 1.0
          : static_cast<double>(status.slow_good) / status.slow_total;
  double budget = 1.0 - tracked.objective.goal;
  if (budget <= 0.0) budget = 1e-9;  // a 100% goal burns instantly
  status.fast_burn = (1.0 - status.fast_attainment) / budget;
  status.slow_burn = (1.0 - status.slow_attainment) / budget;
  status.alerting = tracked.alerting;
  status.alerts = tracked.alerts;
  status.last_alert_ms = tracked.last_alert_ms;
  return status;
}

std::vector<SloStatus> SloEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloStatus> statuses;
  statuses.reserve(tracked_.size());
  for (const auto& tracked : tracked_) {
    statuses.push_back(Evaluate(tracked, last_event_ms_));
  }
  return statuses;
}

std::vector<SloAlert> SloEngine::Alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alert_log_;
}

}  // namespace gisql
