#include "common/logging.h"

#include <cstdlib>
#include <cstring>

namespace gisql {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevelFromEnv(LogLevel::kWarn)) {}

LogLevel ParseLogLevel(const char* text, LogLevel fallback) {
  if (text == nullptr) return fallback;
  std::string upper;
  for (const char* p = text; *p; ++p) {
    upper.push_back(*p >= 'a' && *p <= 'z'
                        ? static_cast<char>(*p - 'a' + 'A')
                        : *p);
  }
  if (upper == "TRACE") return LogLevel::kTrace;
  if (upper == "DEBUG") return LogLevel::kDebug;
  if (upper == "INFO") return LogLevel::kInfo;
  if (upper == "WARN" || upper == "WARNING") return LogLevel::kWarn;
  if (upper == "ERROR") return LogLevel::kError;
  if (upper == "OFF" || upper == "NONE") return LogLevel::kOff;
  return fallback;
}

LogLevel LogLevelFromEnv(LogLevel fallback) {
  return ParseLogLevel(std::getenv("GISQL_LOG_LEVEL"), fallback);
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << LogLevelName(level) << " " << msg << "\n";
}

}  // namespace gisql
