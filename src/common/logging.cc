#include "common/logging.h"

namespace gisql {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Logger::Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << LogLevelName(level) << " " << msg << "\n";
}

}  // namespace gisql
