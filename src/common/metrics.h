/// \file metrics.h
/// \brief Lightweight named counters/gauges/histograms used for
/// experiment accounting (bytes shipped, messages, rows produced,
/// simulated time, latency tails, ...).

#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gisql {

/// \brief Fixed log-scale histogram: 96 buckets whose upper bounds grow
/// by sqrt(2) from 1e-3, covering ~[0.001, 2.8e11] — microsecond-level
/// latencies in ms up to hundreds of GiB in bytes, unit-agnostic. One
/// more bucket catches overflow. Percentiles interpolate linearly
/// inside the selected bucket and clamp to the observed [min, max], so
/// a histogram of identical values reports that exact value.
class Histogram {
 public:
  static constexpr int kBuckets = 96;
  static constexpr double kFirstBound = 1e-3;

  static double UpperBound(int bucket) {
    return kFirstBound * std::exp2(0.5 * bucket);
  }

  void Observe(double value) {
    ++count_;
    sum_ += value;
    min_ = count_ == 1 ? value : std::min(min_, value);
    max_ = count_ == 1 ? value : std::max(max_, value);
    ++buckets_[BucketOf(value)];
  }

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// \brief Raw count of bucket `i` in [0, kBuckets] (the last bucket
  /// catches overflow) — the input for cumulative `le` exposition.
  int64_t bucket(int i) const { return buckets_[i]; }

  /// \brief Estimated value at quantile `q` in [0, 1].
  double Percentile(double q) const {
    if (count_ == 0) return 0.0;
    const double rank = q * static_cast<double>(count_);
    int64_t seen = 0;
    for (int i = 0; i <= kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      const int64_t next = seen + buckets_[i];
      if (static_cast<double>(next) >= rank) {
        const double lo = i == 0 ? 0.0 : UpperBound(i - 1);
        const double hi = i == kBuckets ? max_ : UpperBound(i);
        const double frac =
            (rank - static_cast<double>(seen)) /
            static_cast<double>(buckets_[i]);
        const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        return std::clamp(v, min_, max_);
      }
      seen = next;
    }
    return max_;
  }

 private:
  static int BucketOf(double v) {
    if (!(v > kFirstBound)) return 0;  // also catches NaN and <= 0
    const int b =
        static_cast<int>(std::ceil(2.0 * std::log2(v / kFirstBound)));
    return b > kBuckets ? kBuckets : b;
  }

  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<int64_t, kBuckets + 1> buckets_{};
};

/// \brief Point-in-time digest of one histogram (for reporting).
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// \brief Digest of `h` (count/sum/min/max/p50/p95/p99/p99.9).
inline HistogramSnapshot DigestHistogram(const Histogram& h) {
  HistogramSnapshot snap;
  snap.count = h.count();
  snap.sum = h.sum();
  snap.min = h.min();
  snap.max = h.max();
  snap.p50 = h.Percentile(0.50);
  snap.p95 = h.Percentile(0.95);
  snap.p99 = h.Percentile(0.99);
  snap.p999 = h.Percentile(0.999);
  return snap;
}

/// \brief Escapes a Prometheus label *value*: the exposition format
/// requires backslash, double-quote, and newline escaped inside the
/// quoted value (any UTF-8 byte is otherwise legal, unlike metric
/// names). Exporters emitting labeled series (per-tenant, per-SLO)
/// must route every untrusted value — tenant names especially —
/// through this.
inline std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 4);
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// \brief One coherent view of a whole registry, taken under a single
/// lock acquisition so cross-metric invariants hold (e.g. a query's
/// `query.count` increment and its `query.ms` observation are either
/// both visible or both absent). Histograms are full copies, not
/// digests, so exporters can emit bucket-level detail.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
};

/// \brief A registry of named monotonic counters and last-value gauges.
///
/// Thread-safe. Each GlobalSystem / SimNetwork owns its own registry so
/// experiments can be accounted independently.
class MetricsRegistry {
 public:
  void Add(const std::string& name, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }

  void Set(const std::string& name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[name] = value;
  }

  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  double GetGauge(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  /// \brief Records one observation into the named log-scale histogram
  /// (latencies in ms, sizes in bytes — unit is the caller's).
  void Observe(const std::string& name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    histograms_[name].Observe(value);
  }

  /// \brief Digest (count/sum/min/max/p50/p95/p99/p99.9) of a
  /// histogram; all zeros when nothing was observed under `name`.
  HistogramSnapshot SnapshotHistogram(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? HistogramSnapshot{}
                                   : DigestHistogram(it->second);
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  /// \brief Atomic multi-metric snapshot: counters, gauges, and
  /// histograms copied under one lock acquisition, so readers never see
  /// a torn cross-metric view while writers are active.
  MetricsSnapshot SnapshotAll() const {
    std::lock_guard<std::mutex> lock(mu_);
    return MetricsSnapshot{counters_, gauges_, histograms_};
  }

  /// \brief Snapshot of all counters (for reporting). Coherent with the
  /// gauges/histograms of the same instant via SnapshotAll().
  std::map<std::string, int64_t> Counters() const {
    return SnapshotAll().counters;
  }

  /// \brief Renders the whole registry in the Prometheus text
  /// exposition format: `# TYPE` headers, counter/gauge samples, and
  /// per-histogram cumulative `_bucket{le="..."}` series ending in
  /// `le="+Inf"` plus `_sum`/`_count`. Metric names are prefixed with
  /// `<prefix>_` and sanitized (every character outside [a-zA-Z0-9_]
  /// becomes '_'), so `net.rpc_ms` exports as `<prefix>_net_rpc_ms`.
  /// The output is deterministic: one coherent SnapshotAll() view,
  /// names in sorted order.
  std::string ExportPrometheus(const std::string& prefix = "gisql") const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace gisql
