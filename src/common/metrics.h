/// \file metrics.h
/// \brief Lightweight named counters/gauges used for experiment accounting
/// (bytes shipped, messages, rows produced, simulated time, ...).

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gisql {

/// \brief A registry of named monotonic counters and last-value gauges.
///
/// Thread-safe. Each GlobalSystem / SimNetwork owns its own registry so
/// experiments can be accounted independently.
class MetricsRegistry {
 public:
  void Add(const std::string& name, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }

  void Set(const std::string& name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[name] = value;
  }

  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  double GetGauge(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
  }

  /// \brief Snapshot of all counters (for reporting).
  std::map<std::string, int64_t> Counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace gisql
