#include "common/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace gisql {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative two-pointer wildcard match; '%' backtracking point kept in
  // (star_p, star_v).
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace gisql
