/// \file hash.h
/// \brief Hashing utilities: 64-bit FNV-1a, integer finalizers, and
/// hash combining for composite keys.

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace gisql {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// \brief 64-bit FNV-1a over an arbitrary byte span.
inline uint64_t HashBytes(const void* data, size_t n,
                          uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = kFnvOffset) {
  return HashBytes(s.data(), s.size(), seed);
}

/// \brief Murmur3-style 64-bit integer finalizer (good avalanche).
inline uint64_t HashInt(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief Combines two hashes (boost::hash_combine recipe, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// \brief Reflected CRC-32 (IEEE 802.3 polynomial), used as the wire
/// frame checksum. Table-driven; the table is built once on first use.
inline uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace gisql
