/// \file hash.h
/// \brief Hashing utilities: 64-bit FNV-1a, integer finalizers, and
/// hash combining for composite keys.

#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace gisql {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// \brief 64-bit FNV-1a over an arbitrary byte span.
inline uint64_t HashBytes(const void* data, size_t n,
                          uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = kFnvOffset) {
  return HashBytes(s.data(), s.size(), seed);
}

/// \brief Murmur3-style 64-bit integer finalizer (good avalanche).
inline uint64_t HashInt(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief Combines two hashes (boost::hash_combine recipe, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace gisql
