/// \file trace.h
/// \brief Query-lifecycle tracing: nested spans over the simulated clock.
///
/// The mediator's core promise is transparency — one global schema,
/// with decomposition, shipping, retries, and integration hidden behind
/// it. That hiding makes the system unobservable exactly where it is
/// most complex, so every query can record a Trace: a tree of spans
/// (parse → bind/plan → optimize → decompose → per-fragment
/// encode/attempt/send/handle/receive → integrate → cache), each
/// carrying simulated start/end time plus rows, bytes, messages, and
/// attempt counts.
///
/// Time model: span timestamps are *simulated* milliseconds on the
/// deterministic clock (the same one SimNetwork charges), with t=0 at
/// query start. Mediator-local phases (parse, planning) are free on
/// that clock and appear as zero-width markers. Because the clock is
/// simulated, traces are bit-identical across runs — and identical
/// between serial and pooled execution, whose parallelism is
/// wall-clock-only.
///
/// Exports: ToChromeJson() emits Chrome trace_event JSON (load in
/// chrome://tracing or Perfetto); ToText() renders an indented tree.
/// Both render spans in a canonical order (sorted by start time, name,
/// host, rows, bytes) so the output is deterministic even when worker
/// threads recorded the spans in a different interleaving.
///
/// Thread safety: all collector methods lock; spans may be recorded
/// concurrently from pool workers. Span id 0 is the null span — every
/// mutator ignores it, so call sites can stay unconditional.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gisql {

/// \brief One traced interval (or zero-width marker) on the simulated
/// clock.
struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent = 0;       ///< 0 = root
  std::string name;          ///< e.g. "fragment sales @site0", "parse"
  std::string category;      ///< "lifecycle" | "operator" | "net"
  std::string host;          ///< remote peer for fragment/net spans
  double start_ms = 0.0;     ///< simulated time, query-relative
  double end_ms = 0.0;
  int64_t rows = -1;         ///< rows produced (-1 = not a row producer)
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t messages = 0;
  int64_t attempts = 0;
  int64_t retries = 0;
  std::string note;          ///< "hit"/"miss", fault or error detail

  double duration_ms() const {
    return end_ms > start_ms ? end_ms - start_ms : 0.0;
  }
};

/// \brief Accumulates the spans of one query.
class TraceCollector {
 public:
  /// \brief Opens a span; returns its id (never 0).
  uint64_t Begin(std::string name, std::string category, uint64_t parent,
                 double start_ms);

  /// \brief Closes a span. A span never ended keeps end == start.
  void End(uint64_t id, double end_ms);

  void SetRows(uint64_t id, int64_t rows);
  void SetHost(uint64_t id, std::string host);
  void SetNote(uint64_t id, std::string note);

  /// \brief Accumulates I/O counters onto a span.
  void AddIo(uint64_t id, int64_t bytes_sent, int64_t bytes_received,
             int64_t messages, int64_t attempts, int64_t retries);

  void Clear();

  /// \brief Snapshot of all spans in canonical (deterministic) order.
  std::vector<TraceSpan> Spans() const;

  /// \brief Indented text tree, deterministic.
  std::string ToText() const;

  /// \brief Chrome trace_event JSON ("X" complete events, ts/dur in
  /// microseconds of simulated time). Lifecycle/operator spans render
  /// on tid 0; spans bound to a source host get a stable per-host tid.
  std::string ToChromeJson() const;

 private:
  /// Returns the span for `id`, or nullptr for the null span. Caller
  /// holds mu_.
  TraceSpan* Find(uint64_t id);

  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;  ///< spans_[i].id == i + 1
  uint64_t next_id_ = 1;
};

/// \brief Non-owning handle threaded through the network layers so a
/// deep call (one RPC attempt inside a retry loop inside a fragment)
/// can hang sub-spans off its caller's span. A default-constructed
/// sink disables tracing along that path.
struct TraceSink {
  TraceCollector* trace = nullptr;
  uint64_t parent = 0;     ///< span to parent new spans under
  double start_ms = 0.0;   ///< simulated time at which the call begins

  bool enabled() const { return trace != nullptr; }
};

}  // namespace gisql
