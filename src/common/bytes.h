/// \file bytes.h
/// \brief Portable little-endian byte encoding: fixed-width integers,
/// LEB128 varints, zig-zag signed varints, floats, and length-prefixed
/// strings. This is the codec underlying the wire protocol.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace gisql {

/// \brief Appends encoded primitives to a growable byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  /// \brief Unsigned LEB128 varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// \brief Zig-zag signed varint.
  void PutSignedVarint(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// \brief Varint length prefix followed by raw bytes.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutRaw(const void* data, size_t n) {
    if (n == 0) return;  // data may be null for an empty column
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// \brief Sequentially decodes primitives from a byte span with bounds
/// checking; every getter reports truncation as SerializationError.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > size_) return Truncated("u8");
    return data_[pos_++];
  }

  Result<uint32_t> GetU32() {
    if (pos_ + 4 > size_) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> GetU64() {
    if (pos_ + 8 > size_) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Truncated("varint");
      if (shift >= 64) {
        return Status::SerializationError("varint too long");
      }
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    return v;
  }

  Result<int64_t> GetSignedVarint() {
    GISQL_ASSIGN_OR_RETURN(uint64_t u, GetVarint());
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  Result<double> GetDouble() {
    GISQL_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> GetString() {
    GISQL_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
    // n comes off the wire: compare against remaining() so a huge value
    // cannot overflow pos_ + n past the check.
    if (n > size_ - pos_) return Truncated("string body");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// \brief Borrows `n` raw bytes from the buffer (bulk columnar data);
  /// the pointer is valid for the reader's underlying buffer lifetime.
  Result<const uint8_t*> GetRaw(size_t n) {
    if (n > size_ - pos_) return Truncated("raw bytes");
    const uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  Result<bool> GetBool() {
    GISQL_ASSIGN_OR_RETURN(uint8_t v, GetU8());
    return v != 0;
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T = uint8_t>
  Status Truncated(const char* what) const {
    return Status::SerializationError("buffer truncated while reading ", what,
                                      " at offset ", pos_, " of ", size_);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace gisql
