/// \file string_util.h
/// \brief Small string helpers used by the SQL front end and printers.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gisql {

/// \brief ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// \brief ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// \brief True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief SQL LIKE pattern match ('%' = any run, '_' = any one char).
bool LikeMatch(std::string_view value, std::string_view pattern);

/// \brief Renders a byte count as e.g. "1.21 MiB".
std::string HumanBytes(uint64_t bytes);

}  // namespace gisql
