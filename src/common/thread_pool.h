/// \file thread_pool.h
/// \brief A bounded, persistent worker pool plus fork/join task groups.
///
/// The executor used to spawn one `std::async` thread per independent
/// plan subtree, so a bushy plan could fan out an unbounded number of
/// OS threads. A ThreadPool caps concurrency at a fixed number of
/// workers created once and reused across queries.
///
/// Nested parallelism on a bounded pool deadlocks naively: a task that
/// blocks waiting for its children can occupy the last worker the
/// children need. TaskGroup avoids this with help-while-wait: `Wait()`
/// first claims and runs any of the group's own tasks that no worker
/// has started yet, and only then blocks — so a waiter always makes
/// progress on its own subtree, and by induction the innermost groups
/// drain on the waiter's thread even when every worker is busy.
/// Results and their ordering are unchanged relative to serial
/// execution; only wall-clock overlap differs.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gisql {

class TaskGroup;

/// \brief Fixed-size worker pool. Threads start in the constructor and
/// live until destruction; tasks are submitted through TaskGroup.
class ThreadPool {
 public:
  /// \brief Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// \brief High-water mark of tasks running on pool workers at once.
  /// Never exceeds num_threads(); tests assert the bound holds.
  int64_t peak_worker_tasks() const {
    return peak_active_.load(std::memory_order_relaxed);
  }

  /// \brief Picks a default size: `hardware_concurrency`, at least 2 so
  /// single-core hosts still overlap simulated waits.
  static size_t DefaultThreads();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    /// Set by whoever runs the task first (a worker or the group's
    /// helping waiter); the loser skips it.
    std::atomic<bool> claimed{false};
    TaskGroup* group = nullptr;
  };

  void Submit(std::shared_ptr<Task> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Task>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> active_{0};
  std::atomic<int64_t> peak_active_{0};
};

/// \brief A fork/join scope over a ThreadPool. Spawn closures, then
/// Wait() for all of them; the destructor waits too, so tasks never
/// outlive the state they capture.
///
/// With a null pool the group degenerates to inline execution inside
/// Spawn() — callers need no separate serial code path.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// \brief Schedules `fn`. Closures must write results to disjoint
  /// slots (e.g. distinct vector elements) — the group provides the
  /// happens-before edge at Wait(), not result plumbing.
  void Spawn(std::function<void()> fn);

  /// \brief Runs the group's unclaimed tasks inline, then blocks until
  /// every spawned task has finished. Idempotent.
  void Wait();

 private:
  friend class ThreadPool;

  void OnTaskDone();

  ThreadPool* pool_;
  std::vector<std::shared_ptr<ThreadPool::Task>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t outstanding_ = 0;
};

}  // namespace gisql
