/// \file result.h
/// \brief Result<T>: a value-or-Status container (cf. arrow::Result).

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gisql {

/// \brief Holds either a successfully produced T or an error Status.
///
/// A Result constructed from an OK status is a programming error; it is
/// converted into an Internal error to keep the invariant "has value XOR
/// has error" intact.
template <typename T>
class Result {
 public:
  /// Constructs an errored result.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed with OK status");
    }
  }

  /// Constructs a successful result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// \brief The error status, or OK when a value is held.
  const Status& status() const& { return status_; }

  /// \brief Access the value; requires ok().
  const T& ValueUnsafe() const& {
    assert(ok());
    return *value_;
  }
  T& ValueUnsafe() & {
    assert(ok());
    return *value_;
  }
  T&& ValueUnsafe() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  T&& operator*() && { return std::move(*this).ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

  /// \brief Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    return ok() ? std::move(*value_) : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gisql
