#include "common/thread_pool.h"

#include <algorithm>

namespace gisql {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(2u, hw);
}

void ThreadPool::Submit(std::shared_ptr<Task> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task->claimed.exchange(true)) continue;  // a waiter ran it inline
    const int64_t running = active_.fetch_add(1) + 1;
    int64_t peak = peak_active_.load(std::memory_order_relaxed);
    while (running > peak &&
           !peak_active_.compare_exchange_weak(peak, running)) {
    }
    task->fn();
    active_.fetch_sub(1);
    task->group->OnTaskDone();
  }
}

void TaskGroup::Spawn(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  auto task = std::make_shared<ThreadPool::Task>();
  task->fn = std::move(fn);
  task->group = this;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  tasks_.push_back(task);
  pool_->Submit(std::move(task));
}

void TaskGroup::Wait() {
  if (pool_ == nullptr) return;
  // Help first: run every task of this group that no worker has picked
  // up yet. This is what makes nested groups on a saturated pool finish
  // instead of deadlocking.
  for (auto& task : tasks_) {
    if (!task->claimed.exchange(true)) {
      task->fn();
      OnTaskDone();
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
  tasks_.clear();
}

void TaskGroup::OnTaskDone() {
  // Notify while still holding mu_: the waiter in Wait() can return (and
  // destroy this stack-allocated group) the moment outstanding_ hits zero
  // with the mutex free, so an unlocked notify here would touch a dead cv_.
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_;
  cv_.notify_all();
}

}  // namespace gisql
