#include "common/rng.h"

#include <cmath>

namespace gisql {

namespace {
double Zeta(int64_t n, double theta) {
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

int64_t Rng::Zipf(int64_t n, double theta) {
  if (n <= 1) return 1;
  if (theta <= 0.0) return Uniform(1, n);
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zetan_ = Zeta(n, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    const double zeta2 = Zeta(2, theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                (1.0 - zeta2 / zipf_zetan_);
  }
  const double u = NextDouble();
  const double uz = u * zipf_zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, theta)) return 2;
  return 1 + static_cast<int64_t>(static_cast<double>(n) *
                                  std::pow(zipf_eta_ * u - zipf_eta_ + 1.0,
                                           zipf_alpha_));
}

}  // namespace gisql
