/// \file rng.h
/// \brief Deterministic pseudo-random generator (splitmix64 / xoshiro256**).
///
/// All workload generation and simulation in gisql derives randomness from
/// this generator so every experiment is exactly reproducible from a seed.

#pragma once

#include <cstdint>
#include <string>

namespace gisql {

/// \brief xoshiro256** seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    uint64_t x = seed;
    for (auto& si : s_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// \brief True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// \brief Zipf-distributed rank in [1, n]; theta=0 is uniform.
  /// Uses the classic rejection-free inverse-CDF approximation of
  /// Gray et al. (SIGMOD '94) for skewed synthetic workloads.
  int64_t Zipf(int64_t n, double theta);

  /// \brief Random lowercase ASCII string of the given length.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + (Next() % 26));
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];

  // Cached Zipf normalization state (recomputed when (n, theta) changes).
  int64_t zipf_n_ = -1;
  double zipf_theta_ = -1.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace gisql
