#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace gisql {

uint64_t TraceCollector::Begin(std::string name, std::string category,
                               uint64_t parent, double start_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start_ms = start_ms;
  span.end_ms = start_ms;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

TraceSpan* TraceCollector::Find(uint64_t id) {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

void TraceCollector::End(uint64_t id, double end_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (TraceSpan* s = Find(id)) s->end_ms = end_ms;
}

void TraceCollector::SetRows(uint64_t id, int64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (TraceSpan* s = Find(id)) s->rows = rows;
}

void TraceCollector::SetHost(uint64_t id, std::string host) {
  std::lock_guard<std::mutex> lock(mu_);
  if (TraceSpan* s = Find(id)) s->host = std::move(host);
}

void TraceCollector::SetNote(uint64_t id, std::string note) {
  std::lock_guard<std::mutex> lock(mu_);
  if (TraceSpan* s = Find(id)) s->note = std::move(note);
}

void TraceCollector::AddIo(uint64_t id, int64_t bytes_sent,
                           int64_t bytes_received, int64_t messages,
                           int64_t attempts, int64_t retries) {
  std::lock_guard<std::mutex> lock(mu_);
  if (TraceSpan* s = Find(id)) {
    s->bytes_sent += bytes_sent;
    s->bytes_received += bytes_received;
    s->messages += messages;
    s->attempts += attempts;
    s->retries += retries;
  }
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  next_id_ = 1;
}

namespace {

/// Canonical sibling order: content-first so pooled and serial runs
/// (whose span *ids* differ by scheduling) render identically.
bool CanonicalLess(const TraceSpan& a, const TraceSpan& b) {
  return std::tie(a.start_ms, a.name, a.host, a.rows, a.bytes_sent,
                  a.bytes_received, a.end_ms, a.id) <
         std::tie(b.start_ms, b.name, b.host, b.rows, b.bytes_sent,
                  b.bytes_received, b.end_ms, b.id);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::vector<TraceSpan> TraceCollector::Spans() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(), CanonicalLess);
  return out;
}

std::string TraceCollector::ToText() const {
  std::vector<TraceSpan> spans = Spans();
  // parent id -> children (already canonically ordered within parent).
  std::map<uint64_t, std::vector<const TraceSpan*>> children;
  for (const auto& s : spans) children[s.parent].push_back(&s);

  std::ostringstream oss;
  std::function<void(const TraceSpan&, int)> render =
      [&](const TraceSpan& s, int depth) {
        oss << std::string(depth * 2, ' ') << s.name << " ["
            << FormatMs(s.start_ms) << " .. " << FormatMs(s.end_ms)
            << " ms]";
        if (s.rows >= 0) oss << " rows=" << s.rows;
        if (s.bytes_sent > 0 || s.bytes_received > 0) {
          oss << " sent=" << s.bytes_sent << "B recv=" << s.bytes_received
              << "B";
        }
        if (s.messages > 0) oss << " msgs=" << s.messages;
        if (s.attempts > 0) oss << " attempts=" << s.attempts;
        if (s.retries > 0) oss << " retries=" << s.retries;
        if (!s.note.empty()) oss << " (" << s.note << ")";
        oss << "\n";
        for (const TraceSpan* c : children[s.id]) render(*c, depth + 1);
      };
  for (const TraceSpan* root : children[0]) render(*root, 0);
  return oss.str();
}

std::string TraceCollector::ToChromeJson() const {
  std::vector<TraceSpan> spans = Spans();
  // Stable lane per source host; lane 0 holds mediator-side spans.
  std::set<std::string> hosts;
  for (const auto& s : spans) {
    if (!s.host.empty()) hosts.insert(s.host);
  }
  std::map<std::string, int> lane;
  int next_lane = 1;
  for (const auto& h : hosts) lane[h] = next_lane++;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(s.host.empty() ? 0 : lane[s.host]);
    out += ",\"name\":";
    AppendJsonString(&out, s.name);
    out += ",\"cat\":";
    AppendJsonString(&out, s.category);
    // Simulated clock in microseconds, as trace_event expects.
    out += ",\"ts\":" + FormatMs(s.start_ms * 1e3);
    out += ",\"dur\":" + FormatMs(s.duration_ms() * 1e3);
    out += ",\"args\":{";
    bool first_arg = true;
    auto arg = [&](const char* key, const std::string& value, bool quote) {
      if (!first_arg) out += ",";
      first_arg = false;
      out += "\"";
      out += key;
      out += "\":";
      if (quote) {
        AppendJsonString(&out, value);
      } else {
        out += value;
      }
    };
    if (s.rows >= 0) arg("rows", std::to_string(s.rows), false);
    if (s.bytes_sent > 0) {
      arg("bytes_sent", std::to_string(s.bytes_sent), false);
    }
    if (s.bytes_received > 0) {
      arg("bytes_received", std::to_string(s.bytes_received), false);
    }
    if (s.messages > 0) arg("messages", std::to_string(s.messages), false);
    if (s.attempts > 0) arg("attempts", std::to_string(s.attempts), false);
    if (s.retries > 0) arg("retries", std::to_string(s.retries), false);
    if (!s.host.empty()) arg("host", s.host, true);
    if (!s.note.empty()) arg("note", s.note, true);
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace gisql
