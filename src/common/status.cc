#include "common/status.h"

namespace gisql {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kBindError: return "BindError";
    case StatusCode::kPlanError: return "PlanError";
    case StatusCode::kExecutionError: return "ExecutionError";
    case StatusCode::kCapabilityError: return "CapabilityError";
    case StatusCode::kNetworkError: return "NetworkError";
    case StatusCode::kSerializationError: return "SerializationError";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace gisql
