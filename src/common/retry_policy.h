/// \file retry_policy.h
/// \brief Mediator-side retry/backoff configuration for calls to
/// autonomous component systems.
///
/// A RetryPolicy is pure configuration (it lives in common so every
/// layer — executor, mediator core, benches — shares one definition).
/// The retrying call engine that interprets it is net/retry.h. All
/// delays are *simulated* milliseconds charged to the deterministic
/// clock, and jitter derives from the policy's seed, so a given
/// (policy, schedule) pair always reproduces the same timings.

#pragma once

#include <algorithm>
#include <cstdint>

#include "common/hash.h"

namespace gisql {

/// \brief Exponential-backoff retry configuration.
struct RetryPolicy {
  /// Total tries per destination (1 = the seed behavior: no retry).
  int max_attempts = 1;
  /// Detection window a caller waits before declaring an attempt dead
  /// (added to two propagation delays; see SimNetwork::TimeoutMs).
  double attempt_timeout_ms = 100.0;
  /// Backoff before retry k (1-based) is
  /// min(backoff_base_ms * backoff_multiplier^(k-1), backoff_max_ms),
  /// scaled by a jitter factor in [1 - jitter, 1 + jitter].
  double backoff_base_ms = 25.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 2000.0;
  double jitter = 0.2;
  /// Seed for the jitter draw; folded with the destination host and the
  /// attempt number so distinct calls decorrelate but replays agree.
  uint64_t seed = 42;

  /// \brief The seed-compatible default: one attempt, no backoff.
  static RetryPolicy NoRetry() { return RetryPolicy{}; }

  /// \brief A production-shaped policy for chaos runs and benches.
  static RetryPolicy Standard(int attempts = 5, uint64_t seed = 42) {
    RetryPolicy p;
    p.max_attempts = attempts;
    p.seed = seed;
    return p;
  }

  /// \brief Deterministic jittered backoff before retry `attempt`
  /// (1-based count of failures so far) toward `stream` (a hash of the
  /// destination, folded in so concurrent retries do not synchronize).
  double BackoffMs(int attempt, uint64_t stream) const {
    if (attempt <= 0 || backoff_base_ms <= 0.0) return 0.0;
    double delay = backoff_base_ms;
    for (int i = 1; i < attempt; ++i) delay *= backoff_multiplier;
    delay = std::min(delay, backoff_max_ms);
    // One splitmix-style draw; no Rng state carried between calls.
    const uint64_t bits = HashInt(
        HashCombine(seed, HashCombine(stream, static_cast<uint64_t>(attempt))));
    const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0,1)
    return delay * (1.0 - jitter + 2.0 * jitter * unit);
  }
};

}  // namespace gisql
