/// \file logging.h
/// \brief Minimal leveled logger with a process-global threshold.

#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace gisql {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// \brief Process-global logging configuration.
///
/// The threshold defaults to kWarn and can be set programmatically or —
/// at first use — via the GISQL_LOG_LEVEL environment variable
/// (TRACE/DEBUG/INFO/WARN/ERROR/OFF, case-insensitive; unrecognized
/// values keep the default). Every emitted line is tagged with its
/// level name.
class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// \brief Emits one formatted line to stderr if `level` is enabled.
  void Log(LogLevel level, const std::string& msg);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

const char* LogLevelName(LogLevel level);

/// \brief Parses a level name (case-insensitive: "trace", "DEBUG",
/// "Info", "warn", "error", "off"); `fallback` when `text` is null or
/// unrecognized.
LogLevel ParseLogLevel(const char* text, LogLevel fallback);

/// \brief The level named by GISQL_LOG_LEVEL, or `fallback` when the
/// variable is unset or unrecognized.
LogLevel LogLevelFromEnv(LogLevel fallback);

namespace internal {

/// \brief Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    oss_ << "[" << base << ":" << line << "] ";
  }
  ~LogMessage() { Logger::Instance().Log(level_, oss_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

}  // namespace internal
}  // namespace gisql

#define GISQL_LOG(lvl)                                              \
  if (static_cast<int>(::gisql::LogLevel::lvl) >=                   \
      static_cast<int>(::gisql::Logger::Instance().level()))        \
  ::gisql::internal::LogMessage(::gisql::LogLevel::lvl, __FILE__, __LINE__)

#define GISQL_DCHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      GISQL_LOG(kError) << "DCHECK failed: " #cond;                          \
      std::abort();                                                          \
    }                                                                        \
  } while (false)
