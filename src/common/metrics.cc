#include "common/metrics.h"

#include <cstdio>
#include <sstream>

namespace gisql {

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:]; we map everything else
/// (dots in `net.rpc_ms`, per-host suffixes) to '_'.
std::string SanitizeMetricName(const std::string& prefix,
                               const std::string& name) {
  std::string out = prefix;
  out.reserve(prefix.size() + 1 + name.size());
  out.push_back('_');
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Shortest round-trippable rendering; Prometheus accepts Go-style
/// floats, and %.17g is lossless for doubles.
std::string FormatSample(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::ExportPrometheus(
    const std::string& prefix) const {
  const MetricsSnapshot snap = SnapshotAll();
  std::ostringstream out;

  for (const auto& [name, value] : snap.counters) {
    const std::string n = SanitizeMetricName(prefix, name);
    out << "# TYPE " << n << " counter\n";
    out << n << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = SanitizeMetricName(prefix, name);
    out << "# TYPE " << n << " gauge\n";
    out << n << " " << FormatSample(value) << "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string n = SanitizeMetricName(prefix, name);
    out << "# TYPE " << n << " histogram\n";
    // Cumulative buckets. The log-scale histogram has 96 bounded
    // buckets plus overflow; emitting only the buckets whose cumulative
    // count changes (plus the mandatory +Inf) keeps the exposition
    // compact while remaining a valid monotone series.
    int64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (hist.bucket(i) == 0) continue;
      cumulative += hist.bucket(i);
      out << n << "_bucket{le=\"" << FormatSample(Histogram::UpperBound(i))
          << "\"} " << cumulative << "\n";
    }
    out << n << "_bucket{le=\"+Inf\"} " << hist.count() << "\n";
    out << n << "_sum " << FormatSample(hist.sum()) << "\n";
    out << n << "_count " << hist.count() << "\n";
  }
  return out.str();
}

}  // namespace gisql
