/// \file status.h
/// \brief Arrow/RocksDB-style Status error model used throughout gisql.
///
/// Core code paths do not throw exceptions; fallible functions return
/// Status (or Result<T>, see result.h) and callers propagate with the
/// GISQL_RETURN_NOT_OK / GISQL_ASSIGN_OR_RETURN macros.

#pragma once

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace gisql {

/// \brief Machine-readable classification of an error.
enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kNotImplemented = 4,
  kIOError = 5,
  kParseError = 6,
  kBindError = 7,
  kPlanError = 8,
  kExecutionError = 9,
  kCapabilityError = 10,
  kNetworkError = 11,
  kSerializationError = 12,
  kInternal = 13,
  /// The mediator shed this request under load-management policy
  /// (admission queue full, deadline unmeetable, or a memory budget
  /// exceeded). Distinct from kExecutionError: the query itself is
  /// fine, the system declined to run it right now.
  kOverloaded = 14,
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error outcome carrying a code and message.
///
/// An OK status stores no heap state; error states allocate a small
/// payload. Copyable and cheap to move.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// \brief True iff this status represents success.
  bool ok() const noexcept { return state_ == nullptr; }

  StatusCode code() const noexcept {
    return state_ ? state_->code : StatusCode::kOk;
  }

  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// \brief Renders "<CodeName>: <message>" (or "OK").
  std::string ToString() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsBindError() const { return code() == StatusCode::kBindError; }
  bool IsPlanError() const { return code() == StatusCode::kPlanError; }
  bool IsExecutionError() const { return code() == StatusCode::kExecutionError; }
  bool IsCapabilityError() const { return code() == StatusCode::kCapabilityError; }
  bool IsNetworkError() const { return code() == StatusCode::kNetworkError; }
  bool IsSerializationError() const { return code() == StatusCode::kSerializationError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }

  static Status OK() { return Status(); }

  /// \brief Factory helpers; each accepts a stream of message parts.
  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status BindError(Args&&... args) {
    return Make(StatusCode::kBindError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status PlanError(Args&&... args) {
    return Make(StatusCode::kPlanError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ExecutionError(Args&&... args) {
    return Make(StatusCode::kExecutionError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status CapabilityError(Args&&... args) {
    return Make(StatusCode::kCapabilityError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NetworkError(Args&&... args) {
    return Make(StatusCode::kNetworkError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status SerializationError(Args&&... args) {
    return Make(StatusCode::kSerializationError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Overloaded(Args&&... args) {
    return Make(StatusCode::kOverloaded, std::forward<Args>(args)...);
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return Status(code, oss.str());
  }

  std::shared_ptr<State> state_;
};

}  // namespace gisql

/// Propagates a non-OK Status to the caller.
#define GISQL_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::gisql::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define GISQL_CONCAT_IMPL(a, b) a##b
#define GISQL_CONCAT(a, b) GISQL_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status,
/// otherwise binds the value to `lhs`.
#define GISQL_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto GISQL_CONCAT(_res_, __LINE__) = (rexpr);                   \
  if (!GISQL_CONCAT(_res_, __LINE__).ok())                        \
    return GISQL_CONCAT(_res_, __LINE__).status();                \
  lhs = std::move(GISQL_CONCAT(_res_, __LINE__)).ValueUnsafe()
