#include "wire/protocol.h"

#include "common/hash.h"
#include "wire/serde.h"

namespace gisql {
namespace wire {

std::vector<uint8_t> EncodeResponse(const Status& status,
                                    const std::vector<uint8_t>& payload) {
  ByteWriter w;
  w.PutBool(status.ok());
  if (!status.ok()) {
    w.PutU8(static_cast<uint8_t>(status.code()));
    w.PutString(status.message());
  } else {
    w.PutVarint(payload.size());
    w.PutRaw(payload.data(), payload.size());
  }
  return w.Release();
}

Result<std::vector<uint8_t>> DecodeResponse(
    const std::vector<uint8_t>& frame) {
  ByteReader r(frame);
  GISQL_ASSIGN_OR_RETURN(bool ok, r.GetBool());
  if (!ok) {
    GISQL_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
    GISQL_ASSIGN_OR_RETURN(std::string msg, r.GetString());
    if (code > static_cast<uint8_t>(StatusCode::kOverloaded) || code == 0) {
      return Status::SerializationError("bad status code in response");
    }
    return Status(static_cast<StatusCode>(code), std::move(msg));
  }
  GISQL_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n != r.remaining()) {
    return Status::SerializationError("response payload length mismatch: ",
                                      n, " declared, ", r.remaining(),
                                      " present");
  }
  std::vector<uint8_t> payload(frame.end() - n, frame.end());
  return payload;
}

std::vector<uint8_t> SealFrame(const std::vector<uint8_t>& payload) {
  ByteWriter w;
  w.PutU32(Crc32(payload.data(), payload.size()));
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutRaw(payload.data(), payload.size());
  return w.Release();
}

Result<std::vector<uint8_t>> OpenFrame(const std::vector<uint8_t>& frame) {
  ByteReader r(frame);
  GISQL_ASSIGN_OR_RETURN(uint32_t crc, r.GetU32());
  GISQL_ASSIGN_OR_RETURN(uint32_t declared, r.GetU32());
  if (declared != r.remaining()) {
    return Status::SerializationError(
        "frame truncated: ", declared, " payload bytes declared, ",
        r.remaining(), " present");
  }
  const uint8_t* body = frame.data() + kFrameHeaderBytes;
  const uint32_t actual = Crc32(body, declared);
  if (actual != crc) {
    return Status::SerializationError(
        "frame checksum mismatch: expected ", crc, ", computed ", actual,
        " over ", declared, " bytes");
  }
  return std::vector<uint8_t>(body, body + declared);
}

void WriteTableStats(ByteWriter* w, const TableStats& stats) {
  w->PutSignedVarint(stats.row_count);
  w->PutVarint(stats.columns.size());
  for (const auto& c : stats.columns) {
    WriteValue(w, c.min);
    WriteValue(w, c.max);
    w->PutSignedVarint(c.null_count);
    w->PutSignedVarint(c.distinct_count);
    w->PutDouble(c.avg_width);
    w->PutVarint(c.histogram_bounds.size());
    for (const auto& edge : c.histogram_bounds) WriteValue(w, edge);
  }
  w->PutVarint(stats.hash_indexed_columns.size());
  for (int64_t col : stats.hash_indexed_columns) w->PutSignedVarint(col);
  w->PutVarint(stats.ordered_indexed_columns.size());
  for (int64_t col : stats.ordered_indexed_columns) w->PutSignedVarint(col);
}

Result<TableStats> ReadTableStats(ByteReader* r) {
  TableStats stats;
  GISQL_ASSIGN_OR_RETURN(stats.row_count, r->GetSignedVarint());
  GISQL_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > 1 << 16) {
    return Status::SerializationError("too many column stats");
  }
  stats.columns.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ColumnStats c;
    GISQL_ASSIGN_OR_RETURN(c.min, ReadValue(r));
    GISQL_ASSIGN_OR_RETURN(c.max, ReadValue(r));
    GISQL_ASSIGN_OR_RETURN(c.null_count, r->GetSignedVarint());
    GISQL_ASSIGN_OR_RETURN(c.distinct_count, r->GetSignedVarint());
    GISQL_ASSIGN_OR_RETURN(c.avg_width, r->GetDouble());
    GISQL_ASSIGN_OR_RETURN(uint64_t nbounds, r->GetVarint());
    if (nbounds > 1 << 12) {
      return Status::SerializationError("too many histogram bounds");
    }
    c.histogram_bounds.reserve(nbounds);
    for (uint64_t b = 0; b < nbounds; ++b) {
      GISQL_ASSIGN_OR_RETURN(Value edge, ReadValue(r));
      c.histogram_bounds.push_back(std::move(edge));
    }
    stats.columns.push_back(std::move(c));
  }
  GISQL_ASSIGN_OR_RETURN(uint64_t nhash, r->GetVarint());
  if (nhash > 1 << 16) {
    return Status::SerializationError("too many indexed columns");
  }
  stats.hash_indexed_columns.reserve(nhash);
  for (uint64_t i = 0; i < nhash; ++i) {
    GISQL_ASSIGN_OR_RETURN(int64_t col, r->GetSignedVarint());
    stats.hash_indexed_columns.push_back(col);
  }
  GISQL_ASSIGN_OR_RETURN(uint64_t nordered, r->GetVarint());
  if (nordered > 1 << 16) {
    return Status::SerializationError("too many indexed columns");
  }
  stats.ordered_indexed_columns.reserve(nordered);
  for (uint64_t i = 0; i < nordered; ++i) {
    GISQL_ASSIGN_OR_RETURN(int64_t col, r->GetSignedVarint());
    stats.ordered_indexed_columns.push_back(col);
  }
  return stats;
}

}  // namespace wire
}  // namespace gisql
