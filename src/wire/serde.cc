#include "wire/serde.h"

namespace gisql {
namespace wire {

namespace {
// Value tags: low 3 bits = TypeId, bit 3 = null flag.
constexpr uint8_t kNullBit = 0x08;
}  // namespace

void WriteValue(ByteWriter* w, const Value& v) {
  uint8_t tag = static_cast<uint8_t>(v.type());
  if (v.is_null()) {
    w->PutU8(tag | kNullBit);
    return;
  }
  w->PutU8(tag);
  switch (v.type()) {
    case TypeId::kNull:
      break;
    case TypeId::kBool:
      w->PutBool(v.AsBool());
      break;
    case TypeId::kInt64:
      w->PutSignedVarint(v.AsInt());
      break;
    case TypeId::kDate:
      w->PutSignedVarint(v.AsInt());
      break;
    case TypeId::kDouble:
      w->PutDouble(v.AsDouble());
      break;
    case TypeId::kString:
      w->PutString(v.AsString());
      break;
  }
}

Result<Value> ReadValue(ByteReader* r) {
  GISQL_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  const auto type = static_cast<TypeId>(tag & 0x07);
  if (static_cast<uint8_t>(type) > static_cast<uint8_t>(TypeId::kDate)) {
    return Status::SerializationError("bad value tag ", int(tag));
  }
  if (tag & kNullBit) return Value::Null(type);
  switch (type) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool: {
      GISQL_ASSIGN_OR_RETURN(bool b, r->GetBool());
      return Value::Bool(b);
    }
    case TypeId::kInt64: {
      GISQL_ASSIGN_OR_RETURN(int64_t i, r->GetSignedVarint());
      return Value::Int(i);
    }
    case TypeId::kDate: {
      GISQL_ASSIGN_OR_RETURN(int64_t i, r->GetSignedVarint());
      return Value::Date(i);
    }
    case TypeId::kDouble: {
      GISQL_ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value::Double(d);
    }
    case TypeId::kString: {
      GISQL_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value::String(std::move(s));
    }
  }
  return Status::SerializationError("unreachable value tag");
}

void WriteSchema(ByteWriter* w, const Schema& schema) {
  w->PutVarint(schema.num_fields());
  for (const auto& f : schema.fields()) {
    w->PutString(f.name);
    w->PutString(f.qualifier);
    w->PutU8(static_cast<uint8_t>(f.type));
    w->PutBool(f.nullable);
  }
}

Result<Schema> ReadSchema(ByteReader* r) {
  GISQL_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > 1 << 16) {
    return Status::SerializationError("schema too wide: ", n);
  }
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Field f;
    GISQL_ASSIGN_OR_RETURN(f.name, r->GetString());
    GISQL_ASSIGN_OR_RETURN(f.qualifier, r->GetString());
    GISQL_ASSIGN_OR_RETURN(uint8_t t, r->GetU8());
    if (t > static_cast<uint8_t>(TypeId::kDate)) {
      return Status::SerializationError("bad field type ", int(t));
    }
    f.type = static_cast<TypeId>(t);
    GISQL_ASSIGN_OR_RETURN(f.nullable, r->GetBool());
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

void WriteBatch(ByteWriter* w, const RowBatch& batch) {
  WriteSchema(w, *batch.schema());
  w->PutVarint(batch.num_rows());
  for (const auto& row : batch.rows()) {
    for (const auto& v : row) WriteValue(w, v);
  }
}

Result<RowBatch> ReadBatch(ByteReader* r) {
  GISQL_ASSIGN_OR_RETURN(Schema schema, ReadSchema(r));
  GISQL_ASSIGN_OR_RETURN(uint64_t nrows, r->GetVarint());
  auto schema_ptr = std::make_shared<Schema>(std::move(schema));
  const size_t width = schema_ptr->num_fields();
  RowBatch batch(schema_ptr);
  batch.Reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      GISQL_ASSIGN_OR_RETURN(Value v, ReadValue(r));
      row.push_back(std::move(v));
    }
    batch.Append(std::move(row));
  }
  return batch;
}

void WriteExpr(ByteWriter* w, const Expr& e) {
  w->PutU8(static_cast<uint8_t>(e.kind));
  w->PutU8(static_cast<uint8_t>(e.type));
  switch (e.kind) {
    case ExprKind::kColumn:
      w->PutVarint(e.column_index);
      w->PutString(e.column_name);
      break;
    case ExprKind::kLiteral:
      WriteValue(w, e.literal);
      break;
    case ExprKind::kCompare:
      w->PutU8(static_cast<uint8_t>(e.compare_op));
      break;
    case ExprKind::kArith:
      w->PutU8(static_cast<uint8_t>(e.arith_op));
      break;
    case ExprKind::kLogic:
      w->PutU8(static_cast<uint8_t>(e.logic_op));
      break;
    case ExprKind::kFunc:
      w->PutString(e.func_name);
      break;
    default:
      break;
  }
  w->PutBool(e.negated);
  w->PutBool(e.has_else);
  w->PutVarint(e.children.size());
  for (const auto& c : e.children) WriteExpr(w, *c);
}

Result<ExprPtr> ReadExpr(ByteReader* r) {
  GISQL_ASSIGN_OR_RETURN(uint8_t kind_raw, r->GetU8());
  if (kind_raw > static_cast<uint8_t>(ExprKind::kCase)) {
    return Status::SerializationError("bad expr kind ", int(kind_raw));
  }
  auto e = std::make_shared<Expr>(static_cast<ExprKind>(kind_raw));
  GISQL_ASSIGN_OR_RETURN(uint8_t type_raw, r->GetU8());
  if (type_raw > static_cast<uint8_t>(TypeId::kDate)) {
    return Status::SerializationError("bad expr type ", int(type_raw));
  }
  e->type = static_cast<TypeId>(type_raw);
  switch (e->kind) {
    case ExprKind::kColumn: {
      GISQL_ASSIGN_OR_RETURN(uint64_t idx, r->GetVarint());
      e->column_index = idx;
      GISQL_ASSIGN_OR_RETURN(e->column_name, r->GetString());
      break;
    }
    case ExprKind::kLiteral: {
      GISQL_ASSIGN_OR_RETURN(e->literal, ReadValue(r));
      break;
    }
    case ExprKind::kCompare: {
      GISQL_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > static_cast<uint8_t>(CompareOp::kGe)) {
        return Status::SerializationError("bad compare op");
      }
      e->compare_op = static_cast<CompareOp>(op);
      break;
    }
    case ExprKind::kArith: {
      GISQL_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > static_cast<uint8_t>(ArithOp::kMod)) {
        return Status::SerializationError("bad arith op");
      }
      e->arith_op = static_cast<ArithOp>(op);
      break;
    }
    case ExprKind::kLogic: {
      GISQL_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > static_cast<uint8_t>(LogicOp::kOr)) {
        return Status::SerializationError("bad logic op");
      }
      e->logic_op = static_cast<LogicOp>(op);
      break;
    }
    case ExprKind::kFunc: {
      GISQL_ASSIGN_OR_RETURN(e->func_name, r->GetString());
      break;
    }
    default:
      break;
  }
  GISQL_ASSIGN_OR_RETURN(e->negated, r->GetBool());
  GISQL_ASSIGN_OR_RETURN(e->has_else, r->GetBool());
  GISQL_ASSIGN_OR_RETURN(uint64_t nchildren, r->GetVarint());
  if (nchildren > 1 << 16) {
    return Status::SerializationError("expr too wide: ", nchildren,
                                      " children");
  }
  e->children.reserve(nchildren);
  for (uint64_t i = 0; i < nchildren; ++i) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr c, ReadExpr(r));
    e->children.push_back(std::move(c));
  }
  return e;
}

void WriteAggregate(ByteWriter* w, const BoundAggregate& agg) {
  w->PutU8(static_cast<uint8_t>(agg.kind));
  w->PutBool(agg.distinct);
  w->PutU8(static_cast<uint8_t>(agg.result_type));
  w->PutString(agg.display);
  w->PutBool(agg.arg != nullptr);
  if (agg.arg) WriteExpr(w, *agg.arg);
}

Result<BoundAggregate> ReadAggregate(ByteReader* r) {
  BoundAggregate agg;
  GISQL_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > static_cast<uint8_t>(AggKind::kAvg)) {
    return Status::SerializationError("bad aggregate kind");
  }
  agg.kind = static_cast<AggKind>(kind);
  GISQL_ASSIGN_OR_RETURN(agg.distinct, r->GetBool());
  GISQL_ASSIGN_OR_RETURN(uint8_t rt, r->GetU8());
  if (rt > static_cast<uint8_t>(TypeId::kDate)) {
    return Status::SerializationError("bad aggregate result type");
  }
  agg.result_type = static_cast<TypeId>(rt);
  GISQL_ASSIGN_OR_RETURN(agg.display, r->GetString());
  GISQL_ASSIGN_OR_RETURN(bool has_arg, r->GetBool());
  if (has_arg) {
    GISQL_ASSIGN_OR_RETURN(agg.arg, ReadExpr(r));
  }
  return agg;
}

void WriteFragment(ByteWriter* w, const FragmentPlan& frag) {
  w->PutString(frag.table);
  w->PutBool(frag.filter != nullptr);
  if (frag.filter) WriteExpr(w, *frag.filter);
  w->PutVarint(frag.projections.size());
  for (size_t i = 0; i < frag.projections.size(); ++i) {
    WriteExpr(w, *frag.projections[i]);
    w->PutString(i < frag.projection_names.size() ? frag.projection_names[i]
                                                  : "");
  }
  w->PutSignedVarint(frag.semijoin_column);
  w->PutVarint(frag.semijoin_values.size());
  for (const auto& v : frag.semijoin_values) WriteValue(w, v);
  w->PutBool(frag.has_aggregate);
  if (frag.has_aggregate) {
    w->PutVarint(frag.group_by.size());
    for (const auto& g : frag.group_by) WriteExpr(w, *g);
    w->PutVarint(frag.aggregates.size());
    for (const auto& a : frag.aggregates) WriteAggregate(w, a);
  }
  w->PutVarint(frag.order_by.size());
  for (size_t i = 0; i < frag.order_by.size(); ++i) {
    WriteExpr(w, *frag.order_by[i]);
    w->PutBool(i < frag.order_ascending.size() ? frag.order_ascending[i]
                                               : true);
  }
  w->PutSignedVarint(frag.limit);
}

Result<FragmentPlan> ReadFragment(ByteReader* r) {
  FragmentPlan frag;
  GISQL_ASSIGN_OR_RETURN(frag.table, r->GetString());
  GISQL_ASSIGN_OR_RETURN(bool has_filter, r->GetBool());
  if (has_filter) {
    GISQL_ASSIGN_OR_RETURN(frag.filter, ReadExpr(r));
  }
  GISQL_ASSIGN_OR_RETURN(uint64_t nproj, r->GetVarint());
  if (nproj > 1 << 16) {
    return Status::SerializationError("too many projections");
  }
  for (uint64_t i = 0; i < nproj; ++i) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr p, ReadExpr(r));
    frag.projections.push_back(std::move(p));
    GISQL_ASSIGN_OR_RETURN(std::string name, r->GetString());
    frag.projection_names.push_back(std::move(name));
  }
  GISQL_ASSIGN_OR_RETURN(frag.semijoin_column, r->GetSignedVarint());
  GISQL_ASSIGN_OR_RETURN(uint64_t nsemi, r->GetVarint());
  frag.semijoin_values.reserve(nsemi);
  for (uint64_t i = 0; i < nsemi; ++i) {
    GISQL_ASSIGN_OR_RETURN(Value v, ReadValue(r));
    frag.semijoin_values.push_back(std::move(v));
  }
  GISQL_ASSIGN_OR_RETURN(frag.has_aggregate, r->GetBool());
  if (frag.has_aggregate) {
    GISQL_ASSIGN_OR_RETURN(uint64_t ng, r->GetVarint());
    for (uint64_t i = 0; i < ng; ++i) {
      GISQL_ASSIGN_OR_RETURN(ExprPtr g, ReadExpr(r));
      frag.group_by.push_back(std::move(g));
    }
    GISQL_ASSIGN_OR_RETURN(uint64_t na, r->GetVarint());
    for (uint64_t i = 0; i < na; ++i) {
      GISQL_ASSIGN_OR_RETURN(BoundAggregate a, ReadAggregate(r));
      frag.aggregates.push_back(std::move(a));
    }
  }
  GISQL_ASSIGN_OR_RETURN(uint64_t nord, r->GetVarint());
  if (nord > 1 << 12) {
    return Status::SerializationError("too many order-by terms");
  }
  for (uint64_t i = 0; i < nord; ++i) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr e, ReadExpr(r));
    frag.order_by.push_back(std::move(e));
    GISQL_ASSIGN_OR_RETURN(bool asc, r->GetBool());
    frag.order_ascending.push_back(asc);
  }
  GISQL_ASSIGN_OR_RETURN(frag.limit, r->GetSignedVarint());
  return frag;
}

std::vector<uint8_t> SerializeFragment(const FragmentPlan& frag) {
  ByteWriter w;
  WriteFragment(&w, frag);
  return w.Release();
}

std::vector<uint8_t> SerializeBatch(const RowBatch& batch) {
  ByteWriter w;
  WriteBatch(&w, batch);
  return w.Release();
}

}  // namespace wire
}  // namespace gisql
