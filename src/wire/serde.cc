#include "wire/serde.h"

#include <bit>
#include <cstring>

namespace gisql {
namespace wire {

namespace {
// Value tags: low 3 bits = TypeId, bit 3 = null flag.
constexpr uint8_t kNullBit = 0x08;

// Decoder allocation guard: a row count larger than this is rejected
// before any per-row allocation happens.
constexpr uint64_t kMaxWireRows = uint64_t{1} << 28;

/// Bulk little-endian array write: memcpy on little-endian hosts, an
/// element loop elsewhere. T is a trivially copyable 4/8-byte scalar.
template <typename T>
void PutScalarArray(ByteWriter* w, const T* data, size_t count) {
  if constexpr (std::endian::native == std::endian::little) {
    w->PutRaw(data, count * sizeof(T));
  } else {
    for (size_t i = 0; i < count; ++i) {
      uint64_t bits = 0;
      std::memcpy(&bits, &data[i], sizeof(T));
      if constexpr (sizeof(T) == 4) {
        w->PutU32(static_cast<uint32_t>(bits));
      } else {
        w->PutU64(bits);
      }
    }
  }
}

template <typename T>
Status GetScalarArray(ByteReader* r, std::vector<T>* out, size_t count) {
  GISQL_ASSIGN_OR_RETURN(const uint8_t* raw, r->GetRaw(count * sizeof(T)));
  out->resize(count);
  if (count == 0) return Status::OK();
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out->data(), raw, count * sizeof(T));
  } else {
    for (size_t i = 0; i < count; ++i) {
      uint64_t bits = 0;
      for (size_t b = 0; b < sizeof(T); ++b) {
        bits |= static_cast<uint64_t>(raw[i * sizeof(T) + b]) << (8 * b);
      }
      T v;
      if constexpr (sizeof(T) == 4) {
        const uint32_t narrow = static_cast<uint32_t>(bits);
        std::memcpy(&v, &narrow, sizeof(T));
      } else {
        std::memcpy(&v, &bits, sizeof(T));
      }
      (*out)[i] = v;
    }
  }
  return Status::OK();
}
}  // namespace

void WriteValue(ByteWriter* w, const Value& v) {
  uint8_t tag = static_cast<uint8_t>(v.type());
  if (v.is_null()) {
    w->PutU8(tag | kNullBit);
    return;
  }
  w->PutU8(tag);
  switch (v.type()) {
    case TypeId::kNull:
      break;
    case TypeId::kBool:
      w->PutBool(v.AsBool());
      break;
    case TypeId::kInt64:
      w->PutSignedVarint(v.AsInt());
      break;
    case TypeId::kDate:
      w->PutSignedVarint(v.AsInt());
      break;
    case TypeId::kDouble:
      w->PutDouble(v.AsDouble());
      break;
    case TypeId::kString:
      w->PutString(v.AsString());
      break;
  }
}

Result<Value> ReadValue(ByteReader* r) {
  GISQL_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  const auto type = static_cast<TypeId>(tag & 0x07);
  if (static_cast<uint8_t>(type) > static_cast<uint8_t>(TypeId::kDate)) {
    return Status::SerializationError("bad value tag ", int(tag));
  }
  if (tag & kNullBit) return Value::Null(type);
  switch (type) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool: {
      GISQL_ASSIGN_OR_RETURN(bool b, r->GetBool());
      return Value::Bool(b);
    }
    case TypeId::kInt64: {
      GISQL_ASSIGN_OR_RETURN(int64_t i, r->GetSignedVarint());
      return Value::Int(i);
    }
    case TypeId::kDate: {
      GISQL_ASSIGN_OR_RETURN(int64_t i, r->GetSignedVarint());
      return Value::Date(i);
    }
    case TypeId::kDouble: {
      GISQL_ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value::Double(d);
    }
    case TypeId::kString: {
      GISQL_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value::String(std::move(s));
    }
  }
  return Status::SerializationError("unreachable value tag");
}

void WriteSchema(ByteWriter* w, const Schema& schema) {
  w->PutVarint(schema.num_fields());
  for (const auto& f : schema.fields()) {
    w->PutString(f.name);
    w->PutString(f.qualifier);
    w->PutU8(static_cast<uint8_t>(f.type));
    w->PutBool(f.nullable);
  }
}

Result<Schema> ReadSchema(ByteReader* r) {
  GISQL_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > 1 << 16) {
    return Status::SerializationError("schema too wide: ", n);
  }
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Field f;
    GISQL_ASSIGN_OR_RETURN(f.name, r->GetString());
    GISQL_ASSIGN_OR_RETURN(f.qualifier, r->GetString());
    GISQL_ASSIGN_OR_RETURN(uint8_t t, r->GetU8());
    if (t > static_cast<uint8_t>(TypeId::kDate)) {
      return Status::SerializationError("bad field type ", int(t));
    }
    f.type = static_cast<TypeId>(t);
    GISQL_ASSIGN_OR_RETURN(f.nullable, r->GetBool());
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

void WriteBatch(ByteWriter* w, const RowBatch& batch) {
  WriteSchema(w, *batch.schema());
  w->PutVarint(batch.num_rows());
  for (const auto& row : batch.rows()) {
    for (const auto& v : row) WriteValue(w, v);
  }
}

Result<RowBatch> ReadBatch(ByteReader* r) {
  GISQL_ASSIGN_OR_RETURN(Schema schema, ReadSchema(r));
  GISQL_ASSIGN_OR_RETURN(uint64_t nrows, r->GetVarint());
  if (nrows > kMaxWireRows) {
    return Status::SerializationError("row batch too tall: ", nrows, " rows");
  }
  auto schema_ptr = std::make_shared<Schema>(std::move(schema));
  const size_t width = schema_ptr->num_fields();
  RowBatch batch(schema_ptr);
  batch.Reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      GISQL_ASSIGN_OR_RETURN(Value v, ReadValue(r));
      row.push_back(std::move(v));
    }
    batch.Append(std::move(row));
  }
  return batch;
}

namespace {
// Column flag bits of the columnar encoding.
constexpr uint8_t kColHasNulls = 0x01;
}  // namespace

void WriteColumnBatch(ByteWriter* w, const ColumnBatch& batch) {
  WriteSchema(w, *batch.schema());
  const size_t n = batch.num_rows();
  w->PutVarint(n);
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const ColumnBatch::Column& col = batch.column(c);
    uint8_t flags = 0;
    if (col.has_nulls() && col.type != TypeId::kNull) flags |= kColHasNulls;
    w->PutU8(flags);
    if (flags & kColHasNulls) w->PutRaw(col.nulls.data(), (n + 7) / 8);
    switch (col.type) {
      case TypeId::kNull:
        break;  // every row is NULL; no data travels
      case TypeId::kBool:
        w->PutRaw(col.bools.data(), n);
        break;
      case TypeId::kInt64:
      case TypeId::kDate:
        // Zig-zag varints rather than raw words: fragment results are
        // dominated by small integers (keys, counts, dates), and wire
        // bytes are simulated-WAN latency. The column still beats the
        // row encoding by the per-value tag byte.
        for (size_t i = 0; i < n; ++i) w->PutSignedVarint(col.ints[i]);
        break;
      case TypeId::kDouble:
        PutScalarArray(w, col.doubles.data(), n);
        break;
      case TypeId::kString:
        // Lengths (offset deltas) as varints, then the arena in one
        // block; the decoder rebuilds the offsets by prefix sum.
        w->PutVarint(col.arena.size());
        for (size_t i = 0; i < n; ++i) {
          w->PutVarint(col.offsets[i + 1] - col.offsets[i]);
        }
        w->PutRaw(col.arena.data(), col.arena.size());
        break;
    }
  }
}

Result<ColumnBatch> ReadColumnBatch(ByteReader* r) {
  GISQL_ASSIGN_OR_RETURN(Schema schema, ReadSchema(r));
  GISQL_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n > kMaxWireRows) {
    return Status::SerializationError("column batch too tall: ", n, " rows");
  }
  ColumnBatch batch(std::make_shared<Schema>(std::move(schema)));
  batch.set_num_rows(n);
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    ColumnBatch::Column& col = batch.column(c);
    GISQL_ASSIGN_OR_RETURN(uint8_t flags, r->GetU8());
    if (flags & ~kColHasNulls) {
      return Status::SerializationError("bad column flags ", int(flags));
    }
    if (flags & kColHasNulls) {
      const size_t nbytes = (n + 7) / 8;
      GISQL_ASSIGN_OR_RETURN(const uint8_t* bits, r->GetRaw(nbytes));
      col.nulls.assign(bits, bits + nbytes);
    }
    switch (col.type) {
      case TypeId::kNull:
        break;
      case TypeId::kBool: {
        GISQL_ASSIGN_OR_RETURN(const uint8_t* raw, r->GetRaw(n));
        col.bools.resize(n);
        for (size_t i = 0; i < n; ++i) col.bools[i] = raw[i] != 0;
        break;
      }
      case TypeId::kInt64:
      case TypeId::kDate: {
        // Every varint is at least one byte, so this bounds the resize
        // before a hostile row count can allocate gigabytes.
        if (n > r->remaining()) {
          return Status::SerializationError("int column data truncated");
        }
        col.ints.resize(n);
        for (size_t i = 0; i < n; ++i) {
          GISQL_ASSIGN_OR_RETURN(col.ints[i], r->GetSignedVarint());
        }
        break;
      }
      case TypeId::kDouble:
        GISQL_RETURN_NOT_OK(GetScalarArray(r, &col.doubles, n));
        break;
      case TypeId::kString: {
        GISQL_ASSIGN_OR_RETURN(uint64_t arena_len, r->GetVarint());
        if (arena_len > r->remaining() || arena_len > UINT32_MAX) {
          return Status::SerializationError(
              "string arena length ", arena_len, " exceeds the ",
              r->remaining(), " bytes remaining");
        }
        if (n > r->remaining()) {
          return Status::SerializationError("string lengths truncated");
        }
        col.offsets.resize(n + 1);
        col.offsets[0] = 0;
        for (size_t i = 0; i < n; ++i) {
          GISQL_ASSIGN_OR_RETURN(uint64_t len, r->GetVarint());
          if (len > arena_len - col.offsets[i]) {
            return Status::SerializationError(
                "string lengths overrun the arena at row ", i);
          }
          col.offsets[i + 1] = col.offsets[i] + static_cast<uint32_t>(len);
        }
        if (col.offsets[n] != arena_len) {
          return Status::SerializationError(
              "string lengths do not span the arena");
        }
        GISQL_ASSIGN_OR_RETURN(const uint8_t* raw, r->GetRaw(arena_len));
        col.arena.assign(reinterpret_cast<const char*>(raw), arena_len);
        break;
      }
    }
  }
  return batch;
}

void WriteExpr(ByteWriter* w, const Expr& e) {
  w->PutU8(static_cast<uint8_t>(e.kind));
  w->PutU8(static_cast<uint8_t>(e.type));
  switch (e.kind) {
    case ExprKind::kColumn:
      w->PutVarint(e.column_index);
      w->PutString(e.column_name);
      break;
    case ExprKind::kLiteral:
      WriteValue(w, e.literal);
      break;
    case ExprKind::kCompare:
      w->PutU8(static_cast<uint8_t>(e.compare_op));
      break;
    case ExprKind::kArith:
      w->PutU8(static_cast<uint8_t>(e.arith_op));
      break;
    case ExprKind::kLogic:
      w->PutU8(static_cast<uint8_t>(e.logic_op));
      break;
    case ExprKind::kFunc:
      w->PutString(e.func_name);
      break;
    default:
      break;
  }
  w->PutBool(e.negated);
  w->PutBool(e.has_else);
  w->PutVarint(e.children.size());
  for (const auto& c : e.children) WriteExpr(w, *c);
}

Result<ExprPtr> ReadExpr(ByteReader* r) {
  GISQL_ASSIGN_OR_RETURN(uint8_t kind_raw, r->GetU8());
  if (kind_raw > static_cast<uint8_t>(ExprKind::kCase)) {
    return Status::SerializationError("bad expr kind ", int(kind_raw));
  }
  auto e = std::make_shared<Expr>(static_cast<ExprKind>(kind_raw));
  GISQL_ASSIGN_OR_RETURN(uint8_t type_raw, r->GetU8());
  if (type_raw > static_cast<uint8_t>(TypeId::kDate)) {
    return Status::SerializationError("bad expr type ", int(type_raw));
  }
  e->type = static_cast<TypeId>(type_raw);
  switch (e->kind) {
    case ExprKind::kColumn: {
      GISQL_ASSIGN_OR_RETURN(uint64_t idx, r->GetVarint());
      e->column_index = idx;
      GISQL_ASSIGN_OR_RETURN(e->column_name, r->GetString());
      break;
    }
    case ExprKind::kLiteral: {
      GISQL_ASSIGN_OR_RETURN(e->literal, ReadValue(r));
      break;
    }
    case ExprKind::kCompare: {
      GISQL_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > static_cast<uint8_t>(CompareOp::kGe)) {
        return Status::SerializationError("bad compare op");
      }
      e->compare_op = static_cast<CompareOp>(op);
      break;
    }
    case ExprKind::kArith: {
      GISQL_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > static_cast<uint8_t>(ArithOp::kMod)) {
        return Status::SerializationError("bad arith op");
      }
      e->arith_op = static_cast<ArithOp>(op);
      break;
    }
    case ExprKind::kLogic: {
      GISQL_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
      if (op > static_cast<uint8_t>(LogicOp::kOr)) {
        return Status::SerializationError("bad logic op");
      }
      e->logic_op = static_cast<LogicOp>(op);
      break;
    }
    case ExprKind::kFunc: {
      GISQL_ASSIGN_OR_RETURN(e->func_name, r->GetString());
      break;
    }
    default:
      break;
  }
  GISQL_ASSIGN_OR_RETURN(e->negated, r->GetBool());
  GISQL_ASSIGN_OR_RETURN(e->has_else, r->GetBool());
  GISQL_ASSIGN_OR_RETURN(uint64_t nchildren, r->GetVarint());
  if (nchildren > 1 << 16) {
    return Status::SerializationError("expr too wide: ", nchildren,
                                      " children");
  }
  e->children.reserve(nchildren);
  for (uint64_t i = 0; i < nchildren; ++i) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr c, ReadExpr(r));
    e->children.push_back(std::move(c));
  }
  return e;
}

void WriteAggregate(ByteWriter* w, const BoundAggregate& agg) {
  w->PutU8(static_cast<uint8_t>(agg.kind));
  w->PutBool(agg.distinct);
  w->PutU8(static_cast<uint8_t>(agg.result_type));
  w->PutString(agg.display);
  w->PutBool(agg.arg != nullptr);
  if (agg.arg) WriteExpr(w, *agg.arg);
}

Result<BoundAggregate> ReadAggregate(ByteReader* r) {
  BoundAggregate agg;
  GISQL_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > static_cast<uint8_t>(AggKind::kAvg)) {
    return Status::SerializationError("bad aggregate kind");
  }
  agg.kind = static_cast<AggKind>(kind);
  GISQL_ASSIGN_OR_RETURN(agg.distinct, r->GetBool());
  GISQL_ASSIGN_OR_RETURN(uint8_t rt, r->GetU8());
  if (rt > static_cast<uint8_t>(TypeId::kDate)) {
    return Status::SerializationError("bad aggregate result type");
  }
  agg.result_type = static_cast<TypeId>(rt);
  GISQL_ASSIGN_OR_RETURN(agg.display, r->GetString());
  GISQL_ASSIGN_OR_RETURN(bool has_arg, r->GetBool());
  if (has_arg) {
    GISQL_ASSIGN_OR_RETURN(agg.arg, ReadExpr(r));
  }
  return agg;
}

void WriteFragment(ByteWriter* w, const FragmentPlan& frag) {
  w->PutString(frag.table);
  w->PutBool(frag.filter != nullptr);
  if (frag.filter) WriteExpr(w, *frag.filter);
  w->PutVarint(frag.projections.size());
  for (size_t i = 0; i < frag.projections.size(); ++i) {
    WriteExpr(w, *frag.projections[i]);
    w->PutString(i < frag.projection_names.size() ? frag.projection_names[i]
                                                  : "");
  }
  w->PutSignedVarint(frag.semijoin_column);
  w->PutVarint(frag.semijoin_values.size());
  for (const auto& v : frag.semijoin_values) WriteValue(w, v);
  w->PutBool(frag.has_aggregate);
  if (frag.has_aggregate) {
    w->PutVarint(frag.group_by.size());
    for (const auto& g : frag.group_by) WriteExpr(w, *g);
    w->PutVarint(frag.aggregates.size());
    for (const auto& a : frag.aggregates) WriteAggregate(w, a);
  }
  w->PutVarint(frag.order_by.size());
  for (size_t i = 0; i < frag.order_by.size(); ++i) {
    WriteExpr(w, *frag.order_by[i]);
    w->PutBool(i < frag.order_ascending.size() ? frag.order_ascending[i]
                                               : true);
  }
  w->PutSignedVarint(frag.limit);
  w->PutSignedVarint(frag.index_column);
  if (frag.index_column >= 0) {
    WriteValue(w, frag.range_lo);
    WriteValue(w, frag.range_hi);
    w->PutBool(frag.range_lo_inclusive);
    w->PutBool(frag.range_hi_inclusive);
  }
  w->PutString(frag.join_table);
  if (!frag.join_table.empty()) {
    w->PutSignedVarint(frag.join_outer_column);
    w->PutSignedVarint(frag.join_inner_column);
    w->PutBool(frag.join_inner_filter != nullptr);
    if (frag.join_inner_filter) WriteExpr(w, *frag.join_inner_filter);
  }
  w->PutVarint(frag.snapshot_ts);
  w->PutVarint(frag.txn_id);
}

Result<FragmentPlan> ReadFragment(ByteReader* r) {
  FragmentPlan frag;
  GISQL_ASSIGN_OR_RETURN(frag.table, r->GetString());
  GISQL_ASSIGN_OR_RETURN(bool has_filter, r->GetBool());
  if (has_filter) {
    GISQL_ASSIGN_OR_RETURN(frag.filter, ReadExpr(r));
  }
  GISQL_ASSIGN_OR_RETURN(uint64_t nproj, r->GetVarint());
  if (nproj > 1 << 16) {
    return Status::SerializationError("too many projections");
  }
  for (uint64_t i = 0; i < nproj; ++i) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr p, ReadExpr(r));
    frag.projections.push_back(std::move(p));
    GISQL_ASSIGN_OR_RETURN(std::string name, r->GetString());
    frag.projection_names.push_back(std::move(name));
  }
  GISQL_ASSIGN_OR_RETURN(frag.semijoin_column, r->GetSignedVarint());
  GISQL_ASSIGN_OR_RETURN(uint64_t nsemi, r->GetVarint());
  frag.semijoin_values.reserve(nsemi);
  for (uint64_t i = 0; i < nsemi; ++i) {
    GISQL_ASSIGN_OR_RETURN(Value v, ReadValue(r));
    frag.semijoin_values.push_back(std::move(v));
  }
  GISQL_ASSIGN_OR_RETURN(frag.has_aggregate, r->GetBool());
  if (frag.has_aggregate) {
    GISQL_ASSIGN_OR_RETURN(uint64_t ng, r->GetVarint());
    for (uint64_t i = 0; i < ng; ++i) {
      GISQL_ASSIGN_OR_RETURN(ExprPtr g, ReadExpr(r));
      frag.group_by.push_back(std::move(g));
    }
    GISQL_ASSIGN_OR_RETURN(uint64_t na, r->GetVarint());
    for (uint64_t i = 0; i < na; ++i) {
      GISQL_ASSIGN_OR_RETURN(BoundAggregate a, ReadAggregate(r));
      frag.aggregates.push_back(std::move(a));
    }
  }
  GISQL_ASSIGN_OR_RETURN(uint64_t nord, r->GetVarint());
  if (nord > 1 << 12) {
    return Status::SerializationError("too many order-by terms");
  }
  for (uint64_t i = 0; i < nord; ++i) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr e, ReadExpr(r));
    frag.order_by.push_back(std::move(e));
    GISQL_ASSIGN_OR_RETURN(bool asc, r->GetBool());
    frag.order_ascending.push_back(asc);
  }
  GISQL_ASSIGN_OR_RETURN(frag.limit, r->GetSignedVarint());
  GISQL_ASSIGN_OR_RETURN(frag.index_column, r->GetSignedVarint());
  if (frag.index_column >= 0) {
    GISQL_ASSIGN_OR_RETURN(frag.range_lo, ReadValue(r));
    GISQL_ASSIGN_OR_RETURN(frag.range_hi, ReadValue(r));
    GISQL_ASSIGN_OR_RETURN(frag.range_lo_inclusive, r->GetBool());
    GISQL_ASSIGN_OR_RETURN(frag.range_hi_inclusive, r->GetBool());
  }
  GISQL_ASSIGN_OR_RETURN(frag.join_table, r->GetString());
  if (!frag.join_table.empty()) {
    GISQL_ASSIGN_OR_RETURN(frag.join_outer_column, r->GetSignedVarint());
    GISQL_ASSIGN_OR_RETURN(frag.join_inner_column, r->GetSignedVarint());
    GISQL_ASSIGN_OR_RETURN(bool has_inner_filter, r->GetBool());
    if (has_inner_filter) {
      GISQL_ASSIGN_OR_RETURN(frag.join_inner_filter, ReadExpr(r));
    }
  }
  GISQL_ASSIGN_OR_RETURN(frag.snapshot_ts, r->GetVarint());
  GISQL_ASSIGN_OR_RETURN(frag.txn_id, r->GetVarint());
  return frag;
}

std::vector<uint8_t> SerializeFragment(const FragmentPlan& frag) {
  ByteWriter w;
  WriteFragment(&w, frag);
  return w.Release();
}

std::vector<uint8_t> SerializeBatch(const RowBatch& batch) {
  ByteWriter w;
  WriteBatch(&w, batch);
  return w.Release();
}

std::vector<uint8_t> SerializeColumnBatch(const ColumnBatch& batch) {
  ByteWriter w;
  WriteColumnBatch(&w, batch);
  return w.Release();
}

}  // namespace wire
}  // namespace gisql
