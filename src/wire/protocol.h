/// \file protocol.h
/// \brief Request/response framing of the mediator↔wrapper protocol.

#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/statistics.h"

namespace gisql {
namespace wire {

/// \brief Request opcodes a component source understands.
enum class Opcode : uint8_t {
  kPing = 1,             ///< liveness probe, empty payload
  kListTables = 2,       ///< → string list
  kGetSchema = 3,        ///< payload: table name → schema
  kGetStats = 4,         ///< payload: table name → serialized stats
  kExecuteFragment = 5,  ///< payload: FragmentPlan → row batch
  kAdminSql = 6,         ///< payload: DDL/DML text → empty (admin channel)
  kTxnPrepare = 7,       ///< payload: txn id + stmt seq + INSERT sql → empty
  kTxnCommit = 8,        ///< payload: txn id → empty (apply staged rows)
  kTxnAbort = 9,         ///< payload: txn id → empty (drop staged rows)
  /// payload: FragmentPlan → format byte (see kBatchFormat*) + batch.
  /// Like kExecuteFragment, but the source answers with a columnar
  /// batch when the fragment's rows fit their declared column types,
  /// and falls back to the row encoding otherwise.
  kExecuteFragmentColumnar = 10,
  /// \name Cursor-based streaming (wire/cursor.h carries the payloads)
  ///
  /// Instead of shipping a fragment's whole result in one response, the
  /// mediator opens a *cursor* at the source and pulls it in bounded
  /// chunks. The trio is retry-safe over the faulty WAN: open is
  /// idempotent by a client-chosen token (a redelivered or retried open
  /// returns the same cursor instead of leaking a second one), fetch is
  /// idempotent within a one-chunk window (the source re-serves the
  /// last chunk when asked for its sequence number again), and close of
  /// an unknown cursor is OK.
  /// @{
  kOpenCursor = 11,   ///< payload: OpenCursorRequest → OpenCursorResponse
  kFetchChunk = 12,   ///< payload: FetchChunkRequest → CursorChunk
  kCloseCursor = 13,  ///< payload: CloseCursorRequest → empty
  /// @}
  /// payload: table name + wire::WriteBatch(rows) → empty. Creates the
  /// table from the batch schema (same index conventions as CREATE
  /// TABLE) and loads every row in one shot — the advisor's replica
  /// copy mechanism, priced as a single bulk transfer on the simulated
  /// WAN instead of a per-row INSERT storm.
  kBulkLoad = 14,
};

/// \name Batch format bytes of kExecuteFragmentColumnar responses
/// @{
constexpr uint8_t kBatchFormatRow = 0;       ///< wire::ReadBatch follows
constexpr uint8_t kBatchFormatColumnar = 1;  ///< wire::ReadColumnBatch follows
/// @}

/// \brief Encodes a response frame: ok flag, then either an error
/// (code + message) or the payload bytes.
std::vector<uint8_t> EncodeResponse(const Status& status,
                                    const std::vector<uint8_t>& payload);

/// \brief Decodes a response frame back into Status-or-payload.
Result<std::vector<uint8_t>> DecodeResponse(const std::vector<uint8_t>& frame);

/// \name Checksummed transport frames
///
/// Every successful RPC response crosses the simulated network inside a
/// frame carrying a CRC-32 of the payload, so in-flight corruption and
/// mid-transfer truncation are *detected* — the decoder returns a typed
/// SerializationError, never garbage rows and never UB. The 8-byte
/// header is [crc32 u32][payload length u32].
/// @{
constexpr size_t kFrameHeaderBytes = 8;

/// \brief Wraps a payload in a checksummed frame.
std::vector<uint8_t> SealFrame(const std::vector<uint8_t>& payload);

/// \brief Validates a frame's length and checksum; returns the payload
/// or a SerializationError naming the defect (truncation / checksum
/// mismatch / length mismatch).
Result<std::vector<uint8_t>> OpenFrame(const std::vector<uint8_t>& frame);
/// @}

/// \name Table statistics serde (catalog refresh path)
/// @{
void WriteTableStats(ByteWriter* w, const TableStats& stats);
Result<TableStats> ReadTableStats(ByteReader* r);
/// @}

}  // namespace wire
}  // namespace gisql
