/// \file protocol.h
/// \brief Request/response framing of the mediator↔wrapper protocol.

#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/statistics.h"

namespace gisql {
namespace wire {

/// \brief Request opcodes a component source understands.
enum class Opcode : uint8_t {
  kPing = 1,             ///< liveness probe, empty payload
  kListTables = 2,       ///< → string list
  kGetSchema = 3,        ///< payload: table name → schema
  kGetStats = 4,         ///< payload: table name → serialized stats
  kExecuteFragment = 5,  ///< payload: FragmentPlan → row batch
  kAdminSql = 6,         ///< payload: DDL/DML text → empty (admin channel)
  kTxnPrepare = 7,       ///< payload: txn id + INSERT sql → empty (staged)
  kTxnCommit = 8,        ///< payload: txn id → empty (apply staged rows)
  kTxnAbort = 9,         ///< payload: txn id → empty (drop staged rows)
};

/// \brief Encodes a response frame: ok flag, then either an error
/// (code + message) or the payload bytes.
std::vector<uint8_t> EncodeResponse(const Status& status,
                                    const std::vector<uint8_t>& payload);

/// \brief Decodes a response frame back into Status-or-payload.
Result<std::vector<uint8_t>> DecodeResponse(const std::vector<uint8_t>& frame);

/// \name Table statistics serde (catalog refresh path)
/// @{
void WriteTableStats(ByteWriter* w, const TableStats& stats);
Result<TableStats> ReadTableStats(ByteReader* r);
/// @}

}  // namespace wire
}  // namespace gisql
