#include "wire/cursor.h"

#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {
namespace wire {

void WriteOpenCursorRequest(ByteWriter* w, const OpenCursorRequest& req) {
  w->PutVarint(req.token);
  w->PutVarint(static_cast<uint64_t>(req.chunk_rows));
  WriteFragment(w, req.fragment);
}

Result<OpenCursorRequest> ReadOpenCursorRequest(ByteReader* r) {
  OpenCursorRequest req;
  GISQL_ASSIGN_OR_RETURN(req.token, r->GetVarint());
  GISQL_ASSIGN_OR_RETURN(uint64_t chunk_rows, r->GetVarint());
  if (chunk_rows == 0 ||
      chunk_rows > static_cast<uint64_t>(kMaxCursorChunkRows)) {
    return Status::SerializationError("cursor chunk_rows ", chunk_rows,
                                      " out of range");
  }
  req.chunk_rows = static_cast<int64_t>(chunk_rows);
  GISQL_ASSIGN_OR_RETURN(req.fragment, ReadFragment(r));
  return req;
}

void WriteFetchChunkRequest(ByteWriter* w, const FetchChunkRequest& req) {
  w->PutVarint(req.cursor_id);
  w->PutVarint(req.seq);
}

Result<FetchChunkRequest> ReadFetchChunkRequest(ByteReader* r) {
  FetchChunkRequest req;
  GISQL_ASSIGN_OR_RETURN(req.cursor_id, r->GetVarint());
  GISQL_ASSIGN_OR_RETURN(req.seq, r->GetVarint());
  return req;
}

void WriteCloseCursorRequest(ByteWriter* w, const CloseCursorRequest& req) {
  w->PutVarint(req.cursor_id);
}

Result<CloseCursorRequest> ReadCloseCursorRequest(ByteReader* r) {
  CloseCursorRequest req;
  GISQL_ASSIGN_OR_RETURN(req.cursor_id, r->GetVarint());
  return req;
}

void WriteOpenCursorResponse(ByteWriter* w, const OpenCursorResponse& resp) {
  w->PutVarint(resp.cursor_id);
}

Result<OpenCursorResponse> ReadOpenCursorResponse(ByteReader* r) {
  OpenCursorResponse resp;
  GISQL_ASSIGN_OR_RETURN(resp.cursor_id, r->GetVarint());
  return resp;
}

void WriteCursorChunk(ByteWriter* w, uint64_t cursor_id, uint64_t seq,
                      bool done, const RowBatch& rows) {
  w->PutVarint(cursor_id);
  w->PutVarint(seq);
  w->PutBool(done);
  Result<ColumnBatch> columnar = ColumnBatch::FromRows(rows);
  if (columnar.ok()) {
    w->PutU8(kBatchFormatColumnar);
    WriteColumnBatch(w, *columnar);
  } else {
    w->PutU8(kBatchFormatRow);
    WriteBatch(w, rows);
  }
}

Result<CursorChunk> ReadCursorChunk(ByteReader* r) {
  CursorChunk chunk;
  GISQL_ASSIGN_OR_RETURN(chunk.cursor_id, r->GetVarint());
  GISQL_ASSIGN_OR_RETURN(chunk.seq, r->GetVarint());
  GISQL_ASSIGN_OR_RETURN(chunk.done, r->GetBool());
  GISQL_ASSIGN_OR_RETURN(uint8_t format, r->GetU8());
  if (format == kBatchFormatColumnar) {
    GISQL_ASSIGN_OR_RETURN(ColumnBatch cols, ReadColumnBatch(r));
    chunk.rows = cols.ToRows();
    chunk.columnar = std::make_shared<const ColumnBatch>(std::move(cols));
  } else if (format == kBatchFormatRow) {
    GISQL_ASSIGN_OR_RETURN(chunk.rows, ReadBatch(r));
  } else {
    return Status::SerializationError("bad cursor chunk format byte ",
                                      int(format));
  }
  return chunk;
}

}  // namespace wire
}  // namespace gisql
