/// \file cursor.h
/// \brief Payloads of the cursor-based streaming opcodes
/// (kOpenCursor / kFetchChunk / kCloseCursor).
///
/// A cursor delivers a fragment's result as a sequence of bounded
/// chunks instead of one monolithic batch, so the mediator's resident
/// footprint per in-flight query is O(chunk), not O(result). The
/// payloads are designed for the faulty WAN the rest of the protocol
/// lives on:
///
///   - OpenCursorRequest carries a client-chosen idempotency `token`.
///     A retried or duplicate-delivered open of the same token returns
///     the *same* cursor id instead of allocating a second cursor.
///   - FetchChunkRequest names the chunk it wants by sequence number.
///     The source serves `seq == next` by advancing and `seq == next-1`
///     by re-sending the previous chunk verbatim, so an at-least-once
///     transport cannot duplicate or skip rows.
///   - CursorChunk answers with the cursor id, the chunk's sequence
///     number, a `done` flag (no chunk follows this one), and the rows
///     in either wire encoding (columnar when they fit their declared
///     column types, rows otherwise — same fallback as
///     kExecuteFragmentColumnar).
///
/// Decoding is fully bounds-checked with the same allocation guards as
/// the batch serde; malformed input yields SerializationError, never UB.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "source/fragment.h"
#include "types/column_batch.h"
#include "types/row.h"

namespace gisql {
namespace wire {

/// \brief Upper bound a source accepts for one chunk's row count; a
/// request past it is clamped, a decoded frame past the batch guards
/// is rejected.
constexpr int64_t kMaxCursorChunkRows = int64_t{1} << 20;

/// \brief kOpenCursor payload: execute `fragment` at the source and
/// stage its result for chunked fetching.
struct OpenCursorRequest {
  /// Client-chosen idempotency token; re-opening an existing token
  /// returns the same cursor id (at-least-once delivery safe).
  uint64_t token = 0;
  /// Rows per chunk the client will fetch (clamped to
  /// [1, kMaxCursorChunkRows] by the source).
  int64_t chunk_rows = 1024;
  FragmentPlan fragment;
};

/// \brief kOpenCursor response.
struct OpenCursorResponse {
  uint64_t cursor_id = 0;
};

/// \brief kFetchChunk payload.
struct FetchChunkRequest {
  uint64_t cursor_id = 0;
  /// Requested chunk sequence number (0-based). Must be the cursor's
  /// next chunk, or the immediately previous one (idempotent retry).
  uint64_t seq = 0;
};

/// \brief kCloseCursor payload. Closing an unknown cursor is OK.
struct CloseCursorRequest {
  uint64_t cursor_id = 0;
};

/// \brief One fetched chunk: identity, position, and the rows.
struct CursorChunk {
  uint64_t cursor_id = 0;
  uint64_t seq = 0;
  /// True when no chunk follows this one (this chunk may be empty).
  bool done = false;
  RowBatch rows;
  /// Set when the chunk crossed the wire columnar (same rows as
  /// `rows`); downstream vectorized kernels can use it directly.
  std::shared_ptr<const ColumnBatch> columnar;
};

/// \name Request serde
/// @{
void WriteOpenCursorRequest(ByteWriter* w, const OpenCursorRequest& req);
Result<OpenCursorRequest> ReadOpenCursorRequest(ByteReader* r);

void WriteFetchChunkRequest(ByteWriter* w, const FetchChunkRequest& req);
Result<FetchChunkRequest> ReadFetchChunkRequest(ByteReader* r);

void WriteCloseCursorRequest(ByteWriter* w, const CloseCursorRequest& req);
Result<CloseCursorRequest> ReadCloseCursorRequest(ByteReader* r);
/// @}

/// \name Response serde
/// @{
void WriteOpenCursorResponse(ByteWriter* w, const OpenCursorResponse& resp);
Result<OpenCursorResponse> ReadOpenCursorResponse(ByteReader* r);

/// \brief Encodes a chunk, preferring the columnar batch encoding and
/// falling back to rows when the values do not fit their declared
/// column types (the kExecuteFragmentColumnar convention).
void WriteCursorChunk(ByteWriter* w, uint64_t cursor_id, uint64_t seq,
                      bool done, const RowBatch& rows);

/// \brief Decodes a chunk; `columnar` is populated when the wire
/// carried the columnar encoding.
Result<CursorChunk> ReadCursorChunk(ByteReader* r);
/// @}

}  // namespace wire
}  // namespace gisql
