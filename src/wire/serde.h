/// \file serde.h
/// \brief Wire serialization of the mediator↔wrapper protocol payloads:
/// values, schemas, row batches, bound expressions, aggregate specs, and
/// fragment plans.
///
/// Everything is encoded little-endian with varint lengths (see
/// common/bytes.h). Deserialization is fully bounds-checked; malformed
/// input yields SerializationError, never UB.

#pragma once

#include "common/bytes.h"
#include "expr/binder.h"
#include "expr/expr.h"
#include "source/fragment.h"
#include "types/column_batch.h"
#include "types/row.h"
#include "types/schema.h"
#include "types/value.h"

namespace gisql {
namespace wire {

/// \name Scalar values
/// @{
void WriteValue(ByteWriter* w, const Value& v);
Result<Value> ReadValue(ByteReader* r);
/// @}

/// \name Schemas
/// @{
void WriteSchema(ByteWriter* w, const Schema& schema);
Result<Schema> ReadSchema(ByteReader* r);
/// @}

/// \name Row batches (schema + rows)
/// @{
void WriteBatch(ByteWriter* w, const RowBatch& batch);
Result<RowBatch> ReadBatch(ByteReader* r);
/// @}

/// \name Column batches (schema + per-column bulk arrays)
///
/// The columnar encoding eliminates the per-value tag byte and varint
/// of the row format: fixed-width columns cross the wire as one raw
/// little-endian array each, strings as an offsets array plus one
/// arena. Null bitmaps travel only for columns that have nulls.
/// Decoding is fully bounds-checked (offsets must be monotone and end
/// exactly at the arena length); malformed input yields
/// SerializationError, never UB — the same contract as the row serde.
/// @{
void WriteColumnBatch(ByteWriter* w, const ColumnBatch& batch);
Result<ColumnBatch> ReadColumnBatch(ByteReader* r);
/// @}

/// \name Bound expressions
/// @{
void WriteExpr(ByteWriter* w, const Expr& e);
Result<ExprPtr> ReadExpr(ByteReader* r);
/// @}

/// \name Aggregate specs
/// @{
void WriteAggregate(ByteWriter* w, const BoundAggregate& agg);
Result<BoundAggregate> ReadAggregate(ByteReader* r);
/// @}

/// \name Fragment plans
/// @{
void WriteFragment(ByteWriter* w, const FragmentPlan& frag);
Result<FragmentPlan> ReadFragment(ByteReader* r);
/// @}

/// \brief Convenience: serializes a fragment to a fresh buffer.
std::vector<uint8_t> SerializeFragment(const FragmentPlan& frag);

/// \brief Convenience: serializes a batch to a fresh buffer.
std::vector<uint8_t> SerializeBatch(const RowBatch& batch);

/// \brief Convenience: serializes a column batch to a fresh buffer.
std::vector<uint8_t> SerializeColumnBatch(const ColumnBatch& batch);

}  // namespace wire
}  // namespace gisql
