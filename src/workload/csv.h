/// \file csv.h
/// \brief CSV bulk loading into component-source tables — the practical
/// ingestion path for populating autonomous systems from flat files.

#pragma once

#include <istream>
#include <string>

#include "common/result.h"
#include "source/component_source.h"

namespace gisql {

/// \brief CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;      ///< skip the first line
  std::string null_token = ""; ///< unquoted cell equal to this → NULL
};

/// \brief Splits one CSV record honouring double-quote quoting with ""
/// escapes. Exposed for tests.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delimiter);

/// \brief Loads CSV rows from `in` into `table_name` at `source`,
/// coercing each cell to the column's declared type (empty/`null_token`
/// cells become NULL). Returns the number of rows loaded.
///
/// Errors carry the 1-based line number of the offending record.
Result<int64_t> LoadCsv(ComponentSource* source,
                        const std::string& table_name, std::istream& in,
                        const CsvOptions& options = CsvOptions());

/// \brief Convenience: loads from a file path.
Result<int64_t> LoadCsvFile(ComponentSource* source,
                            const std::string& table_name,
                            const std::string& path,
                            const CsvOptions& options = CsvOptions());

}  // namespace gisql
