#include "workload/csv.h"

#include <fstream>
#include <sstream>

#include "types/datetime.h"

namespace gisql {

Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          i += 2;
          continue;
        }
        quoted = false;
        ++i;
        continue;
      }
      cell += c;
      ++i;
      continue;
    }
    if (c == '"') {
      if (!cell.empty()) {
        return Status::ParseError("unexpected quote inside unquoted cell");
      }
      quoted = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      cells.push_back(std::move(cell));
      cell.clear();
      ++i;
      continue;
    }
    cell += c;
    ++i;
  }
  if (quoted) {
    return Status::ParseError("unterminated quoted cell");
  }
  cells.push_back(std::move(cell));
  return cells;
}

namespace {

Result<Value> CoerceCell(const std::string& cell, TypeId type,
                         const CsvOptions& options) {
  if (cell == options.null_token) return Value::Null(type);
  switch (type) {
    case TypeId::kString:
      return Value::String(cell);
    case TypeId::kInt64:
      return Value::String(cell).CastTo(TypeId::kInt64);
    case TypeId::kDouble:
      return Value::String(cell).CastTo(TypeId::kDouble);
    case TypeId::kBool:
      if (cell == "true" || cell == "1" || cell == "t") {
        return Value::Bool(true);
      }
      if (cell == "false" || cell == "0" || cell == "f") {
        return Value::Bool(false);
      }
      return Status::InvalidArgument("cannot parse '", cell,
                                     "' as BOOLEAN");
    case TypeId::kDate: {
      GISQL_ASSIGN_OR_RETURN(int64_t days, ParseDateString(cell));
      return Value::Date(days);
    }
    case TypeId::kNull:
      return Value::Null();
  }
  return Status::Internal("unreachable type in CSV coercion");
}

}  // namespace

Result<int64_t> LoadCsv(ComponentSource* source,
                        const std::string& table_name, std::istream& in,
                        const CsvOptions& options) {
  GISQL_ASSIGN_OR_RETURN(TablePtr table,
                         source->engine().GetTable(table_name));
  const Schema& schema = *table->schema();

  std::string line;
  int64_t line_no = 0;
  int64_t loaded = 0;
  std::vector<Row> rows;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_no == 1 && options.has_header) continue;
    if (line.empty()) continue;

    Result<std::vector<std::string>> cells =
        SplitCsvLine(line, options.delimiter);
    if (!cells.ok()) {
      return Status::ParseError("line ", line_no, ": ",
                                cells.status().message());
    }
    if (cells->size() != schema.num_fields()) {
      return Status::InvalidArgument(
          "line ", line_no, ": ", cells->size(), " cells, table '",
          table_name, "' has ", schema.num_fields(), " columns");
    }
    Row row;
    row.reserve(cells->size());
    for (size_t c = 0; c < cells->size(); ++c) {
      Result<Value> v =
          CoerceCell((*cells)[c], schema.field(c).type, options);
      if (!v.ok()) {
        return Status::InvalidArgument("line ", line_no, ", column '",
                                       schema.field(c).name, "': ",
                                       v.status().message());
      }
      row.push_back(std::move(*v));
    }
    rows.push_back(std::move(row));
    ++loaded;
  }
  // Validate NULLability etc. through the normal insert path.
  for (auto& row : rows) {
    GISQL_RETURN_NOT_OK(table->Insert(std::move(row)));
  }
  return loaded;
}

Result<int64_t> LoadCsvFile(ComponentSource* source,
                            const std::string& table_name,
                            const std::string& path,
                            const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open CSV file '", path, "'");
  }
  return LoadCsv(source, table_name, in, options);
}

}  // namespace gisql
