/// \file scenario.h
/// \brief Million-user scenario engine: seeded multi-tenant open-loop
/// traffic against a GlobalSystem, with Zipf-skewed tenant popularity,
/// diurnal load cycles, and flash crowds.
///
/// The generator models a planetary-scale user base the way the paper's
/// global information system would see one: a huge tenant population
/// whose individual activity is negligible but whose aggregate forms a
/// time-varying open-loop arrival process. Arrivals are drawn from a
/// non-homogeneous Poisson process by deterministic thinning — the
/// instantaneous rate is the base rate modulated by a diurnal sinusoid
/// and any active flash crowds — so identical specs replay identical
/// traffic down to the per-query admission decision.
///
/// Each arrival picks a tenant (Zipf over `num_tenants` — a handful of
/// hot tenants dominate), a query template (Zipf — cheap interactive
/// lookups dominate), and a priority class, then submits through
/// GlobalSystem::Submit (materialized) or OpenCursor/FetchChunk
/// (streamed, for streamable templates) with an explicit simulated
/// arrival time. The report grades the run against a latency SLO:
/// shed queries count as misses, so attainment reflects what the
/// offered population experienced, not just the survivors.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/global_system.h"

namespace gisql {

/// \brief A step surge in offered load: rate × `multiplier` while
/// [start_ms, start_ms + duration_ms) is active.
struct FlashCrowd {
  double start_ms = 0.0;
  double duration_ms = 0.0;
  double multiplier = 1.0;
};

/// \brief One scenario: who arrives, how often, and what they ask.
/// The federation itself (BuildRetailFederation) is the caller's; the
/// spec's `num_customers`/`num_products` must match it so templates
/// hit real keys.
struct ScenarioSpec {
  uint64_t seed = 2026;
  double duration_ms = 10000.0;
  /// Mean arrival rate in queries per simulated second, before diurnal
  /// and flash-crowd modulation.
  double base_qps = 50.0;

  /// Tenant population; per-arrival tenants are Zipf(theta) ranks into
  /// it. A million tenants cost nothing — only the sampled ranks ever
  /// materialize.
  int64_t num_tenants = 1000000;
  double tenant_zipf_theta = 0.99;
  /// Skew across query templates (template 0 is the hottest).
  double template_zipf_theta = 0.5;

  /// Diurnal cycle: rate × (1 + amplitude·sin(2π·t/period)).
  double diurnal_amplitude = 0.0;
  double diurnal_period_ms = 8000.0;
  std::vector<FlashCrowd> flash_crowds;

  /// Latency SLO a completed query must beat; sheds always miss.
  double slo_ms = 50.0;
  /// Priority mix (remainder is normal priority 1).
  double interactive_fraction = 0.2;
  double background_fraction = 0.2;

  /// Streamed mode: streamable templates run through cursors with this
  /// chunk size; blocking templates always materialize via Submit.
  bool use_cursors = false;
  int64_t chunk_rows = 256;

  /// Key domains of the federation the templates parameterize over.
  int num_customers = 300;
  int num_products = 80;

  /// Mid-run workload shift: from `template_shift_ms` on, a drawn
  /// template rank 0 becomes `template_shift_rank` and vice versa — the
  /// coldest template turns hottest without perturbing the RNG draw
  /// sequence. Negative = no shift. Exercises adaptive policies
  /// (advisor materialization must chase the new hot template).
  double template_shift_ms = -1.0;
  int template_shift_rank = 4;

  /// When >= 0, the report also carries percentiles restricted to
  /// arrivals at or after this time — the "converged tail" a policy
  /// had time to adapt to.
  double report_tail_from_ms = -1.0;
};

/// \brief What the offered population experienced.
struct ScenarioReport {
  int64_t offered = 0;
  int64_t completed = 0;
  int64_t shed_queue = 0;
  int64_t shed_deadline = 0;
  int64_t shed_memory = 0;
  int64_t shed_cursor = 0;  ///< open-cursor cap refusals
  int64_t failed = 0;       ///< non-shed errors (should stay 0)

  /// Sojourn percentiles of completed queries (queue wait + simulated
  /// execution; for streamed queries, the whole open-to-drain span).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;

  int64_t slo_hits = 0;
  /// slo_hits / offered — a shed query is a miss by definition.
  double slo_attainment = 0.0;

  int64_t mem_peak_bytes = 0;
  int64_t streamed_queries = 0;
  int64_t total_chunks = 0;
  int64_t total_rows = 0;

  /// Completed-query percentiles over arrivals at or after
  /// `report_tail_from_ms` (zeros when the window is unset or empty).
  int64_t tail_completed = 0;
  double tail_p50_ms = 0.0;
  double tail_p95_ms = 0.0;

  /// One char per arrival — A admitted, Q/D/M shed (queue / deadline /
  /// memory), C cursor-cap shed, F failed. Byte-identical across
  /// same-seed runs; the determinism assertions compare it.
  std::string decisions;
};

/// \brief Instantaneous offered rate λ(t) in queries per simulated
/// millisecond (base × diurnal × flash). Exposed for tests.
double ScenarioOfferedRate(const ScenarioSpec& spec, double t_ms);

/// \brief Number of query templates the engine cycles over (ranks for
/// template_zipf_theta).
int ScenarioTemplateCount();

/// \brief Runs the scenario against a built federation. Fails only on
/// malformed specs or non-shed query errors; overload is a result, not
/// an error.
Result<ScenarioReport> RunScenario(GlobalSystem* gis,
                                   const ScenarioSpec& spec);

}  // namespace gisql
