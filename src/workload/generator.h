/// \file generator.h
/// \brief Seeded synthetic workload: a retail federation of autonomous
/// sources, used by the benches and examples.
///
/// Topology built inside a GlobalSystem:
///   - source "hq"      (RELATIONAL): customers(cid, name, region, segment)
///   - source "catalog" (RELATIONAL): products(pid, pname, price, category)
///   - sources "site0".."siteN-1" (configurable dialects):
///       sales(sid, cid, pid, qty, amount, day) — horizontally
///       partitioned by site
///   - union view "sales" over every site shard
///
/// All data derives from the spec's seed; identical specs build
/// byte-identical worlds (the experiments depend on this).

#pragma once

#include <cstdint>
#include <vector>

#include "core/global_system.h"

namespace gisql {

/// \brief Parameters of the synthetic retail federation.
struct WorkloadSpec {
  uint64_t seed = 42;
  int num_sites = 4;
  int num_customers = 1000;
  int num_products = 200;
  int orders_per_site = 5000;
  int num_regions = 8;
  double zipf_theta = 0.0;  ///< product-popularity skew (0 = uniform)
  /// Dialect per site; cycled if shorter than num_sites. Empty =
  /// all RELATIONAL.
  std::vector<SourceDialect> site_dialects;
};

/// \brief Builds the federation into `gis` (sources, data, imports, and
/// the "sales" union view).
Status BuildRetailFederation(GlobalSystem* gis, const WorkloadSpec& spec);

}  // namespace gisql
