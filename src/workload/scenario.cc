#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace gisql {

namespace {

/// One parameterized query shape. `streamable` marks the templates the
/// streamed mode routes through cursors (filter/project pipelines the
/// planner keeps free of blocking operators).
struct QueryTemplate {
  const char* name;
  bool streamable;
  std::string (*sql)(const ScenarioSpec&, int64_t tenant, Rng&);
};

/// Hot tenants map onto hot customers: the tenant's Zipf rank is taken
/// modulo the customer domain, so tenant skew becomes data skew.
int64_t TenantCid(const ScenarioSpec& spec, int64_t tenant) {
  return tenant % spec.num_customers;
}

const QueryTemplate kTemplates[] = {
    // 0 (hottest): a tenant pulls their order lines — streamable
    // filter over the sales union view.
    {"tenant-orders", true,
     [](const ScenarioSpec& spec, int64_t tenant, Rng&) {
       return "SELECT sid, pid, amount FROM sales WHERE cid = " +
              std::to_string(TenantCid(spec, tenant));
     }},
    // 1: product point lookup — streamable single-fragment fetch.
    {"product-lookup", true,
     [](const ScenarioSpec& spec, int64_t, Rng& rng) {
       return "SELECT pname, price FROM products WHERE pid = " +
              std::to_string(rng.Uniform(0, spec.num_products - 1));
     }},
    // 2: a tenant's account rollup — blocking aggregate.
    {"tenant-rollup", false,
     [](const ScenarioSpec& spec, int64_t tenant, Rng&) {
       return "SELECT COUNT(*), SUM(amount) FROM sales WHERE cid = " +
              std::to_string(TenantCid(spec, tenant));
     }},
    // 3: big-ticket scan — streamable filter, wider result.
    {"big-tickets", true,
     [](const ScenarioSpec&, int64_t, Rng& rng) {
       return "SELECT sid, cid, amount FROM sales WHERE amount > " +
              std::to_string(400 + 10 * rng.Uniform(0, 19));
     }},
    // 4 (coldest): per-day product report — blocking group-by + sort.
    {"product-report", false,
     [](const ScenarioSpec& spec, int64_t, Rng& rng) {
       return "SELECT day, SUM(qty) FROM sales WHERE pid = " +
              std::to_string(rng.Uniform(0, spec.num_products - 1)) +
              " GROUP BY day ORDER BY day";
     }},
};
constexpr int kNumTemplates =
    static_cast<int>(sizeof(kTemplates) / sizeof(kTemplates[0]));

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

/// Classifies a refusal by the governor's message; anything the
/// classifier does not recognize is a real failure.
char DecisionOf(const Status& st) {
  if (!st.IsOverloaded()) return 'F';
  const std::string& m = st.message();
  if (m.find("deadline") != std::string::npos) return 'D';
  if (m.find("queue") != std::string::npos) return 'Q';
  if (m.find("cursor") != std::string::npos) return 'C';
  if (m.find("memory") != std::string::npos) return 'M';
  return 'F';
}

}  // namespace

double ScenarioOfferedRate(const ScenarioSpec& spec, double t_ms) {
  double rate = spec.base_qps / 1000.0;
  if (spec.diurnal_amplitude > 0.0 && spec.diurnal_period_ms > 0.0) {
    rate *= 1.0 + spec.diurnal_amplitude *
                      std::sin(2.0 * M_PI * t_ms / spec.diurnal_period_ms);
  }
  for (const FlashCrowd& fc : spec.flash_crowds) {
    if (t_ms >= fc.start_ms && t_ms < fc.start_ms + fc.duration_ms) {
      rate *= fc.multiplier;
    }
  }
  return std::max(rate, 0.0);
}

int ScenarioTemplateCount() { return kNumTemplates; }

Result<ScenarioReport> RunScenario(GlobalSystem* gis,
                                   const ScenarioSpec& spec) {
  if (spec.base_qps <= 0.0 || spec.duration_ms <= 0.0) {
    return Status::InvalidArgument(
        "a scenario needs positive base_qps and duration_ms");
  }
  if (spec.num_tenants <= 0 || spec.num_customers <= 0 ||
      spec.num_products <= 0) {
    return Status::InvalidArgument(
        "a scenario needs positive tenant/customer/product domains");
  }

  // Thinning bound: the rate can never exceed base × the diurnal crest
  // × the largest flash multiplier (crowds are steps, so the product
  // of overlapping crowds bounds via their product).
  double flash_max = 1.0;
  {
    double overlap = 1.0;
    for (const FlashCrowd& fc : spec.flash_crowds) {
      if (fc.multiplier > 1.0) overlap *= fc.multiplier;
    }
    flash_max = std::max(flash_max, overlap);
  }
  const double lambda_max =
      (spec.base_qps / 1000.0) * (1.0 + spec.diurnal_amplitude) * flash_max;

  Rng rng(spec.seed);
  ScenarioReport report;
  std::vector<double> sojourns;
  std::vector<double> tail_sojourns;

  double t = 0.0;
  while (true) {
    // Homogeneous arrivals at lambda_max, thinned down to λ(t): the
    // textbook non-homogeneous Poisson construction, fully determined
    // by the seed.
    const double u = rng.NextDouble();
    t += -std::log(1.0 - u) / lambda_max;
    if (t >= spec.duration_ms) break;
    if (rng.NextDouble() >= ScenarioOfferedRate(spec, t) / lambda_max) {
      continue;  // thinned: no arrival at this instant
    }

    const int64_t tenant =
        rng.Zipf(spec.num_tenants, spec.tenant_zipf_theta) - 1;
    int tmpl_rank = static_cast<int>(
        rng.Zipf(kNumTemplates, spec.template_zipf_theta) - 1);
    // Mid-run shift: swap the hottest and the shift rank after the
    // boundary. A post-draw relabeling, so the RNG sequence — and with
    // it every other arrival property — is unchanged by the shift.
    if (spec.template_shift_ms >= 0.0 && t >= spec.template_shift_ms &&
        spec.template_shift_rank > 0 &&
        spec.template_shift_rank < kNumTemplates) {
      if (tmpl_rank == 0) {
        tmpl_rank = spec.template_shift_rank;
      } else if (tmpl_rank == spec.template_shift_rank) {
        tmpl_rank = 0;
      }
    }
    const QueryTemplate& tmpl = kTemplates[tmpl_rank];
    const std::string sql = tmpl.sql(spec, tenant, rng);

    GlobalSystem::SubmitOptions submit;
    submit.arrival_ms = t;
    // The Zipf rank becomes the accountable principal, so gis.tenants
    // reproduces the workload's skew directly.
    submit.tenant = "t" + std::to_string(tenant);
    const double pri = rng.NextDouble();
    submit.priority = pri < spec.interactive_fraction          ? 2
                      : pri < spec.interactive_fraction +
                                  spec.background_fraction     ? 0
                                                               : 1;
    ++report.offered;

    double sojourn = 0.0;
    bool ok = false;
    Status error;
    if (spec.use_cursors && tmpl.streamable) {
      GlobalSystem::CursorOptions copts;
      copts.submit = submit;
      copts.chunk_rows = spec.chunk_rows;
      auto id = gis->OpenCursor(sql, copts);
      if (id.ok()) {
        ++report.streamed_queries;
        ok = true;
        while (true) {
          auto chunk = gis->FetchChunk(*id);
          if (!chunk.ok()) {
            ok = false;
            error = chunk.status();
            break;
          }
          ++report.total_chunks;
          report.total_rows += static_cast<int64_t>(chunk->batch.num_rows());
          sojourn += chunk->metrics.elapsed_ms;
          if (chunk->done) break;
        }
      } else {
        error = id.status();
      }
    } else {
      auto r = gis->Submit(sql, submit);
      if (r.ok()) {
        ok = true;
        sojourn = r->metrics.admission_wait_ms + r->metrics.elapsed_ms;
        report.total_rows += static_cast<int64_t>(r->batch.num_rows());
      } else {
        error = r.status();
      }
    }

    if (ok) {
      ++report.completed;
      report.decisions += 'A';
      sojourns.push_back(sojourn);
      if (spec.report_tail_from_ms >= 0.0 && t >= spec.report_tail_from_ms) {
        tail_sojourns.push_back(sojourn);
      }
      if (sojourn <= spec.slo_ms) ++report.slo_hits;
      continue;
    }
    const char d = DecisionOf(error);
    report.decisions += d;
    switch (d) {
      case 'Q':
        ++report.shed_queue;
        break;
      case 'D':
        ++report.shed_deadline;
        break;
      case 'M':
        ++report.shed_memory;
        break;
      case 'C':
        ++report.shed_cursor;
        break;
      default:
        ++report.failed;
        // Overload is a scenario outcome; anything else is a broken
        // scenario and the caller should see it immediately.
        return Status(error.code(), "scenario query failed: " +
                                        error.message() + " (sql: " + sql +
                                        ")");
    }
  }

  std::sort(sojourns.begin(), sojourns.end());
  report.p50_ms = Percentile(sojourns, 0.50);
  report.p95_ms = Percentile(sojourns, 0.95);
  report.p99_ms = Percentile(sojourns, 0.99);
  report.p999_ms = Percentile(sojourns, 0.999);
  report.slo_attainment =
      report.offered > 0
          ? static_cast<double>(report.slo_hits) / report.offered
          : 0.0;
  std::sort(tail_sojourns.begin(), tail_sojourns.end());
  report.tail_completed = static_cast<int64_t>(tail_sojourns.size());
  report.tail_p50_ms = Percentile(tail_sojourns, 0.50);
  report.tail_p95_ms = Percentile(tail_sojourns, 0.95);
  report.mem_peak_bytes = gis->governor().memory().peak();
  return report;
}

}  // namespace gisql
