#include "workload/generator.h"

#include "common/rng.h"

namespace gisql {

Status BuildRetailFederation(GlobalSystem* gis, const WorkloadSpec& spec) {
  Rng rng(spec.seed);

  // hq: customers.
  GISQL_ASSIGN_OR_RETURN(
      ComponentSource * hq,
      gis->CreateSource("hq", SourceDialect::kRelational));
  GISQL_RETURN_NOT_OK(hq->ExecuteLocalSql(
      "CREATE TABLE customers (cid bigint, name varchar, region varchar, "
      "segment varchar)"));
  {
    GISQL_ASSIGN_OR_RETURN(TablePtr t, hq->engine().GetTable("customers"));
    std::vector<Row> rows;
    rows.reserve(spec.num_customers);
    for (int i = 0; i < spec.num_customers; ++i) {
      rows.push_back(
          {Value::Int(i), Value::String("cust_" + rng.NextString(8)),
           Value::String("region" +
                         std::to_string(rng.Uniform(0, spec.num_regions - 1))),
           Value::String("seg" + std::to_string(rng.Uniform(0, 4)))});
    }
    GISQL_RETURN_NOT_OK(t->InsertUnchecked(std::move(rows)));
  }
  GISQL_RETURN_NOT_OK(gis->ImportSource("hq"));

  // catalog: products.
  GISQL_ASSIGN_OR_RETURN(
      ComponentSource * cat,
      gis->CreateSource("catalog", SourceDialect::kRelational));
  GISQL_RETURN_NOT_OK(cat->ExecuteLocalSql(
      "CREATE TABLE products (pid bigint, pname varchar, price double, "
      "category varchar)"));
  {
    GISQL_ASSIGN_OR_RETURN(TablePtr t, cat->engine().GetTable("products"));
    std::vector<Row> rows;
    rows.reserve(spec.num_products);
    for (int i = 0; i < spec.num_products; ++i) {
      rows.push_back(
          {Value::Int(i), Value::String("prod_" + rng.NextString(6)),
           Value::Double(1.0 + static_cast<double>(rng.Uniform(100, 99999)) /
                                   100.0),
           Value::String("cat" + std::to_string(rng.Uniform(0, 9)))});
    }
    GISQL_RETURN_NOT_OK(t->InsertUnchecked(std::move(rows)));
  }
  GISQL_RETURN_NOT_OK(gis->ImportSource("catalog"));

  // Sites: sales shards.
  std::vector<std::string> members;
  int64_t next_sid = 0;
  for (int s = 0; s < spec.num_sites; ++s) {
    const SourceDialect dialect =
        spec.site_dialects.empty()
            ? SourceDialect::kRelational
            : spec.site_dialects[s % spec.site_dialects.size()];
    const std::string name = "site" + std::to_string(s);
    GISQL_ASSIGN_OR_RETURN(ComponentSource * site,
                           gis->CreateSource(name, dialect));
    GISQL_RETURN_NOT_OK(site->ExecuteLocalSql(
        "CREATE TABLE sales (sid bigint, cid bigint, pid bigint, "
        "qty bigint, amount double, day bigint)"));
    GISQL_ASSIGN_OR_RETURN(TablePtr t, site->engine().GetTable("sales"));
    std::vector<Row> rows;
    rows.reserve(spec.orders_per_site);
    for (int i = 0; i < spec.orders_per_site; ++i) {
      const int64_t pid =
          spec.zipf_theta > 0.0
              ? rng.Zipf(spec.num_products, spec.zipf_theta) - 1
              : rng.Uniform(0, spec.num_products - 1);
      const int64_t qty = rng.Uniform(1, 10);
      rows.push_back(
          {Value::Int(next_sid++),
           Value::Int(rng.Uniform(0, spec.num_customers - 1)),
           Value::Int(pid), Value::Int(qty),
           Value::Double(static_cast<double>(qty) *
                         (1.0 + static_cast<double>(rng.Uniform(0, 9999)) /
                                    100.0)),
           Value::Int(rng.Uniform(19000, 19365))});
    }
    GISQL_RETURN_NOT_OK(t->InsertUnchecked(std::move(rows)));
    const std::string global = "sales_" + name;
    GISQL_RETURN_NOT_OK(gis->ImportTable(name, "sales", global));
    members.push_back(global);
  }
  return gis->CreateUnionView("sales", members);
}

}  // namespace gisql
