/// \file binder.h
/// \brief Resolves parser ASTs into typed, bound expressions against an
/// input schema; extracts aggregate calls for GROUP BY planning.

#pragma once

#include <string>
#include <vector>

#include "expr/expr.h"
#include "sql/ast.h"
#include "types/schema.h"

namespace gisql {

/// \brief Supported aggregate functions.
enum class AggKind : uint8_t {
  kCountStar,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
};

const char* AggKindName(AggKind k);

/// \brief One bound aggregate call: kind, bound argument (over the
/// aggregation input schema; null for COUNT(*)), DISTINCT flag, and the
/// result type.
struct BoundAggregate {
  AggKind kind = AggKind::kCountStar;
  ExprPtr arg;  ///< null for COUNT(*)
  bool distinct = false;
  TypeId result_type = TypeId::kInt64;
  std::string display;  ///< e.g. "SUM(price)" — used for output naming

  bool Equals(const BoundAggregate& o) const {
    if (kind != o.kind || distinct != o.distinct) return false;
    if ((arg == nullptr) != (o.arg == nullptr)) return false;
    return arg == nullptr || arg->Equals(*o.arg);
  }
};

/// \brief Name-resolution + typing pass from sql::ParseExpr to Expr.
class Binder {
 public:
  explicit Binder(const Schema& input) : input_(input) {}

  /// \brief Binds a scalar expression; any aggregate call is a BindError.
  Result<ExprPtr> BindScalar(const sql::ParseExpr& ast);

  /// \brief Binds a post-aggregation expression (select item / HAVING).
  ///
  /// The produced expression is evaluated against rows of the shape
  /// [group_exprs..., aggregates...]. Subtrees structurally equal to a
  /// group expression become column refs 0..k-1; aggregate calls are
  /// appended (deduplicated) to `aggs` and become column refs k+i.
  /// Any other bare column reference is a BindError ("not in GROUP BY").
  Result<ExprPtr> BindProjection(const sql::ParseExpr& ast,
                                 const std::vector<ExprPtr>& group_exprs,
                                 std::vector<BoundAggregate>* aggs);

  /// \brief True if `upper_name` is one of COUNT/SUM/AVG/MIN/MAX.
  static bool IsAggregateFunc(const std::string& upper_name);

  /// \brief True if the AST contains any aggregate call.
  static bool ContainsAggregate(const sql::ParseExpr& ast);

 private:
  Result<ExprPtr> BindInternal(const sql::ParseExpr& ast, bool in_projection,
                               const std::vector<ExprPtr>& group_exprs,
                               std::vector<BoundAggregate>* aggs);
  Result<ExprPtr> BindAggregateCall(const sql::ParseExpr& ast,
                                    const std::vector<ExprPtr>& group_exprs,
                                    std::vector<BoundAggregate>* aggs);
  /// Inserts implicit casts so both sides share a comparable type.
  Status UnifyComparison(ExprPtr* l, ExprPtr* r);

  const Schema& input_;
};

}  // namespace gisql
