#include "expr/binder.h"

#include "common/string_util.h"
#include "expr/eval.h"

namespace gisql {

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kCountStar: return "COUNT(*)";
    case AggKind::kCount: return "COUNT";
    case AggKind::kSum: return "SUM";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
    case AggKind::kAvg: return "AVG";
  }
  return "?";
}

bool Binder::IsAggregateFunc(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX";
}

bool Binder::ContainsAggregate(const sql::ParseExpr& ast) {
  if (ast.kind == sql::ParseExprKind::kFuncCall &&
      IsAggregateFunc(ast.name)) {
    return true;
  }
  for (const auto& c : ast.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

Result<ExprPtr> Binder::BindScalar(const sql::ParseExpr& ast) {
  static const std::vector<ExprPtr> kNoGroups;
  return BindInternal(ast, /*in_projection=*/false, kNoGroups, nullptr);
}

Result<ExprPtr> Binder::BindProjection(
    const sql::ParseExpr& ast, const std::vector<ExprPtr>& group_exprs,
    std::vector<BoundAggregate>* aggs) {
  return BindInternal(ast, /*in_projection=*/true, group_exprs, aggs);
}

Status Binder::UnifyComparison(ExprPtr* l, ExprPtr* r) {
  const TypeId lt = (*l)->type;
  const TypeId rt = (*r)->type;
  GISQL_ASSIGN_OR_RETURN(TypeId common, CommonType(lt, rt));
  if (lt != common && lt != TypeId::kNull) *l = MakeCast(std::move(*l), common);
  if (rt != common && rt != TypeId::kNull) *r = MakeCast(std::move(*r), common);
  return Status::OK();
}

Result<ExprPtr> Binder::BindAggregateCall(
    const sql::ParseExpr& ast, const std::vector<ExprPtr>& group_exprs,
    std::vector<BoundAggregate>* aggs) {
  if (aggs == nullptr) {
    return Status::BindError("aggregate function ", ast.name,
                             " is not allowed in this context");
  }
  BoundAggregate agg;
  agg.distinct = ast.distinct;
  const bool star = ast.children.size() == 1 &&
                    ast.children[0]->kind == sql::ParseExprKind::kStar;
  if (ast.name == "COUNT" && star) {
    agg.kind = AggKind::kCountStar;
    agg.result_type = TypeId::kInt64;
    agg.display = "COUNT(*)";
  } else {
    if (ast.children.size() != 1) {
      return Status::BindError(ast.name, " takes exactly one argument");
    }
    // Aggregate arguments bind against the aggregation *input* schema —
    // no aggregates allowed inside, no group-expr substitution.
    GISQL_ASSIGN_OR_RETURN(
        agg.arg, BindInternal(*ast.children[0], false, {}, nullptr));
    if (ast.name == "COUNT") {
      agg.kind = AggKind::kCount;
      agg.result_type = TypeId::kInt64;
    } else if (ast.name == "SUM") {
      agg.kind = AggKind::kSum;
      if (!IsNumeric(agg.arg->type) && agg.arg->type != TypeId::kNull) {
        return Status::BindError("SUM requires a numeric argument, got ",
                                 TypeName(agg.arg->type));
      }
      agg.result_type = agg.arg->type == TypeId::kDouble ? TypeId::kDouble
                                                         : TypeId::kInt64;
    } else if (ast.name == "AVG") {
      agg.kind = AggKind::kAvg;
      if (!IsNumeric(agg.arg->type) && agg.arg->type != TypeId::kNull) {
        return Status::BindError("AVG requires a numeric argument, got ",
                                 TypeName(agg.arg->type));
      }
      agg.result_type = TypeId::kDouble;
    } else if (ast.name == "MIN") {
      agg.kind = AggKind::kMin;
      agg.result_type = agg.arg->type;
    } else if (ast.name == "MAX") {
      agg.kind = AggKind::kMax;
      agg.result_type = agg.arg->type;
    } else {
      return Status::BindError("unknown aggregate ", ast.name);
    }
    agg.display = std::string(ast.name) + "(" +
                  (ast.distinct ? "DISTINCT " : "") + agg.arg->ToString() +
                  ")";
  }
  // Deduplicate identical aggregate calls.
  size_t index = aggs->size();
  for (size_t i = 0; i < aggs->size(); ++i) {
    if ((*aggs)[i].Equals(agg)) {
      index = i;
      break;
    }
  }
  if (index == aggs->size()) aggs->push_back(agg);
  return MakeColumn(group_exprs.size() + index, agg.result_type, agg.display);
}

Result<ExprPtr> Binder::BindInternal(const sql::ParseExpr& ast,
                                     bool in_projection,
                                     const std::vector<ExprPtr>& group_exprs,
                                     std::vector<BoundAggregate>* aggs) {
  // In projection mode, a subtree structurally equal to a GROUP BY
  // expression becomes a reference to that group column.
  if (in_projection && !group_exprs.empty()) {
    // Bind the subtree speculatively against the input schema to compare.
    static const std::vector<ExprPtr> kNoGroups;
    if (!ContainsAggregate(ast)) {
      Result<ExprPtr> speculative =
          BindInternal(ast, false, kNoGroups, nullptr);
      if (speculative.ok()) {
        for (size_t i = 0; i < group_exprs.size(); ++i) {
          if (group_exprs[i]->Equals(**speculative)) {
            return MakeColumn(i, group_exprs[i]->type,
                              group_exprs[i]->ToString());
          }
        }
      }
    }
  }

  switch (ast.kind) {
    case sql::ParseExprKind::kLiteral:
      return MakeLiteral(ast.literal);

    case sql::ParseExprKind::kColumnRef: {
      if (in_projection && aggs != nullptr) {
        // Reaching a bare column in projection mode means it neither
        // matched a group expression nor sits under an aggregate.
        return Status::BindError(
            "column '",
            ast.qualifier.empty() ? ast.name : ast.qualifier + "." + ast.name,
            "' must appear in GROUP BY or inside an aggregate");
      }
      GISQL_ASSIGN_OR_RETURN(size_t idx,
                             input_.ResolveColumn(ast.qualifier, ast.name));
      const Field& f = input_.field(idx);
      return MakeColumn(idx, f.type, f.QualifiedName());
    }

    case sql::ParseExprKind::kStar:
      return Status::BindError("'*' is not valid in this context");

    case sql::ParseExprKind::kUnaryMinus: {
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr c, BindInternal(*ast.children[0], in_projection,
                                  group_exprs, aggs));
      if (!IsNumeric(c->type) && c->type != TypeId::kNull) {
        return Status::BindError("unary minus requires numeric, got ",
                                 TypeName(c->type));
      }
      // Desugar to 0 - x.
      ExprPtr zero = c->type == TypeId::kDouble
                         ? MakeLiteral(Value::Double(0.0))
                         : MakeLiteral(Value::Int(0));
      return MakeArith(ArithOp::kSub, std::move(zero), std::move(c));
    }

    case sql::ParseExprKind::kNot: {
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr c, BindInternal(*ast.children[0], in_projection,
                                  group_exprs, aggs));
      if (c->type != TypeId::kBool && c->type != TypeId::kNull) {
        return Status::BindError("NOT requires a boolean, got ",
                                 TypeName(c->type));
      }
      return MakeNot(std::move(c));
    }

    case sql::ParseExprKind::kBinary: {
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr l, BindInternal(*ast.children[0], in_projection,
                                  group_exprs, aggs));
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr r, BindInternal(*ast.children[1], in_projection,
                                  group_exprs, aggs));
      using PB = sql::ParseBinaryOp;
      switch (ast.op) {
        case PB::kEq: case PB::kNe: case PB::kLt:
        case PB::kLe: case PB::kGt: case PB::kGe: {
          GISQL_RETURN_NOT_OK(UnifyComparison(&l, &r));
          CompareOp op = CompareOp::kEq;
          switch (ast.op) {
            case PB::kEq: op = CompareOp::kEq; break;
            case PB::kNe: op = CompareOp::kNe; break;
            case PB::kLt: op = CompareOp::kLt; break;
            case PB::kLe: op = CompareOp::kLe; break;
            case PB::kGt: op = CompareOp::kGt; break;
            case PB::kGe: op = CompareOp::kGe; break;
            default: break;
          }
          return MakeCompare(op, std::move(l), std::move(r));
        }
        case PB::kAdd: case PB::kSub: case PB::kMul:
        case PB::kDiv: case PB::kMod: {
          // String + string is CONCAT for convenience.
          if (ast.op == PB::kAdd && l->type == TypeId::kString &&
              r->type == TypeId::kString) {
            auto f = std::make_shared<Expr>(ExprKind::kFunc);
            f->func_name = "CONCAT";
            f->type = TypeId::kString;
            f->children = {std::move(l), std::move(r)};
            return f;
          }
          auto numeric_ok = [](const ExprPtr& e) {
            return IsNumeric(e->type) || e->type == TypeId::kNull ||
                   e->type == TypeId::kBool;
          };
          if (!numeric_ok(l) || !numeric_ok(r)) {
            return Status::BindError("arithmetic requires numeric operands: ",
                                     TypeName(l->type), " ",
                                     sql::ParseBinaryOpName(ast.op), " ",
                                     TypeName(r->type));
          }
          ArithOp op = ArithOp::kAdd;
          switch (ast.op) {
            case PB::kAdd: op = ArithOp::kAdd; break;
            case PB::kSub: op = ArithOp::kSub; break;
            case PB::kMul: op = ArithOp::kMul; break;
            case PB::kDiv: op = ArithOp::kDiv; break;
            case PB::kMod: op = ArithOp::kMod; break;
            default: break;
          }
          return MakeArith(op, std::move(l), std::move(r));
        }
        case PB::kAnd: case PB::kOr: {
          auto bool_ok = [](const ExprPtr& e) {
            return e->type == TypeId::kBool || e->type == TypeId::kNull;
          };
          if (!bool_ok(l) || !bool_ok(r)) {
            return Status::BindError("AND/OR require boolean operands");
          }
          return MakeLogic(
              ast.op == PB::kAnd ? LogicOp::kAnd : LogicOp::kOr,
              std::move(l), std::move(r));
        }
      }
      return Status::Internal("unhandled binary op");
    }

    case sql::ParseExprKind::kIsNull: {
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr c, BindInternal(*ast.children[0], in_projection,
                                  group_exprs, aggs));
      return MakeIsNull(std::move(c), ast.negated);
    }

    case sql::ParseExprKind::kLike: {
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr v, BindInternal(*ast.children[0], in_projection,
                                  group_exprs, aggs));
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr p, BindInternal(*ast.children[1], in_projection,
                                  group_exprs, aggs));
      if ((v->type != TypeId::kString && v->type != TypeId::kNull) ||
          (p->type != TypeId::kString && p->type != TypeId::kNull)) {
        return Status::BindError("LIKE requires string operands");
      }
      auto e = std::make_shared<Expr>(ExprKind::kLike);
      e->type = TypeId::kBool;
      e->negated = ast.negated;
      e->children = {std::move(v), std::move(p)};
      return e;
    }

    case sql::ParseExprKind::kIn: {
      auto e = std::make_shared<Expr>(ExprKind::kIn);
      e->type = TypeId::kBool;
      e->negated = ast.negated;
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr v, BindInternal(*ast.children[0], in_projection,
                                  group_exprs, aggs));
      e->children.push_back(std::move(v));
      for (size_t i = 1; i < ast.children.size(); ++i) {
        GISQL_ASSIGN_OR_RETURN(
            ExprPtr item, BindInternal(*ast.children[i], in_projection,
                                       group_exprs, aggs));
        GISQL_RETURN_NOT_OK(UnifyComparison(&e->children[0], &item));
        e->children.push_back(std::move(item));
      }
      return e;
    }

    case sql::ParseExprKind::kBetween: {
      // Desugar: v BETWEEN lo AND hi  →  v >= lo AND v <= hi
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr v, BindInternal(*ast.children[0], in_projection,
                                  group_exprs, aggs));
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr lo, BindInternal(*ast.children[1], in_projection,
                                   group_exprs, aggs));
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr hi, BindInternal(*ast.children[2], in_projection,
                                   group_exprs, aggs));
      ExprPtr v2 = v->Clone();
      GISQL_RETURN_NOT_OK(UnifyComparison(&v, &lo));
      GISQL_RETURN_NOT_OK(UnifyComparison(&v2, &hi));
      ExprPtr range = MakeLogic(
          LogicOp::kAnd,
          MakeCompare(CompareOp::kGe, std::move(v), std::move(lo)),
          MakeCompare(CompareOp::kLe, std::move(v2), std::move(hi)));
      if (ast.negated) return MakeNot(std::move(range));
      return range;
    }

    case sql::ParseExprKind::kFuncCall: {
      if (IsAggregateFunc(ast.name)) {
        if (!in_projection) {
          return Status::BindError("aggregate ", ast.name,
                                   " not allowed here");
        }
        return BindAggregateCall(ast, group_exprs, aggs);
      }
      auto e = std::make_shared<Expr>(ExprKind::kFunc);
      e->func_name = ToUpper(ast.name);
      for (const auto& c : ast.children) {
        GISQL_ASSIGN_OR_RETURN(
            ExprPtr bc, BindInternal(*c, in_projection, group_exprs, aggs));
        e->children.push_back(std::move(bc));
      }
      // Typing per function.
      const std::string& f = e->func_name;
      auto arity = [&](size_t lo, size_t hi) -> Status {
        if (e->children.size() < lo || e->children.size() > hi) {
          return Status::BindError(f, ": wrong number of arguments");
        }
        return Status::OK();
      };
      if (f == "ABS") {
        GISQL_RETURN_NOT_OK(arity(1, 1));
        e->type = e->children[0]->type == TypeId::kDouble ? TypeId::kDouble
                                                          : TypeId::kInt64;
      } else if (f == "LOWER" || f == "UPPER") {
        GISQL_RETURN_NOT_OK(arity(1, 1));
        e->type = TypeId::kString;
      } else if (f == "LENGTH") {
        GISQL_RETURN_NOT_OK(arity(1, 1));
        e->type = TypeId::kInt64;
      } else if (f == "SUBSTR" || f == "SUBSTRING") {
        GISQL_RETURN_NOT_OK(arity(2, 3));
        e->type = TypeId::kString;
      } else if (f == "ROUND") {
        GISQL_RETURN_NOT_OK(arity(1, 2));
        e->type = TypeId::kDouble;
      } else if (f == "CONCAT") {
        GISQL_RETURN_NOT_OK(arity(1, 64));
        e->type = TypeId::kString;
      } else if (f == "YEAR" || f == "MONTH" || f == "DAY") {
        GISQL_RETURN_NOT_OK(arity(1, 1));
        if (e->children[0]->type != TypeId::kDate &&
            e->children[0]->type != TypeId::kInt64 &&
            e->children[0]->type != TypeId::kNull) {
          return Status::BindError(f, " requires a DATE argument, got ",
                                   TypeName(e->children[0]->type));
        }
        e->type = TypeId::kInt64;
      } else if (f == "COALESCE") {
        GISQL_RETURN_NOT_OK(arity(1, 64));
        TypeId t = TypeId::kNull;
        for (const auto& c : e->children) {
          GISQL_ASSIGN_OR_RETURN(t, CommonType(t, c->type));
        }
        e->type = t;
      } else {
        return Status::BindError("unknown function ", f);
      }
      return e;
    }

    case sql::ParseExprKind::kCase: {
      auto e = std::make_shared<Expr>(ExprKind::kCase);
      e->has_else = ast.has_else;
      TypeId out_type = TypeId::kNull;
      const size_t pairs = (ast.children.size() - (ast.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        GISQL_ASSIGN_OR_RETURN(
            ExprPtr cond, BindInternal(*ast.children[2 * i], in_projection,
                                       group_exprs, aggs));
        if (cond->type != TypeId::kBool && cond->type != TypeId::kNull) {
          return Status::BindError("CASE WHEN requires boolean condition");
        }
        GISQL_ASSIGN_OR_RETURN(
            ExprPtr then, BindInternal(*ast.children[2 * i + 1],
                                       in_projection, group_exprs, aggs));
        GISQL_ASSIGN_OR_RETURN(out_type, CommonType(out_type, then->type));
        e->children.push_back(std::move(cond));
        e->children.push_back(std::move(then));
      }
      if (ast.has_else) {
        GISQL_ASSIGN_OR_RETURN(
            ExprPtr els, BindInternal(*ast.children.back(), in_projection,
                                      group_exprs, aggs));
        GISQL_ASSIGN_OR_RETURN(out_type, CommonType(out_type, els->type));
        e->children.push_back(std::move(els));
      }
      e->type = out_type;
      return e;
    }

    case sql::ParseExprKind::kInSubquery:
      return Status::BindError(
          "IN (SELECT ...) is only supported as a top-level WHERE "
          "conjunct");

    case sql::ParseExprKind::kCast: {
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr c, BindInternal(*ast.children[0], in_projection,
                                  group_exprs, aggs));
      GISQL_ASSIGN_OR_RETURN(TypeId to, ParseTypeName(ast.name));
      return MakeCast(std::move(c), to);
    }
  }
  return Status::Internal("unreachable parse-expr kind");
}

}  // namespace gisql
