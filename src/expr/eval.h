/// \file eval.h
/// \brief Row-at-a-time expression interpreter with SQL three-valued
/// logic for predicates.

#pragma once

#include "expr/expr.h"
#include "types/row.h"

namespace gisql {

/// \brief Evaluates `e` against `row`. NULL propagates through scalar
/// ops; AND/OR use Kleene logic; IS NULL is total.
Result<Value> EvalExpr(const Expr& e, const Row& row);

/// \brief Predicate evaluation: NULL results count as false (SQL WHERE
/// semantics).
Result<bool> EvalPredicate(const Expr& e, const Row& row);

/// \brief True if `e` contains no column references (safe to fold).
bool IsConstExpr(const Expr& e);

/// \brief Constant-folds literal-only subtrees; returns a (possibly
/// shared) rewritten tree. Fold errors (e.g. division by zero in a
/// constant) leave the node unfolded so the error surfaces at runtime
/// only if the row actually reaches it.
ExprPtr FoldConstants(const ExprPtr& e);

}  // namespace gisql
