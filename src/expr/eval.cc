#include "expr/eval.h"

#include <cmath>

#include "common/string_util.h"
#include "types/datetime.h"

namespace gisql {

namespace {

/// Kleene truth value: 0=false, 1=true, 2=unknown.
int Truth(const Value& v) {
  if (v.is_null()) return 2;
  return v.AsBool() ? 1 : 0;
}

Result<Value> EvalCompare(const Expr& e, const Row& row) {
  GISQL_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.children[0], row));
  GISQL_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.children[1], row));
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
  const int c = l.Compare(r);
  bool out = false;
  switch (e.compare_op) {
    case CompareOp::kEq: out = c == 0; break;
    case CompareOp::kNe: out = c != 0; break;
    case CompareOp::kLt: out = c < 0; break;
    case CompareOp::kLe: out = c <= 0; break;
    case CompareOp::kGt: out = c > 0; break;
    case CompareOp::kGe: out = c >= 0; break;
  }
  return Value::Bool(out);
}

Result<Value> EvalArith(const Expr& e, const Row& row) {
  GISQL_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.children[0], row));
  GISQL_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.children[1], row));
  if (l.is_null() || r.is_null()) return Value::Null(e.type);
  const bool use_double =
      l.type() == TypeId::kDouble || r.type() == TypeId::kDouble ||
      e.type == TypeId::kDouble;
  if (use_double) {
    const double a = l.NumericValue();
    const double b = r.NumericValue();
    switch (e.arith_op) {
      case ArithOp::kAdd: return Value::Double(a + b);
      case ArithOp::kSub: return Value::Double(a - b);
      case ArithOp::kMul: return Value::Double(a * b);
      case ArithOp::kDiv:
        if (b == 0.0) {
          return Status::ExecutionError("division by zero");
        }
        return Value::Double(a / b);
      case ArithOp::kMod:
        if (b == 0.0) {
          return Status::ExecutionError("modulo by zero");
        }
        return Value::Double(std::fmod(a, b));
    }
  }
  const int64_t a = l.type() == TypeId::kBool ? (l.AsBool() ? 1 : 0) : l.AsInt();
  const int64_t b = r.type() == TypeId::kBool ? (r.AsBool() ? 1 : 0) : r.AsInt();
  switch (e.arith_op) {
    case ArithOp::kAdd: return Value::Int(a + b);
    case ArithOp::kSub: return Value::Int(a - b);
    case ArithOp::kMul: return Value::Int(a * b);
    case ArithOp::kDiv:
      if (b == 0) return Status::ExecutionError("division by zero");
      return Value::Int(a / b);
    case ArithOp::kMod:
      if (b == 0) return Status::ExecutionError("modulo by zero");
      return Value::Int(a % b);
  }
  return Status::Internal("unreachable arithmetic op");
}

Result<Value> EvalFunc(const Expr& e, const Row& row) {
  std::vector<Value> args;
  args.reserve(e.children.size());
  for (const auto& c : e.children) {
    GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, row));
    args.push_back(std::move(v));
  }
  const std::string& f = e.func_name;
  if (f == "COALESCE") {
    for (const auto& a : args) {
      if (!a.is_null()) return a;
    }
    return Value::Null(e.type);
  }
  // Remaining functions are strict: NULL in → NULL out.
  for (const auto& a : args) {
    if (a.is_null()) return Value::Null(e.type);
  }
  if (f == "ABS") {
    if (args[0].type() == TypeId::kDouble) {
      return Value::Double(std::abs(args[0].AsDouble()));
    }
    return Value::Int(std::abs(args[0].AsInt()));
  }
  if (f == "LOWER") return Value::String(ToLower(args[0].AsString()));
  if (f == "UPPER") return Value::String(ToUpper(args[0].AsString()));
  if (f == "LENGTH") {
    return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
  }
  if (f == "SUBSTR" || f == "SUBSTRING") {
    const std::string& s = args[0].AsString();
    // SQL 1-based start.
    int64_t start = args[1].AsInt() - 1;
    if (start < 0) start = 0;
    if (start >= static_cast<int64_t>(s.size())) return Value::String("");
    int64_t len = args.size() > 2 ? args[2].AsInt()
                                  : static_cast<int64_t>(s.size());
    if (len < 0) len = 0;
    return Value::String(s.substr(static_cast<size_t>(start),
                                  static_cast<size_t>(len)));
  }
  if (f == "ROUND") {
    const double x = args[0].NumericValue();
    const int64_t digits = args.size() > 1 ? args[1].AsInt() : 0;
    const double scale = std::pow(10.0, static_cast<double>(digits));
    return Value::Double(std::round(x * scale) / scale);
  }
  if (f == "YEAR" || f == "MONTH" || f == "DAY") {
    const Value& a = args[0];
    if (a.type() != TypeId::kDate && a.type() != TypeId::kInt64) {
      return Status::ExecutionError(f, " requires a DATE argument");
    }
    int year;
    unsigned month, day;
    CivilFromDays(a.AsInt(), &year, &month, &day);
    if (f == "YEAR") return Value::Int(year);
    if (f == "MONTH") return Value::Int(month);
    return Value::Int(day);
  }
  if (f == "CONCAT") {
    std::string out;
    for (const auto& a : args) {
      GISQL_ASSIGN_OR_RETURN(Value s, a.CastTo(TypeId::kString));
      out += s.AsString();
    }
    return Value::String(std::move(out));
  }
  return Status::ExecutionError("unknown scalar function ", f);
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, const Row& row) {
  switch (e.kind) {
    case ExprKind::kColumn:
      if (e.column_index >= row.size()) {
        return Status::ExecutionError("column $", e.column_index,
                                      " out of range for row of width ",
                                      row.size());
      }
      return row[e.column_index];
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kCompare:
      return EvalCompare(e, row);
    case ExprKind::kArith:
      return EvalArith(e, row);
    case ExprKind::kLogic: {
      GISQL_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.children[0], row));
      const int lt = Truth(l);
      if (e.logic_op == LogicOp::kAnd) {
        if (lt == 0) return Value::Bool(false);
        GISQL_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.children[1], row));
        const int rt = Truth(r);
        if (rt == 0) return Value::Bool(false);
        if (lt == 2 || rt == 2) return Value::Null(TypeId::kBool);
        return Value::Bool(true);
      }
      if (lt == 1) return Value::Bool(true);
      GISQL_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.children[1], row));
      const int rt = Truth(r);
      if (rt == 1) return Value::Bool(true);
      if (lt == 2 || rt == 2) return Value::Null(TypeId::kBool);
      return Value::Bool(false);
    }
    case ExprKind::kNot: {
      GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      if (v.is_null()) return Value::Null(TypeId::kBool);
      return Value::Bool(!v.AsBool());
    }
    case ExprKind::kIsNull: {
      GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      return Value::Bool(e.negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kLike: {
      GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      GISQL_ASSIGN_OR_RETURN(Value p, EvalExpr(*e.children[1], row));
      if (v.is_null() || p.is_null()) return Value::Null(TypeId::kBool);
      if (v.type() != TypeId::kString || p.type() != TypeId::kString) {
        return Status::ExecutionError("LIKE requires string operands");
      }
      const bool m = LikeMatch(v.AsString(), p.AsString());
      return Value::Bool(e.negated ? !m : m);
    }
    case ExprKind::kIn: {
      GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      if (v.is_null()) return Value::Null(TypeId::kBool);
      bool any_null = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        GISQL_ASSIGN_OR_RETURN(Value item, EvalExpr(*e.children[i], row));
        if (item.is_null()) {
          any_null = true;
          continue;
        }
        if (v.Compare(item) == 0) {
          return Value::Bool(!e.negated);
        }
      }
      if (any_null) return Value::Null(TypeId::kBool);
      return Value::Bool(e.negated);
    }
    case ExprKind::kCast: {
      GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      return v.CastTo(e.type);
    }
    case ExprKind::kFunc:
      return EvalFunc(e, row);
    case ExprKind::kCase: {
      const size_t pairs = (e.children.size() - (e.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        GISQL_ASSIGN_OR_RETURN(Value cond, EvalExpr(*e.children[2 * i], row));
        if (Truth(cond) == 1) return EvalExpr(*e.children[2 * i + 1], row);
      }
      if (e.has_else) return EvalExpr(*e.children.back(), row);
      return Value::Null(e.type);
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> EvalPredicate(const Expr& e, const Row& row) {
  GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(e, row));
  if (v.is_null()) return false;
  if (v.type() != TypeId::kBool) {
    return Status::ExecutionError("predicate did not evaluate to BOOLEAN: ",
                                  e.ToString());
  }
  return v.AsBool();
}

bool IsConstExpr(const Expr& e) {
  if (e.kind == ExprKind::kColumn) return false;
  for (const auto& c : e.children) {
    if (!IsConstExpr(*c)) return false;
  }
  return true;
}

ExprPtr FoldConstants(const ExprPtr& e) {
  if (e->kind == ExprKind::kLiteral) return e;
  if (IsConstExpr(*e)) {
    static const Row kEmptyRow;
    Result<Value> folded = EvalExpr(*e, kEmptyRow);
    if (folded.ok()) {
      Value v = std::move(folded).ValueUnsafe();
      // Preserve the static type of the expression for NULL results.
      if (v.is_null()) v = Value::Null(e->type);
      auto lit = MakeLiteral(std::move(v));
      lit->type = e->type;
      return lit;
    }
    return e;  // fold error: defer to runtime
  }
  auto out = std::make_shared<Expr>(*e);
  out->children.clear();
  for (const auto& c : e->children) {
    out->children.push_back(FoldConstants(c));
  }
  return out;
}

}  // namespace gisql
