/// \file expr.h
/// \brief Typed, bound expression trees evaluated by the execution engine
/// and shipped (serialized) to component sources for pushdown.
///
/// A bound expression references input columns by position. The binder
/// (expr/binder.h) produces these from parser ASTs; the planner rewrites
/// them (column remapping, conjunct splitting); wire/plan_serde.cc moves
/// them across the simulated network.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "types/row.h"
#include "types/value.h"

namespace gisql {

enum class ExprKind : uint8_t {
  kColumn,   ///< input column by position
  kLiteral,  ///< constant
  kCompare,  ///< children[0] <op> children[1]
  kArith,    ///< children[0] <op> children[1]
  kLogic,    ///< AND / OR (Kleene)
  kNot,      ///< NOT children[0]
  kIsNull,   ///< children[0] IS [NOT] NULL
  kLike,     ///< children[0] [NOT] LIKE children[1]
  kIn,       ///< children[0] [NOT] IN (children[1..])
  kCast,     ///< CAST(children[0] AS type)
  kFunc,     ///< scalar function call
  kCase,     ///< WHEN/THEN pairs + optional ELSE
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };
enum class LogicOp : uint8_t { kAnd, kOr };

const char* CompareOpName(CompareOp op);
const char* ArithOpName(ArithOp op);

/// \brief Flips < to > etc. (for commuting comparisons).
CompareOp ReverseCompareOp(CompareOp op);

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// \brief One node of a bound expression tree.
struct Expr {
  ExprKind kind;
  TypeId type = TypeId::kNull;  ///< result type

  // kColumn
  size_t column_index = 0;
  std::string column_name;  ///< display name; survives rewrites

  // kLiteral
  Value literal;

  // op payloads
  CompareOp compare_op = CompareOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;
  LogicOp logic_op = LogicOp::kAnd;
  bool negated = false;   ///< kIsNull / kLike / kIn
  bool has_else = false;  ///< kCase
  std::string func_name;  ///< kFunc (upper-case)

  std::vector<ExprPtr> children;

  explicit Expr(ExprKind k) : kind(k) {}

  /// \brief Deep structural copy.
  ExprPtr Clone() const;

  /// \brief Structural equality (used by optimizer rule tests / dedup).
  bool Equals(const Expr& other) const;

  /// \brief SQL-ish rendering using column display names.
  std::string ToString() const;

  /// \brief Collects every referenced input column index (deduplicated).
  void CollectColumns(std::vector<size_t>* out) const;

  /// \brief True if every referenced column index is in [lo, hi).
  bool ColumnsWithin(size_t lo, size_t hi) const;
};

/// \name Construction helpers
/// @{
ExprPtr MakeColumn(size_t index, TypeId type, std::string name = "");
ExprPtr MakeLiteral(Value v);
ExprPtr MakeCompare(CompareOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeArith(ArithOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeLogic(LogicOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeNot(ExprPtr c);
ExprPtr MakeIsNull(ExprPtr c, bool negated);
ExprPtr MakeCast(ExprPtr c, TypeId to);
/// @}

/// \brief ANDs a list (empty → TRUE literal, single → itself).
ExprPtr ConjoinAll(std::vector<ExprPtr> conjuncts);

/// \brief Splits nested ANDs into a conjunct list.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

/// \brief Rewrites column indexes through `mapping` (old index → new);
/// returns a new tree, inputs untouched. Unmapped columns (mapping value
/// = SIZE_MAX) cause an Internal error.
Result<ExprPtr> RemapColumns(const Expr& e,
                             const std::vector<size_t>& mapping);

/// \brief Shifts every column index by `delta` (used when an expression
/// over a join's right side is evaluated against the concatenated row).
ExprPtr ShiftColumns(const Expr& e, size_t delta);

}  // namespace gisql
